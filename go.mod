module nestless

go 1.22
