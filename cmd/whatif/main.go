// Command whatif is the resident what-if query service: it simulates
// one base cluster world to a snapshot instant, freezes it, and answers
// branch queries over HTTP — each query restores an independent branch
// from the shared copy-on-write snapshot, applies its delta, and runs
// to the horizon.
//
//	whatif -users 200 -policy hostlo -snap-at 4h &
//	curl -s -X POST localhost:8080/whatif -d '{"kind":"baseline"}'
//	curl -s -X POST localhost:8080/whatif -d '{"kind":"add-pods","pods":10000,"pod_seed":7}'
//	curl -s -X POST localhost:8080/whatif -d '{"kind":"switch-policy","policy":"hostlo"}'
//	curl -s -X POST localhost:8080/whatif -d '{"kind":"kill-nodes","kill_count":25}'
//	curl -s localhost:8080/stats
//
// The -cloud/-zones/-spot-frac flags give the base world a machine
// configuration (see internal/cloud), which unlocks the zone-loss and
// spot-revocation branch queries:
//
//	whatif -users 200 -cloud gcp:n2 -zones 3 -spot-frac 0.5 &
//	curl -s -X POST localhost:8080/whatif -d '{"kind":"kill-zone","zone":"us-central1-b"}'
//	curl -s -X POST localhost:8080/whatif -d '{"kind":"revoke-spot","revoke_count":10}'
//
// Identical queries return identical replies (wall-clock fields aside):
// every branch is a deterministic continuation of the same frozen
// world, and the "baseline" branch reproduces the uninterrupted base
// run's digest byte for byte.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"nestless/internal/cli"
	"nestless/internal/cloud"
	"nestless/internal/cluster"
	"nestless/internal/snapshot"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	users := flag.Int("users", 100, "tenant population of the base world")
	seed := flag.Int64("seed", 1, "workload and world seed")
	gap := flag.Duration("gap", 2*time.Minute, "mean pod arrival gap per user")
	life := flag.Duration("life", 45*time.Minute, "mean pod lifetime")
	policy := flag.String("policy", "kubernetes", "base placement policy: kubernetes|hostlo")
	horizon := flag.Duration("horizon", 8*time.Hour, "branch end time")
	snapAt := flag.Duration("snap-at", 0, "snapshot instant (default horizon/2)")
	boot := flag.Duration("boot", 45*time.Second, "VM provisioning delay")
	faultSpec := flag.String("faults", "", "base-world fault spec (see internal/faults)")
	cacheSize := flag.Int("repack-cache", 0, "packing cache entries (0 = default, <0 = off)")
	cloudSpec := flag.String("cloud", cloud.DefaultName,
		"machine catalog selector: provider:family[:zone=N][:spot=F] (registered: "+strings.Join(cloud.Names(), ", ")+")")
	spotFrac := flag.Float64("spot-frac", 0, "fraction of the base fleet on spot capacity, in [0,1]")
	zones := flag.Int("zones", 1, "availability zones the base fleet spreads across")
	autoscaler := flag.String("autoscaler", "reconciler", "fleet manager: reconciler or imperative (the pre-cloud pin)")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	cl, err := cloud.Resolve(cloud.Options{
		Spec:     *cloudSpec,
		SpotFrac: *spotFrac, SpotFracSet: explicit["spot-frac"],
		Zones: *zones, ZonesSet: explicit["zones"],
		Autoscaler: *autoscaler,
	})
	if err != nil {
		cli.BadFlag("whatif: %v", err)
	}

	var pol cluster.Policy
	switch *policy {
	case "kubernetes":
		pol = cluster.Kubernetes
	case "hostlo":
		pol = cluster.Hostlo
	default:
		cli.BadFlag("whatif: -policy %q (want kubernetes|hostlo)", *policy)
	}

	fmt.Fprintf(os.Stderr, "whatif: simulating base world (%d users, %s, horizon %v)...\n",
		*users, *policy, *horizon)
	start := time.Now()
	svc, err := snapshot.NewService(snapshot.BaseConfig{
		Seed:           *seed,
		Users:          *users,
		MeanArrivalGap: *gap,
		MeanLifetime:   *life,
		Policy:         pol,
		Horizon:        *horizon,
		SnapAt:         *snapAt,
		BootDelay:      *boot,
		FaultSpec:      *faultSpec,
		PackCacheSize:  *cacheSize,
		Cloud:          cl,
	})
	if err != nil {
		cli.Fatal("whatif", err)
	}
	st := svc.Stats()
	fmt.Fprintf(os.Stderr,
		"whatif: base ready in %v — %d pods, snapshot at %v (%d bytes), base digest %s\n",
		time.Since(start).Round(time.Millisecond), st.BasePods, st.SnapAt, st.SnapshotB, st.BaseDigest)
	fmt.Fprintf(os.Stderr, "whatif: serving %s on http://%s (kinds: %s)\n",
		"/whatif /stats /base", *addr, strings.Join(snapshot.KindNames(), " "))
	if err := http.ListenAndServe(*addr, svc.Handler()); err != nil {
		cli.Fatal("whatif", err)
	}
}
