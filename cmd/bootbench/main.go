// Command bootbench regenerates the container start-up comparison
// (Fig. 8, §5.2.4): the distribution of the time between ordering the
// container engine to create a container and the container speaking TCP,
// under vanilla Docker NAT networking versus BrFusion's hot-plugged NIC.
package main

import (
	"flag"
	"fmt"
	"os"

	"nestless/internal/figures"
)

func main() {
	runs := flag.Int("runs", 100, "boots per solution (the paper uses 100)")
	seed := flag.Int64("seed", 42, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	stats, cdf := figures.Fig8(figures.Opts{Seed: *seed}, *runs)
	if *csv {
		stats.WriteCSV(os.Stdout)
		fmt.Println()
		cdf.WriteCSV(os.Stdout)
		return
	}
	stats.WriteText(os.Stdout)
	fmt.Println()
	cdf.WriteText(os.Stdout)
}
