// Command bootbench regenerates the container start-up comparison
// (Fig. 8, §5.2.4): the distribution of the time between ordering the
// container engine to create a container and the container speaking TCP,
// under vanilla Docker NAT networking versus BrFusion's hot-plugged NIC.
// Add -trace out.json for a Chrome trace of the boots and -metrics for
// the telemetry tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"nestless/internal/cli"
	"nestless/internal/figures"
)

func main() {
	runs := flag.Int("runs", 100, "boots per solution (the paper uses 100)")
	seed := flag.Int64("seed", 42, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := cli.ParallelFlag()
	faultSpec := cli.FaultsFlag()
	tf := cli.TelemetryFlags()
	prof := cli.ProfileFlags()
	flag.Parse()

	cli.CheckParallel(*workers)
	prof.Start("bootbench")
	defer prof.Stop("bootbench")
	if *runs <= 0 {
		cli.BadFlag("bootbench: -runs must be positive, got %d", *runs)
	}
	stats, cdf := figures.Fig8(figures.Opts{Seed: *seed, Rec: tf.Recorder(), Workers: *workers,
		Faults: cli.ParseFaults(*faultSpec)}, *runs)
	if *csv {
		stats.WriteCSV(os.Stdout)
		fmt.Println()
		cdf.WriteCSV(os.Stdout)
	} else {
		stats.WriteText(os.Stdout)
		fmt.Println()
		cdf.WriteText(os.Stdout)
	}
	tf.EmitOrDie("bootbench")
}
