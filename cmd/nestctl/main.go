// Command nestctl inspects the simulated datapaths: it deploys a pod
// under a chosen networking mode, attaches a tcpdump-style capture to
// the server-side interface, runs one request/response exchange, and
// prints every frame the interface saw — making the paper's
// "de-duplicated path" claim directly observable.
//
//	nestctl -mode nat       # the vanilla nested path (docker0 + NAT)
//	nestctl -mode brfusion  # the fused path (dedicated pod NIC)
//	nestctl -mode nocont    # single-level baseline
//
// It also prints per-hop interface counters across the whole topology
// (-counters) so the extra in-VM hops under NAT are visible as traffic
// on docker0 and the veth pair. Add -trace out.json for a Chrome trace
// of the exchange (the per-packet flow events show every hop) and
// -metrics for the telemetry tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"nestless/internal/cli"
	"nestless/internal/netsim"
	"nestless/internal/report"
	"nestless/internal/scenario"
)

func main() {
	mode := flag.String("mode", "nat", "networking mode: nat, brfusion or nocont")
	seed := flag.Int64("seed", 42, "simulation seed")
	counters := flag.Bool("counters", true, "print per-interface counters")
	// nestctl runs a single exchange, so -parallel has nothing to fan
	// out; the flag exists for command-line uniformity with the sweeps.
	workers := cli.ParallelFlag()
	faultSpec := cli.FaultsFlag()
	tf := cli.TelemetryFlags()
	prof := cli.ProfileFlags()
	flag.Parse()
	cli.CheckParallel(*workers)
	schedule := cli.ParseFaults(*faultSpec)
	prof.Start("nestctl")
	defer prof.Stop("nestctl")

	switch scenario.Mode(*mode) {
	case scenario.ModeNAT, scenario.ModeBrFusion, scenario.ModeNoCont:
	default:
		cli.BadFlag("nestctl: unknown mode %q (want nat, brfusion or nocont)", *mode)
	}
	sc, err := scenario.NewServerClientCfg(
		scenario.Config{Seed: *seed, Rec: tf.Recorder(), Faults: schedule},
		scenario.Mode(*mode), 9000)
	if err != nil {
		cli.Fatal("nestctl", err)
	}

	// Capture on the interface the server's packets use.
	var ifaceName string
	var target *netsim.Iface
	for _, i := range sc.ServerNS.Ifaces() {
		if i.Name != "lo" && i.Up {
			target = i
			ifaceName = i.Name
			break
		}
	}
	if target == nil {
		cli.Fatal("nestctl", fmt.Errorf("no capturable interface in the server namespace"))
	}
	cap := netsim.AttachCapture(target, 64)

	// One UDP request/response.
	srv, err := sc.ServerNS.BindUDP(9000, nil)
	if err != nil {
		cli.Fatal("nestctl", err)
	}
	srv.OnRecv = func(p *netsim.Packet) {
		srv.SendTo(p.Src, p.SrcPort, 128, "pong")
	}
	sock, err := sc.Client.BindUDP(0, nil)
	if err != nil {
		cli.Fatal("nestctl", err)
	}
	sock.SendTo(sc.DialAddr, 9000, 128, "ping")
	sc.Eng.Run()

	fmt.Printf("mode=%s  server=%v  captured on %s (%s namespace)\n\n",
		*mode, sc.DialAddr, ifaceName, sc.ServerNS.Name)
	for _, r := range cap.Records() {
		fmt.Printf("  %12v  %-2s  %v\n", r.At, r.Dir, r.Frame)
	}

	if *counters {
		fmt.Println()
		t := report.New("interface counters (whole topology)",
			"namespace", "iface", "tx_pkts", "rx_pkts", "tx_bytes", "rx_bytes")
		for _, ns := range sc.Net.Namespaces() {
			for _, i := range ns.Ifaces() {
				if i.TXPackets == 0 && i.RXPackets == 0 {
					continue
				}
				t.AddRow(ns.Name, i.Name, i.TXPackets, i.RXPackets, i.TXBytes, i.RXBytes)
			}
		}
		t.WriteText(os.Stdout)
	}
	tf.EmitOrDie("nestctl")
}
