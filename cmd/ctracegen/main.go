// ctracegen emits a seeded sample cluster trace in either on-disk
// format internal/ctrace reads back: the Google task_events-compatible
// CSV or the pod-level JSONL. The workload comes from the synthetic
// generator (internal/trace) with churn stamped on, flattened into a
// time-ordered event stream — so tests, benchmarks and the worked
// examples in EXPERIMENTS.md can replay a realistic trace without
// shipping a real one in the repo.
//
//	ctracegen -users 100 -seed 7 -out trace.csv.gz
//	ctracegen -format jsonl -pods 1000 -out trace.jsonl
package main

import (
	"compress/gzip"
	"flag"
	"io"
	"os"
	"strings"
	"time"

	"nestless/internal/cli"
	"nestless/internal/ctrace"
	"nestless/internal/trace"
)

func main() {
	var (
		out    = flag.String("out", "", "output path ('' = stdout; a .gz suffix gzips)")
		format = flag.String("format", "csv", "trace format: csv (task_events-compatible) or jsonl (pod-level)")
		users  = flag.Int("users", 100, "users in the generated population")
		pods   = flag.Int("pods", 0, "cap the total pod count (0 = no cap)")
		seed   = flag.Int64("seed", 1, "generator seed")
		gap    = flag.Duration("gap", 2*time.Minute, "mean per-user arrival gap")
		life   = flag.Duration("life", 45*time.Minute, "mean pod lifetime (Pareto-tailed)")
	)
	flag.Parse()

	f, err := ctrace.ParseFormat(*format)
	if err != nil {
		cli.BadFlag("-format: %v", err)
	}
	if *users < 1 {
		cli.BadFlag("-users must be >= 1 (got %d)", *users)
	}
	if *pods < 0 {
		cli.BadFlag("-pods must be >= 0 (got %d)", *pods)
	}
	if *gap <= 0 || *life <= 0 {
		cli.BadFlag("-gap and -life must be positive (a trace needs churn)")
	}

	gcfg := trace.DefaultConfig(*seed)
	gcfg.Users = *users
	gcfg.MeanArrivalGap = *gap
	gcfg.MeanLifetime = *life
	population := trace.Generate(gcfg)
	if *pods > 0 {
		population = capPods(population, *pods)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			cli.Fatal("ctracegen", err)
		}
		defer file.Close()
		w = file
		if strings.HasSuffix(*out, ".gz") {
			gz := gzip.NewWriter(file)
			defer gz.Close()
			w = gz
		}
	}
	if err := ctrace.Write(w, ctrace.NewSynth(population), f); err != nil {
		cli.Fatal("ctracegen", err)
	}
}

// capPods truncates the population to the first n pods in user order,
// keeping the per-user seeded streams intact up to the cut.
func capPods(users []trace.User, n int) []trace.User {
	out := make([]trace.User, 0, len(users))
	for _, u := range users {
		if n <= 0 {
			break
		}
		if len(u.Pods) > n {
			u.Pods = u.Pods[:n]
		}
		n -= len(u.Pods)
		out = append(out, u)
	}
	return out
}
