// ctracegen emits a seeded sample cluster trace in either on-disk
// format internal/ctrace reads back: the Google task_events-compatible
// CSV or the pod-level JSONL. The workload comes from the synthetic
// generator (internal/trace) with churn stamped on, flattened into a
// time-ordered event stream — so tests, benchmarks and the worked
// examples in EXPERIMENTS.md can replay a realistic trace without
// shipping a real one in the repo.
//
//	ctracegen -users 100 -seed 7 -out trace.csv.gz
//	ctracegen -format jsonl -pods 1000 -out trace.jsonl
//	ctracegen -days 3 -pods 1000000 -out trace-3d.csv.gz
//
// The -days/-pods presets shape multi-day replay inputs without knob
// arithmetic: -pods derives the population size when -users is not
// given, and -days stretches each user's arrival gap so the trace
// spans the window.
package main

import (
	"compress/gzip"
	"flag"
	"io"
	"os"
	"strings"
	"time"

	"nestless/internal/cli"
	"nestless/internal/ctrace"
	"nestless/internal/trace"
)

func main() {
	var (
		out    = flag.String("out", "", "output path ('' = stdout; a .gz suffix gzips)")
		format = flag.String("format", "csv", "trace format: csv (task_events-compatible) or jsonl (pod-level)")
		users  = flag.Int("users", 100, "users in the generated population (with -pods and no explicit -users, derived from the pod target)")
		pods   = flag.Int("pods", 0, "cap the total pod count (0 = no cap); without an explicit -users the population is sized to hit the cap")
		seed   = flag.Int64("seed", 1, "generator seed")
		gap    = flag.Duration("gap", 2*time.Minute, "mean per-user arrival gap (overridden by -days unless explicit)")
		life   = flag.Duration("life", 45*time.Minute, "mean pod lifetime (Pareto-tailed)")
		days   = flag.Int("days", 0, "preset: stretch arrival gaps so each user's pods span this many days (0 = off; explicit -gap wins)")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	f, err := ctrace.ParseFormat(*format)
	if err != nil {
		cli.BadFlag("-format: %v", err)
	}
	if *pods < 0 {
		cli.BadFlag("-pods must be >= 0 (got %d)", *pods)
	}
	if *days < 0 {
		cli.BadFlag("-days must be >= 0 (got %d)", *days)
	}
	// The generator averages ~6 pods per user (geometric-ish, whale-
	// tailed), so a pod target without an explicit population implies
	// its own: enough users that the cap lands near the target instead
	// of truncating a handful of users' streams.
	if *pods > 0 && !explicit["users"] {
		*users = (*pods + meanPodsPerUser - 1) / meanPodsPerUser
	}
	// A day count without an explicit gap spreads each user's ~6
	// arrivals evenly across the window, so the whole trace spans it.
	if *days > 0 && !explicit["gap"] {
		*gap = time.Duration(*days) * 24 * time.Hour / meanPodsPerUser
	}
	if *users < 1 {
		cli.BadFlag("-users must be >= 1 (got %d)", *users)
	}
	if *gap <= 0 || *life <= 0 {
		cli.BadFlag("-gap and -life must be positive (a trace needs churn)")
	}

	gen := func(nUsers int) []trace.User {
		gcfg := trace.DefaultConfig(*seed)
		gcfg.Users = nUsers
		gcfg.MeanArrivalGap = *gap
		gcfg.MeanLifetime = *life
		population := trace.Generate(gcfg)
		if *days > 0 {
			// Arrival gaps are exponential, so long per-user streams
			// (the whale tenants especially) overshoot the window by
			// months; pruning pods that arrive after it is what makes
			// -days a span bound and not a suggestion. Lifetimes still
			// run past the edge — a replay's -horizon decides where
			// simulation stops.
			population = pruneAfter(population, time.Duration(*days)*24*time.Hour)
		}
		return population
	}
	population := gen(*users)
	if *pods > 0 {
		// A derived population can land short of the pod target once
		// the -days pruning has taken its cut; one proportional
		// correction overshoots slightly and capPods trims it exact.
		if got := countPods(population); got < *pods && !explicit["users"] {
			scaled := int(float64(*users)*float64(*pods)/float64(got)*1.1) + 1
			population = gen(scaled)
		}
		population = capPods(population, *pods)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			cli.Fatal("ctracegen", err)
		}
		defer file.Close()
		w = file
		if strings.HasSuffix(*out, ".gz") {
			gz := gzip.NewWriter(file)
			defer gz.Close()
			w = gz
		}
	}
	if err := ctrace.Write(w, ctrace.NewSynth(population), f); err != nil {
		cli.Fatal("ctracegen", err)
	}
}

// meanPodsPerUser is the generator's approximate per-user pod count
// (trace.DefaultConfig's MeanPodsPerUser), used by the -pods and -days
// presets to derive the population size and arrival spread.
const meanPodsPerUser = 6

// countPods totals the population's pods.
func countPods(users []trace.User) int {
	n := 0
	for _, u := range users {
		n += len(u.Pods)
	}
	return n
}

// pruneAfter drops pods arriving after the window, keeping each user's
// seeded arrival stream intact up to the cut.
func pruneAfter(users []trace.User, window time.Duration) []trace.User {
	out := users[:0]
	for _, u := range users {
		kept := u.Pods[:0]
		for _, p := range u.Pods {
			if p.Arrival <= window {
				kept = append(kept, p)
			}
		}
		if len(kept) > 0 {
			u.Pods = kept
			out = append(out, u)
		}
	}
	return out
}

// capPods truncates the population to the first n pods in user order,
// keeping the per-user seeded streams intact up to the cut.
func capPods(users []trace.User, n int) []trace.User {
	out := make([]trace.User, 0, len(users))
	for _, u := range users {
		if n <= 0 {
			break
		}
		if len(u.Pods) > n {
			u.Pods = u.Pods[:n]
		}
		n -= len(u.Pods)
		out = append(out, u)
	}
	return out
}
