// Command macrobench regenerates the paper's macro-benchmark figures:
//
//	macrobench -fig 5      # Memcached / NGINX / Kafka (§5.2.2)
//	macrobench -fig 6      # Kafka CPU breakdown (§5.2.3)
//	macrobench -fig 7      # NGINX CPU breakdown (§5.2.3)
//	macrobench -fig 11     # Memcached over intra-pod transports (§5.3.3)
//	macrobench -fig 13     # NGINX over intra-pod transports (§5.3.3)
//	macrobench -fig 14     # Memcached CPU usage (§5.3.4)
//	macrobench -fig 15     # NGINX CPU usage (§5.3.4)
//	macrobench -table 1    # macro-benchmark parameters (§5.1)
package main

import (
	"flag"
	"fmt"
	"os"

	"nestless/internal/figures"
	"nestless/internal/report"
)

func main() {
	fig := flag.Int("fig", 5, "figure to regenerate: 5, 6, 7, 11, 13, 14 or 15")
	table := flag.Int("table", 0, "print a table instead: 1")
	seed := flag.Int64("seed", 42, "simulation seed")
	quick := flag.Bool("quick", false, "short measurement windows")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	opts := figures.Opts{Seed: *seed, Quick: *quick}
	var t *report.Table
	switch {
	case *table == 1:
		t = figures.Table1()
	case *fig == 5:
		t = figures.Fig5(opts)
	case *fig == 6:
		t = figures.Fig6(opts)
	case *fig == 7:
		t = figures.Fig7(opts)
	case *fig == 11 || *fig == 12:
		t = figures.Fig11(opts)
	case *fig == 13:
		t = figures.Fig13(opts)
	case *fig == 14:
		t = figures.Fig14(opts)
	case *fig == 15:
		t = figures.Fig15(opts)
	default:
		fmt.Fprintf(os.Stderr, "macrobench: unknown figure %d\n", *fig)
		os.Exit(2)
	}
	if *csv {
		t.WriteCSV(os.Stdout)
	} else {
		t.WriteText(os.Stdout)
	}
}
