// Command macrobench regenerates the paper's macro-benchmark figures:
//
//	macrobench -fig 5      # Memcached / NGINX / Kafka (§5.2.2)
//	macrobench -fig 6      # Kafka CPU breakdown (§5.2.3)
//	macrobench -fig 7      # NGINX CPU breakdown (§5.2.3)
//	macrobench -fig 11     # Memcached over intra-pod transports (§5.3.3)
//	macrobench -fig 13     # NGINX over intra-pod transports (§5.3.3)
//	macrobench -fig 14     # Memcached CPU usage (§5.3.4)
//	macrobench -fig 15     # NGINX CPU usage (§5.3.4)
//	macrobench -table 1    # macro-benchmark parameters (§5.1)
//
// Add -trace out.json to dump a Chrome trace of the runs and -metrics
// for the telemetry tables.
package main

import (
	"flag"
	"os"

	"nestless/internal/cli"
	"nestless/internal/figures"
	"nestless/internal/report"
)

func main() {
	fig := flag.Int("fig", 5, "figure to regenerate: 5, 6, 7, 11, 13, 14 or 15")
	table := flag.Int("table", 0, "print a table instead: 1")
	seed := flag.Int64("seed", 42, "simulation seed")
	quick := flag.Bool("quick", false, "short measurement windows")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := cli.ParallelFlag()
	faultSpec := cli.FaultsFlag()
	tf := cli.TelemetryFlags()
	prof := cli.ProfileFlags()
	flag.Parse()

	cli.CheckParallel(*workers)
	prof.Start("macrobench")
	defer prof.Stop("macrobench")
	opts := figures.Opts{Seed: *seed, Quick: *quick, Rec: tf.Recorder(), Workers: *workers,
		Faults: cli.ParseFaults(*faultSpec)}
	var t *report.Table
	switch {
	case *table == 1:
		t = figures.Table1()
	case *table != 0:
		cli.BadFlag("macrobench: unknown table %d (want 1)", *table)
	case *fig == 5:
		t = figures.Fig5(opts)
	case *fig == 6:
		t = figures.Fig6(opts)
	case *fig == 7:
		t = figures.Fig7(opts)
	case *fig == 11 || *fig == 12:
		t = figures.Fig11(opts)
	case *fig == 13:
		t = figures.Fig13(opts)
	case *fig == 14:
		t = figures.Fig14(opts)
	case *fig == 15:
		t = figures.Fig15(opts)
	default:
		cli.BadFlag("macrobench: unknown figure %d (want 5, 6, 7, 11, 13, 14 or 15)", *fig)
	}
	if *csv {
		t.WriteCSV(os.Stdout)
	} else {
		t.WriteText(os.Stdout)
	}
	tf.EmitOrDie("macrobench")
}
