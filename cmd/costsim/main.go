// Command costsim regenerates the Hostlo cost-saving simulation
// (Fig. 9, §5.3.1): per-user VM fleet costs under Kubernetes whole-pod
// placement versus Hostlo container-level placement, over a synthetic
// Google-cluster-trace population priced with the AWS EC2 m5 catalog.
//
//	costsim                # Fig. 9 histogram + headline statistics
//	costsim -table 2       # the VM catalog (Table 2)
//	costsim -users 1000    # a larger population
package main

import (
	"flag"
	"fmt"
	"os"

	"nestless/internal/cloudsim"
	"nestless/internal/figures"
	"nestless/internal/report"
	"nestless/internal/trace"
)

func main() {
	table := flag.Int("table", 0, "print a table instead: 2")
	users := flag.Int("users", 492, "population size (the paper simulates 492 users)")
	seed := flag.Int64("seed", 42, "generator seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	top := flag.Int("top", 0, "also list the top-N savers")
	flag.Parse()

	emit := func(t *report.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
	}

	if *table == 2 {
		emit(figures.Table2())
		return
	}

	cfg := trace.DefaultConfig(*seed)
	cfg.Users = *users
	pop := trace.Generate(cfg)
	res := cloudsim.Simulate(pop, cloudsim.Catalog())

	hist, stats := figures.Fig9(figures.Opts{Seed: *seed, Quick: *users != 492})
	if *users == 492 {
		emit(hist)
		fmt.Println()
		emit(stats)
	} else {
		// Custom population: report directly.
		t := report.New(fmt.Sprintf("Hostlo savings over %d users", len(res.Users)),
			"metric", "value")
		maxAbs, maxRel := res.MaxAbsSavings()
		t.AddRow("users with savings", report.Percent(res.SaversFraction()))
		t.AddRow("savers above 5%", report.Percent(res.BigSaversFractionOfSavers()))
		t.AddRow("max relative savings", report.Percent(res.MaxRelSavings()))
		t.AddRow("max absolute savings $/h", maxAbs)
		t.AddRow("  (at relative savings)", report.Percent(maxRel))
		emit(t)
	}

	if *top > 0 {
		fmt.Println()
		tt := report.New(fmt.Sprintf("Top %d savers", *top),
			"user", "kube_cost", "hostlo_cost", "savings_rel", "kube_vms", "hostlo_vms")
		for _, u := range res.TopSavers(*top) {
			tt.AddRow(u.UserID, u.KubeCostPerH, u.HostloCostPerH,
				report.Percent(u.SavingsRel()), u.KubeVMs, u.HostloVMs)
		}
		emit(tt)
	}
}
