// Command costsim regenerates the Hostlo cost-saving simulation
// (Fig. 9, §5.3.1): per-user VM fleet costs under Kubernetes whole-pod
// placement versus Hostlo container-level placement, over a synthetic
// Google-cluster-trace population priced with the AWS EC2 m5 catalog.
//
//	costsim                # Fig. 9 histogram + headline statistics
//	costsim -table 2       # the VM catalog (Table 2)
//	costsim -users 1000    # a larger population
//
// The -lifecycle flag switches from the static snapshot pricing to the
// event-driven cluster simulation (internal/cluster): pods arrive and
// depart over a horizon, an autoscaler grows and reclaims the VM fleet,
// and -faults node-kill schedules displace pods mid-run. It reports
// Kubernetes-vs-Hostlo cost integrals, time-to-schedule statistics, and
// the cost-over-time trajectory:
//
//	costsim -lifecycle -users 100
//	costsim -lifecycle -horizon 8h -gap 2m -life 45m
//	costsim -lifecycle -faults 'node/*:crash:p=0.01'
//
// The machine subsystem (internal/cloud) generalizes the hard-coded
// m5 table: -cloud selects a registered catalog (optionally with
// zone=/spot= keys), -zones spreads the lifecycle fleet across
// availability-zone failure domains, -spot-frac runs part of it on
// discounted spot capacity (revocation is a seeded fault;
// spot/*:crash:p=0.02 is merged in unless -faults already covers
// spot/), and -autoscaler=imperative pins the pre-cloud demand loop:
//
//	costsim -cloud gcp:n2                  # static cross-cloud comparison
//	costsim -lifecycle -cloud gcp:n2 -zones 3 -spot-frac 0.5
//	costsim -lifecycle -cloud 'gcp:n2:zone=3:spot=0.5'
//
// The -replay flag feeds a recorded cluster trace file (CSV or JSONL,
// optionally gzipped — see internal/ctrace) through the sharded
// multi-cluster replay (internal/shard) instead of generating a
// synthetic population. Both policies run over the same stream; the
// trace is reopened per policy. -shards picks the execution
// parallelism (byte-identical output for any value), -worlds the
// logical partition count (part of the experiment):
//
//	ctracegen -users 200 -out t.csv.gz
//	costsim -replay t.csv.gz -shards 4
//	costsim -replay t.csv.gz -worlds 8 -migrate-after 20m -migrate-policy locality
//	costsim -replay big3d.csv.gz -shards 8 -horizon 72h   # multi-day, bounded memory
//
// The feed is pipelined by default (epoch N+1 prefetches while epoch N
// advances; -pipeline=false pins the serial reference loop — both are
// byte-identical) and each world's stored trajectory is bounded by
// -sample-cap (default 512 samples, window-folded on the fly).
//
// Add -trace out.json for a per-user trace of the placement run and
// -metrics for the telemetry tables. (-trace names the telemetry
// OUTPUT; the trace INPUT is -replay.)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nestless/internal/cli"
	"nestless/internal/cloud"
	"nestless/internal/cloudsim"
	"nestless/internal/cluster"
	"nestless/internal/ctrace"
	"nestless/internal/faults"
	"nestless/internal/figures"
	"nestless/internal/report"
	"nestless/internal/shard"
	"nestless/internal/sim"
	"nestless/internal/telemetry"
	"nestless/internal/trace"
)

func main() {
	table := flag.Int("table", 0, "print a table instead: 2")
	users := flag.Int("users", 492, "population size (the paper simulates 492 users)")
	seed := flag.Int64("seed", 42, "generator seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	top := flag.Int("top", 0, "also list the top-N savers")
	lifecycle := flag.Bool("lifecycle", false, "run the event-driven cluster lifecycle simulation instead of the static snapshot")
	horizon := flag.Duration("horizon", 8*time.Hour, "lifecycle simulation horizon")
	gap := flag.Duration("gap", 2*time.Minute, "lifecycle mean pod inter-arrival gap")
	life := flag.Duration("life", 45*time.Minute, "lifecycle mean pod lifetime (Pareto-tailed)")
	boot := flag.Duration("boot", 45*time.Second, "lifecycle VM boot delay")
	reference := flag.Bool("reference", false,
		"lifecycle: use the linear-scan reference scheduler instead of the capacity index (same placements, O(fleet) per decision — a debugging aid)")
	fullRepack := flag.Bool("full-repack", false,
		"lifecycle: pin the Hostlo optimizer to full-fleet passes instead of dirty-set incremental ones")
	repackWorkers := flag.Int("repack-workers", 0,
		"lifecycle: goroutines one incremental optimize pass fans candidate groups across (0 = GOMAXPROCS; any value is byte-identical)")
	repackCache := flag.Int("repack-cache", 0,
		"lifecycle: packing-cache entries per cluster world (0 = default 4096, negative = caching off; placements are byte-identical either way)")
	replay := flag.String("replay", "",
		"replay a recorded cluster trace file (csv/jsonl, .gz ok; see internal/ctrace) through the sharded lifecycle simulation instead of generating a workload")
	shards := flag.Int("shards", 1,
		"replay: goroutines executing the cluster worlds (any value is byte-identical to -shards 1)")
	worlds := flag.Int("worlds", 8,
		"replay: logical cluster worlds the trace is hash-partitioned over (changes the experiment, unlike -shards)")
	barrier := flag.Duration("barrier", 15*time.Minute,
		"replay: epoch length between world synchronization barriers")
	migrateAfter := flag.Duration("migrate-after", 0,
		"replay: transfer pods pending longer than this to another world at each barrier (0 = off)")
	lenient := flag.Bool("lenient", false,
		"replay: skip malformed trace rows instead of failing")
	migratePolicy := flag.String("migrate-policy", "least-loaded",
		"replay: destination policy for -migrate-after transfers: least-loaded or locality")
	pipeline := flag.Bool("pipeline", true,
		"replay: overlap feeding epoch N+1 with advancing epoch N (false pins the serial reference loop; both orders are byte-identical)")
	sampleCap := flag.Int("sample-cap", 0,
		"replay: bound each world's stored trajectory to this many samples, window-folding on the fly (0 = default 512, negative = unlimited)")
	cloudSpec := flag.String("cloud", cloud.DefaultName,
		"machine catalog selector: provider:family[:zone=N][:spot=F] (registered: "+strings.Join(cloud.Names(), ", ")+")")
	spotFrac := flag.Float64("spot-frac", 0,
		"lifecycle: target fraction of the fleet on spot capacity, in [0,1] (needs a spot-capable catalog)")
	zones := flag.Int("zones", 1,
		"lifecycle: availability zones the fleet spreads across (bounded by the catalog's zone list)")
	autoscaler := flag.String("autoscaler", "reconciler",
		"lifecycle: fleet manager, reconciler or imperative (the pre-cloud demand loop; rejects spot/zones)")
	workers := cli.ParallelFlag()
	faultSpec := cli.FaultsFlag()
	tf := cli.TelemetryFlags()
	prof := cli.ProfileFlags()
	flag.Parse()
	cli.CheckParallel(*workers)
	sched := cli.ParseFaults(*faultSpec)
	if *shards < 1 {
		cli.BadFlag("costsim: -shards must be >= 1, got %d", *shards)
	}
	if *worlds < 1 {
		cli.BadFlag("costsim: -worlds must be >= 1, got %d", *worlds)
	}
	if *repackWorkers < 0 {
		cli.BadFlag("costsim: -repack-workers must be >= 0, got %d", *repackWorkers)
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	cl, err := cloud.Resolve(cloud.Options{
		Spec:     *cloudSpec,
		SpotFrac: *spotFrac, SpotFracSet: explicit["spot-frac"],
		Zones: *zones, ZonesSet: explicit["zones"],
		Autoscaler: *autoscaler,
	})
	if err != nil {
		cli.BadFlag("costsim: %v", err)
	}
	if !*lifecycle && *replay == "" {
		// The static snapshot has no fleet to manage: only the catalog
		// choice applies.
		for _, name := range []string{"spot-frac", "zones", "autoscaler"} {
			if explicit[name] {
				cli.BadFlag("costsim: -%s only applies to the cluster simulation (add -lifecycle or -replay)", name)
			}
		}
		if cl.SpotFrac > 0 || cl.Zones > 1 {
			cli.BadFlag("costsim: zone=/spot= in -cloud only apply to the cluster simulation (add -lifecycle or -replay)")
		}
	}
	// Spot capacity without a revocation rule would be free money:
	// unless the user's -faults spec already says something about
	// spot/ points, merge the default revocation schedule in after
	// their rules.
	if cl.SpotFrac > 0 && !sched.HasPointPrefix("spot/") {
		def, derr := faults.ParseSpec(cloud.DefaultRevocationSpec)
		if derr != nil {
			cli.Fatal("costsim", derr)
		}
		sched = faults.Merge(sched, def)
	}
	if *replay != "" {
		// The trace IS the workload: generator knobs are ambiguous next
		// to it.
		for _, name := range []string{"users", "gap", "life"} {
			if explicit[name] {
				cli.BadFlag("costsim: -%s shapes the generated workload and conflicts with -replay (the trace is the workload)", name)
			}
		}
		if _, err := os.Stat(*replay); err != nil {
			cli.BadFlag("costsim: -replay: %v", err)
		}
		switch *migratePolicy {
		case "least-loaded", "locality":
		default:
			cli.BadFlag("costsim: -migrate-policy must be least-loaded or locality, got %q", *migratePolicy)
		}
	} else {
		for _, name := range []string{"shards", "worlds", "barrier", "migrate-after", "lenient", "migrate-policy", "pipeline", "sample-cap"} {
			if explicit[name] {
				cli.BadFlag("costsim: -%s only applies to a trace replay (add -replay FILE)", name)
			}
		}
	}
	prof.Start("costsim")
	defer prof.Stop("costsim")
	// The static placement run is engine-less: the spec is validated for
	// command-line uniformity, but only the simulated datapaths can
	// fault.
	if sched != nil && !*lifecycle && *replay == "" {
		fmt.Fprintln(os.Stderr, "costsim: note: -faults validated but ignored (static placement has no simulated datapath; use -lifecycle or -replay)")
	}

	emit := func(t *report.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
	}

	switch *table {
	case 0:
	case 2:
		emit(figures.Table2())
		return
	default:
		cli.BadFlag("costsim: unknown table %d (want 2)", *table)
	}
	if *users <= 0 {
		cli.BadFlag("costsim: -users must be positive, got %d", *users)
	}

	if *replay != "" {
		runReplay(replayOpts{
			path: *replay, seed: *seed, horizon: *horizon, boot: *boot,
			shards: *shards, worlds: *worlds, barrier: *barrier,
			migrateAfter: *migrateAfter, migratePolicy: *migratePolicy,
			pipeline: *pipeline, sampleCap: *sampleCap,
			lenient: *lenient, sched: sched,
			reference: *reference, fullRepack: *fullRepack,
			repackWorkers: *repackWorkers, repackCache: *repackCache,
			cloud: cl, rec: tf.Recorder(), emit: emit,
		})
		tf.EmitOrDie("costsim")
		return
	}

	if *lifecycle {
		runLifecycle(lifecycleOpts{
			users: *users, seed: *seed, horizon: *horizon, gap: *gap,
			life: *life, boot: *boot, workers: *workers, sched: sched,
			reference: *reference, fullRepack: *fullRepack,
			repackWorkers: *repackWorkers, repackCache: *repackCache,
			cloud: cl, rec: tf.Recorder(), emit: emit,
		})
		tf.EmitOrDie("costsim")
		return
	}

	// Telemetry records per-user events in trace order, so the fan-out
	// stays serial when a recorder is active (same rule as the figures).
	simWorkers := *workers
	if tf.Recorder() != nil {
		simWorkers = 1
	}
	cfg := trace.DefaultConfig(*seed)
	cfg.Users = *users
	pop := trace.Generate(cfg)
	res := cloudsim.SimulateParallel(pop, cl.Catalog.Types, simWorkers)
	record(tf.Recorder(), res)

	if explicit["cloud"] {
		// An explicit catalog choice turns the run into a cross-cloud
		// comparison: the same workload priced on the default AWS m5
		// table and on the selected catalog. (Fig. 9 itself is pinned
		// to the paper's m5 pricing, so it is skipped here.)
		crossCloud(cl.Catalog, res, pop, simWorkers, emit)
		if *top > 0 {
			fmt.Println()
			tt := report.New(fmt.Sprintf("Top %d savers (%s)", *top, cl.Catalog.Name()),
				"user", "kube_cost", "hostlo_cost", "savings_rel", "kube_vms", "hostlo_vms")
			for _, u := range res.TopSavers(*top) {
				tt.AddRow(u.UserID, u.KubeCostPerH, u.HostloCostPerH,
					report.Percent(u.SavingsRel()), u.KubeVMs, u.HostloVMs)
			}
			emit(tt)
		}
		tf.EmitOrDie("costsim")
		return
	}

	hist, stats := figures.Fig9(figures.Opts{Seed: *seed, Quick: *users != 492, Workers: *workers})
	if *users == 492 {
		emit(hist)
		fmt.Println()
		emit(stats)
	} else {
		// Custom population: report directly.
		t := report.New(fmt.Sprintf("Hostlo savings over %d users", len(res.Users)),
			"metric", "value")
		maxAbs, maxRel := res.MaxAbsSavings()
		t.AddRow("users skipped (pod > largest VM)", res.Skipped)
		t.AddRow("users with savings", report.Percent(res.SaversFraction()))
		t.AddRow("savers above 5%", report.Percent(res.BigSaversFractionOfSavers()))
		t.AddRow("max relative savings", report.Percent(res.MaxRelSavings()))
		t.AddRow("max absolute savings $/h", maxAbs)
		t.AddRow("  (at relative savings)", report.Percent(maxRel))
		emit(t)
	}

	if *top > 0 {
		fmt.Println()
		tt := report.New(fmt.Sprintf("Top %d savers", *top),
			"user", "kube_cost", "hostlo_cost", "savings_rel", "kube_vms", "hostlo_vms")
		for _, u := range res.TopSavers(*top) {
			tt.AddRow(u.UserID, u.KubeCostPerH, u.HostloCostPerH,
				report.Percent(u.SavingsRel()), u.KubeVMs, u.HostloVMs)
		}
		emit(tt)
	}
	tf.EmitOrDie("costsim")
}

// crossCloud prices the same static workload on the default AWS m5
// catalog and on the selected one, then prints the comparison rows the
// arbitrage scenarios read (per-catalog kube/hostlo fleet cost and the
// Hostlo savings each catalog yields).
func crossCloud(sel *cloud.Catalog, selRes cloudsim.PopulationResult,
	pop []trace.User, workers int, emit func(*report.Table)) {
	base, err := cloud.Lookup(cloud.DefaultName)
	if err != nil {
		cli.Fatal("costsim", err)
	}
	baseRes := selRes
	if sel.Name() != base.Name() {
		baseRes = cloudsim.SimulateParallel(pop, base.Types, workers)
	}
	baseKube, baseHostlo := baseRes.TotalCosts()
	selKube, selHostlo := selRes.TotalCosts()
	t := report.New(fmt.Sprintf("Cross-cloud comparison over %d users", len(pop)),
		"metric", base.Name(), sel.Name())
	t.AddRow("total kube fleet $/h", baseKube, selKube)
	t.AddRow("total hostlo fleet $/h", baseHostlo, selHostlo)
	t.AddRow("hostlo savings", report.Percent((baseKube-baseHostlo)/baseKube),
		report.Percent((selKube-selHostlo)/selKube))
	t.AddRow("users with savings", report.Percent(baseRes.SaversFraction()),
		report.Percent(selRes.SaversFraction()))
	t.AddRow("users skipped (pod > largest VM)", baseRes.Skipped, selRes.Skipped)
	emit(t)
}

// lifecycleOpts bundles the -lifecycle run parameters.
type lifecycleOpts struct {
	users         int
	seed          int64
	horizon       time.Duration
	gap           time.Duration
	life          time.Duration
	boot          time.Duration
	workers       int
	sched         *faults.Schedule
	reference     bool
	fullRepack    bool
	repackWorkers int
	repackCache   int
	cloud         *cloud.Resolved
	rec           *telemetry.Recorder
	emit          func(*report.Table)
}

// autoscalerMode maps the resolved CLI choice onto the cluster enum.
func autoscalerMode(cl *cloud.Resolved) cluster.AutoscalerMode {
	if cl.Imperative {
		return cluster.Imperative
	}
	return cluster.Reconciler
}

// runLifecycle simulates the population's cluster lifecycle under both
// policies and prints the cost/disruption summary plus the
// cost-over-time trajectory.
func runLifecycle(o lifecycleOpts) {
	cfg := trace.DefaultConfig(o.seed)
	cfg.Users = o.users
	cfg.MeanArrivalGap = o.gap
	cfg.MeanLifetime = o.life
	pop := trace.Generate(cfg)

	runs := cluster.SimulatePopulation(pop, cluster.Config{
		Seed:          o.seed,
		Catalog:       o.cloud.Catalog.Types,
		Horizon:       o.horizon,
		BootDelay:     o.boot,
		Faults:        o.sched,
		Reference:     o.reference,
		FullRepack:    o.fullRepack,
		RepackWorkers: o.repackWorkers,
		PackCacheSize: o.repackCache,
		Zones:         o.cloud.Zones,
		ZoneNames:     o.cloud.ZoneNames,
		SpotFrac:      o.cloud.SpotFrac,
		SpotDiscount:  o.cloud.SpotDiscount,
		Autoscaler:    autoscalerMode(o.cloud),
		Rec:           o.rec,
	}, o.workers)

	var kube, hostlo aggregate
	kubeTraj := make([]cluster.Result, len(runs))
	hostloTraj := make([]cluster.Result, len(runs))
	for i, u := range runs {
		kube.add(u.Kube)
		hostlo.add(u.Hostlo)
		kubeTraj[i] = u.Kube
		hostloTraj[i] = u.Hostlo
	}

	t := report.New(fmt.Sprintf("Cluster lifecycle over %d users, %v horizon", len(runs), o.horizon),
		"metric", "kubernetes", "hostlo")
	t.AddRow("pods arrived", kube.arrived, hostlo.arrived)
	t.AddRow("pods scheduled", kube.scheduled, hostlo.scheduled)
	t.AddRow("pods departed", kube.departed, hostlo.departed)
	t.AddRow("pods failed (unschedulable)", kube.failed, hostlo.failed)
	t.AddRow("pods pending at horizon", kube.pending, hostlo.pending)
	t.AddRow("cost over horizon $", kube.dollars, hostlo.dollars)
	t.AddRow("cost split spot / on-demand $", kube.costSplit(), hostlo.costSplit())
	t.AddRow("final fleet $/h", kube.finalRate, hostlo.finalRate)
	t.AddRow("final fleet nodes", kube.finalNodes, hostlo.finalNodes)
	t.AddRow("peak fleet nodes", kube.peakNodes, hostlo.peakNodes)
	t.AddRow("mean time-to-schedule", kube.ttsMean(), hostlo.ttsMean())
	t.AddRow("scale-ups / scale-downs", fmt.Sprintf("%d / %d", kube.scaleUps, kube.scaleDowns),
		fmt.Sprintf("%d / %d", hostlo.scaleUps, hostlo.scaleDowns))
	t.AddRow("reconcile rounds / actions", fmt.Sprintf("%d / %d", kube.reconRounds, kube.reconActions),
		fmt.Sprintf("%d / %d", hostlo.reconRounds, hostlo.reconActions))
	t.AddRow("node kills (faults)", kube.kills, hostlo.kills)
	if o.cloud.SpotFrac > 0 {
		t.AddRow("spot provisions / revocations", fmt.Sprintf("%d / %d", kube.spotProv, kube.spotRevoked),
			fmt.Sprintf("%d / %d", hostlo.spotProv, hostlo.spotRevoked))
		t.AddRow("on-demand fallbacks", kube.odFallbacks, hostlo.odFallbacks)
	}
	if o.cloud.Zones > 1 {
		t.AddRow("zone kills (drills)", kube.zoneKills, hostlo.zoneKills)
		t.AddRow("final zone spread", kube.spread(o.cloud.ZoneNames), hostlo.spread(o.cloud.ZoneNames))
	}
	t.AddRow("pods displaced / rescheduled", fmt.Sprintf("%d / %d", kube.displaced, kube.reschedules),
		fmt.Sprintf("%d / %d", hostlo.displaced, hostlo.reschedules))
	t.AddRow("optimizer runs / moves", "-", fmt.Sprintf("%d / %d", hostlo.optRuns, hostlo.optMoves))
	t.AddRow("optimizer passes incremental / full", "-",
		fmt.Sprintf("%d / %d", hostlo.optRuns-hostlo.optFull, hostlo.optFull))
	t.AddRow("packing cache hits / misses", "-",
		fmt.Sprintf("%d / %d", hostlo.cacheHits, hostlo.cacheMisses))
	if kube.dollars > 0 {
		t.AddRow("hostlo savings", "-", report.Percent((kube.dollars-hostlo.dollars)/kube.dollars))
	}
	o.emit(t)

	fmt.Println()
	tj := report.New("Cost-over-time trajectory",
		"t", "kube_$/h", "hostlo_$/h", "kube_pending", "hostlo_pending", "kube_util", "hostlo_util")
	mk := cluster.MergeTrajectories(kubeTraj)
	mh := cluster.MergeTrajectories(hostloTraj)
	for i := range mk {
		tj.AddRow(mk[i].T, mk[i].CostPerH, mh[i].CostPerH,
			mk[i].Pending, mh[i].Pending,
			report.Percent(mk[i].Util()), report.Percent(mh[i].Util()))
	}
	o.emit(tj)
}

// replayOpts bundles the -replay run parameters.
type replayOpts struct {
	path          string
	seed          int64
	horizon       time.Duration
	boot          time.Duration
	shards        int
	worlds        int
	barrier       time.Duration
	migrateAfter  time.Duration
	migratePolicy string
	pipeline      bool
	sampleCap     int
	lenient       bool
	sched         *faults.Schedule
	reference     bool
	fullRepack    bool
	repackWorkers int
	repackCache   int
	cloud         *cloud.Resolved
	rec           *telemetry.Recorder
	emit          func(*report.Table)
}

// runReplay streams a recorded trace through the sharded multi-cluster
// replay under both policies and prints the stream stats, the
// cost/disruption summary and the merged trajectory.
func runReplay(o replayOpts) {
	run := func(policy cluster.Policy) (shard.Result, ctrace.Stats) {
		// Reopen per policy: both runs consume the identical stream.
		r, err := ctrace.Open(o.path, ctrace.Options{Lenient: o.lenient})
		if err != nil {
			cli.Fatal("costsim", err)
		}
		defer r.Close()
		res, err := shard.Replay(r, shard.Config{
			Worlds:        o.worlds,
			Shards:        o.shards,
			BarrierEvery:  o.barrier,
			MigrateAfter:  o.migrateAfter,
			MigratePolicy: o.migratePolicy,
			SerialFeed:    !o.pipeline,
			Cluster: cluster.Config{
				Policy:        policy,
				Seed:          o.seed,
				Catalog:       o.cloud.Catalog.Types,
				Horizon:       o.horizon,
				BootDelay:     o.boot,
				SampleCap:     o.sampleCap,
				Faults:        o.sched,
				Reference:     o.reference,
				FullRepack:    o.fullRepack,
				RepackWorkers: o.repackWorkers,
				PackCacheSize: o.repackCache,
				Zones:         o.cloud.Zones,
				ZoneNames:     o.cloud.ZoneNames,
				SpotFrac:      o.cloud.SpotFrac,
				SpotDiscount:  o.cloud.SpotDiscount,
				Autoscaler:    autoscalerMode(o.cloud),
				Rec:           o.rec,
			},
		})
		if err != nil {
			cli.Fatal("costsim", err)
		}
		return res, r.Stats()
	}
	kubeRes, stats := run(cluster.Kubernetes)
	hostloRes, _ := run(cluster.Hostlo)

	// The title names only the experiment (worlds), never the execution
	// (-shards): stdout is byte-identical for every shard count.
	st := report.New(fmt.Sprintf("Trace replay: %s over %d worlds", o.path, o.worlds),
		"metric", "value")
	st.AddRow("trace rows read", stats.Rows)
	st.AddRow("rows ignored (non-lifecycle)", stats.Ignored)
	st.AddRow("rows skipped (-lenient)", stats.Skipped)
	st.AddRow("pod submits", kubeRes.Submits)
	st.AddRow("pod ends", kubeRes.Ends)
	st.AddRow("submits beyond horizon", kubeRes.BeyondHorizon)
	st.AddRow("barrier epochs", kubeRes.Epochs)
	st.AddRow("migrations kube / hostlo", fmt.Sprintf("%d / %d", kubeRes.Migrations, hostloRes.Migrations))
	st.AddRow("state digest kube", fmt.Sprintf("%016x", kubeRes.Digest))
	st.AddRow("state digest hostlo", fmt.Sprintf("%016x", hostloRes.Digest))
	o.emit(st)
	fmt.Println()

	var kube, hostlo aggregate
	kube.add(kubeRes.Merged)
	hostlo.add(hostloRes.Merged)
	t := report.New(fmt.Sprintf("Sharded trace replay, %v horizon", o.horizon),
		"metric", "kubernetes", "hostlo")
	t.AddRow("pods arrived", kube.arrived, hostlo.arrived)
	t.AddRow("pods scheduled", kube.scheduled, hostlo.scheduled)
	t.AddRow("pods departed", kube.departed, hostlo.departed)
	t.AddRow("pods failed (unschedulable)", kube.failed, hostlo.failed)
	t.AddRow("pods pending at horizon", kube.pending, hostlo.pending)
	t.AddRow("pods transferred across worlds", kube.transfers, hostlo.transfers)
	t.AddRow("cost over horizon $", kube.dollars, hostlo.dollars)
	t.AddRow("cost split spot / on-demand $", kube.costSplit(), hostlo.costSplit())
	t.AddRow("final fleet $/h", kube.finalRate, hostlo.finalRate)
	t.AddRow("final fleet nodes", kube.finalNodes, hostlo.finalNodes)
	t.AddRow("peak fleet nodes", kube.peakNodes, hostlo.peakNodes)
	t.AddRow("mean time-to-schedule", kube.ttsMean(), hostlo.ttsMean())
	t.AddRow("scale-ups / scale-downs", fmt.Sprintf("%d / %d", kube.scaleUps, kube.scaleDowns),
		fmt.Sprintf("%d / %d", hostlo.scaleUps, hostlo.scaleDowns))
	t.AddRow("node kills (faults)", kube.kills, hostlo.kills)
	if o.cloud.SpotFrac > 0 {
		t.AddRow("spot provisions / revocations", fmt.Sprintf("%d / %d", kube.spotProv, kube.spotRevoked),
			fmt.Sprintf("%d / %d", hostlo.spotProv, hostlo.spotRevoked))
		t.AddRow("on-demand fallbacks", kube.odFallbacks, hostlo.odFallbacks)
	}
	if o.cloud.Zones > 1 {
		t.AddRow("zone kills (drills)", kube.zoneKills, hostlo.zoneKills)
		t.AddRow("final zone spread", kube.spread(o.cloud.ZoneNames), hostlo.spread(o.cloud.ZoneNames))
	}
	t.AddRow("pods displaced / rescheduled", fmt.Sprintf("%d / %d", kube.displaced, kube.reschedules),
		fmt.Sprintf("%d / %d", hostlo.displaced, hostlo.reschedules))
	if kube.dollars > 0 {
		t.AddRow("hostlo savings", "-", report.Percent((kube.dollars-hostlo.dollars)/kube.dollars))
	}
	o.emit(t)

	fmt.Println()
	tj := report.New("Cost-over-time trajectory (merged worlds)",
		"t", "kube_$/h", "hostlo_$/h", "kube_pending", "hostlo_pending", "kube_util", "hostlo_util")
	mk := kubeRes.Merged.Samples
	mh := hostloRes.Merged.Samples
	for i := range mk {
		tj.AddRow(mk[i].T, mk[i].CostPerH, mh[i].CostPerH,
			mk[i].Pending, mh[i].Pending,
			report.Percent(mk[i].Util()), report.Percent(mh[i].Util()))
	}
	o.emit(tj)
}

// aggregate sums Result fields across a population.
type aggregate struct {
	arrived, scheduled, departed, failed, pending    int
	finalNodes, peakNodes, scaleUps, scaleDowns      int
	kills, displaced, reschedules, optRuns, optMoves int
	optFull, transfers, cacheHits, cacheMisses       int
	spotProv, spotRevoked, odFallbacks, zoneKills    int
	reconRounds, reconActions                        int
	zoneSpread                                       []int
	dollars, finalRate, spotDollars, odDollars       float64
	ttsSum                                           time.Duration
}

func (a *aggregate) add(r cluster.Result) {
	a.arrived += r.Arrived
	a.scheduled += r.Scheduled
	a.departed += r.Departed
	a.failed += r.Failed
	a.pending += r.StillPending
	a.finalNodes += r.FinalNodes
	a.peakNodes += r.PeakNodes
	a.scaleUps += r.ScaleUps
	a.scaleDowns += r.ScaleDowns
	a.kills += r.Kills
	a.displaced += r.Displaced
	a.reschedules += r.Reschedules
	a.transfers += r.TransferredIn
	a.optRuns += r.OptimizerRuns
	a.optFull += r.OptimizerFull
	a.optMoves += r.OptimizerMoves
	a.cacheHits += r.OptimizerCacheHits
	a.cacheMisses += r.OptimizerCacheMisses
	a.spotProv += r.SpotProvisions
	a.spotRevoked += r.SpotRevocations
	a.odFallbacks += r.OnDemandFallbacks
	a.zoneKills += r.ZoneKills
	a.reconRounds += r.ReconcileRounds
	a.reconActions += r.ReconcileActions
	for i, v := range r.ZoneSpread {
		if i >= len(a.zoneSpread) {
			a.zoneSpread = append(a.zoneSpread, 0)
		}
		a.zoneSpread[i] += v
	}
	a.dollars += r.CostDollars
	a.finalRate += r.FinalCostPerH
	a.spotDollars += r.CostSpotDollars
	a.odDollars += r.CostOnDemandDollars
	a.ttsSum += r.TTSSum
}

// costSplit renders the spot/on-demand halves of the cost integral.
func (a *aggregate) costSplit() string {
	return fmt.Sprintf("%.4g / %.4g", a.spotDollars, a.odDollars)
}

// spread renders the final per-zone live-node counts.
func (a *aggregate) spread(names []string) string {
	parts := make([]string, len(a.zoneSpread))
	for i, v := range a.zoneSpread {
		name := fmt.Sprintf("z%d", i)
		if i < len(names) {
			name = names[i]
		}
		parts[i] = fmt.Sprintf("%s=%d", name, v)
	}
	return strings.Join(parts, " ")
}

// ttsMean is the population-level mean time-to-schedule.
func (a *aggregate) ttsMean() time.Duration {
	if a.scheduled == 0 {
		return 0
	}
	return (a.ttsSum / time.Duration(a.scheduled)).Round(time.Millisecond)
}

// record instruments the (engine-less) placement run post hoc: one
// instant event per user on a manual 1 ms-per-user clock, plus summary
// metrics. rec may be nil.
func record(rec *telemetry.Recorder, res cloudsim.PopulationResult) {
	if rec == nil {
		return
	}
	reg := rec.Metrics()
	reg.Counter("costsim/users").Add(float64(len(res.Users)))
	sav := reg.Series("costsim/savings_rel")
	for i, u := range res.Users {
		rec.SetNow(sim.Time(i) * sim.Time(time.Millisecond))
		rec.Instant("costsim", fmt.Sprintf("user-%d", u.UserID), "savings_rel", u.SavingsRel())
		sav.Add(u.SavingsRel())
	}
	kube, hostlo := res.TotalCosts()
	reg.Gauge("costsim/kube_cost_per_h").Set(kube)
	reg.Gauge("costsim/hostlo_cost_per_h").Set(hostlo)
}
