// Command costsim regenerates the Hostlo cost-saving simulation
// (Fig. 9, §5.3.1): per-user VM fleet costs under Kubernetes whole-pod
// placement versus Hostlo container-level placement, over a synthetic
// Google-cluster-trace population priced with the AWS EC2 m5 catalog.
//
//	costsim                # Fig. 9 histogram + headline statistics
//	costsim -table 2       # the VM catalog (Table 2)
//	costsim -users 1000    # a larger population
//
// Add -trace out.json for a per-user trace of the placement run and
// -metrics for the telemetry tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nestless/internal/cli"
	"nestless/internal/cloudsim"
	"nestless/internal/figures"
	"nestless/internal/report"
	"nestless/internal/sim"
	"nestless/internal/telemetry"
	"nestless/internal/trace"
)

func main() {
	table := flag.Int("table", 0, "print a table instead: 2")
	users := flag.Int("users", 492, "population size (the paper simulates 492 users)")
	seed := flag.Int64("seed", 42, "generator seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	top := flag.Int("top", 0, "also list the top-N savers")
	workers := cli.ParallelFlag()
	faultSpec := cli.FaultsFlag()
	tf := cli.TelemetryFlags()
	flag.Parse()
	cli.CheckParallel(*workers)
	// costsim's placement run is engine-less: the spec is validated for
	// command-line uniformity, but there is no datapath to fault.
	if cli.ParseFaults(*faultSpec) != nil {
		fmt.Fprintln(os.Stderr, "costsim: note: -faults validated but ignored (the placement run has no simulated datapath)")
	}

	emit := func(t *report.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
	}

	switch *table {
	case 0:
	case 2:
		emit(figures.Table2())
		return
	default:
		cli.BadFlag("costsim: unknown table %d (want 2)", *table)
	}
	if *users <= 0 {
		cli.BadFlag("costsim: -users must be positive, got %d", *users)
	}

	// Telemetry records per-user events in trace order, so the fan-out
	// stays serial when a recorder is active (same rule as the figures).
	simWorkers := *workers
	if tf.Recorder() != nil {
		simWorkers = 1
	}
	cfg := trace.DefaultConfig(*seed)
	cfg.Users = *users
	pop := trace.Generate(cfg)
	res := cloudsim.SimulateParallel(pop, cloudsim.Catalog(), simWorkers)
	record(tf.Recorder(), res)

	hist, stats := figures.Fig9(figures.Opts{Seed: *seed, Quick: *users != 492, Workers: *workers})
	if *users == 492 {
		emit(hist)
		fmt.Println()
		emit(stats)
	} else {
		// Custom population: report directly.
		t := report.New(fmt.Sprintf("Hostlo savings over %d users", len(res.Users)),
			"metric", "value")
		maxAbs, maxRel := res.MaxAbsSavings()
		t.AddRow("users with savings", report.Percent(res.SaversFraction()))
		t.AddRow("savers above 5%", report.Percent(res.BigSaversFractionOfSavers()))
		t.AddRow("max relative savings", report.Percent(res.MaxRelSavings()))
		t.AddRow("max absolute savings $/h", maxAbs)
		t.AddRow("  (at relative savings)", report.Percent(maxRel))
		emit(t)
	}

	if *top > 0 {
		fmt.Println()
		tt := report.New(fmt.Sprintf("Top %d savers", *top),
			"user", "kube_cost", "hostlo_cost", "savings_rel", "kube_vms", "hostlo_vms")
		for _, u := range res.TopSavers(*top) {
			tt.AddRow(u.UserID, u.KubeCostPerH, u.HostloCostPerH,
				report.Percent(u.SavingsRel()), u.KubeVMs, u.HostloVMs)
		}
		emit(tt)
	}
	tf.EmitOrDie("costsim")
}

// record instruments the (engine-less) placement run post hoc: one
// instant event per user on a manual 1 ms-per-user clock, plus summary
// metrics. rec may be nil.
func record(rec *telemetry.Recorder, res cloudsim.PopulationResult) {
	if rec == nil {
		return
	}
	reg := rec.Metrics()
	reg.Counter("costsim/users").Add(float64(len(res.Users)))
	sav := reg.Series("costsim/savings_rel")
	for i, u := range res.Users {
		rec.SetNow(sim.Time(i) * sim.Time(time.Millisecond))
		rec.Instant("costsim", fmt.Sprintf("user-%d", u.UserID), "savings_rel", u.SavingsRel())
		sav.Add(u.SavingsRel())
	}
	kube, hostlo := res.TotalCosts()
	reg.Gauge("costsim/kube_cost_per_h").Set(kube)
	reg.Gauge("costsim/hostlo_cost_per_h").Set(hostlo)
}
