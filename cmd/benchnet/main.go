// Command benchnet regenerates the paper's micro-benchmark figures:
//
//	benchnet -fig 2    # nested vs single-level virtualization (§2)
//	benchnet -fig 4    # BrFusion vs NAT vs NoCont sweep (§5.2.1)
//	benchnet -fig 10   # Hostlo vs NAT vs Overlay vs SameNode (§5.3.2)
//
// Use -csv for machine-readable output, -quick for a fast pass with
// fewer message sizes, -trace out.json for a Chrome trace of the runs
// and -metrics for the telemetry tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"nestless/internal/cli"
	"nestless/internal/figures"
	"nestless/internal/report"
)

func main() {
	fig := flag.Int("fig", 4, "figure to regenerate: 2, 4 or 10")
	seed := flag.Int64("seed", 42, "simulation seed")
	quick := flag.Bool("quick", false, "short measurement windows, fewer sizes")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := cli.ParallelFlag()
	faultSpec := cli.FaultsFlag()
	tf := cli.TelemetryFlags()
	prof := cli.ProfileFlags()
	flag.Parse()

	cli.CheckParallel(*workers)
	prof.Start("benchnet")
	defer prof.Stop("benchnet")
	opts := figures.Opts{Seed: *seed, Quick: *quick, Rec: tf.Recorder(), Workers: *workers,
		Faults: cli.ParseFaults(*faultSpec)}
	var tables []*report.Table
	switch *fig {
	case 2:
		tables = []*report.Table{figures.Fig2(opts)}
	case 4:
		tput, lat := figures.Fig4(opts)
		tables = []*report.Table{tput, lat}
	case 10:
		tput, lat := figures.Fig10(opts)
		tables = []*report.Table{tput, lat}
	default:
		cli.BadFlag("benchnet: unknown figure %d (want 2, 4 or 10)", *fig)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
	}
	tf.EmitOrDie("benchnet")
}
