package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: nestless/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineSchedule  	  200000	        20.03 ns/op	       0 B/op	       0 allocs/op
pkg: nestless
BenchmarkFig4BrFusionMicro/nat         	       3	  20108521 ns/op	       304.4 Mbps	       126.0 rtt-µs	 2327234 B/op	   66160 allocs/op
PASS
ok  	nestless	0.345s
`
	doc := parse(bufio.NewScanner(strings.NewReader(in)))
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Fatalf("header = %q/%q", doc.Goos, doc.Goarch)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkEngineSchedule" || b0.Package != "nestless/internal/sim" {
		t.Fatalf("bench 0 = %q in %q", b0.Name, b0.Package)
	}
	if b0.Iterations != 200000 || b0.Metrics["ns/op"] != 20.03 || b0.Metrics["allocs/op"] != 0 {
		t.Fatalf("bench 0 metrics wrong: %+v", b0)
	}
	b1 := doc.Benchmarks[1]
	if b1.Package != "nestless" || b1.Metrics["Mbps"] != 304.4 || b1.Metrics["rtt-µs"] != 126 {
		t.Fatalf("bench 1 metrics wrong: %+v", b1)
	}
}

// TestParseSchedulerThroughput: the cluster scheduler benchmark reports
// a custom pods/s metric; the converter must carry it into the BENCH
// trajectory like any built-in unit.
func TestParseSchedulerThroughput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: nestless/internal/cluster
BenchmarkSchedulerThroughput/kubernetes         	       1	   1183881 ns/op	    224685 pods/s	  524288 B/op	    1024 allocs/op
BenchmarkSchedulerThroughput/hostlo             	       1	 143467223 ns/op	      1854 pods/s
PASS
`
	doc := parse(bufio.NewScanner(strings.NewReader(in)))
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkSchedulerThroughput/kubernetes" || b0.Package != "nestless/internal/cluster" {
		t.Fatalf("bench 0 = %q in %q", b0.Name, b0.Package)
	}
	if b0.Metrics["pods/s"] != 224685 || b0.Metrics["B/op"] != 524288 {
		t.Fatalf("bench 0 metrics wrong: %+v", b0)
	}
	if doc.Benchmarks[1].Metrics["pods/s"] != 1854 {
		t.Fatalf("bench 1 metrics wrong: %+v", doc.Benchmarks[1])
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	doc := parse(bufio.NewScanner(strings.NewReader("hello\nBenchmarkBroken abc\nok\n")))
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage, want 0", len(doc.Benchmarks))
	}
}
