package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: nestless/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineSchedule  	  200000	        20.03 ns/op	       0 B/op	       0 allocs/op
pkg: nestless
BenchmarkFig4BrFusionMicro/nat         	       3	  20108521 ns/op	       304.4 Mbps	       126.0 rtt-µs	 2327234 B/op	   66160 allocs/op
PASS
ok  	nestless	0.345s
`
	doc := parse(bufio.NewScanner(strings.NewReader(in)))
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Fatalf("header = %q/%q", doc.Goos, doc.Goarch)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkEngineSchedule" || b0.Package != "nestless/internal/sim" {
		t.Fatalf("bench 0 = %q in %q", b0.Name, b0.Package)
	}
	if b0.Iterations != 200000 || b0.Metrics["ns/op"] != 20.03 || b0.Metrics["allocs/op"] != 0 {
		t.Fatalf("bench 0 metrics wrong: %+v", b0)
	}
	b1 := doc.Benchmarks[1]
	if b1.Package != "nestless" || b1.Metrics["Mbps"] != 304.4 || b1.Metrics["rtt-µs"] != 126 {
		t.Fatalf("bench 1 metrics wrong: %+v", b1)
	}
}

// TestParseSchedulerThroughput: the cluster scheduler benchmark reports
// a custom pods/s metric; the converter must carry it into the BENCH
// trajectory like any built-in unit.
func TestParseSchedulerThroughput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: nestless/internal/cluster
BenchmarkSchedulerThroughput/kubernetes         	       1	   1183881 ns/op	    224685 pods/s	  524288 B/op	    1024 allocs/op
BenchmarkSchedulerThroughput/hostlo             	       1	 143467223 ns/op	      1854 pods/s
PASS
`
	doc := parse(bufio.NewScanner(strings.NewReader(in)))
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkSchedulerThroughput/kubernetes" || b0.Package != "nestless/internal/cluster" {
		t.Fatalf("bench 0 = %q in %q", b0.Name, b0.Package)
	}
	if b0.Metrics["pods/s"] != 224685 || b0.Metrics["B/op"] != 524288 {
		t.Fatalf("bench 0 metrics wrong: %+v", b0)
	}
	if doc.Benchmarks[1].Metrics["pods/s"] != 1854 {
		t.Fatalf("bench 1 metrics wrong: %+v", doc.Benchmarks[1])
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	doc := parse(bufio.NewScanner(strings.NewReader("hello\nBenchmarkBroken abc\nok\n")))
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage, want 0", len(doc.Benchmarks))
	}
}

// rec builds a Record for the compare tests.
func rec(pkg, name string, metrics map[string]float64) Record {
	return Record{Name: name, Package: pkg, Iterations: 1, Metrics: metrics}
}

// TestCompareGate covers the -baseline regression mode: pass within
// tolerance, fail beyond it, improvements always fine.
func TestCompareGate(t *testing.T) {
	base := Doc{Benchmarks: []Record{
		rec("p", "BenchmarkLifecycleScale/1k/kubernetes/indexed", map[string]float64{"pods/s": 1000}),
		rec("p", "BenchmarkLifecycleScale/1k/hostlo/indexed", map[string]float64{"pods/s": 500}),
	}}

	// Mild slowdown on one, improvement on the other: within a 20% gate.
	cur := Doc{Benchmarks: []Record{
		rec("p", "BenchmarkLifecycleScale/1k/kubernetes/indexed", map[string]float64{"pods/s": 900}),
		rec("p", "BenchmarkLifecycleScale/1k/hostlo/indexed", map[string]float64{"pods/s": 700}),
	}}
	lines, failed, err := compare(cur, base, "pods/s", 0.20, false)
	if err != nil || failed {
		t.Fatalf("within tolerance: failed=%v err=%v\n%s", failed, err, strings.Join(lines, "\n"))
	}
	if len(lines) != 3 { // two rows + summary
		t.Fatalf("got %d lines, want 3: %v", len(lines), lines)
	}

	// A >20% drop must fail.
	cur.Benchmarks[1].Metrics["pods/s"] = 399
	_, failed, err = compare(cur, base, "pods/s", 0.20, false)
	if err != nil || !failed {
		t.Fatalf("regression not flagged: failed=%v err=%v", failed, err)
	}

	// Benchmarks only on one side are skipped, but comparing nothing at
	// all is an error, not a vacuous pass.
	_, failed, err = compare(Doc{Benchmarks: []Record{
		rec("p", "BenchmarkRenamed", map[string]float64{"pods/s": 1}),
	}}, base, "pods/s", 0.20, false)
	if err == nil || failed {
		t.Fatalf("empty comparison: failed=%v err=%v, want err", failed, err)
	}

	// Records without the gated metric are skipped too.
	_, _, err = compare(Doc{Benchmarks: []Record{
		rec("p", "BenchmarkLifecycleScale/1k/kubernetes/indexed", map[string]float64{"ns/op": 5}),
	}}, base, "pods/s", 0.20, false)
	if err == nil {
		t.Fatal("metric-less comparison should error")
	}
}

// TestCompareGateLower covers -lower: for allocation and time metrics a
// RISE is the regression, and a drop — however large — is always fine.
func TestCompareGateLower(t *testing.T) {
	base := Doc{Benchmarks: []Record{
		rec("p", "BenchmarkTraceReplay/1shard", map[string]float64{"allocs/op": 1000}),
		rec("p", "BenchmarkTraceReplay/8shard", map[string]float64{"allocs/op": 1100}),
	}}

	// Mild rise on one, big improvement on the other: within a 20% gate.
	cur := Doc{Benchmarks: []Record{
		rec("p", "BenchmarkTraceReplay/1shard", map[string]float64{"allocs/op": 1100}),
		rec("p", "BenchmarkTraceReplay/8shard", map[string]float64{"allocs/op": 500}),
	}}
	lines, failed, err := compare(cur, base, "allocs/op", 0.20, true)
	if err != nil || failed {
		t.Fatalf("within tolerance: failed=%v err=%v\n%s", failed, err, strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[len(lines)-1], "rise") {
		t.Fatalf("summary should name the rise sense: %q", lines[len(lines)-1])
	}

	// A >20% rise must fail.
	cur.Benchmarks[0].Metrics["allocs/op"] = 1201
	_, failed, err = compare(cur, base, "allocs/op", 0.20, true)
	if err != nil || !failed {
		t.Fatalf("alloc rise not flagged: failed=%v err=%v", failed, err)
	}

	// The same risen record gated WITHOUT -lower reads as an
	// improvement and passes — the flag is what flips the sense.
	risen := Doc{Benchmarks: cur.Benchmarks[:1]}
	_, failed, err = compare(risen, base, "allocs/op", 0.20, false)
	if err != nil || failed {
		t.Fatalf("higher-is-better reading should pass: failed=%v err=%v", failed, err)
	}
}
