// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, one record per benchmark with its
// iteration count and every reported metric (ns/op, B/op, allocs/op and
// custom units like Mbps or rtt-µs). It is how the repository's
// BENCH_core.json performance trajectory is produced:
//
//	go test -run NONE -bench . -benchtime 1x -benchmem ./... | benchjson > BENCH_core.json
//
// Parsing from text (rather than re-running benchmarks in-process)
// keeps the tool composable: any benchmark selection, count or
// benchtime works, and CI captures exactly what the log shows.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nestless/internal/cli"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	out := parse(bufio.NewScanner(os.Stdin))
	if len(out.Benchmarks) == 0 {
		cli.Fatal("benchjson", fmt.Errorf("no benchmark lines found on stdin"))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		cli.Fatal("benchjson", err)
	}
}

func parse(sc *bufio.Scanner) Doc {
	var doc Doc
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Package = pkg
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc
}

// parseBench parses one result line: name, iterations, then
// (value, unit) pairs.
func parseBench(line string) (Record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Record{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
