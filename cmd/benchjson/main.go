// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, one record per benchmark with its
// iteration count and every reported metric (ns/op, B/op, allocs/op and
// custom units like Mbps or rtt-µs). It is how the repository's
// BENCH_core.json performance trajectory is produced:
//
//	go test -run NONE -bench . -benchtime 1x -benchmem ./... | benchjson > BENCH_core.json
//
// Parsing from text (rather than re-running benchmarks in-process)
// keeps the tool composable: any benchmark selection, count or
// benchtime works, and CI captures exactly what the log shows.
//
// With -baseline the tool becomes a regression gate instead: the parsed
// run is compared against a previously committed JSON document and the
// exit status reports whether any benchmark's -metric (default pods/s,
// the scheduler-throughput number) dropped by more than -maxdrop
// (default 0.20). CI uses this to fail pull requests that slow the
// indexed scheduling core down:
//
//	go test -run NONE -bench 'LifecycleScale/1k' -benchtime 1x ./internal/cluster \
//	  | benchjson -baseline BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nestless/internal/cli"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "",
		"compare against this previously written JSON document instead of emitting JSON; exit 1 on regression")
	metric := flag.String("metric", "pods/s",
		"the metric the -baseline comparison gates on (higher is better unless -lower)")
	maxdrop := flag.Float64("maxdrop", 0.20,
		"maximum tolerated fractional regression of -metric vs -baseline before failing")
	lower := flag.Bool("lower", false,
		"the gated metric is lower-is-better (B/op, allocs/op, ns/op): fail on a rise instead of a drop")
	flag.Parse()
	if *maxdrop < 0 || *maxdrop >= 1 {
		cli.BadFlag("-maxdrop must be in [0, 1), got %v", *maxdrop)
	}
	out := parse(bufio.NewScanner(os.Stdin))
	if len(out.Benchmarks) == 0 {
		cli.Fatal("benchjson", fmt.Errorf("no benchmark lines found on stdin"))
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			cli.Fatal("benchjson", err)
		}
		var base Doc
		if err := json.Unmarshal(data, &base); err != nil {
			cli.Fatal("benchjson", fmt.Errorf("%s: %w", *baseline, err))
		}
		lines, failed, err := compare(out, base, *metric, *maxdrop, *lower)
		if err != nil {
			cli.Fatal("benchjson", err)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		cli.Fatal("benchjson", err)
	}
}

// compare gates the current run against a baseline document: every
// benchmark present in both with the gated metric must not have
// regressed by more than maxdrop — a drop for higher-is-better metrics
// (throughput), a rise for lower-is-better ones (allocations, time).
// Benchmarks on one side only are skipped — the gate checks
// trajectories, not coverage — but comparing zero benchmarks is an
// error, so a renamed benchmark cannot silently turn the gate vacuous.
func compare(cur, base Doc, metric string, maxdrop float64, lower bool) (lines []string, failed bool, err error) {
	baseBy := make(map[string]Record, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[r.Package+" "+r.Name] = r
	}
	compared := 0
	for _, r := range cur.Benchmarks {
		b, ok := baseBy[r.Package+" "+r.Name]
		if !ok {
			continue
		}
		cv, cok := r.Metrics[metric]
		bv, bok := b.Metrics[metric]
		if !cok || !bok || bv <= 0 {
			continue
		}
		compared++
		regress := (bv - cv) / bv // fraction the metric dropped
		if lower {
			regress = (cv - bv) / bv // fraction the metric rose
		}
		status := "ok"
		if regress > maxdrop {
			status = "REGRESSION"
			failed = true
		}
		delta := (cv - bv) / bv * 100
		lines = append(lines, fmt.Sprintf("%-60s %s %12.1f -> %12.1f (%+.1f%%) %s",
			r.Name, metric, bv, cv, delta, status))
	}
	if compared == 0 {
		return nil, false, fmt.Errorf("no benchmark shared metric %q with the baseline — nothing was gated", metric)
	}
	sense := "drop"
	if lower {
		sense = "rise"
	}
	lines = append(lines, fmt.Sprintf("gated %d benchmark(s) on %s, max tolerated %s %.0f%%",
		compared, metric, sense, maxdrop*100))
	return lines, failed, nil
}

func parse(sc *bufio.Scanner) Doc {
	var doc Doc
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Package = pkg
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc
}

// parseBench parses one result line: name, iterations, then
// (value, unit) pairs.
func parseBench(line string) (Record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Record{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
