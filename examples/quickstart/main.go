// Quickstart: boot a simulated host with one VM, deploy a pod with
// BrFusion networking (a dedicated NIC hot-plugged by the VMM straight
// into the pod's namespace), and exchange traffic with it from an
// external client — the paper's §3 datapath, end to end, in a few lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nestless/internal/kube"
	"nestless/internal/netperf"
	"nestless/internal/netsim"
	"nestless/internal/scenario"
	"nestless/internal/sim"
)

func main() {
	// A ready-made §5.2 topology: host + bridge + external client, one
	// 5-vCPU VM running a container engine with the BrFusion CNI plugin.
	sc, err := scenario.NewServerClient(1, scenario.ModeBrFusion, 8080)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed pod with BrFusion networking")
	fmt.Printf("  pod address:  %v  (first-class on the host bridge %v)\n",
		sc.DialAddr, scenario.HostBridgeNet)
	fmt.Printf("  VM:           %s (%d vCPUs, %d MB)\n", sc.VM.Name, sc.VM.VCPUs, sc.VM.MemoryMB)

	// The pod is reachable directly — no in-VM bridge, no in-VM NAT.
	var got int
	if _, err := sc.ServerNS.BindUDP(8080, func(p *netsim.Packet) { got = p.PayloadLen }); err != nil {
		log.Fatal(err)
	}
	s, _ := sc.Client.BindUDP(0, nil)
	s.SendTo(sc.DialAddr, 8080, 512, "hello")
	sc.Eng.Run()
	fmt.Printf("  datagram:     client -> pod delivered %d bytes\n", got)

	// The in-VM netfilter saw none of it.
	fmt.Printf("  in-VM NAT rewrites: %d (BrFusion bypasses the nested layer)\n",
		sc.VM.NS.Filter.Translations)

	// Quick throughput check against the same pod.
	tp := netperf.RunTCPStream(sc.Eng, netperf.StreamConfig{
		Client: sc.Client, Server: sc.ServerNS,
		DialAddr: sc.DialAddr, Port: 5001, MsgSize: 1280,
	})
	fmt.Printf("  TCP_STREAM:   %.0f Mbps at 1280 B messages\n", tp.ThroughputMbps)

	// Everything above ran on the deterministic virtual clock.
	fmt.Printf("  virtual time: %v, %d events\n", sim.Time(sc.Eng.Now()), sc.Eng.Steps)

	// The same cluster can deploy more pods the Kubernetes way.
	sc.Cluster.Deploy(kube.PodSpec{
		Name:    "sidecar-demo",
		Network: "brfusion",
		Containers: []kube.ContainerSpec{
			{Name: "app", Image: "app", CPU: 1, MemMB: 256},
		},
	}, func(pod *kube.Pod, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  second pod:   %s at %v\n", pod.Spec.Name, pod.Parts[0].PodIP)
	})
	sc.Eng.Run()
}
