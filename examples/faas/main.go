// FaaS churn: Function-as-a-Service platforms (the paper's §1 points at
// AWS Lambda) start containers-in-VMs at high rates, so container boot
// time is product-critical. This example boots a burst of short-lived
// function containers under vanilla Docker NAT networking and under
// BrFusion's hot-plugged NICs, and compares the start-up distributions
// (the paper's Fig. 8 methodology).
//
//	go run ./examples/faas
package main

import (
	"fmt"

	"nestless/internal/figures"
	"nestless/internal/scenario"
)

func main() {
	const functions = 60
	fmt.Printf("booting %d function containers per solution...\n\n", functions)

	opts := figures.Opts{Seed: 99}
	nat := figures.BootSamples(opts, scenario.ModeNAT, functions)
	brf := figures.BootSamples(opts, scenario.ModeBrFusion, functions)

	ms := func(v float64) float64 { return v * 1e3 }
	fmt.Printf("%-10s %8s %8s %8s %8s %8s\n", "solution", "min", "p50", "p75", "p99", "max")
	for _, row := range []struct {
		name string
		s    interface {
			Min() float64
			Median() float64
			Percentile(float64) float64
			Max() float64
		}
	}{{"nat", nat}, {"brfusion", brf}} {
		fmt.Printf("%-10s %7.0fms %7.0fms %7.0fms %7.0fms %7.0fms\n", row.name,
			ms(row.s.Min()), ms(row.s.Median()), ms(row.s.Percentile(75)),
			ms(row.s.Percentile(99)), ms(row.s.Max()))
	}

	better := 0
	nv, bv := nat.Samples(), brf.Samples()
	for i := range nv {
		if bv[i] <= nv[i] {
			better++
		}
	}
	fmt.Printf("\nBrFusion boots faster at %d%% of quantiles (paper: ~75%%) —\n", better*100/len(nv))
	fmt.Println("hot-plugging one NIC via QMP beats veth + bridge + iptables churn.")
}
