// Cross-VM pod: deploy one pod whose containers cannot fit a single VM.
// The orchestrator splits it across two VMs and asks the VMM for a
// Hostlo — the paper's multiplexed host-backed loopback (§4) — so the
// parts keep talking over their pod-localhost. Compare the result with
// the same workload co-located on one node.
//
//	go run ./examples/crossvmpod
package main

import (
	"fmt"
	"log"

	"nestless/internal/netperf"
	"nestless/internal/scenario"
)

func main() {
	// Hostlo: a 8-core pod on 5-core VMs — forced split.
	pp, err := scenario.NewPodPair(7, scenario.CCHostlo, 9000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed one pod across two VMs (Hostlo localhost)")
	fmt.Printf("  hostlo device: %s with %d queues (one per VM)\n",
		pp.HostloDev.Name(), pp.HostloDev.Queues())
	fmt.Printf("  part A localhost peer: %v\n", pp.DialAddr)

	run := func(name string, p *scenario.PodPair) {
		tp := netperf.RunTCPStream(p.Eng, netperf.StreamConfig{
			Client: p.ANS, Server: p.BNS,
			DialAddr: p.DialAddr, Port: 5001, MsgSize: 1024,
		})
		rr := netperf.RunUDPRR(p.Eng, netperf.RRConfig{
			Client: p.ANS, Server: p.BNS,
			DialAddr: p.DialAddr, Port: 7001, MsgSize: 1024,
		})
		fmt.Printf("  %-9s  %8.0f Mbps   RTT %v (sd %v)\n",
			name, tp.ThroughputMbps, rr.MeanRTT, rr.StddevRTT)
	}
	fmt.Println("intra-pod traffic at 1024 B:")
	run("hostlo", pp)

	// The same containers co-located in one VM (the baseline Hostlo
	// gives up, in exchange for schedulability).
	sn, err := scenario.NewPodPair(7, scenario.CCSameNode, 9000)
	if err != nil {
		log.Fatal(err)
	}
	run("samenode", sn)

	// And the state of the art for cross-node pods: a VXLAN overlay.
	ov, err := scenario.NewPodPair(7, scenario.CCOverlay, 9000)
	if err != nil {
		log.Fatal(err)
	}
	run("overlay", ov)

	fmt.Println("hostlo trades bulk throughput for flat, low latency —")
	fmt.Println("exactly the profile intra-pod control traffic wants (§5.3.2).")
}
