// Cost planner: feed your own pod inventory into the paper's cost
// simulation (§5.3.1) and see what cross-VM pod placement (Hostlo) would
// save against Kubernetes whole-pod placement, priced with the AWS m5
// on-demand catalog (Table 2).
//
//	go run ./examples/costplanner
package main

import (
	"fmt"
	"log"

	"nestless/internal/cloudsim"
	"nestless/internal/trace"
)

func main() {
	// The §2 motivating workload, plus a microservice fleet. Requests
	// are fractions of an m5.24xlarge (96 vCPU / 384 GB): one "rel CPU"
	// unit of 0.0104 ≈ 1 vCPU.
	const oneCPU = 1.0 / 96
	const oneGB = 1.0 / 384

	user := trace.User{
		ID: 0,
		Pods: []trace.Pod{
			{
				// The paper's example: 6 vCPUs + 24 GiB in one pod.
				ID: "analytics",
				Containers: []trace.Container{
					{CPU: 2 * oneCPU, Mem: 8 * oneGB},
					{CPU: 2 * oneCPU, Mem: 8 * oneGB},
					{CPU: 2 * oneCPU, Mem: 8 * oneGB},
				},
			},
			{
				ID: "web",
				Containers: []trace.Container{
					{CPU: 1 * oneCPU, Mem: 2 * oneGB},
					{CPU: 1 * oneCPU, Mem: 2 * oneGB},
				},
			},
			{
				// 20 vCPUs in one pod: whole-pod placement must jump
				// from a 4xlarge (16 vCPU) to a 12xlarge (48 vCPU) — the
				// catalog gap where fragmentation hurts most.
				ID: "workers",
				Containers: []trace.Container{
					{CPU: 5 * oneCPU, Mem: 16 * oneGB},
					{CPU: 5 * oneCPU, Mem: 16 * oneGB},
					{CPU: 5 * oneCPU, Mem: 16 * oneGB},
					{CPU: 5 * oneCPU, Mem: 16 * oneGB},
				},
			},
		},
	}

	res, err := cloudsim.SimulateUser(user, cloudsim.Catalog())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload: 3 pods, 9 containers (analytics 6cpu/24GB, web 2cpu/4GB, workers 20cpu/64GB)")
	fmt.Printf("  kubernetes (whole pods):   $%.3f/h on %d VMs\n", res.KubeCostPerH, res.KubeVMs)
	fmt.Printf("  hostlo (split pods):       $%.3f/h on %d VMs\n", res.HostloCostPerH, res.HostloVMs)
	fmt.Printf("  savings:                   $%.3f/h (%.1f%%)\n",
		res.SavingsAbs(), res.SavingsRel()*100)

	// How it scales over a whole tenant population.
	pop := trace.Generate(trace.DefaultConfig(2026))
	all := cloudsim.Simulate(pop, cloudsim.Catalog())
	kube, hostlo := all.TotalCosts()
	fmt.Printf("\nacross %d synthetic tenants (Google-trace-shaped):\n", len(all.Users))
	fmt.Printf("  tenants that save money:   %.1f%% (paper: 11.4%%)\n", all.SaversFraction()*100)
	fmt.Printf("  best relative savings:     %.1f%% (paper: ~40%%)\n", all.MaxRelSavings()*100)
	fmt.Printf("  population bill:           $%.0f/h -> $%.0f/h\n", kube, hostlo)
}
