#!/bin/sh
# Regenerate BENCH_core.json, the repository's performance trajectory:
# every Benchmark* in the tree, one iteration each (-benchtime 1x keeps
# the whole sweep fast and the numbers comparable run-to-run on the same
# box), with allocation stats, converted to JSON by cmd/benchjson.
#
# Custom metrics ride along with the built-in ones — notably the
# cluster scheduler throughput (BenchmarkSchedulerThroughput, pods/s
# per policy), the trace-scale lifecycle family
# (BenchmarkLifecycleScale, 1k/10k/100k pods per policy and scheduler
# mode), the sharded trace replay (BenchmarkTraceReplay, pods/s at
# 1/4/8 shards over a ~100k-pod stream), the world snapshot/fork
# engine (BenchmarkSnapshotFork, forks/s for capture, codec round-trip
# and restore-and-continue on a 200-user Hostlo world), and the cloud
# reconciler (BenchmarkReconcilerScale, machine-set convergence
# rounds/s over 1k/10k-node fleets). CI gates on the committed copy:
# benchjson -baseline fails the build when a LifecycleScale/1k or
# TraceReplay/1shard pods/s figure drops more than 20% below this
# file, when TraceReplay/1shard allocs/op RISES more than 20% above it
# (benchjson -lower — the pooled replay datapath is an allocation
# budget, not just a throughput number), or LifecycleScale/100k/hostlo,
# any SnapshotFork forks/s leg, or a ReconcilerScale rounds/s leg by
# more than 30% (the wider margin absorbs shared-runner noise); CI also
# smoke-runs the BENCH_1M=1-gated 1M-pod Hostlo lifecycle, the
# REPLAY_3D=1-gated 3-day multi-day replay equivalence test, and
# uploads the 100k CPU profile as an artifact (see
# .github/workflows/ci.yml).
#
# Usage, from the repository root:
#
#   sh scripts/bench_core.sh            # writes BENCH_core.json
#   sh scripts/bench_core.sh out.json   # custom destination
set -e

out="${1:-BENCH_core.json}"
go test -run NONE -bench . -benchtime 1x -benchmem ./... | go run ./cmd/benchjson > "$out"
echo "wrote $out" >&2
