// Package nestless is a from-scratch Go reproduction of "Nested
// Virtualization Without the Nest" (Bacou, Todeschi, Tchana, Hagimont —
// ICPP 2019): BrFusion, a de-duplicated nested networking stack where
// pods receive dedicated hot-plugged NICs on the host bridge, and
// Hostlo, a host-backed multiplexed loopback device enabling cross-VM
// pod deployments — together with the full substrate they need (a
// packet-level Linux-networking simulator, a QEMU/KVM-like VMM with a
// QMP management channel, virtio/vhost, a Docker-like container engine,
// a Kubernetes-like orchestrator with CNI plugins, a VXLAN overlay
// baseline, and the Google-trace cost simulation).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The benchmarks in bench_test.go regenerate every
// table and figure of the paper's evaluation.
package nestless
