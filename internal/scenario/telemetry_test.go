package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/netperf"
	"nestless/internal/telemetry"
)

// TestTraceReconcilesWithAccountant is the telemetry subsystem's core
// guarantee: the Chrome trace's CPU spans, the recorder's rollups and the
// world accountant all describe the same billing, exactly.
func TestTraceReconcilesWithAccountant(t *testing.T) {
	rec := telemetry.New()
	sc, err := NewServerClientWith(42, ModeNAT, rec, 7001)
	if err != nil {
		t.Fatal(err)
	}
	netperf.RunUDPRR(sc.Eng, netperf.RRConfig{
		Client: sc.Client, Server: sc.ServerNS,
		DialAddr: sc.DialAddr, Port: 7001, MsgSize: 256,
		Duration: 20 * time.Millisecond,
	})

	// 1. The recorder's per-entity rollups mirror the accountant exactly.
	entities := sc.Net.Acct.Entities()
	if len(entities) == 0 {
		t.Fatal("accountant recorded nothing")
	}
	for _, ent := range entities {
		if got, want := rec.Rollup("", ent), sc.Net.Acct.Usage(ent); got != want {
			t.Errorf("rollup[%s] = %+v, accountant says %+v", ent, got, want)
		}
	}
	if got, want := len(rec.RollupKeys()), len(entities); got != want {
		t.Errorf("recorder tracks %d entities, accountant %d", got, want)
	}

	// 2. The exported Chrome spans sum back to the same breakdown.
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Cat  string                 `json:"cat"`
			Ph   string                 `json:"ph"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	pidName := map[int]string{}
	sums := map[string]map[string]float64{} // entity → category → µs
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			pidName[e.Pid] = e.Args["name"].(string)
		}
		if e.Ph == "X" && e.Cat == "cpu" {
			ent := pidName[e.Pid]
			if sums[ent] == nil {
				sums[ent] = map[string]float64{}
			}
			sums[ent][e.Name] += e.Dur
		}
	}
	// Direct categories reconcile per entity; Guest is mirror-only (the
	// span lives on the guest entity, the rollup on the VM), checked via
	// the rollup comparison above.
	for _, ent := range entities {
		u := sc.Net.Acct.Usage(ent)
		for _, cat := range []cpuacct.Category{cpuacct.Usr, cpuacct.Sys, cpuacct.Soft} {
			want := float64(u.Of(cat)) / 1e3 // ns → µs
			got := sums[ent][cat.String()]
			if math.Abs(got-want) > 0.5 {
				t.Errorf("span sum %s/%s = %.3fµs, accountant %.3fµs", ent, cat, got, want)
			}
		}
	}
}

// TestTelemetryOffMatchesTelemetryOn: recording must observe, never
// perturb — same seed, same results, recorder or not.
func TestTelemetryOffMatchesTelemetryOn(t *testing.T) {
	run := func(rec *telemetry.Recorder) netperf.RRResult {
		sc, err := NewServerClientWith(7, ModeBrFusion, rec, 7001)
		if err != nil {
			t.Fatal(err)
		}
		return netperf.RunUDPRR(sc.Eng, netperf.RRConfig{
			Client: sc.Client, Server: sc.ServerNS,
			DialAddr: sc.DialAddr, Port: 7001, MsgSize: 512,
			Duration: 15 * time.Millisecond,
		})
	}
	off := run(nil)
	on := run(telemetry.New())
	if off != on {
		t.Fatalf("telemetry changed the simulation: off=%+v on=%+v", off, on)
	}
}
