// Package scenario wires the paper's experiment topologies end to end:
// the client↔containerized-server setups of §5.2 (NAT, BrFusion, NoCont)
// and the intra-pod container-to-container setups of §5.3 (SameNode,
// Hostlo, cross-VM NAT, Docker Overlay). Benchmarks, commands and
// examples all build on these so every figure runs against the same
// plumbing.
package scenario

import (
	"fmt"

	"nestless/internal/brfusion"
	"nestless/internal/container"
	"nestless/internal/core"
	"nestless/internal/cpuacct"
	"nestless/internal/faults"
	"nestless/internal/kube"
	"nestless/internal/netsim"
	"nestless/internal/sim"
	"nestless/internal/telemetry"
	"nestless/internal/vmm"
)

// Address plan shared by all scenarios (the paper's QEMU defaults).
var (
	HostBridgeNet = netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24)
	HostGateway   = netsim.IP(192, 168, 122, 1)
	ClientNet     = netsim.MustPrefix(netsim.IP(10, 0, 2, 0), 24)
	ClientAddr    = netsim.IP(10, 0, 2, 2)
	ClientGW      = netsim.IP(10, 0, 2, 1)
)

// Mode selects the server-side networking of a client↔server scenario.
type Mode string

// Server-side modes (§5.1 methodology).
const (
	// ModeNAT is vanilla nested virtualization: the server container
	// sits behind the VM's docker0 bridge + NAT with published ports.
	ModeNAT Mode = "nat"
	// ModeBrFusion gives the server pod a dedicated hot-plugged NIC on
	// the host bridge.
	ModeBrFusion Mode = "brfusion"
	// ModeNoCont runs the server natively in the VM — the paper's
	// baseline and BrFusion's performance target.
	ModeNoCont Mode = "nocont"
)

// Base is the physical substrate every scenario starts from: host,
// bridge, external client behind a wire, and the management plane.
type Base struct {
	Eng     *sim.Engine
	Net     *netsim.Net
	Host    *vmm.Host
	Ctrl    *core.Controller
	Cluster *kube.Cluster

	// Client is the load generator's namespace, on dedicated CPUs,
	// linked to the host bridge via NAT (§2, Fig. 2 methodology).
	Client *netsim.NetNS

	// Rec is the scenario's telemetry recorder (nil = telemetry off).
	Rec *telemetry.Recorder
	// Faults is the scenario's fault injector (nil = injection off).
	Faults *faults.Injector
}

// Config parameterizes scenario construction. The zero value (plus a
// seed) reproduces the plain constructors.
type Config struct {
	Seed int64
	// Rec enables telemetry when non-nil.
	Rec *telemetry.Recorder
	// Faults enables fault injection when non-nil.
	Faults *faults.Schedule
}

// newBase builds the host + client substrate. rec may be nil.
func newBase(seed int64, rec *telemetry.Recorder) *Base {
	return newBaseCfg(Config{Seed: seed, Rec: rec})
}

// NewBaseCfg builds just the host + client substrate with no nodes or
// pods. Chaos tests use it to keep a handle on the world even when a
// faulted deployment fails, so they can still audit it for leaks.
func NewBaseCfg(cfg Config) *Base { return newBaseCfg(cfg) }

// newBaseCfg builds the host + client substrate from a Config.
func newBaseCfg(cfg Config) *Base {
	seed, rec := cfg.Seed, cfg.Rec
	eng := sim.New(seed)
	eng.MaxSteps = 2_000_000_000
	w := netsim.NewNet(eng)
	// Telemetry attaches before any CPU or namespace exists, so every
	// station created below is instrumented.
	w.Rec = rec
	rec.BindEngine(eng)
	// The injector forks its RNG at construction, so arming it before
	// the topology is built keeps fault rolls off the main stream.
	var inj *faults.Injector
	if cfg.Faults != nil {
		inj = faults.New(eng, cfg.Faults, rec)
		w.Faults = inj
	}
	h := vmm.NewHost(w)
	h.AddBridge("virbr0", HostGateway, HostBridgeNet)
	ctrl := core.NewController(h)

	clientCPU := w.NewCPU("client", 1, "client", "")
	clientCPU.Station.SetWakeup(vmm.WorkerWakeMean, vmm.WorkerWakeJitter, vmm.WakeThreshold)
	client := w.NewNS("client", clientCPU)
	ci := client.AddIface("eth0", w.NewMAC(), w.Costs.EthMTU)
	ci.SetAddr(ClientAddr, ClientNet)
	hi := h.NS.AddIface("cli0", w.NewMAC(), w.Costs.EthMTU)
	hi.SetAddr(ClientGW, ClientNet)
	netsim.NewWire(eng, "client-wire", ci, hi, w.Costs.WireSerialize, w.Costs.WireDelay)
	client.AddRoute(netsim.Route{Dst: netsim.MustPrefix(netsim.IPv4{}, 0), Via: ClientGW, Dev: "eth0"})
	// The client is NAT-ed to the host's bridge domain.
	h.NS.Filter.AddMasquerade(netsim.SNATRule{SrcNet: ClientNet, OutDev: "virbr0"})

	return &Base{Eng: eng, Net: w, Host: h, Ctrl: ctrl, Cluster: kube.NewCluster(ctrl), Client: client, Rec: rec, Faults: inj}
}

// addNode provisions a VM (the paper's size: 5 vCPUs, 4 GB) with a
// container engine and both CNI plugins, registered as a cluster node.
// The BrFusion plugin falls back to the engine's bridge+NAT network
// when the hot-plug path exhausts its retries.
func (b *Base) addNode(name string, addr netsim.IPv4) *kube.Node {
	vm, err := b.Host.CreateVM(vmm.VMConfig{Name: name, VCPUs: 5, MemoryMB: 4096})
	if err != nil {
		// Scenario topologies use unique literal names; a duplicate is a
		// construction bug, not a runtime condition.
		panic(fmt.Sprintf("scenario: %v", err))
	}
	vm.PlugBridgeNIC("virbr0", addr, HostBridgeNet)
	e := container.NewEngine(container.Config{
		Node: name, Eng: b.Eng, Net: b.Net, NS: vm.NS, CPU: vm.CPU,
		EntityCPU: vm.EntityCPU,
		Uplink:    "eth0",
		Boot:      container.FastBootProfile(),
	})
	e.Pull(container.Image{Name: "app", SizeMB: 150})
	node := kube.NewNode(vm, e)
	node.CNI.Register(e.DefaultProvisioner())
	bf := brfusion.New(b.Ctrl, vm, "virbr0")
	bf.Fallback = e.DefaultProvisioner()
	node.CNI.Register(bf)
	b.Cluster.AddNode(node)
	return node
}

// AddNode is the exported form of addNode for tests and tools that
// extend a Base with extra cluster nodes.
func (b *Base) AddNode(name string, addr netsim.IPv4) *kube.Node { return b.addNode(name, addr) }

// ServerClient is a deployed client↔server experiment.
type ServerClient struct {
	*Base
	Mode Mode
	VM   *vmm.VM
	// ServerNS is where the server application binds.
	ServerNS *netsim.NetNS
	// DialAddr is the address the client connects to (the VM for NAT and
	// NoCont, the pod itself for BrFusion).
	DialAddr netsim.IPv4
	// AppEntity and VMEntity name the cpuacct entities for the CPU
	// breakdown figures.
	AppEntity, VMEntity string
}

// NewServerClient builds a §5.2 topology. ports lists the server ports
// to expose; under ModeNAT they are published 1:1 on the VM.
func NewServerClient(seed int64, mode Mode, ports ...uint16) (*ServerClient, error) {
	return NewServerClientWith(seed, mode, nil, ports...)
}

// NewServerClientWith is NewServerClient with a telemetry recorder (nil =
// telemetry off) installed before the topology is built, so boot-time
// control-plane operations appear in the trace too.
func NewServerClientWith(seed int64, mode Mode, rec *telemetry.Recorder, ports ...uint16) (*ServerClient, error) {
	return NewServerClientCfg(Config{Seed: seed, Rec: rec}, mode, ports...)
}

// NewServerClientCfg is the fully parameterized constructor: telemetry
// and fault injection (Config.Faults) are installed before the topology
// is built, so provisioning itself runs under the fault schedule.
func NewServerClientCfg(cfg Config, mode Mode, ports ...uint16) (*ServerClient, error) {
	b := newBaseCfg(cfg)
	vmAddr := HostBridgeNet.Host(10)
	node := b.addNode("server-vm", vmAddr)
	sc := &ServerClient{
		Base:     b,
		Mode:     mode,
		VM:       node.VM,
		VMEntity: "vm/server-vm",
	}

	switch mode {
	case ModeNoCont:
		sc.ServerNS = node.VM.NS
		sc.DialAddr = vmAddr
		sc.AppEntity = "guest/server-vm"
		return sc, nil

	case ModeNAT, ModeBrFusion:
		spec := kube.PodSpec{
			Name: "server",
			Containers: []kube.ContainerSpec{{
				Name: "srv", Image: "app", CPU: 1, MemMB: 512,
				Ports: portMaps(ports),
			}},
		}
		if mode == ModeBrFusion {
			spec.Network = "brfusion"
		}
		var pod *kube.Pod
		var derr error
		b.Cluster.Deploy(spec, func(p *kube.Pod, err error) { pod, derr = p, err })
		b.Eng.Run()
		if derr != nil {
			return nil, fmt.Errorf("scenario: deploy server pod: %w", derr)
		}
		part := pod.Parts[0]
		sc.ServerNS = part.Sandbox.NS
		sc.AppEntity = "app/server"
		if mode == ModeBrFusion {
			sc.DialAddr = part.PodIP
		} else {
			sc.DialAddr = vmAddr
		}
		return sc, nil
	}
	return nil, fmt.Errorf("scenario: unknown mode %q", mode)
}

// portMaps publishes each port 1:1.
func portMaps(ports []uint16) []container.PortMap {
	out := make([]container.PortMap, 0, 2*len(ports))
	for _, p := range ports {
		out = append(out,
			container.PortMap{Proto: netsim.ProtoUDP, NodePort: p, CtrPort: p},
			container.PortMap{Proto: netsim.ProtoTCP, NodePort: p, CtrPort: p},
		)
	}
	return out
}

// Usage reads an entity's CPU usage from the world accountant.
func (b *Base) Usage(entity string) cpuacct.Usage {
	return b.Net.Acct.Usage(entity)
}
