package scenario

import (
	"fmt"

	"nestless/internal/hostlo"
	"nestless/internal/kube"
	"nestless/internal/netsim"
	"nestless/internal/overlay"
	"nestless/internal/telemetry"
)

// CCMode selects the intra-pod container-to-container transport (§5.3).
type CCMode string

// Container-to-container modes.
const (
	// CCSameNode places both containers in one pod on one VM: they talk
	// over the pod's loopback — the paper's baseline.
	CCSameNode CCMode = "samenode"
	// CCHostlo splits the pod across two VMs with a Hostlo localhost.
	CCHostlo CCMode = "hostlo"
	// CCNAT runs the containers as separate pods on two VMs talking
	// through both VMs' NAT layers (vanilla nested networking).
	CCNAT CCMode = "nat"
	// CCOverlay connects the two VMs' containers with a Docker-like
	// VXLAN overlay.
	CCOverlay CCMode = "overlay"
)

// OverlayNet is the overlay scenarios' subnet.
var OverlayNet = netsim.MustPrefix(netsim.IP(10, 100, 0, 0), 24)

// PodPair is a deployed container-to-container experiment: container A
// (the client side) and container B (the server side).
type PodPair struct {
	*Base
	Mode CCMode

	// ANS/BNS are the two containers' namespaces (identical for
	// SameNode).
	ANS, BNS *netsim.NetNS
	// DialAddr is where A reaches B: 127.0.0.1 for SameNode, B's Hostlo
	// endpoint, B's VM address (published ports) for NAT, or B's overlay
	// address.
	DialAddr netsim.IPv4
	// AEntity/BEntity are the cpuacct entities of the two sides.
	AEntity, BEntity string

	// Overlay is set under CCOverlay (for ablations on batching).
	Overlay *overlay.Network
	// HostloDev is set under CCHostlo (for ablations on fan-out).
	HostloDev *hostlo.Device
}

// NewPodPair builds a §5.3 topology. ports lists B's server ports
// (published 1:1 under CCNAT).
func NewPodPair(seed int64, mode CCMode, ports ...uint16) (*PodPair, error) {
	return NewPodPairWith(seed, mode, nil, ports...)
}

// NewPodPairWith is NewPodPair with a telemetry recorder (nil = telemetry
// off) installed before the topology is built.
func NewPodPairWith(seed int64, mode CCMode, rec *telemetry.Recorder, ports ...uint16) (*PodPair, error) {
	return NewPodPairCfg(Config{Seed: seed, Rec: rec}, mode, ports...)
}

// NewPodPairCfg is the fully parameterized constructor: telemetry and
// fault injection (Config.Faults) are installed before the topology is
// built, so deployment itself runs under the fault schedule.
func NewPodPairCfg(cfg Config, mode CCMode, ports ...uint16) (*PodPair, error) {
	b := newBaseCfg(cfg)
	n1 := b.addNode("vm1", HostBridgeNet.Host(10))
	pp := &PodPair{Base: b, Mode: mode}

	deploy := func(spec kube.PodSpec) (*kube.Pod, error) {
		var pod *kube.Pod
		var derr error
		b.Cluster.Deploy(spec, func(p *kube.Pod, err error) { pod, derr = p, err })
		b.Eng.Run()
		return pod, derr
	}

	switch mode {
	case CCSameNode:
		pod, err := deploy(kube.PodSpec{
			Name: "pod",
			Containers: []kube.ContainerSpec{
				{Name: "a", Image: "app", CPU: 2, MemMB: 512},
				{Name: "b", Image: "app", CPU: 2, MemMB: 512},
			},
		})
		if err != nil {
			return nil, err
		}
		part := pod.Parts[0]
		pp.ANS, pp.BNS = part.Sandbox.NS, part.Sandbox.NS
		pp.DialAddr = netsim.IP(127, 0, 0, 1)
		pp.AEntity, pp.BEntity = "app/pod", "app/pod"
		return pp, nil

	case CCHostlo:
		b.addNode("vm2", HostBridgeNet.Host(11))
		// Two 4-core containers cannot fit one 5-core VM: forced split.
		pod, err := deploy(kube.PodSpec{
			Name:       "pod",
			AllowSplit: true,
			Containers: []kube.ContainerSpec{
				{Name: "a", Image: "app", CPU: 4, MemMB: 1024},
				{Name: "b", Image: "app", CPU: 4, MemMB: 1024},
			},
		})
		if err != nil {
			return nil, err
		}
		if !pod.Split() {
			return nil, fmt.Errorf("scenario: hostlo pod was not split")
		}
		pa, pb := pod.Parts[0], pod.Parts[1]
		pp.ANS, pp.BNS = pa.Sandbox.NS, pb.Sandbox.NS
		pp.DialAddr = pb.LocalAddr
		pp.AEntity, pp.BEntity = "app/pod", "app/pod"
		pp.HostloDev = b.Host.Hostlo(pod.HostloID)
		return pp, nil

	case CCNAT:
		b.addNode("vm2", HostBridgeNet.Host(11))
		podA, err := deploy(kube.PodSpec{
			Name:     "pod-a",
			NodeName: "vm1",
			Containers: []kube.ContainerSpec{
				{Name: "a", Image: "app", CPU: 2, MemMB: 512},
			},
		})
		if err != nil {
			return nil, err
		}
		podB, err := deploy(kube.PodSpec{
			Name:     "pod-b",
			NodeName: "vm2",
			Containers: []kube.ContainerSpec{
				{Name: "b", Image: "app", CPU: 2, MemMB: 512, Ports: portMaps(ports)},
			},
		})
		if err != nil {
			return nil, err
		}
		pp.ANS, pp.BNS = podA.Parts[0].Sandbox.NS, podB.Parts[0].Sandbox.NS
		pp.DialAddr = HostBridgeNet.Host(11) // VM2, DNAT to the container
		pp.AEntity, pp.BEntity = "app/pod-a", "app/pod-b"
		return pp, nil

	case CCOverlay:
		n2 := b.addNode("vm2", HostBridgeNet.Host(11))
		ovl := overlay.NewNetwork("ovl", OverlayNet)
		v1, err := ovl.Join(n1.VM, HostBridgeNet.Host(10))
		if err != nil {
			return nil, err
		}
		v2, err := ovl.Join(n2.VM, HostBridgeNet.Host(11))
		if err != nil {
			return nil, err
		}
		n1.CNI.Register(overlay.NewAttachment(ovl, v1))
		n2.CNI.Register(overlay.NewAttachment(ovl, v2))
		podA, err := deploy(kube.PodSpec{
			Name: "pod-a", NodeName: "vm1", Network: "overlay",
			Containers: []kube.ContainerSpec{{Name: "a", Image: "app", CPU: 2, MemMB: 512}},
		})
		if err != nil {
			return nil, err
		}
		podB, err := deploy(kube.PodSpec{
			Name: "pod-b", NodeName: "vm2", Network: "overlay",
			Containers: []kube.ContainerSpec{{Name: "b", Image: "app", CPU: 2, MemMB: 512}},
		})
		if err != nil {
			return nil, err
		}
		pp.ANS, pp.BNS = podA.Parts[0].Sandbox.NS, podB.Parts[0].Sandbox.NS
		pp.DialAddr = podB.Parts[0].PodIP
		pp.AEntity, pp.BEntity = "app/pod-a", "app/pod-b"
		pp.Overlay = ovl
		return pp, nil
	}
	return nil, fmt.Errorf("scenario: unknown mode %q", mode)
}
