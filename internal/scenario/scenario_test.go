package scenario

import (
	"testing"

	"nestless/internal/netperf"
	"nestless/internal/netsim"
)

// measure runs TCP_STREAM and UDP_RR at 1280 B for one mode.
func measure(t *testing.T, mode Mode) (mbps float64, rttMicros float64) {
	t.Helper()
	sc, err := NewServerClient(42, mode, 5001, 7001)
	if err != nil {
		t.Fatal(err)
	}
	stream := netperf.RunTCPStream(sc.Eng, netperf.StreamConfig{
		Client: sc.Client, Server: sc.ServerNS,
		DialAddr: sc.DialAddr, Port: 5001, MsgSize: 1280,
	})
	rr := netperf.RunUDPRR(sc.Eng, netperf.RRConfig{
		Client: sc.Client, Server: sc.ServerNS,
		DialAddr: sc.DialAddr, Port: 7001, MsgSize: 1280,
	})
	t.Logf("%-9s  %8.1f Mbps   RTT %v (sd %v)", mode, stream.ThroughputMbps, rr.MeanRTT, rr.StddevRTT)
	return stream.ThroughputMbps, float64(rr.MeanRTT.Microseconds())
}

// TestFig2Shape verifies the paper's §2 measurement: vanilla nested
// virtualization (NAT) loses roughly 68 % throughput and adds roughly
// 31 % latency against single-level virtualization at 1280 B. Bounds are
// deliberately loose — the claim is the shape, not the digit.
func TestFig2Shape(t *testing.T) {
	natT, natL := measure(t, ModeNAT)
	ncT, ncL := measure(t, ModeNoCont)

	tputRatio := natT / ncT
	latRatio := natL / ncL
	t.Logf("NAT/NoCont throughput ratio = %.3f (paper ≈ 0.32)", tputRatio)
	t.Logf("NAT/NoCont latency ratio    = %.3f (paper ≈ 1.31)", latRatio)

	if tputRatio > 0.45 || tputRatio < 0.20 {
		t.Errorf("throughput degradation off: ratio %.3f, want ~0.32", tputRatio)
	}
	if latRatio < 1.15 || latRatio > 1.55 {
		t.Errorf("latency increase off: ratio %.3f, want ~1.31", latRatio)
	}
}

// TestFig4BrFusionMatchesNoCont verifies BrFusion's headline: within a
// few percent of single-level virtualization, and ~2× NAT's throughput.
func TestFig4BrFusionMatchesNoCont(t *testing.T) {
	brT, brL := measure(t, ModeBrFusion)
	ncT, ncL := measure(t, ModeNoCont)
	natT, _ := measure(t, ModeNAT)

	if brT < ncT*0.93 || brT > ncT*1.07 {
		t.Errorf("BrFusion throughput %.1f not within ~3.5%% of NoCont %.1f", brT, ncT)
	}
	if brL < ncL*0.9 || brL > ncL*1.1 {
		t.Errorf("BrFusion RTT %.1fµs not close to NoCont %.1fµs", brL, ncL)
	}
	if brT < natT*1.7 {
		t.Errorf("BrFusion %.1f Mbps not ≈2.1× NAT %.1f Mbps", brT, natT)
	}
}

func TestServerClientTopologyIsSound(t *testing.T) {
	for _, mode := range []Mode{ModeNAT, ModeBrFusion, ModeNoCont} {
		sc, err := NewServerClient(7, mode, 9000)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var got bool
		if _, err := sc.ServerNS.BindUDP(9000, func(p *netsim.Packet) { got = true }); err != nil {
			t.Fatal(err)
		}
		s, _ := sc.Client.BindUDP(0, nil)
		s.SendTo(sc.DialAddr, 9000, 32, nil)
		sc.Eng.Run()
		if !got {
			t.Errorf("%s: server unreachable from client", mode)
		}
	}
}

func TestUnknownModesRejected(t *testing.T) {
	if _, err := NewServerClient(1, Mode("weird")); err == nil {
		t.Fatal("unknown server mode accepted")
	}
	if _, err := NewPodPair(1, CCMode("weird")); err == nil {
		t.Fatal("unknown pair mode accepted")
	}
}
