package scenario

import (
	"testing"

	"nestless/internal/netperf"
	"nestless/internal/netsim"
)

// measureCC runs TCP_STREAM and UDP_RR at 1024 B for one c2c mode.
func measureCC(t *testing.T, mode CCMode) (mbps float64, rttMicros float64, sd float64) {
	t.Helper()
	pp, err := NewPodPair(21, mode, 5001, 7001)
	if err != nil {
		t.Fatal(err)
	}
	stream := netperf.RunTCPStream(pp.Eng, netperf.StreamConfig{
		Client: pp.ANS, Server: pp.BNS,
		DialAddr: pp.DialAddr, Port: 5001, MsgSize: 1024,
	})
	rr := netperf.RunUDPRR(pp.Eng, netperf.RRConfig{
		Client: pp.ANS, Server: pp.BNS,
		DialAddr: pp.DialAddr, Port: 7001, MsgSize: 1024,
	})
	t.Logf("%-9s  %8.1f Mbps   RTT %v (sd %v)", mode, stream.ThroughputMbps, rr.MeanRTT, rr.StddevRTT)
	return stream.ThroughputMbps, float64(rr.MeanRTT.Microseconds()), float64(rr.StddevRTT.Microseconds())
}

// TestFig10Shape verifies the paper's Hostlo micro-benchmark ordering at
// 1024 B (§5.3.2): SameNode far above everything; Overlay's batching
// beats Hostlo on throughput; Hostlo beats NAT on throughput; Hostlo's
// latency is far below NAT's and Overlay's and the lowest of the
// cross-VM solutions.
func TestFig10Shape(t *testing.T) {
	snT, snL, _ := measureCC(t, CCSameNode)
	hlT, hlL, _ := measureCC(t, CCHostlo)
	natT, natL, _ := measureCC(t, CCNAT)
	ovT, ovL, _ := measureCC(t, CCOverlay)

	t.Logf("throughput: SameNode/Hostlo = %.2f (paper ≈ 5.3)", snT/hlT)
	t.Logf("throughput: Hostlo/NAT      = %.2f (paper ≈ 1.18)", hlT/natT)
	t.Logf("throughput: Hostlo/Overlay  = %.2f (paper ≈ 0.73)", hlT/ovT)
	t.Logf("latency:    Hostlo/NAT      = %.2f (paper ≈ 0.13)", hlL/natL)
	t.Logf("latency:    Hostlo/Overlay  = %.2f (paper ≈ 0.10)", hlL/ovL)
	t.Logf("latency:    Hostlo/SameNode = %.2f (paper ≈ 2)", hlL/snL)

	if snT < hlT*3 {
		t.Errorf("SameNode (%.0f) not clearly above Hostlo (%.0f); paper 5.3×", snT, hlT)
	}
	if hlT < natT {
		t.Errorf("Hostlo throughput (%.0f) below NAT (%.0f); paper +18%%", hlT, natT)
	}
	if ovT < hlT {
		t.Errorf("Overlay throughput (%.0f) below Hostlo (%.0f); paper has Overlay ahead", ovT, hlT)
	}
	if hlL > natL*0.6 {
		t.Errorf("Hostlo latency (%.0fµs) not far below NAT (%.0fµs); paper −87%%", hlL, natL)
	}
	if hlL > ovL*0.6 {
		t.Errorf("Hostlo latency (%.0fµs) not far below Overlay (%.0fµs); paper −90%%", hlL, ovL)
	}
	if hlL < snL {
		t.Errorf("Hostlo latency (%.0fµs) below SameNode (%.0fµs)?", hlL, snL)
	}
}

// TestFig10HostloLatencyFlat verifies Hostlo's signature property: its
// latency stays roughly constant across message sizes (§5.3.2 "its
// latency remains stable across all message sizes, like SameNode").
func TestFig10HostloLatencyFlat(t *testing.T) {
	rtt := func(size int) float64 {
		pp, err := NewPodPair(5, CCHostlo, 7001)
		if err != nil {
			t.Fatal(err)
		}
		res := netperf.RunUDPRR(pp.Eng, netperf.RRConfig{
			Client: pp.ANS, Server: pp.BNS,
			DialAddr: pp.DialAddr, Port: 7001, MsgSize: size,
		})
		return float64(res.MeanRTT.Microseconds())
	}
	small, large := rtt(64), rtt(1400)
	t.Logf("hostlo RTT: 64B=%.1fµs 1400B=%.1fµs", small, large)
	if large > small*1.6 {
		t.Errorf("hostlo latency not flat: %.1f → %.1f µs", small, large)
	}
}

func TestPodPairTopologiesSound(t *testing.T) {
	for _, mode := range []CCMode{CCSameNode, CCHostlo, CCNAT, CCOverlay} {
		pp, err := NewPodPair(3, mode, 9000)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var got bool
		if _, err := pp.BNS.BindUDP(9000, func(p *netsim.Packet) { got = true }); err != nil {
			t.Fatal(err)
		}
		s, _ := pp.ANS.BindUDP(0, nil)
		s.SendTo(pp.DialAddr, 9000, 32, nil)
		pp.Eng.Run()
		if !got {
			t.Errorf("%s: B unreachable from A via %v", mode, pp.DialAddr)
		}
	}
}
