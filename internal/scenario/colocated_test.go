package scenario

import (
	"testing"
	"time"

	"nestless/internal/netperf"
)

// TestBrFusionFreesCPUForColocatedWork reproduces the §5.2.3 side claim:
// by removing the in-VM network virtualization layer, BrFusion frees VM
// CPU time "for other applications on the VM". A CPU-bound co-located
// worker shares the VM's compute with the network stack; under NAT the
// forwarding chains steal its cycles.
func TestBrFusionFreesCPUForColocatedWork(t *testing.T) {
	progress := func(mode Mode) uint64 {
		sc, err := NewServerClient(42, mode, 5001)
		if err != nil {
			t.Fatal(err)
		}
		// The co-located worker: a compute loop on the VM's vCPU lane,
		// 20µs per work item.
		done := uint64(0)
		stop := false
		var work func()
		work = func() {
			if stop {
				return
			}
			sc.VM.CPU.Station.Process(20*time.Microsecond, func() {
				done++
				work()
			})
		}
		work()
		netperf.RunTCPStream(sc.Eng, netperf.StreamConfig{
			Client: sc.Client, Server: sc.ServerNS,
			DialAddr: sc.DialAddr, Port: 5001, MsgSize: 1280,
			Warmup: 10 * time.Millisecond, Duration: 100 * time.Millisecond,
		})
		stop = true
		return done
	}

	nat := progress(ModeNAT)
	brf := progress(ModeBrFusion)
	t.Logf("co-located worker progress: NAT=%d BrFusion=%d items (+%.0f%%)",
		nat, brf, float64(brf-nat)/float64(nat)*100)
	if brf <= nat {
		t.Fatalf("BrFusion (%d) did not free CPU versus NAT (%d)", brf, nat)
	}
}
