// Package cloud generalizes cloudsim's single hard-coded AWS m5 table
// into a pluggable machine model: named provider catalogs with zones
// and spot (preemptible) pricing, a small declarative spec grammar for
// selecting them at the CLI, and the validation glue that turns flag
// soup into one resolved machine-subsystem configuration.
//
// The registry is deliberately value-oriented: Lookup returns a fresh
// copy on every call, so callers may mutate their catalog (price
// overrides, truncated zone lists) without bleeding into other runs.
package cloud

import (
	"fmt"
	"sort"

	"nestless/internal/cloudsim"
)

// Catalog is one provider's machine family: the instance-type table the
// packer prices against, the availability zones that act as failure
// domains, and (when the family is sellable as preemptible capacity)
// the per-zone spot discount curve.
type Catalog struct {
	Provider string
	Family   string
	Region   string
	Types    []cloudsim.VMType

	// Zones are the region's availability zones, in spread order. A
	// cluster configured with N zones uses Zones[:N].
	Zones []string

	// SpotDiscount[i] is the fraction of the on-demand price paid for
	// spot capacity in Zones[i]: 0.30 means "spot costs 30% of
	// on-demand". Empty means the family is on-demand only.
	SpotDiscount []float64
}

// Name returns the registry key, "provider:family".
func (c *Catalog) Name() string { return c.Provider + ":" + c.Family }

// SpotCapable reports whether the family sells preemptible capacity.
func (c *Catalog) SpotCapable() bool { return len(c.SpotDiscount) > 0 }

// clone deep-copies a catalog so registry entries stay immutable.
func (c *Catalog) clone() *Catalog {
	d := &Catalog{Provider: c.Provider, Family: c.Family, Region: c.Region}
	d.Types = append([]cloudsim.VMType(nil), c.Types...)
	d.Zones = append([]string(nil), c.Zones...)
	if c.SpotDiscount != nil {
		d.SpotDiscount = append([]float64(nil), c.SpotDiscount...)
	}
	return d
}

var registry = map[string]*Catalog{}

// Register adds a catalog under its Name. Re-registering a name is a
// programming error and panics, like flag redefinition.
func Register(c *Catalog) {
	if c.Provider == "" || c.Family == "" {
		panic("cloud: Register needs provider and family")
	}
	if len(c.Types) == 0 || len(c.Zones) == 0 {
		panic("cloud: Register needs types and zones: " + c.Name())
	}
	if c.SpotDiscount != nil && len(c.SpotDiscount) != len(c.Zones) {
		panic("cloud: SpotDiscount must match Zones: " + c.Name())
	}
	if _, dup := registry[c.Name()]; dup {
		panic("cloud: duplicate catalog " + c.Name())
	}
	registry[c.Name()] = c.clone()
}

// Lookup returns a private copy of the named catalog, or an error
// listing what is available.
func Lookup(name string) (*Catalog, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown catalog %q (have %v)", name, Names())
	}
	return c.clone(), nil
}

// Names lists registered catalogs, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultName is the catalog every command starts from: the paper's
// Table 2 AWS m5 on-demand family. Runs that never mention -cloud are
// pinned byte-identical to the pre-registry simulator.
const DefaultName = "aws:m5"

func init() {
	// The seed catalog. Types comes from cloudsim.Catalog() itself —
	// there is exactly one copy of Table 2 in the tree, and the pin
	// test in cloud_test.go holds this registration to it. The family
	// is on-demand only: AWS prices m5 spot per-pool, which we don't
	// model, and leaving SpotDiscount empty gives the flag validation
	// a real contradiction to reject (-spot-frac with aws:m5).
	Register(&Catalog{
		Provider: "aws",
		Family:   "m5",
		Region:   "us-east-1",
		Types:    cloudsim.Catalog(),
		Zones:    []string{"us-east-1a", "us-east-1b", "us-east-1c"},
	})

	// GCP n2-standard: 4 GB/vCPU like m5, Iowa on-demand pricing
	// (us-central1: $0.031611/vCPU-h + $0.004237/GB-h). Relative
	// capacities are normalized to the same 96-vCPU/384-GB ceiling as
	// the m5 table so trace-relative requests pack identically, which
	// is what makes the cross-cloud cost comparison apples-to-apples.
	Register(&Catalog{
		Provider: "gcp",
		Family:   "n2",
		Region:   "us-central1",
		Types: []cloudsim.VMType{
			{Name: "n2-standard-2", VCPU: 2, MemGB: 8, RelCPU: 0.0208, RelMem: 0.0208, PricePerH: 0.0971},
			{Name: "n2-standard-4", VCPU: 4, MemGB: 16, RelCPU: 0.0417, RelMem: 0.0417, PricePerH: 0.1942},
			{Name: "n2-standard-8", VCPU: 8, MemGB: 32, RelCPU: 0.0833, RelMem: 0.0833, PricePerH: 0.3885},
			{Name: "n2-standard-16", VCPU: 16, MemGB: 64, RelCPU: 0.1667, RelMem: 0.1667, PricePerH: 0.7769},
			{Name: "n2-standard-32", VCPU: 32, MemGB: 128, RelCPU: 0.3333, RelMem: 0.3333, PricePerH: 1.5539},
			{Name: "n2-standard-48", VCPU: 48, MemGB: 192, RelCPU: 0.5, RelMem: 0.5, PricePerH: 2.3308},
			{Name: "n2-standard-64", VCPU: 64, MemGB: 256, RelCPU: 0.6667, RelMem: 0.6667, PricePerH: 3.1078},
			{Name: "n2-standard-80", VCPU: 80, MemGB: 320, RelCPU: 0.8333, RelMem: 0.8333, PricePerH: 3.8847},
			{Name: "n2-standard-96", VCPU: 96, MemGB: 384, RelCPU: 1, RelMem: 1, PricePerH: 4.6616},
		},
		Zones: []string{"us-central1-a", "us-central1-b", "us-central1-c", "us-central1-f"},
		// Spot VMs: roughly 60-91% off on-demand; we model a per-zone
		// curve so zone choice is an economic decision, not only a
		// failure-domain one.
		SpotDiscount: []float64{0.30, 0.32, 0.28, 0.35},
	})
}
