package cloud

import "testing"

// FuzzParseCloudSpec holds the grammar to two properties on arbitrary
// input: the parser never panics, and accepted specs render a
// canonical String() that re-parses to the identical Spec (fixpoint).
func FuzzParseCloudSpec(f *testing.F) {
	f.Add("aws:m5")
	f.Add("gcp:n2:zone=3")
	f.Add("gcp:n2:zone=2:spot=0.25")
	f.Add("gcp:n2:spot=1:zone=4")
	f.Add("a-b_c:x0:spot=0.000001")
	f.Add("aws:m5:zone=0")
	f.Add("aws:m5:spot=1.5")
	f.Add("::=")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return
		}
		canon := s.String()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, text, err)
		}
		if *back != *s {
			t.Fatalf("round trip of %q: %+v -> %q -> %+v", text, *s, canon, *back)
		}
		if back.String() != canon {
			t.Fatalf("String not a fixpoint: %q vs %q", back.String(), canon)
		}
	})
}
