package cloud

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is the parsed form of the -cloud selector:
//
//	provider:family[:zone=N][:spot=F]
//
// The first two tokens name a registered catalog; the optional
// key=value tokens (any order, each at most once) pick how many of the
// catalog's zones to spread across and what fraction of the fleet to
// run on spot capacity. Zones==0 / SpotSet==false mean "not mentioned",
// which lets Resolve tell a defaulted knob from an explicit one.
type Spec struct {
	Provider string
	Family   string
	Zones    int // 0 = unset
	SpotFrac float64
	SpotSet  bool
}

// CatalogName returns the registry key the spec selects.
func (s *Spec) CatalogName() string { return s.Provider + ":" + s.Family }

// String renders the canonical form: ParseSpec(s.String()) == *s for
// every spec ParseSpec accepts (the fuzz target holds us to it).
func (s *Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Provider)
	b.WriteByte(':')
	b.WriteString(s.Family)
	if s.Zones != 0 {
		fmt.Fprintf(&b, ":zone=%d", s.Zones)
	}
	if s.SpotSet {
		b.WriteString(":spot=")
		b.WriteString(strconv.FormatFloat(s.SpotFrac, 'g', -1, 64))
	}
	return b.String()
}

// validToken reports whether a provider/family name is made of the
// charset we accept: lowercase alphanumerics plus '-' and '_', and not
// empty. Uppercase is rejected rather than folded so there is exactly
// one spelling of every catalog.
func validToken(tok string) bool {
	if tok == "" {
		return false
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

// ParseSpec parses the -cloud grammar. It validates shape and value
// ranges but does not consult the registry — a well-formed spec for an
// unregistered catalog parses fine and fails later in Resolve, so the
// grammar can be fuzzed without the registry's contents leaking into
// the corpus.
func ParseSpec(text string) (*Spec, error) {
	parts := strings.Split(text, ":")
	if len(parts) < 2 {
		return nil, fmt.Errorf("cloud spec %q: want provider:family[:zone=N][:spot=F]", text)
	}
	if !validToken(parts[0]) {
		return nil, fmt.Errorf("cloud spec %q: bad provider %q", text, parts[0])
	}
	if !validToken(parts[1]) {
		return nil, fmt.Errorf("cloud spec %q: bad family %q", text, parts[1])
	}
	s := &Spec{Provider: parts[0], Family: parts[1]}
	for _, kv := range parts[2:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("cloud spec %q: %q is not key=value", text, kv)
		}
		switch key {
		case "zone":
			if s.Zones != 0 {
				return nil, fmt.Errorf("cloud spec %q: duplicate zone=", text)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("cloud spec %q: zone=%q is not a positive count", text, val)
			}
			s.Zones = n
		case "spot":
			if s.SpotSet {
				return nil, fmt.Errorf("cloud spec %q: duplicate spot=", text)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("cloud spec %q: spot=%q is not a fraction in [0,1]", text, val)
			}
			s.SpotFrac = f
			s.SpotSet = true
		default:
			return nil, fmt.Errorf("cloud spec %q: unknown key %q", text, key)
		}
	}
	return s, nil
}

// DefaultRevocationSpec is the fault schedule merged in (by the CLI)
// when a run uses spot capacity but the user's -faults string says
// nothing about it: every autoscaler tick, each live spot node has a 2%
// chance of being revoked. Matches only "spot/..." points, so
// on-demand nodes never see it.
const DefaultRevocationSpec = "spot/*:crash:p=0.02"

// Options is the raw CLI surface of the machine subsystem, before
// validation. The *Set booleans distinguish "flag left at default"
// from "user typed the default value" (callers derive them from
// flag.Visit), which is what keeps default runs byte-identical while
// still rejecting contradictory explicit combos.
type Options struct {
	Spec        string  // -cloud
	SpotFrac    float64 // -spot-frac
	SpotFracSet bool
	Zones       int // -zones
	ZonesSet    bool
	Autoscaler  string // -autoscaler: "reconciler" or "imperative"
}

// Resolved is the validated machine-subsystem configuration.
type Resolved struct {
	Catalog      *Catalog
	Zones        int      // ≥ 1
	ZoneNames    []string // len == Zones
	SpotFrac     float64  // in [0,1]
	SpotDiscount []float64
	Imperative   bool
}

// Resolve validates one combination of cloud flags against the
// registry and returns the resolved configuration. All errors are
// user errors (exit-2 material), phrased to name the offending flag.
func Resolve(o Options) (*Resolved, error) {
	specText := o.Spec
	if specText == "" {
		specText = DefaultName
	}
	spec, err := ParseSpec(specText)
	if err != nil {
		return nil, fmt.Errorf("-cloud: %v", err)
	}
	cat, err := Lookup(spec.CatalogName())
	if err != nil {
		return nil, fmt.Errorf("-cloud: %v", err)
	}

	switch o.Autoscaler {
	case "", "reconciler", "imperative":
	default:
		return nil, fmt.Errorf("-autoscaler: %q (want reconciler or imperative)", o.Autoscaler)
	}
	imperative := o.Autoscaler == "imperative"

	zones := 1
	switch {
	case spec.Zones != 0 && o.ZonesSet:
		return nil, fmt.Errorf("-zones conflicts with zone= in -cloud %q", o.Spec)
	case spec.Zones != 0:
		zones = spec.Zones
	case o.ZonesSet:
		zones = o.Zones
	}
	if zones < 1 || zones > len(cat.Zones) {
		return nil, fmt.Errorf("-zones: %d outside 1..%d (%s has zones %v)",
			zones, len(cat.Zones), cat.Name(), cat.Zones)
	}

	spot := 0.0
	switch {
	case spec.SpotSet && o.SpotFracSet:
		return nil, fmt.Errorf("-spot-frac conflicts with spot= in -cloud %q", o.Spec)
	case spec.SpotSet:
		spot = spec.SpotFrac
	case o.SpotFracSet:
		spot = o.SpotFrac
	}
	if spot < 0 || spot > 1 {
		return nil, fmt.Errorf("-spot-frac: %v outside [0,1]", spot)
	}
	if spot > 0 && !cat.SpotCapable() {
		return nil, fmt.Errorf("-spot-frac: catalog %s is on-demand only (no spot pricing)", cat.Name())
	}

	if imperative && spot > 0 {
		return nil, fmt.Errorf("-autoscaler=imperative is the pre-cloud pin and cannot manage spot capacity (drop -spot-frac)")
	}
	if imperative && zones > 1 {
		return nil, fmt.Errorf("-autoscaler=imperative is the pre-cloud pin and cannot spread zones (drop -zones)")
	}

	r := &Resolved{
		Catalog:    cat,
		Zones:      zones,
		ZoneNames:  append([]string(nil), cat.Zones[:zones]...),
		SpotFrac:   spot,
		Imperative: imperative,
	}
	if cat.SpotCapable() {
		r.SpotDiscount = append([]float64(nil), cat.SpotDiscount[:zones]...)
	}
	return r, nil
}
