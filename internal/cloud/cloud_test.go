package cloud

import (
	"reflect"
	"strings"
	"testing"

	"nestless/internal/cloudsim"
	"nestless/internal/trace"
)

// TestDefaultCatalogPinned holds the registry's aws:m5 entry to the one
// copy of Table 2 in the tree: the catalog refactor must be a pure
// re-plumb, so a default run through the registry prices against
// byte-identical types.
func TestDefaultCatalogPinned(t *testing.T) {
	cat, err := Lookup(DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cat.Types, cloudsim.Catalog()) {
		t.Fatalf("aws:m5 types diverged from cloudsim.Catalog():\n%+v\nvs\n%+v",
			cat.Types, cloudsim.Catalog())
	}
	if cat.SpotCapable() {
		t.Fatal("aws:m5 must be on-demand only (validation relies on it)")
	}
}

// TestDefaultCatalogStaticSim runs the paper-scale static simulation
// through both the registry catalog and the hard-coded one and requires
// identical results end to end.
func TestDefaultCatalogStaticSim(t *testing.T) {
	pop := trace.Generate(trace.DefaultConfig(42))
	cat, err := Lookup(DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	got := cloudsim.Simulate(pop, cat.Types)
	want := cloudsim.Simulate(pop, cloudsim.Catalog())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registry catalog changed the static simulation:\n%+v\nvs\n%+v", got, want)
	}
}

func TestLookupIsolation(t *testing.T) {
	a, _ := Lookup(DefaultName)
	a.Types[0].PricePerH = 99
	a.Zones[0] = "mutated"
	b, _ := Lookup(DefaultName)
	if b.Types[0].PricePerH == 99 || b.Zones[0] == "mutated" {
		t.Fatal("Lookup returned a shared catalog; mutations leaked into the registry")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	want := []string{"aws:m5", "gcp:n2"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
}

func TestGCPCatalogShape(t *testing.T) {
	cat, err := Lookup("gcp:n2")
	if err != nil {
		t.Fatal(err)
	}
	if !cat.SpotCapable() {
		t.Fatal("gcp:n2 must be spot-capable")
	}
	if len(cat.SpotDiscount) != len(cat.Zones) {
		t.Fatalf("SpotDiscount len %d != Zones len %d", len(cat.SpotDiscount), len(cat.Zones))
	}
	// Same normalization ceiling as m5: largest machine is Rel 1.0 and
	// prices must rise with size so cheapest-fitting stays meaningful.
	last := cat.Types[len(cat.Types)-1]
	if last.RelCPU != 1 || last.RelMem != 1 {
		t.Fatalf("largest type %s not normalized to Rel 1.0", last.Name)
	}
	for i := 1; i < len(cat.Types); i++ {
		if cat.Types[i].PricePerH <= cat.Types[i-1].PricePerH {
			t.Fatalf("prices not increasing at %s", cat.Types[i].Name)
		}
		if cat.Types[i].VCPU <= cat.Types[i-1].VCPU {
			t.Fatalf("vCPUs not increasing at %s", cat.Types[i].Name)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"aws:m5", Spec{Provider: "aws", Family: "m5"}},
		{"gcp:n2:zone=3", Spec{Provider: "gcp", Family: "n2", Zones: 3}},
		{"gcp:n2:spot=0.5", Spec{Provider: "gcp", Family: "n2", SpotFrac: 0.5, SpotSet: true}},
		{"gcp:n2:zone=2:spot=0.25", Spec{Provider: "gcp", Family: "n2", Zones: 2, SpotFrac: 0.25, SpotSet: true}},
		{"gcp:n2:spot=1:zone=4", Spec{Provider: "gcp", Family: "n2", Zones: 4, SpotFrac: 1, SpotSet: true}},
		{"gcp:n2:spot=0", Spec{Provider: "gcp", Family: "n2", SpotFrac: 0, SpotSet: true}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if *got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, *got, c.want)
		}
		back, err := ParseSpec(got.String())
		if err != nil || *back != *got {
			t.Fatalf("round trip of %q via %q: %+v, %v", c.in, got.String(), back, err)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"aws",
		":m5",
		"aws:",
		"AWS:m5",          // uppercase: one spelling per catalog
		"aws:m5:zone",     // not key=value
		"aws:m5:zone=0",   // zone count must be ≥ 1
		"aws:m5:zone=-1",
		"aws:m5:zone=x",
		"aws:m5:spot=1.5", // fraction outside [0,1]
		"aws:m5:spot=-0.1",
		"aws:m5:spot=abc",
		"aws:m5:spot=0.1:spot=0.2", // duplicate key
		"aws:m5:zone=1:zone=2",
		"aws:m5:color=blue", // unknown key
		"aws:m5:=1",
	}
	for _, in := range bad {
		if s, err := ParseSpec(in); err == nil {
			t.Fatalf("ParseSpec(%q) accepted as %+v, want error", in, s)
		}
	}
}

func TestResolve(t *testing.T) {
	r, err := Resolve(Options{})
	if err != nil {
		t.Fatalf("zero Options must resolve to the default pin: %v", err)
	}
	if r.Catalog.Name() != DefaultName || r.Zones != 1 || r.SpotFrac != 0 || r.Imperative {
		t.Fatalf("default resolve = %+v", r)
	}
	if !reflect.DeepEqual(r.ZoneNames, []string{"us-east-1a"}) {
		t.Fatalf("default zone names = %v", r.ZoneNames)
	}

	r, err = Resolve(Options{Spec: "gcp:n2:zone=3:spot=0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Zones != 3 || r.SpotFrac != 0.5 || len(r.ZoneNames) != 3 || len(r.SpotDiscount) != 3 {
		t.Fatalf("gcp resolve = %+v", r)
	}

	// Flag-provided knobs work the same as spec-embedded ones.
	r, err = Resolve(Options{Spec: "gcp:n2", Zones: 2, ZonesSet: true, SpotFrac: 0.25, SpotFracSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Zones != 2 || r.SpotFrac != 0.25 {
		t.Fatalf("flag resolve = %+v", r)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		frag string // required error substring
	}{
		{"unknown catalog", Options{Spec: "azure:dv5"}, "unknown catalog"},
		{"bad spec", Options{Spec: "aws"}, "cloud spec"},
		{"bad autoscaler", Options{Autoscaler: "magic"}, "-autoscaler"},
		{"zones conflict", Options{Spec: "gcp:n2:zone=2", Zones: 3, ZonesSet: true}, "conflicts"},
		{"spot conflict", Options{Spec: "gcp:n2:spot=0.5", SpotFrac: 0.1, SpotFracSet: true}, "conflicts"},
		{"zones too many", Options{Spec: "aws:m5", Zones: 4, ZonesSet: true}, "outside 1..3"},
		{"zones zero", Options{Zones: 0, ZonesSet: true}, "outside"},
		{"spot on on-demand catalog", Options{SpotFrac: 0.5, SpotFracSet: true}, "on-demand only"},
		{"imperative spot", Options{Spec: "gcp:n2:spot=0.5", Autoscaler: "imperative"}, "imperative"},
		{"imperative zones", Options{Spec: "gcp:n2:zone=2", Autoscaler: "imperative"}, "imperative"},
	}
	for _, c := range cases {
		_, err := Resolve(c.o)
		if err == nil {
			t.Fatalf("%s: Resolve(%+v) succeeded, want error", c.name, c.o)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Fatalf("%s: error %q lacks %q", c.name, err, c.frag)
		}
	}

	// Explicitly spelling the defaults is not a contradiction.
	if _, err := Resolve(Options{Spec: "aws:m5", Zones: 1, ZonesSet: true, SpotFrac: 0, SpotFracSet: true, Autoscaler: "imperative"}); err != nil {
		t.Fatalf("explicit defaults rejected: %v", err)
	}
}
