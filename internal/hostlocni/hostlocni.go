// Package hostlocni is the Hostlo CNI plugin (§4): it configures a VM's
// Hostlo endpoint as the localhost interface of the pod fraction placed
// on that VM. The orchestrator provisions the underlying multiplexed
// device once per pod (core.Controller.ProvisionHostlo) and then runs
// one Attachment per VM as a secondary CNI plugin alongside the pod's
// primary network.
package hostlocni

import (
	"fmt"
	"time"

	"nestless/internal/container"
	"nestless/internal/core"
	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/vmm"
)

// PodLocalNet is the pod-scoped subnet Hostlo endpoints use as the
// shared "localhost" segment (link-local, never routed).
var PodLocalNet = netsim.MustPrefix(netsim.IP(169, 254, 77, 0), 24)

// EndpointAddr returns the address of the idx-th pod part on the
// pod-local segment.
func EndpointAddr(idx int) netsim.IPv4 { return PodLocalNet.Host(10 + idx) }

// Agent timing for configuring the endpoint inside the VM.
const (
	agentConfigMean   = 3 * time.Millisecond
	agentConfigJitter = 800 * time.Microsecond
)

// Attachment installs one VM's Hostlo endpoint into a pod sandbox.
type Attachment struct {
	VM       *vmm.VM
	Endpoint core.EndpointInfo
	Addr     netsim.IPv4

	attached *container.Container
}

// Name identifies the plugin.
func (a *Attachment) Name() string { return "hostlo" }

// Provision moves the endpoint interface into the sandbox namespace and
// addresses it on the pod-local segment (§4.1 step 4).
func (a *Attachment) Provision(c *container.Container, _ []container.PortMap, done func(netsim.IPv4, error)) {
	op := a.VM.Host.Net.Rec.OpBegin("cni/hostlo", "provision "+c.Name)
	inner := done
	done = func(ip netsim.IPv4, err error) {
		op.End(err)
		inner(ip, err)
	}
	dev := a.VM.Devices()[a.Endpoint.DeviceID]
	if dev == nil {
		done(netsim.IPv4{}, fmt.Errorf("hostlocni: endpoint device %s missing on %s", a.Endpoint.DeviceID, a.VM.Name))
		return
	}
	rng := a.VM.Host.Eng.Rand()
	d := time.Duration(rng.Normal(float64(agentConfigMean), float64(agentConfigJitter)))
	if d < agentConfigMean/4 {
		d = agentConfigMean / 4
	}
	a.VM.CPU.Run(cpuacct.Sys, d, func() {
		iface := dev.NIC.Guest
		if iface.NS != nil {
			iface.NS.RemoveIface(iface.Name)
		}
		c.NS.AdoptIface(iface, "hlo0")
		iface.SetAddr(a.Addr, PodLocalNet)
		dev.NIC.SetGuestCPU(c.NS.CPU)
		a.attached = c
		done(a.Addr, nil)
	})
}

// Release detaches the endpoint from the Hostlo device.
func (a *Attachment) Release(c *container.Container) {
	if a.attached != c {
		return
	}
	a.attached = nil
	a.VM.Monitor().Execute("device_del", map[string]string{"id": a.Endpoint.DeviceID}, nil)
}
