// Package hostlocni is the Hostlo CNI plugin (§4): it configures a VM's
// Hostlo endpoint as the localhost interface of the pod fraction placed
// on that VM. The orchestrator provisions the underlying multiplexed
// device once per pod (core.Controller.ProvisionHostlo) and then runs
// one Attachment per VM as a secondary CNI plugin alongside the pod's
// primary network.
package hostlocni

import (
	"fmt"
	"time"

	"nestless/internal/container"
	"nestless/internal/core"
	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/vmm"
)

// PodLocalNet is the pod-scoped subnet Hostlo endpoints use as the
// shared "localhost" segment (link-local, never routed).
var PodLocalNet = netsim.MustPrefix(netsim.IP(169, 254, 77, 0), 24)

// EndpointAddr returns the address of the idx-th pod part on the
// pod-local segment.
func EndpointAddr(idx int) netsim.IPv4 { return PodLocalNet.Host(10 + idx) }

// Agent timing for configuring the endpoint inside the VM. Crashed
// agents are respawned after agentRestartDelay, up to maxAgentRestarts
// times; Hostlo has no degraded mode, so exhaustion fails the provision.
const (
	agentConfigMean   = 3 * time.Millisecond
	agentConfigJitter = 800 * time.Microsecond
	agentRestartDelay = 20 * time.Millisecond
	maxAgentRestarts  = 5
)

// Attachment installs one VM's Hostlo endpoint into a pod sandbox.
type Attachment struct {
	VM       *vmm.VM
	Endpoint core.EndpointInfo
	Addr     netsim.IPv4
	// Ctrl, when set, releases the endpoint with retries (otherwise a
	// single raw device_del is issued).
	Ctrl *core.Controller

	attached *container.Container
}

// Name identifies the plugin.
func (a *Attachment) Name() string { return "hostlo" }

// Provision moves the endpoint interface into the sandbox namespace and
// addresses it on the pod-local segment (§4.1 step 4).
func (a *Attachment) Provision(c *container.Container, _ []container.PortMap, done func(netsim.IPv4, error)) {
	op := a.VM.Host.Net.Rec.OpBegin("cni/hostlo", "provision "+c.Name)
	inner := done
	done = func(ip netsim.IPv4, err error) {
		op.End(err)
		inner(ip, err)
	}
	dev := a.VM.Device(a.Endpoint.DeviceID)
	if dev == nil {
		done(netsim.IPv4{}, fmt.Errorf("hostlocni: endpoint device %s missing on %s", a.Endpoint.DeviceID, a.VM.Name))
		return
	}
	h := a.VM.Host
	var attempt func(restarts int)
	attempt = func(restarts int) {
		rng := h.Eng.Rand()
		d := time.Duration(rng.Normal(float64(agentConfigMean), float64(agentConfigJitter)))
		if d < agentConfigMean/4 {
			d = agentConfigMean / 4
		}
		a.VM.CPU.Run(cpuacct.Sys, d, func() {
			if h.Net.Faults.Crash("agent/" + a.VM.Name) {
				if restarts+1 > maxAgentRestarts {
					done(netsim.IPv4{}, fmt.Errorf("hostlocni: agent on %s crashed %d times", a.VM.Name, restarts+1))
					return
				}
				h.Eng.After(agentRestartDelay, func() { attempt(restarts + 1) })
				return
			}
			iface := dev.NIC.Guest
			if iface.NS != nil {
				iface.NS.RemoveIface(iface.Name)
			}
			c.NS.AdoptIface(iface, "hlo0")
			iface.SetAddr(a.Addr, PodLocalNet)
			dev.NIC.SetGuestCPU(c.NS.CPU)
			a.attached = c
			done(a.Addr, nil)
		})
	}
	attempt(0)
}

// Release detaches the endpoint from the Hostlo device. Releasing an
// attachment that isn't held by c is an error.
func (a *Attachment) Release(c *container.Container) error {
	if a.attached == nil {
		return fmt.Errorf("hostlocni: endpoint %s not attached", a.Endpoint.DeviceID)
	}
	if a.attached != c {
		return fmt.Errorf("hostlocni: endpoint %s attached to %q, not %q", a.Endpoint.DeviceID, a.attached.Name, c.Name)
	}
	a.attached = nil
	if a.Ctrl != nil {
		a.Ctrl.ReleaseDevice(a.VM, a.Endpoint.DeviceID, nil)
		return nil
	}
	a.VM.Monitor().Execute("device_del", map[string]string{"id": a.Endpoint.DeviceID}, nil)
	return nil
}
