package hostlocni

import (
	"testing"

	"nestless/internal/container"
	"nestless/internal/core"
	"nestless/internal/netsim"
	"nestless/internal/sim"
	"nestless/internal/vmm"
)

var hostNet = netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24)

type rig struct {
	eng     *sim.Engine
	net     *netsim.Net
	host    *vmm.Host
	vms     []*vmm.VM
	engines []*container.Engine
	eps     []core.EndpointInfo
	hostloD string
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.New(9)
	eng.MaxSteps = 50_000_000
	w := netsim.NewNet(eng)
	h := vmm.NewHost(w)
	h.AddBridge("virbr0", netsim.IP(192, 168, 122, 1), hostNet)
	ctrl := core.NewController(h)
	r := &rig{eng: eng, net: w, host: h}
	for i := 0; i < 2; i++ {
		name := []string{"vm1", "vm2"}[i]
		vm, _ := h.CreateVM(vmm.VMConfig{Name: name, VCPUs: 5, MemoryMB: 4096})
		vm.PlugBridgeNIC("virbr0", hostNet.Host(10+i), hostNet)
		e := container.NewEngine(container.Config{
			Node: name, Eng: eng, Net: w, NS: vm.NS, CPU: vm.CPU,
			EntityCPU: vm.EntityCPU, Uplink: "eth0",
			Boot: container.FastBootProfile(),
		})
		e.Pull(container.Image{Name: "app"})
		r.vms = append(r.vms, vm)
		r.engines = append(r.engines, e)
	}
	ctrl.ProvisionHostlo(r.vms, func(id string, eps []core.EndpointInfo, err error) {
		if err != nil {
			t.Fatal(err)
		}
		r.hostloD = id
		r.eps = eps
	})
	eng.Run()
	return r
}

// startPart runs one pod part with its hostlo attachment as the network.
func (r *rig) startPart(t *testing.T, idx int) *container.Container {
	t.Helper()
	att := &Attachment{VM: r.vms[idx], Endpoint: r.eps[idx], Addr: EndpointAddr(idx)}
	var ctr *container.Container
	r.engines[idx].Run(container.Spec{
		Name: "part", Image: "app", Network: att,
	}, func(c *container.Container, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ctr = c
	})
	r.eng.Run()
	if ctr == nil {
		t.Fatal("part never started")
	}
	return ctr
}

func TestEndpointMovesIntoSandbox(t *testing.T) {
	r := newRig(t)
	a := r.startPart(t, 0)
	hlo := a.NS.Iface("hlo0")
	if hlo == nil {
		t.Fatal("sandbox has no hlo0")
	}
	if hlo.Addr != EndpointAddr(0) {
		t.Fatalf("endpoint addr %v, want %v", hlo.Addr, EndpointAddr(0))
	}
	if !PodLocalNet.Contains(hlo.Addr) {
		t.Fatal("endpoint outside the pod-local segment")
	}
}

func TestCrossVMLocalhostTraffic(t *testing.T) {
	r := newRig(t)
	a := r.startPart(t, 0)
	b := r.startPart(t, 1)

	var got int
	if _, err := b.NS.BindUDP(6000, func(p *netsim.Packet) { got = p.PayloadLen }); err != nil {
		t.Fatal(err)
	}
	s, _ := a.NS.BindUDP(0, nil)
	s.SendTo(EndpointAddr(1), 6000, 77, nil)
	r.eng.Run()
	if got != 77 {
		t.Fatalf("cross-VM pod-localhost got %d, want 77", got)
	}
	if r.host.Hostlo(r.hostloD).Reflected == 0 {
		t.Fatal("no reflections recorded on the hostlo device")
	}
}

func TestEndpointAddrAllocation(t *testing.T) {
	if EndpointAddr(0) == EndpointAddr(1) {
		t.Fatal("duplicate endpoint addresses")
	}
	for i := 0; i < 4; i++ {
		if !PodLocalNet.Contains(EndpointAddr(i)) {
			t.Fatalf("EndpointAddr(%d) = %v outside %v", i, EndpointAddr(i), PodLocalNet)
		}
	}
}

func TestProvisionMissingDeviceFails(t *testing.T) {
	r := newRig(t)
	att := &Attachment{VM: r.vms[0], Endpoint: core.EndpointInfo{DeviceID: "nope"}, Addr: EndpointAddr(0)}
	cpu := netsim.NewCPU(r.eng, "x", 1, nil)
	ns := r.net.NewNS("x", cpu)
	var gotErr error
	att.Provision(&container.Container{NS: ns}, nil, func(_ netsim.IPv4, err error) { gotErr = err })
	r.eng.Run()
	if gotErr == nil {
		t.Fatal("missing endpoint device accepted")
	}
}

func TestReleaseDetachesQueue(t *testing.T) {
	r := newRig(t)
	att := &Attachment{VM: r.vms[0], Endpoint: r.eps[0], Addr: EndpointAddr(0)}
	var ctr *container.Container
	r.engines[0].Run(container.Spec{Name: "part", Image: "app", Network: att},
		func(c *container.Container, err error) { ctr = c })
	r.eng.Run()
	queues := r.host.Hostlo(r.hostloD).Queues()
	if err := att.Release(ctr); err != nil {
		t.Fatalf("Release = %v", err)
	}
	r.eng.Run()
	if got := r.host.Hostlo(r.hostloD).Queues(); got != queues-1 {
		t.Fatalf("queues = %d after release, want %d", got, queues-1)
	}
	// Double release is a caller bug and reports one.
	if err := att.Release(ctr); err == nil {
		t.Fatal("double release not rejected")
	}
	if att.Name() != "hostlo" {
		t.Fatalf("Name = %q", att.Name())
	}
}
