// Package memcached models the paper's Memcached macro-benchmark: a
// key-value store server and a memtier_benchmark-style closed-loop
// client (Table 1: 4 threads, 50 connections per thread, SET:GET = 1:10)
// reporting responses/s and request latency (Figs. 5, 11, 12, 14).
package memcached

import (
	"fmt"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/sim"
)

// Op is a cache operation.
type Op uint8

// Operations.
const (
	Get Op = iota
	Set
)

// request is the application message of one operation.
type request struct {
	op  Op
	key string
	val []byte // Set only
}

// response is the reply message.
type response struct {
	hit bool
	val []byte
	// reqAt echoes the request's submission time for client-side
	// latency measurement.
	reqAt sim.Time
}

// Protocol sizes (text-protocol framing approximations).
const (
	keyLen       = 24
	getReqSize   = keyLen + 8
	setRespSize  = 8
	missRespSize = 5
	respOverhead = 24
)

// Service costs: hash-table work per operation (usr time on the server).
var (
	getCost = netsim.StageCost{PerPacket: 2500 * time.Nanosecond, PerByteNs: 0.15}
	setCost = netsim.StageCost{PerPacket: 3500 * time.Nanosecond, PerByteNs: 0.25}
)

// Server is the key-value store bound to a namespace port. The store
// holds real values, so GETs return what SETs wrote.
type Server struct {
	ns    *netsim.NetNS
	store map[string][]byte

	// Gets, Sets, Misses count operations.
	Gets, Sets, Misses uint64
}

// NewServer starts a memcached server on ns:port.
func NewServer(ns *netsim.NetNS, port uint16) (*Server, error) {
	s := &Server{ns: ns, store: make(map[string][]byte)}
	_, err := ns.ListenStream(port, func(c *netsim.StreamConn) {
		c.OnMessage = func(size int, app interface{}, sentAt sim.Time) {
			req, ok := app.(request)
			if !ok {
				return
			}
			s.serve(c, req, sentAt)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("memcached: %w", err)
	}
	return s, nil
}

// Len returns the number of stored keys.
func (s *Server) Len() int { return len(s.store) }

// serve executes one operation and responds on the connection.
func (s *Server) serve(c *netsim.StreamConn, req request, sentAt sim.Time) {
	switch req.op {
	case Set:
		s.Sets++
		s.ns.CPU.RunCosts([]netsim.Charge{{Cat: cpuacct.Usr, D: setCost.For(len(req.val))}}, func() {
			s.store[req.key] = req.val
			c.SendMessage(setRespSize, response{hit: true, reqAt: sentAt})
		})
	case Get:
		s.Gets++
		// The lookup happens inside the service callback so operations
		// delivered back-to-back in one segment still observe prior SETs
		// in order. The value copy's per-byte cost is paid by the
		// response send path.
		s.ns.CPU.RunCosts([]netsim.Charge{{Cat: cpuacct.Usr, D: getCost.For(0)}}, func() {
			val, hit := s.store[req.key]
			if !hit {
				s.Misses++
				c.SendMessage(missRespSize, response{reqAt: sentAt})
				return
			}
			c.SendMessage(len(val)+respOverhead, response{hit: true, val: val, reqAt: sentAt})
		})
	}
}

// ClientConfig is the memtier_benchmark parameter set.
type ClientConfig struct {
	Threads      int // 4 in Table 1
	ConnsPerThrd int // 50 in Table 1
	SetRatio     int // 1 in 1:10
	GetRatio     int // 10 in 1:10
	KeySpace     int // distinct keys
	ValueSize    int // bytes per value
	// Warmup/Measure bound the measurement window.
	Warmup, Measure time.Duration
}

// DefaultClientConfig returns Table 1's parameters.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		Threads:      4,
		ConnsPerThrd: 50,
		SetRatio:     1,
		GetRatio:     10,
		KeySpace:     10000,
		ValueSize:    1024,
		Warmup:       20 * time.Millisecond,
		Measure:      150 * time.Millisecond,
	}
}

// Result summarises one benchmark run.
type Result struct {
	ResponsesPerSec float64
	MeanLatency     time.Duration
	StddevLatency   time.Duration
	P99Latency      time.Duration
	Responses       int
}

// RunClient drives the closed-loop load from clientNS against the server
// at addr:port and reports Fig. 5/11/12 metrics.
func RunClient(eng *sim.Engine, clientNS *netsim.NetNS, addr netsim.IPv4, port uint16, cfg ClientConfig) Result {
	total := cfg.Threads * cfg.ConnsPerThrd
	rng := eng.Rand().Fork()

	start := eng.Now()
	measureFrom := start + cfg.Warmup
	measureTo := measureFrom + cfg.Measure

	var lat sim.Series
	responses := 0

	period := cfg.SetRatio + cfg.GetRatio
	for i := 0; i < total; i++ {
		i := i
		conn := clientNS.DialStream(addr, port, nil)
		ops := 0
		var issue func(c *netsim.StreamConn)
		issue = func(c *netsim.StreamConn) {
			if eng.Now() >= measureTo {
				return
			}
			ops++
			key := fmt.Sprintf("key:%d", rng.Intn(cfg.KeySpace))
			// Interleave SETs at the configured ratio, offset per
			// connection so they do not synchronise.
			if (ops+i)%period < cfg.SetRatio {
				val := make([]byte, cfg.ValueSize)
				c.SendMessage(keyLen+cfg.ValueSize, request{op: Set, key: key, val: val})
			} else {
				c.SendMessage(getReqSize, request{op: Get, key: key})
			}
		}
		conn.OnMessage = func(_ int, app interface{}, _ sim.Time) {
			now := eng.Now()
			if resp, ok := app.(response); ok && now >= measureFrom && now < measureTo {
				responses++
				lat.AddDuration(now - resp.reqAt)
			}
			issue(conn)
		}
		// The first operation is queued immediately; it flows once the
		// handshake completes and its response starts the closed loop.
		conn.SendMessage(getReqSize, request{op: Get, key: fmt.Sprintf("key:%d", rng.Intn(cfg.KeySpace))})
	}

	eng.RunUntil(measureTo)
	res := Result{
		Responses:       responses,
		ResponsesPerSec: float64(responses) / cfg.Measure.Seconds(),
		MeanLatency:     time.Duration(lat.Mean() * float64(time.Second)),
		StddevLatency:   time.Duration(lat.Stddev() * float64(time.Second)),
		P99Latency:      time.Duration(lat.Percentile(99) * float64(time.Second)),
	}
	return res
}
