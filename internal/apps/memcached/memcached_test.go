package memcached

import (
	"testing"
	"time"

	"nestless/internal/netsim"
	"nestless/internal/sim"
)

func pair() (*sim.Engine, *netsim.NetNS, *netsim.NetNS) {
	eng := sim.New(11)
	eng.MaxSteps = 500_000_000
	w := netsim.NewNet(eng)
	a := w.NewNS("client", netsim.NewCPU(eng, "client", 1, nil))
	b := w.NewNS("server", netsim.NewCPU(eng, "server", 1, nil))
	ia, ib := netsim.NewVethPair(a, "eth0", b, "eth0")
	subnet := netsim.MustPrefix(netsim.IP(10, 0, 0, 0), 24)
	ia.SetAddr(netsim.IP(10, 0, 0, 1), subnet)
	ib.SetAddr(netsim.IP(10, 0, 0, 2), subnet)
	return eng, a, b
}

func TestServerStoresAndServes(t *testing.T) {
	eng, client, serverNS := pair()
	srv, err := NewServer(serverNS, 11211)
	if err != nil {
		t.Fatal(err)
	}
	var got []response
	conn := client.DialStream(netsim.IP(10, 0, 0, 2), 11211, nil)
	conn.OnMessage = func(_ int, app interface{}, _ sim.Time) {
		got = append(got, app.(response))
	}
	conn.SendMessage(getReqSize, request{op: Get, key: "missing"})
	conn.SendMessage(keyLen+100, request{op: Set, key: "k", val: make([]byte, 100)})
	conn.SendMessage(getReqSize, request{op: Get, key: "k"})
	eng.Run()

	if len(got) != 3 {
		t.Fatalf("responses = %d, want 3", len(got))
	}
	if got[0].hit {
		t.Error("GET of missing key hit")
	}
	if !got[1].hit {
		t.Error("SET not acknowledged")
	}
	if !got[2].hit || len(got[2].val) != 100 {
		t.Errorf("GET after SET: hit=%v len=%d", got[2].hit, len(got[2].val))
	}
	if srv.Gets != 2 || srv.Sets != 1 || srv.Misses != 1 || srv.Len() != 1 {
		t.Errorf("counters: gets=%d sets=%d misses=%d len=%d", srv.Gets, srv.Sets, srv.Misses, srv.Len())
	}
}

func TestClientDrivesLoad(t *testing.T) {
	eng, client, serverNS := pair()
	srv, err := NewServer(serverNS, 11211)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClientConfig()
	cfg.Threads = 2
	cfg.ConnsPerThrd = 5
	cfg.Warmup = 5 * time.Millisecond
	cfg.Measure = 30 * time.Millisecond
	res := RunClient(eng, client, netsim.IP(10, 0, 0, 2), 11211, cfg)

	if res.Responses == 0 {
		t.Fatal("no responses measured")
	}
	if res.ResponsesPerSec <= 0 || res.MeanLatency <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	// SET:GET ratio approximately 1:10.
	ratio := float64(srv.Gets) / float64(srv.Sets)
	if ratio < 7 || ratio > 14 {
		t.Errorf("GET/SET ratio = %.1f, want ~10", ratio)
	}
	if srv.Len() == 0 {
		t.Error("no keys stored")
	}
}

func TestClientDeterministic(t *testing.T) {
	run := func() Result {
		eng, client, serverNS := pair()
		if _, err := NewServer(serverNS, 11211); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultClientConfig()
		cfg.Threads = 1
		cfg.ConnsPerThrd = 4
		cfg.Warmup = 2 * time.Millisecond
		cfg.Measure = 10 * time.Millisecond
		return RunClient(eng, client, netsim.IP(10, 0, 0, 2), 11211, cfg)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
