// Package kafka models the paper's Kafka macro-benchmark: a broker that
// appends producer batches to a log, and a kafka-producer-perf-test-style
// client (Table 1: 120 000 msg/s of 100 B messages in 8192 B batches)
// reporting per-message latency from creation to acknowledgement
// (Figs. 5 and 6).
package kafka

import (
	"fmt"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/sim"
)

// batch is the application message of one produce request.
type batch struct {
	firstCreated sim.Time
	count        int
	bytes        int
	createdAts   []sim.Time
}

// ack is the broker's reply.
type ack struct {
	offset int64
}

// Broker service costs: append to the active segment (usr: copy +
// index update, amortised fsync).
var appendCost = netsim.StageCost{PerPacket: 12 * time.Microsecond, PerByteNs: 0.8}

const ackSize = 64
const produceOverhead = 60 // request framing

// Broker is a single-partition log server.
type Broker struct {
	ns  *netsim.NetNS
	log []int // appended batch sizes (the simulated segment)

	// Offset is the high-water mark in bytes.
	Offset int64
	// Batches counts appended batches.
	Batches uint64
}

// NewBroker starts a broker on ns:port.
func NewBroker(ns *netsim.NetNS, port uint16) (*Broker, error) {
	b := &Broker{ns: ns}
	_, err := ns.ListenStream(port, func(c *netsim.StreamConn) {
		c.OnMessage = func(_ int, app interface{}, _ sim.Time) {
			bt, ok := app.(batch)
			if !ok {
				return
			}
			b.append(c, bt)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("kafka: %w", err)
	}
	return b, nil
}

// append commits one batch and acknowledges.
func (b *Broker) append(c *netsim.StreamConn, bt batch) {
	b.ns.CPU.RunCosts([]netsim.Charge{{Cat: cpuacct.Usr, D: appendCost.For(bt.bytes)}}, func() {
		b.log = append(b.log, bt.bytes)
		b.Offset += int64(bt.bytes)
		b.Batches++
		c.SendMessage(ackSize, ack{offset: b.Offset})
	})
}

// ProducerConfig is the producer-perf parameter set.
type ProducerConfig struct {
	MsgPerSec int // 120000 in Table 1
	MsgSize   int // 100 B in Table 1
	BatchSize int // 8192 B in Table 1
	// LingerMax bounds how long a partial batch may wait (Kafka's
	// linger.ms analogue; producer-perf keeps batches full at this rate).
	LingerMax       time.Duration
	Warmup, Measure time.Duration
}

// DefaultProducerConfig returns Table 1's parameters.
func DefaultProducerConfig() ProducerConfig {
	return ProducerConfig{
		MsgPerSec: 120000,
		MsgSize:   100,
		BatchSize: 8192,
		LingerMax: 2 * time.Millisecond,
		Warmup:    20 * time.Millisecond,
		Measure:   150 * time.Millisecond,
	}
}

// Result summarises one run.
type Result struct {
	Messages      int
	PerSec        float64
	MeanLatency   time.Duration
	StddevLatency time.Duration
	P99Latency    time.Duration
}

// RunProducer drives the constant-rate producer from clientNS against
// the broker at addr:port. Per-message latency runs from message
// creation (entering the batch accumulator) to batch acknowledgement —
// the producer-perf definition.
func RunProducer(eng *sim.Engine, clientNS *netsim.NetNS, addr netsim.IPv4, port uint16, cfg ProducerConfig) Result {
	start := eng.Now()
	measureFrom := start + cfg.Warmup
	measureTo := measureFrom + cfg.Measure

	var lat sim.Series
	messages := 0

	conn := clientNS.DialStream(addr, port, nil)
	inflight := map[int64][]sim.Time{} // log offset is implicit; key by batch seq
	seq := int64(0)
	acked := int64(0)
	conn.OnMessage = func(_ int, app interface{}, _ sim.Time) {
		if _, ok := app.(ack); !ok {
			return
		}
		now := eng.Now()
		for _, created := range inflight[acked] {
			if now >= measureFrom && now < measureTo {
				messages++
				lat.AddDuration(now - created)
			}
		}
		delete(inflight, acked)
		acked++
	}

	// Accumulate messages at the configured rate; flush on batch-full or
	// linger expiry.
	var cur batch
	interval := time.Duration(float64(time.Second) / float64(cfg.MsgPerSec))

	flush := func() {
		if cur.count == 0 {
			return
		}
		b := cur
		cur = batch{}
		inflight[seq] = b.createdAts
		seq++
		conn.SendMessage(b.bytes+produceOverhead, b)
	}

	// The producer thread creates one message per interval; full batches
	// flush immediately, partial batches on linger expiry.
	var tick func()
	tick = func() {
		if eng.Now() >= measureTo {
			flush()
			return
		}
		createdAt := eng.Now()
		if cur.count == 0 {
			cur.firstCreated = createdAt
		}
		cur.count++
		cur.bytes += cfg.MsgSize
		cur.createdAts = append(cur.createdAts, createdAt)
		if cur.bytes+cfg.MsgSize > cfg.BatchSize {
			flush()
		}
		eng.After(interval, tick)
	}
	eng.After(0, tick)
	// Linger safety: flush stale partial batches periodically.
	var linger func()
	linger = func() {
		if eng.Now() >= measureTo {
			return
		}
		if cur.count > 0 && eng.Now()-cur.firstCreated >= cfg.LingerMax {
			flush()
		}
		eng.After(cfg.LingerMax, linger)
	}
	eng.After(cfg.LingerMax, linger)

	eng.RunUntil(measureTo)
	return Result{
		Messages:      messages,
		PerSec:        float64(messages) / cfg.Measure.Seconds(),
		MeanLatency:   time.Duration(lat.Mean() * float64(time.Second)),
		StddevLatency: time.Duration(lat.Stddev() * float64(time.Second)),
		P99Latency:    time.Duration(lat.Percentile(99) * float64(time.Second)),
	}
}
