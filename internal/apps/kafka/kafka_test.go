package kafka

import (
	"testing"
	"time"

	"nestless/internal/netsim"
	"nestless/internal/sim"
)

func pair() (*sim.Engine, *netsim.NetNS, *netsim.NetNS) {
	eng := sim.New(17)
	eng.MaxSteps = 500_000_000
	w := netsim.NewNet(eng)
	a := w.NewNS("producer", netsim.NewCPU(eng, "producer", 1, nil))
	b := w.NewNS("broker", netsim.NewCPU(eng, "broker", 1, nil))
	ia, ib := netsim.NewVethPair(a, "eth0", b, "eth0")
	subnet := netsim.MustPrefix(netsim.IP(10, 0, 0, 0), 24)
	ia.SetAddr(netsim.IP(10, 0, 0, 1), subnet)
	ib.SetAddr(netsim.IP(10, 0, 0, 2), subnet)
	return eng, a, b
}

func TestBrokerAppendsAndAcks(t *testing.T) {
	eng, producer, brokerNS := pair()
	br, err := NewBroker(brokerNS, 9092)
	if err != nil {
		t.Fatal(err)
	}
	var acks []ack
	conn := producer.DialStream(netsim.IP(10, 0, 0, 2), 9092, nil)
	conn.OnMessage = func(_ int, app interface{}, _ sim.Time) {
		acks = append(acks, app.(ack))
	}
	conn.SendMessage(8192, batch{count: 81, bytes: 8100, createdAts: []sim.Time{0}})
	conn.SendMessage(8192, batch{count: 81, bytes: 8100, createdAts: []sim.Time{0}})
	eng.Run()
	if len(acks) != 2 {
		t.Fatalf("acks = %d, want 2", len(acks))
	}
	if acks[1].offset != 16200 {
		t.Fatalf("final offset = %d, want 16200", acks[1].offset)
	}
	if br.Batches != 2 {
		t.Fatalf("Batches = %d", br.Batches)
	}
}

func TestProducerRateAndLatency(t *testing.T) {
	eng, producer, brokerNS := pair()
	if _, err := NewBroker(brokerNS, 9092); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultProducerConfig()
	cfg.Warmup = 10 * time.Millisecond
	cfg.Measure = 80 * time.Millisecond
	res := RunProducer(eng, producer, netsim.IP(10, 0, 0, 2), 9092, cfg)

	if res.Messages == 0 {
		t.Fatal("no messages acknowledged")
	}
	// The offered 120 kmsg/s should be achievable on a direct link.
	if res.PerSec < float64(cfg.MsgPerSec)*0.8 {
		t.Errorf("achieved %.0f msg/s, offered %d", res.PerSec, cfg.MsgPerSec)
	}
	if res.MeanLatency <= 0 {
		t.Fatalf("bad latency: %+v", res)
	}
}

func TestProducerDeterministic(t *testing.T) {
	run := func() Result {
		eng, producer, brokerNS := pair()
		if _, err := NewBroker(brokerNS, 9092); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultProducerConfig()
		cfg.MsgPerSec = 50000
		cfg.Warmup = 5 * time.Millisecond
		cfg.Measure = 30 * time.Millisecond
		return RunProducer(eng, producer, netsim.IP(10, 0, 0, 2), 9092, cfg)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSmallBatchStillFlushes(t *testing.T) {
	eng, producer, brokerNS := pair()
	if _, err := NewBroker(brokerNS, 9092); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultProducerConfig()
	cfg.MsgPerSec = 100 // far below one batch per linger period
	cfg.Warmup = 5 * time.Millisecond
	cfg.Measure = 100 * time.Millisecond
	res := RunProducer(eng, producer, netsim.IP(10, 0, 0, 2), 9092, cfg)
	if res.Messages == 0 {
		t.Fatal("linger flush never delivered slow-rate messages")
	}
}
