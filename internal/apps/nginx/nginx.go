// Package nginx models the paper's NGINX macro-benchmark: a static web
// server and a wrk2-style constant-rate client (Table 1: 2 threads, 100
// connections total, 10 k req/s on a 1 kB file) reporting request
// latency measured from the request's intended send time, wrk2's
// coordinated-omission-free convention (Figs. 5, 7, 13, 15).
package nginx

import (
	"fmt"
	"math"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/sim"
)

// request/response are the application messages.
type request struct {
	path       string
	intendedAt sim.Time
}

type response struct {
	status int
	size   int
	// reqAt echoes the request's submission time so the client can
	// compute full request→response latency.
	reqAt sim.Time
}

// Protocol sizes.
const (
	reqSize      = 160 // GET + headers
	respOverhead = 240 // status line + headers
)

// ServerConfig shapes the per-request service time. The paper observes
// (§5.2.2) that containerized NGINX is much slower and noisier than the
// native run "attributable to the software itself rather than to the
// networking layer" — overlay filesystems, syscall filtering and cgroup
// accounting on the file-serving path. Containerized deployments use the
// heavier profile.
type ServerConfig struct {
	FileSize int
	// ServiceMu/ServiceSigma parameterise a log-normal service time.
	ServiceMu    time.Duration
	ServiceSigma float64
}

// NativeConfig is NGINX running directly in the VM.
func NativeConfig() ServerConfig {
	return ServerConfig{FileSize: 1024, ServiceMu: 70 * time.Microsecond, ServiceSigma: 0.35}
}

// ContainerConfig is NGINX in a container (overlayfs + runtime filters).
func ContainerConfig() ServerConfig {
	return ServerConfig{FileSize: 1024, ServiceMu: 150 * time.Microsecond, ServiceSigma: 0.9}
}

// Workers is the worker-process pool size (nginx runs one worker per
// core; the paper's VMs have 5 vCPUs, one of which the kernel keeps
// busy with networking).
const Workers = 4

// Server is the web server bound to a namespace port. Request service
// runs on a pool of worker processes, so the app scales beyond the
// namespace's serial networking lane exactly as multi-worker nginx does.
type Server struct {
	ns      *netsim.NetNS
	cfg     ServerConfig
	rng     *sim.Rand
	workers *sim.Station

	// Requests counts served requests.
	Requests uint64
}

// NewServer starts the server on ns:port with the given profile.
func NewServer(ns *netsim.NetNS, port uint16, cfg ServerConfig) (*Server, error) {
	s := &Server{
		ns:      ns,
		cfg:     cfg,
		rng:     ns.Net.Eng.Rand().Fork(),
		workers: sim.NewStation(ns.Net.Eng, "nginx-workers", Workers),
	}
	_, err := ns.ListenStream(port, func(c *netsim.StreamConn) {
		c.OnMessage = func(_ int, app interface{}, sentAt sim.Time) {
			req, ok := app.(request)
			if !ok {
				return
			}
			s.serve(c, req, sentAt)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("nginx: %w", err)
	}
	return s, nil
}

// serve handles one request after the sampled service time, on the
// worker pool.
func (s *Server) serve(c *netsim.StreamConn, req request, sentAt sim.Time) {
	s.Requests++
	mu := math.Log(float64(s.cfg.ServiceMu))
	d := time.Duration(s.rng.LogNormal(mu, s.cfg.ServiceSigma))
	if min := s.cfg.ServiceMu / 4; d < min {
		d = min
	}
	if s.ns.CPU.Bill != nil {
		s.ns.CPU.Bill(cpuacct.Usr, d)
	}
	s.workers.Process(d, func() {
		c.SendMessage(s.cfg.FileSize+respOverhead, response{status: 200, size: s.cfg.FileSize, reqAt: sentAt})
	})
}

// ClientConfig is the wrk2 parameter set.
type ClientConfig struct {
	Conns           int     // 100 in Table 1
	RatePerSec      float64 // 10000 in Table 1
	Warmup, Measure time.Duration
}

// DefaultClientConfig returns Table 1's parameters.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		Conns:      100,
		RatePerSec: 10000,
		Warmup:     20 * time.Millisecond,
		Measure:    200 * time.Millisecond,
	}
}

// Result summarises one run.
type Result struct {
	Requests      int
	Achieved      float64 // responses/s inside the window
	MeanLatency   time.Duration
	StddevLatency time.Duration
	P99Latency    time.Duration
}

// RunClient drives the constant-rate load. Requests fire on schedule
// across the connection pool; when a connection is still busy, the next
// request is queued on it and its latency accrues from the intended
// time — exactly how wrk2 reports coordinated-omission-free latency.
func RunClient(eng *sim.Engine, clientNS *netsim.NetNS, addr netsim.IPv4, port uint16, cfg ClientConfig) Result {
	start := eng.Now()
	measureFrom := start + cfg.Warmup
	measureTo := measureFrom + cfg.Measure

	conns := make([]*netsim.StreamConn, cfg.Conns)
	var lat sim.Series
	requests := 0
	for i := range conns {
		c := clientNS.DialStream(addr, port, nil)
		c.OnMessage = func(_ int, app interface{}, _ sim.Time) {
			resp, ok := app.(response)
			if !ok || resp.status != 200 {
				return
			}
			now := eng.Now()
			if now >= measureFrom && now < measureTo {
				requests++
				// resp.reqAt is the request's submission instant — the
				// intended time, since ticks fire exactly on schedule —
				// so queueing on a busy connection counts toward latency.
				lat.AddDuration(now - resp.reqAt)
			}
		}
		conns[i] = c
	}

	interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
	next := 0

	var tick func()
	tick = func() {
		if eng.Now() >= measureTo {
			return
		}
		c := conns[next%len(conns)]
		next++
		// SendMessage stamps sentAt at submission — the intended time,
		// since we submit exactly on schedule.
		c.SendMessage(reqSize, request{path: "/index.html", intendedAt: eng.Now()})
		eng.After(interval, tick)
	}
	eng.After(cfg.Warmup/2, tick)

	eng.RunUntil(measureTo)
	return Result{
		Requests:      requests,
		Achieved:      float64(requests) / cfg.Measure.Seconds(),
		MeanLatency:   time.Duration(lat.Mean() * float64(time.Second)),
		StddevLatency: time.Duration(lat.Stddev() * float64(time.Second)),
		P99Latency:    time.Duration(lat.Percentile(99) * float64(time.Second)),
	}
}
