package nginx

import (
	"testing"
	"time"

	"nestless/internal/netsim"
	"nestless/internal/sim"
)

func pair() (*sim.Engine, *netsim.NetNS, *netsim.NetNS) {
	eng := sim.New(13)
	eng.MaxSteps = 500_000_000
	w := netsim.NewNet(eng)
	a := w.NewNS("client", netsim.NewCPU(eng, "client", 1, nil))
	b := w.NewNS("server", netsim.NewCPU(eng, "server", 1, nil))
	ia, ib := netsim.NewVethPair(a, "eth0", b, "eth0")
	subnet := netsim.MustPrefix(netsim.IP(10, 0, 0, 0), 24)
	ia.SetAddr(netsim.IP(10, 0, 0, 1), subnet)
	ib.SetAddr(netsim.IP(10, 0, 0, 2), subnet)
	return eng, a, b
}

func TestServerServesFile(t *testing.T) {
	eng, client, serverNS := pair()
	srv, err := NewServer(serverNS, 80, NativeConfig())
	if err != nil {
		t.Fatal(err)
	}
	var resp response
	var size int
	conn := client.DialStream(netsim.IP(10, 0, 0, 2), 80, nil)
	conn.OnMessage = func(n int, app interface{}, _ sim.Time) {
		size = n
		resp = app.(response)
	}
	conn.SendMessage(reqSize, request{path: "/index.html"})
	eng.Run()
	if resp.status != 200 || resp.size != 1024 {
		t.Fatalf("response = %+v", resp)
	}
	if size != 1024+respOverhead {
		t.Fatalf("wire size = %d", size)
	}
	if srv.Requests != 1 {
		t.Fatalf("Requests = %d", srv.Requests)
	}
}

func TestConstantRateLoad(t *testing.T) {
	eng, client, serverNS := pair()
	if _, err := NewServer(serverNS, 80, NativeConfig()); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClientConfig()
	cfg.Conns = 20
	cfg.RatePerSec = 5000
	cfg.Warmup = 10 * time.Millisecond
	cfg.Measure = 100 * time.Millisecond
	res := RunClient(eng, client, netsim.IP(10, 0, 0, 2), 80, cfg)

	if res.Requests == 0 {
		t.Fatal("no requests measured")
	}
	// Open-loop: achieved rate should be close to offered.
	if res.Achieved < cfg.RatePerSec*0.85 || res.Achieved > cfg.RatePerSec*1.15 {
		t.Errorf("achieved %.0f req/s, offered %.0f", res.Achieved, cfg.RatePerSec)
	}
	if res.MeanLatency <= 0 || res.P99Latency < res.MeanLatency {
		t.Errorf("bad latency stats: %+v", res)
	}
}

func TestContainerProfileSlowerAndNoisier(t *testing.T) {
	run := func(cfg ServerConfig) Result {
		eng, client, serverNS := pair()
		if _, err := NewServer(serverNS, 80, cfg); err != nil {
			t.Fatal(err)
		}
		c := DefaultClientConfig()
		c.Conns = 20
		c.RatePerSec = 4000
		c.Warmup = 10 * time.Millisecond
		c.Measure = 100 * time.Millisecond
		return RunClient(eng, client, netsim.IP(10, 0, 0, 2), 80, c)
	}
	native := run(NativeConfig())
	ctr := run(ContainerConfig())
	if ctr.MeanLatency <= native.MeanLatency {
		t.Errorf("container profile (%v) not slower than native (%v)", ctr.MeanLatency, native.MeanLatency)
	}
	nativeCV := float64(native.StddevLatency) / float64(native.MeanLatency)
	ctrCV := float64(ctr.StddevLatency) / float64(ctr.MeanLatency)
	if ctrCV <= nativeCV {
		t.Errorf("container latency CV (%.2f) not noisier than native (%.2f)", ctrCV, nativeCV)
	}
}
