package nginx

import (
	"nestless/internal/netsim"
	"testing"
	"time"
)

// TestOverloadLatencyExplodes documents the open-loop model: offering
// more than the worker pool can serve makes wrk2-style (intended-time)
// latency grow without bound, while a feasible rate stays near the
// service time. This is the regime that separates the Fig. 13 solutions.
func TestOverloadLatencyExplodes(t *testing.T) {
	run := func(rate float64) Result {
		eng, client, serverNS := pair()
		cfg := ContainerConfig()
		if _, err := NewServer(serverNS, 80, cfg); err != nil {
			t.Fatal(err)
		}
		c := DefaultClientConfig()
		c.Conns = 50
		c.RatePerSec = rate
		c.Warmup = 10 * time.Millisecond
		c.Measure = 120 * time.Millisecond
		return RunClient(eng, client, netsim.IP(10, 0, 0, 2), 80, c)
	}
	// Capacity ≈ Workers / E[service] ≈ 4 / 225µs ≈ 17.8k req/s.
	ok := run(6000)
	hot := run(30000)
	if hot.MeanLatency < ok.MeanLatency*3 {
		t.Fatalf("overload latency %v not far above feasible %v", hot.MeanLatency, ok.MeanLatency)
	}
	if ok.MeanLatency > 2*time.Millisecond {
		t.Fatalf("feasible-rate latency implausibly high: %v", ok.MeanLatency)
	}
}
