package brfusion

import (
	"testing"

	"nestless/internal/container"
	"nestless/internal/core"
	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/sim"
	"nestless/internal/vmm"
)

var hostNet = netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24)

type rig struct {
	eng    *sim.Engine
	net    *netsim.Net
	host   *vmm.Host
	vm     *vmm.VM
	engine *container.Engine
	plugin *Plugin
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.New(3)
	eng.MaxSteps = 50_000_000
	w := netsim.NewNet(eng)
	h := vmm.NewHost(w)
	h.AddBridge("virbr0", netsim.IP(192, 168, 122, 1), hostNet)
	ctrl := core.NewController(h)
	vm, _ := h.CreateVM(vmm.VMConfig{Name: "node", VCPUs: 5, MemoryMB: 4096})
	vm.PlugBridgeNIC("virbr0", hostNet.Host(10), hostNet)
	e := container.NewEngine(container.Config{
		Node: "node", Eng: eng, Net: w, NS: vm.NS, CPU: vm.CPU,
		EntityCPU: vm.EntityCPU, Uplink: "eth0",
		Boot: container.FastBootProfile(),
	})
	e.Pull(container.Image{Name: "app"})
	return &rig{eng: eng, net: w, host: h, vm: vm, engine: e, plugin: New(ctrl, vm, "virbr0")}
}

func (r *rig) runContainer(t *testing.T, name string) *container.Container {
	t.Helper()
	var ctr *container.Container
	r.engine.Run(container.Spec{Name: name, Image: "app", Network: r.plugin}, func(c *container.Container, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ctr = c
	})
	r.eng.Run()
	if ctr == nil {
		t.Fatal("container never started")
	}
	return ctr
}

func TestProvisionMovesNICIntoPod(t *testing.T) {
	r := newRig(t)
	ctr := r.runContainer(t, "pod1")

	// The pod owns a first-class address on the host bridge subnet.
	if !hostNet.Contains(ctr.IP) {
		t.Fatalf("pod IP %v not on the host bridge subnet", ctr.IP)
	}
	eth := ctr.NS.Iface("eth0")
	if eth == nil {
		t.Fatal("pod has no eth0")
	}
	if eth.Addr != ctr.IP {
		t.Fatalf("iface addr %v != pod IP %v", eth.Addr, ctr.IP)
	}
	// The interface left the VM's root namespace entirely.
	for _, i := range r.vm.NS.Ifaces() {
		if i.MAC == eth.MAC {
			t.Fatal("pod NIC still visible in the VM root namespace")
		}
	}
}

func TestPodTrafficBypassesVMStack(t *testing.T) {
	r := newRig(t)
	ctr := r.runContainer(t, "pod1")

	var got int
	if _, err := ctr.NS.BindUDP(80, func(p *netsim.Packet) { got = p.PayloadLen }); err != nil {
		t.Fatal(err)
	}
	s, _ := r.host.NS.BindUDP(0, nil)
	s.SendTo(ctr.IP, 80, 99, nil)
	r.eng.Run()
	if got != 99 {
		t.Fatalf("pod received %d, want 99", got)
	}
	if r.vm.NS.Filter.Translations != 0 {
		t.Error("pod traffic crossed the in-VM NAT")
	}
	// RX processing is billed to the pod's entity, not the VM kernel's
	// soft time (the §5.2.3 effect).
	if r.net.Acct.Usage("app/pod1").Of(cpuacct.Soft) == 0 {
		t.Error("pod softirq work not billed to the pod entity")
	}
}

func TestTwoPodsGetDistinctNICs(t *testing.T) {
	r := newRig(t)
	a := r.runContainer(t, "pod-a")
	b := r.runContainer(t, "pod-b")
	if a.IP == b.IP {
		t.Fatal("pods share an address")
	}
	if a.NS.Iface("eth0").MAC == b.NS.Iface("eth0").MAC {
		t.Fatal("pods share a MAC")
	}
	// Pods reach each other over the host bridge.
	var got bool
	if _, err := b.NS.BindUDP(9, func(p *netsim.Packet) { got = true }); err != nil {
		t.Fatal(err)
	}
	s, _ := a.NS.BindUDP(0, nil)
	s.SendTo(b.IP, 9, 10, nil)
	r.eng.Run()
	if !got {
		t.Fatal("pod-to-pod traffic over the host bridge failed")
	}
}

func TestReleaseUnplugsNIC(t *testing.T) {
	r := newRig(t)
	ctr := r.runContainer(t, "pod1")
	devices := len(r.vm.Devices())
	if err := r.plugin.Release(ctr); err != nil {
		t.Fatalf("Release = %v", err)
	}
	r.eng.Run()
	if len(r.vm.Devices()) != devices-1 {
		t.Fatalf("device count %d, want %d", len(r.vm.Devices()), devices-1)
	}
	// Double release is a caller bug and reports one.
	if err := r.plugin.Release(ctr); err == nil {
		t.Fatal("double release not rejected")
	}
	r.eng.Run()
}

func TestPluginName(t *testing.T) {
	r := newRig(t)
	if r.plugin.Name() != "brfusion" {
		t.Fatalf("Name = %q", r.plugin.Name())
	}
}
