// Package brfusion is the BrFusion CNI plugin (§3): instead of wiring a
// pod to an in-VM bridge behind in-VM NAT, it asks the VMM (through the
// core controller) to hot-plug a dedicated NIC for the pod, then — as
// the orchestrator's in-VM agent — moves that NIC straight into the
// pod's network namespace. The pod ends up with a first-class address on
// the host bridge subnet: the in-VM network virtualization layer
// disappears, which is the whole point.
package brfusion

import (
	"fmt"
	"time"

	"nestless/internal/container"
	"nestless/internal/core"
	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/vmm"
)

// Agent timing: finding the hot-plugged interface by MAC, pushing it
// into the pod namespace and configuring the address is a couple of
// netlink round trips.
const (
	agentConfigMean   = 4 * time.Millisecond
	agentConfigJitter = 1 * time.Millisecond
)

// Plugin provisions BrFusion networking for pods on one VM.
type Plugin struct {
	Ctrl *core.Controller
	VM   *vmm.VM
	// Bridge is the host-level networking domain pods join (§3.1 step 1
	// lets the orchestrator pick a tenant-specific bridge).
	Bridge string

	devices map[*container.Container]string
}

// New returns the plugin for one (VM, host bridge) pair.
func New(ctrl *core.Controller, vm *vmm.VM, bridge string) *Plugin {
	return &Plugin{Ctrl: ctrl, VM: vm, Bridge: bridge, devices: make(map[*container.Container]string)}
}

// Name identifies the plugin.
func (p *Plugin) Name() string { return "brfusion" }

// Provision runs the four-step protocol for one pod sandbox. Published
// ports are unnecessary — the pod's address is directly reachable on the
// host bridge domain, with NAT only at the host level exactly as for a
// VM — so they are ignored.
func (p *Plugin) Provision(c *container.Container, _ []container.PortMap, done func(netsim.IPv4, error)) {
	op := p.VM.Host.Net.Rec.OpBegin("cni/brfusion", "provision "+c.Name)
	inner := done
	done = func(ip netsim.IPv4, err error) {
		op.End(err)
		inner(ip, err)
	}
	p.Ctrl.ProvisionPodNIC(p.VM, p.Bridge, func(info core.NICInfo, err error) {
		if err != nil {
			done(netsim.IPv4{}, err)
			return
		}
		dev := p.VM.Devices()[info.DeviceID]
		if dev == nil {
			done(netsim.IPv4{}, fmt.Errorf("brfusion: device %s vanished", info.DeviceID))
			return
		}
		ip, subnet, err := p.Ctrl.AllocPodIP(p.Bridge)
		if err != nil {
			done(netsim.IPv4{}, err)
			return
		}
		// Step 4: the VM agent configures the NIC inside the VM and
		// inserts it into the pod namespace.
		rng := p.VM.Host.Eng.Rand()
		d := time.Duration(rng.Normal(float64(agentConfigMean), float64(agentConfigJitter)))
		if d < agentConfigMean/4 {
			d = agentConfigMean / 4
		}
		p.VM.CPU.Run(cpuacct.Sys, d, func() {
			iface := dev.NIC.Guest
			if iface.NS != nil {
				iface.NS.RemoveIface(iface.Name)
			}
			c.NS.AdoptIface(iface, "eth0")
			iface.SetAddr(ip, subnet)
			dev.NIC.SetGuestCPU(c.NS.CPU)
			gw := p.Ctrl.Host().Bridge(p.Bridge).Iface().Addr
			c.NS.AddRoute(netsim.Route{Dst: netsim.MustPrefix(netsim.IPv4{}, 0), Via: gw, Dev: "eth0"})
			p.devices[c] = info.DeviceID
			done(ip, nil)
		})
	})
}

// Release asks the VMM to unplug the pod's NIC.
func (p *Plugin) Release(c *container.Container) {
	id, ok := p.devices[c]
	if !ok {
		return
	}
	delete(p.devices, c)
	p.Ctrl.ReleasePodNIC(p.VM, id, nil)
}
