// Package brfusion is the BrFusion CNI plugin (§3): instead of wiring a
// pod to an in-VM bridge behind in-VM NAT, it asks the VMM (through the
// core controller) to hot-plug a dedicated NIC for the pod, then — as
// the orchestrator's in-VM agent — moves that NIC straight into the
// pod's network namespace. The pod ends up with a first-class address on
// the host bridge subnet: the in-VM network virtualization layer
// disappears, which is the whole point.
//
// The plugin carries real failure semantics: the hot-plug conversation
// retries with sim-clock timeouts and exponential backoff, the VM agent
// survives injected crashes by restarting, and when either path exhausts
// its budget the pod degrades gracefully to the Fallback provisioner
// (the engine's bridge+NAT network) instead of failing outright.
package brfusion

import (
	"fmt"
	"time"

	"nestless/internal/container"
	"nestless/internal/core"
	"nestless/internal/cpuacct"
	"nestless/internal/faults"
	"nestless/internal/netsim"
	"nestless/internal/vmm"
)

// Agent timing: finding the hot-plugged interface by MAC, pushing it
// into the pod namespace and configuring the address is a couple of
// netlink round trips. A crashed agent is respawned by the in-VM
// supervisor after agentRestartDelay; maxAgentRestarts bounds how long
// the plugin waits before giving up on the VM agent for this pod.
const (
	agentConfigMean   = 4 * time.Millisecond
	agentConfigJitter = 1 * time.Millisecond
	agentRestartDelay = 20 * time.Millisecond
	maxAgentRestarts  = 5
)

// Plugin provisions BrFusion networking for pods on one VM.
type Plugin struct {
	Ctrl *core.Controller
	VM   *vmm.VM
	// Bridge is the host-level networking domain pods join (§3.1 step 1
	// lets the orchestrator pick a tenant-specific bridge).
	Bridge string
	// Fallback, when set, takes over pods whose hot-plug path exhausted
	// its retries — the degraded-but-connected bridge+NAT network.
	Fallback container.Provisioner
	// Retry shapes the hot-plug retry loop. Zero means defaults (with
	// the timeout watchdog armed only when fault injection is active).
	Retry faults.RetryPolicy

	// Retries and Fallbacks count recovery activity for reports.
	Retries   uint64
	Fallbacks uint64

	devices     map[*container.Container]string
	viaFallback map[*container.Container]bool
}

// New returns the plugin for one (VM, host bridge) pair.
func New(ctrl *core.Controller, vm *vmm.VM, bridge string) *Plugin {
	return &Plugin{
		Ctrl:        ctrl,
		VM:          vm,
		Bridge:      bridge,
		devices:     make(map[*container.Container]string),
		viaFallback: make(map[*container.Container]bool),
	}
}

// Name identifies the plugin.
func (p *Plugin) Name() string { return "brfusion" }

// policy resolves the effective retry policy. The watchdog timer is
// armed only in faulted worlds: a fault-free monitor cannot stall, and
// the leftover timer events would perturb the deterministic baseline.
func (p *Plugin) policy() faults.RetryPolicy {
	pol := p.Retry
	if pol.MaxAttempts == 0 {
		pol = faults.DefaultRetryPolicy()
	}
	if p.VM.Host.Net.Faults == nil {
		pol.Timeout = 0
	}
	return pol
}

// Provision runs the four-step protocol for one pod sandbox. Published
// ports are unnecessary — the pod's address is directly reachable on the
// host bridge domain, with NAT only at the host level exactly as for a
// VM — so they are ignored (the fallback path does honour them).
func (p *Plugin) Provision(c *container.Container, ports []container.PortMap, done func(netsim.IPv4, error)) {
	h := p.VM.Host
	rec := h.Net.Rec
	op := rec.OpBegin("cni/brfusion", "provision "+c.Name)
	inner := done
	done = func(ip netsim.IPv4, err error) {
		op.End(err)
		inner(ip, err)
	}

	pol := p.policy()
	pol.OnRetry = func(int, error) {
		p.Retries++
		if rec != nil {
			rec.Metrics().Counter("retry/brfusion").Inc()
		}
	}
	faults.Retry(h.Eng, pol,
		func(_ int, complete func(core.NICInfo, error)) {
			p.Ctrl.ProvisionPodNIC(p.VM, p.Bridge, complete)
		},
		func(info core.NICInfo, err error) {
			// A hot-plug that completed after its watchdog fired: the
			// orchestrator already moved on, so unplug the stray NIC.
			if err == nil {
				p.Ctrl.ReleaseDevice(p.VM, info.DeviceID, nil)
			}
		},
		func(info core.NICInfo, _ int, err error) {
			if err != nil {
				p.fallback(c, ports, err, done)
				return
			}
			p.agentStep(c, ports, info, 0, done)
		})
}

// agentStep is §3.1 step 4 — the VM agent configures the NIC and hands
// it to the pod — hardened against injected agent crashes: each crash
// costs a supervisor restart, and exhausting the restart budget releases
// the NIC and degrades to the fallback network.
func (p *Plugin) agentStep(c *container.Container, ports []container.PortMap, info core.NICInfo, restarts int, done func(netsim.IPv4, error)) {
	h := p.VM.Host
	dev := p.VM.Device(info.DeviceID)
	if dev == nil {
		p.fallback(c, ports, fmt.Errorf("brfusion: device %s vanished", info.DeviceID), done)
		return
	}
	ip, subnet, err := p.Ctrl.AllocPodIP(p.Bridge)
	if err != nil {
		p.Ctrl.ReleaseDevice(p.VM, info.DeviceID, nil)
		done(netsim.IPv4{}, err)
		return
	}
	var attempt func(restarts int)
	attempt = func(restarts int) {
		rng := h.Eng.Rand()
		d := time.Duration(rng.Normal(float64(agentConfigMean), float64(agentConfigJitter)))
		if d < agentConfigMean/4 {
			d = agentConfigMean / 4
		}
		p.VM.CPU.Run(cpuacct.Sys, d, func() {
			if h.Net.Faults.Crash("agent/" + p.VM.Name) {
				if restarts+1 > maxAgentRestarts {
					p.Ctrl.ReleaseDevice(p.VM, info.DeviceID, nil)
					p.fallback(c, ports, fmt.Errorf("brfusion: agent on %s crashed %d times", p.VM.Name, restarts+1), done)
					return
				}
				h.Eng.After(agentRestartDelay, func() { attempt(restarts + 1) })
				return
			}
			iface := dev.NIC.Guest
			if iface.NS != nil {
				iface.NS.RemoveIface(iface.Name)
			}
			c.NS.AdoptIface(iface, "eth0")
			iface.SetAddr(ip, subnet)
			dev.NIC.SetGuestCPU(c.NS.CPU)
			gw := p.Ctrl.Host().Bridge(p.Bridge).Iface().Addr
			c.NS.AddRoute(netsim.Route{Dst: netsim.MustPrefix(netsim.IPv4{}, 0), Via: gw, Dev: "eth0"})
			p.devices[c] = info.DeviceID
			done(ip, nil)
		})
	}
	attempt(restarts)
}

// fallback degrades the pod to the Fallback provisioner after the
// hot-plug path gave up. The pod stays schedulable — it just pays the
// duplicate network virtualization BrFusion would have removed.
func (p *Plugin) fallback(c *container.Container, ports []container.PortMap, cause error, done func(netsim.IPv4, error)) {
	if p.Fallback == nil {
		done(netsim.IPv4{}, fmt.Errorf("brfusion: %w (no fallback network)", cause))
		return
	}
	p.Fallbacks++
	if rec := p.VM.Host.Net.Rec; rec != nil {
		rec.Instant("cni/brfusion", "fallback "+c.Name, "count", 1)
		rec.Metrics().Counter("fallback/brfusion").Inc()
	}
	p.Fallback.Provision(c, ports, func(ip netsim.IPv4, err error) {
		if err != nil {
			done(netsim.IPv4{}, fmt.Errorf("brfusion: fallback after %v: %w", cause, err))
			return
		}
		p.viaFallback[c] = true
		done(ip, nil)
	})
}

// Release asks the VMM to unplug the pod's NIC (or hands fallback pods
// to the fallback provisioner). Releasing a pod this plugin never
// provisioned — or releasing one twice — is an error.
func (p *Plugin) Release(c *container.Container) error {
	if p.viaFallback[c] {
		delete(p.viaFallback, c)
		return p.Fallback.Release(c)
	}
	id, ok := p.devices[c]
	if !ok {
		return fmt.Errorf("brfusion: nothing provisioned for %q", c.Name)
	}
	delete(p.devices, c)
	// Fire-and-forget with retries: a release that still fails after the
	// retry budget surfaces through telemetry and the host leak checker.
	p.Ctrl.ReleaseDevice(p.VM, id, nil)
	return nil
}
