package ctrace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"nestless/internal/trace"
)

// goldenUsers is the pinned population behind testdata/golden.*: small
// enough to diff by eye, churny enough to exercise ends.
func goldenUsers() []trace.User {
	gcfg := trace.DefaultConfig(3)
	gcfg.Users = 12
	gcfg.MeanArrivalGap = 2 * time.Minute
	gcfg.MeanLifetime = 45 * time.Minute
	return trace.Generate(gcfg)
}

// TestGolden pins ctracegen's byte output in both formats and the
// read-back equivalence. Regenerate with
//
//	REGEN_GOLDEN=1 go test ./internal/ctrace -run TestGolden
//
// after an intentional format change and commit the diff.
func TestGolden(t *testing.T) {
	users := goldenUsers()
	for _, tc := range []struct {
		format Format
		file   string
	}{
		{CSV, "golden.csv"},
		{JSONL, "golden.jsonl"},
	} {
		t.Run(tc.file, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Write(&buf, NewSynth(users), tc.format); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if os.Getenv("REGEN_GOLDEN") != "" {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with REGEN_GOLDEN=1 to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s drifted from the golden bytes (REGEN_GOLDEN=1 regenerates after an intentional change)", tc.file)
			}
			// Round trip: the golden file reads back to the synth stream.
			r := mustReader(t, bytes.NewReader(want), Options{})
			got := drain(t, r)
			if !reflect.DeepEqual(got, drain(t, NewSynth(users))) {
				t.Fatalf("%s did not read back to the source stream", tc.file)
			}
		})
	}
}
