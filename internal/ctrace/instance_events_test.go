package ctrace

import (
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"nestless/internal/trace"
)

// A hand-written slice of a 2019 instance_events BigQuery export:
// INT64 columns appear both as JSON strings (the export's spelling)
// and bare numbers, extra columns ride along, and a SCHEDULE row (type
// 3) interleaves. Collection 389 has two instances whose same-time
// SUBMIT rows coalesce into one two-container pod; instance 0 FINISHes
// first, so the pod's end follows instance 1's KILL.
const instanceBody = `{"time":"1000","type":"0","collection_id":"389","instance_index":"0","user":"alice","resource_request":{"cpus":"0.25","memory":0.5},"priority":"200","machine_id":"51447"}
{"time":"1000","type":0,"collection_id":389,"instance_index":1,"user":"alice","resource_request":{"cpus":0.125,"memory":"0.25"},"alloc_collection_id":"0"}
{"time":"2000","type":"3","collection_id":"389","instance_index":"0","machine_id":"51447"}
{"time":"5000","type":"6","collection_id":"389","instance_index":"0"}
{"time":"9000","type":"7","collection_id":"389","instance_index":"1"}
{"time":"9000","type":"0","collection_id":"77","instance_index":"0","user":"bob","resource_request":{"cpus":"0.0625","memory":"0.0625"}}
{"time":"9500","type":"6","collection_id":"77","instance_index":"0"}
`

func TestInstanceEvents(t *testing.T) {
	evs, stats := read(t, instanceBody, Options{})
	want := []Event{
		{Time: 1000 * time.Microsecond, Kind: Submit, Pod: "389", User: "alice",
			Containers: []trace.Container{{CPU: 0.25, Mem: 0.5}, {CPU: 0.125, Mem: 0.25}}},
		{Time: 9000 * time.Microsecond, Kind: Kill, Pod: "389", User: "alice"},
		{Time: 9000 * time.Microsecond, Kind: Submit, Pod: "77", User: "bob",
			Containers: []trace.Container{{CPU: 0.0625, Mem: 0.0625}}},
		{Time: 9500 * time.Microsecond, Kind: Finish, Pod: "77", User: "bob"},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events:\n got %+v\nwant %+v", evs, want)
	}
	if stats.Rows != 7 || stats.Ignored != 1 || stats.Pods != 2 || stats.Ends != 2 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestInstanceEventsMatchCSV pins that the adapter and the 2011 CSV
// reader are the same state machine: the instance_events slice above,
// transliterated row for row into task_events CSV, yields the
// identical event stream.
func TestInstanceEventsMatchCSV(t *testing.T) {
	csv := header + `
1000,0,389,0,alice,0.25,0.5
1000,0,389,1,alice,0.125,0.25
2000,1,389,0,alice,0,0
5000,4,389,0,alice,0,0
9000,5,389,1,alice,0,0
9000,0,77,0,bob,0.0625,0.0625
9500,4,77,0,bob,0,0
`
	fromInstance, _ := read(t, instanceBody, Options{})
	fromCSV, _ := read(t, csv, Options{})
	if !reflect.DeepEqual(fromInstance, fromCSV) {
		t.Fatalf("adapter diverged from the CSV state machine:\n got %+v\nwant %+v", fromInstance, fromCSV)
	}
}

// TestInstanceSniff pins the mode decision: the first JSON data line
// picks instance_events (collection_id present) or native JSONL, and
// native JSONL files keep their strict unknown-field check.
func TestInstanceSniff(t *testing.T) {
	native := `{"t_us":1000,"ev":"submit","pod":"p1","user":"a","containers":[{"cpu":0.25,"mem":0.5}]}` + "\n"
	r := mustReader(t, strings.NewReader(native), Options{})
	if evs := drain(t, r); len(evs) != 1 || evs[0].Pod != "p1" {
		t.Fatalf("native JSONL misrouted: %+v", evs)
	}
	// Comment and blank lines inside an export are skipped like
	// everywhere else (the format sniff itself needs '{' first, as for
	// native JSONL).
	lines := strings.SplitAfterN(instanceBody, "\n", 2)
	commented := lines[0] + "# re-sorted 2019-05-01\n\n" + lines[1]
	if evs, _ := read(t, commented, Options{}); len(evs) != 4 {
		t.Fatalf("commented export misrouted: %+v", evs)
	}
}

func TestInstanceStrictRejections(t *testing.T) {
	cases := []struct{ name, body string }{
		{"unknown_type", `{"time":"1000","type":"11","collection_id":"1","instance_index":"0"}`},
		{"missing_collection", `{"time":"1000","type":"0","collection_id":"0","instance_index":"0","resource_request":{"cpus":"0.1","memory":"0.1"}}`},
		{"negative_instance", `{"time":"1000","type":"0","collection_id":"1","instance_index":"-1","resource_request":{"cpus":"0.1","memory":"0.1"}}`},
		{"nan_request", `{"time":"1000","type":"0","collection_id":"1","instance_index":"0","resource_request":{"cpus":"NaN","memory":"0.1"}}`},
		{"over_unit", `{"time":"1000","type":"0","collection_id":"1","instance_index":"0","resource_request":{"cpus":"1.5","memory":"0.1"}}`},
		{"negative_time", `{"time":"-5","type":"0","collection_id":"1","instance_index":"0","resource_request":{"cpus":"0.1","memory":"0.1"}}`},
		{"unknown_end", `{"time":"1000","type":"6","collection_id":"1","instance_index":"0"}`},
		{"bad_int", `{"time":"xx","type":"0","collection_id":"1","instance_index":"0"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The sniff needs the collection_id field on the first line,
			// which every case carries.
			r := mustReader(t, strings.NewReader(tc.body+"\n"), Options{})
			var err error
			for err == nil {
				_, err = r.Next()
			}
			if err == io.EOF {
				t.Fatalf("strict reader accepted %s", tc.name)
			}
		})
	}
}

func TestInstanceLenientSkips(t *testing.T) {
	body := `{"time":"1000","type":"0","collection_id":"1","instance_index":"0","user":"a","resource_request":{"cpus":"0.1","memory":"0.1"}}
{"time":"2000","type":"99","collection_id":"2","instance_index":"0"}
{"time":"3000","type":"6","collection_id":"1","instance_index":"0"}
`
	evs, stats := read(t, body, Options{Lenient: true})
	if len(evs) != 2 || evs[1].Kind != Finish {
		t.Fatalf("events: %+v", evs)
	}
	if stats.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", stats.Skipped)
	}
}
