package ctrace

import (
	"fmt"
	"sort"
	"time"

	"nestless/internal/trace"
)

// NewSynth adapts a synthetic population (internal/trace's generator
// output, churn stamps included) into the same event stream a recorded
// trace file yields: one Submit per pod at its arrival, one Finish at
// arrival+lifetime for pods that depart. Times are quantized to the
// trace formats' microsecond resolution so a population written with
// Write and read back through a Reader replays identically.
//
// This is the Source the cluster simulator consumes when no file is in
// play — synthetic churn and real traces enter through one interface.
func NewSynth(users []trace.User) *Slice {
	var evs []Event
	// Submits first, then ends: the stable sort keeps that relative
	// order at equal timestamps, so a zero-lifetime pod still submits
	// before it finishes.
	for _, u := range users {
		user := fmt.Sprintf("u%d", u.ID)
		for _, p := range u.Pods {
			evs = append(evs, Event{
				Time:       quantize(p.Arrival),
				Kind:       Submit,
				Pod:        p.ID,
				User:       user,
				Containers: p.Containers,
			})
		}
	}
	for _, u := range users {
		user := fmt.Sprintf("u%d", u.ID)
		for _, p := range u.Pods {
			if p.Lifetime <= 0 {
				continue // runs forever
			}
			evs = append(evs, Event{
				Time: quantize(p.Arrival + p.Lifetime),
				Kind: Finish,
				Pod:  p.ID,
				User: user,
			})
		}
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Time < evs[b].Time })
	return NewSlice(evs)
}

// quantize truncates a duration to the microsecond resolution of the
// on-disk formats.
func quantize(d time.Duration) time.Duration {
	return d - d%time.Microsecond
}
