package ctrace

import (
	"io"
	"math"
	"strings"
	"testing"
)

// FuzzParseTraceLine drives both line parsers — the CSV task row and
// the JSONL pod row — plus a whole strict-mode reader pass over the
// input as a two-line document. Properties: no panics ever; anything
// the CSV parser accepts satisfies the row invariants the consumers
// rely on; the reader never yields an event that violates the
// normalized-event contract (non-negative time, known kind, non-empty
// pod id, finite in-range requests).
func FuzzParseTraceLine(f *testing.F) {
	seeds := []string{
		"1000,0,j1,0,alice,0.25,0.5",
		"1000,4,j1,0,alice,0,0",
		"1000,kill,j1,0,alice,0,0",
		"1000,SUBMIT,j1,1,alice,0.0625,0.125",
		`{"t_us":1000,"ev":"submit","pod":"p1","user":"a","containers":[{"cpu":0.25,"mem":0.5}]}`,
		`{"t_us":9000,"ev":"finish","pod":"p1"}`,
		// Malformed shapes the parser must reject without panicking.
		"1000,0,j1,0,alice,0.25",           // missing field
		"xx,0,j1,0,alice,0.25,0.5",         // bad time
		"-7,0,j1,0,alice,0.25,0.5",         // negative time
		"1000,0,j1,0,alice,NaN,0.5",        // NaN request
		"1000,0,j1,0,alice,-0.25,0.5",      // negative request
		"1000,0,j1,0,alice,1e308,0.5",      // out-of-range request
		"1000,0,,0,alice,0.25,0.5",         // empty job
		"1000,99,j1,0,alice,0.25,0.5",      // unknown code
		"1000,0,j1,-1,alice,0.25,0.5",      // negative task
		`{"t_us":1000,"ev":"submit"}`,      // no pod, no containers
		`{"t_us":-1,"ev":"kill","pod":"p"}`, // negative time
		`{"bogus":true}`,                   // unknown field soup
		"\x00\xff,",                        // binary garbage
		// 2019 instance_events shapes (whole-reader pass sniffs these
		// into the adapter via the collection_id field).
		`{"time":"1000","type":"0","collection_id":"389","instance_index":"0","user":"a","resource_request":{"cpus":"0.25","memory":0.5}}`,
		`{"time":"9000","type":"7","collection_id":"389","instance_index":"0"}`,
		`{"time":"1000","type":"11","collection_id":"1","instance_index":"0"}`,  // unknown type
		`{"time":"1000","type":"0","collection_id":"0","instance_index":"0"}`,   // missing collection
		`{"time":"xx","type":"0","collection_id":"1","instance_index":"0"}`,     // bad INT64 string
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		if row, err := parseCSVLine(line); err == nil {
			if row.code < 0 || row.code > 8 {
				t.Fatalf("accepted code %d", row.code)
			}
			if row.job == "" {
				t.Fatal("accepted empty job")
			}
			if row.task < 0 {
				t.Fatalf("accepted task %d", row.task)
			}
		}
		parseJSONLine(line)

		// Whole-reader pass: the line as a document body (with the CSV
		// header when it does not sniff as JSON). Strict mode may error;
		// it must not panic, and yielded events must be well-formed.
		body := line + "\n"
		if !strings.HasPrefix(strings.TrimLeft(line, " \t"), "{") {
			body = header + "\n" + body
		}
		r, err := NewReader(strings.NewReader(body), Options{})
		if err != nil {
			return
		}
		for {
			ev, err := r.Next()
			if err != nil {
				if err != io.EOF {
					return // rejected: fine
				}
				return
			}
			if ev.Time < 0 {
				t.Fatalf("yielded negative time %v", ev.Time)
			}
			if ev.Kind != Submit && ev.Kind != Finish && ev.Kind != Kill {
				t.Fatalf("yielded kind %v", ev.Kind)
			}
			if ev.Pod == "" {
				t.Fatal("yielded empty pod id")
			}
			for _, c := range ev.Containers {
				if math.IsNaN(c.CPU) || c.CPU < 0 || c.CPU > 1 ||
					math.IsNaN(c.Mem) || c.Mem < 0 || c.Mem > 1 {
					t.Fatalf("yielded out-of-range request %+v", c)
				}
			}
		}
	})
}
