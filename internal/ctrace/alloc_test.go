package ctrace

import (
	"bytes"
	"io"
	"testing"
	"time"

	"nestless/internal/trace"
)

// TestCSVReaderAllocBudget pins the pooled hot path: draining a CSV
// trace must average around one allocation per row — the data that
// escapes into events (job id string, containers slice) plus amortized
// growth, and nothing per-line or per-field. The pre-pooling reader
// sat near three; the budget of two catches a regression of that size
// while tolerating map-rehash noise.
func TestCSVReaderAllocBudget(t *testing.T) {
	gcfg := trace.DefaultConfig(19)
	gcfg.Users = 200
	gcfg.MeanArrivalGap = 2 * time.Minute
	gcfg.MeanLifetime = 45 * time.Minute
	var buf bytes.Buffer
	if err := Write(&buf, NewSynth(trace.Generate(gcfg)), CSV); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	var rows int
	allocs := testing.AllocsPerRun(5, func() {
		r, err := NewReader(bytes.NewReader(data), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		rows = r.Stats().Rows
	})
	if rows < 1000 {
		t.Fatalf("degenerate trace: %d rows", rows)
	}
	if perRow := allocs / float64(rows); perRow > 2 {
		t.Fatalf("reader allocates %.2f/row over %d rows (budget 2)", perRow, rows)
	}
}
