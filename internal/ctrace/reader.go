package ctrace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"
	"unsafe"

	"nestless/internal/trace"
)

// Options configures a Reader.
type Options struct {
	// Lenient downgrades validation errors (malformed rows, bad
	// requests, out-of-order timestamps, duplicate submits, ends for
	// unknown jobs) to counted skips. The default is strict: the first
	// bad row is an error naming the line.
	Lenient bool
}

// header is the canonical CSV header line, skipped when present.
const header = "time_us,event,job,task,user,cpu,mem"

// maxLine bounds one physical line (a JSONL pod with very many
// containers); beyond it the file is malformed.
const maxLine = 4 << 20

// Input mode, sniffed from content. A '{' first byte means JSON lines;
// whether those are the native pod-level rows or a 2019 v3
// instance_events export is decided from the first data line (see
// instance_events.go).
const (
	modeCSV = iota
	modeJSONSniff
	modeJSONL
	modeInstance
)

// jobState is one open-pod table entry: a job accumulating SUBMIT rows
// at the current instant (building) or live awaiting its end (open task
// count). Entries are pooled across jobs — ending a job recycles its
// state, but never its containers slice, which escapes into the Submit
// event the consumer keeps.
type jobState struct {
	id       string
	user     string
	ctrs     []trace.Container
	open     int
	building bool
}

// Reader streams normalized events out of a trace file. Memory is
// bounded by the number of concurrently live pods (the open-pod table
// and the current-timestamp submit groups), never by file size. The
// row loop is allocation-free outside the data that escapes into
// events: parsing works on the scanner's byte buffer in place, job
// states are pooled, user names are interned once per tenant, and the
// emission queue's backing array is reused across flushes.
type Reader struct {
	opts    Options
	sc      *bufio.Scanner
	mode    int
	line    int
	lastUS  int64 // last accepted row timestamp (order validation)
	started bool

	// CSV submit coalescing: jobs whose SUBMIT rows are accumulating at
	// curUS, flushed in first-seen order when time advances. jobs holds
	// every building or live job; free recycles ended entries.
	curUS int64
	order []*jobState
	jobs  map[string]*jobState
	free  []*jobState
	users map[string]string // interned tenant names

	// ready is the emission queue (flushes can release several events at
	// once), drained head-first and reset in place when it empties.
	ready     []Event
	readyHead int

	scratch []byte // per-row key formatting (instance_events)
	stats   Stats
	err     error // sticky terminal error
	closers []io.Closer
}

// Open opens a trace file for streaming. Gzip compression and the
// CSV/JSONL format are sniffed from the content, not the name.
func Open(path string, opts Options) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closers = append(r.closers, f)
	return r, nil
}

// NewReader wraps an arbitrary stream. See Open for file paths.
func NewReader(src io.Reader, opts Options) (*Reader, error) {
	br := bufio.NewReader(src)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("ctrace: gzip: %w", err)
		}
		br = bufio.NewReader(gz)
	}
	r := &Reader{
		opts:  opts,
		mode:  modeCSV,
		jobs:  map[string]*jobState{},
		users: map[string]string{},
	}
	// Format sniff: the first non-space byte of a JSONL trace is '{'.
	if first, err := br.Peek(1); err == nil && (first[0] == '{' || first[0] == '[') {
		r.mode = modeJSONSniff
	}
	r.sc = bufio.NewScanner(br)
	r.sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	return r, nil
}

// Close releases the underlying file (if Open was used).
func (r *Reader) Close() error {
	var err error
	for i := len(r.closers) - 1; i >= 0; i-- {
		if cerr := r.closers[i].Close(); err == nil {
			err = cerr
		}
	}
	r.closers = nil
	return err
}

// Stats reports consumption counters (complete once Next returned
// io.EOF).
func (r *Reader) Stats() Stats { return r.stats }

// Next yields the next normalized event in time order, io.EOF at the
// end, or the first validation error in strict mode.
func (r *Reader) Next() (Event, error) {
	for {
		if r.readyHead < len(r.ready) {
			ev := r.ready[r.readyHead]
			r.ready[r.readyHead] = Event{} // release escaped references
			r.readyHead++
			if r.readyHead == len(r.ready) {
				r.ready = r.ready[:0]
				r.readyHead = 0
			}
			return ev, nil
		}
		if r.err != nil {
			return Event{}, r.err
		}
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				r.err = fmt.Errorf("ctrace: line %d: %w", r.line+1, err)
			} else {
				r.flushSubmits()
				r.err = io.EOF
			}
			continue
		}
		r.line++
		line := bytes.TrimSpace(r.sc.Bytes())
		if len(line) == 0 || line[0] == '#' || (r.mode == modeCSV && string(line) == header) {
			continue
		}
		r.stats.Rows++
		if err := r.consume(line); err != nil {
			if r.opts.Lenient {
				r.stats.Skipped++
				continue
			}
			r.err = fmt.Errorf("ctrace: line %d: %w", r.line, err)
		}
	}
}

// consume parses and applies one physical line. line aliases the
// scanner's buffer and is only valid for this call.
func (r *Reader) consume(line []byte) error {
	if r.mode == modeJSONSniff {
		if bytes.Contains(line, instanceSniff) {
			r.mode = modeInstance
		} else {
			r.mode = modeJSONL
		}
	}
	switch r.mode {
	case modeJSONL:
		return r.consumeJSON(line)
	case modeInstance:
		return r.consumeInstance(line)
	}
	return r.consumeCSV(line)
}

// badf builds a row-level validation error.
func badf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}

// bstr views b as a string without copying. Only for callees that do
// not retain their argument — the strconv parsers qualify (they clone
// the input into any error they build).
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// checkRequest validates one resource request (relative to the largest
// machine, so [0,1] and finite).
func checkRequest(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return badf("%s request is not finite", name)
	}
	if v < 0 || v > 1 {
		return badf("%s request %v outside [0,1]", name, v)
	}
	return nil
}

// checkTime validates and registers a row timestamp: non-negative and
// non-decreasing across the file.
func (r *Reader) checkTime(us int64) error {
	if us < 0 {
		return badf("negative timestamp %d", us)
	}
	if r.started && us < r.lastUS {
		return badf("timestamp %dus before previous row at %dus (trace must be time-ordered)", us, r.lastUS)
	}
	return nil
}

// accept commits a validated row timestamp, flushing submit groups from
// earlier instants first.
func (r *Reader) accept(us int64) {
	if !r.started || us > r.curUS {
		r.flushSubmits()
		r.curUS = us
	}
	r.started = true
	r.lastUS = us
}

// intern returns the canonical copy of a tenant name so every event of
// one user shares a single string.
func (r *Reader) intern(user []byte) string {
	if len(user) == 0 {
		return ""
	}
	if u, ok := r.users[string(user)]; ok { // no-alloc map probe
		return u
	}
	u := string(user)
	r.users[u] = u
	return u
}

// takeJob pops a pooled entry (zeroed by emitEnd when recycled).
func (r *Reader) takeJob() *jobState {
	if n := len(r.free); n > 0 {
		js := r.free[n-1]
		r.free = r.free[:n-1]
		return js
	}
	return &jobState{}
}

// newJob materializes an entry for a job starting to build.
func (r *Reader) newJob(job, user []byte) *jobState {
	js := r.takeJob()
	js.id = string(job)
	js.user = r.intern(user)
	js.building = true
	return js
}

// csvRow is one parsed CSV line with its strings materialized — the
// fuzz surface's view (the hot path uses rawRow and never copies).
type csvRow struct {
	us       int64
	code     int
	job      string
	task     int
	user     string
	cpu, mem float64
}

// rawRow is the zero-copy parse of one task-level row. job and user
// alias the scanner's buffer: copy or intern them before the next line.
type rawRow struct {
	us       int64
	code     int
	job      []byte
	task     int
	user     []byte
	cpu, mem float64
}

// Symbolic CSV event names (folded case, no per-row conversion).
var (
	evSubmit = []byte("submit")
	evFinish = []byte("finish")
	evKill   = []byte("kill")
)

// parseCSVLine parses (without applying) one CSV row. It is the CSV
// half of the fuzz surface.
func parseCSVLine(line string) (csvRow, error) {
	raw, err := parseCSVRow([]byte(line))
	if err != nil {
		return csvRow{}, err
	}
	return csvRow{
		us: raw.us, code: raw.code, job: string(raw.job),
		task: raw.task, user: string(raw.user), cpu: raw.cpu, mem: raw.mem,
	}, nil
}

// parseCSVRow parses one CSV row in place over the scanner's buffer.
func parseCSVRow(line []byte) (rawRow, error) {
	var row rawRow
	var f [7][]byte
	rest := line
	for i := 0; i < 6; i++ {
		j := bytes.IndexByte(rest, ',')
		if j < 0 {
			return row, badf("want 7 fields time_us,event,job,task,user,cpu,mem; got %d", i+1)
		}
		f[i] = bytes.TrimSpace(rest[:j])
		rest = rest[j+1:]
	}
	if bytes.IndexByte(rest, ',') >= 0 {
		return row, badf("want 7 fields time_us,event,job,task,user,cpu,mem; got %d", 8+bytes.Count(rest, []byte{','}))
	}
	f[6] = bytes.TrimSpace(rest)

	us, err := strconv.ParseInt(bstr(f[0]), 10, 64)
	if err != nil {
		return row, badf("time_us: %v", err)
	}
	row.us = us
	switch {
	case bytes.EqualFold(f[1], evSubmit):
		row.code = 0
	case bytes.EqualFold(f[1], evFinish):
		row.code = 4
	case bytes.EqualFold(f[1], evKill):
		row.code = 5
	default:
		code, err := strconv.Atoi(bstr(f[1]))
		if err != nil || code < 0 || code > 8 {
			return row, badf("event %q is neither a Google code 0-8 nor submit/finish/kill", f[1])
		}
		row.code = code
	}
	row.job = f[2]
	if len(row.job) == 0 {
		return row, badf("empty job id")
	}
	task, err := strconv.Atoi(bstr(f[3]))
	if err != nil || task < 0 {
		return row, badf("task index %q is not a non-negative integer", f[3])
	}
	row.task = task
	row.user = f[4]
	if row.cpu, err = strconv.ParseFloat(bstr(f[5]), 64); err != nil {
		return row, badf("cpu: %v", err)
	}
	if row.mem, err = strconv.ParseFloat(bstr(f[6]), 64); err != nil {
		return row, badf("mem: %v", err)
	}
	return row, nil
}

// consumeCSV applies one task-level row.
func (r *Reader) consumeCSV(line []byte) error {
	row, err := parseCSVRow(line)
	if err != nil {
		return err
	}
	return r.apply(row)
}

// apply is the task-level lifecycle state machine shared by the CSV
// format and the instance_events adapter: submits coalesce into pod
// submit groups, task ends decrement the job's live count and emit the
// pod end when it empties.
func (r *Reader) apply(row rawRow) error {
	if err := r.checkTime(row.us); err != nil {
		return err
	}
	switch row.code {
	case 1, 7, 8: // SCHEDULE / UPDATE_PENDING / UPDATE_RUNNING: not lifecycle
		r.stats.Ignored++
		r.accept(row.us)
		return nil
	case 0: // SUBMIT
		if err := checkRequest("cpu", row.cpu); err != nil {
			return err
		}
		if err := checkRequest("mem", row.mem); err != nil {
			return err
		}
		js := r.jobs[string(row.job)] // no-alloc map probe
		if js != nil && !js.building {
			return badf("job %s submitted while already live", row.job)
		}
		r.accept(row.us)
		if js != nil && !js.building {
			// accept flushed the job's earlier-instant group: this row is
			// a duplicate submit of a now-live job.
			return badf("job %s submitted while already live", row.job)
		}
		if js == nil {
			js = r.newJob(row.job, row.user)
			r.jobs[js.id] = js
			r.order = append(r.order, js)
		}
		js.ctrs = append(js.ctrs, trace.Container{CPU: row.cpu, Mem: row.mem})
		return nil
	case 2, 3, 4, 5, 6: // EVICT / FAIL / FINISH / KILL / LOST: task ends
		// accept flushes groups from earlier instants; an end at the
		// submit instant itself closes the same-instant groups explicitly
		// so the submit event precedes its own end.
		r.accept(row.us)
		js := r.jobs[string(row.job)]
		if js == nil {
			return badf("end event for unknown job %s", row.job)
		}
		if js.building {
			r.flushSubmits()
		}
		if js.open--; js.open > 0 {
			return nil
		}
		kind := Kill
		if row.code == 4 {
			kind = Finish
		}
		r.emitEnd(row.us, kind, js)
		return nil
	}
	// code 0-8 was validated by the parsers; anything else is unreachable.
	return badf("unhandled event code %d", row.code)
}

// jsonRow is one parsed JSONL line: a pod-level event.
type jsonRow struct {
	US         int64  `json:"t_us"`
	Ev         string `json:"ev"`
	Pod        string `json:"pod"`
	User       string `json:"user"`
	Containers []struct {
		CPU float64 `json:"cpu"`
		Mem float64 `json:"mem"`
	} `json:"containers"`
}

// parseJSONLine parses (without applying) one JSONL row — the JSON half
// of the fuzz surface.
func parseJSONLine(line string) (jsonRow, EventKind, error) {
	return parseJSONRow([]byte(line))
}

// parseJSONRow parses one native pod-level JSON row.
func parseJSONRow(line []byte) (jsonRow, EventKind, error) {
	var row jsonRow
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&row); err != nil {
		return row, 0, badf("json: %v", err)
	}
	var kind EventKind
	switch strings.ToLower(row.Ev) {
	case "submit":
		kind = Submit
	case "finish":
		kind = Finish
	case "kill":
		kind = Kill
	default:
		return row, 0, badf("event %q (want submit/finish/kill)", row.Ev)
	}
	if row.Pod == "" {
		return row, 0, badf("empty pod id")
	}
	if kind == Submit && len(row.Containers) == 0 {
		return row, 0, badf("submit without containers")
	}
	for i, c := range row.Containers {
		if err := checkRequest(fmt.Sprintf("container %d cpu", i), c.CPU); err != nil {
			return row, 0, err
		}
		if err := checkRequest(fmt.Sprintf("container %d mem", i), c.Mem); err != nil {
			return row, 0, err
		}
	}
	return row, kind, nil
}

// consumeJSON applies one pod-level row.
func (r *Reader) consumeJSON(line []byte) error {
	row, kind, err := parseJSONRow(line)
	if err != nil {
		return err
	}
	if err := r.checkTime(row.US); err != nil {
		return err
	}
	switch kind {
	case Submit:
		if r.jobs[row.Pod] != nil {
			return badf("pod %s submitted while already live", row.Pod)
		}
		r.accept(row.US)
		ctrs := make([]trace.Container, len(row.Containers))
		for i, c := range row.Containers {
			ctrs[i] = trace.Container{CPU: c.CPU, Mem: c.Mem}
		}
		js := r.takeJob()
		js.id, js.user = row.Pod, r.internString(row.User)
		js.ctrs, js.open = ctrs, 1
		r.jobs[js.id] = js
		r.stats.Pods++
		r.ready = append(r.ready, Event{
			Time: time.Duration(row.US) * time.Microsecond, Kind: Submit,
			Pod: js.id, User: js.user, Containers: ctrs,
		})
	default:
		js := r.jobs[row.Pod]
		if js == nil {
			return badf("end event for unknown pod %s", row.Pod)
		}
		r.accept(row.US)
		// The submit's recorded user wins: an end row with a missing or
		// different user must still partition to the submit's world.
		r.emitEnd(row.US, kind, js)
	}
	return nil
}

// internString is intern for names the decoder already materialized.
func (r *Reader) internString(user string) string {
	if user == "" {
		return ""
	}
	if u, ok := r.users[user]; ok {
		return u
	}
	r.users[user] = user
	return user
}

// flushSubmits releases the submit groups built at the current
// timestamp, in first-seen job order, and registers their live task
// counts. The per-job state survives until the job ends, so end events
// partition to the same world as their submit.
func (r *Reader) flushSubmits() {
	for _, js := range r.order {
		js.open = len(js.ctrs)
		js.building = false
		r.stats.Pods++
		r.ready = append(r.ready, Event{
			Time: time.Duration(r.curUS) * time.Microsecond, Kind: Submit,
			Pod: js.id, User: js.user, Containers: js.ctrs,
		})
	}
	r.order = r.order[:0]
}

// emitEnd queues a pod end event and recycles the job's state. The
// containers slice escaped into the Submit event, so it never returns
// to the pool.
func (r *Reader) emitEnd(us int64, kind EventKind, js *jobState) {
	r.stats.Ends++
	r.ready = append(r.ready, Event{
		Time: time.Duration(us) * time.Microsecond, Kind: kind, Pod: js.id, User: js.user,
	})
	delete(r.jobs, js.id)
	*js = jobState{}
	r.free = append(r.free, js)
}
