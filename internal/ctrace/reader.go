package ctrace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"nestless/internal/trace"
)

// Options configures a Reader.
type Options struct {
	// Lenient downgrades validation errors (malformed rows, bad
	// requests, out-of-order timestamps, duplicate submits, ends for
	// unknown jobs) to counted skips. The default is strict: the first
	// bad row is an error naming the line.
	Lenient bool
}

// header is the canonical CSV header line, skipped when present.
const header = "time_us,event,job,task,user,cpu,mem"

// maxLine bounds one physical line (a JSONL pod with very many
// containers); beyond it the file is malformed.
const maxLine = 4 << 20

// Reader streams normalized events out of a trace file. Memory is
// bounded by the number of concurrently live pods (the open-pod table
// and the current-timestamp submit groups), never by file size.
type Reader struct {
	opts    Options
	sc      *bufio.Scanner
	json    bool
	line    int
	lastUS  int64 // last accepted row timestamp (order validation)
	started bool

	// CSV submit coalescing: jobs whose SUBMIT rows are accumulating at
	// curUS, flushed in first-seen order when time advances.
	curUS    int64
	order    []string
	building map[string][]trace.Container
	user     map[string]string
	// open maps a job to its live task count; a pod's end event fires
	// when the count hits zero.
	open map[string]int

	ready   []Event // emission queue (flushes can release several at once)
	stats   Stats
	err     error // sticky terminal error
	closers []io.Closer
}

// Open opens a trace file for streaming. Gzip compression and the
// CSV/JSONL format are sniffed from the content, not the name.
func Open(path string, opts Options) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closers = append(r.closers, f)
	return r, nil
}

// NewReader wraps an arbitrary stream. See Open for file paths.
func NewReader(src io.Reader, opts Options) (*Reader, error) {
	br := bufio.NewReader(src)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("ctrace: gzip: %w", err)
		}
		br = bufio.NewReader(gz)
	}
	r := &Reader{
		opts:     opts,
		building: map[string][]trace.Container{},
		user:     map[string]string{},
		open:     map[string]int{},
	}
	// Format sniff: the first non-space byte of a JSONL trace is '{'.
	if first, err := br.Peek(1); err == nil && (first[0] == '{' || first[0] == '[') {
		r.json = true
	}
	r.sc = bufio.NewScanner(br)
	r.sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	return r, nil
}

// Close releases the underlying file (if Open was used).
func (r *Reader) Close() error {
	var err error
	for i := len(r.closers) - 1; i >= 0; i-- {
		if cerr := r.closers[i].Close(); err == nil {
			err = cerr
		}
	}
	r.closers = nil
	return err
}

// Stats reports consumption counters (complete once Next returned
// io.EOF).
func (r *Reader) Stats() Stats { return r.stats }

// Next yields the next normalized event in time order, io.EOF at the
// end, or the first validation error in strict mode.
func (r *Reader) Next() (Event, error) {
	for {
		if len(r.ready) > 0 {
			ev := r.ready[0]
			r.ready = r.ready[1:]
			return ev, nil
		}
		if r.err != nil {
			return Event{}, r.err
		}
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				r.err = fmt.Errorf("ctrace: line %d: %w", r.line+1, err)
			} else {
				r.flushSubmits()
				r.err = io.EOF
			}
			continue
		}
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || (!r.json && line == header) {
			continue
		}
		r.stats.Rows++
		if err := r.consume(line); err != nil {
			if r.opts.Lenient {
				r.stats.Skipped++
				continue
			}
			r.err = fmt.Errorf("ctrace: line %d: %w", r.line, err)
		}
	}
}

// badf builds a row-level validation error.
func badf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}

// checkRequest validates one resource request (relative to the largest
// machine, so [0,1] and finite).
func checkRequest(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return badf("%s request is not finite", name)
	}
	if v < 0 || v > 1 {
		return badf("%s request %v outside [0,1]", name, v)
	}
	return nil
}

// checkTime validates and registers a row timestamp: non-negative and
// non-decreasing across the file.
func (r *Reader) checkTime(us int64) error {
	if us < 0 {
		return badf("negative timestamp %d", us)
	}
	if r.started && us < r.lastUS {
		return badf("timestamp %dus before previous row at %dus (trace must be time-ordered)", us, r.lastUS)
	}
	return nil
}

// accept commits a validated row timestamp, flushing submit groups from
// earlier instants first.
func (r *Reader) accept(us int64) {
	if !r.started || us > r.curUS {
		r.flushSubmits()
		r.curUS = us
	}
	r.started = true
	r.lastUS = us
}

// consume parses and applies one physical line.
func (r *Reader) consume(line string) error {
	if r.json {
		return r.consumeJSON(line)
	}
	return r.consumeCSV(line)
}

// csvRow is one parsed CSV line.
type csvRow struct {
	us       int64
	code     int
	job      string
	task     int
	user     string
	cpu, mem float64
}

// parseCSVLine parses (without applying) one CSV row. It is the CSV
// half of the fuzz surface.
func parseCSVLine(line string) (csvRow, error) {
	var row csvRow
	f := strings.Split(line, ",")
	if len(f) != 7 {
		return row, badf("want 7 fields time_us,event,job,task,user,cpu,mem; got %d", len(f))
	}
	us, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
	if err != nil {
		return row, badf("time_us: %v", err)
	}
	row.us = us
	ev := strings.ToLower(strings.TrimSpace(f[1]))
	switch ev {
	case "submit":
		row.code = 0
	case "finish":
		row.code = 4
	case "kill":
		row.code = 5
	default:
		code, err := strconv.Atoi(ev)
		if err != nil || code < 0 || code > 8 {
			return row, badf("event %q is neither a Google code 0-8 nor submit/finish/kill", f[1])
		}
		row.code = code
	}
	row.job = strings.TrimSpace(f[2])
	if row.job == "" {
		return row, badf("empty job id")
	}
	task, err := strconv.Atoi(strings.TrimSpace(f[3]))
	if err != nil || task < 0 {
		return row, badf("task index %q is not a non-negative integer", f[3])
	}
	row.task = task
	row.user = strings.TrimSpace(f[4])
	if row.cpu, err = strconv.ParseFloat(strings.TrimSpace(f[5]), 64); err != nil {
		return row, badf("cpu: %v", err)
	}
	if row.mem, err = strconv.ParseFloat(strings.TrimSpace(f[6]), 64); err != nil {
		return row, badf("mem: %v", err)
	}
	return row, nil
}

// consumeCSV applies one task-level row: submits coalesce into pod
// submit groups, task ends decrement the job's live count and emit the
// pod end when it empties.
func (r *Reader) consumeCSV(line string) error {
	row, err := parseCSVLine(line)
	if err != nil {
		return err
	}
	if err := r.checkTime(row.us); err != nil {
		return err
	}
	switch row.code {
	case 1, 7, 8: // SCHEDULE / UPDATE_PENDING / UPDATE_RUNNING: not lifecycle
		r.stats.Ignored++
		r.accept(row.us)
		return nil
	case 0: // SUBMIT
		if err := checkRequest("cpu", row.cpu); err != nil {
			return err
		}
		if err := checkRequest("mem", row.mem); err != nil {
			return err
		}
		if _, already := r.open[row.job]; already {
			return badf("job %s submitted while already live", row.job)
		}
		r.accept(row.us)
		if _, ok := r.building[row.job]; !ok {
			r.order = append(r.order, row.job)
			r.user[row.job] = row.user
		}
		r.building[row.job] = append(r.building[row.job], trace.Container{CPU: row.cpu, Mem: row.mem})
		return nil
	case 2, 3, 4, 5, 6: // EVICT / FAIL / FINISH / KILL / LOST: task ends
		// accept flushes groups from earlier instants; an end at the
		// submit instant itself closes the same-instant groups explicitly
		// so the submit event precedes its own end.
		r.accept(row.us)
		if _, building := r.building[row.job]; building {
			r.flushSubmits()
		}
		n, ok := r.open[row.job]
		if !ok {
			return badf("end event for unknown job %s", row.job)
		}
		if n--; n > 0 {
			r.open[row.job] = n
			return nil
		}
		delete(r.open, row.job)
		kind := Kill
		if row.code == 4 {
			kind = Finish
		}
		r.emitEnd(row.us, kind, row.job, r.user[row.job])
		return nil
	}
	// code 0-8 was validated above; anything else is unreachable.
	return badf("unhandled event code %d", row.code)
}

// jsonRow is one parsed JSONL line: a pod-level event.
type jsonRow struct {
	US         int64  `json:"t_us"`
	Ev         string `json:"ev"`
	Pod        string `json:"pod"`
	User       string `json:"user"`
	Containers []struct {
		CPU float64 `json:"cpu"`
		Mem float64 `json:"mem"`
	} `json:"containers"`
}

// parseJSONLine parses (without applying) one JSONL row — the JSON half
// of the fuzz surface.
func parseJSONLine(line string) (jsonRow, EventKind, error) {
	var row jsonRow
	dec := json.NewDecoder(strings.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&row); err != nil {
		return row, 0, badf("json: %v", err)
	}
	var kind EventKind
	switch strings.ToLower(row.Ev) {
	case "submit":
		kind = Submit
	case "finish":
		kind = Finish
	case "kill":
		kind = Kill
	default:
		return row, 0, badf("event %q (want submit/finish/kill)", row.Ev)
	}
	if row.Pod == "" {
		return row, 0, badf("empty pod id")
	}
	if kind == Submit && len(row.Containers) == 0 {
		return row, 0, badf("submit without containers")
	}
	for i, c := range row.Containers {
		if err := checkRequest(fmt.Sprintf("container %d cpu", i), c.CPU); err != nil {
			return row, 0, err
		}
		if err := checkRequest(fmt.Sprintf("container %d mem", i), c.Mem); err != nil {
			return row, 0, err
		}
	}
	return row, kind, nil
}

// consumeJSON applies one pod-level row.
func (r *Reader) consumeJSON(line string) error {
	row, kind, err := parseJSONLine(line)
	if err != nil {
		return err
	}
	if err := r.checkTime(row.US); err != nil {
		return err
	}
	switch kind {
	case Submit:
		if _, already := r.open[row.Pod]; already {
			return badf("pod %s submitted while already live", row.Pod)
		}
		r.accept(row.US)
		ctrs := make([]trace.Container, len(row.Containers))
		for i, c := range row.Containers {
			ctrs[i] = trace.Container{CPU: c.CPU, Mem: c.Mem}
		}
		r.open[row.Pod] = 1
		r.user[row.Pod] = row.User
		r.stats.Pods++
		r.ready = append(r.ready, Event{
			Time: time.Duration(row.US) * time.Microsecond, Kind: Submit,
			Pod: row.Pod, User: row.User, Containers: ctrs,
		})
	default:
		if _, ok := r.open[row.Pod]; !ok {
			return badf("end event for unknown pod %s", row.Pod)
		}
		r.accept(row.US)
		delete(r.open, row.Pod)
		// The submit's recorded user wins: an end row with a missing or
		// different user must still partition to the submit's world.
		r.emitEnd(row.US, kind, row.Pod, r.user[row.Pod])
	}
	return nil
}

// flushSubmits releases the submit groups built at the current
// timestamp, in first-seen job order, and registers their live task
// counts. The per-job user survives until the job ends, so end events
// partition to the same world as their submit.
func (r *Reader) flushSubmits() {
	for _, job := range r.order {
		ctrs := r.building[job]
		r.open[job] = len(ctrs)
		r.stats.Pods++
		r.ready = append(r.ready, Event{
			Time: time.Duration(r.curUS) * time.Microsecond, Kind: Submit,
			Pod: job, User: r.user[job], Containers: ctrs,
		})
		delete(r.building, job)
	}
	r.order = r.order[:0]
}

// emitEnd queues a pod end event and drops the job's retained user.
func (r *Reader) emitEnd(us int64, kind EventKind, pod, user string) {
	r.stats.Ends++
	r.ready = append(r.ready, Event{
		Time: time.Duration(us) * time.Microsecond, Kind: kind, Pod: pod, User: user,
	})
	delete(r.user, pod)
}
