package ctrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"
)

// The trace writer: serializes an event Source back into either on-disk
// format. ctracegen (cmd/ctracegen) pairs it with NewSynth to emit
// seeded sample traces for tests, benchmarks and worked examples; the
// golden-file round-trip test pins that Write∘Read is the identity.

// Format selects the on-disk encoding.
type Format int

const (
	// CSV is the Google task_events-compatible per-task form.
	CSV Format = iota
	// JSONL is the native pod-level form, one JSON object per line.
	JSONL
)

// ParseFormat resolves a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "csv":
		return CSV, nil
	case "jsonl", "json":
		return JSONL, nil
	}
	return 0, fmt.Errorf("unknown trace format %q (want csv or jsonl)", s)
}

// Write drains src into w in the given format. Events must be
// time-ordered (every Source in this package is). CSV expands each pod
// event into per-task rows — submit rows carry the container requests,
// end rows close every task — so the output is also a valid corpus for
// schema-compatible external tools.
func Write(w io.Writer, src Source, format Format) error {
	bw := bufio.NewWriter(w)
	if format == CSV {
		if _, err := fmt.Fprintln(bw, header); err != nil {
			return err
		}
	}
	// Open-pod container counts: CSV end rows must close each task.
	tasks := map[string]int{}
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := writeEvent(bw, ev, format, tasks); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeEvent emits one normalized event.
func writeEvent(bw *bufio.Writer, ev Event, format Format, tasks map[string]int) error {
	us := int64(ev.Time / time.Microsecond)
	if format == JSONL {
		return writeJSONL(bw, ev, us)
	}
	switch ev.Kind {
	case Submit:
		tasks[ev.Pod] = len(ev.Containers)
		for i, c := range ev.Containers {
			if _, err := fmt.Fprintf(bw, "%d,0,%s,%d,%s,%s,%s\n",
				us, ev.Pod, i, ev.User, fmtFloat(c.CPU), fmtFloat(c.Mem)); err != nil {
				return err
			}
		}
	default:
		code := 5 // KILL
		if ev.Kind == Finish {
			code = 4
		}
		n := tasks[ev.Pod]
		delete(tasks, ev.Pod)
		for i := 0; i < n; i++ {
			if _, err := fmt.Fprintf(bw, "%d,%d,%s,%d,%s,0,0\n",
				us, code, ev.Pod, i, ev.User); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeJSONL emits one pod-level JSON line. The fields are flat and
// ordered by hand so output is byte-stable (golden tests diff it).
func writeJSONL(bw *bufio.Writer, ev Event, us int64) error {
	if ev.Kind == Submit {
		if _, err := fmt.Fprintf(bw, `{"t_us":%d,"ev":"submit","pod":%q,"user":%q,"containers":[`,
			us, ev.Pod, ev.User); err != nil {
			return err
		}
		for i, c := range ev.Containers {
			sep := ","
			if i == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(bw, `%s{"cpu":%s,"mem":%s}`, sep, fmtFloat(c.CPU), fmtFloat(c.Mem)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(bw, "]}")
		return err
	}
	_, err := fmt.Fprintf(bw, `{"t_us":%d,"ev":%q,"pod":%q,"user":%q}`+"\n",
		us, ev.Kind.String(), ev.Pod, ev.User)
	return err
}

// fmtFloat renders a request with exact round-trip precision.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
