// Package ctrace is the streaming cluster-trace loader: an
// iterator-style reader over Google cluster-trace-schema-compatible
// CSV/JSONL files (optionally gzip-compressed) that yields normalized
// pod lifecycle events for the cluster lifecycle simulator.
//
// It is deliberately distinct from two similarly named things:
//
//   - internal/trace is the synthetic-marginals *generator*: it samples
//     populations with the documented shape of the Google traces
//     (heavy-tailed task counts and request sizes) from a seed.
//   - internal/telemetry's trace export is the Chrome trace-event
//     *output* of a simulation run (the -trace flag on the cmds).
//
// ctrace is the third leg: *input* — replaying a recorded trace file
// instead of synthesizing churn. The three never mix: a file on disk is
// ctrace's problem, a seed is trace's, a chrome://tracing JSON is
// telemetry's.
//
// The reader is streaming by contract: it holds the open-pod table (one
// small entry per live job) and the current-timestamp submit groups,
// never the file. Replaying a multi-day, multi-million-pod trace costs
// memory proportional to the number of *concurrently live* pods, not to
// the file size.
//
// Two on-disk formats are accepted, sniffed from the first byte:
//
// CSV — Google task_events-compatible, one row per task event:
//
//	time_us,event,job,task,user,cpu,mem
//	0,0,j1,0,alice,0.01,0.02
//	0,0,j1,1,alice,0.03,0.01
//	3600000000,4,j1,0,alice,0,0
//	3600000000,4,j1,1,alice,0,0
//
// time_us is microseconds since trace start; event is the Google event
// code (0 SUBMIT, 2 EVICT, 3 FAIL, 4 FINISH, 5 KILL, 6 LOST; 1/7/8 are
// ignored) or one of the names submit/finish/kill; cpu and mem are
// requests relative to the largest machine ([0,1]). Consecutive-in-time
// SUBMIT rows of one job coalesce into a single pod Submit event whose
// containers are the tasks in row order; a pod ends when its last live
// task ends, with Kind Finish for FINISH and Kill for everything else.
// Lines starting with '#', blank lines and the canonical header line
// are skipped.
//
// JSONL — one JSON object per line, pod-level (no task pairing):
//
//	{"t_us":0,"ev":"submit","pod":"j1","user":"alice","containers":[{"cpu":0.01,"mem":0.02}]}
//	{"t_us":3600000000,"ev":"finish","pod":"j1","user":"alice"}
//
// Validation is strict by default — malformed rows, NaN/negative/>1
// requests, decreasing timestamps, duplicate submits and ends for
// unknown jobs are errors naming the line — because a trace driving a
// cost experiment must not be silently reinterpreted. Options.Lenient
// downgrades all of those to counted skips for tolerant ingestion of
// scruffy real-world files.
package ctrace

import (
	"fmt"
	"io"
	"time"

	"nestless/internal/trace"
)

// EventKind classifies a normalized pod lifecycle event.
type EventKind uint8

const (
	// Submit is a pod entering the cluster with its container requests.
	Submit EventKind = iota
	// Finish is a pod ending normally (Google FINISH).
	Finish
	// Kill is a pod ending abnormally (Google EVICT/FAIL/KILL/LOST).
	Kill
)

// String names the kind the way the JSONL format spells it.
func (k EventKind) String() string {
	switch k {
	case Submit:
		return "submit"
	case Finish:
		return "finish"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one normalized pod lifecycle event. Times are durations
// since trace start (the simulator's virtual epoch), quantized to the
// trace formats' microsecond resolution.
type Event struct {
	Time time.Duration
	Kind EventKind
	Pod  string // job/pod identifier, unique per trace
	User string // owning tenant; the shard partition key ("" falls back to Pod)
	// Containers carries the per-task requests relative to the largest
	// machine. Set on Submit events only.
	Containers []trace.Container
}

// Key is the partition key: the user when present (all of a tenant's
// pods land in one shard world), otherwise the pod ID.
func (e Event) Key() string {
	if e.User != "" {
		return e.User
	}
	return e.Pod
}

// FNV-1a, the repository's standard content hash (cloudsim.VMSignature
// uses the same constants).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Partition maps an event to one of n shard worlds by FNV-1a hash of
// its key — the deterministic hash-partition of the trace stream. The
// mapping depends only on the event and n, never on shard count or
// scheduling.
func Partition(e Event, n int) int {
	return PartitionKey(e.Key(), n)
}

// PartitionKey maps a raw partition key (a user, or a pod ID for
// userless pods) to one of n shard worlds — the same FNV-1a mapping
// Partition applies to an event's key. Exported so migration policies
// can recover a transferred pod's home world from the key it was
// partitioned by.
func PartitionKey(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return int(h % uint64(n))
}

// Source is the one interface the cluster simulator consumes a workload
// stream through — a file-backed Reader, a synthetic population adapter
// (NewSynth), or anything else that yields time-ordered events. Next
// returns io.EOF after the last event.
type Source interface {
	Next() (Event, error)
}

// Stats counts what a Reader consumed.
type Stats struct {
	Rows    int // physical rows/lines parsed (excluding blanks/comments/header)
	Ignored int // rows with event codes outside the lifecycle set (1/7/8)
	Skipped int // rows dropped in lenient mode that strict mode would reject
	Pods    int // Submit events emitted
	Ends    int // Finish/Kill events emitted
}

// Slice is a Source over an in-memory event slice — the adapter for
// synthetic populations and for tests/benchmarks that want to replay
// without file I/O.
type Slice struct {
	events []Event
	pos    int
}

// NewSlice wraps evs (already time-ordered) as a Source.
func NewSlice(evs []Event) *Slice {
	return &Slice{events: evs}
}

// Next yields the next event or io.EOF.
func (s *Slice) Next() (Event, error) {
	if s.pos >= len(s.events) {
		return Event{}, io.EOF
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, nil
}

// Len reports the total number of events in the slice.
func (s *Slice) Len() int { return len(s.events) }

// Rewind resets the cursor so the slice can be replayed again.
func (s *Slice) Rewind() { s.pos = 0 }
