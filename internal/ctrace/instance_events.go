package ctrace

// The 2019 v3 cluster trace schema adapter. Google's second trace
// release (May 2019, eight clusters) ships as BigQuery tables; the
// instance_events table is the task_events analogue — one row per
// instance lifecycle transition, exported to JSONL with
//
//	bq extract --destination_format NEWLINE_DELIMITED_JSON \
//	    clusterdata_2019_a.instance_events gs://.../instance_events-*.json
//
// A Reader recognizes such an export automatically: the file sniffs as
// JSON lines, and the first data line containing a "collection_id"
// field switches the reader into instance_events mode for the whole
// file (the native JSONL format has no such field, and its strict
// parser would reject one).
//
// Mapping onto the normalized event model:
//
//   - collection_id is the job key, instance_index the task: same-time
//     SUBMIT rows of one collection coalesce into one pod whose
//     containers are the instances in row order, exactly like the 2011
//     CSV's task rows (both feed the shared lifecycle state machine).
//   - type follows the 2019 code set: 0 SUBMIT starts an instance;
//     6 FINISH ends it normally; 4 EVICT, 5 FAIL, 7 KILL and 8 LOST end
//     it abnormally; 1 QUEUE, 2 ENABLE, 3 SCHEDULE, 9 UPDATE_PENDING
//     and 10 UPDATE_RUNNING are scheduling churn, counted as ignored.
//   - resource_request.cpus/.memory are the normalized-to-largest-
//     machine requests, the same [0,1] unit as the 2011 trace.
//   - user partitions the stream, as everywhere else.
//
// BigQuery's JSON export renders INT64 columns as strings ("type":"0")
// while floats stay numbers; both spellings are accepted for every
// numeric field. Unknown columns (priority, machine_id, alloc_* — the
// export carries dozens) are ignored rather than rejected: the schema
// owns the column set, not this reader.

import (
	"bytes"
	"encoding/json"
	"strconv"
)

// instanceSniff marks a 2019 instance_events export; looked for in the
// first JSON data line.
var instanceSniff = []byte(`"collection_id"`)

// i64flex is an INT64 that may arrive as a JSON number or as the
// string BigQuery's JSON export wraps INT64 columns in.
type i64flex int64

func (v *i64flex) UnmarshalJSON(b []byte) error {
	b = unquote(b)
	if len(b) == 0 {
		*v = 0
		return nil
	}
	n, err := strconv.ParseInt(bstr(b), 10, 64)
	if err != nil {
		return err
	}
	*v = i64flex(n)
	return nil
}

// f64flex is a FLOAT64 column with the same string-or-number latitude.
type f64flex float64

func (v *f64flex) UnmarshalJSON(b []byte) error {
	b = unquote(b)
	if len(b) == 0 {
		*v = 0
		return nil
	}
	f, err := strconv.ParseFloat(bstr(b), 64)
	if err != nil {
		return err
	}
	*v = f64flex(f)
	return nil
}

// unquote strips one layer of quotes and maps JSON null to empty.
func unquote(b []byte) []byte {
	b = bytes.TrimSpace(b)
	if len(b) >= 2 && b[0] == '"' && b[len(b)-1] == '"' {
		b = b[1 : len(b)-1]
	}
	if string(b) == "null" {
		return nil
	}
	return b
}

// instanceRow is the consumed subset of the instance_events columns.
type instanceRow struct {
	Time     i64flex `json:"time"`
	Type     i64flex `json:"type"`
	Coll     i64flex `json:"collection_id"`
	Instance i64flex `json:"instance_index"`
	User     string  `json:"user"`
	Request  struct {
		CPUs   f64flex `json:"cpus"`
		Memory f64flex `json:"memory"`
	} `json:"resource_request"`
}

// consumeInstance translates one instance_events row into the shared
// task-level state machine (apply) behind the same rawRow the CSV
// parser produces.
func (r *Reader) consumeInstance(line []byte) error {
	var row instanceRow
	if err := json.Unmarshal(line, &row); err != nil {
		return badf("instance_events: %v", err)
	}
	if row.Coll <= 0 {
		return badf("instance_events: missing collection_id")
	}
	if row.Instance < 0 {
		return badf("instance_events: negative instance_index %d", int64(row.Instance))
	}
	raw := rawRow{
		us:   int64(row.Time),
		task: int(row.Instance),
		cpu:  float64(row.Request.CPUs),
		mem:  float64(row.Request.Memory),
	}
	switch int64(row.Type) {
	case 0: // SUBMIT
		raw.code = 0
	case 6: // FINISH
		raw.code = 4
	case 4, 5, 7, 8: // EVICT / FAIL / KILL / LOST
		raw.code = 5
	case 1, 2, 3, 9, 10: // QUEUE / ENABLE / SCHEDULE / UPDATE_*: churn
		raw.code = 1
	default:
		return badf("instance_events: type %d outside the 2019 v3 code set 0-10", int64(row.Type))
	}
	// The collection id formats into a reused scratch buffer; apply
	// copies it only when a new job starts.
	r.scratch = strconv.AppendInt(r.scratch[:0], int64(row.Coll), 10)
	raw.job = r.scratch
	raw.user = []byte(row.User)
	return r.apply(raw)
}
