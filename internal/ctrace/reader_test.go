package ctrace

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"nestless/internal/trace"
)

// drain pulls every event out of a source.
func drain(t *testing.T, src Source) []Event {
	t.Helper()
	var out []Event
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, ev)
	}
}

// mustReader wraps a literal trace body.
func mustReader(t *testing.T, src io.Reader, opts Options) *Reader {
	t.Helper()
	r, err := NewReader(src, opts)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r
}

// read parses a literal trace body.
func read(t *testing.T, body string, opts Options) ([]Event, Stats) {
	t.Helper()
	r := mustReader(t, strings.NewReader(body), opts)
	evs := drain(t, r)
	return evs, r.Stats()
}

func TestCSVSubmitCoalescing(t *testing.T) {
	// Two tasks of one job at one instant are one two-container pod;
	// the third task at a later instant would be a schema violation in
	// a real trace, so keep it a separate job here.
	body := `time_us,event,job,task,user,cpu,mem
1000,0,j1,0,alice,0.25,0.5
1000,0,j1,1,alice,0.125,0.25
2000,0,j2,0,bob,0.0625,0.0625
`
	evs, stats := read(t, body, Options{})
	want := []Event{
		{Time: 1000 * time.Microsecond, Kind: Submit, Pod: "j1", User: "alice",
			Containers: []trace.Container{{CPU: 0.25, Mem: 0.5}, {CPU: 0.125, Mem: 0.25}}},
		{Time: 2000 * time.Microsecond, Kind: Submit, Pod: "j2", User: "bob",
			Containers: []trace.Container{{CPU: 0.0625, Mem: 0.0625}}},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events:\n got %+v\nwant %+v", evs, want)
	}
	if stats.Rows != 3 || stats.Pods != 2 || stats.Ends != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestCSVEndPairing(t *testing.T) {
	// The pod ends when its LAST task ends; the end kind follows the
	// last task's code (4 = finish, else kill).
	body := `time_us,event,job,task,user,cpu,mem
1000,0,j1,0,alice,0.25,0.5
1000,0,j1,1,alice,0.125,0.25
5000,4,j1,0,alice,0,0
9000,4,j1,1,alice,0,0
9000,0,j2,0,bob,0.0625,0.0625
9000,5,j2,0,bob,0,0
`
	evs, _ := read(t, body, Options{})
	want := []Event{
		{Time: 1000 * time.Microsecond, Kind: Submit, Pod: "j1", User: "alice",
			Containers: []trace.Container{{CPU: 0.25, Mem: 0.5}, {CPU: 0.125, Mem: 0.25}}},
		{Time: 9000 * time.Microsecond, Kind: Finish, Pod: "j1", User: "alice"},
		{Time: 9000 * time.Microsecond, Kind: Submit, Pod: "j2", User: "bob",
			Containers: []trace.Container{{CPU: 0.0625, Mem: 0.0625}}},
		{Time: 9000 * time.Microsecond, Kind: Kill, Pod: "j2", User: "bob"},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events:\n got %+v\nwant %+v", evs, want)
	}
}

func TestCSVEventNames(t *testing.T) {
	// Symbolic submit/finish/kill names parse the same as numeric
	// codes; SCHEDULE (1) and UPDATE_RUNNING (8) rows are ignored.
	body := `time_us,event,job,task,user,cpu,mem
1000,SUBMIT,j1,0,alice,0.25,0.5
2000,1,j1,0,alice,0,0
3000,8,j1,0,alice,0.5,0.5
9000,KILL,j1,0,alice,0,0
`
	evs, stats := read(t, body, Options{})
	want := []Event{
		{Time: 1000 * time.Microsecond, Kind: Submit, Pod: "j1", User: "alice",
			Containers: []trace.Container{{CPU: 0.25, Mem: 0.5}}},
		{Time: 9000 * time.Microsecond, Kind: Kill, Pod: "j1", User: "alice"},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events:\n got %+v\nwant %+v", evs, want)
	}
	if stats.Ignored != 2 {
		t.Fatalf("Ignored = %d, want 2", stats.Ignored)
	}
}

func TestEndUsesSubmitUser(t *testing.T) {
	// The submit's recorded user wins even when the end row names
	// another (or no) user — end events must hash to the submit's world.
	body := `time_us,event,job,task,user,cpu,mem
1000,0,j1,0,alice,0.25,0.5
9000,4,j1,0,,0,0
`
	evs, _ := read(t, body, Options{})
	if len(evs) != 2 || evs[1].User != "alice" {
		t.Fatalf("end user = %+v, want submit user alice", evs)
	}
}

func TestStrictRejections(t *testing.T) {
	cases := []struct{ name, body string }{
		{"fields", "time_us,event,job,task,user,cpu,mem\n1000,0,j1,0,alice,0.25\n"},
		{"badtime", "time_us,event,job,task,user,cpu,mem\nxx,0,j1,0,alice,0.25,0.5\n"},
		{"negative_time", "time_us,event,job,task,user,cpu,mem\n-5,0,j1,0,alice,0.25,0.5\n"},
		{"out_of_order", "time_us,event,job,task,user,cpu,mem\n2000,0,j1,0,alice,0.25,0.5\n1000,0,j2,0,bob,0.25,0.5\n"},
		{"nan_request", "time_us,event,job,task,user,cpu,mem\n1000,0,j1,0,alice,NaN,0.5\n"},
		{"negative_request", "time_us,event,job,task,user,cpu,mem\n1000,0,j1,0,alice,-0.25,0.5\n"},
		{"over_unit", "time_us,event,job,task,user,cpu,mem\n1000,0,j1,0,alice,1.5,0.5\n"},
		{"empty_job", "time_us,event,job,task,user,cpu,mem\n1000,0,,0,alice,0.25,0.5\n"},
		{"bad_event", "time_us,event,job,task,user,cpu,mem\n1000,99,j1,0,alice,0.25,0.5\n"},
		{"unknown_end", "time_us,event,job,task,user,cpu,mem\n1000,4,j1,0,alice,0,0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := mustReader(t, strings.NewReader(tc.body), Options{})
			var err error
			for err == nil {
				_, err = r.Next()
			}
			if err == io.EOF {
				t.Fatalf("strict reader accepted %s", tc.name)
			}
		})
	}
}

func TestLenientSkips(t *testing.T) {
	// Lenient mode drops malformed rows and keeps going.
	body := `time_us,event,job,task,user,cpu,mem
1000,0,j1,0,alice,0.25,0.5
garbage line
2000,0,j2,0,bob,NaN,0.5
3000,0,j3,0,carol,0.0625,0.0625
`
	evs, stats := read(t, body, Options{Lenient: true})
	if len(evs) != 2 || evs[0].Pod != "j1" || evs[1].Pod != "j3" {
		t.Fatalf("events: %+v", evs)
	}
	if stats.Skipped != 2 {
		t.Fatalf("Skipped = %d, want 2", stats.Skipped)
	}
}

func TestJSONL(t *testing.T) {
	body := `{"t_us":1000,"ev":"submit","pod":"p1","user":"alice","containers":[{"cpu":0.25,"mem":0.5}]}
{"t_us":9000,"ev":"finish","pod":"p1"}
`
	evs, _ := read(t, body, Options{})
	want := []Event{
		{Time: 1000 * time.Microsecond, Kind: Submit, Pod: "p1", User: "alice",
			Containers: []trace.Container{{CPU: 0.25, Mem: 0.5}}},
		{Time: 9000 * time.Microsecond, Kind: Finish, Pod: "p1", User: "alice"},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events:\n got %+v\nwant %+v", evs, want)
	}
}

func TestJSONLStrictUnknownField(t *testing.T) {
	body := `{"t_us":1000,"ev":"submit","pod":"p1","user":"a","containers":[{"cpu":0.25,"mem":0.5}],"bogus":1}` + "\n"
	r := mustReader(t, strings.NewReader(body), Options{})
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("strict reader accepted unknown field: %v", err)
	}
}

func TestGzipSniff(t *testing.T) {
	plain := "time_us,event,job,task,user,cpu,mem\n1000,0,j1,0,alice,0.25,0.5\n"
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write([]byte(plain)); err != nil {
		t.Fatal(err)
	}
	gz.Close()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv.gz")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	evs := drain(t, r)
	if len(evs) != 1 || evs[0].Pod != "j1" {
		t.Fatalf("events: %+v", evs)
	}
}

// TestRoundTrip pins Write∘Read as the identity on the synthetic
// stream, in both formats — the contract ctracegen and every replay
// test lean on.
func TestRoundTrip(t *testing.T) {
	gcfg := trace.DefaultConfig(11)
	gcfg.Users = 40
	gcfg.MeanArrivalGap = 2 * time.Minute
	gcfg.MeanLifetime = 45 * time.Minute
	users := trace.Generate(gcfg)
	want := drainAll(t, NewSynth(users))
	for _, f := range []Format{CSV, JSONL} {
		var buf bytes.Buffer
		if err := Write(&buf, NewSynth(users), f); err != nil {
			t.Fatal(err)
		}
		r := mustReader(t, bytes.NewReader(buf.Bytes()), Options{})
		got := drain(t, r)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("format %v: round-trip diverged (%d vs %d events)", f, len(got), len(want))
		}
	}
}

func drainAll(t *testing.T, s *Slice) []Event {
	t.Helper()
	return drain(t, s)
}

func TestPartitionStable(t *testing.T) {
	// Same key → same world; the user (not the pod) keys the partition
	// when present.
	a := Event{Pod: "p1", User: "alice"}
	b := Event{Pod: "p2", User: "alice"}
	if Partition(a, 8) != Partition(b, 8) {
		t.Fatal("same user landed in different worlds")
	}
	c := Event{Pod: "p1"}
	if got := Partition(c, 1); got != 0 {
		t.Fatalf("Partition(n=1) = %d", got)
	}
}
