package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nestless/internal/sim"
)

// Proto is an IP protocol number.
type Proto uint8

// Protocols used by the simulator.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// String names the protocol.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// IP header sizes (no options).
const (
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20
)

// SegKind distinguishes stream-protocol segments.
type SegKind uint8

// Stream segment kinds.
const (
	SegData SegKind = iota
	SegAck
	SegConnect
	SegAccept
)

// Seg carries the stream-transport metadata of a ProtoTCP packet.
type Seg struct {
	Kind   SegKind
	Seq    uint64 // first payload byte's stream offset (SegData)
	AckSeq uint64 // cumulative acknowledged offset (SegAck)
	ConnID uint64 // demultiplexes connections sharing a port pair
}

// Packet is one IPv4 packet with its L4 header and simulated payload.
// Payload content is represented by PayloadLen (bytes that cost wire and
// CPU time) plus App, an arbitrary application-level message carried out
// of band — the simulator does not serialize application data.
type Packet struct {
	Src, Dst         IPv4
	Proto            Proto
	SrcPort, DstPort uint16
	TTL              uint8
	PayloadLen       int
	Seg              Seg // meaningful when Proto == ProtoTCP
	App              interface{}

	// SentAt is the instant the packet left the sending socket; receivers
	// use it for one-way delay measurements.
	SentAt sim.Time

	// Flow is the telemetry flow-context id threading this packet's path
	// through the trace (0 = untraced). It survives forwarding and frame
	// cloning but is not part of the wire encoding.
	Flow uint64
}

// TotalLen returns the L3 length: IP header + L4 header + payload.
func (p *Packet) TotalLen() int {
	h := IPv4HeaderLen
	switch p.Proto {
	case ProtoUDP:
		h += UDPHeaderLen
	case ProtoTCP:
		h += TCPHeaderLen
	}
	return h + p.PayloadLen
}

// FlowTuple identifies the packet's connection 5-tuple.
type FlowTuple struct {
	Src, Dst         IPv4
	SrcPort, DstPort uint16
	Proto            Proto
}

// Tuple returns the packet's 5-tuple.
func (p *Packet) Tuple() FlowTuple {
	return FlowTuple{Src: p.Src, Dst: p.Dst, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// Reverse returns the tuple with endpoints swapped — the tuple a reply
// packet carries.
func (t FlowTuple) Reverse() FlowTuple {
	return FlowTuple{Src: t.Dst, Dst: t.Src, SrcPort: t.DstPort, DstPort: t.SrcPort, Proto: t.Proto}
}

// String formats the tuple for diagnostics.
func (t FlowTuple) String() string {
	return fmt.Sprintf("%s %s:%d>%s:%d", t.Proto, t.Src, t.SrcPort, t.Dst, t.DstPort)
}

// String formats the packet for diagnostics.
func (p *Packet) String() string {
	return fmt.Sprintf("%v len=%d ttl=%d", p.Tuple(), p.PayloadLen, p.TTL)
}

// MarshalBinary encodes the packet headers (payload is out of band).
func (p *Packet) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 48)
	buf = append(buf, p.Src[:]...)
	buf = append(buf, p.Dst[:]...)
	buf = append(buf, byte(p.Proto), p.TTL)
	buf = binary.BigEndian.AppendUint16(buf, p.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, p.DstPort)
	if p.PayloadLen < 0 {
		return nil, errors.New("netsim: negative payload length")
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.PayloadLen))
	buf = append(buf, byte(p.Seg.Kind))
	buf = binary.BigEndian.AppendUint64(buf, p.Seg.Seq)
	buf = binary.BigEndian.AppendUint64(buf, p.Seg.AckSeq)
	buf = binary.BigEndian.AppendUint64(buf, p.Seg.ConnID)
	return buf, nil
}

// UnmarshalBinary decodes headers encoded with MarshalBinary.
func (p *Packet) UnmarshalBinary(data []byte) error {
	const need = 4 + 4 + 2 + 2 + 2 + 4 + 1 + 24
	if len(data) < need {
		return errors.New("netsim: packet too short")
	}
	copy(p.Src[:], data[0:4])
	copy(p.Dst[:], data[4:8])
	p.Proto = Proto(data[8])
	p.TTL = data[9]
	p.SrcPort = binary.BigEndian.Uint16(data[10:12])
	p.DstPort = binary.BigEndian.Uint16(data[12:14])
	p.PayloadLen = int(binary.BigEndian.Uint32(data[14:18]))
	p.Seg.Kind = SegKind(data[18])
	p.Seg.Seq = binary.BigEndian.Uint64(data[19:27])
	p.Seg.AckSeq = binary.BigEndian.Uint64(data[27:35])
	p.Seg.ConnID = binary.BigEndian.Uint64(data[35:43])
	return nil
}
