package netsim

import (
	"fmt"

	"nestless/internal/cpuacct"
)

// Bridge is a learning Ethernet switch living in a namespace (the Linux
// software bridge: docker0 inside VMs, virbr0 on the host). Ports are
// interfaces enslaved to the bridge: their received frames are forwarded
// by the bridge instead of entering the local IP stack. The bridge also
// has its own interface (its name), which gives the owning namespace an
// address on the segment — the NAT gateway address.
type Bridge struct {
	ns   *NetNS
	name string
	fdb  map[MAC]*Iface // learned station → egress port
	port []*Iface
	self *Iface

	// Forwarded and Flooded count switching decisions (diagnostics).
	Forwarded, Flooded uint64
}

// NewBridge creates a bridge and its own interface in ns. The bridge
// interface starts up with no address; assign one with SetAddr.
func NewBridge(ns *NetNS, name string) *Bridge {
	b := &Bridge{ns: ns, name: name, fdb: make(map[MAC]*Iface)}
	self := ns.AddIface(name, ns.Net.NewMAC(), ns.Costs.EthMTU)
	self.Up = true
	self.SetLink(bridgeSelfLink{b})
	b.self = self
	return b
}

// Name returns the bridge name.
func (b *Bridge) Name() string { return b.name }

// Iface returns the bridge's own interface (for addressing/routing).
func (b *Bridge) Iface() *Iface { return b.self }

// NS returns the owning namespace.
func (b *Bridge) NS() *NetNS { return b.ns }

// AddPort enslaves an interface to the bridge. The interface must live
// in the bridge's namespace.
func (b *Bridge) AddPort(i *Iface) {
	if i.NS != b.ns {
		panic(fmt.Sprintf("netsim: bridge %s and port %s in different namespaces", b.name, i))
	}
	i.rxHook = b.input
	i.Up = true
	b.port = append(b.port, i)
}

// RemovePort releases an interface from the bridge.
func (b *Bridge) RemovePort(i *Iface) {
	for k, p := range b.port {
		if p == i {
			b.port = append(b.port[:k], b.port[k+1:]...)
			break
		}
	}
	i.rxHook = nil
	for mac, p := range b.fdb {
		if p == i {
			delete(b.fdb, mac)
		}
	}
}

// Ports returns the current port list.
func (b *Bridge) Ports() []*Iface { return append([]*Iface(nil), b.port...) }

// input is the rxHook of every port: learn, then switch.
func (b *Bridge) input(in *Iface, f *Frame) {
	// Learn the source station.
	if !f.Src.IsZero() && !f.Src.IsBroadcast() {
		b.fdb[f.Src] = in
	}
	cost := []Charge{{cpuacct.Sys, b.ns.Costs.Bridge.For(f.PayloadLen())}}

	switch {
	case f.Dst == b.self.MAC:
		// For the bridge itself: up into the local stack.
		b.Forwarded++
		b.ns.CPU.RunCosts(cost, func() { b.ns.input(b.self, f) })
	case f.Dst.IsBroadcast():
		b.Flooded++
		b.ns.CPU.RunCosts(cost, func() {
			for _, p := range b.port {
				if p != in {
					p.Transmit(f.Clone())
				}
			}
			b.ns.input(b.self, f.Clone())
		})
	default:
		if out, ok := b.fdb[f.Dst]; ok {
			if out == nil {
				// Learned from the bridge's own interface: deliver up.
				b.Forwarded++
				b.ns.CPU.RunCosts(cost, func() { b.ns.input(b.self, f) })
				return
			}
			if out == in {
				return // hairpin off
			}
			b.Forwarded++
			b.ns.CPU.RunCosts(cost, func() { out.Transmit(f) })
			return
		}
		// Unknown unicast: flood.
		b.Flooded++
		b.ns.CPU.RunCosts(cost, func() {
			for _, p := range b.port {
				if p != in {
					p.Transmit(f.Clone())
				}
			}
		})
	}
}

// bridgeSelfLink carries frames the namespace sends via the bridge's own
// interface onto the segment.
type bridgeSelfLink struct{ b *Bridge }

func (l bridgeSelfLink) Send(src *Iface, f *Frame) {
	b := l.b
	if !f.Src.IsZero() && !f.Src.IsBroadcast() {
		b.fdb[f.Src] = nil // local station: nil port means "the bridge itself"
	}
	cost := []Charge{{cpuacct.Sys, b.ns.Costs.Bridge.For(f.PayloadLen())}}
	if f.Dst.IsBroadcast() {
		b.Flooded++
		b.ns.CPU.RunCosts(cost, func() {
			for _, p := range b.port {
				p.Transmit(f.Clone())
			}
		})
		return
	}
	if out, ok := b.fdb[f.Dst]; ok && out != nil {
		b.Forwarded++
		b.ns.CPU.RunCosts(cost, func() { out.Transmit(f) })
		return
	}
	b.Flooded++
	b.ns.CPU.RunCosts(cost, func() {
		for _, p := range b.port {
			p.Transmit(f.Clone())
		}
	})
}
