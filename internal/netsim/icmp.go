package netsim

import (
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/sim"
)

// ProtoICMP is the ICMP protocol number.
const ProtoICMP Proto = 1

// icmpEcho is the application payload of an echo request/reply.
type icmpEcho struct {
	id      uint64
	seq     int
	request bool
}

// PingResult reports one echo exchange.
type PingResult struct {
	Seq int
	RTT time.Duration
	OK  bool // false = timed out
}

// pingWaiter tracks an outstanding echo request.
type pingWaiter struct {
	sentAt sim.Time
	seq    int
	done   func(PingResult)
	fired  bool
}

// Ping sends one ICMP echo request of the given payload size to dst and
// reports the round trip (or a timeout) through done. Kernels answer
// echo requests without any socket, so this works against any namespace
// address — the classic connectivity probe.
func (ns *NetNS) Ping(dst IPv4, payload int, timeout time.Duration, done func(PingResult)) {
	if timeout <= 0 {
		timeout = 100 * time.Millisecond
	}
	if ns.pings == nil {
		ns.pings = make(map[uint64]*pingWaiter)
	}
	id := ns.Net.nextConnID()
	w := &pingWaiter{sentAt: ns.Net.Eng.Now(), seq: len(ns.pings) + 1, done: done}
	ns.pings[id] = w

	p := &Packet{
		Dst:        dst,
		Proto:      ProtoICMP,
		TTL:        64,
		PayloadLen: payload + 8, // ICMP header
		App:        icmpEcho{id: id, seq: w.seq, request: true},
		SentAt:     w.sentAt,
	}
	ns.Output(p, []Charge{{cpuacct.Sys, ns.Costs.SyscallTX.For(payload)}})

	ns.Net.Eng.After(timeout, func() {
		if w.fired {
			return
		}
		w.fired = true
		delete(ns.pings, id)
		if done != nil {
			done(PingResult{Seq: w.seq, OK: false})
		}
	})
}

// icmpInput handles a locally delivered ICMP packet.
func (ns *NetNS) icmpInput(p *Packet) {
	echo, ok := p.App.(icmpEcho)
	if !ok {
		return
	}
	if echo.request {
		// Echo reply: swap endpoints; kernel work only.
		reply := &Packet{
			Dst:        p.Src,
			Src:        p.Dst,
			Proto:      ProtoICMP,
			TTL:        64,
			PayloadLen: p.PayloadLen,
			App:        icmpEcho{id: echo.id, seq: echo.seq},
			SentAt:     p.SentAt,
		}
		ns.Output(reply, nil)
		return
	}
	w, okW := ns.pings[echo.id]
	if !okW || w.fired {
		return
	}
	w.fired = true
	delete(ns.pings, echo.id)
	if w.done != nil {
		w.done(PingResult{Seq: w.seq, RTT: ns.Net.Eng.Now() - w.sentAt, OK: true})
	}
}
