package netsim

import (
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x52, 0x54, 0x00, 0x01, 0x02, 0x03}
	if m.String() != "52:54:00:01:02:03" {
		t.Fatalf("String = %q", m.String())
	}
	if !BroadcastMAC.IsBroadcast() || m.IsBroadcast() {
		t.Fatal("broadcast detection wrong")
	}
	if !(MAC{}).IsZero() || m.IsZero() {
		t.Fatal("zero detection wrong")
	}
}

func TestMACAllocatorUnique(t *testing.T) {
	var a MACAllocator
	seen := map[MAC]bool{}
	for i := 0; i < 1000; i++ {
		m := a.Next()
		if seen[m] {
			t.Fatalf("duplicate MAC %s", m)
		}
		seen[m] = true
	}
}

func TestIPv4ParseAndString(t *testing.T) {
	ip, err := ParseIPv4("192.168.122.1")
	if err != nil {
		t.Fatal(err)
	}
	if ip != IP(192, 168, 122, 1) {
		t.Fatalf("parsed %v", ip)
	}
	if ip.String() != "192.168.122.1" {
		t.Fatalf("String = %q", ip.String())
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "300.1.1.1", "a.b.c.d"} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) accepted", bad)
		}
	}
}

func TestIPv4Predicates(t *testing.T) {
	if !IP(127, 0, 0, 1).IsLoopback() || IP(10, 0, 0, 1).IsLoopback() {
		t.Fatal("IsLoopback wrong")
	}
	if !(IPv4{}).IsZero() || IP(0, 0, 0, 1).IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustPrefix(IP(172, 17, 0, 0), 16)
	if !p.Contains(IP(172, 17, 200, 9)) {
		t.Fatal("must contain member")
	}
	if p.Contains(IP(172, 18, 0, 1)) {
		t.Fatal("must exclude outsider")
	}
	if p.String() != "172.17.0.0/16" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPrefixNormalisesBase(t *testing.T) {
	p := MustPrefix(IP(10, 1, 2, 3), 24)
	if p.Addr != IP(10, 1, 2, 0) {
		t.Fatalf("base = %v, want 10.1.2.0", p.Addr)
	}
	if p.Host(5) != IP(10, 1, 2, 5) {
		t.Fatalf("Host(5) = %v", p.Host(5))
	}
}

func TestPrefixZeroMatchesAll(t *testing.T) {
	def := MustPrefix(IPv4{}, 0)
	for _, ip := range []IPv4{IP(1, 2, 3, 4), IP(255, 255, 255, 255), {}} {
		if !def.Contains(ip) {
			t.Fatalf("/0 must contain %v", ip)
		}
	}
}

func TestNewPrefixRejectsBadBits(t *testing.T) {
	if _, err := NewPrefix(IP(1, 1, 1, 1), 33); err == nil {
		t.Fatal("bits=33 accepted")
	}
	if _, err := NewPrefix(IP(1, 1, 1, 1), -1); err == nil {
		t.Fatal("bits=-1 accepted")
	}
}

// Property: an address always belongs to any prefix derived from it.
func TestPrefixSelfMembershipProperty(t *testing.T) {
	prop := func(a, b, c, d byte, bits uint8) bool {
		ip := IP(a, b, c, d)
		p, err := NewPrefix(ip, int(bits%33))
		if err != nil {
			return false
		}
		return p.Contains(ip)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: uint32 round-trips through ipFromUint32.
func TestIPv4Uint32RoundTripProperty(t *testing.T) {
	prop := func(a, b, c, d byte) bool {
		ip := IP(a, b, c, d)
		return ipFromUint32(ip.uint32()) == ip
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
