package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nestless/internal/sim"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes used by the simulator.
const (
	EtherIPv4 EtherType = 0x0800
	EtherARP  EtherType = 0x0806
)

// Ethernet framing constants (bytes on the wire).
const (
	EthHeaderLen  = 14 // dst + src + ethertype
	EthOverhead   = 24 // header + FCS + preamble + IFG equivalent
	EthMinPayload = 46
)

// Frame is one Ethernet frame. Exactly one of Packet and ARP is set,
// matching Type.
type Frame struct {
	Dst, Src MAC
	Type     EtherType
	Packet   *Packet
	ARP      *ARPPayload

	// EnqueuedAt is stamped by measurement points (sockets) to compute
	// one-way delays; devices leave it untouched.
	EnqueuedAt sim.Time

	// Corrupted marks a frame damaged by the fault injector; the
	// receiving namespace's FCS check discards it at input.
	Corrupted bool
}

// PayloadLen returns the L3 payload length in bytes.
func (f *Frame) PayloadLen() int {
	switch {
	case f.Packet != nil:
		return f.Packet.TotalLen()
	case f.ARP != nil:
		return arpWireLen
	default:
		return 0
	}
}

// WireLen returns the number of bytes this frame occupies on a link,
// including Ethernet overhead and minimum-frame padding.
func (f *Frame) WireLen() int {
	p := f.PayloadLen()
	if p < EthMinPayload {
		p = EthMinPayload
	}
	return p + EthOverhead
}

// Clone returns a deep copy of the frame's headers. Payload bytes are
// shared (they are immutable by convention); header rewrites by NAT never
// alias between clones. Devices that fan a frame out to several receivers
// (bridge flooding, the Hostlo reflect) must clone.
func (f *Frame) Clone() *Frame {
	nf := *f
	if f.Packet != nil {
		p := *f.Packet
		nf.Packet = &p
	}
	if f.ARP != nil {
		a := *f.ARP
		nf.ARP = &a
	}
	return &nf
}

// String formats the frame for diagnostics.
func (f *Frame) String() string {
	switch {
	case f.Packet != nil:
		return fmt.Sprintf("eth %s>%s %v", f.Src, f.Dst, f.Packet)
	case f.ARP != nil:
		return fmt.Sprintf("eth %s>%s %v", f.Src, f.Dst, f.ARP)
	default:
		return fmt.Sprintf("eth %s>%s type=%#04x", f.Src, f.Dst, uint16(f.Type))
	}
}

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

const arpWireLen = 28

// ARPPayload is an IPv4-over-Ethernet ARP message.
type ARPPayload struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  IPv4
	TargetMAC MAC
	TargetIP  IPv4
}

// String formats the ARP message for diagnostics.
func (a *ARPPayload) String() string {
	if a.Op == ARPRequest {
		return fmt.Sprintf("arp who-has %s tell %s", a.TargetIP, a.SenderIP)
	}
	return fmt.Sprintf("arp %s is-at %s", a.SenderIP, a.SenderMAC)
}

// MarshalBinary encodes the header fields of the frame (not the payload
// bytes, which the simulator carries out of band). Used for property
// tests and for on-disk traces.
func (f *Frame) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, f.Dst[:]...)
	buf = append(buf, f.Src[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(f.Type))
	switch f.Type {
	case EtherARP:
		if f.ARP == nil {
			return nil, errors.New("netsim: ARP frame without ARP payload")
		}
		buf = binary.BigEndian.AppendUint16(buf, f.ARP.Op)
		buf = append(buf, f.ARP.SenderMAC[:]...)
		buf = append(buf, f.ARP.SenderIP[:]...)
		buf = append(buf, f.ARP.TargetMAC[:]...)
		buf = append(buf, f.ARP.TargetIP[:]...)
	case EtherIPv4:
		if f.Packet == nil {
			return nil, errors.New("netsim: IPv4 frame without packet")
		}
		pb, err := f.Packet.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = append(buf, pb...)
	default:
		return nil, fmt.Errorf("netsim: cannot marshal ethertype %#04x", uint16(f.Type))
	}
	return buf, nil
}

// UnmarshalBinary decodes a frame encoded with MarshalBinary.
func (f *Frame) UnmarshalBinary(data []byte) error {
	if len(data) < EthHeaderLen {
		return errors.New("netsim: frame too short")
	}
	copy(f.Dst[:], data[0:6])
	copy(f.Src[:], data[6:12])
	f.Type = EtherType(binary.BigEndian.Uint16(data[12:14]))
	rest := data[EthHeaderLen:]
	f.Packet, f.ARP = nil, nil
	switch f.Type {
	case EtherARP:
		if len(rest) < 2+6+4+6+4 {
			return errors.New("netsim: ARP payload too short")
		}
		a := &ARPPayload{Op: binary.BigEndian.Uint16(rest[0:2])}
		copy(a.SenderMAC[:], rest[2:8])
		copy(a.SenderIP[:], rest[8:12])
		copy(a.TargetMAC[:], rest[12:18])
		copy(a.TargetIP[:], rest[18:22])
		f.ARP = a
	case EtherIPv4:
		p := new(Packet)
		if err := p.UnmarshalBinary(rest); err != nil {
			return err
		}
		f.Packet = p
	default:
		return fmt.Errorf("netsim: cannot unmarshal ethertype %#04x", uint16(f.Type))
	}
	return nil
}
