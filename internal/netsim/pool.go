package netsim

// Datapath object pools. The simulated datapath creates one Packet per
// stream segment/ACK and one Frame per link crossing; at stream rates
// that is hundreds of thousands of short-lived heap objects per second
// of virtual time. Ownership of both is linear — a frame ends its life
// at exactly one namespace's input (or is cloned-and-dropped on fan-out
// paths), and a stream packet ends at exactly one streamInput — so both
// can be recycled through per-Net free lists at those points.
//
// The pools are deliberately per-Net and lock-free: each Net is owned by
// one engine and one goroutine, so recycling is deterministic (same
// seed, same alloc/release order, same tables) and safe under the
// parallel experiment harness, where concurrent workers each own a
// private Net.
//
// Release rules:
//   - putFrame: only at a point where the frame cannot be referenced
//     again — the end of NetNS.input, or after a fan-out path has cloned
//     it for every receiver. The attached Packet may outlive the frame
//     (forwarding), so putFrame detaches it and never releases it.
//   - putPacket: only for stream-transport packets, at the end of
//     streamInput — the transport never leaks *Packet to applications
//     (OnMessage receives size/app/sentAt), unlike UDP's OnRecv, so UDP
//     and ICMP packets are never pooled.
//
// Dropped objects (ring overflows, no-route, bad MAC before input) are
// simply left to the GC: a pool miss is a missed reuse, never a leak.

// poolCap bounds each free list; beyond it objects go back to the GC.
// Steady-state datapaths keep well under this.
const poolCap = 4096

// getPacket returns a zeroed Packet, recycled when possible.
func (n *Net) getPacket() *Packet {
	if last := len(n.pktPool) - 1; last >= 0 {
		p := n.pktPool[last]
		n.pktPool[last] = nil
		n.pktPool = n.pktPool[:last]
		return p
	}
	return new(Packet)
}

// putPacket recycles p. The caller must guarantee no remaining
// references; p is zeroed here so stale App/Flow state can never leak
// into a reuse.
func (n *Net) putPacket(p *Packet) {
	if p == nil || len(n.pktPool) >= poolCap {
		return
	}
	*p = Packet{}
	n.pktPool = append(n.pktPool, p)
}

// getFrame returns a zeroed Frame, recycled when possible.
func (n *Net) getFrame() *Frame {
	if last := len(n.framePool) - 1; last >= 0 {
		f := n.framePool[last]
		n.framePool[last] = nil
		n.framePool = n.framePool[:last]
		return f
	}
	return new(Frame)
}

// putFrame recycles f, detaching (not releasing) any payload the frame
// still carries: the packet may be forwarded on, and ARP payloads are
// cheap one-offs.
func (n *Net) putFrame(f *Frame) {
	if f == nil || len(n.framePool) >= poolCap {
		return
	}
	*f = Frame{}
	n.framePool = append(n.framePool, f)
}
