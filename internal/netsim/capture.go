package netsim

import (
	"encoding/binary"
	"fmt"
	"io"

	"nestless/internal/sim"
)

// Direction tags a captured frame.
type Direction uint8

// Capture directions.
const (
	DirTX Direction = iota
	DirRX
)

// String names the direction.
func (d Direction) String() string {
	if d == DirTX {
		return "tx"
	}
	return "rx"
}

// CaptureRecord is one captured frame with its timestamp.
type CaptureRecord struct {
	At    sim.Time
	Dir   Direction
	Iface string
	Frame *Frame
}

// Capture is a tcpdump-style probe attached to one interface: every
// frame transmitted or delivered is recorded (headers cloned, payload
// metadata shared). Useful for debugging topologies and for asserting
// datapaths in tests — e.g. proving no frame of a BrFusion pod ever
// crosses the in-VM bridge.
type Capture struct {
	iface   *Iface
	eng     *sim.Engine
	records []CaptureRecord
	limit   int
}

// AttachCapture installs a probe on the interface. limit bounds stored
// records (0 = unlimited). Only one capture per interface; attaching
// again replaces the previous probe.
func AttachCapture(i *Iface, limit int) *Capture {
	c := &Capture{iface: i, eng: i.NS.Net.Eng, limit: limit}
	i.probe = func(dir Direction, f *Frame) {
		if c.limit > 0 && len(c.records) >= c.limit {
			return
		}
		c.records = append(c.records, CaptureRecord{
			At:    c.eng.Now(),
			Dir:   dir,
			Iface: i.Name,
			Frame: f.Clone(),
		})
	}
	return c
}

// Detach removes the probe.
func (c *Capture) Detach() {
	if c.iface.probe != nil {
		c.iface.probe = nil
	}
}

// Records returns the captured frames in order.
func (c *Capture) Records() []CaptureRecord {
	return append([]CaptureRecord(nil), c.records...)
}

// Count returns the number of captured frames.
func (c *Capture) Count() int { return len(c.records) }

// WriteTo dumps the capture in a compact binary format: for each record
// a timestamp (ns), direction byte, frame length and the frame's header
// encoding — a pcap-like trace for offline inspection.
func (c *Capture) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, r := range c.records {
		data, err := r.Frame.MarshalBinary()
		if err != nil {
			return total, err
		}
		var hdr [13]byte
		binary.BigEndian.PutUint64(hdr[0:8], uint64(r.At))
		hdr[8] = byte(r.Dir)
		binary.BigEndian.PutUint32(hdr[9:13], uint32(len(data)))
		n, err := w.Write(hdr[:])
		total += int64(n)
		if err != nil {
			return total, err
		}
		n, err = w.Write(data)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadCapture parses a trace written by WriteTo.
func ReadCapture(r io.Reader) ([]CaptureRecord, error) {
	var out []CaptureRecord
	for {
		var hdr [13]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		size := binary.BigEndian.Uint32(hdr[9:13])
		if size > 1<<20 {
			return out, fmt.Errorf("netsim: implausible capture record size %d", size)
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(r, buf); err != nil {
			return out, err
		}
		f := new(Frame)
		if err := f.UnmarshalBinary(buf); err != nil {
			return out, err
		}
		out = append(out, CaptureRecord{
			At:    sim.Time(binary.BigEndian.Uint64(hdr[0:8])),
			Dir:   Direction(hdr[8]),
			Frame: f,
		})
	}
}

// String renders one record for diagnostics.
func (r CaptureRecord) String() string {
	return fmt.Sprintf("%v %s %s %v", r.At, r.Iface, r.Dir, r.Frame)
}
