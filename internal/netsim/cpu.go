package netsim

import (
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/sim"
	"nestless/internal/telemetry"
)

// CPU binds a sim.Station (the serial compute resource) to a billing
// function. All network work of a namespace executes on its CPU; the
// billing function decides which cpuacct entities the time lands on —
// e.g. guest-side work bills both "app/<name>" (guest view) and
// "vm/<name>" as guest time (host view).
//
// When Rec is set, every billed charge also emits one telemetry span
// attributed to Entity (mirrored to GuestOf as guest time). Because Run,
// RunCosts and Charge are the only billing choke points, the trace's
// summed span durations reconcile with the accountant's breakdown by
// construction.
type CPU struct {
	Eng     *sim.Engine
	Station *sim.Station
	Bill    func(cat cpuacct.Category, d time.Duration)

	Rec     *telemetry.Recorder
	Entity  string
	GuestOf string
}

// NewCPU builds a CPU around a fresh single-server station. The bill
// function may be nil (no accounting).
func NewCPU(eng *sim.Engine, name string, servers int, bill func(cpuacct.Category, time.Duration)) *CPU {
	return &CPU{Eng: eng, Station: sim.NewStation(eng, name, servers), Bill: bill}
}

// Run executes work of duration d on the CPU, billing it to cat, and
// calls then when it completes. then may be nil.
func (c *CPU) Run(cat cpuacct.Category, d time.Duration, then func()) {
	if d > 0 {
		if c.Bill != nil {
			c.Bill(cat, d)
		}
		if c.Rec != nil {
			c.Rec.ChargeSpan(c.Entity, c.GuestOf, cat, c.Station.Name(), d)
		}
	}
	c.Station.Process(d, then)
}

// RunCosts executes a sequence of (category, duration) charges as one
// serial occupancy of the CPU (a single station job), while billing each
// charge to its own category. Batching keeps event counts low and models
// the fact that one core runs the whole stage sequence back to back.
func (c *CPU) RunCosts(charges []Charge, then func()) {
	var total time.Duration
	for _, ch := range charges {
		if ch.D <= 0 {
			continue
		}
		total += ch.D
		if c.Bill != nil {
			c.Bill(ch.Cat, ch.D)
		}
		if c.Rec != nil {
			c.Rec.ChargeSpan(c.Entity, c.GuestOf, ch.Cat, c.Station.Name(), ch.D)
		}
	}
	c.Station.Process(total, then)
}

// Charge bills work that consumes CPU time without occupying the station
// (callers that model their own delays, e.g. container boot steps whose
// wall time exceeds their CPU fraction). It keeps the accountant and the
// telemetry rollup in lockstep with Run/RunCosts.
func (c *CPU) Charge(cat cpuacct.Category, d time.Duration) {
	if d <= 0 {
		return
	}
	if c.Bill != nil {
		c.Bill(cat, d)
	}
	if c.Rec != nil {
		c.Rec.ChargeSpan(c.Entity, c.GuestOf, cat, c.Station.Name(), d)
	}
}

// Charge is one (category, duration) billing item.
type Charge struct {
	Cat cpuacct.Category
	D   time.Duration
}
