package netsim

import (
	"fmt"

	"nestless/internal/cpuacct"
	"nestless/internal/sim"
)

// The stream transport is a simplified TCP: connection setup is a
// two-way handshake (connect/accept), data flows as MSS-sized segments
// bounded by an in-flight byte window, and receivers send cumulative
// ACKs every few segments. There is no loss or reordering — simulated
// queues are lossless and FIFO — so no retransmission machinery is
// needed; flow control (the window) is what shapes throughput, exactly
// as on an unloaded datacenter link.

// connKey demultiplexes stream segments. The connection ID is allocated
// by the dialer and echoed by the peer, so the key survives NAT
// rewrites of addresses and ports.
type connKey struct {
	port uint16
	id   uint64
}

// StreamListener accepts incoming stream connections on a port.
type StreamListener struct {
	ns   *NetNS
	port uint16

	// OnAccept is invoked with each newly established server-side
	// connection. Set handlers on the conn inside this callback.
	OnAccept func(c *StreamConn)
}

// ListenStream binds a stream listener on port.
func (ns *NetNS) ListenStream(port uint16, onAccept func(*StreamConn)) (*StreamListener, error) {
	if _, used := ns.listeners[port]; used {
		return nil, fmt.Errorf("netsim: stream port %d in use in %s", port, ns.Name)
	}
	l := &StreamListener{ns: ns, port: port, OnAccept: onAccept}
	ns.listeners[port] = l
	return l, nil
}

// Close releases the listening port.
func (l *StreamListener) Close() {
	if l.ns.listeners[l.port] == l {
		delete(l.ns.listeners, l.port)
	}
}

// message is one application message queued on a connection.
type message struct {
	size   int
	app    interface{}
	sentAt sim.Time
}

// segMeta rides on a data segment: the messages whose final byte the
// segment carries (the receiver fires OnMessage for each). Segments
// coalesce bytes across message boundaries like a real byte stream, so
// bulk traffic over jumbo-MTU paths (loopback) amortizes per-segment
// costs over many messages.
type segMeta struct {
	completes []message
}

// StreamConn is one endpoint of an established (or connecting) stream
// connection. It is full duplex: each direction has its own sequence
// space, window and ACK state.
type StreamConn struct {
	ns         *NetNS
	id         uint64
	localPort  uint16
	remoteAddr IPv4
	remotePort uint16

	mss    int
	window int

	established bool
	onConnected func(*StreamConn)

	// Send direction.
	sendQ    []message
	headSent int // bytes of sendQ[0] already segmented
	seq      uint64
	ackedSeq uint64

	// Receive direction.
	rcvd         uint64
	segsSinceAck int

	// OnMessage fires when a complete application message has arrived,
	// after receive-side charges. sentAt is when the peer submitted it.
	OnMessage func(size int, app interface{}, sentAt sim.Time)

	// OnDrain fires whenever the send queue empties (all submitted
	// messages fully segmented). Bulk senders use it to keep the pipe
	// full without queueing unbounded data.
	OnDrain func()

	// MsgsIn/MsgsOut count application messages.
	MsgsIn, MsgsOut uint64
}

// DialStream opens a connection to dst:dport. onConnected fires when the
// peer accepts; messages sent before then are queued.
func (ns *NetNS) DialStream(dst IPv4, dport uint16, onConnected func(*StreamConn)) *StreamConn {
	lport := ns.allocPort(func(p uint16) bool {
		_, used := ns.conns[connKey{port: p}]
		if used {
			return true
		}
		_, used = ns.listeners[p]
		return used
	})
	c := &StreamConn{
		ns:          ns,
		id:          ns.Net.nextConnID(),
		localPort:   lport,
		remoteAddr:  dst,
		remotePort:  dport,
		window:      ns.Costs.StreamWindow,
		onConnected: onConnected,
	}
	c.mss = ns.pathMSS(dst)
	ns.conns[connKey{port: lport, id: c.id}] = c
	syn := ns.Net.getPacket()
	syn.Dst, syn.Proto, syn.SrcPort, syn.DstPort, syn.TTL = dst, ProtoTCP, lport, dport, 64
	syn.Seg = Seg{Kind: SegConnect, ConnID: c.id}
	ns.Output(syn, []Charge{{cpuacct.Sys, ns.Costs.SyscallTX.For(0)}})
	return c
}

// pathMSS derives the segment size from the egress interface MTU
// (IP + TCP header + options overhead subtracted). Loopback paths get
// jumbo segments, which is what makes intra-VM pod-localhost traffic so
// much faster than any cross-VM solution (the paper's SameNode).
func (ns *NetNS) pathMSS(dst IPv4) int {
	out, _, ok := ns.lookupRoute(dst)
	if !ok {
		return ns.Costs.StreamMSS
	}
	mss := out.MTU - (IPv4HeaderLen + TCPHeaderLen + 12)
	if mss < 64 {
		mss = 64
	}
	return mss
}

// ID returns the connection's demux ID.
func (c *StreamConn) ID() uint64 { return c.id }

// LocalPort returns the connection's local port.
func (c *StreamConn) LocalPort() uint16 { return c.localPort }

// Remote returns the peer address as seen from this side (post-NAT).
func (c *StreamConn) Remote() (IPv4, uint16) { return c.remoteAddr, c.remotePort }

// NS returns the owning namespace.
func (c *StreamConn) NS() *NetNS { return c.ns }

// Established reports whether the handshake completed.
func (c *StreamConn) Established() bool { return c.established }

// MSS returns the connection's segment payload size.
func (c *StreamConn) MSS() int { return c.mss }

// Window returns the connection's in-flight byte window.
func (c *StreamConn) Window() int { return c.window }

// InFlight returns unacknowledged bytes in the send direction.
func (c *StreamConn) InFlight() int { return int(c.seq - c.ackedSeq) }

// Close removes the connection from the namespace demux table.
func (c *StreamConn) Close() {
	delete(c.ns.conns, connKey{port: c.localPort, id: c.id})
}

// SendMessage queues one application message of the given size. The
// application and syscall charges are paid immediately; segments flow
// out as the window allows.
func (c *StreamConn) SendMessage(size int, app interface{}) {
	if size <= 0 {
		size = 1
	}
	c.MsgsOut++
	c.sendQ = append(c.sendQ, message{size: size, app: app, sentAt: c.ns.Net.Eng.Now()})
	charges := []Charge{
		{cpuacct.Usr, c.ns.Costs.AppSend.For(size)},
		{cpuacct.Sys, c.ns.Costs.SyscallTX.For(size)},
	}
	c.ns.CPU.RunCosts(charges, func() { c.pump() })
}

// QueuedBytes returns bytes submitted but not yet segmented out.
func (c *StreamConn) QueuedBytes() int {
	n := -c.headSent
	for _, m := range c.sendQ {
		n += m.size
	}
	if n < 0 {
		n = 0
	}
	return n
}

// pump emits segments while the window has room. Bytes coalesce across
// message boundaries into MSS-sized segments, byte-stream style.
func (c *StreamConn) pump() {
	if !c.established {
		return
	}
	for len(c.sendQ) > 0 && c.InFlight() < c.window {
		// Fill one segment, possibly spanning several messages.
		h0 := c.headSent
		n := 0
		var completes []message
		var sentAt sim.Time
		for n < c.mss && len(c.sendQ) > 0 {
			head := &c.sendQ[0]
			if sentAt == 0 || head.sentAt < sentAt {
				sentAt = head.sentAt
			}
			take := c.mss - n
			if rem := head.size - c.headSent; take > rem {
				take = rem
			}
			n += take
			c.headSent += take
			if c.headSent == head.size {
				completes = append(completes, *head)
				c.sendQ = c.sendQ[1:]
				c.headSent = 0
			}
		}
		if c.InFlight()+n > c.window && c.InFlight() > 0 {
			// Window would overrun: put the carved bytes back and wait
			// for ACKs. (Overshoot is only allowed with nothing in
			// flight, to guarantee progress on jumbo segments.)
			c.sendQ = append(completes, c.sendQ...)
			c.headSent = h0
			break
		}
		p := c.ns.Net.getPacket()
		p.Dst, p.Proto = c.remoteAddr, ProtoTCP
		p.SrcPort, p.DstPort, p.TTL = c.localPort, c.remotePort, 64
		p.PayloadLen = n
		p.Seg = Seg{Kind: SegData, Seq: c.seq, ConnID: c.id}
		p.SentAt = sentAt
		if len(completes) > 0 {
			p.App = segMeta{completes: completes}
		}
		c.seq += uint64(n)
		// Per-segment kernel transmit work happens in Output (routing,
		// hooks); no extra per-segment syscall.
		c.ns.Output(p, nil)
	}
	// Writable notification: queue fully flushed (fires on data pumps
	// and on ACK-driven pumps alike, so senders can keep the window
	// full).
	if len(c.sendQ) == 0 && c.OnDrain != nil {
		c.OnDrain()
	}
}

// streamInput demultiplexes a ProtoTCP packet inside deliverLocal. It
// is the end of every stream packet's life: the transport hands
// applications message metadata (size/app/sentAt), never the *Packet,
// so the packet is recycled here on every path — including drops.
func (ns *NetNS) streamInput(p *Packet) {
	ns.streamDemux(p)
	ns.Net.putPacket(p)
}

func (ns *NetNS) streamDemux(p *Packet) {
	switch p.Seg.Kind {
	case SegConnect:
		l, ok := ns.listeners[p.DstPort]
		if !ok {
			ns.Drops.NoSocket++
			return
		}
		key := connKey{port: p.DstPort, id: p.Seg.ConnID}
		if _, dup := ns.conns[key]; dup {
			return // duplicate connect
		}
		c := &StreamConn{
			ns:          ns,
			id:          p.Seg.ConnID,
			localPort:   p.DstPort,
			remoteAddr:  p.Src,
			remotePort:  p.SrcPort,
			window:      ns.Costs.StreamWindow,
			established: true,
		}
		c.mss = ns.pathMSS(p.Src)
		ns.conns[key] = c
		if l.OnAccept != nil {
			l.OnAccept(c)
		}
		ack := ns.Net.getPacket()
		ack.Dst, ack.Proto, ack.SrcPort, ack.DstPort, ack.TTL = p.Src, ProtoTCP, p.DstPort, p.SrcPort, 64
		ack.Seg = Seg{Kind: SegAccept, ConnID: c.id}
		ns.Output(ack, []Charge{{cpuacct.Sys, ns.Costs.SyscallTX.For(0)}})

	case SegAccept:
		c, ok := ns.conns[connKey{port: p.DstPort, id: p.Seg.ConnID}]
		if !ok || c.established {
			return
		}
		c.established = true
		// The peer may sit behind NAT; sync to the tuple we actually see.
		c.remoteAddr, c.remotePort = p.Src, p.SrcPort
		if c.onConnected != nil {
			cb := c.onConnected
			c.onConnected = nil
			cb(c)
		}
		c.pump()

	case SegData:
		c, ok := ns.conns[connKey{port: p.DstPort, id: p.Seg.ConnID}]
		if !ok {
			ns.Drops.NoSocket++
			return
		}
		c.rcvd += uint64(p.PayloadLen)
		c.segsSinceAck++
		meta, final := p.App.(segMeta)
		if c.segsSinceAck >= ns.Costs.AckEvery || final {
			c.segsSinceAck = 0
			ack := ns.Net.getPacket()
			ack.Dst, ack.Proto = c.remoteAddr, ProtoTCP
			ack.SrcPort, ack.DstPort, ack.TTL = c.localPort, c.remotePort, 64
			ack.Seg = Seg{Kind: SegAck, AckSeq: c.rcvd, ConnID: c.id}
			c.ns.Output(ack, nil)
		}
		if final {
			var charges []Charge
			for _, m := range meta.completes {
				charges = append(charges,
					Charge{cpuacct.Sys, ns.Costs.SyscallRX.For(m.size)},
					Charge{cpuacct.Usr, ns.Costs.AppRecv.For(m.size)},
				)
			}
			completes := meta.completes
			ns.CPU.RunCosts(charges, func() {
				for _, m := range completes {
					c.MsgsIn++
					if c.OnMessage != nil {
						c.OnMessage(m.size, m.app, m.sentAt)
					}
				}
			})
		}

	case SegAck:
		c, ok := ns.conns[connKey{port: p.DstPort, id: p.Seg.ConnID}]
		if !ok {
			return
		}
		if p.Seg.AckSeq > c.ackedSeq {
			c.ackedSeq = p.Seg.AckSeq
		}
		c.pump()
	}
}
