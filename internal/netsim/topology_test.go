package netsim

import (
	"testing"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/sim"
)

// newWorld builds an engine + world for tests.
func newWorld() (*sim.Engine, *Net) {
	eng := sim.New(1)
	eng.MaxSteps = 50_000_000
	return eng, NewNet(eng)
}

// newNS creates a namespace with a single-lane CPU billed to its name.
func newNS(n *Net, name string) *NetNS {
	cpu := NewCPU(n.Eng, name, 1, BillTo(n.Acct, name, ""))
	return n.NewNS(name, cpu)
}

// twoHosts wires a(10.0.0.1/24) -- veth -- b(10.0.0.2/24).
func twoHosts(n *Net) (*NetNS, *NetNS) {
	a, b := newNS(n, "a"), newNS(n, "b")
	ia, ib := NewVethPair(a, "eth0", b, "eth0")
	subnet := MustPrefix(IP(10, 0, 0, 0), 24)
	ia.SetAddr(IP(10, 0, 0, 1), subnet)
	ib.SetAddr(IP(10, 0, 0, 2), subnet)
	return a, b
}

func TestUDPEndToEndWithARP(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)

	var echoed int
	_, err := b.BindUDP(7, func(p *Packet) {
		// Echo back to whatever source we saw.
		s := b.udp[7]
		s.SendTo(p.Src, p.SrcPort, p.PayloadLen, p.App)
	})
	if err != nil {
		t.Fatal(err)
	}
	sock, err := a.BindUDP(0, func(p *Packet) { echoed = p.PayloadLen })
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(IP(10, 0, 0, 2), 7, 128, "ping")
	eng.Run()

	if echoed != 128 {
		t.Fatalf("echo payload = %d, want 128", echoed)
	}
	// ARP resolved dynamically.
	if _, ok := a.arp[IP(10, 0, 0, 2)]; !ok {
		t.Error("a did not learn b's MAC")
	}
	if _, ok := b.arp[IP(10, 0, 0, 1)]; !ok {
		t.Error("b did not learn a's MAC")
	}
	if d := a.Drops.Total() + b.Drops.Total(); d != 0 {
		t.Errorf("drops = %d, want 0 (a=%+v b=%+v)", d, a.Drops, b.Drops)
	}
	if eng.Now() == 0 {
		t.Error("virtual time did not advance")
	}
}

func TestUDPRoundTripTakesCPUAndWireTime(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	if _, err := b.BindUDP(9, func(p *Packet) {}); err != nil {
		t.Fatal(err)
	}
	s, _ := a.BindUDP(0, nil)
	s.SendTo(IP(10, 0, 0, 2), 9, 1000, nil)
	eng.Run()
	// CPU accounting must show work in both namespaces.
	if n.Acct.Usage("a").Total() == 0 || n.Acct.Usage("b").Total() == 0 {
		t.Fatal("no CPU time billed")
	}
	if n.Acct.Usage("b").Of(cpuacct.Soft) == 0 {
		t.Error("receive softirq time missing")
	}
}

func TestRouterForwardsAndMasquerades(t *testing.T) {
	eng, n := newWorld()
	client := newNS(n, "client")
	router := newNS(n, "router")
	server := newNS(n, "server")
	router.Forward = true

	ic, rc := NewVethPair(client, "eth0", router, "cli")
	rs, is := NewVethPair(router, "srv", server, "eth0")
	cNet := MustPrefix(IP(10, 0, 2, 0), 24)
	sNet := MustPrefix(IP(192, 168, 1, 0), 24)
	ic.SetAddr(IP(10, 0, 2, 2), cNet)
	rc.SetAddr(IP(10, 0, 2, 1), cNet)
	rs.SetAddr(IP(192, 168, 1, 1), sNet)
	is.SetAddr(IP(192, 168, 1, 2), sNet)
	client.AddRoute(Route{Dst: MustPrefix(IPv4{}, 0), Via: IP(10, 0, 2, 1), Dev: "eth0"})
	server.AddRoute(Route{Dst: MustPrefix(IPv4{}, 0), Via: IP(192, 168, 1, 1), Dev: "eth0"})
	router.Filter.AddMasquerade(SNATRule{SrcNet: cNet, OutDev: "srv"})

	var seenSrc IPv4
	var gotReply bool
	_, err := server.BindUDP(53, func(p *Packet) {
		seenSrc = p.Src
		server.udp[53].SendTo(p.Src, p.SrcPort, 64, "reply")
	})
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := client.BindUDP(0, func(p *Packet) { gotReply = true })
	cs.SendTo(IP(192, 168, 1, 2), 53, 64, "query")
	eng.Run()

	if seenSrc != IP(192, 168, 1, 1) {
		t.Fatalf("server saw source %v, want masqueraded 192.168.1.1", seenSrc)
	}
	if !gotReply {
		t.Fatal("masqueraded reply did not come back")
	}
	if router.Filter.Translations == 0 {
		t.Error("no NAT rewrites recorded")
	}
}

func TestDNATPortPublish(t *testing.T) {
	eng, n := newWorld()
	client := newNS(n, "client")
	host := newNS(n, "host")
	pod := newNS(n, "pod")
	host.Forward = true

	ic, hc := NewVethPair(client, "eth0", host, "cli")
	hp, ip := NewVethPair(host, "pod", pod, "eth0")
	outer := MustPrefix(IP(10, 0, 2, 0), 24)
	inner := MustPrefix(IP(172, 17, 0, 0), 16)
	ic.SetAddr(IP(10, 0, 2, 2), outer)
	hc.SetAddr(IP(10, 0, 2, 1), outer)
	hp.SetAddr(IP(172, 17, 0, 1), inner)
	ip.SetAddr(IP(172, 17, 0, 2), inner)
	client.AddRoute(Route{Dst: MustPrefix(IPv4{}, 0), Via: IP(10, 0, 2, 1), Dev: "eth0"})
	pod.AddRoute(Route{Dst: MustPrefix(IPv4{}, 0), Via: IP(172, 17, 0, 1), Dev: "eth0"})
	// Publish host:8080 -> pod:80, and masquerade pod-originated replies
	// are handled by conntrack automatically.
	host.Filter.AddDNAT(DNATRule{Proto: ProtoUDP, DstPort: 8080, ToIP: IP(172, 17, 0, 2), ToPort: 80})

	var podPort uint16
	var reply bool
	if _, err := pod.BindUDP(80, func(p *Packet) {
		podPort = p.DstPort
		pod.udp[80].SendTo(p.Src, p.SrcPort, 32, nil)
	}); err != nil {
		t.Fatal(err)
	}
	cs, _ := client.BindUDP(0, func(p *Packet) {
		// Reply must appear to come from the published endpoint.
		if p.Src == IP(10, 0, 2, 1) && p.SrcPort == 8080 {
			reply = true
		}
	})
	cs.SendTo(IP(10, 0, 2, 1), 8080, 32, nil)
	eng.Run()

	if podPort != 80 {
		t.Fatalf("pod received on port %d, want 80 (DNAT)", podPort)
	}
	if !reply {
		t.Fatal("un-DNAT-ed reply did not reach client with published source")
	}
}

func TestTTLExpiresInRoutingLoop(t *testing.T) {
	eng, n := newWorld()
	r1 := newNS(n, "r1")
	r2 := newNS(n, "r2")
	r1.Forward, r2.Forward = true, true
	i1, i2 := NewVethPair(r1, "eth0", r2, "eth0")
	net12 := MustPrefix(IP(10, 9, 0, 0), 24)
	i1.SetAddr(IP(10, 9, 0, 1), net12)
	i2.SetAddr(IP(10, 9, 0, 2), net12)
	// Both route the victim prefix at each other: a loop.
	r1.AddRoute(Route{Dst: MustPrefix(IP(8, 8, 8, 0), 24), Via: IP(10, 9, 0, 2), Dev: "eth0"})
	r2.AddRoute(Route{Dst: MustPrefix(IP(8, 8, 8, 0), 24), Via: IP(10, 9, 0, 1), Dev: "eth0"})

	s, _ := r1.BindUDP(0, nil)
	s.SendTo(IP(8, 8, 8, 8), 99, 10, nil)
	eng.Run()
	if r1.Drops.TTLExpired+r2.Drops.TTLExpired == 0 {
		t.Fatal("routing loop did not expire TTL")
	}
}

func TestBridgeLearningAndFlooding(t *testing.T) {
	eng, n := newWorld()
	hub := newNS(n, "hub")
	br := NewBridge(hub, "br0")
	subnet := MustPrefix(IP(192, 168, 50, 0), 24)
	br.Iface().SetAddr(IP(192, 168, 50, 1), subnet)

	var members []*NetNS
	for _, name := range []string{"m1", "m2", "m3"} {
		m := newNS(n, name)
		mi, pi := NewVethPair(m, "eth0", hub, "port-"+name)
		mi.SetAddr(subnet.Host(2+len(members)), subnet)
		br.AddPort(pi)
		members = append(members, m)
	}

	got := map[string]int{}
	for k, m := range members {
		name := m.Name
		if _, err := m.BindUDP(5000, func(p *Packet) { got[name] += p.PayloadLen }); err != nil {
			t.Fatal(err)
		}
		_ = k
	}
	// m1 -> m3 via the bridge.
	s, _ := members[0].BindUDP(0, nil)
	s.SendTo(IP(192, 168, 50, 4), 5000, 77, nil)
	eng.Run()

	if got["m3"] != 77 {
		t.Fatalf("m3 got %d bytes, want 77", got["m3"])
	}
	if got["m2"] != 0 {
		t.Fatal("unicast leaked to m2 after delivery")
	}
	if br.Forwarded == 0 {
		t.Error("bridge never forwarded")
	}
	if br.Flooded == 0 {
		t.Error("ARP broadcast should have flooded")
	}
	// FDB learned the stations involved.
	if len(br.fdb) < 2 {
		t.Errorf("FDB has %d entries, want >= 2", len(br.fdb))
	}
}

func TestBridgeSelfInterfaceReachable(t *testing.T) {
	eng, n := newWorld()
	hub := newNS(n, "hub")
	br := NewBridge(hub, "br0")
	subnet := MustPrefix(IP(192, 168, 50, 0), 24)
	br.Iface().SetAddr(IP(192, 168, 50, 1), subnet)
	m := newNS(n, "m")
	mi, pi := NewVethPair(m, "eth0", hub, "port-m")
	mi.SetAddr(IP(192, 168, 50, 2), subnet)
	br.AddPort(pi)

	var hubGot, mGot bool
	if _, err := hub.BindUDP(123, func(p *Packet) {
		hubGot = true
		hub.udp[123].SendTo(p.Src, p.SrcPort, 8, nil)
	}); err != nil {
		t.Fatal(err)
	}
	ms, _ := m.BindUDP(0, func(p *Packet) { mGot = true })
	ms.SendTo(IP(192, 168, 50, 1), 123, 8, nil)
	eng.Run()
	if !hubGot {
		t.Fatal("member could not reach the bridge address")
	}
	if !mGot {
		t.Fatal("bridge-originated reply did not reach the member")
	}
}

func TestBridgeRemovePortStopsTraffic(t *testing.T) {
	eng, n := newWorld()
	hub := newNS(n, "hub")
	br := NewBridge(hub, "br0")
	subnet := MustPrefix(IP(192, 168, 60, 0), 24)
	br.Iface().SetAddr(IP(192, 168, 60, 1), subnet)
	m1, m2 := newNS(n, "m1"), newNS(n, "m2")
	i1, p1 := NewVethPair(m1, "eth0", hub, "p1")
	i2, p2 := NewVethPair(m2, "eth0", hub, "p2")
	i1.SetAddr(IP(192, 168, 60, 2), subnet)
	i2.SetAddr(IP(192, 168, 60, 3), subnet)
	br.AddPort(p1)
	br.AddPort(p2)

	var got int
	if _, err := m2.BindUDP(1000, func(p *Packet) { got++ }); err != nil {
		t.Fatal(err)
	}
	s, _ := m1.BindUDP(0, nil)
	s.SendTo(IP(192, 168, 60, 3), 1000, 10, nil)
	eng.Run()
	if got != 1 {
		t.Fatalf("got %d datagrams before removal, want 1", got)
	}
	br.RemovePort(p2)
	s.SendTo(IP(192, 168, 60, 3), 1000, 10, nil)
	eng.Run()
	if got != 1 {
		t.Fatalf("traffic still flows after port removal: %d", got)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	eng, n := newWorld()
	a := newNS(n, "a")
	var got int
	if _, err := a.BindUDP(8125, func(p *Packet) { got = p.PayloadLen }); err != nil {
		t.Fatal(err)
	}
	s, _ := a.BindUDP(0, nil)
	s.SendTo(IP(127, 0, 0, 1), 8125, 333, nil)
	eng.Run()
	if got != 333 {
		t.Fatalf("loopback delivery got %d, want 333", got)
	}
}

func TestWireAddsDelay(t *testing.T) {
	eng, n := newWorld()
	a, b := newNS(n, "a"), newNS(n, "b")
	ia := a.AddIface("eth0", n.NewMAC(), n.Costs.EthMTU)
	ib := b.AddIface("eth0", n.NewMAC(), n.Costs.EthMTU)
	subnet := MustPrefix(IP(10, 1, 0, 0), 24)
	ia.SetAddr(IP(10, 1, 0, 1), subnet)
	ib.SetAddr(IP(10, 1, 0, 2), subnet)
	NewWire(eng, "wire0", ia, ib, n.Costs.WireSerialize, 10*time.Microsecond)

	var arrival sim.Time
	if _, err := b.BindUDP(7, func(p *Packet) { arrival = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	s, _ := a.BindUDP(0, nil)
	s.SendTo(IP(10, 1, 0, 2), 7, 100, nil)
	eng.Run()
	// ARP round trip (2 wire delays) plus the data packet (1 delay).
	if arrival < 30*time.Microsecond {
		t.Fatalf("arrival at %v, want >= 30µs of propagation", arrival)
	}
}

func TestIfaceMoveAcrossNamespaces(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	pod := newNS(n, "pod")
	// Move b's eth0 into pod (the BrFusion namespace insertion).
	moved := b.RemoveIface("eth0")
	if moved == nil {
		t.Fatal("RemoveIface returned nil")
	}
	pod.AdoptIface(moved, "eth0")
	moved.SetAddr(IP(10, 0, 0, 2), MustPrefix(IP(10, 0, 0, 0), 24))

	var got bool
	if _, err := pod.BindUDP(80, func(p *Packet) { got = true }); err != nil {
		t.Fatal(err)
	}
	s, _ := a.BindUDP(0, nil)
	s.SendTo(IP(10, 0, 0, 2), 80, 10, nil)
	eng.Run()
	if !got {
		t.Fatal("traffic did not follow the moved interface")
	}
	if b.Iface("eth0") != nil {
		t.Fatal("old namespace still owns the interface")
	}
}
