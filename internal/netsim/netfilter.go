package netsim

import "fmt"

// Netfilter is the per-namespace packet-mangling state: DNAT rules
// (PREROUTING), SNAT/masquerade rules (POSTROUTING), and the connection
// tracking table that keeps established flows consistent in both
// directions. This mirrors the iptables NAT setup Docker and the VMM use
// in the paper's vanilla nested configuration.
type Netfilter struct {
	ns   *NetNS
	dnat []DNATRule
	snat []SNATRule

	// nat maps a flow tuple as observed at a hook to the tuple it must be
	// rewritten to. Entries are installed in both directions when a rule
	// first matches, so replies translate back automatically.
	nat map[FlowTuple]FlowTuple

	// Translations counts applied rewrites (diagnostics).
	Translations uint64
}

func newNetfilter(ns *NetNS) *Netfilter {
	return &Netfilter{ns: ns, nat: make(map[FlowTuple]FlowTuple)}
}

// DNATRule redirects traffic aimed at a published address/port to a
// backend — Docker's `-p hostPort:containerPort` and the orchestrator's
// service forwarding.
type DNATRule struct {
	Proto   Proto
	DstIP   IPv4 // zero matches any local destination
	DstPort uint16
	ToIP    IPv4
	ToPort  uint16
}

// SNATRule rewrites the source of traffic leaving via an interface —
// MASQUERADE for a private subnet.
type SNATRule struct {
	SrcNet Prefix // flows whose source matches are translated
	OutDev string // only when leaving via this interface ("" = any)
	// ToIP overrides the translated source; zero means use the egress
	// interface address (masquerade).
	ToIP IPv4
}

// AddDNAT appends a destination-NAT rule.
func (nf *Netfilter) AddDNAT(r DNATRule) { nf.dnat = append(nf.dnat, r) }

// AddMasquerade appends a source-NAT rule.
func (nf *Netfilter) AddMasquerade(r SNATRule) { nf.snat = append(nf.snat, r) }

// ConntrackLen returns the number of tracked translations (both
// directions counted).
func (nf *Netfilter) ConntrackLen() int { return len(nf.nat) }

// Flush drops all conntrack state (rules are kept).
func (nf *Netfilter) Flush() { nf.nat = make(map[FlowTuple]FlowTuple) }

// matchDNAT returns the first DNAT rule matching p, or nil.
func (nf *Netfilter) matchDNAT(p *Packet) *DNATRule {
	for i := range nf.dnat {
		r := &nf.dnat[i]
		if r.Proto != p.Proto || r.DstPort != p.DstPort {
			continue
		}
		if !r.DstIP.IsZero() && r.DstIP != p.Dst {
			continue
		}
		if r.DstIP.IsZero() && !nf.ns.isLocalAddr(p.Dst) {
			continue
		}
		return r
	}
	return nil
}

// WouldTranslate reports, without side effects, whether PREROUTING
// would rewrite this packet (established translation or DNAT match).
func (nf *Netfilter) WouldTranslate(p *Packet) bool {
	if _, ok := nf.nat[p.Tuple()]; ok {
		return true
	}
	return nf.matchDNAT(p) != nil
}

// prerouting applies established translations and DNAT rules to an
// incoming packet. It reports whether a rewrite occurred.
func (nf *Netfilter) prerouting(p *Packet) bool {
	t := p.Tuple()
	if to, ok := nf.nat[t]; ok {
		nf.apply(p, to)
		return true
	}
	if r := nf.matchDNAT(p); r != nil {
		to := t
		to.Dst = r.ToIP
		to.DstPort = r.ToPort
		nf.install(t, to)
		nf.apply(p, to)
		return true
	}
	return false
}

// postrouting applies established translations and SNAT rules to a
// packet leaving via out. It reports whether a rewrite occurred.
func (nf *Netfilter) postrouting(p *Packet, out *Iface) bool {
	t := p.Tuple()
	if to, ok := nf.nat[t]; ok {
		nf.apply(p, to)
		return true
	}
	for _, r := range nf.snat {
		if !r.SrcNet.Contains(p.Src) {
			continue
		}
		if r.OutDev != "" && r.OutDev != out.Name {
			continue
		}
		toIP := r.ToIP
		if toIP.IsZero() {
			toIP = out.Addr
		}
		to := t
		to.Src = toIP
		to.SrcPort = nf.allocSNATPort(to, t.SrcPort)
		nf.install(t, to)
		nf.apply(p, to)
		return true
	}
	return false
}

// allocSNATPort keeps the original source port when the reverse mapping
// is free, otherwise allocates an unused one — the conntrack port
// collision rule.
func (nf *Netfilter) allocSNATPort(to FlowTuple, orig uint16) uint16 {
	probe := to
	probe.SrcPort = orig
	if _, taken := nf.nat[probe.Reverse()]; !taken {
		return orig
	}
	return nf.ns.allocPort(func(p uint16) bool {
		probe.SrcPort = p
		_, taken := nf.nat[probe.Reverse()]
		return taken
	})
}

// install records the translation and its reply-direction inverse.
func (nf *Netfilter) install(from, to FlowTuple) {
	nf.nat[from] = to
	nf.nat[to.Reverse()] = from.Reverse()
}

func (nf *Netfilter) apply(p *Packet, to FlowTuple) {
	p.Src, p.Dst = to.Src, to.Dst
	p.SrcPort, p.DstPort = to.SrcPort, to.DstPort
	nf.Translations++
}

// String summarises the filter state.
func (nf *Netfilter) String() string {
	return fmt.Sprintf("netfilter(%s): %d dnat, %d snat, %d tracked",
		nf.ns.Name, len(nf.dnat), len(nf.snat), len(nf.nat))
}
