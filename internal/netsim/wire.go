package netsim

import (
	"time"

	"nestless/internal/sim"
)

// Wire is a point-to-point physical link: a shared serialization
// resource (the NIC/wire bandwidth) plus a propagation delay. The
// paper's client runs on dedicated host CPUs and reaches the host bridge
// through such a link; its delay constant also absorbs the scheduler
// wakeup latency that dominates small-message RTTs on real machines.
type Wire struct {
	eng   *sim.Engine
	tx    *sim.Station // serialization, shared by both directions
	delay time.Duration
	cost  StageCost
	a, b  *Iface
}

// NewWire connects interfaces a and b with the given serialization cost
// and propagation delay.
func NewWire(eng *sim.Engine, name string, a, b *Iface, cost StageCost, delay time.Duration) *Wire {
	w := &Wire{
		eng:   eng,
		tx:    sim.NewStation(eng, name, 1),
		delay: delay,
		cost:  cost,
		a:     a,
		b:     b,
	}
	a.SetLink(wireEnd{w: w, peer: b})
	b.SetLink(wireEnd{w: w, peer: a})
	a.Up, b.Up = true, true
	return w
}

type wireEnd struct {
	w    *Wire
	peer *Iface
}

func (e wireEnd) Send(src *Iface, f *Frame) {
	w := e.w
	// Serialize onto the wire (hardware time: not billed to any CPU),
	// then propagate.
	w.tx.Process(w.cost.For(f.WireLen()), func() {
		w.eng.After(w.delay, func() {
			e.peer.Deliver(f)
		})
	})
}
