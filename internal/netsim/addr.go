// Package netsim is a packet-level simulation of the Linux networking
// substrate the paper builds on: Ethernet frames and IPv4 packets moving
// through network namespaces, learning bridges, veth pairs, TAP devices,
// netfilter hook chains with NAT and connection tracking, routing tables,
// ARP, and UDP/stream sockets.
//
// Every processing stage runs on a CPU (a sim.Station) with a calibrated
// service cost and is billed to a cpuacct category, so the macroscopic
// numbers the paper reports — throughput limited by the busiest CPU,
// latency as the sum of traversed stages, CPU breakdowns per entity —
// emerge from the same mechanics as on real hardware.
package netsim

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the usual colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsZero reports whether m is the all-zero (unset) address.
func (m MAC) IsZero() bool { return m == MAC{} }

// MACAllocator hands out unique locally-administered MAC addresses.
type MACAllocator struct {
	next uint32
}

// Next returns a fresh unique MAC (52:54:00:xx:xx:xx, the QEMU OUI).
func (a *MACAllocator) Next() MAC {
	a.next++
	n := a.next
	return MAC{0x52, 0x54, 0x00, byte(n >> 16), byte(n >> 8), byte(n)}
}

// IPv4 is a 32-bit IP address.
type IPv4 [4]byte

// String formats the address in dotted-decimal form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports whether ip is the unset address 0.0.0.0.
func (ip IPv4) IsZero() bool { return ip == IPv4{} }

// IsLoopback reports whether ip is in 127.0.0.0/8.
func (ip IPv4) IsLoopback() bool { return ip[0] == 127 }

// uint32 returns the address as a big-endian integer.
func (ip IPv4) uint32() uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// ipFromUint32 converts a big-endian integer back to an address.
func ipFromUint32(v uint32) IPv4 {
	return IPv4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// IP builds an address from four octets; clearer than IPv4{...} literals
// at call sites.
func IP(a, b, c, d byte) IPv4 { return IPv4{a, b, c, d} }

// ParseIPv4 parses dotted-decimal notation.
func ParseIPv4(s string) (IPv4, error) {
	var ip IPv4
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("netsim: invalid IPv4 %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return ip, fmt.Errorf("netsim: invalid IPv4 octet in %q", s)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr IPv4
	Bits int // prefix length, 0..32
}

// ErrBadPrefix reports an out-of-range prefix length.
var ErrBadPrefix = errors.New("netsim: prefix length out of range")

// NewPrefix builds a prefix, normalising the address to its network base.
func NewPrefix(addr IPv4, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, ErrBadPrefix
	}
	p := Prefix{Addr: ipFromUint32(addr.uint32() & maskBits(bits)), Bits: bits}
	return p, nil
}

// MustPrefix is NewPrefix for static configuration; it panics on error.
func MustPrefix(addr IPv4, bits int) Prefix {
	p, err := NewPrefix(addr, bits)
	if err != nil {
		panic(err)
	}
	return p
}

func maskBits(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(bits))
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IPv4) bool {
	return ip.uint32()&maskBits(p.Bits) == p.Addr.uint32()
}

// String formats the prefix as "a.b.c.d/n".
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// Host returns the n-th host address inside the prefix (n=1 is the first
// usable address).
func (p Prefix) Host(n int) IPv4 {
	return ipFromUint32(p.Addr.uint32() + uint32(n))
}
