package netsim

import (
	"fmt"

	"nestless/internal/cpuacct"
	"nestless/internal/faults"
)

// Link is where an interface's transmitted frames go: the other end of a
// veth pair, a wire, a virtio backend, a Hostlo queue, the loopback
// turnaround. Send is called on the transmitting interface's namespace
// CPU context; implementations charge their own transmit costs.
type Link interface {
	// Send transmits f out of src. Implementations take ownership of f.
	Send(src *Iface, f *Frame)
}

// Iface is a network interface inside a namespace. An interface may be
// enslaved to a bridge (rxHook set), in which case received frames are
// handed to the bridge instead of the local IP stack.
type Iface struct {
	NS   *NetNS
	Name string
	MAC  MAC
	Addr IPv4
	Net  Prefix // the subnet Addr lives in (zero = unnumbered)
	MTU  int
	Up   bool

	link   Link
	rxHook func(in *Iface, f *Frame)     // bridge/overlay intercept, runs after softirq charge
	probe  func(dir Direction, f *Frame) // capture hook (AttachCapture)

	// TXPackets/RXPackets count frames for diagnostics.
	TXPackets, RXPackets uint64
	TXBytes, RXBytes     uint64
}

// SetLink connects the interface's transmit side.
func (i *Iface) SetLink(l Link) { i.link = l }

// Link returns the interface's transmit target.
func (i *Iface) Link() Link { return i.link }

// SetAddr assigns the interface's IP address within subnet.
func (i *Iface) SetAddr(addr IPv4, subnet Prefix) {
	i.Addr = addr
	i.Net = subnet
}

// String formats the interface for diagnostics.
func (i *Iface) String() string {
	ns := "?"
	if i.NS != nil {
		ns = i.NS.Name
	}
	return fmt.Sprintf("%s@%s(%s %s)", i.Name, ns, i.MAC, i.Addr)
}

// Transmit sends a frame out of the interface. The caller has already
// paid its own processing costs; link-specific transmit costs are charged
// by the link. Frames on a downed or unconnected interface are dropped.
func (i *Iface) Transmit(f *Frame) {
	if !i.Up || i.link == nil {
		if i.NS != nil {
			i.NS.Drops.NoLink++
		}
		return
	}
	// Fault points "frame/<ns>/<iface>": the injector can drop the frame
	// (lost on the wire), duplicate it (retransmit glitch), corrupt it
	// (FCS failure at the receiver) or stall the TX queue.
	if inj := injectorOf(i.NS); inj != nil {
		point := "frame/" + i.NS.Name + "/" + i.Name
		switch inj.FrameFate(point) {
		case faults.FateDrop:
			i.NS.Drops.Injected++
			return
		case faults.FateDup:
			i.TXPackets++
			i.TXBytes += uint64(f.WireLen())
			if i.probe != nil {
				i.probe(DirTX, f)
			}
			i.link.Send(i, f.Clone())
		case faults.FateCorrupt:
			f.Corrupted = true
		}
		if s := inj.Stall(point); s > 0 {
			i.TXPackets++
			i.TXBytes += uint64(f.WireLen())
			if i.probe != nil {
				i.probe(DirTX, f)
			}
			i.NS.Net.Eng.After(s, func() { i.link.Send(i, f) })
			return
		}
	}
	i.TXPackets++
	i.TXBytes += uint64(f.WireLen())
	if i.probe != nil {
		i.probe(DirTX, f)
	}
	i.link.Send(i, f)
}

// Deliver hands a received frame to the interface: the receive softirq
// charge is paid on the owning namespace's CPU, then the frame goes to
// the bridge hook (if enslaved) or the local stack.
func (i *Iface) Deliver(f *Frame) {
	if !i.Up || i.NS == nil {
		return
	}
	i.RXPackets++
	i.RXBytes += uint64(f.WireLen())
	if i.probe != nil {
		i.probe(DirRX, f)
	}
	ns := i.NS
	if f.Packet != nil && f.Packet.Flow != 0 {
		if rec := ns.Net.Rec; rec != nil {
			rec.FlowHop(f.Packet.Flow, ns.Name+"/"+i.Name)
		}
	}
	ns.CPU.RunCosts([]Charge{{cpuacct.Soft, ns.Costs.SoftirqRX.For(f.PayloadLen())}}, func() {
		if i.rxHook != nil {
			i.rxHook(i, f)
			return
		}
		ns.input(i, f)
	})
}

// injectorOf returns the world's fault injector for an attached
// interface (nil for detached interfaces and fault-free worlds).
func injectorOf(ns *NetNS) *faults.Injector {
	if ns == nil {
		return nil
	}
	return ns.Net.Faults
}

// DropCounters tallies the reasons a namespace discarded traffic.
type DropCounters struct {
	NoLink     uint64 // interface down or not connected
	BadMAC     uint64 // unicast frame for another MAC
	NoRoute    uint64
	TTLExpired uint64
	NoSocket   uint64
	NotForward uint64 // forwarding disabled
	Injected   uint64 // dropped by the fault injector at transmit
	Corrupt    uint64 // injected corruption caught by the receiver's FCS check
}

// Total returns the sum of all drop counters.
func (d DropCounters) Total() uint64 {
	return d.NoLink + d.BadMAC + d.NoRoute + d.TTLExpired + d.NoSocket + d.NotForward +
		d.Injected + d.Corrupt
}
