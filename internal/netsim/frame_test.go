package netsim

import (
	"testing"
	"testing/quick"
)

func TestFrameWireLenPadding(t *testing.T) {
	f := &Frame{Type: EtherIPv4, Packet: &Packet{Proto: ProtoUDP, PayloadLen: 0}}
	// 28-byte L3 payload < 46 minimum, so padded.
	if got := f.WireLen(); got != EthMinPayload+EthOverhead {
		t.Fatalf("WireLen = %d, want %d", got, EthMinPayload+EthOverhead)
	}
	f.Packet.PayloadLen = 1400
	if got := f.WireLen(); got != 1400+IPv4HeaderLen+UDPHeaderLen+EthOverhead {
		t.Fatalf("WireLen = %d", got)
	}
}

func TestFrameCloneIndependence(t *testing.T) {
	p := &Packet{Src: IP(10, 0, 0, 1), Dst: IP(10, 0, 0, 2), Proto: ProtoUDP, SrcPort: 1, DstPort: 2}
	f := &Frame{Dst: MAC{1}, Src: MAC{2}, Type: EtherIPv4, Packet: p}
	c := f.Clone()
	c.Packet.Dst = IP(99, 99, 99, 99)
	c.Dst = MAC{9}
	if f.Packet.Dst != IP(10, 0, 0, 2) || f.Dst != (MAC{1}) {
		t.Fatal("Clone aliases the original headers")
	}
}

func TestPacketTotalLen(t *testing.T) {
	udp := &Packet{Proto: ProtoUDP, PayloadLen: 100}
	if udp.TotalLen() != 128 {
		t.Fatalf("udp TotalLen = %d, want 128", udp.TotalLen())
	}
	tcp := &Packet{Proto: ProtoTCP, PayloadLen: 100}
	if tcp.TotalLen() != 140 {
		t.Fatalf("tcp TotalLen = %d, want 140", tcp.TotalLen())
	}
}

func TestFlowTupleReverseInvolution(t *testing.T) {
	tu := FlowTuple{Src: IP(1, 1, 1, 1), Dst: IP(2, 2, 2, 2), SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	if tu.Reverse().Reverse() != tu {
		t.Fatal("Reverse must be an involution")
	}
	r := tu.Reverse()
	if r.Src != tu.Dst || r.SrcPort != tu.DstPort {
		t.Fatal("Reverse did not swap endpoints")
	}
}

func TestARPFrameMarshalRoundTrip(t *testing.T) {
	f := &Frame{
		Dst: BroadcastMAC, Src: MAC{0x52, 0x54, 0, 0, 0, 1}, Type: EtherARP,
		ARP: &ARPPayload{Op: ARPRequest, SenderMAC: MAC{1, 2, 3, 4, 5, 6}, SenderIP: IP(10, 0, 0, 1), TargetIP: IP(10, 0, 0, 2)},
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Frame
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Dst != f.Dst || g.Src != f.Src || g.Type != f.Type || *g.ARP != *f.ARP {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, f)
	}
}

func TestFrameMarshalErrors(t *testing.T) {
	if _, err := (&Frame{Type: EtherARP}).MarshalBinary(); err == nil {
		t.Error("ARP frame without payload must fail")
	}
	if _, err := (&Frame{Type: EtherIPv4}).MarshalBinary(); err == nil {
		t.Error("IPv4 frame without packet must fail")
	}
	if _, err := (&Frame{Type: 0x1234}).MarshalBinary(); err == nil {
		t.Error("unknown ethertype must fail")
	}
	var g Frame
	if err := g.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer must fail")
	}
}

// Property: IPv4 frames round-trip through MarshalBinary/UnmarshalBinary.
func TestIPv4FrameRoundTripProperty(t *testing.T) {
	prop := func(dst, src [6]byte, sip, dip [4]byte, sp, dp uint16, ttl uint8, plen uint16, kind uint8, seq, ack, cid uint64) bool {
		f := &Frame{
			Dst: MAC(dst), Src: MAC(src), Type: EtherIPv4,
			Packet: &Packet{
				Src: IPv4(sip), Dst: IPv4(dip), Proto: ProtoTCP,
				SrcPort: sp, DstPort: dp, TTL: ttl, PayloadLen: int(plen),
				Seg: Seg{Kind: SegKind(kind % 4), Seq: seq, AckSeq: ack, ConnID: cid},
			},
		}
		data, err := f.MarshalBinary()
		if err != nil {
			return false
		}
		var g Frame
		if err := g.UnmarshalBinary(data); err != nil {
			return false
		}
		return g.Dst == f.Dst && g.Src == f.Src && g.Type == f.Type &&
			g.Packet.Src == f.Packet.Src && g.Packet.Dst == f.Packet.Dst &&
			g.Packet.SrcPort == f.Packet.SrcPort && g.Packet.DstPort == f.Packet.DstPort &&
			g.Packet.TTL == f.Packet.TTL && g.Packet.PayloadLen == f.Packet.PayloadLen &&
			g.Packet.Seg == f.Packet.Seg
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStageCost(t *testing.T) {
	c := StageCost{PerPacket: 1000, PerByteNs: 0.5}
	if c.For(0) != 1000 {
		t.Fatalf("For(0) = %v", c.For(0))
	}
	if c.For(2000) != 2000 {
		t.Fatalf("For(2000) = %v", c.For(2000))
	}
	if c.For(-5) != 1000 {
		t.Fatalf("negative size must clamp: %v", c.For(-5))
	}
	s := c.Scale(2)
	if s.PerPacket != 2000 || s.PerByteNs != 1.0 {
		t.Fatalf("Scale wrong: %+v", s)
	}
}
