package netsim

import (
	"bytes"
	"testing"
)

func TestCaptureRecordsBothDirections(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	cap := AttachCapture(a.Iface("eth0"), 0)

	if _, err := b.BindUDP(7, func(p *Packet) {
		b.udp[7].SendTo(p.Src, p.SrcPort, 64, nil)
	}); err != nil {
		t.Fatal(err)
	}
	s, _ := a.BindUDP(0, nil)
	s.SendTo(IP(10, 0, 0, 2), 7, 64, nil)
	eng.Run()

	recs := cap.Records()
	if len(recs) < 4 { // ARP req/reply + data + echo at minimum
		t.Fatalf("captured %d frames, want >= 4", len(recs))
	}
	var tx, rx, arp, ip4 int
	for _, r := range recs {
		if r.Dir == DirTX {
			tx++
		} else {
			rx++
		}
		switch r.Frame.Type {
		case EtherARP:
			arp++
		case EtherIPv4:
			ip4++
		}
		if r.Iface != "eth0" {
			t.Fatalf("record iface %q", r.Iface)
		}
	}
	if tx == 0 || rx == 0 {
		t.Fatalf("tx=%d rx=%d, want both directions", tx, rx)
	}
	if arp == 0 || ip4 == 0 {
		t.Fatalf("arp=%d ipv4=%d, want both kinds", arp, ip4)
	}
	// Timestamps are non-decreasing.
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatal("capture timestamps out of order")
		}
	}
	if recs[0].String() == "" {
		t.Fatal("empty record string")
	}
}

func TestCaptureLimitAndDetach(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	cap := AttachCapture(a.Iface("eth0"), 2)
	if _, err := b.BindUDP(7, nil); err != nil {
		t.Fatal(err)
	}
	s, _ := a.BindUDP(0, nil)
	for i := 0; i < 5; i++ {
		s.SendTo(IP(10, 0, 0, 2), 7, 64, nil)
	}
	eng.Run()
	if cap.Count() != 2 {
		t.Fatalf("Count = %d, want limit 2", cap.Count())
	}
	cap.Detach()
	s.SendTo(IP(10, 0, 0, 2), 7, 64, nil)
	eng.Run()
	if cap.Count() != 2 {
		t.Fatal("capture grew after Detach")
	}
}

func TestCaptureWriteReadRoundTrip(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	cap := AttachCapture(a.Iface("eth0"), 0)
	if _, err := b.BindUDP(7, nil); err != nil {
		t.Fatal(err)
	}
	s, _ := a.BindUDP(0, nil)
	s.SendTo(IP(10, 0, 0, 2), 7, 333, nil)
	eng.Run()

	var buf bytes.Buffer
	if _, err := cap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != cap.Count() {
		t.Fatalf("round trip lost records: %d vs %d", len(recs), cap.Count())
	}
	for i, r := range recs {
		orig := cap.Records()[i]
		if r.At != orig.At || r.Dir != orig.Dir {
			t.Fatal("metadata mismatch")
		}
		if r.Frame.Src != orig.Frame.Src || r.Frame.Dst != orig.Frame.Dst {
			t.Fatal("frame header mismatch")
		}
	}
}

func TestReadCaptureRejectsGarbage(t *testing.T) {
	if _, err := ReadCapture(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})); err == nil {
		t.Fatal("garbage accepted")
	}
}
