package netsim

import (
	"testing"
	"time"

	"nestless/internal/sim"
)

func TestLongestPrefixMatchWins(t *testing.T) {
	eng, n := newWorld()
	r := newNS(n, "router")
	r.Forward = true
	// Two candidate egress interfaces.
	wide := r.AddIface("wide", n.NewMAC(), 1500)
	wide.SetAddr(IP(10, 1, 0, 1), MustPrefix(IP(10, 1, 0, 0), 24))
	wide.Up = true
	narrow := r.AddIface("narrow", n.NewMAC(), 1500)
	narrow.SetAddr(IP(10, 2, 0, 1), MustPrefix(IP(10, 2, 0, 0), 24))
	narrow.Up = true
	r.AddRoute(Route{Dst: MustPrefix(IP(8, 0, 0, 0), 8), Via: IP(10, 1, 0, 2), Dev: "wide"})
	r.AddRoute(Route{Dst: MustPrefix(IP(8, 8, 8, 0), 24), Via: IP(10, 2, 0, 2), Dev: "narrow"})

	out, nh, ok := r.lookupRoute(IP(8, 8, 8, 8))
	if !ok || out.Name != "narrow" || nh != IP(10, 2, 0, 2) {
		t.Fatalf("LPM picked %v via %v", out, nh)
	}
	out, _, ok = r.lookupRoute(IP(8, 9, 0, 1))
	if !ok || out.Name != "wide" {
		t.Fatalf("fallback picked %v", out)
	}
	_ = eng
}

func TestOnLinkRouteBeatsGateway(t *testing.T) {
	_, n := newWorld()
	r := newNS(n, "r")
	i := r.AddIface("eth0", n.NewMAC(), 1500)
	i.SetAddr(IP(10, 5, 0, 1), MustPrefix(IP(10, 5, 0, 0), 24))
	i.Up = true
	r.AddRoute(Route{Dst: MustPrefix(IPv4{}, 0), Via: IP(10, 5, 0, 254), Dev: "eth0"})
	// A destination on the connected subnet must be delivered on-link,
	// not via the default gateway.
	_, nh, ok := r.lookupRoute(IP(10, 5, 0, 9))
	if !ok || nh != IP(10, 5, 0, 9) {
		t.Fatalf("on-link next hop = %v", nh)
	}
}

func TestDownIfaceDropsTraffic(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	// Exchange once to warm ARP, then take the egress down.
	if _, err := b.BindUDP(7, nil); err != nil {
		t.Fatal(err)
	}
	s, _ := a.BindUDP(0, nil)
	s.SendTo(IP(10, 0, 0, 2), 7, 8, nil)
	eng.Run()
	before := a.Drops.NoLink
	a.Iface("eth0").Up = false
	s.SendTo(IP(10, 0, 0, 2), 7, 8, nil)
	eng.Run()
	// With the only interface down there is no route at all — counted
	// either as NoRoute (lookup skips downed links) or NoLink.
	if a.Drops.NoLink == before && a.Drops.NoRoute == 0 {
		t.Fatal("send over downed interface not dropped")
	}
}

func TestOutputWithoutRouteDrops(t *testing.T) {
	eng, n := newWorld()
	a := newNS(n, "a")
	s, _ := a.BindUDP(0, nil)
	s.SendTo(IP(203, 0, 113, 9), 7, 8, nil)
	eng.Run()
	if a.Drops.NoRoute == 0 {
		t.Fatal("routeless send not counted")
	}
}

func TestSNATExplicitToIP(t *testing.T) {
	ns := natNS()
	ns.Filter.AddMasquerade(SNATRule{
		SrcNet: MustPrefix(IP(172, 17, 0, 0), 16),
		ToIP:   IP(198, 51, 100, 7),
	})
	p := &Packet{Src: IP(172, 17, 0, 5), Dst: IP(8, 8, 8, 8), Proto: ProtoUDP, SrcPort: 1, DstPort: 2}
	if !ns.Filter.postrouting(p, ns.Iface("ext")) {
		t.Fatal("SNAT did not fire")
	}
	if p.Src != IP(198, 51, 100, 7) {
		t.Fatalf("src = %v, want explicit ToIP", p.Src)
	}
}

func TestStreamCloseStopsDemux(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	var accepted *StreamConn
	if _, err := b.ListenStream(80, func(c *StreamConn) { accepted = c }); err != nil {
		t.Fatal(err)
	}
	conn := a.DialStream(IP(10, 0, 0, 2), 80, nil)
	conn.SendMessage(100, nil)
	eng.Run()
	if accepted == nil {
		t.Fatal("no accept")
	}
	accepted.Close()
	before := b.Drops.NoSocket
	conn.SendMessage(100, nil)
	eng.Run()
	if b.Drops.NoSocket <= before {
		t.Fatal("segments for a closed conn not dropped")
	}
}

func TestUDPEphemeralPortsUnique(t *testing.T) {
	_, n := newWorld()
	a := newNS(n, "a")
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		s, err := a.BindUDP(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.Port()] {
			t.Fatalf("duplicate ephemeral port %d", s.Port())
		}
		seen[s.Port()] = true
	}
}

func TestUDPSocketCloseReleasesPort(t *testing.T) {
	_, n := newWorld()
	a := newNS(n, "a")
	s, err := a.BindUDP(5353, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := a.BindUDP(5353, nil); err != nil {
		t.Fatalf("rebind after close failed: %v", err)
	}
}

func TestBridgeHairpinSuppressed(t *testing.T) {
	eng, n := newWorld()
	hub := newNS(n, "hub")
	br := NewBridge(hub, "br0")
	subnet := MustPrefix(IP(192, 168, 70, 0), 24)
	br.Iface().SetAddr(IP(192, 168, 70, 1), subnet)
	m := newNS(n, "m")
	mi, pi := NewVethPair(m, "eth0", hub, "p")
	mi.SetAddr(IP(192, 168, 70, 2), subnet)
	br.AddPort(pi)

	// Teach the FDB that 70.2 lives behind port p, then make the member
	// send a frame to its own MAC through the bridge: it must not come
	// back (hairpin off).
	var echoes int
	if _, err := m.BindUDP(9, func(p *Packet) { echoes++ }); err != nil {
		t.Fatal(err)
	}
	s, _ := m.BindUDP(0, nil)
	s.SendTo(IP(192, 168, 70, 1), 9, 8, nil) // learn
	eng.Run()
	rxBefore := mi.RXPackets
	// Frame addressed to the member itself arriving at its own port.
	f := &Frame{Src: mi.MAC, Dst: mi.MAC, Type: EtherIPv4,
		Packet: &Packet{Src: IP(192, 168, 70, 2), Dst: IP(192, 168, 70, 2), Proto: ProtoUDP, SrcPort: 1, DstPort: 9, TTL: 4, PayloadLen: 8}}
	pi.rxHook(pi, f)
	eng.Run()
	if mi.RXPackets != rxBefore {
		t.Fatal("bridge hairpinned a frame back out its ingress port")
	}
}

func TestWakeupOnlyAfterIdle(t *testing.T) {
	eng := sim.New(1)
	st := sim.NewStation(eng, "vcpu", 1)
	st.SetWakeup(8*time.Microsecond, 0, 20*time.Microsecond)

	// Back-to-back jobs: no wakeups beyond the first (station starts
	// idle at t=0 with idleSince=0 — idle duration 0 < threshold).
	done := []sim.Time{}
	st.Process(5*time.Microsecond, func() { done = append(done, eng.Now()) })
	st.Process(5*time.Microsecond, func() { done = append(done, eng.Now()) })
	eng.Run()
	if st.Wakeups != 0 {
		t.Fatalf("busy chain paid %d wakeups", st.Wakeups)
	}
	// After a long idle gap the next job pays the penalty.
	eng.At(eng.Now()+100*time.Microsecond, func() {
		st.Process(5*time.Microsecond, nil)
	})
	eng.Run()
	if st.Wakeups != 1 {
		t.Fatalf("idle wakeups = %d, want 1", st.Wakeups)
	}
}

func TestAdoptIfaceDuplicatePanics(t *testing.T) {
	_, n := newWorld()
	a, b := twoHosts(n)
	moved := b.RemoveIface("eth0")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate adopt did not panic")
		}
	}()
	a.AdoptIface(moved, "eth0") // a already has eth0
}

func TestPrefixHostArithmetic(t *testing.T) {
	p := MustPrefix(IP(10, 0, 0, 0), 8)
	if p.Host(256) != IP(10, 0, 1, 0) {
		t.Fatalf("Host(256) = %v", p.Host(256))
	}
}
