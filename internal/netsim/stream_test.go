package netsim

import (
	"testing"
	"testing/quick"

	"nestless/internal/sim"
)

func TestStreamConnectAndExchange(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)

	var serverGot []int
	if _, err := b.ListenStream(80, func(c *StreamConn) {
		c.OnMessage = func(size int, app interface{}, _ sim.Time) {
			serverGot = append(serverGot, size)
			c.SendMessage(size/2, "resp") // respond with half the bytes
		}
	}); err != nil {
		t.Fatal(err)
	}

	var clientGot []int
	conn := a.DialStream(IP(10, 0, 0, 2), 80, func(c *StreamConn) {
		c.SendMessage(1000, "req1")
		c.SendMessage(5000, "req2")
	})
	conn.OnMessage = func(size int, app interface{}, _ sim.Time) {
		clientGot = append(clientGot, size)
	}
	eng.Run()

	if len(serverGot) != 2 || serverGot[0] != 1000 || serverGot[1] != 5000 {
		t.Fatalf("server got %v, want [1000 5000]", serverGot)
	}
	if len(clientGot) != 2 || clientGot[0] != 500 || clientGot[1] != 2500 {
		t.Fatalf("client got %v, want [500 2500]", clientGot)
	}
	if !conn.Established() {
		t.Fatal("connection not established")
	}
	if conn.MSS() != 1448 {
		t.Fatalf("MSS = %d, want 1448 on ethernet", conn.MSS())
	}
}

func TestStreamSendBeforeEstablishedQueues(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	var got int
	if _, err := b.ListenStream(80, func(c *StreamConn) {
		c.OnMessage = func(size int, _ interface{}, _ sim.Time) { got = size }
	}); err != nil {
		t.Fatal(err)
	}
	c := a.DialStream(IP(10, 0, 0, 2), 80, nil)
	c.SendMessage(777, nil) // before SegAccept arrives
	eng.Run()
	if got != 777 {
		t.Fatalf("queued pre-establish message lost: got %d", got)
	}
}

func TestStreamLargeTransferSegmentsAndWindow(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	const total = 2 * 1024 * 1024
	var got int
	if _, err := b.ListenStream(5001, func(c *StreamConn) {
		c.OnMessage = func(size int, _ interface{}, _ sim.Time) { got += size }
	}); err != nil {
		t.Fatal(err)
	}
	a.DialStream(IP(10, 0, 0, 2), 5001, func(c *StreamConn) {
		for i := 0; i < 16; i++ {
			c.SendMessage(total/16, nil)
		}
	})
	eng.Run()
	if got != total {
		t.Fatalf("received %d bytes, want %d", got, total)
	}
	if a.Drops.Total()+b.Drops.Total() != 0 {
		t.Fatalf("drops: a=%+v b=%+v", a.Drops, b.Drops)
	}
}

func TestStreamLoopbackUsesJumboMSS(t *testing.T) {
	eng, n := newWorld()
	a := newNS(n, "a")
	if _, err := a.ListenStream(9000, func(c *StreamConn) {}); err != nil {
		t.Fatal(err)
	}
	c := a.DialStream(IP(127, 0, 0, 1), 9000, nil)
	eng.Run()
	if c.MSS() < 60000 {
		t.Fatalf("loopback MSS = %d, want jumbo (~65 KiB)", c.MSS())
	}
}

func TestStreamLoopbackFasterThanVeth(t *testing.T) {
	// The SameNode-vs-anything gap in Fig. 10 rests on loopback moving
	// bulk data much faster. Verify the substrate produces that.
	run := func(loopback bool) sim.Time {
		eng, n := newWorld()
		a, b := twoHosts(n)
		target := IP(10, 0, 0, 2)
		server := b
		if loopback {
			target = IP(127, 0, 0, 1)
			server = a
		}
		done := sim.Time(0)
		if _, err := server.ListenStream(7777, func(c *StreamConn) {
			var got int
			c.OnMessage = func(size int, _ interface{}, _ sim.Time) {
				got += size
				if got >= 1<<20 {
					done = eng.Now()
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		a.DialStream(target, 7777, func(c *StreamConn) {
			for i := 0; i < 64; i++ {
				c.SendMessage(1<<20/64, nil)
			}
		})
		eng.Run()
		if done == 0 {
			t.Fatal("transfer did not complete")
		}
		return done
	}
	lo, eth := run(true), run(false)
	if lo*2 >= eth {
		t.Fatalf("loopback (%v) not clearly faster than veth (%v)", lo, eth)
	}
}

func TestStreamThroughNAT(t *testing.T) {
	eng, n := newWorld()
	client := newNS(n, "client")
	router := newNS(n, "router")
	server := newNS(n, "server")
	router.Forward = true
	ic, rc := NewVethPair(client, "eth0", router, "cli")
	rs, is := NewVethPair(router, "srv", server, "eth0")
	cNet := MustPrefix(IP(10, 0, 2, 0), 24)
	sNet := MustPrefix(IP(192, 168, 1, 0), 24)
	ic.SetAddr(IP(10, 0, 2, 2), cNet)
	rc.SetAddr(IP(10, 0, 2, 1), cNet)
	rs.SetAddr(IP(192, 168, 1, 1), sNet)
	is.SetAddr(IP(192, 168, 1, 2), sNet)
	client.AddRoute(Route{Dst: MustPrefix(IPv4{}, 0), Via: IP(10, 0, 2, 1), Dev: "eth0"})
	server.AddRoute(Route{Dst: MustPrefix(IPv4{}, 0), Via: IP(192, 168, 1, 1), Dev: "eth0"})
	router.Filter.AddMasquerade(SNATRule{SrcNet: cNet, OutDev: "srv"})

	var reqs, resps int
	if _, err := server.ListenStream(80, func(c *StreamConn) {
		c.OnMessage = func(size int, _ interface{}, _ sim.Time) {
			reqs++
			c.SendMessage(2000, nil)
		}
	}); err != nil {
		t.Fatal(err)
	}
	conn := client.DialStream(IP(192, 168, 1, 2), 80, func(c *StreamConn) {
		c.SendMessage(100, nil)
		c.SendMessage(100, nil)
	})
	conn.OnMessage = func(size int, _ interface{}, _ sim.Time) { resps++ }
	eng.Run()
	if reqs != 2 || resps != 2 {
		t.Fatalf("reqs=%d resps=%d, want 2/2 through NAT", reqs, resps)
	}
}

func TestStreamMessageLatencyPositiveAndOrdered(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	var lat []sim.Time
	if _, err := b.ListenStream(80, func(c *StreamConn) {
		c.OnMessage = func(_ int, _ interface{}, sentAt sim.Time) {
			lat = append(lat, eng.Now()-sentAt)
		}
	}); err != nil {
		t.Fatal(err)
	}
	a.DialStream(IP(10, 0, 0, 2), 80, func(c *StreamConn) {
		for i := 0; i < 5; i++ {
			c.SendMessage(200, i)
		}
	})
	eng.Run()
	if len(lat) != 5 {
		t.Fatalf("got %d messages, want 5", len(lat))
	}
	for _, l := range lat {
		if l <= 0 {
			t.Fatal("non-positive message latency")
		}
	}
}

func TestStreamDialUnboundPortDrops(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)
	a.DialStream(IP(10, 0, 0, 2), 4444, func(c *StreamConn) {
		t.Error("connected to a port nobody listens on")
	})
	eng.Run()
	if b.Drops.NoSocket == 0 {
		t.Fatal("connect to closed port not counted as drop")
	}
}

func TestListenDuplicatePortFails(t *testing.T) {
	_, n := newWorld()
	a := newNS(n, "a")
	if _, err := a.ListenStream(80, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ListenStream(80, nil); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	if _, err := a.BindUDP(53, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.BindUDP(53, nil); err == nil {
		t.Fatal("duplicate UDP bind succeeded")
	}
}

// Property: any mix of message sizes is delivered completely and in
// order over the stream transport.
func TestStreamDeliveryProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		sizes := make([]int, len(raw))
		for i, r := range raw {
			sizes[i] = int(r)%8000 + 1
		}
		eng, n := newWorld()
		a, b := twoHosts(n)
		var got []int
		if _, err := b.ListenStream(80, func(c *StreamConn) {
			c.OnMessage = func(size int, _ interface{}, _ sim.Time) { got = append(got, size) }
		}); err != nil {
			return false
		}
		a.DialStream(IP(10, 0, 0, 2), 80, func(c *StreamConn) {
			for _, s := range sizes {
				c.SendMessage(s, nil)
			}
		})
		eng.Run()
		if len(got) != len(sizes) {
			return false
		}
		for i := range sizes {
			if got[i] != sizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
