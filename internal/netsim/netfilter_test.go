package netsim

import (
	"testing"
	"testing/quick"
)

func natNS() *NetNS {
	_, n := newWorld()
	ns := newNS(n, "router")
	i := ns.AddIface("ext", n.NewMAC(), 1500)
	i.SetAddr(IP(203, 0, 113, 1), MustPrefix(IP(203, 0, 113, 0), 24))
	i.Up = true
	return ns
}

func TestMasqueradeRewritesAndReverses(t *testing.T) {
	ns := natNS()
	nf := ns.Filter
	inner := MustPrefix(IP(172, 17, 0, 0), 16)
	nf.AddMasquerade(SNATRule{SrcNet: inner, OutDev: "ext"})
	out := ns.Iface("ext")

	p := &Packet{Src: IP(172, 17, 0, 5), Dst: IP(8, 8, 8, 8), Proto: ProtoUDP, SrcPort: 5555, DstPort: 53}
	if !nf.postrouting(p, out) {
		t.Fatal("masquerade did not fire")
	}
	if p.Src != IP(203, 0, 113, 1) {
		t.Fatalf("src = %v, want egress address", p.Src)
	}
	// Reply comes back to the translated tuple; prerouting must restore.
	reply := &Packet{Src: IP(8, 8, 8, 8), Dst: p.Src, Proto: ProtoUDP, SrcPort: 53, DstPort: p.SrcPort}
	if !nf.prerouting(reply) {
		t.Fatal("reply translation did not fire")
	}
	if reply.Dst != IP(172, 17, 0, 5) || reply.DstPort != 5555 {
		t.Fatalf("reply restored to %v:%d, want 172.17.0.5:5555", reply.Dst, reply.DstPort)
	}
}

func TestMasqueradeSkipsNonMatchingSource(t *testing.T) {
	ns := natNS()
	nf := ns.Filter
	nf.AddMasquerade(SNATRule{SrcNet: MustPrefix(IP(172, 17, 0, 0), 16), OutDev: "ext"})
	p := &Packet{Src: IP(192, 168, 1, 9), Dst: IP(8, 8, 8, 8), Proto: ProtoUDP, SrcPort: 1, DstPort: 2}
	if nf.postrouting(p, ns.Iface("ext")) {
		t.Fatal("masquerade fired for out-of-subnet source")
	}
	if p.Src != IP(192, 168, 1, 9) {
		t.Fatal("packet mutated without a match")
	}
}

func TestMasqueradePortCollisionAllocatesNewPort(t *testing.T) {
	ns := natNS()
	nf := ns.Filter
	inner := MustPrefix(IP(172, 17, 0, 0), 16)
	nf.AddMasquerade(SNATRule{SrcNet: inner, OutDev: "ext"})
	out := ns.Iface("ext")

	// Two distinct inner hosts use the same source port to the same dst.
	a := &Packet{Src: IP(172, 17, 0, 5), Dst: IP(8, 8, 8, 8), Proto: ProtoUDP, SrcPort: 7000, DstPort: 53}
	b := &Packet{Src: IP(172, 17, 0, 6), Dst: IP(8, 8, 8, 8), Proto: ProtoUDP, SrcPort: 7000, DstPort: 53}
	nf.postrouting(a, out)
	nf.postrouting(b, out)
	if a.SrcPort == b.SrcPort {
		t.Fatalf("port collision not resolved: both %d", a.SrcPort)
	}
	// Replies to each translated port reach the right host.
	ra := &Packet{Src: IP(8, 8, 8, 8), Dst: a.Src, Proto: ProtoUDP, SrcPort: 53, DstPort: a.SrcPort}
	rb := &Packet{Src: IP(8, 8, 8, 8), Dst: b.Src, Proto: ProtoUDP, SrcPort: 53, DstPort: b.SrcPort}
	nf.prerouting(ra)
	nf.prerouting(rb)
	if ra.Dst != IP(172, 17, 0, 5) || rb.Dst != IP(172, 17, 0, 6) {
		t.Fatalf("replies demuxed wrong: %v / %v", ra.Dst, rb.Dst)
	}
}

func TestDNATMatchesSpecificAndWildcardAddress(t *testing.T) {
	ns := natNS()
	nf := ns.Filter
	nf.AddDNAT(DNATRule{Proto: ProtoTCP, DstIP: IP(203, 0, 113, 1), DstPort: 80, ToIP: IP(172, 17, 0, 2), ToPort: 8080})

	hit := &Packet{Src: IP(9, 9, 9, 9), Dst: IP(203, 0, 113, 1), Proto: ProtoTCP, SrcPort: 1234, DstPort: 80}
	if !nf.prerouting(hit) || hit.Dst != IP(172, 17, 0, 2) || hit.DstPort != 8080 {
		t.Fatalf("DNAT miss: %v:%d", hit.Dst, hit.DstPort)
	}
	missPort := &Packet{Src: IP(9, 9, 9, 9), Dst: IP(203, 0, 113, 1), Proto: ProtoTCP, SrcPort: 1234, DstPort: 81}
	if nf.prerouting(missPort) {
		t.Fatal("DNAT fired on wrong port")
	}
	missProto := &Packet{Src: IP(9, 9, 9, 9), Dst: IP(203, 0, 113, 1), Proto: ProtoUDP, SrcPort: 1234, DstPort: 80}
	if nf.prerouting(missProto) {
		t.Fatal("DNAT fired on wrong proto")
	}

	// Wildcard rule applies to any local address.
	nf2 := natNS().Filter
	nf2.AddDNAT(DNATRule{Proto: ProtoTCP, DstPort: 443, ToIP: IP(172, 17, 0, 3), ToPort: 8443})
	p := &Packet{Src: IP(9, 9, 9, 9), Dst: IP(203, 0, 113, 1), Proto: ProtoTCP, SrcPort: 5, DstPort: 443}
	if !nf2.prerouting(p) || p.Dst != IP(172, 17, 0, 3) {
		t.Fatal("wildcard DNAT failed for local address")
	}
}

func TestConntrackStableAcrossPackets(t *testing.T) {
	ns := natNS()
	nf := ns.Filter
	nf.AddMasquerade(SNATRule{SrcNet: MustPrefix(IP(172, 17, 0, 0), 16)})
	out := ns.Iface("ext")
	var firstPort uint16
	for i := 0; i < 5; i++ {
		p := &Packet{Src: IP(172, 17, 0, 5), Dst: IP(8, 8, 8, 8), Proto: ProtoTCP, SrcPort: 9000, DstPort: 80}
		nf.postrouting(p, out)
		if i == 0 {
			firstPort = p.SrcPort
		} else if p.SrcPort != firstPort {
			t.Fatalf("flow translation unstable: %d then %d", firstPort, p.SrcPort)
		}
	}
	if nf.ConntrackLen() != 2 { // one entry per direction
		t.Fatalf("conntrack entries = %d, want 2", nf.ConntrackLen())
	}
	nf.Flush()
	if nf.ConntrackLen() != 0 {
		t.Fatal("Flush left entries")
	}
}

// Property: masquerade followed by the reply-direction translation is
// the identity on (source address, source port) of the original flow.
func TestNATInverseProperty(t *testing.T) {
	prop := func(hostOctet byte, sport, dport uint16, d1, d2 byte) bool {
		if sport == 0 || dport == 0 {
			return true
		}
		ns := natNS()
		nf := ns.Filter
		inner := MustPrefix(IP(172, 17, 0, 0), 16)
		nf.AddMasquerade(SNATRule{SrcNet: inner, OutDev: "ext"})
		src := IP(172, 17, 1, hostOctet)
		dst := IP(8, d1, d2, 8)
		p := &Packet{Src: src, Dst: dst, Proto: ProtoUDP, SrcPort: sport, DstPort: dport}
		if !nf.postrouting(p, ns.Iface("ext")) {
			return false
		}
		reply := &Packet{Src: dst, Dst: p.Src, Proto: ProtoUDP, SrcPort: dport, DstPort: p.SrcPort}
		nf.prerouting(reply)
		return reply.Dst == src && reply.DstPort == sport
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
