package netsim

import (
	"testing"

	"nestless/internal/sim"
)

// streamSteadyStateAllocsCap bounds the heap objects one full
// message round trip (client send → server receive → server reply →
// client receive) may allocate in steady state, once the packet and
// frame pools are warm. The remaining objects are the per-hop delivery
// closures and the per-message cost bundles; the Packet/Frame traffic
// itself is recycled. A regression that un-pools the datapath shows up
// as a multiple of this number (measured steady state: 31).
const streamSteadyStateAllocsCap = 40

func TestStreamSteadyStateAllocsBounded(t *testing.T) {
	eng, n := newWorld()
	a, b := twoHosts(n)

	if _, err := b.ListenStream(80, func(c *StreamConn) {
		c.OnMessage = func(size int, _ interface{}, _ sim.Time) {
			c.SendMessage(size, nil) // echo
		}
	}); err != nil {
		t.Fatal(err)
	}
	got := 0
	conn := a.DialStream(IP(10, 0, 0, 2), 80, nil)
	conn.OnMessage = func(int, interface{}, sim.Time) { got++ }

	// Warm up: establish, fill the pools, amortize slice growth.
	for i := 0; i < 50; i++ {
		conn.SendMessage(1000, nil)
	}
	eng.Run()
	if got != 50 {
		t.Fatalf("warmup echoed %d/50 messages", got)
	}

	allocs := testing.AllocsPerRun(200, func() {
		conn.SendMessage(1000, nil)
		eng.Run()
	})
	if allocs > streamSteadyStateAllocsCap {
		t.Fatalf("steady-state round trip allocates %.1f objects, cap %d",
			allocs, streamSteadyStateAllocsCap)
	}
}
