package netsim

import (
	"testing"
	"time"
)

func TestPingSameSubnet(t *testing.T) {
	eng, n := newWorld()
	a, _ := twoHosts(n)
	var res PingResult
	a.Ping(IP(10, 0, 0, 2), 56, time.Second, func(r PingResult) { res = r })
	eng.Run()
	if !res.OK {
		t.Fatal("ping timed out on a direct link")
	}
	if res.RTT <= 0 {
		t.Fatalf("RTT = %v", res.RTT)
	}
}

func TestPingThroughRouter(t *testing.T) {
	eng, n := newWorld()
	client := newNS(n, "client")
	router := newNS(n, "router")
	server := newNS(n, "server")
	router.Forward = true
	ic, rc := NewVethPair(client, "eth0", router, "cli")
	rs, is := NewVethPair(router, "srv", server, "eth0")
	cNet := MustPrefix(IP(10, 0, 2, 0), 24)
	sNet := MustPrefix(IP(192, 168, 1, 0), 24)
	ic.SetAddr(IP(10, 0, 2, 2), cNet)
	rc.SetAddr(IP(10, 0, 2, 1), cNet)
	rs.SetAddr(IP(192, 168, 1, 1), sNet)
	is.SetAddr(IP(192, 168, 1, 2), sNet)
	client.AddRoute(Route{Dst: MustPrefix(IPv4{}, 0), Via: IP(10, 0, 2, 1), Dev: "eth0"})
	server.AddRoute(Route{Dst: MustPrefix(IPv4{}, 0), Via: IP(192, 168, 1, 1), Dev: "eth0"})
	router.Filter.AddMasquerade(SNATRule{SrcNet: cNet, OutDev: "srv"})

	var direct, routed PingResult
	client.Ping(IP(10, 0, 2, 1), 56, time.Second, func(r PingResult) { direct = r })
	eng.Run()
	client.Ping(IP(192, 168, 1, 2), 56, time.Second, func(r PingResult) { routed = r })
	eng.Run()
	if !direct.OK || !routed.OK {
		t.Fatalf("direct=%+v routed=%+v", direct, routed)
	}
	if routed.RTT <= direct.RTT {
		t.Fatalf("routed RTT %v not above direct %v", routed.RTT, direct.RTT)
	}
}

func TestPingUnreachableTimesOut(t *testing.T) {
	eng, n := newWorld()
	a, _ := twoHosts(n)
	var res PingResult
	fired := false
	a.Ping(IP(10, 0, 0, 99), 56, 5*time.Millisecond, func(r PingResult) {
		res = r
		fired = true
	})
	eng.Run()
	if !fired {
		t.Fatal("timeout callback never fired")
	}
	if res.OK {
		t.Fatal("ping to a non-existent host succeeded")
	}
}

func TestPingLoopback(t *testing.T) {
	eng, n := newWorld()
	a := newNS(n, "a")
	var res PingResult
	a.Ping(IP(127, 0, 0, 1), 56, time.Second, func(r PingResult) { res = r })
	eng.Run()
	if !res.OK || res.RTT <= 0 {
		t.Fatalf("loopback ping: %+v", res)
	}
}

func TestConcurrentPingsKeepIdentity(t *testing.T) {
	eng, n := newWorld()
	a, _ := twoHosts(n)
	results := map[int]PingResult{}
	for i := 0; i < 5; i++ {
		a.Ping(IP(10, 0, 0, 2), 56, time.Second, func(r PingResult) { results[r.Seq] = r })
	}
	eng.Run()
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5 (IDs collided?)", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Fatal("a concurrent ping timed out")
		}
	}
}
