package netsim

import (
	"fmt"
	"sort"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/faults"
	"nestless/internal/sim"
	"nestless/internal/telemetry"
)

// Net is the root of one simulated network world: the event engine, the
// global allocators and the accounting sink all namespaces share.
type Net struct {
	Eng   *sim.Engine
	Costs *CostModel
	Acct  *cpuacct.Accountant
	// Rec, when set, receives telemetry from every CPU created through
	// NewCPU/CPUView and per-frame flow events from the datapath. Nil
	// disables telemetry at zero cost.
	Rec *telemetry.Recorder
	// Faults, when set, injects scheduled faults at the world's
	// instrumented points (frame transmit here; the control-plane layers
	// read it through their own handles). Nil disables injection at the
	// cost of one nil check per fault point.
	Faults *faults.Injector

	macs   MACAllocator
	connID uint64

	namespaces []*NetNS

	// Free lists for datapath objects (see pool.go). Per-Net and
	// unlocked: each Net runs on exactly one goroutine.
	pktPool   []*Packet
	framePool []*Frame
}

// NewNet builds a world around an engine with the default cost model.
func NewNet(eng *sim.Engine) *Net {
	return &Net{Eng: eng, Costs: DefaultCosts(), Acct: cpuacct.New()}
}

// NewMAC allocates a globally unique MAC address.
func (n *Net) NewMAC() MAC { return n.macs.Next() }

// NewCPU builds a CPU billing to entity (mirrored to guestOf as guest
// time), wired to the world's accountant and — when telemetry is on —
// to its recorder, with the station registered for instrumentation.
func (n *Net) NewCPU(name string, servers int, entity, guestOf string) *CPU {
	c := &CPU{
		Eng:     n.Eng,
		Station: sim.NewStation(n.Eng, name, servers),
		Bill:    BillTo(n.Acct, entity, guestOf),
		Rec:     n.Rec,
		Entity:  entity,
		GuestOf: guestOf,
	}
	if n.Rec != nil {
		n.Rec.WatchStation(c.Station, entity)
	}
	return c
}

// CPUView returns a CPU sharing base's station but billing to a different
// entity — the guest-view lane of a vCPU (e.g. "app/<name>" work running
// on the "vm-<name>" station).
func (n *Net) CPUView(base *CPU, entity, guestOf string) *CPU {
	return &CPU{
		Eng:     base.Eng,
		Station: base.Station,
		Bill:    BillTo(n.Acct, entity, guestOf),
		Rec:     n.Rec,
		Entity:  entity,
		GuestOf: guestOf,
	}
}

// nextConnID allocates a globally unique stream connection ID.
func (n *Net) nextConnID() uint64 {
	n.connID++
	return n.connID
}

// Namespaces returns all namespaces created in this world.
func (n *Net) Namespaces() []*NetNS { return n.namespaces }

// Route is one entry of a namespace routing table.
type Route struct {
	Dst Prefix
	Via IPv4   // zero means on-link
	Dev string // egress interface name
}

// NetNS is a network namespace: interfaces, a routing table, an ARP
// cache, netfilter hooks, and sockets. All of its processing runs on one
// CPU (the vCPU lane of the VM it lives in, or a host/client CPU lane).
type NetNS struct {
	Net   *Net
	Name  string
	CPU   *CPU
	Costs *CostModel
	// Forward enables IPv4 forwarding (routers: VM root and host root).
	Forward bool
	// ForwardChainScale multiplies the netfilter costs of the forwarding
	// path (FORWARD/POSTROUTING hooks, conntrack, NAT rewrites). It
	// models rule-chain length: a VM running Docker plus an orchestrator
	// carries long iptables chains that every forwarded (container)
	// packet traverses, while locally terminated traffic does not. Zero
	// means 1.
	ForwardChainScale float64
	// Filter is the namespace's netfilter state (never nil).
	Filter *Netfilter
	// Drops tallies discarded traffic.
	Drops DropCounters

	ifaces  map[string]*Iface
	ifOrder []string
	routes  []Route
	arp     map[IPv4]MAC
	arpWait map[IPv4][]*Frame // packets parked on ARP resolution, with egress recorded in frame dst trick

	arpPending map[IPv4]*Iface // outstanding request egress

	lo *Iface

	udp       map[uint16]*UDPSocket
	listeners map[uint16]*StreamListener
	conns     map[connKey]*StreamConn
	pings     map[uint64]*pingWaiter
	nextPort  uint16
}

// NewNS creates a namespace whose work runs on the given CPU. A loopback
// interface "lo" (127.0.0.1/8, 64 KiB MTU) is created and brought up.
func (n *Net) NewNS(name string, cpu *CPU) *NetNS {
	ns := &NetNS{
		Net:        n,
		Name:       name,
		CPU:        cpu,
		Costs:      n.Costs,
		ifaces:     make(map[string]*Iface),
		arp:        make(map[IPv4]MAC),
		arpWait:    make(map[IPv4][]*Frame),
		arpPending: make(map[IPv4]*Iface),
		udp:        make(map[uint16]*UDPSocket),
		listeners:  make(map[uint16]*StreamListener),
		conns:      make(map[connKey]*StreamConn),
		nextPort:   32768,
	}
	ns.Filter = newNetfilter(ns)
	lo := ns.AddIface("lo", MAC{0x00, 0x00, 0x00, 0x00, 0x00, 0x01}, n.Costs.LoMTU)
	lo.SetAddr(IP(127, 0, 0, 1), MustPrefix(IP(127, 0, 0, 0), 8))
	lo.SetLink(loopbackLink{})
	lo.Up = true
	ns.lo = lo
	n.namespaces = append(n.namespaces, ns)
	return ns
}

// AddIface creates an interface in the namespace (down, no link).
func (ns *NetNS) AddIface(name string, mac MAC, mtu int) *Iface {
	if _, dup := ns.ifaces[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate interface %s in %s", name, ns.Name))
	}
	i := &Iface{NS: ns, Name: name, MAC: mac, MTU: mtu}
	ns.ifaces[name] = i
	ns.ifOrder = append(ns.ifOrder, name)
	return i
}

// RemoveIface detaches and deletes an interface (used by NIC hot-unplug
// and by moving an interface across namespaces).
func (ns *NetNS) RemoveIface(name string) *Iface {
	i, ok := ns.ifaces[name]
	if !ok {
		return nil
	}
	delete(ns.ifaces, name)
	for k, n := range ns.ifOrder {
		if n == name {
			ns.ifOrder = append(ns.ifOrder[:k], ns.ifOrder[k+1:]...)
			break
		}
	}
	i.NS = nil
	return i
}

// AdoptIface moves an interface created elsewhere into this namespace —
// the simulation equivalent of `ip link set dev X netns Y`, which is how
// BrFusion inserts the hot-plugged NIC into the pod's namespace.
func (ns *NetNS) AdoptIface(i *Iface, newName string) {
	if _, dup := ns.ifaces[newName]; dup {
		panic(fmt.Sprintf("netsim: duplicate interface %s in %s", newName, ns.Name))
	}
	i.NS = ns
	i.Name = newName
	ns.ifaces[newName] = i
	ns.ifOrder = append(ns.ifOrder, newName)
}

// Iface returns the named interface, or nil.
func (ns *NetNS) Iface(name string) *Iface { return ns.ifaces[name] }

// Loopback returns the namespace's lo interface.
func (ns *NetNS) Loopback() *Iface { return ns.lo }

// Ifaces returns the namespace's interfaces in creation order.
func (ns *NetNS) Ifaces() []*Iface {
	out := make([]*Iface, 0, len(ns.ifOrder))
	for _, n := range ns.ifOrder {
		out = append(out, ns.ifaces[n])
	}
	return out
}

// AddRoute installs a route. Routes are kept sorted by prefix length so
// lookup is longest-prefix-match.
func (ns *NetNS) AddRoute(r Route) {
	ns.routes = append(ns.routes, r)
	sort.SliceStable(ns.routes, func(a, b int) bool {
		return ns.routes[a].Dst.Bits > ns.routes[b].Dst.Bits
	})
}

// lookupRoute returns the egress interface and next-hop for dst.
func (ns *NetNS) lookupRoute(dst IPv4) (*Iface, IPv4, bool) {
	// Local delivery and loopback go via lo.
	if dst.IsLoopback() || ns.isLocalAddr(dst) {
		return ns.lo, dst, true
	}
	// On-link subnets of configured interfaces.
	for _, name := range ns.ifOrder {
		i := ns.ifaces[name]
		if i == ns.lo || !i.Up || i.Net.Bits == 0 {
			continue
		}
		if i.Net.Contains(dst) {
			return i, dst, true
		}
	}
	for _, r := range ns.routes {
		if !r.Dst.Contains(dst) {
			continue
		}
		i := ns.ifaces[r.Dev]
		if i == nil || !i.Up {
			continue
		}
		nh := r.Via
		if nh.IsZero() {
			nh = dst
		}
		return i, nh, true
	}
	return nil, IPv4{}, false
}

// isLocalAddr reports whether addr belongs to one of the namespace's
// interfaces.
func (ns *NetNS) isLocalAddr(addr IPv4) bool {
	if addr.IsLoopback() {
		return true
	}
	for _, i := range ns.ifaces {
		if i.Addr == addr {
			return true
		}
	}
	return false
}

// SetARP installs a static ARP entry (used by tests; normal operation
// resolves dynamically).
func (ns *NetNS) SetARP(ip IPv4, mac MAC) { ns.arp[ip] = mac }

// input processes a frame delivered to iface in, after the softirq charge.
// The frame's life ends here: it is recycled on return (the packet may
// continue through the forwarding path and is detached, not released).
func (ns *NetNS) input(in *Iface, f *Frame) {
	if f.Corrupted {
		// The FCS check at the receiving NIC fails; the frame is gone.
		ns.Drops.Corrupt++
		ns.Net.putFrame(f)
		return
	}
	switch f.Type {
	case EtherARP:
		ns.arpInput(in, f)
	case EtherIPv4:
		p := f.Packet
		if p == nil {
			break
		}
		if !f.Dst.IsBroadcast() && f.Dst != in.MAC {
			ns.Drops.BadMAC++
			break
		}
		// Opportunistic ARP learning from traffic.
		if p.Src != (IPv4{}) && !f.Src.IsZero() {
			ns.arp[p.Src] = f.Src
		}
		ns.ipInput(in, p)
	}
	ns.Net.putFrame(f)
}

// ipInput runs the receive side of the IP stack: PREROUTING, then local
// delivery (INPUT) or forwarding (FORWARD + POSTROUTING).
func (ns *NetNS) ipInput(in *Iface, p *Packet) {
	// The charge list lives on the stack: RunCosts consumes it
	// synchronously, and 8 slots cover the longest chain (forwarding
	// with both NAT rewrites).
	var chargeBuf [8]Charge
	charges := chargeBuf[:0]
	fwScale := ns.ForwardChainScale
	if fwScale <= 0 {
		fwScale = 1
	}
	charge := func(cat cpuacct.Category, c StageCost) {
		charges = append(charges, Charge{cat, c.For(p.PayloadLen)})
	}
	chargeFw := func(cat cpuacct.Category, c StageCost) {
		charges = append(charges, Charge{cat, time.Duration(float64(c.For(p.PayloadLen)) * fwScale)})
	}

	if in == ns.lo {
		// Loopback traffic is NOTRACK-ed (standard for pod-localhost):
		// straight to local delivery.
		ns.CPU.RunCosts(charges, func() { ns.deliverLocal(p) })
		return
	}

	if ns.isLocalAddr(p.Dst) && !wouldDNAT(ns, p) {
		// Locally terminated traffic traverses the short PREROUTING +
		// INPUT path.
		charge(cpuacct.Soft, ns.Costs.HookChain) // PREROUTING
		charge(cpuacct.Soft, ns.Costs.Conntrack)
		ns.Filter.prerouting(p)
		charge(cpuacct.Soft, ns.Costs.HookChain) // INPUT
		ns.CPU.RunCosts(charges, func() { ns.deliverLocal(p) })
		return
	}

	// Forwarding path: the full rule chains apply.
	chargeFw(cpuacct.Soft, ns.Costs.HookChain) // PREROUTING
	chargeFw(cpuacct.Soft, ns.Costs.Conntrack)
	if ns.Filter.prerouting(p) {
		chargeFw(cpuacct.Soft, ns.Costs.NATRewrite)
	}
	if ns.isLocalAddr(p.Dst) {
		// DNAT decided it is local after all (rare: rewrite to self).
		charge(cpuacct.Soft, ns.Costs.HookChain)
		ns.CPU.RunCosts(charges, func() { ns.deliverLocal(p) })
		return
	}
	if !ns.Forward {
		ns.Drops.NotForward++
		return
	}
	if p.TTL <= 1 {
		ns.Drops.TTLExpired++
		return
	}
	p.TTL--
	chargeFw(cpuacct.Soft, ns.Costs.HookChain) // FORWARD
	charge(cpuacct.Sys, ns.Costs.RouteLookup)
	out, nexthop, ok := ns.lookupRoute(p.Dst)
	if !ok {
		ns.Drops.NoRoute++
		return
	}
	chargeFw(cpuacct.Soft, ns.Costs.HookChain) // POSTROUTING
	if ns.Filter.postrouting(p, out) {
		chargeFw(cpuacct.Soft, ns.Costs.NATRewrite)
	}
	ns.CPU.RunCosts(charges, func() { ns.sendVia(out, nexthop, p) })
}

// wouldDNAT reports whether PREROUTING would redirect this packet (an
// established translation or a DNAT rule match), i.e. whether it takes
// the forwarding chains despite a local destination.
func wouldDNAT(ns *NetNS, p *Packet) bool {
	return ns.Filter.WouldTranslate(p)
}

// Output sends a locally generated packet: OUTPUT hook, routing,
// POSTROUTING, then transmission. extra lets the caller prepend
// app/syscall charges so the whole send is one CPU occupancy.
func (ns *NetNS) Output(p *Packet, extra []Charge) {
	// Stack-backed charge list (see ipInput): extra is at most the
	// app+syscall pair, the output path adds at most four more.
	var chargeBuf [8]Charge
	charges := append(chargeBuf[:0], extra...)
	charge := func(cat cpuacct.Category, c StageCost) {
		charges = append(charges, Charge{cat, c.For(p.PayloadLen)})
	}
	if p.TTL == 0 {
		p.TTL = 64
	}
	charge(cpuacct.Sys, ns.Costs.RouteLookup)
	out, nexthop, ok := ns.lookupRoute(p.Dst)
	if !ok {
		ns.Drops.NoRoute++
		return
	}
	if p.Src.IsZero() {
		if out == ns.lo {
			p.Src = p.Dst // talking to ourselves: source is the same addr
		} else {
			p.Src = out.Addr
		}
	}
	if out != ns.lo {
		// Loopback output is NOTRACK-ed; everything else traverses
		// OUTPUT + POSTROUTING with conntrack.
		charge(cpuacct.Soft, ns.Costs.HookChain) // OUTPUT
		charge(cpuacct.Soft, ns.Costs.Conntrack)
		charge(cpuacct.Soft, ns.Costs.HookChain) // POSTROUTING
		if ns.Filter.postrouting(p, out) {
			charge(cpuacct.Soft, ns.Costs.NATRewrite)
		}
	}
	if rec := ns.Net.Rec; rec != nil && p.Flow == 0 {
		// Open the per-frame flow context here, where the packet enters
		// the datapath; retransmissions of the same packet keep their id.
		p.Flow = rec.FlowBegin(ns.Name, p.Tuple().String())
	}
	ns.CPU.RunCosts(charges, func() { ns.sendVia(out, nexthop, p) })
}

// sendVia frames the packet for the egress interface and transmits,
// resolving the next hop with ARP when needed.
func (ns *NetNS) sendVia(out *Iface, nexthop IPv4, p *Packet) {
	if out == ns.lo {
		// Loopback turnaround: pay the lo transmit cost, then the frame
		// re-enters the same namespace.
		f := ns.Net.getFrame()
		f.Dst, f.Src, f.Type, f.Packet = out.MAC, out.MAC, EtherIPv4, p
		ns.CPU.RunCosts([]Charge{{cpuacct.Sys, ns.Costs.Loopback.For(p.PayloadLen)}}, func() {
			out.Transmit(f)
		})
		return
	}
	f := ns.Net.getFrame()
	f.Src, f.Type, f.Packet = out.MAC, EtherIPv4, p
	if mac, ok := ns.arp[nexthop]; ok {
		f.Dst = mac
		out.Transmit(f)
		return
	}
	ns.arpResolve(out, nexthop, f)
}

// deliverLocal hands a packet to the owning socket (or the kernel's
// ICMP handling).
func (ns *NetNS) deliverLocal(p *Packet) {
	if p.Flow != 0 {
		if rec := ns.Net.Rec; rec != nil {
			rec.FlowEnd(p.Flow, ns.Name)
		}
	}
	switch p.Proto {
	case ProtoUDP:
		if s, ok := ns.udp[p.DstPort]; ok {
			s.deliver(p)
			return
		}
	case ProtoTCP:
		ns.streamInput(p)
		return
	case ProtoICMP:
		ns.icmpInput(p)
		return
	}
	ns.Drops.NoSocket++
}

// allocPort returns a free ephemeral port for the given protocol space.
func (ns *NetNS) allocPort(inUse func(uint16) bool) uint16 {
	for k := 0; k < 65536; k++ {
		p := ns.nextPort
		ns.nextPort++
		if ns.nextPort < 32768 {
			ns.nextPort = 32768
		}
		if p >= 32768 && !inUse(p) {
			return p
		}
	}
	panic("netsim: ephemeral ports exhausted")
}

// loopbackLink bounces a transmitted frame straight back into the
// transmitting interface's namespace.
type loopbackLink struct{}

func (loopbackLink) Send(src *Iface, f *Frame) {
	// Delivery includes the receive softirq charge.
	src.Deliver(f)
}

// Bill helpers ----------------------------------------------------------

// BillTo returns a billing function that records usage on entity, and —
// when guestOf is non-empty — mirrors the total as guest time of that VM
// (the host view of vCPU execution).
func BillTo(acct *cpuacct.Accountant, entity, guestOf string) func(cpuacct.Category, time.Duration) {
	return func(cat cpuacct.Category, d time.Duration) {
		acct.Record(entity, cat, d)
		if guestOf != "" {
			acct.Record(guestOf, cpuacct.Guest, d)
		}
	}
}
