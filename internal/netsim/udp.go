package netsim

import (
	"fmt"

	"nestless/internal/cpuacct"
)

// UDPSocket is a bound datagram socket. Receive is callback-driven:
// OnRecv fires after the receive-side syscall and application charges
// have been paid on the namespace CPU.
type UDPSocket struct {
	ns   *NetNS
	port uint16

	// OnRecv handles an arrived datagram. The packet's Src/SrcPort are
	// as seen by this namespace (post-NAT).
	OnRecv func(p *Packet)

	// RX and TX count datagrams.
	RX, TX uint64
}

// BindUDP binds a datagram socket on port. Port 0 picks an ephemeral
// port.
func (ns *NetNS) BindUDP(port uint16, onRecv func(*Packet)) (*UDPSocket, error) {
	if port == 0 {
		port = ns.allocPort(func(p uint16) bool { _, used := ns.udp[p]; return used })
	}
	if _, used := ns.udp[port]; used {
		return nil, fmt.Errorf("netsim: udp port %d in use in %s", port, ns.Name)
	}
	s := &UDPSocket{ns: ns, port: port, OnRecv: onRecv}
	ns.udp[port] = s
	return s, nil
}

// Port returns the bound port.
func (s *UDPSocket) Port() uint16 { return s.port }

// NS returns the owning namespace.
func (s *UDPSocket) NS() *NetNS { return s.ns }

// Close releases the port.
func (s *UDPSocket) Close() {
	if s.ns.udp[s.port] == s {
		delete(s.ns.udp, s.port)
	}
}

// SendTo emits one datagram of size payload bytes. app rides along as
// the application message. The send charges the application and syscall
// costs before the packet enters the IP output path.
func (s *UDPSocket) SendTo(dst IPv4, dport uint16, payload int, app interface{}) {
	s.TX++
	p := &Packet{
		Dst:        dst,
		Proto:      ProtoUDP,
		SrcPort:    s.port,
		DstPort:    dport,
		TTL:        64,
		PayloadLen: payload,
		App:        app,
		SentAt:     s.ns.Net.Eng.Now(),
	}
	extra := []Charge{
		{cpuacct.Usr, s.ns.Costs.AppSend.For(payload)},
		{cpuacct.Sys, s.ns.Costs.SyscallTX.For(payload)},
	}
	s.ns.Output(p, extra)
}

// deliver runs the receive-side charges and hands the datagram to OnRecv.
func (s *UDPSocket) deliver(p *Packet) {
	s.RX++
	ns := s.ns
	charges := []Charge{
		{cpuacct.Sys, ns.Costs.SyscallRX.For(p.PayloadLen)},
		{cpuacct.Usr, ns.Costs.AppRecv.For(p.PayloadLen)},
	}
	ns.CPU.RunCosts(charges, func() {
		if s.OnRecv != nil {
			s.OnRecv(p)
		}
	})
}
