package netsim

import "nestless/internal/cpuacct"

// ARP in the simulator works exactly like IPv4-over-Ethernet ARP: a
// namespace that needs the MAC of a next hop broadcasts a who-has
// request, the owner replies, and pending frames flush from the wait
// queue. This exercises bridge flooding and keeps multi-segment
// topologies honest (nothing magically knows link-layer addresses).

// arpResolve parks f until nexthop's MAC is known, sending a request if
// none is outstanding.
func (ns *NetNS) arpResolve(out *Iface, nexthop IPv4, f *Frame) {
	ns.arpWait[nexthop] = append(ns.arpWait[nexthop], f)
	if _, pending := ns.arpPending[nexthop]; pending {
		return
	}
	ns.arpPending[nexthop] = out
	req := &Frame{
		Dst:  BroadcastMAC,
		Src:  out.MAC,
		Type: EtherARP,
		ARP: &ARPPayload{
			Op:        ARPRequest,
			SenderMAC: out.MAC,
			SenderIP:  out.Addr,
			TargetIP:  nexthop,
		},
	}
	out.Transmit(req)
}

// arpInput handles a received ARP frame: answer requests for our
// addresses, learn from replies, flush waiting frames.
func (ns *NetNS) arpInput(in *Iface, f *Frame) {
	a := f.ARP
	if a == nil {
		return
	}
	// Learn the sender either way.
	if !a.SenderIP.IsZero() {
		ns.arp[a.SenderIP] = a.SenderMAC
	}
	switch a.Op {
	case ARPRequest:
		if a.TargetIP != in.Addr {
			return
		}
		reply := &Frame{
			Dst:  a.SenderMAC,
			Src:  in.MAC,
			Type: EtherARP,
			ARP: &ARPPayload{
				Op:        ARPReply,
				SenderMAC: in.MAC,
				SenderIP:  in.Addr,
				TargetMAC: a.SenderMAC,
				TargetIP:  a.SenderIP,
			},
		}
		// Replying costs a little kernel time.
		ns.CPU.RunCosts([]Charge{{cpuacct.Sys, ns.Costs.RouteLookup.For(0)}}, func() {
			in.Transmit(reply)
		})
	case ARPReply:
		ns.arpFlush(a.SenderIP)
	}
}

// arpFlush transmits frames that were waiting on ip's resolution.
func (ns *NetNS) arpFlush(ip IPv4) {
	out, pending := ns.arpPending[ip]
	if !pending {
		return
	}
	delete(ns.arpPending, ip)
	mac, ok := ns.arp[ip]
	if !ok {
		return
	}
	waiting := ns.arpWait[ip]
	delete(ns.arpWait, ip)
	for _, f := range waiting {
		f.Dst = mac
		out.Transmit(f)
	}
}
