package netsim

import "time"

// StageCost is the service time of one processing stage: a fixed
// per-packet cost plus a per-byte cost (payload copies, checksums, DMA).
type StageCost struct {
	PerPacket time.Duration
	PerByteNs float64 // nanoseconds per byte of L3 payload
}

// For returns the service time for a packet carrying n payload bytes.
func (c StageCost) For(n int) time.Duration {
	if n < 0 {
		n = 0
	}
	return c.PerPacket + time.Duration(c.PerByteNs*float64(n))
}

// Scale returns the cost multiplied by f (used by ablation benchmarks).
func (c StageCost) Scale(f float64) StageCost {
	return StageCost{
		PerPacket: time.Duration(float64(c.PerPacket) * f),
		PerByteNs: c.PerByteNs * f,
	}
}

// CostModel holds every calibrated stage cost of the simulated stack.
//
// Calibration. The constants below were fitted so that the vanilla nested
// path (in-VM bridge + NAT on top of host bridge + NAT) reproduces the
// paper's §2 measurements against single-level virtualization at 1280 B
// messages: ≈ −68 % TCP_STREAM throughput and ≈ +31 % UDP_RR latency
// (Fig. 2/4). Individually the values are in the range published for
// Linux 4.19-era stacks: a few hundred ns for bridge forwarding and veth
// crossings, 1–2 µs for iptables/conntrack chains with NAT, ~1 µs for a
// virtio kick (VM exit), 1.5–2 µs of vhost work per packet. The shape of
// every figure — who wins and by what factor — comes from which stages a
// path traverses and on which CPU they execute, not from any single
// constant.
type CostModel struct {
	// Application-level work per message (billed usr).
	AppSend StageCost
	AppRecv StageCost

	// Socket syscalls: per packet plus a copy cost per byte (sys).
	SyscallTX StageCost
	SyscallRX StageCost

	// Receive softirq processing on packet entry into a namespace (soft).
	SoftirqRX StageCost

	// veth pair crossing: transmit side and receive side (sys).
	VethTX StageCost
	VethRX StageCost

	// Learning-bridge forwarding (sys).
	Bridge StageCost

	// Netfilter: base cost of traversing one hook chain with rules,
	// conntrack lookup/insert, and a NAT header rewrite (soft — the paper
	// attributes these hooks to software interrupts, §5.2.3).
	HookChain  StageCost
	Conntrack  StageCost
	NATRewrite StageCost

	// FIB lookup (sys).
	RouteLookup StageCost

	// Loopback device transmit (sys). The loopback MTU is 64 KiB, so
	// intra-pod traffic amortizes this over jumbo segments.
	Loopback StageCost

	// Virtio guest side: descriptor publish, consume, and the kick
	// (VM exit) that notifies the backend (sys).
	VirtioTX   StageCost
	VirtioRX   StageCost
	VirtioKick StageCost

	// Vhost: host-kernel worker moving frames between virtqueues and the
	// host stack. Runs on host CPUs; the paper observes it billed as host
	// sys time on behalf of the guests (§5.3.4).
	Vhost StageCost

	// Hostlo: reflecting one frame into one endpoint queue (host sys).
	// Total reflect cost is per queue served, so fan-out scales with the
	// number of VMs sharing the device.
	HostloReflect StageCost

	// VXLAN overlay encapsulation/decapsulation (soft).
	VXLANEncap StageCost
	VXLANDecap StageCost

	// Wire models the client link: a serialization rate (per byte) and a
	// propagation delay that also absorbs scheduler wakeup latency, which
	// dominates small-message RTTs on real hosts.
	WireSerialize StageCost
	WireDelay     time.Duration

	// MTUs.
	EthMTU int
	LoMTU  int

	// Stream transport parameters.
	StreamMSS    int // bytes of payload per segment on ethernet paths
	StreamWindow int // in-flight window in bytes
	AckEvery     int // cumulative ACK frequency, in segments
}

// DefaultCosts returns the calibrated cost model used by all experiments.
func DefaultCosts() *CostModel {
	return &CostModel{
		AppSend: StageCost{PerPacket: 600 * time.Nanosecond},
		AppRecv: StageCost{PerPacket: 600 * time.Nanosecond},

		SyscallTX: StageCost{PerPacket: 1000 * time.Nanosecond, PerByteNs: 0.20},
		SyscallRX: StageCost{PerPacket: 1000 * time.Nanosecond, PerByteNs: 0.20},

		SoftirqRX: StageCost{PerPacket: 600 * time.Nanosecond},

		VethTX: StageCost{PerPacket: 1200 * time.Nanosecond},
		VethRX: StageCost{PerPacket: 1000 * time.Nanosecond},

		Bridge: StageCost{PerPacket: 1100 * time.Nanosecond},

		HookChain:  StageCost{PerPacket: 600 * time.Nanosecond},
		Conntrack:  StageCost{PerPacket: 700 * time.Nanosecond},
		NATRewrite: StageCost{PerPacket: 1200 * time.Nanosecond},

		RouteLookup: StageCost{PerPacket: 400 * time.Nanosecond},

		Loopback: StageCost{PerPacket: 450 * time.Nanosecond, PerByteNs: 0.05},

		VirtioTX:   StageCost{PerPacket: 900 * time.Nanosecond, PerByteNs: 0.05},
		VirtioRX:   StageCost{PerPacket: 500 * time.Nanosecond, PerByteNs: 0.05},
		VirtioKick: StageCost{PerPacket: 700 * time.Nanosecond},

		Vhost: StageCost{PerPacket: 1500 * time.Nanosecond, PerByteNs: 0.30},

		// Per-queue copy with no GSO/zero-copy: the modified TAP driver
		// duplicates every frame into each endpoint queue, which is why
		// Hostlo's bulk throughput trails batched overlays (Fig. 10)
		// while its short synchronous path keeps latency low.
		HostloReflect: StageCost{PerPacket: 2000 * time.Nanosecond, PerByteNs: 4.4},

		VXLANEncap: StageCost{PerPacket: 800 * time.Nanosecond, PerByteNs: 0.05},
		VXLANDecap: StageCost{PerPacket: 700 * time.Nanosecond, PerByteNs: 0.05},

		WireSerialize: StageCost{PerPacket: 300 * time.Nanosecond, PerByteNs: 0.80}, // ~10 GbE
		WireDelay:     20 * time.Microsecond,

		EthMTU: 1500,
		LoMTU:  65536,

		StreamMSS:    1448,
		StreamWindow: 256 * 1024,
		AckEvery:     2,
	}
}
