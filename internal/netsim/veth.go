package netsim

import "nestless/internal/cpuacct"

// vethLink is one direction of a veth pair: frames transmitted on one
// end appear on the peer after the transmit-side crossing cost, paid on
// the transmitting namespace's CPU. The receive-side cost is paid by the
// peer's namespace inside Deliver (softirq) plus the explicit VethRX
// charge here, modelling the two halves of the crossing.
type vethLink struct {
	peer *Iface
}

func (l vethLink) Send(src *Iface, f *Frame) {
	ns := src.NS
	if ns == nil {
		return
	}
	n := f.PayloadLen()
	ns.CPU.RunCosts([]Charge{{cpuacct.Sys, ns.Costs.VethTX.For(n)}}, func() {
		peer := l.peer
		if peer.NS == nil {
			return
		}
		peer.NS.CPU.RunCosts([]Charge{{cpuacct.Sys, peer.NS.Costs.VethRX.For(n)}}, func() {
			peer.Deliver(f)
		})
	})
}

// ConnectVeth joins two interfaces as a veth pair.
func ConnectVeth(a, b *Iface) {
	a.SetLink(vethLink{peer: b})
	b.SetLink(vethLink{peer: a})
	a.Up, b.Up = true, true
}

// NewVethPair creates a veth pair with one end in each namespace,
// returning (aEnd, bEnd). MACs are allocated from the world.
func NewVethPair(aNS *NetNS, aName string, bNS *NetNS, bName string) (*Iface, *Iface) {
	a := aNS.AddIface(aName, aNS.Net.NewMAC(), aNS.Costs.EthMTU)
	b := bNS.AddIface(bName, bNS.Net.NewMAC(), bNS.Costs.EthMTU)
	ConnectVeth(a, b)
	return a, b
}
