package container

import (
	"fmt"

	"nestless/internal/netsim"
)

// bridgeNAT is the engine's default network: a veth pair onto docker0,
// an address from the bridge subnet, a default route through the bridge
// gateway, MASQUERADE for egress (installed once at engine start) and a
// DNAT rule per published port. This is the in-VM half of the paper's
// "duplicate network virtualization" — the layer BrFusion removes.
type bridgeNAT struct {
	e *Engine
}

// Name identifies the provisioner.
func (p *bridgeNAT) Name() string { return "bridge-nat" }

// Provision pays the veth + bridge + iptables setup time, then wires the
// namespace.
func (p *bridgeNAT) Provision(c *Container, ports []PortMap, done func(netsim.IPv4, error)) {
	e := p.e
	op := e.cfg.Net.Rec.OpBegin("cni/bridge-nat", "provision "+c.Name)
	steps := []namedStep{{"veth-create", vethCreateStep}, {"bridge-attach", bridgeAttachStep}, {"iface-config", ifaceConfigStep}}
	// One iptables invocation for the per-container MASQUERADE return
	// rule, plus one per published port.
	for i := 0; i < 1+len(ports); i++ {
		steps = append(steps, namedStep{"iptables-rule", iptablesRuleStep})
	}
	e.stepRunner(c, steps, func(err error) {
		if err != nil {
			// Nothing was wired yet: the failing step is always before
			// the veth/bridge work below, so there is nothing to undo.
			op.End(err)
			done(netsim.IPv4{}, err)
			return
		}
		ip := e.allocIP()
		ctrEnd, nodeEnd := netsim.NewVethPair(c.NS, "eth0", e.cfg.NS, "veth-"+c.Name)
		ctrEnd.SetAddr(ip, e.briNet)
		e.bridge.AddPort(nodeEnd)
		c.NS.AddRoute(netsim.Route{
			Dst: netsim.MustPrefix(netsim.IPv4{}, 0),
			Via: e.bridge.Iface().Addr,
			Dev: "eth0",
		})
		for _, pm := range ports {
			e.cfg.NS.Filter.AddDNAT(netsim.DNATRule{
				Proto:   pm.Proto,
				DstPort: pm.NodePort,
				ToIP:    ip,
				ToPort:  pm.CtrPort,
			})
		}
		op.End(nil)
		done(ip, nil)
	})()
}

// Release detaches the container's veth from the bridge. Releasing a
// container that holds no attachment (never provisioned, or released
// twice) is an error.
func (p *bridgeNAT) Release(c *Container) error {
	e := p.e
	removed := false
	if nodeEnd := e.cfg.NS.Iface("veth-" + c.Name); nodeEnd != nil {
		e.bridge.RemovePort(nodeEnd)
		e.cfg.NS.RemoveIface(nodeEnd.Name)
		removed = true
	}
	if ctrEnd := c.NS.Iface("eth0"); ctrEnd != nil {
		c.NS.RemoveIface("eth0")
		removed = true
	}
	if !removed {
		return fmt.Errorf("container: bridge-nat has no attachment for %q", c.Name)
	}
	return nil
}
