package container

import (
	"testing"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/sim"
)

// node is a minimal stand-in for a VM hosting the engine.
type node struct {
	eng *sim.Engine
	net *netsim.Net
	ns  *netsim.NetNS
	cpu *netsim.CPU
}

func newNode() *node {
	eng := sim.New(1)
	eng.MaxSteps = 20_000_000
	w := netsim.NewNet(eng)
	cpu := netsim.NewCPU(eng, "node", 1, netsim.BillTo(w.Acct, "guest/node", "vm/node"))
	ns := w.NewNS("node", cpu)
	ns.Forward = true
	// Give the node an uplink so masquerade has an egress device.
	up := ns.AddIface("eth0", w.NewMAC(), w.Costs.EthMTU)
	up.SetAddr(netsim.IP(192, 168, 122, 10), netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24))
	up.Up = true
	return &node{eng: eng, net: w, ns: ns, cpu: cpu}
}

func (n *node) engine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(Config{
		Node: "node", Eng: n.eng, Net: n.net, NS: n.ns, CPU: n.cpu,
		EntityCPU: func(entity string) *netsim.CPU {
			return &netsim.CPU{Eng: n.eng, Station: n.cpu.Station, Bill: netsim.BillTo(n.net.Acct, entity, "vm/node")}
		},
		Uplink: "eth0",
		Boot:   FastBootProfile(),
	})
	e.Pull(Image{Name: "app", SizeMB: 120})
	e.Pull(Image{Name: "pause", SizeMB: 1})
	return e
}

func TestRunContainerLifecycle(t *testing.T) {
	n := newNode()
	e := n.engine(t)
	var got *Container
	e.Run(Spec{Name: "web", Image: "app"}, func(c *Container, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = c
	})
	n.eng.Run()
	if got == nil {
		t.Fatal("container never became ready")
	}
	if got.State != Running {
		t.Fatalf("state = %v, want running", got.State)
	}
	if got.IP.IsZero() {
		t.Fatal("no IP assigned")
	}
	if got.ReadyAt <= got.CreatedAt {
		t.Fatal("start-up consumed no time")
	}
	if e.Containers()["web"] != got {
		t.Fatal("registry wrong")
	}
}

func TestRunErrors(t *testing.T) {
	n := newNode()
	e := n.engine(t)
	var err1 error
	e.Run(Spec{Name: "x", Image: "missing"}, func(_ *Container, err error) { err1 = err })
	if err1 == nil {
		t.Fatal("missing image accepted")
	}
	e.Run(Spec{Name: "dup", Image: "app"}, nil2)
	var err2 error
	e.Run(Spec{Name: "dup", Image: "app"}, func(_ *Container, err error) { err2 = err })
	if err2 == nil {
		t.Fatal("duplicate name accepted")
	}
}

func nil2(*Container, error) {}

func TestContainerReachableViaNAT(t *testing.T) {
	n := newNode()
	e := n.engine(t)
	var ctr *Container
	e.Run(Spec{
		Name: "web", Image: "app",
		Ports: []PortMap{{Proto: netsim.ProtoUDP, NodePort: 8080, CtrPort: 80}},
	}, func(c *Container, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ctr = c
	})
	n.eng.Run()

	var gotReq bool
	if _, err := ctr.NS.BindUDP(80, func(p *netsim.Packet) {
		gotReq = true
		ctr.NS.Iface("eth0").NS.Net.Eng.Now() // no-op touch
	}); err != nil {
		t.Fatal(err)
	}
	// A peer on the node's subnet hits the published port.
	peerCPU := netsim.NewCPU(n.eng, "peer", 1, nil)
	peer := n.net.NewNS("peer", peerCPU)
	pi, ni := netsim.NewVethPair(peer, "eth0", n.ns, "peer0")
	peerNet := netsim.MustPrefix(netsim.IP(10, 50, 0, 0), 24)
	pi.SetAddr(netsim.IP(10, 50, 0, 2), peerNet)
	ni.SetAddr(netsim.IP(10, 50, 0, 1), peerNet)
	peer.AddRoute(netsim.Route{Dst: netsim.MustPrefix(netsim.IPv4{}, 0), Via: netsim.IP(10, 50, 0, 1), Dev: "eth0"})
	ps, _ := peer.BindUDP(0, nil)
	ps.SendTo(netsim.IP(10, 50, 0, 1), 8080, 44, nil)
	n.eng.Run()
	if !gotReq {
		t.Fatal("published port did not reach the container")
	}
}

func TestContainerEgressMasqueraded(t *testing.T) {
	n := newNode()
	e := n.engine(t)
	var ctr *Container
	e.Run(Spec{Name: "web", Image: "app"}, func(c *Container, err error) { ctr = c })
	n.eng.Run()

	// Outside host on the node's uplink subnet.
	outCPU := netsim.NewCPU(n.eng, "out", 1, nil)
	out := n.net.NewNS("out", outCPU)
	oi := out.AddIface("eth0", n.net.NewMAC(), 1500)
	oi.SetAddr(netsim.IP(192, 168, 122, 1), netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24))
	netsim.ConnectVeth(oi, n.ns.Iface("eth0")) // node uplink to outside

	var seen netsim.IPv4
	if _, err := out.BindUDP(53, func(p *netsim.Packet) { seen = p.Src }); err != nil {
		t.Fatal(err)
	}
	cs, _ := ctr.NS.BindUDP(0, nil)
	cs.SendTo(netsim.IP(192, 168, 122, 1), 53, 10, nil)
	n.eng.Run()
	if seen != netsim.IP(192, 168, 122, 10) {
		t.Fatalf("outside saw %v, want node address (masqueraded)", seen)
	}
}

func TestPodSandboxSharing(t *testing.T) {
	n := newNode()
	e := n.engine(t)
	var sandbox *Container
	e.RunSandbox("pod1", "app/pod1", nil, nil, func(c *Container, err error) {
		if err != nil {
			t.Fatal(err)
		}
		sandbox = c
	})
	n.eng.Run()
	var member *Container
	e.Run(Spec{Name: "pod1-app", Image: "app", JoinPod: sandbox}, func(c *Container, err error) {
		if err != nil {
			t.Fatal(err)
		}
		member = c
	})
	n.eng.Run()
	if member.NS != sandbox.NS {
		t.Fatal("joined container has a different namespace")
	}
	// Intra-pod localhost works.
	var got bool
	if _, err := sandbox.NS.BindUDP(9999, func(p *netsim.Packet) { got = true }); err != nil {
		t.Fatal(err)
	}
	ms, _ := member.NS.BindUDP(0, nil)
	ms.SendTo(netsim.IP(127, 0, 0, 1), 9999, 5, nil)
	n.eng.Run()
	if !got {
		t.Fatal("pod-localhost delivery failed")
	}
}

func TestStopReleasesNetwork(t *testing.T) {
	n := newNode()
	e := n.engine(t)
	var ctr *Container
	e.Run(Spec{Name: "web", Image: "app"}, func(c *Container, err error) { ctr = c })
	n.eng.Run()
	ports := len(e.Bridge().Ports())
	if err := e.Stop("web"); err != nil {
		t.Fatal(err)
	}
	if len(e.Bridge().Ports()) != ports-1 {
		t.Fatal("veth not detached from bridge")
	}
	if err := e.Stop("web"); err == nil {
		t.Fatal("double stop succeeded")
	}
	_ = ctr
}

func TestBootTimeDistributionVaries(t *testing.T) {
	n := newNode()
	e := n.engine(t)
	var durations []time.Duration
	for i := 0; i < 20; i++ {
		name := "c" + string(rune('a'+i))
		start := n.eng.Now()
		e.Run(Spec{Name: name, Image: "app"}, func(c *Container, err error) {
			if err != nil {
				t.Fatal(err)
			}
			durations = append(durations, n.eng.Now()-start)
		})
		n.eng.Run()
	}
	if len(durations) != 20 {
		t.Fatalf("only %d boots completed", len(durations))
	}
	allSame := true
	for _, d := range durations[1:] {
		if d != durations[0] {
			allSame = false
		}
		if d <= 0 {
			t.Fatal("non-positive boot duration")
		}
	}
	if allSame {
		t.Fatal("boot times show no jitter")
	}
}

func TestBootBillsCPUTime(t *testing.T) {
	n := newNode()
	e := n.engine(t)
	e.Run(Spec{Name: "web", Image: "app"}, nil2)
	n.eng.Run()
	if n.net.Acct.Usage("guest/node").Of(cpuacct.Sys) == 0 {
		t.Fatal("boot work billed no node CPU")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Created: "created", Starting: "starting", Running: "running", Stopped: "stopped"} {
		if s.String() != want {
			t.Errorf("%d = %q", int(s), s.String())
		}
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state name")
	}
}
