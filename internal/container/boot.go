package container

import (
	"time"

	"nestless/internal/sim"
)

// bootStep is one phase of container start-up: a lognormal-ish duration
// (normal with a floor) plus the fraction of it that is CPU-bound.
type bootStep struct {
	Mean, Jitter time.Duration
	CPUFraction  float64
}

func (s bootStep) sample(r *sim.Rand) time.Duration {
	d := time.Duration(r.Normal(float64(s.Mean), float64(s.Jitter)))
	if d < s.Mean/4 {
		d = s.Mean / 4
	}
	return d
}

// BootProfile is the engine's start-up timing model. The defaults are
// fitted to Docker CE 18.09-era measurements (a few hundred ms from
// `docker run` to the entrypoint speaking TCP, as in the paper's Fig. 8
// methodology): daemon bookkeeping, namespace creation, rootfs mount,
// then entrypoint exec and application initialisation.
//
// Network provisioning time is *not* here — it is the provisioner's own
// cost (veth+bridge+iptables for the vanilla network, a QMP hot-plug
// round trip for BrFusion), which is exactly the difference Fig. 8
// measures.
type BootProfile struct {
	DaemonPrep     bootStep
	NamespaceSetup bootStep
	RootfsMount    bootStep
	ProcessStart   bootStep
}

// DefaultBootProfile returns the calibrated profile.
func DefaultBootProfile() BootProfile {
	return BootProfile{
		DaemonPrep:     bootStep{Mean: 120 * time.Millisecond, Jitter: 25 * time.Millisecond, CPUFraction: 0.4},
		NamespaceSetup: bootStep{Mean: 15 * time.Millisecond, Jitter: 3 * time.Millisecond, CPUFraction: 0.8},
		RootfsMount:    bootStep{Mean: 80 * time.Millisecond, Jitter: 18 * time.Millisecond, CPUFraction: 0.2},
		ProcessStart:   bootStep{Mean: 150 * time.Millisecond, Jitter: 35 * time.Millisecond, CPUFraction: 0.5},
	}
}

// FastBootProfile shrinks every step by ~100×; tests and high-volume
// simulations use it to keep virtual time short without changing the
// sequence being exercised.
func FastBootProfile() *BootProfile {
	p := DefaultBootProfile()
	for _, s := range []*bootStep{&p.DaemonPrep, &p.NamespaceSetup, &p.RootfsMount, &p.ProcessStart} {
		s.Mean /= 100
		s.Jitter /= 100
	}
	return &p
}

// Network provisioning timing: the vanilla bridge network pays veth
// creation, bridge attachment and two iptables invocations (iptables'
// table lock and rule reload make it the slow part); these constants are
// what BrFusion's hot-plug path competes against in Fig. 8.
var (
	vethCreateStep   = bootStep{Mean: 8 * time.Millisecond, Jitter: 2 * time.Millisecond, CPUFraction: 0.7}
	bridgeAttachStep = bootStep{Mean: 3 * time.Millisecond, Jitter: 1 * time.Millisecond, CPUFraction: 0.7}
	iptablesRuleStep = bootStep{Mean: 14 * time.Millisecond, Jitter: 5 * time.Millisecond, CPUFraction: 0.5}
	ifaceConfigStep  = bootStep{Mean: 4 * time.Millisecond, Jitter: 1 * time.Millisecond, CPUFraction: 0.7}
)
