// Package container models the container engine running inside each VM
// (Docker CE in the paper's testbed): images, containers and pod
// sandboxes with their own network namespaces, the default bridge+NAT
// network (docker0 + MASQUERADE + port publishing), and a step-by-step
// start-up sequence whose durations drive the paper's container boot
// time comparison (Fig. 8).
package container

import (
	"fmt"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/sim"
)

// State is a container lifecycle state.
type State int

// Lifecycle states.
const (
	Created State = iota
	Starting
	Running
	Stopped
)

// String names the state.
func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Starting:
		return "starting"
	case Running:
		return "running"
	case Stopped:
		return "stopped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Image is a container image reference.
type Image struct {
	Name   string
	SizeMB int
}

// PortMap publishes a container port on the node.
type PortMap struct {
	Proto    netsim.Proto
	NodePort uint16
	CtrPort  uint16
}

// Provisioner wires a container/sandbox namespace to a network. The
// default is the engine's bridge+NAT; BrFusion and Hostlo install their
// own through the CNI layer.
type Provisioner interface {
	// Provision attaches networking to the sandbox namespace and calls
	// done when the namespace can pass traffic. ports are the publish
	// requests (bridge NAT honours them; BrFusion doesn't need them —
	// the pod has a first-class address).
	Provision(c *Container, ports []PortMap, done func(netsim.IPv4, error))
	// Release tears the attachment down. Releasing a container that was
	// never provisioned (or releasing twice) is an error: silent
	// tolerance here hid real double-free bugs in callers.
	Release(c *Container) error
	// Name identifies the provisioner in diagnostics.
	Name() string
}

// Config wires an engine to its node (the VM it runs in).
type Config struct {
	Node      string // node name, e.g. the VM name
	Eng       *sim.Engine
	Net       *netsim.Net
	NS        *netsim.NetNS // node root namespace
	CPU       *netsim.CPU   // node kernel lane
	EntityCPU func(entity string) *netsim.CPU
	// Uplink is the node's primary interface (for masquerading container
	// traffic out of the node).
	Uplink string
	// Boot overrides the start-up timing profile (nil = DefaultBootProfile).
	Boot *BootProfile
	// BridgeAddr/BridgeNet configure the default container network
	// (zero values pick Docker's 172.17.0.1/16).
	BridgeAddr netsim.IPv4
	BridgeNet  netsim.Prefix
}

// Engine is the per-node container engine.
type Engine struct {
	cfg  Config
	rng  *sim.Rand
	boot BootProfile

	images     map[string]Image
	containers map[string]*Container

	// Default bridge network (docker0 equivalent).
	bridge  *netsim.Bridge
	briNet  netsim.Prefix
	ipNext  int
	defProv *bridgeNAT
}

// NewEngine starts a container engine on the node and creates its
// default bridge network with masquerading.
func NewEngine(cfg Config) *Engine {
	if cfg.BridgeNet.Bits == 0 {
		cfg.BridgeNet = netsim.MustPrefix(netsim.IP(172, 17, 0, 0), 16)
		cfg.BridgeAddr = netsim.IP(172, 17, 0, 1)
	}
	e := &Engine{
		cfg:        cfg,
		rng:        cfg.Eng.Rand().Fork(),
		boot:       DefaultBootProfile(),
		images:     make(map[string]Image),
		containers: make(map[string]*Container),
		briNet:     cfg.BridgeNet,
		ipNext:     2,
	}
	if cfg.Boot != nil {
		e.boot = *cfg.Boot
	}
	// A node running a container engine plus an orchestrator carries
	// long iptables chains on its forwarding path (Docker's DOCKER
	// chains, kube-proxy services): forwarded container packets pay for
	// them, locally terminated traffic does not.
	cfg.NS.ForwardChainScale = 2.4
	e.bridge = netsim.NewBridge(cfg.NS, "docker0")
	e.bridge.Iface().SetAddr(cfg.BridgeAddr, cfg.BridgeNet)
	cfg.NS.Filter.AddMasquerade(netsim.SNATRule{SrcNet: cfg.BridgeNet, OutDev: cfg.Uplink})
	e.defProv = &bridgeNAT{e: e}
	return e
}

// Node returns the node name.
func (e *Engine) Node() string { return e.cfg.Node }

// SetBootProfile swaps the start-up timing model (e.g. tests run fast,
// the Fig. 8 experiment uses realistic durations).
func (e *Engine) SetBootProfile(p BootProfile) { e.boot = p }

// Bridge returns the engine's default bridge (docker0).
func (e *Engine) Bridge() *netsim.Bridge { return e.bridge }

// DefaultProvisioner returns the bridge+NAT network.
func (e *Engine) DefaultProvisioner() Provisioner { return e.defProv }

// Pull registers an image as locally available.
func (e *Engine) Pull(img Image) { e.images[img.Name] = img }

// HasImage reports whether the image is cached locally.
func (e *Engine) HasImage(name string) bool { _, ok := e.images[name]; return ok }

// Containers returns the engine's containers by name.
func (e *Engine) Containers() map[string]*Container {
	out := make(map[string]*Container, len(e.containers))
	for k, v := range e.containers {
		out[k] = v
	}
	return out
}

// allocIP hands out the next container address on the default bridge.
func (e *Engine) allocIP() netsim.IPv4 {
	ip := e.briNet.Host(e.ipNext)
	e.ipNext++
	return ip
}

// Spec describes a container to run.
type Spec struct {
	Name  string
	Image string
	// Entity is the cpuacct entity the container's work bills to
	// ("" = "app/<name>").
	Entity string
	// JoinPod joins an existing sandbox namespace instead of creating
	// one (Kubernetes containers join their pod's pause sandbox).
	JoinPod *Container
	// Network selects the provisioner (nil = default bridge NAT;
	// ignored when JoinPod is set).
	Network Provisioner
	// Ports to publish on the node (bridge NAT network only).
	Ports []PortMap
	// CPURequest/MemRequestMB are scheduling hints carried through to
	// the orchestrator.
	CPURequest   float64
	MemRequestMB int
}

// Container is a running (or starting) container.
type Container struct {
	Name   string
	Image  string
	Engine *Engine
	NS     *netsim.NetNS
	CPU    *netsim.CPU
	State  State
	IP     netsim.IPv4

	prov    Provisioner
	sandbox bool

	// CreatedAt/ReadyAt bound the start-up measurement window.
	CreatedAt, ReadyAt sim.Time
}

// Run creates and starts a container, invoking done(container, error)
// when its start sequence completes (network is provisioned and the
// entrypoint has initialised). The duration between the call and done is
// the paper's container start-up time.
func (e *Engine) Run(spec Spec, done func(*Container, error)) {
	if _, dup := e.containers[spec.Name]; dup {
		done(nil, fmt.Errorf("container: duplicate name %q", spec.Name))
		return
	}
	if !e.HasImage(spec.Image) {
		done(nil, fmt.Errorf("container: image %q not present", spec.Image))
		return
	}
	entity := spec.Entity
	if entity == "" {
		entity = "app/" + spec.Name
	}
	c := &Container{
		Name:      spec.Name,
		Image:     spec.Image,
		Engine:    e,
		State:     Starting,
		CreatedAt: e.cfg.Eng.Now(),
	}
	c.CPU = e.cfg.EntityCPU(entity)
	if spec.JoinPod != nil {
		c.NS = spec.JoinPod.NS
		c.prov = nil // sandbox owns the network
	} else {
		c.NS = e.cfg.Net.NewNS(e.cfg.Node+"/"+spec.Name, c.CPU)
		c.prov = spec.Network
		if c.prov == nil {
			c.prov = e.defProv
		}
	}
	e.containers[spec.Name] = c
	e.bootSequence(c, spec, done)
}

// RunSandbox creates a pod sandbox (the pause container): a namespace
// plus network, which later containers join.
func (e *Engine) RunSandbox(name, entity string, prov Provisioner, ports []PortMap, done func(*Container, error)) {
	e.Run(Spec{
		Name:    name,
		Image:   "pause",
		Entity:  entity,
		Network: prov,
		Ports:   ports,
	}, func(c *Container, err error) {
		if c != nil {
			c.sandbox = true
		}
		done(c, err)
	})
}

// Stop tears a container down and releases its network. The container
// is removed from the engine even when the release errors — the error
// reports residue (visible to vmm.Host.Leaks), not a retryable state.
func (e *Engine) Stop(name string) error {
	c, ok := e.containers[name]
	if !ok {
		return fmt.Errorf("container: no container %q", name)
	}
	c.State = Stopped
	delete(e.containers, name)
	if c.prov != nil {
		return c.prov.Release(c)
	}
	return nil
}

// bootSequence runs the start-up steps, calling the provisioner between
// namespace creation and entrypoint start — where the CNI call happens.
func (e *Engine) bootSequence(c *Container, spec Spec, done func(*Container, error)) {
	eng := e.cfg.Eng
	// fail abandons the boot: the container leaves the engine's table so
	// its name is reusable, and a network provisioned before the failing
	// step is released — a dead entrypoint must not strand its veth/NIC.
	fail := func(err error, provisioned bool) {
		c.State = Stopped
		delete(e.containers, c.Name)
		if provisioned && c.prov != nil {
			_ = c.prov.Release(c)
		}
		done(nil, err)
	}
	steps := []namedStep{{"daemon-prep", e.boot.DaemonPrep}, {"namespace-setup", e.boot.NamespaceSetup}}
	if spec.JoinPod == nil {
		// Joining a pod skips sandbox work.
		steps = append(steps, namedStep{"rootfs-mount", e.boot.RootfsMount})
	}
	run := e.stepRunner(c, steps, func(err error) {
		if err != nil {
			fail(err, false)
			return
		}
		provision := func(next func()) {
			if c.prov == nil {
				next()
				return
			}
			c.prov.Provision(c, spec.Ports, func(ip netsim.IPv4, err error) {
				if err != nil {
					// A failed provisioner rolls its own work back; there
					// is nothing for the engine to release.
					fail(err, false)
					return
				}
				c.IP = ip
				next()
			})
		}
		provision(func() {
			e.stepRunner(c, []namedStep{{"process-start", e.boot.ProcessStart}}, func(err error) {
				if err != nil {
					fail(err, true)
					return
				}
				c.State = Running
				c.ReadyAt = eng.Now()
				done(c, nil)
			})()
		})
	})
	run()
}

// namedStep pairs a boot step with its telemetry span name.
type namedStep struct {
	name string
	s    bootStep
}

// stepRunner chains boot steps: each occupies wall-clock time (mostly
// I/O wait), bills a fraction of it as node kernel CPU, and — when
// telemetry is on — appears as one span on the node's boot timeline. A
// step error aborts the chain and reaches then(err).
func (e *Engine) stepRunner(c *Container, steps []namedStep, then func(error)) func() {
	eng := e.cfg.Eng
	rec := e.cfg.Net.Rec
	inj := e.cfg.Net.Faults
	var run func(i int)
	run = func(i int) {
		if i >= len(steps) {
			then(nil)
			return
		}
		st := steps[i]
		// A boot fault ("boot/<step>") is decided when the step starts
		// but surfaces when its wall time elapses — a failing runc or
		// iptables invocation burns its time before erroring out.
		ferr := inj.OpFail("boot/" + st.name)
		d := st.s.sample(e.rng)
		if st.s.CPUFraction > 0 {
			// Charge (not Run): the step's wall time exceeds its CPU
			// fraction, and the delay is modelled by the After below.
			e.cfg.CPU.Charge(cpuacct.Sys, time.Duration(float64(d)*st.s.CPUFraction))
		}
		op := rec.OpBegin("boot/"+e.cfg.Node, c.Name+"/"+st.name)
		eng.After(d, func() {
			op.End(ferr)
			if ferr != nil {
				then(ferr)
				return
			}
			run(i + 1)
		})
	}
	return func() { run(0) }
}
