// Package parallel fans independent simulation runs out across a worker
// pool while keeping outputs deterministic.
//
// Every experiment in nestless is a set of independent simulations: one
// private sim.Engine per run, seeded explicitly, sharing no state. That
// makes figure sweeps (message sizes × modes), repeated boot samples,
// and per-user cloud traces embarrassingly parallel — as long as the
// results are merged in a scheduling-independent order. The contract
// here is exactly that: jobs are identified by index, each job writes
// only its own slot, and callers assemble output by iterating indices
// in order. Tables produced with any worker count are byte-identical to
// a serial run at the same seed.
package parallel

import "sync"

// Run executes job(0..n-1), fanning out across at most workers
// goroutines. workers <= 1 (or n <= 1) degenerates to a plain serial
// loop with zero goroutine overhead, which is also the required path
// when runs share mutable state (e.g. a telemetry recorder's single
// timeline).
//
// job must be self-contained per index: own engine, own scenario, own
// result slot. Run returns when every job has completed.
func Run(n, workers int, job func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	// Static index striding, not a shared channel: zero allocation per
	// job, no contention, and the assignment of jobs to workers is a
	// pure function of (n, workers) — helpful when debugging a single
	// misbehaving job.
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(start int) {
			defer wg.Done()
			for i := start; i < n; i += workers {
				job(i)
			}
		}(w)
	}
	wg.Wait()
}
