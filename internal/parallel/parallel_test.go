package parallel

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		n := 37
		hits := make([]int32, n)
		Run(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, h)
			}
		}
	}
}

func TestRunZeroAndNegative(t *testing.T) {
	ran := false
	Run(0, 4, func(i int) { ran = true })
	Run(-3, 4, func(i int) { ran = true })
	if ran {
		t.Fatal("job ran for n <= 0")
	}
}

func TestRunSerialOrder(t *testing.T) {
	var order []int
	Run(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

// TestRunDeterministicMerge is the core contract: each job writes its
// own slot, and the merged result is identical for any worker count.
func TestRunDeterministicMerge(t *testing.T) {
	n := 64
	ref := make([]int, n)
	Run(n, 1, func(i int) { ref[i] = i * i })
	for _, workers := range []int{2, 3, 8, 16} {
		got := make([]int, n)
		Run(n, workers, func(i int) { got[i] = i * i })
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}
