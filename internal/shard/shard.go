// Package shard replays one trace event stream across N independent
// cluster shards. Each logical world is an authoritative cluster
// simulation on its own engine — its own clock, fault stream and
// autoscaler — fed a deterministic hash-partition of the trace (by
// user, so one tenant's pods land together). Worlds only touch at
// epoch barriers: every BarrierEvery of virtual time the runner stops
// all worlds at the same instant, folds their state digests, and
// drains the explicit transfer mailboxes that carry pods between
// worlds (cross-shard migration of long-pending pods).
//
// The determinism contract: the number of logical WORLDS fixes the
// partition and every barrier decision, while Shards only picks how
// many goroutines execute those worlds between barriers. Worlds never
// share mutable state and the barrier phases run serially in world
// index order, so the merged results, trajectories, digests and
// telemetry are byte-identical for any shard count — replaying at
// -shards 8 is a wall-clock optimisation, never a different
// experiment. The equivalence suite pins this bit for bit, fault
// schedules included.
//
// By default the feed of epoch N+1 is pipelined with the advance of
// epoch N: events are prefetched into per-world mailboxes (double-
// buffered, reused across epochs) on the main goroutine while the
// worlds execute the previous epoch in parallel. Each mailbox entry
// carries the trace read sequence, and a barrier's migration decisions
// re-route the already-prefetched mailboxes by a seq-ordered merge, so
// every world ingests exactly the serial feed order restricted to it —
// the pipelining is a wall-clock optimisation under the same
// byte-identity contract as Shards (Config.SerialFeed pins the
// reference path).
package shard

import (
	"fmt"
	"io"
	"sort"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/ctrace"
	"nestless/internal/parallel"
	"nestless/internal/sim"
)

// worldSeedStride decorrelates per-world fault streams, a large prime
// (distinct from the population runner's user stride) so world and
// user seed ladders never collide.
const worldSeedStride = 999_983

// Config shapes one sharded replay.
type Config struct {
	// Worlds is the number of logical cluster worlds the trace is
	// hash-partitioned over (default 8). This — not Shards — defines
	// the experiment: changing it changes the partition and therefore
	// the results.
	Worlds int
	// Shards is the number of goroutines executing worlds between
	// barriers (default 1). Any value produces byte-identical output; a
	// telemetry recorder forces 1 (single shared timeline).
	Shards int
	// BarrierEvery is the epoch length: how often all worlds stop at
	// the same virtual instant for the digest fold and the transfer
	// drain (default 15m).
	BarrierEvery time.Duration
	// MigrateAfter enables cross-world migration: at each barrier,
	// pods pending longer than this are transferred to another world
	// (see MigratePolicy). Zero disables migration.
	MigrateAfter time.Duration
	// MigratePolicy picks the destination world for each transferred
	// pod: "least-loaded" (the default; lowest pending-queue depth,
	// ties to the lowest index) or "locality" (the pod's original
	// user-partition world when that is not where it is stuck, else
	// least-loaded). Applied serially in index order at the barrier, so
	// any policy keeps the byte-identity contract across shard counts.
	MigratePolicy string
	// SerialFeed disables the pipelined feed: epochs run strictly
	// feed-then-advance like the pre-pipelining runner. The zero value
	// (pipelining on) is byte-identical to it — SerialFeed exists as
	// the equivalence pin and for debugging. A telemetry recorder
	// forces it (single shared timeline).
	SerialFeed bool
	// Cluster is the per-world template. Pods must be empty (the trace
	// is the workload); world w runs with Seed + w*worldSeedStride.
	Cluster cluster.Config
	// Audit runs the leak/conservation checker on every world after
	// the horizon and fails the replay on any finding (tests).
	Audit bool
}

// Result is the merged outcome of one sharded replay.
type Result struct {
	// Worlds holds each world's full result, in world index order.
	Worlds []cluster.Result
	// Merged is the population view: counters summed across worlds,
	// trajectories merged pointwise. TTSP95 and FleetTypes do not
	// compose across worlds and are left zero/nil; TTSMean is the
	// exact population mean recomputed from the summed TTSSum.
	Merged cluster.Result
	// Digest folds every world's per-epoch state digest in (epoch,
	// world) order — the replay's schedule-independence fingerprint.
	Digest uint64
	// Epochs is the number of barrier intervals executed.
	Epochs int
	// Migrations counts pods transferred between worlds.
	Migrations int
	// Event accounting for the consumed stream.
	Events, Submits, Ends int
	// BeyondHorizon counts submits past the horizon (never fed).
	BeyondHorizon int
}

// destPolicy picks the destination world for one transferred pod.
// Policies run serially at the barrier in (world, mailbox) order and
// may read any world's state through its barrier-safe accessors.
type destPolicy func(worlds []*cluster.Cluster, src int, tr cluster.Transfer) int

// leastLoaded is the default migration policy: the other world with the
// shallowest pending queue, ties to the lowest index.
func leastLoaded(worlds []*cluster.Cluster, src int, _ cluster.Transfer) int {
	dest := -1
	for d := range worlds {
		if d == src {
			continue
		}
		if dest < 0 || worlds[d].QueueLen() < worlds[dest].QueueLen() {
			dest = d
		}
	}
	return dest
}

// locality prefers the pod's original user-partition world — a pod
// bounced around by earlier migrations goes home, where its tenant's
// other pods (and the fleet shaped by them) live. When the pod is
// stuck in its home world, falls back to least-loaded.
func locality(worlds []*cluster.Cluster, src int, tr cluster.Transfer) int {
	key := tr.User
	if key == "" {
		key = tr.Pod.ID
	}
	if home := ctrace.PartitionKey(key, len(worlds)); home != src {
		return home
	}
	return leastLoaded(worlds, src, tr)
}

// pickPolicy resolves the MigratePolicy knob.
func pickPolicy(name string) (destPolicy, error) {
	switch name {
	case "", "least-loaded":
		return leastLoaded, nil
	case "locality":
		return locality, nil
	}
	return nil, fmt.Errorf("shard: unknown migrate policy %q (want least-loaded or locality)", name)
}

// mailEvent is one prefetched trace event in a per-world mailbox. seq
// is the global trace read sequence: re-routing a mailbox after a
// migration barrier merges by seq, so each world's ingest order is
// exactly the serial feed order restricted to that world.
type mailEvent struct {
	ev  ctrace.Event
	seq uint64
}

// replayer is one sharded replay in flight.
type replayer struct {
	cfg     Config
	pick    destPolicy
	worlds  []*cluster.Cluster
	horizon sim.Time
	epoch   sim.Time
	res     Result

	// moved routes a migrated pod's later end events to the world that
	// now owns it, overriding the hash partition. delta is the single
	// barrier's slice of it, used to re-route prefetched mailboxes
	// (nil in serial-feed mode).
	moved map[string]int
	delta map[string]int

	// Trace cursor.
	src     ctrace.Source
	held    ctrace.Event
	hasHeld bool
	eof     bool
	readSeq uint64
}

// Replay drains src through cfg.Worlds cluster worlds to the horizon
// and merges the results. src must yield time-ordered events (every
// ctrace source does).
func Replay(src ctrace.Source, cfg Config) (Result, error) {
	if cfg.Worlds <= 0 {
		cfg.Worlds = 8
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.BarrierEvery <= 0 {
		cfg.BarrierEvery = 15 * time.Minute
	}
	if len(cfg.Cluster.Pods) != 0 {
		return Result{}, fmt.Errorf("shard: Cluster.Pods must be empty (the trace is the workload)")
	}
	pick, err := pickPolicy(cfg.MigratePolicy)
	if err != nil {
		return Result{}, err
	}
	serialRec := cfg.Cluster.Rec != nil
	if serialRec {
		cfg.Shards = 1
		cfg.SerialFeed = true
	}

	r := &replayer{cfg: cfg, pick: pick, src: src, moved: map[string]int{}}
	r.worlds = make([]*cluster.Cluster, cfg.Worlds)
	for w := range r.worlds {
		wcfg := cfg.Cluster
		wcfg.Seed = cfg.Cluster.Seed + int64(w)*worldSeedStride
		r.worlds[w] = cluster.New(wcfg)
		r.worlds[w].Start()
	}
	r.horizon = r.worlds[0].Horizon()
	r.epoch = sim.Time(cfg.BarrierEvery)

	if cfg.SerialFeed {
		err = r.runSerial(serialRec)
	} else {
		err = r.runPipelined()
	}
	if err != nil {
		return Result{}, err
	}
	if err := r.drainTail(); err != nil {
		return Result{}, err
	}
	// Finish phase: close every world's books in index order.
	r.res.Worlds = make([]cluster.Result, cfg.Worlds)
	for w := range r.worlds {
		r.res.Worlds[w] = r.worlds[w].Finish()
		if cfg.Audit {
			if leaks := r.worlds[w].Leaks(); len(leaks) > 0 {
				return Result{}, fmt.Errorf("shard: world %d leaks: %v", w, leaks)
			}
		}
	}
	r.res.Merged = merge(r.res.Worlds)
	return r.res, nil
}

// route maps one event to its world: the hash partition, overridden by
// the moved map for end events of migrated pods.
func (r *replayer) route(ev ctrace.Event) int {
	if ev.Kind != ctrace.Submit {
		if w, ok := r.moved[ev.Pod]; ok {
			return w
		}
	}
	return ctrace.Partition(ev, r.cfg.Worlds)
}

// next pulls the trace cursor: the held event if one is parked, else
// the source. ok is false at EOF.
func (r *replayer) next() (ctrace.Event, bool, error) {
	if r.hasHeld {
		r.hasHeld = false
		return r.held, true, nil
	}
	ev, err := r.src.Next()
	if err == io.EOF {
		r.eof = true
		return ctrace.Event{}, false, nil
	}
	if err != nil {
		return ctrace.Event{}, false, err
	}
	return ev, true, nil
}

// book counts one consumed in-horizon event.
func (r *replayer) book(ev ctrace.Event) {
	r.res.Events++
	if ev.Kind == ctrace.Submit {
		r.res.Submits++
	} else {
		r.res.Ends++
	}
}

// runSerial is the reference epoch loop: feed everything up to the
// barrier, then advance every world — strictly in that order. The
// telemetry path (one shared timeline) requires it; SerialFeed pins it
// for equivalence tests.
func (r *replayer) runSerial(serialRec bool) error {
	for t := sim.Time(0); t < r.horizon; {
		end := t + r.epoch
		if end > r.horizon {
			end = r.horizon
		}
		// Feed phase: route every event up to the barrier. Engines are
		// parked at t, so scheduling is cheap appends to their heaps.
		for !r.eof {
			ev, ok, err := r.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if sim.Time(ev.Time) > end {
				r.held, r.hasHeld = ev, true
				break
			}
			r.book(ev)
			if err := r.worlds[r.route(ev)].FeedEvent(ev); err != nil {
				return err
			}
		}
		// Advance phase: every world runs independently to the barrier.
		if serialRec {
			for w := range r.worlds {
				r.worlds[w].Activate(fmt.Sprintf("world-%d", w))
				r.worlds[w].Advance(end)
			}
		} else {
			parallel.Run(r.cfg.Worlds, r.cfg.Shards, func(w int) {
				r.worlds[w].Advance(end)
			})
		}
		if err := r.barrier(end); err != nil {
			return err
		}
		t = end
	}
	return nil
}

// runPipelined overlaps the serial feed of epoch N+1 with the parallel
// advance of epoch N. Per-world mailboxes are double-buffered: the
// worlds ingest and execute the current buffer on worker goroutines
// while the main goroutine prefetches the next epoch from the trace.
// After the barrier's migration drain, mailboxes already prefetched for
// moved pods are re-routed by a seq-ordered merge, so every world still
// ingests the serial feed order restricted to it.
func (r *replayer) runPipelined() error {
	cur := make([][]mailEvent, r.cfg.Worlds)
	next := make([][]mailEvent, r.cfg.Worlds)
	errs := make([]error, r.cfg.Worlds)
	r.delta = map[string]int{}

	// The first epoch has no previous epoch to overlap with, so
	// mailboxing it would buy nothing but the buffer copies — and on
	// front-loaded traces (replays starting at t=0) epoch zero is the
	// largest. Feed it directly, exactly as the serial loop would; the
	// worlds are parked at 0 and no migration has happened yet, so the
	// per-world event order is identical either way.
	firstEnd := r.epoch
	if firstEnd > r.horizon {
		firstEnd = r.horizon
	}
	if err := r.feedDirect(firstEnd); err != nil {
		return err
	}
	for t := sim.Time(0); t < r.horizon; {
		end := t + r.epoch
		if end > r.horizon {
			end = r.horizon
		}
		// Advance phase on workers: each world ingests its mailbox (the
		// engine is parked at t, exactly where the serial feed would
		// deliver these events) and runs to the barrier.
		done := make(chan struct{})
		go func() {
			parallel.Run(r.cfg.Worlds, r.cfg.Shards, func(w int) {
				for _, me := range cur[w] {
					if err := r.worlds[w].FeedEvent(me.ev); err != nil {
						errs[w] = err
						return
					}
				}
				r.worlds[w].Advance(end)
			})
			close(done)
		}()
		// Overlapped feed phase: prefetch the next epoch while the
		// worlds run. Routing uses the moved map as of the last barrier;
		// this barrier's migrations re-route the buffer below.
		var preErr error
		if end < r.horizon {
			nextEnd := end + r.epoch
			if nextEnd > r.horizon {
				nextEnd = r.horizon
			}
			preErr = r.prefetch(next, nextEnd)
		}
		<-done
		for w := range errs {
			if errs[w] != nil {
				return errs[w]
			}
		}
		if preErr != nil {
			return preErr
		}
		if err := r.barrier(end); err != nil {
			return err
		}
		reroute(next, r.delta)
		cur, next = next, cur
		for w := range next {
			next[w] = next[w][:0]
		}
		t = end
	}
	return nil
}

// feedDirect feeds every event up to end straight into its world,
// bypassing the mailboxes. Only valid while the worlds are parked with
// no concurrent advance in flight (the first epoch).
func (r *replayer) feedDirect(end sim.Time) error {
	for !r.eof {
		ev, ok, err := r.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if sim.Time(ev.Time) > end {
			r.held, r.hasHeld = ev, true
			break
		}
		r.book(ev)
		if err := r.worlds[r.route(ev)].FeedEvent(ev); err != nil {
			return err
		}
		r.readSeq++
	}
	return nil
}

// prefetch fills one mailbox buffer with every event up to end (the
// consumed-event counters are booked here, on the main goroutine).
// Events past end park in the held slot for the next epoch.
func (r *replayer) prefetch(buf [][]mailEvent, end sim.Time) error {
	for !r.eof {
		ev, ok, err := r.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if sim.Time(ev.Time) > end {
			r.held, r.hasHeld = ev, true
			break
		}
		r.book(ev)
		w := r.route(ev)
		buf[w] = append(buf[w], mailEvent{ev: ev, seq: r.readSeq})
		r.readSeq++
	}
	return nil
}

// reroute applies one barrier's migration delta to an already-
// prefetched mailbox buffer: end events of pods that just moved leave
// their old world's mailbox and merge into the new owner's by trace
// seq, reproducing the order a serial feed would have delivered.
func reroute(buf [][]mailEvent, delta map[string]int) {
	if len(delta) == 0 {
		return
	}
	var movedOut []mailEvent
	var dests []int
	for w := range buf {
		kept := buf[w][:0]
		for _, me := range buf[w] {
			if me.ev.Kind != ctrace.Submit {
				if d, ok := delta[me.ev.Pod]; ok && d != w {
					movedOut = append(movedOut, me)
					dests = append(dests, d)
					continue
				}
			}
			kept = append(kept, me)
		}
		buf[w] = kept
	}
	if len(movedOut) == 0 {
		return
	}
	touched := map[int]bool{}
	for i, me := range movedOut {
		buf[dests[i]] = append(buf[dests[i]], me)
		touched[dests[i]] = true
	}
	for d := range touched {
		b := buf[d]
		sort.Slice(b, func(i, j int) bool { return b[i].seq < b[j].seq })
	}
}

// barrier runs the serial, index-ordered epoch close: the digest fold
// and (between interior barriers) the migration drain.
func (r *replayer) barrier(end sim.Time) error {
	r.res.Epochs++
	for w := range r.worlds {
		r.res.Digest = fold(r.res.Digest, r.worlds[w].Digest())
	}
	// Transfer phase: skipped at the final barrier — a pod injected at
	// the horizon would never see a schedule pass.
	if r.delta != nil {
		clear(r.delta)
	}
	if r.cfg.MigrateAfter > 0 && r.cfg.Worlds > 1 && end < r.horizon {
		if err := r.drainTransfers(); err != nil {
			return err
		}
	}
	return nil
}

// drainTransfers is the barrier's migration phase: every world's
// transfer-out mailbox empties into the world the configured policy
// picks, and the moved map re-routes the pods' future end events.
// Serial and index-ordered, so the outcome is independent of how
// worlds were executed.
func (r *replayer) drainTransfers() error {
	for w := range r.worlds {
		for _, tr := range r.worlds[w].TransferOut(r.cfg.MigrateAfter) {
			dest := r.pick(r.worlds, w, tr)
			if err := r.worlds[dest].InjectTransfer(tr); err != nil {
				return err
			}
			r.moved[tr.Pod.ID] = dest
			if r.delta != nil {
				r.delta[tr.Pod.ID] = dest
			}
			r.res.Migrations++
		}
	}
	return nil
}

// drainTail books whatever the trace holds past the horizon: counted,
// never fed.
func (r *replayer) drainTail() error {
	if r.hasHeld {
		r.hasHeld = false
		r.pastHorizon(r.held)
	}
	for !r.eof {
		ev, ok, err := r.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		r.pastHorizon(ev)
	}
	return nil
}

// pastHorizon books one unfed tail event.
func (r *replayer) pastHorizon(ev ctrace.Event) {
	r.res.Events++
	if ev.Kind == ctrace.Submit {
		r.res.Submits++
		r.res.BeyondHorizon++
		r.worlds[r.route(ev)].NoteBeyondHorizon()
	} else {
		r.res.Ends++
	}
}

// fold mixes one world digest into the running replay digest (FNV-1a
// over the digest's bytes).
func fold(h, v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	if h == 0 {
		h = offset
	}
	for s := 0; s < 64; s += 8 {
		h ^= (v >> s) & 0xff
		h *= prime
	}
	return h
}

// merge sums world results into the population view. Counters and
// integrals add; the trajectory merges pointwise (worlds share
// SampleEvery and Horizon); TTSMean is recomputed from the exact sums;
// TTSMax is the max of maxes. TTSP95 and FleetTypes do not compose
// across independent worlds and stay zero/nil — read them per world.
func merge(worlds []cluster.Result) cluster.Result {
	var m cluster.Result
	if len(worlds) == 0 {
		return m
	}
	m.Policy = worlds[0].Policy
	for _, r := range worlds {
		m.Arrived += r.Arrived
		m.BeyondHorizon += r.BeyondHorizon
		m.Scheduled += r.Scheduled
		m.Departed += r.Departed
		m.Running += r.Running
		m.StillPending += r.StillPending
		m.Failed += r.Failed
		m.Displaced += r.Displaced
		m.Reschedules += r.Reschedules
		m.Kills += r.Kills
		m.TransferredIn += r.TransferredIn
		m.TransferredOut += r.TransferredOut
		m.ScaleUps += r.ScaleUps
		m.ScaleDowns += r.ScaleDowns
		m.ProvisionRetries += r.ProvisionRetries
		m.OptimizerRuns += r.OptimizerRuns
		m.OptimizerFull += r.OptimizerFull
		m.OptimizerMoves += r.OptimizerMoves
		m.PeakNodes += r.PeakNodes
		m.FinalNodes += r.FinalNodes
		m.ReconcileRounds += r.ReconcileRounds
		m.ReconcileActions += r.ReconcileActions
		m.SpotProvisions += r.SpotProvisions
		m.SpotRevocations += r.SpotRevocations
		m.OnDemandFallbacks += r.OnDemandFallbacks
		m.ZoneKills += r.ZoneKills
		for i, v := range r.ZoneSpread {
			if i >= len(m.ZoneSpread) {
				m.ZoneSpread = append(m.ZoneSpread, 0)
			}
			m.ZoneSpread[i] += v
		}
		m.CostDollars += r.CostDollars
		m.FinalCostPerH += r.FinalCostPerH
		m.CostSpotDollars += r.CostSpotDollars
		m.CostOnDemandDollars += r.CostOnDemandDollars
		m.TTSSum += r.TTSSum
		if r.TTSMax > m.TTSMax {
			m.TTSMax = r.TTSMax
		}
	}
	if m.Scheduled > 0 {
		m.TTSMean = m.TTSSum / time.Duration(m.Scheduled)
	}
	m.Samples = cluster.MergeTrajectories(worlds)
	return m
}
