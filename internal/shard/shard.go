// Package shard replays one trace event stream across N independent
// cluster shards. Each logical world is an authoritative cluster
// simulation on its own engine — its own clock, fault stream and
// autoscaler — fed a deterministic hash-partition of the trace (by
// user, so one tenant's pods land together). Worlds only touch at
// epoch barriers: every BarrierEvery of virtual time the runner stops
// all worlds at the same instant, folds their state digests, and
// drains the explicit transfer mailboxes that carry pods between
// worlds (cross-shard migration of long-pending pods).
//
// The determinism contract: the number of logical WORLDS fixes the
// partition and every barrier decision, while Shards only picks how
// many goroutines execute those worlds between barriers. Worlds never
// share mutable state and the barrier phases run serially in world
// index order, so the merged results, trajectories, digests and
// telemetry are byte-identical for any shard count — replaying at
// -shards 8 is a wall-clock optimisation, never a different
// experiment. The equivalence suite pins this bit for bit, fault
// schedules included.
package shard

import (
	"fmt"
	"io"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/ctrace"
	"nestless/internal/parallel"
	"nestless/internal/sim"
)

// worldSeedStride decorrelates per-world fault streams, a large prime
// (distinct from the population runner's user stride) so world and
// user seed ladders never collide.
const worldSeedStride = 999_983

// Config shapes one sharded replay.
type Config struct {
	// Worlds is the number of logical cluster worlds the trace is
	// hash-partitioned over (default 8). This — not Shards — defines
	// the experiment: changing it changes the partition and therefore
	// the results.
	Worlds int
	// Shards is the number of goroutines executing worlds between
	// barriers (default 1). Any value produces byte-identical output; a
	// telemetry recorder forces 1 (single shared timeline).
	Shards int
	// BarrierEvery is the epoch length: how often all worlds stop at
	// the same virtual instant for the digest fold and the transfer
	// drain (default 15m).
	BarrierEvery time.Duration
	// MigrateAfter enables cross-world migration: at each barrier,
	// pods pending longer than this are transferred to the
	// least-loaded other world. Zero disables migration.
	MigrateAfter time.Duration
	// Cluster is the per-world template. Pods must be empty (the trace
	// is the workload); world w runs with Seed + w*worldSeedStride.
	Cluster cluster.Config
	// Audit runs the leak/conservation checker on every world after
	// the horizon and fails the replay on any finding (tests).
	Audit bool
}

// Result is the merged outcome of one sharded replay.
type Result struct {
	// Worlds holds each world's full result, in world index order.
	Worlds []cluster.Result
	// Merged is the population view: counters summed across worlds,
	// trajectories merged pointwise. TTSP95 and FleetTypes do not
	// compose across worlds and are left zero/nil; TTSMean is the
	// exact population mean recomputed from the summed TTSSum.
	Merged cluster.Result
	// Digest folds every world's per-epoch state digest in (epoch,
	// world) order — the replay's schedule-independence fingerprint.
	Digest uint64
	// Epochs is the number of barrier intervals executed.
	Epochs int
	// Migrations counts pods transferred between worlds.
	Migrations int
	// Event accounting for the consumed stream.
	Events, Submits, Ends int
	// BeyondHorizon counts submits past the horizon (never fed).
	BeyondHorizon int
}

// Replay drains src through cfg.Worlds cluster worlds to the horizon
// and merges the results. src must yield time-ordered events (every
// ctrace source does).
func Replay(src ctrace.Source, cfg Config) (Result, error) {
	if cfg.Worlds <= 0 {
		cfg.Worlds = 8
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.BarrierEvery <= 0 {
		cfg.BarrierEvery = 15 * time.Minute
	}
	if len(cfg.Cluster.Pods) != 0 {
		return Result{}, fmt.Errorf("shard: Cluster.Pods must be empty (the trace is the workload)")
	}
	serial := cfg.Cluster.Rec != nil
	if serial {
		cfg.Shards = 1
	}

	worlds := make([]*cluster.Cluster, cfg.Worlds)
	for w := range worlds {
		wcfg := cfg.Cluster
		wcfg.Seed = cfg.Cluster.Seed + int64(w)*worldSeedStride
		worlds[w] = cluster.New(wcfg)
		worlds[w].Start()
	}
	horizon := worlds[0].Horizon()
	epoch := sim.Time(cfg.BarrierEvery)

	var res Result
	// moved routes a migrated pod's later end events to the world that
	// now owns it, overriding the hash partition.
	moved := map[string]int{}
	route := func(ev ctrace.Event) int {
		if ev.Kind != ctrace.Submit {
			if w, ok := moved[ev.Pod]; ok {
				return w
			}
		}
		return ctrace.Partition(ev, cfg.Worlds)
	}
	feed := func(ev ctrace.Event) error {
		res.Events++
		if ev.Kind == ctrace.Submit {
			res.Submits++
		} else {
			res.Ends++
		}
		if ev.Time > time.Duration(horizon) && ev.Kind == ctrace.Submit {
			res.BeyondHorizon++
			worlds[route(ev)].NoteBeyondHorizon()
			return nil
		}
		return worlds[route(ev)].FeedEvent(ev)
	}

	var held *ctrace.Event
	eof := false
	for t := sim.Time(0); t < horizon; {
		end := t + epoch
		if end > horizon {
			end = horizon
		}
		// Feed phase: route every event up to the barrier. Engines are
		// parked at t, so scheduling is cheap appends to their heaps.
		for !eof {
			var ev ctrace.Event
			if held != nil {
				ev, held = *held, nil
			} else {
				var err error
				ev, err = src.Next()
				if err == io.EOF {
					eof = true
					break
				}
				if err != nil {
					return Result{}, err
				}
			}
			if sim.Time(ev.Time) > end {
				held = &ev
				break
			}
			if err := feed(ev); err != nil {
				return Result{}, err
			}
		}
		// Advance phase: every world runs independently to the barrier.
		if serial {
			for w := range worlds {
				worlds[w].Activate(fmt.Sprintf("world-%d", w))
				worlds[w].Advance(end)
			}
		} else {
			parallel.Run(cfg.Worlds, cfg.Shards, func(w int) {
				worlds[w].Advance(end)
			})
		}
		res.Epochs++
		// Digest phase: fold world fingerprints in index order.
		for w := range worlds {
			res.Digest = fold(res.Digest, worlds[w].Digest())
		}
		// Transfer phase: drain mailboxes, serially, in index order.
		// Skipped at the final barrier — a pod injected at the horizon
		// would never see a schedule pass.
		if cfg.MigrateAfter > 0 && cfg.Worlds > 1 && end < horizon {
			if err := drainTransfers(worlds, moved, cfg.MigrateAfter, &res); err != nil {
				return Result{}, err
			}
		}
		t = end
	}
	// Tail drain: whatever the trace holds past the horizon is counted
	// but never fed.
	if held != nil {
		if err := pastHorizon(*held, worlds, route, &res); err != nil {
			return Result{}, err
		}
	}
	for !eof {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, err
		}
		if err := pastHorizon(ev, worlds, route, &res); err != nil {
			return Result{}, err
		}
	}
	// Finish phase: close every world's books in index order.
	res.Worlds = make([]cluster.Result, cfg.Worlds)
	for w := range worlds {
		res.Worlds[w] = worlds[w].Finish()
		if cfg.Audit {
			if leaks := worlds[w].Leaks(); len(leaks) > 0 {
				return Result{}, fmt.Errorf("shard: world %d leaks: %v", w, leaks)
			}
		}
	}
	res.Merged = merge(res.Worlds)
	return res, nil
}

// pastHorizon books one unfed tail event.
func pastHorizon(ev ctrace.Event, worlds []*cluster.Cluster, route func(ctrace.Event) int, res *Result) error {
	res.Events++
	if ev.Kind == ctrace.Submit {
		res.Submits++
		res.BeyondHorizon++
		worlds[route(ev)].NoteBeyondHorizon()
	} else {
		res.Ends++
	}
	return nil
}

// drainTransfers is the barrier's migration phase: every world's
// transfer-out mailbox empties into the least-loaded other world
// (pending-queue depth, ties to the lowest index), and the moved map
// re-routes the pods' future end events. Serial and index-ordered, so
// the outcome is independent of how worlds were executed.
func drainTransfers(worlds []*cluster.Cluster, moved map[string]int, olderThan time.Duration, res *Result) error {
	for w := range worlds {
		for _, tr := range worlds[w].TransferOut(olderThan) {
			dest := -1
			for d := range worlds {
				if d == w {
					continue
				}
				if dest < 0 || worlds[d].QueueLen() < worlds[dest].QueueLen() {
					dest = d
				}
			}
			if err := worlds[dest].InjectTransfer(tr); err != nil {
				return err
			}
			moved[tr.Pod.ID] = dest
			res.Migrations++
		}
	}
	return nil
}

// fold mixes one world digest into the running replay digest (FNV-1a
// over the digest's bytes).
func fold(h, v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	if h == 0 {
		h = offset
	}
	for s := 0; s < 64; s += 8 {
		h ^= (v >> s) & 0xff
		h *= prime
	}
	return h
}

// merge sums world results into the population view. Counters and
// integrals add; the trajectory merges pointwise (worlds share
// SampleEvery and Horizon); TTSMean is recomputed from the exact sums;
// TTSMax is the max of maxes. TTSP95 and FleetTypes do not compose
// across independent worlds and stay zero/nil — read them per world.
func merge(worlds []cluster.Result) cluster.Result {
	var m cluster.Result
	if len(worlds) == 0 {
		return m
	}
	m.Policy = worlds[0].Policy
	for _, r := range worlds {
		m.Arrived += r.Arrived
		m.BeyondHorizon += r.BeyondHorizon
		m.Scheduled += r.Scheduled
		m.Departed += r.Departed
		m.Running += r.Running
		m.StillPending += r.StillPending
		m.Failed += r.Failed
		m.Displaced += r.Displaced
		m.Reschedules += r.Reschedules
		m.Kills += r.Kills
		m.TransferredIn += r.TransferredIn
		m.TransferredOut += r.TransferredOut
		m.ScaleUps += r.ScaleUps
		m.ScaleDowns += r.ScaleDowns
		m.ProvisionRetries += r.ProvisionRetries
		m.OptimizerRuns += r.OptimizerRuns
		m.OptimizerFull += r.OptimizerFull
		m.OptimizerMoves += r.OptimizerMoves
		m.PeakNodes += r.PeakNodes
		m.FinalNodes += r.FinalNodes
		m.ReconcileRounds += r.ReconcileRounds
		m.ReconcileActions += r.ReconcileActions
		m.SpotProvisions += r.SpotProvisions
		m.SpotRevocations += r.SpotRevocations
		m.OnDemandFallbacks += r.OnDemandFallbacks
		m.ZoneKills += r.ZoneKills
		for i, v := range r.ZoneSpread {
			if i >= len(m.ZoneSpread) {
				m.ZoneSpread = append(m.ZoneSpread, 0)
			}
			m.ZoneSpread[i] += v
		}
		m.CostDollars += r.CostDollars
		m.FinalCostPerH += r.FinalCostPerH
		m.CostSpotDollars += r.CostSpotDollars
		m.CostOnDemandDollars += r.CostOnDemandDollars
		m.TTSSum += r.TTSSum
		if r.TTSMax > m.TTSMax {
			m.TTSMax = r.TTSMax
		}
	}
	if m.Scheduled > 0 {
		m.TTSMean = m.TTSSum / time.Duration(m.Scheduled)
	}
	m.Samples = cluster.MergeTrajectories(worlds)
	return m
}
