package shard

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/ctrace"
	"nestless/internal/faults"
	"nestless/internal/telemetry"
	"nestless/internal/trace"
)

// synthSource builds a quantized churny event stream.
func synthSource(t *testing.T, seed int64, users int) *ctrace.Slice {
	t.Helper()
	gcfg := trace.DefaultConfig(seed)
	gcfg.Users = users
	gcfg.MeanArrivalGap = 2 * time.Minute
	gcfg.MeanLifetime = 45 * time.Minute
	return ctrace.NewSynth(trace.Generate(gcfg))
}

func mustReplay(t *testing.T, src *ctrace.Slice, cfg Config) Result {
	t.Helper()
	src.Rewind()
	res, err := Replay(src, cfg)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return res
}

// TestShardCountEquivalence is the PR's gate: the same trace replayed
// at -shards 1 vs 2, 4 and 8 produces byte-identical merged results,
// world results, trajectories and digests — including under node-kill
// and provisioning-fault schedules, and for both policies.
func TestShardCountEquivalence(t *testing.T) {
	src := synthSource(t, 31, 60)
	specs := []string{
		"",
		"node/*:crash:p=0.02;node/provision:fail:p=0.1",
		"node/*:crash:p=0.03;node/provision:fail:p=0.2;node/provision:delay:n=2:d=60s",
	}
	for _, policy := range []cluster.Policy{cluster.Kubernetes, cluster.Hostlo} {
		for _, spec := range specs {
			var sched *faults.Schedule
			if spec != "" {
				var err error
				sched, err = faults.ParseSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
			}
			cfg := Config{
				Worlds:       8,
				MigrateAfter: 20 * time.Minute,
				Audit:        true,
				Cluster: cluster.Config{
					Policy:  policy,
					Seed:    7,
					Horizon: 6 * time.Hour,
					Faults:  sched,
				},
			}
			cfg.Shards = 1
			want := mustReplay(t, src, cfg)
			if want.Merged.Arrived == 0 || want.Merged.Departed == 0 {
				t.Fatalf("degenerate replay: %+v", want.Merged)
			}
			for _, shards := range []int{2, 4, 8} {
				cfg.Shards = shards
				got := mustReplay(t, src, cfg)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("policy %v faults %q: -shards %d diverged from -shards 1\n got %+v\nwant %+v",
						policy, spec, shards, got.Merged, want.Merged)
				}
			}
		}
	}
}

// TestBarrierInvariance pins that without migration the barrier period
// is a pure execution knob: worlds are independent, so replaying with
// a different epoch length changes only how often they synchronize,
// not any result. (Digests fold per epoch and legitimately differ.)
func TestBarrierInvariance(t *testing.T) {
	src := synthSource(t, 13, 40)
	cfg := Config{
		Worlds: 4,
		Audit:  true,
		Cluster: cluster.Config{
			Policy:  cluster.Kubernetes,
			Seed:    3,
			Horizon: 6 * time.Hour,
		},
	}
	cfg.BarrierEvery = 15 * time.Minute
	a := mustReplay(t, src, cfg)
	cfg.BarrierEvery = 7 * time.Minute
	b := mustReplay(t, src, cfg)
	if !reflect.DeepEqual(a.Worlds, b.Worlds) || !reflect.DeepEqual(a.Merged, b.Merged) {
		t.Fatal("barrier period changed replay results without migration")
	}
}

// TestMigrationEngages forces cross-world migration — one overloaded
// world with a long provisioning stall next to idle worlds — and
// checks the merged conservation and per-world books.
func TestMigrationEngages(t *testing.T) {
	// One user (one world gets everything), slow boots, eager migration.
	gcfg := trace.DefaultConfig(5)
	gcfg.Users = 2
	gcfg.MeanArrivalGap = 30 * time.Second
	gcfg.MeanLifetime = 3 * time.Hour
	src := ctrace.NewSynth(trace.Generate(gcfg))
	cfg := Config{
		Worlds:       4,
		Shards:       2,
		BarrierEvery: 10 * time.Minute,
		MigrateAfter: 5 * time.Minute,
		Audit:        true,
		Cluster: cluster.Config{
			Policy:    cluster.Kubernetes,
			Horizon:   4 * time.Hour,
			BootDelay: 40 * time.Minute,
		},
	}
	res, err := Replay(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("migration never engaged")
	}
	var in, out int
	for _, w := range res.Worlds {
		in += w.TransferredIn
		out += w.TransferredOut
	}
	if in != out || in != res.Migrations {
		t.Fatalf("transfer books: in %d out %d migrations %d", in, out, res.Migrations)
	}
	m := res.Merged
	if m.Arrived != m.Departed+m.Running+m.StillPending+m.Failed {
		t.Fatalf("merged conservation broken: %+v", m)
	}
	if m.Arrived+res.BeyondHorizon != res.Submits {
		t.Fatalf("submit accounting: arrived %d + beyond %d != submits %d",
			m.Arrived, res.BeyondHorizon, res.Submits)
	}
}

// TestMigrationEquivalence re-runs the migration-heavy scenario across
// shard counts: transfers are drained serially at barriers, so they
// must not break schedule independence.
func TestMigrationEquivalence(t *testing.T) {
	gcfg := trace.DefaultConfig(5)
	gcfg.Users = 2
	gcfg.MeanArrivalGap = 30 * time.Second
	gcfg.MeanLifetime = 3 * time.Hour
	users := trace.Generate(gcfg)
	cfg := Config{
		Worlds:       4,
		BarrierEvery: 10 * time.Minute,
		MigrateAfter: 5 * time.Minute,
		Audit:        true,
		Cluster: cluster.Config{
			Policy:    cluster.Kubernetes,
			Horizon:   4 * time.Hour,
			BootDelay: 40 * time.Minute,
		},
	}
	cfg.Shards = 1
	want, err := Replay(ctrace.NewSynth(users), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Migrations == 0 {
		t.Fatal("scenario no longer migrates")
	}
	for _, shards := range []int{2, 4} {
		cfg.Shards = shards
		got, err := Replay(ctrace.NewSynth(users), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("-shards %d diverged under migration", shards)
		}
	}
}

// TestTelemetryForcesSerial pins that a recorder yields one
// deterministic timeline regardless of the requested shard count, and
// that recording does not perturb the replay results.
func TestTelemetryForcesSerial(t *testing.T) {
	src := synthSource(t, 17, 20)
	base := Config{
		Worlds: 4,
		Audit:  true,
		Cluster: cluster.Config{
			Policy:  cluster.Kubernetes,
			Seed:    11,
			Horizon: 4 * time.Hour,
		},
	}
	record := func(shards int) (Result, string) {
		rec := telemetry.New()
		cfg := base
		cfg.Shards = shards
		cfg.Cluster.Rec = rec
		res := mustReplay(t, src, cfg)
		var buf bytes.Buffer
		if err := rec.WriteTextTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	r1, t1 := record(1)
	r4, t4 := record(4)
	if t1 != t4 {
		t.Fatal("telemetry timelines differ across shard counts")
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatal("results differ across shard counts with telemetry on")
	}
	cfg := base
	cfg.Shards = 4
	plain := mustReplay(t, src, cfg)
	if !reflect.DeepEqual(plain, r1) {
		t.Fatal("recording perturbed the replay results")
	}
}

// TestReplayRejectsPods pins the workload-source exclusivity guard.
func TestReplayRejectsPods(t *testing.T) {
	cfg := Config{Cluster: cluster.Config{Pods: []trace.Pod{{ID: "x"}}}}
	if _, err := Replay(ctrace.NewSlice(nil), cfg); err == nil {
		t.Fatal("Replay accepted Cluster.Pods")
	}
}
