package shard

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/ctrace"
	"nestless/internal/trace"
)

// benchSource builds a ~n-pod quantized event stream once; the
// measured loop replays the pre-parsed slice, so the benchmark times
// the sharded simulation — not CSV decoding (BenchmarkTraceParse times
// that). Users scale with n so the partition spreads load across all
// worlds.
func benchSource(n int) *ctrace.Slice {
	users := trace.Generate(trace.GenConfig{
		Seed:              23,
		Users:             n/5 + 1,
		MeanPodsPerUser:   6,
		HeavyUserFraction: 0.1,
		MeanArrivalGap:    90 * time.Second,
		MeanLifetime:      90 * time.Minute,
	})
	var pods int
	for i, u := range users {
		pods += len(u.Pods)
		if pods >= n {
			users = users[:i+1]
			break
		}
	}
	return ctrace.NewSynth(users)
}

// BenchmarkTraceReplay measures sharded replay throughput (pods/s) on
// a ~100k-pod trace at 1, 4 and 8 execution shards over 8 fixed
// worlds. The shard counts produce byte-identical results (pinned by
// TestShardCountEquivalence); the only thing that varies is wall
// clock, so the ratio between the rows IS the parallel speedup. On a
// single-core box the rows tie — the ≥2.5x 4-shard target needs the
// multi-core CI runner.
func BenchmarkTraceReplay(b *testing.B) {
	src := benchSource(100_000)
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("%dshard", shards), func(b *testing.B) {
			var arrived int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Rewind()
				res, err := Replay(src, Config{
					Worlds: 8,
					Shards: shards,
					Cluster: cluster.Config{
						Policy:  cluster.Kubernetes,
						Seed:    7,
						Horizon: 6 * time.Hour,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				arrived = res.Merged.Arrived
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(arrived*b.N)/secs, "pods/s")
			}
		})
	}
}

// BenchmarkTraceParse measures the streaming reader alone: rows/s over
// an in-memory CSV trace (gzip and file I/O excluded).
func BenchmarkTraceParse(b *testing.B) {
	var buf bytes.Buffer
	if err := ctrace.Write(&buf, benchSource(100_000), ctrace.CSV); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	var rows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := ctrace.NewReader(bytes.NewReader(data), ctrace.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
		rows = r.Stats().Rows
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(rows*b.N)/secs, "rows/s")
	}
}
