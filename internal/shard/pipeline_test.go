package shard

import (
	"os"
	"reflect"
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/ctrace"
	"nestless/internal/trace"
)

// migratorUsers builds a migration-heavy workload whose pod lifetimes
// are short enough that a pod transferred at one barrier has its end
// event inside the *next* epoch — which the pipelined runner has
// already prefetched, so the mailbox re-route path is exercised, not
// just the moved-map routing of the serial feed.
func migratorUsers(seed int64) []trace.User {
	gcfg := trace.DefaultConfig(seed)
	gcfg.Users = 2
	gcfg.MeanArrivalGap = 30 * time.Second
	gcfg.MeanLifetime = 12 * time.Minute
	return trace.Generate(gcfg)
}

// migratorConfig is the matching replay shape: one overloaded world
// (two users over four worlds), slow boots, eager migration.
func migratorConfig() Config {
	return Config{
		Worlds:       4,
		BarrierEvery: 10 * time.Minute,
		MigrateAfter: 5 * time.Minute,
		Audit:        true,
		Cluster: cluster.Config{
			Policy:    cluster.Kubernetes,
			Horizon:   4 * time.Hour,
			BootDelay: 40 * time.Minute,
		},
	}
}

// TestPipelineEquivalence is the pipelining gate: the overlapped feed
// must be byte-identical to the strict feed-then-advance reference at
// every shard count, for both migration policies, on a workload where
// prefetched mailboxes really do get re-routed after migration
// barriers.
func TestPipelineEquivalence(t *testing.T) {
	users := migratorUsers(5)
	for _, policy := range []string{"least-loaded", "locality"} {
		cfg := migratorConfig()
		cfg.MigratePolicy = policy
		cfg.SerialFeed = true
		cfg.Shards = 1
		want, err := Replay(ctrace.NewSynth(users), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want.Migrations == 0 {
			t.Fatalf("policy %s: scenario no longer migrates", policy)
		}
		cfg.SerialFeed = false
		for _, shards := range []int{1, 2, 4, 8} {
			cfg.Shards = shards
			got, err := Replay(ctrace.NewSynth(users), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("policy %s: pipelined -shards %d diverged from the serial feed\n got %+v\nwant %+v",
					policy, shards, got.Merged, want.Merged)
			}
		}
	}
}

// TestRerouteSeqOrder pins the mailbox re-route merge: a moved pod's
// events leave the old world's buffer and land in the new owner's in
// global trace-sequence order — the order a serial feed would have
// delivered — while submits never move.
func TestRerouteSeqOrder(t *testing.T) {
	me := func(seq uint64, kind ctrace.EventKind, pod string) mailEvent {
		return mailEvent{ev: ctrace.Event{Kind: kind, Pod: pod}, seq: seq}
	}
	buf := [][]mailEvent{
		{me(0, ctrace.Submit, "a"), me(2, ctrace.Kill, "m1"), me(5, ctrace.Finish, "m2"), me(7, ctrace.Submit, "m2")},
		{me(1, ctrace.Submit, "b"), me(4, ctrace.Finish, "c")},
	}
	reroute(buf, map[string]int{"m1": 1, "m2": 1, "b": 0})
	want := [][]mailEvent{
		// Submits stay put even when their pod is in the delta.
		{me(0, ctrace.Submit, "a"), me(7, ctrace.Submit, "m2")},
		{me(1, ctrace.Submit, "b"), me(2, ctrace.Kill, "m1"), me(4, ctrace.Finish, "c"), me(5, ctrace.Finish, "m2")},
	}
	if !reflect.DeepEqual(buf, want) {
		t.Fatalf("reroute merge:\n got %+v\nwant %+v", buf, want)
	}
	// A delta naming the pod's current world is a no-op.
	buf2 := [][]mailEvent{{me(0, ctrace.Kill, "x")}, nil}
	reroute(buf2, map[string]int{"x": 0})
	if len(buf2[0]) != 1 || len(buf2[1]) != 0 {
		t.Fatalf("same-world delta moved events: %+v", buf2)
	}
}

// policyWorlds builds four live worlds with world 2 holding a deep
// pending queue (slow boots, nothing schedulable yet) and the rest
// empty — the fixture the destination-policy unit tests read through
// QueueLen.
func policyWorlds(t *testing.T) []*cluster.Cluster {
	t.Helper()
	worlds := make([]*cluster.Cluster, 4)
	for w := range worlds {
		worlds[w] = cluster.New(cluster.Config{
			Policy:    cluster.Kubernetes,
			Horizon:   time.Hour,
			BootDelay: 40 * time.Minute,
			Seed:      int64(w),
		})
		worlds[w].Start()
	}
	for i, pod := range []string{"p1", "p2", "p3"} {
		ev := ctrace.Event{
			Time:       time.Duration(i) * time.Second,
			Kind:       ctrace.Submit,
			Pod:        pod,
			User:       "stuck",
			Containers: []trace.Container{{CPU: 0.05, Mem: 0.05}},
		}
		if err := worlds[2].FeedEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	for w := range worlds {
		worlds[w].Advance(5 * 60 * 1e9)
	}
	if worlds[2].QueueLen() == 0 {
		t.Fatal("fixture world 2 has no pending queue")
	}
	return worlds
}

// TestLeastLoadedPolicy pins the default destination choice: shallowest
// queue, ties to the lowest index, never the source.
func TestLeastLoadedPolicy(t *testing.T) {
	worlds := policyWorlds(t)
	var tr cluster.Transfer
	if got := leastLoaded(worlds, 2, tr); got != 0 {
		t.Fatalf("leastLoaded from loaded world = %d, want 0", got)
	}
	if got := leastLoaded(worlds, 0, tr); got != 1 {
		t.Fatalf("leastLoaded from world 0 = %d, want 1 (2 is loaded, ties go low)", got)
	}
}

// TestLocalityPolicy pins the locality choice: the pod goes to its
// user-partition home world unless it is already stuck there, in which
// case least-loaded takes over. Userless pods partition by pod ID.
func TestLocalityPolicy(t *testing.T) {
	worlds := policyWorlds(t)
	// Find user keys homed at world 3 and world 2.
	homed := func(want int) string {
		for _, u := range []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7", "u8", "u9"} {
			if ctrace.PartitionKey(u, 4) == want {
				return u
			}
		}
		t.Fatalf("no probe user homes at world %d", want)
		return ""
	}
	away := cluster.Transfer{User: homed(3)}
	if got := locality(worlds, 2, away); got != 3 {
		t.Fatalf("locality(away from home) = %d, want home 3", got)
	}
	stuck := cluster.Transfer{User: homed(2)}
	if got := locality(worlds, 2, stuck); got != 0 {
		t.Fatalf("locality(stuck at home) = %d, want least-loaded 0", got)
	}
	byPod := cluster.Transfer{Pod: trace.Pod{ID: homed(3)}}
	if got := locality(worlds, 0, byPod); got != 3 {
		t.Fatalf("locality(userless) = %d, want pod-ID home 3", got)
	}
}

// TestPickPolicyUnknown pins the knob's error surface.
func TestPickPolicyUnknown(t *testing.T) {
	if _, err := pickPolicy("steal-work"); err == nil {
		t.Fatal("pickPolicy accepted an unknown policy")
	}
	if _, err := Replay(ctrace.NewSlice(nil), Config{MigratePolicy: "nope"}); err == nil {
		t.Fatal("Replay accepted an unknown policy")
	}
}

// TestReplaySampleCap pins the bounded-trajectory contract end to end
// through the shard runner: a capped replay stores at most SampleCap
// windows per world with the full run's exact point count and final
// instant, and perturbs nothing outside the trajectories.
func TestReplaySampleCap(t *testing.T) {
	src := synthSource(t, 31, 40)
	base := Config{
		Worlds: 4,
		Audit:  true,
		Cluster: cluster.Config{
			Policy:      cluster.Kubernetes,
			Seed:        7,
			Horizon:     6 * time.Hour,
			SampleEvery: time.Minute,
		},
	}
	fullCfg := base
	fullCfg.Cluster.SampleCap = -1
	full := mustReplay(t, src, fullCfg)
	cap := 25
	capCfg := base
	capCfg.Cluster.SampleCap = cap
	capped := mustReplay(t, src, capCfg)

	for w := range capped.Worlds {
		cw, fw := capped.Worlds[w], full.Worlds[w]
		if len(cw.Samples) > cap {
			t.Fatalf("world %d: %d samples exceed cap %d", w, len(cw.Samples), cap)
		}
		if len(cw.Samples) >= len(fw.Samples) {
			t.Fatalf("world %d: cap did not shrink the trajectory (%d vs %d)", w, len(cw.Samples), len(fw.Samples))
		}
		var points int
		for _, s := range cw.Samples {
			points += s.Points
		}
		if points != len(fw.Samples) {
			t.Fatalf("world %d: windows cover %d points, full run has %d", w, points, len(fw.Samples))
		}
		last := cw.Samples[len(cw.Samples)-1]
		if fullLast := fw.Samples[len(fw.Samples)-1]; last.T != fullLast.T {
			t.Fatalf("world %d: final window instant %v, want %v", w, last.T, fullLast.T)
		}
	}
	// Everything but the trajectories is untouched.
	strip := func(r Result) Result {
		r.Merged.Samples = nil
		ws := make([]cluster.Result, len(r.Worlds))
		copy(ws, r.Worlds)
		for i := range ws {
			ws[i].Samples = nil
		}
		r.Worlds = ws
		return r
	}
	if !reflect.DeepEqual(strip(capped), strip(full)) {
		t.Fatal("SampleCap changed results outside the trajectory")
	}
}

// TestReplay3Day is the long-horizon bounded-memory smoke: a three-day
// replay keeps every world's trajectory under the default cap and stays
// byte-identical across shard counts with the pipelined feed on. Gated
// behind REPLAY_3D=1 — it replays a few hundred thousand events.
func TestReplay3Day(t *testing.T) {
	if os.Getenv("REPLAY_3D") == "" {
		t.Skip("set REPLAY_3D=1 to run the three-day replay smoke")
	}
	gcfg := trace.DefaultConfig(99)
	gcfg.Users = 500
	gcfg.MeanPodsPerUser = 400
	gcfg.MeanArrivalGap = 10 * time.Minute
	gcfg.MeanLifetime = 2 * time.Hour
	users := trace.Generate(gcfg)
	cfg := Config{
		Worlds:       8,
		MigrateAfter: 20 * time.Minute,
		Audit:        true,
		Cluster: cluster.Config{
			Policy:      cluster.Kubernetes,
			Seed:        7,
			Horizon:     72 * time.Hour,
			SampleEvery: time.Minute,
		},
	}
	cfg.Shards = 1
	want, err := Replay(ctrace.NewSynth(users), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Merged.Arrived == 0 || want.Epochs < 4*24*3 {
		t.Fatalf("degenerate three-day replay: %+v over %d epochs", want.Merged, want.Epochs)
	}
	for w, res := range want.Worlds {
		if len(res.Samples) > 512 {
			t.Fatalf("world %d trajectory unbounded: %d samples", w, len(res.Samples))
		}
	}
	for _, shards := range []int{2, 4, 8} {
		cfg.Shards = shards
		got, err := Replay(ctrace.NewSynth(users), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("-shards %d diverged on the three-day replay", shards)
		}
	}
}
