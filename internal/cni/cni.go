// Package cni is the simulator's Container Network Interface layer: the
// pluggable boundary through which the orchestrator provides networking
// to pods (§3.2: "extending the Kubernetes orchestrator ... is easily
// done with a Container Network Interface plugin").
//
// A plugin is a container.Provisioner with a registered name. The
// registry lets nodes select networks by name, and Chain composes a
// primary connectivity plugin with secondary attachments (the Hostlo
// endpoint rides alongside the pod's normal network).
package cni

import (
	"errors"
	"fmt"
	"sort"

	"nestless/internal/container"
	"nestless/internal/netsim"
)

// Plugin is a named pod-network provisioner.
type Plugin = container.Provisioner

// Registry maps plugin names to implementations for one node.
type Registry struct {
	plugins map[string]Plugin
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{plugins: make(map[string]Plugin)}
}

// Register adds a plugin. Re-registering a name replaces it.
func (r *Registry) Register(p Plugin) {
	r.plugins[p.Name()] = p
}

// Lookup returns the named plugin.
func (r *Registry) Lookup(name string) (Plugin, error) {
	p, ok := r.plugins[name]
	if !ok {
		return nil, fmt.Errorf("cni: no plugin %q (have %v)", name, r.Names())
	}
	return p, nil
}

// Names lists registered plugin names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.plugins))
	for n := range r.plugins {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Chain composes plugins: the first provides the pod's primary
// connectivity (its result IP becomes the pod IP), the rest attach
// secondary interfaces. Provision fails fast on the first error.
type Chain struct {
	Plugins []Plugin
}

// Name identifies the chain.
func (c *Chain) Name() string {
	n := "chain("
	for i, p := range c.Plugins {
		if i > 0 {
			n += ","
		}
		n += p.Name()
	}
	return n + ")"
}

// Provision runs every plugin in order. When plugin i fails, plugins
// 0..i-1 are released (in reverse) before the error is reported, so a
// half-provisioned chain never leaks attachments.
func (c *Chain) Provision(ctr *container.Container, ports []container.PortMap, done func(netsim.IPv4, error)) {
	if len(c.Plugins) == 0 {
		done(netsim.IPv4{}, fmt.Errorf("cni: empty chain"))
		return
	}
	var primary netsim.IPv4
	var step func(i int)
	step = func(i int) {
		if i >= len(c.Plugins) {
			done(primary, nil)
			return
		}
		c.Plugins[i].Provision(ctr, ports, func(ip netsim.IPv4, err error) {
			if err != nil {
				for j := i - 1; j >= 0; j-- {
					_ = c.Plugins[j].Release(ctr)
				}
				done(netsim.IPv4{}, fmt.Errorf("cni: plugin %s: %w", c.Plugins[i].Name(), err))
				return
			}
			if i == 0 {
				primary = ip
			}
			step(i + 1)
		})
	}
	step(0)
}

// Release tears down in reverse order. Every plugin is asked to release
// even when earlier ones error; the errors are joined.
func (c *Chain) Release(ctr *container.Container) error {
	var errs []error
	for i := len(c.Plugins) - 1; i >= 0; i-- {
		if err := c.Plugins[i].Release(ctr); err != nil {
			errs = append(errs, fmt.Errorf("cni: plugin %s: %w", c.Plugins[i].Name(), err))
		}
	}
	return errors.Join(errs...)
}
