package cni

import (
	"errors"
	"testing"

	"nestless/internal/container"
	"nestless/internal/netsim"
)

// fakePlugin records calls.
type fakePlugin struct {
	name       string
	ip         netsim.IPv4
	err        error
	releaseErr error
	adds       int
	releases   int
}

func (f *fakePlugin) Name() string { return f.name }
func (f *fakePlugin) Provision(_ *container.Container, _ []container.PortMap, done func(netsim.IPv4, error)) {
	f.adds++
	done(f.ip, f.err)
}
func (f *fakePlugin) Release(_ *container.Container) error {
	f.releases++
	return f.releaseErr
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	p := &fakePlugin{name: "bridge-nat"}
	r.Register(p)
	got, err := r.Lookup("bridge-nat")
	if err != nil || got != Plugin(p) {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := r.Lookup("missing"); err == nil {
		t.Fatal("missing plugin found")
	}
	r.Register(&fakePlugin{name: "brfusion"})
	names := r.Names()
	if len(names) != 2 || names[0] != "brfusion" || names[1] != "bridge-nat" {
		t.Fatalf("Names = %v", names)
	}
}

func TestChainRunsInOrderAndReturnsPrimaryIP(t *testing.T) {
	primary := &fakePlugin{name: "primary", ip: netsim.IP(10, 0, 0, 1)}
	secondary := &fakePlugin{name: "secondary", ip: netsim.IP(169, 254, 0, 1)}
	c := &Chain{Plugins: []Plugin{primary, secondary}}

	var got netsim.IPv4
	c.Provision(nil, nil, func(ip netsim.IPv4, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = ip
	})
	if got != primary.ip {
		t.Fatalf("chain returned %v, want primary %v", got, primary.ip)
	}
	if primary.adds != 1 || secondary.adds != 1 {
		t.Fatal("not all plugins ran")
	}
	if c.Name() != "chain(primary,secondary)" {
		t.Fatalf("Name = %q", c.Name())
	}
	if err := c.Release(nil); err != nil {
		t.Fatalf("Release = %v", err)
	}
	if primary.releases != 1 || secondary.releases != 1 {
		t.Fatal("release did not reach all plugins")
	}
}

func TestChainStopsOnError(t *testing.T) {
	bad := &fakePlugin{name: "bad", err: errors.New("boom")}
	after := &fakePlugin{name: "after"}
	c := &Chain{Plugins: []Plugin{bad, after}}
	var gotErr error
	c.Provision(nil, nil, func(_ netsim.IPv4, err error) { gotErr = err })
	if gotErr == nil {
		t.Fatal("chain swallowed the error")
	}
	if after.adds != 0 {
		t.Fatal("chain continued past the failure")
	}
}

func TestChainRollsBackOnMidFailure(t *testing.T) {
	first := &fakePlugin{name: "first", ip: netsim.IP(10, 0, 0, 1)}
	bad := &fakePlugin{name: "bad", err: errors.New("boom")}
	c := &Chain{Plugins: []Plugin{first, bad}}
	var gotErr error
	c.Provision(nil, nil, func(_ netsim.IPv4, err error) { gotErr = err })
	if gotErr == nil {
		t.Fatal("chain swallowed the error")
	}
	if first.releases != 1 {
		t.Fatalf("earlier plugin not rolled back: releases = %d", first.releases)
	}
}

func TestChainReleaseJoinsErrors(t *testing.T) {
	ok := &fakePlugin{name: "ok"}
	bad := &fakePlugin{name: "bad", releaseErr: errors.New("stuck")}
	c := &Chain{Plugins: []Plugin{ok, bad}}
	err := c.Release(nil)
	if err == nil {
		t.Fatal("release error swallowed")
	}
	if ok.releases != 1 {
		t.Fatal("release stopped at the failing plugin")
	}
}

func TestEmptyChainErrors(t *testing.T) {
	c := &Chain{}
	var gotErr error
	c.Provision(nil, nil, func(_ netsim.IPv4, err error) { gotErr = err })
	if gotErr == nil {
		t.Fatal("empty chain accepted")
	}
}
