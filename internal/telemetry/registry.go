package telemetry

import (
	"fmt"

	"nestless/internal/report"
	"nestless/internal/sim"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v float64 }

// Add increases the counter by d (negative d is ignored).
func (c *Counter) Add(d float64) {
	if d > 0 {
		c.v += d
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the accumulated count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a last-value metric.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the last recorded value.
func (g *Gauge) Value() float64 { return g.v }

// Registry is a deterministic collection of named instruments: counters,
// gauges and sample series. Instruments are created on first use and
// enumerate in registration order, so two same-seed runs render their
// metrics identically — the same hard requirement the simulator has.
type Registry struct {
	order    []string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	series   map[string]*sim.Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		series:   make(map[string]*sim.Series),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Series returns the named sample series, creating it on first use.
func (r *Registry) Series(name string) *sim.Series {
	if s, ok := r.series[name]; ok {
		return s
	}
	s := &sim.Series{}
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// Names returns all instrument names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Metrics flattens every instrument into report metrics, in
// registration order. Counters and gauges carry their value; series
// carry a summary digest.
func (r *Registry) Metrics() []report.Metric {
	out := make([]report.Metric, 0, len(r.order))
	for _, name := range r.order {
		switch {
		case r.counters[name] != nil:
			out = append(out, report.Metric{Name: name, Kind: "counter", Value: r.counters[name].Value()})
		case r.gauges[name] != nil:
			out = append(out, report.Metric{Name: name, Kind: "gauge", Value: r.gauges[name].Value()})
		case r.series[name] != nil:
			s := r.series[name]
			out = append(out, report.Metric{Name: name, Kind: "series",
				Value: fmt.Sprintf("n=%d mean=%.4g p99=%.4g", s.N(), s.Mean(), s.Percentile(99))})
		}
	}
	return out
}

// Table renders every instrument as one row, in registration order.
func (r *Registry) Table(title string) *report.Table {
	return report.MetricsTable(title, r.Metrics())
}
