// Package telemetry is nestless's deterministic tracing and metrics
// subsystem. One Recorder per experiment collects:
//
//   - CPU charge spans: every (category, duration) billed through a
//     netsim.CPU becomes one Chrome 'X' span, and rolls up into a
//     per-entity cpuacct.Usage — so summed span durations reconcile with
//     the accountant's breakdown by construction;
//   - per-frame flow contexts threaded through the datapath (pod veth →
//     bridge → netfilter → virtio → vhost → host bridge, and the Hostlo
//     reflect fan-out), exported as nestable async events;
//   - control-plane operation spans (QMP netdev_add/device_add/device_del,
//     CNI provisioning, container boot steps);
//   - per-station instruments (queue depth, busy/idle transitions, wake-up
//     penalties, utilization snapshots sampled on virtual-time ticks) via
//     the sim.StationProbe / sim.EngineProbe hook interfaces.
//
// Everything is stamped with virtual time, so the exported trace and the
// metrics tables are bit-identical across same-seed runs. A nil *Recorder
// is valid everywhere and records nothing; hot paths guard emission with a
// single nil check and allocate nothing when disabled.
package telemetry

import (
	"io"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/report"
	"nestless/internal/sim"
)

// Recorder is the per-experiment telemetry sink. Zero value is not usable;
// call New. All methods are safe on a nil receiver (they no-op), so call
// sites thread a *Recorder without guards.
type Recorder struct {
	tr  *Tracer
	reg *Registry

	// Virtual clock. When bound to an engine, timestamps are the engine's
	// clock plus offset; otherwise SetNow drives a manual clock (used by
	// tools without a simulation engine, e.g. costsim).
	eng    *sim.Engine
	offset sim.Time
	manual sim.Time
	maxTS  sim.Time

	// run labels everything recorded until the next BeginRun, so one
	// recorder can hold several scenario runs (fig 6 runs three) without
	// colliding entity or station names.
	run string

	// Tick sampling of station utilization.
	sampleEvery time.Duration
	nextTick    sim.Time
	gen         int
	watches     []*stationWatch

	// Per-entity CPU rollups mirroring what the accountant sees through
	// ChargeSpan, keyed by run-qualified entity name, in first-use order.
	rollups     map[string]*cpuacct.Usage
	rollupOrder []string

	flowSeq uint64
}

// New returns an empty recorder sampling utilization every millisecond of
// virtual time.
func New() *Recorder {
	return &Recorder{
		tr:          NewTracer(),
		reg:         NewRegistry(),
		sampleEvery: time.Millisecond,
		rollups:     make(map[string]*cpuacct.Usage),
	}
}

// SetSampleEvery changes the utilization sampling period (<= 0 disables
// tick sampling).
func (r *Recorder) SetSampleEvery(d time.Duration) {
	if r == nil {
		return
	}
	r.sampleEvery = d
}

// Tracer returns the underlying event tracer (nil on a nil recorder).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tr
}

// Metrics returns the instrument registry (nil on a nil recorder).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// BindEngine attaches the recorder to a simulation engine: timestamps
// follow the engine's virtual clock, offset past everything already
// recorded (so sequential runs lay out on one timeline), and the engine's
// probe hook drives tick sampling. The recorder never schedules engine
// events, so binding cannot perturb the simulation.
func (r *Recorder) BindEngine(eng *sim.Engine) {
	if r == nil || eng == nil {
		return
	}
	r.offset = r.maxTS
	r.eng = eng
	r.gen++
	if r.sampleEvery > 0 {
		r.nextTick = r.offset + r.sampleEvery
	}
	eng.Probe = r
}

// Rebind swaps the engine a recorder follows WITHOUT resetting the
// timeline cursors: offset, sample tick, generation and max timestamp
// all stay put. It exists for world snapshot/restore — the restored
// engine resumes at the captured virtual instant, so re-running
// BindEngine's offset jump would double every timestamp. A recorder
// that was never bound (no engine, nothing recorded) falls through to
// BindEngine, so a restored world with a brand-new recorder still gets
// a sane timeline.
func (r *Recorder) Rebind(eng *sim.Engine) {
	if r == nil || eng == nil {
		return
	}
	if r.eng == nil && r.maxTS == 0 && r.offset == 0 {
		r.BindEngine(eng)
		return
	}
	r.eng = eng
	eng.Probe = r
}

// SetNow drives the manual clock for recorders not bound to an engine.
// It is ignored while an engine is bound.
func (r *Recorder) SetNow(t sim.Time) {
	if r == nil || r.eng != nil {
		return
	}
	r.manual = t
	if t > r.maxTS {
		r.maxTS = t
	}
}

// BeginRun labels everything recorded from here on; entity rollups,
// station instruments and trace process groups are qualified with the
// label, keeping multi-run recorders collision-free.
func (r *Recorder) BeginRun(label string) {
	if r == nil {
		return
	}
	r.run = label
}

// now returns the current virtual timestamp.
func (r *Recorder) now() sim.Time {
	if r.eng != nil {
		return r.offset + r.eng.Now()
	}
	return r.manual
}

// key qualifies a name with the current run label.
func (r *Recorder) key(name string) string {
	if r.run == "" {
		return name
	}
	return r.run + "/" + name
}

// emit appends one event and advances the timeline high-water mark.
func (r *Recorder) emit(e Event) {
	if e.TS > r.maxTS {
		r.maxTS = e.TS
	}
	r.tr.add(e)
	r.reg.Counter("trace/events").Inc()
}

// EngineAdvance implements sim.EngineProbe: when the virtual clock crosses
// a sampling tick, snapshot every watched station's utilization. One
// sample per crossing (not per elapsed tick) keeps big time jumps cheap.
func (r *Recorder) EngineAdvance(now sim.Time) {
	t := r.offset + now
	if t > r.maxTS {
		r.maxTS = t
	}
	if r.sampleEvery <= 0 || t < r.nextTick {
		return
	}
	for _, w := range r.watches {
		if w.gen != r.gen {
			continue
		}
		u := w.st.Utilization()
		w.util.Add(u)
		r.emit(Event{Ph: PhaseCounter, Name: "util", Cat: "station", TS: t, Pid: w.pid, Arg: numArg("util", u)})
	}
	r.reg.Counter("telemetry/samples").Inc()
	r.nextTick = t - t%r.sampleEvery + r.sampleEvery
}

// WatchStation instruments a station: queue-depth and busy counters in the
// trace, utilization and wake-penalty series in the registry. entity names
// the cpuacct entity the station's work bills to.
func (r *Recorder) WatchStation(st *sim.Station, entity string) {
	if r == nil || st == nil {
		return
	}
	label := r.key(st.Name())
	w := &stationWatch{
		rec:    r,
		st:     st,
		entity: entity,
		label:  label,
		gen:    r.gen,
		pid:    r.tr.Pid("station/" + label),
		util:   r.reg.Series("station/" + label + "/util"),
		wake:   r.reg.Series("station/" + label + "/wake"),
	}
	st.Probe = w
	r.watches = append(r.watches, w)
}

// ChargeSpan records one billed CPU charge: a span on the entity's process
// group (thread = station name) plus a rollup into the entity's usage —
// the same (entity, category, duration) triple the accountant records, so
// the trace reconciles with the cpuacct breakdown exactly.
func (r *Recorder) ChargeSpan(entity, guestOf string, cat cpuacct.Category, station string, d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	key := r.key(entity)
	r.rollup(key).Add(cat, d)
	if guestOf != "" {
		r.rollup(r.key(guestOf)).Add(cpuacct.Guest, d)
	}
	pid := r.tr.Pid(key)
	tid := r.tr.Tid(station)
	r.emit(Event{Ph: PhaseSpan, Name: cat.String(), Cat: "cpu", TS: r.now(), Dur: d, Pid: pid, Tid: tid})
	r.reg.Counter("trace/charge_spans").Inc()
}

// rollup returns the usage bucket for a run-qualified entity key.
func (r *Recorder) rollup(key string) *cpuacct.Usage {
	u, ok := r.rollups[key]
	if !ok {
		u = &cpuacct.Usage{}
		r.rollups[key] = u
		r.rollupOrder = append(r.rollupOrder, key)
	}
	return u
}

// Rollup returns the recorded usage for an entity within a run ("" for
// unlabeled runs). It mirrors what the accountant saw through ChargeSpan.
func (r *Recorder) Rollup(run, entity string) cpuacct.Usage {
	if r == nil {
		return cpuacct.Usage{}
	}
	key := entity
	if run != "" {
		key = run + "/" + entity
	}
	if u, ok := r.rollups[key]; ok {
		return *u
	}
	return cpuacct.Usage{}
}

// RollupKeys returns all run-qualified entity keys in first-use order.
func (r *Recorder) RollupKeys() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.rollupOrder))
	copy(out, r.rollupOrder)
	return out
}

// FlowBegin opens a per-frame flow context and returns its id (0 on a nil
// recorder). origin is the emitting namespace; desc describes the flow
// (typically the 5-tuple).
func (r *Recorder) FlowBegin(origin, desc string) uint64 {
	if r == nil {
		return 0
	}
	r.flowSeq++
	id := r.flowSeq
	pid := r.tr.Pid(r.key("net"))
	r.emit(Event{Ph: PhaseFlowBegin, Name: desc, Cat: "flow", TS: r.now(), Pid: pid, ID: id, Arg: Arg{Key: "origin", Str: origin}})
	r.reg.Counter("trace/flows").Inc()
	return id
}

// FlowHop marks a flow's arrival at a datapath hop (an interface, a
// bridge port, a virtio queue).
func (r *Recorder) FlowHop(id uint64, hop string) {
	if r == nil || id == 0 {
		return
	}
	r.emit(Event{Ph: PhaseFlowStep, Name: hop, Cat: "flow", TS: r.now(), Pid: r.tr.Pid(r.key("net")), ID: id})
}

// FlowEnd closes a flow context at local delivery.
func (r *Recorder) FlowEnd(id uint64, where string) {
	if r == nil || id == 0 {
		return
	}
	r.emit(Event{Ph: PhaseFlowEnd, Name: where, Cat: "flow", TS: r.now(), Pid: r.tr.Pid(r.key("net")), ID: id})
}

// Instant records a point event on a named process group with one numeric
// annotation.
func (r *Recorder) Instant(group, name, argKey string, argVal float64) {
	if r == nil {
		return
	}
	e := Event{Ph: PhaseInstant, Name: name, Cat: "op", TS: r.now(), Pid: r.tr.Pid(r.key(group))}
	if argKey != "" {
		e.Arg = numArg(argKey, argVal)
	}
	r.emit(e)
}

// Op is an in-flight control-plane operation span opened by OpBegin.
type Op struct {
	rec   *Recorder
	pid   int32
	name  string
	start sim.Time
	done  bool
}

// OpBegin opens an operation span on a named process group (e.g.
// "vmm/vm0" or "cni/brfusion"). Returns nil on a nil recorder; Op.End is
// nil-safe, so call sites need no guards.
func (r *Recorder) OpBegin(group, name string) *Op {
	if r == nil {
		return nil
	}
	return &Op{rec: r, pid: r.tr.Pid(r.key(group)), name: name, start: r.now()}
}

// End closes the operation span, recording its duration and error status.
// Multiple calls are idempotent.
func (o *Op) End(err error) {
	if o == nil || o.done {
		return
	}
	o.done = true
	r := o.rec
	e := Event{Ph: PhaseSpan, Name: o.name, Cat: "op", TS: o.start, Dur: time.Duration(r.now() - o.start), Pid: o.pid}
	if err != nil {
		e.Arg = Arg{Key: "err", Str: err.Error()}
	}
	r.emit(e)
	r.reg.Counter("trace/ops").Inc()
}

// WriteChromeTrace exports the trace as Chrome trace-event JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.tr.WriteChrome(w)
}

// WriteTextTrace exports the trace in the compact text form.
func (r *Recorder) WriteTextTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.tr.WriteText(w)
}

// MetricsTables renders the collected metrics: per-station instruments,
// per-entity CPU rollups, and the instrument registry. Rows appear in
// deterministic (first-use) order.
func (r *Recorder) MetricsTables() []*report.Table {
	if r == nil {
		return nil
	}
	stations := report.New("Station metrics",
		"station", "entity", "servers", "completed", "busy_ms", "util", "max_queue", "wakeups", "busy_transitions")
	for _, w := range r.watches {
		stations.AddRow(
			w.label, w.entity, w.st.Servers(), w.st.Completed,
			float64(w.st.BusyTime)/1e6, w.st.Utilization(), w.st.MaxQueue,
			w.st.Wakeups, w.busyT)
	}
	entities := report.New("CPU rollup (per entity)",
		"entity", "usr_ms", "sys_ms", "soft_ms", "guest_ms", "total_ms")
	for _, k := range r.rollupOrder {
		u := r.rollups[k]
		entities.AddRow(k,
			float64(u.Of(cpuacct.Usr))/1e6, float64(u.Of(cpuacct.Sys))/1e6,
			float64(u.Of(cpuacct.Soft))/1e6, float64(u.Of(cpuacct.Guest))/1e6,
			float64(u.Total())/1e6)
	}
	return []*report.Table{stations, entities, r.reg.Table("Telemetry instruments")}
}

// stationWatch implements sim.StationProbe for one instrumented station.
type stationWatch struct {
	rec    *Recorder
	st     *sim.Station
	entity string
	label  string
	gen    int
	pid    int32

	busyT, idleT uint64
	util, wake   *sim.Series
}

// StationQueue records the queue depth after an enqueue or dequeue.
func (w *stationWatch) StationQueue(s *sim.Station, depth int) {
	w.rec.emit(Event{Ph: PhaseCounter, Name: "queue", Cat: "station", TS: w.rec.now(), Pid: w.pid, Arg: numArg("depth", float64(depth))})
}

// StationBusy records an idle→busy transition.
func (w *stationWatch) StationBusy(s *sim.Station) {
	w.busyT++
	w.rec.emit(Event{Ph: PhaseCounter, Name: "busy", Cat: "station", TS: w.rec.now(), Pid: w.pid, Arg: numArg("busy", 1)})
}

// StationIdle records a busy→idle transition.
func (w *stationWatch) StationIdle(s *sim.Station) {
	w.idleT++
	w.rec.emit(Event{Ph: PhaseCounter, Name: "busy", Cat: "station", TS: w.rec.now(), Pid: w.pid, Arg: numArg("busy", 0)})
}

// StationWake records a wake-up penalty being paid.
func (w *stationWatch) StationWake(s *sim.Station, penalty time.Duration) {
	w.wake.AddDuration(penalty)
	w.rec.emit(Event{Ph: PhaseInstant, Name: "wake", Cat: "station", TS: w.rec.now(), Pid: w.pid, Arg: numArg("penalty_us", float64(penalty)/1e3)})
}
