package telemetry

import (
	"time"

	"nestless/internal/sim"
)

// Event phases, mirroring the Chrome trace-event format: complete spans,
// instant events, counter samples, and nestable async (flow) begin /
// instant / end markers.
const (
	PhaseSpan      byte = 'X'
	PhaseInstant   byte = 'i'
	PhaseCounter   byte = 'C'
	PhaseFlowBegin byte = 'b'
	PhaseFlowStep  byte = 'n'
	PhaseFlowEnd   byte = 'e'
)

// Arg is one optional key/value annotation on an event. Either Str or Num
// is meaningful, never both.
type Arg struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// numArg builds a numeric annotation.
func numArg(key string, v float64) Arg { return Arg{Key: key, Num: v, IsNum: true} }

// Event is one trace record stamped with virtual time. Pid and Tid are
// interned name handles (see Tracer.PidName/TidName); ID groups the
// begin/step/end events of one async flow.
type Event struct {
	Ph   byte
	Name string
	Cat  string
	TS   sim.Time
	Dur  time.Duration
	Pid  int32
	Tid  int32
	ID   uint64
	Arg  Arg
}

// Tracer accumulates events in emission order. Emission order is the
// simulation's deterministic event order, so two same-seed runs produce
// identical tracers — and identical exports.
type Tracer struct {
	events []Event
	pids   internTable
	tids   internTable

	// (pid, tid) pairs seen on span events, in first-use order, so the
	// exporter can emit thread_name metadata under the right process.
	pairs    []pidTid
	pairSeen map[pidTid]bool
}

type pidTid struct{ pid, tid int32 }

// internTable assigns small stable integer handles to names, first come
// first numbered (starting at 1; 0 means "unset").
type internTable struct {
	names []string
	idx   map[string]int32
}

func (t *internTable) id(name string) int32 {
	if t.idx == nil {
		t.idx = make(map[string]int32)
	}
	if id, ok := t.idx[name]; ok {
		return id
	}
	id := int32(len(t.names)) + 1
	t.names = append(t.names, name)
	t.idx[name] = id
	return id
}

func (t *internTable) name(id int32) string {
	if id < 1 || int(id) > len(t.names) {
		return ""
	}
	return t.names[id-1]
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Len returns the number of recorded events.
func (t *Tracer) Len() int { return len(t.events) }

// Events returns the recorded events in emission order.
func (t *Tracer) Events() []Event { return t.events }

// Pid interns a process-group name and returns its handle.
func (t *Tracer) Pid(name string) int32 { return t.pids.id(name) }

// Tid interns a thread-lane name and returns its handle.
func (t *Tracer) Tid(name string) int32 { return t.tids.id(name) }

// PidName resolves a process handle back to its name.
func (t *Tracer) PidName(id int32) string { return t.pids.name(id) }

// TidName resolves a thread handle back to its name.
func (t *Tracer) TidName(id int32) string { return t.tids.name(id) }

// add appends an event, tracking (pid, tid) pairs for metadata export.
func (t *Tracer) add(e Event) {
	if e.Pid != 0 && e.Tid != 0 {
		p := pidTid{e.Pid, e.Tid}
		if !t.pairSeen[p] {
			if t.pairSeen == nil {
				t.pairSeen = make(map[pidTid]bool)
			}
			t.pairSeen[p] = true
			t.pairs = append(t.pairs, p)
		}
	}
	t.events = append(t.events, e)
}
