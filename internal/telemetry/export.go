package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChrome renders the trace in the Chrome trace-event JSON format
// (the "JSON object" flavor: {"traceEvents": [...]}), loadable by
// chrome://tracing and Perfetto. Timestamps and durations are microseconds
// with three decimal places, which represents nanosecond-granular virtual
// time exactly — so the output is bit-identical across same-seed runs.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	sep := func() {
		if first {
			first = false
		} else {
			bw.WriteByte(',')
		}
	}

	// Metadata: process names, then thread names under each process that
	// used them.
	for i, name := range t.pids.names {
		sep()
		bw.WriteString(`{"name":"process_name","ph":"M","pid":`)
		bw.WriteString(strconv.Itoa(i + 1))
		bw.WriteString(`,"tid":0,"args":{"name":`)
		writeJSONString(bw, name)
		bw.WriteString(`}}`)
	}
	for _, p := range t.pairs {
		sep()
		bw.WriteString(`{"name":"thread_name","ph":"M","pid":`)
		bw.WriteString(strconv.Itoa(int(p.pid)))
		bw.WriteString(`,"tid":`)
		bw.WriteString(strconv.Itoa(int(p.tid)))
		bw.WriteString(`,"args":{"name":`)
		writeJSONString(bw, t.tids.name(p.tid))
		bw.WriteString(`}}`)
	}

	for _, e := range t.events {
		sep()
		bw.WriteString(`{"name":`)
		writeJSONString(bw, e.Name)
		bw.WriteString(`,"cat":`)
		writeJSONString(bw, e.Cat)
		bw.WriteString(`,"ph":"`)
		bw.WriteByte(e.Ph)
		bw.WriteString(`","ts":`)
		writeMicros(bw, int64(e.TS))
		if e.Ph == PhaseSpan {
			bw.WriteString(`,"dur":`)
			writeMicros(bw, int64(e.Dur))
		}
		bw.WriteString(`,"pid":`)
		bw.WriteString(strconv.Itoa(int(e.Pid)))
		bw.WriteString(`,"tid":`)
		bw.WriteString(strconv.Itoa(int(e.Tid)))
		if e.Ph == PhaseFlowBegin || e.Ph == PhaseFlowStep || e.Ph == PhaseFlowEnd {
			bw.WriteString(`,"id":"0x`)
			bw.WriteString(strconv.FormatUint(e.ID, 16))
			bw.WriteString(`"`)
		}
		if e.Ph == PhaseInstant {
			bw.WriteString(`,"s":"t"`)
		}
		if e.Arg.Key != "" {
			bw.WriteString(`,"args":{`)
			writeJSONString(bw, e.Arg.Key)
			bw.WriteByte(':')
			if e.Arg.IsNum {
				bw.WriteString(strconv.FormatFloat(e.Arg.Num, 'g', -1, 64))
			} else {
				writeJSONString(bw, e.Arg.Str)
			}
			bw.WriteByte('}')
		} else if e.Ph == PhaseCounter {
			// Counter events carry their value in args; an argless counter
			// would render as an empty track.
			bw.WriteString(`,"args":{}`)
		}
		bw.WriteByte('}')
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// WriteText renders the trace as one line per event, in emission order —
// a compact grep-able form for terminals and diffs.
func (t *Tracer) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.events {
		fmt.Fprintf(bw, "%12.3fus %c %s", float64(e.TS)/1e3, e.Ph, t.pids.name(e.Pid))
		if e.Tid != 0 {
			fmt.Fprintf(bw, "/%s", t.tids.name(e.Tid))
		}
		fmt.Fprintf(bw, " %s", e.Name)
		if e.Ph == PhaseSpan {
			fmt.Fprintf(bw, " dur=%v", e.Dur)
		}
		if e.Ph == PhaseFlowBegin || e.Ph == PhaseFlowStep || e.Ph == PhaseFlowEnd {
			fmt.Fprintf(bw, " id=%d", e.ID)
		}
		if e.Arg.Key != "" {
			if e.Arg.IsNum {
				fmt.Fprintf(bw, " %s=%g", e.Arg.Key, e.Arg.Num)
			} else {
				fmt.Fprintf(bw, " %s=%s", e.Arg.Key, e.Arg.Str)
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// writeMicros renders ns as microseconds with exactly three decimals
// (nanosecond precision, no float rounding: the fraction is computed in
// integer arithmetic).
func writeMicros(w *bufio.Writer, ns int64) {
	neg := ns < 0
	if neg {
		w.WriteByte('-')
		ns = -ns
	}
	w.WriteString(strconv.FormatInt(ns/1000, 10))
	w.WriteByte('.')
	frac := ns % 1000
	w.WriteByte(byte('0' + frac/100))
	w.WriteByte(byte('0' + (frac/10)%10))
	w.WriteByte(byte('0' + frac%10))
}

// writeJSONString emits s as a JSON string literal with minimal escaping.
func writeJSONString(w *bufio.Writer, s string) {
	w.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			w.WriteByte('\\')
			w.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(w, `\u%04x`, c)
		default:
			w.WriteByte(c)
		}
	}
	w.WriteByte('"')
}
