package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/sim"
)

func TestRegistryOrderAndIdentity(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b/count")
	g := r.Gauge("a/gauge")
	s := r.Series("c/series")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored
	g.Set(3.5)
	s.Add(1)
	s.Add(3)

	if r.Counter("b/count") != c || r.Gauge("a/gauge") != g || r.Series("c/series") != s {
		t.Fatal("get-or-create returned a different instrument on second lookup")
	}
	want := []string{"b/count", "a/gauge", "c/series"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want registration order %v", got, want)
		}
	}
	if c.Value() != 3 {
		t.Fatalf("counter = %v, want 3 (negative adds ignored)", c.Value())
	}
	m := r.Metrics()
	if len(m) != 3 || m[0].Name != "b/count" || m[0].Kind != "counter" {
		t.Fatalf("Metrics() = %+v", m)
	}
	tab := r.Table("x")
	if len(tab.Rows) != 3 {
		t.Fatalf("Table rows = %d, want 3", len(tab.Rows))
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.SetSampleEvery(time.Second)
	if r.Tracer() != nil || r.Metrics() != nil {
		t.Fatal("nil recorder exposed non-nil components")
	}
	r.BindEngine(sim.New(1))
	r.SetNow(5)
	r.BeginRun("x")
	r.WatchStation(nil, "e")
	r.ChargeSpan("e", "", cpuacct.Usr, "st", time.Millisecond)
	if id := r.FlowBegin("ns", "desc"); id != 0 {
		t.Fatalf("nil FlowBegin = %d, want 0", id)
	}
	r.FlowHop(1, "hop")
	r.FlowEnd(1, "there")
	r.Instant("g", "n", "k", 1)
	op := r.OpBegin("g", "n")
	if op != nil {
		t.Fatal("nil OpBegin returned a live op")
	}
	op.End(errors.New("boom")) // nil-safe
	if err := r.WriteChromeTrace(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTextTrace(io.Discard); err != nil {
		t.Fatal(err)
	}
	if got := r.MetricsTables(); got != nil {
		t.Fatalf("nil MetricsTables = %v", got)
	}
	if u := r.Rollup("", "e"); u != (cpuacct.Usage{}) {
		t.Fatalf("nil Rollup = %+v", u)
	}
	if ks := r.RollupKeys(); ks != nil {
		t.Fatalf("nil RollupKeys = %v", ks)
	}
}

// buildSample records one of everything on a manual clock.
func buildSample() *Recorder {
	r := New()
	r.SetNow(sim.Time(1500 * time.Nanosecond))
	r.ChargeSpan("host", "", cpuacct.Sys, "hostcpu", 2500*time.Nanosecond)
	r.ChargeSpan("guest/vm0", "vm/vm0", cpuacct.Usr, "vm-vm0", time.Microsecond)
	id := r.FlowBegin("client", `udp "quoted" tuple`)
	r.SetNow(sim.Time(3 * time.Microsecond))
	r.FlowHop(id, "host/eth0")
	r.FlowEnd(id, "server")
	r.Instant("hostlo/dev", "reflect", "fanout", 2)
	op := r.OpBegin("vmm/vm0", "device_add")
	r.SetNow(sim.Time(5 * time.Microsecond))
	op.End(errors.New(`failed: "why"`))
	op.End(nil) // idempotent
	return r
}

func TestChromeExportIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string                 `json:"name"`
			Cat  string                 `json:"cat"`
			Ph   string                 `json:"ph"`
			TS   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			ID   string                 `json:"id"`
			S    string                 `json:"s"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, spans, flows, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Args["name"] == nil {
				t.Fatalf("metadata event without name args: %+v", e)
			}
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Fatalf("span without duration: %+v", e)
			}
		case "b", "n", "e":
			flows++
			if e.ID == "" {
				t.Fatalf("flow event without id: %+v", e)
			}
		case "i":
			instants++
			if e.S != "t" {
				t.Fatalf("instant without thread scope: %+v", e)
			}
		}
	}
	if meta == 0 || flows != 3 || instants != 1 || spans != 3 {
		t.Fatalf("meta=%d spans=%d flows=%d instants=%d", meta, spans, flows, instants)
	}
	// First charge span: ts=1.500µs, dur=2.500µs — exact 3-decimal µs.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Cat == "cpu" && e.Name == "sys" {
			if e.TS != 1.5 || e.Dur != 2.5 {
				t.Fatalf("sys span ts=%v dur=%v, want 1.5/2.5", e.TS, e.Dur)
			}
		}
	}
}

func TestExportDeterminism(t *testing.T) {
	var a, b, txtA, txtB bytes.Buffer
	ra, rb := buildSample(), buildSample()
	if err := ra.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := rb.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical recordings exported different Chrome JSON")
	}
	ra.WriteTextTrace(&txtA)
	rb.WriteTextTrace(&txtB)
	if !bytes.Equal(txtA.Bytes(), txtB.Bytes()) {
		t.Fatal("two identical recordings exported different text traces")
	}
}

func TestChargeSpanRollupAndRunLabels(t *testing.T) {
	r := New()
	r.ChargeSpan("app", "vm/v", cpuacct.Usr, "st", 3*time.Millisecond)
	r.BeginRun("r2")
	r.ChargeSpan("app", "", cpuacct.Sys, "st", time.Millisecond)

	if got := r.Rollup("", "app").Of(cpuacct.Usr); got != 3*time.Millisecond {
		t.Fatalf("app usr = %v", got)
	}
	if got := r.Rollup("", "vm/v").Of(cpuacct.Guest); got != 3*time.Millisecond {
		t.Fatalf("vm guest mirror = %v", got)
	}
	if got := r.Rollup("r2", "app").Of(cpuacct.Sys); got != time.Millisecond {
		t.Fatalf("r2/app sys = %v", got)
	}
	keys := r.RollupKeys()
	want := []string{"app", "vm/v", "r2/app"}
	if len(keys) != len(want) {
		t.Fatalf("RollupKeys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("RollupKeys = %v, want %v", keys, want)
		}
	}
}

func TestMultiEngineTimelineOffsets(t *testing.T) {
	r := New()
	e1 := sim.New(1)
	r.BindEngine(e1)
	e1.After(10*time.Microsecond, func() { r.Instant("g", "first", "", 0) })
	e1.Run()

	e2 := sim.New(1)
	r.BindEngine(e2)
	e2.After(5*time.Microsecond, func() { r.Instant("g", "second", "", 0) })
	e2.Run()

	evs := r.Tracer().Events()
	var firstTS, secondTS sim.Time
	for _, e := range evs {
		switch e.Name {
		case "first":
			firstTS = e.TS
		case "second":
			secondTS = e.TS
		}
	}
	if firstTS != sim.Time(10*time.Microsecond) {
		t.Fatalf("first at %v", firstTS)
	}
	if secondTS <= firstTS {
		t.Fatalf("second run not offset past the first: first=%v second=%v", firstTS, secondTS)
	}
	if secondTS != sim.Time(15*time.Microsecond) {
		t.Fatalf("second at %v, want offset(10µs)+5µs", secondTS)
	}
}

func TestStationWatchSamplesUtilization(t *testing.T) {
	r := New()
	r.SetSampleEvery(100 * time.Microsecond)
	eng := sim.New(1)
	r.BindEngine(eng)
	st := sim.NewStation(eng, "cpu", 1)
	r.WatchStation(st, "host")

	for i := 0; i < 4; i++ {
		st.Process(60*time.Microsecond, nil)
	}
	// Carry the clock across several ticks.
	eng.After(350*time.Microsecond, func() {})
	eng.Run()

	util := r.Metrics().Series("station/cpu/util")
	if util.N() == 0 {
		t.Fatal("no utilization samples recorded")
	}
	if r.Metrics().Counter("telemetry/samples").Value() == 0 {
		t.Fatal("tick sampling never fired")
	}
	// Queue and busy counter events made it into the trace.
	var queueEvs, busyEvs int
	for _, e := range r.Tracer().Events() {
		if e.Cat == "station" {
			switch e.Name {
			case "queue":
				queueEvs++
			case "busy":
				busyEvs++
			}
		}
	}
	if queueEvs == 0 || busyEvs == 0 {
		t.Fatalf("queue events = %d, busy events = %d, want both > 0", queueEvs, busyEvs)
	}
}
