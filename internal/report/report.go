// Package report renders experiment output: aligned text tables for the
// terminal and CSV for downstream plotting. Every figure-regenerating
// command and benchmark prints through it, so rows stay comparable
// across runs.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New creates a table.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are stringified with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// WriteCSV renders the table as CSV (no quoting needed for our cells).
func (t *Table) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteText(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Percent renders a fraction as "12.3%".
func Percent(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}

// Kv prints aligned key/value summary lines ("  key: value").
func Kv(w io.Writer, pairs ...interface{}) {
	if len(pairs)%2 != 0 {
		panic("report: Kv needs key/value pairs")
	}
	width := 0
	for i := 0; i < len(pairs); i += 2 {
		if l := len(fmt.Sprint(pairs[i])); l > width {
			width = l
		}
	}
	for i := 0; i < len(pairs); i += 2 {
		fmt.Fprintf(w, "  %s: %v\n", pad(fmt.Sprint(pairs[i]), width), pairs[i+1])
	}
}
