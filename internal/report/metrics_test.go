package report

import (
	"strings"
	"testing"
)

func TestMetricsTable(t *testing.T) {
	tab := MetricsTable("m", []Metric{
		{Name: "a", Kind: "counter", Value: 3.14159},
		{Name: "b", Kind: "gauge", Value: "n=2"},
	})
	if len(tab.Header) != 3 {
		t.Fatalf("header = %v, want 3 columns without units", tab.Header)
	}
	s := tab.String()
	if !strings.Contains(s, "3.142") || !strings.Contains(s, "n=2") {
		t.Fatalf("rendered table:\n%s", s)
	}
}

func TestMetricsTableWithUnits(t *testing.T) {
	tab := MetricsTable("m", []Metric{
		{Name: "a", Kind: "counter", Value: 1.0, Unit: "ms"},
		{Name: "b", Kind: "gauge", Value: 2.0},
	})
	if len(tab.Header) != 4 || tab.Header[3] != "unit" {
		t.Fatalf("header = %v, want unit column", tab.Header)
	}
	if tab.Rows[0][3] != "ms" || tab.Rows[1][3] != "" {
		t.Fatalf("rows = %v", tab.Rows)
	}
}
