package report

import "fmt"

// Metric is one row of a metrics table: a named instrument with a kind
// ("counter", "gauge", "series", ...) and a pre-rendered or numeric
// value. Unit is optional and printed as its own column when any metric
// in the table carries one.
type Metric struct {
	Name  string
	Kind  string
	Value interface{}
	Unit  string
}

// MetricsTable renders metrics in the given order as a table. Numeric
// values get the standard 4-significant-digit formatting; anything else
// is stringified verbatim. The unit column only appears when at least
// one metric sets it, so unit-less registries stay compact.
func MetricsTable(title string, metrics []Metric) *Table {
	units := false
	for _, m := range metrics {
		if m.Unit != "" {
			units = true
			break
		}
	}
	header := []string{"instrument", "kind", "value"}
	if units {
		header = append(header, "unit")
	}
	t := New(title, header...)
	for _, m := range metrics {
		var val string
		switch v := m.Value.(type) {
		case float64:
			val = fmt.Sprintf("%.4g", v)
		case float32:
			val = fmt.Sprintf("%.4g", v)
		default:
			val = fmt.Sprint(v)
		}
		if units {
			t.AddRow(m.Name, m.Kind, val, m.Unit)
		} else {
			t.AddRow(m.Name, m.Kind, val)
		}
	}
	return t
}
