package report

import (
	"strings"
	"testing"
)

func TestTableTextAlignment(t *testing.T) {
	tab := New("Title", "name", "value")
	tab.AddRow("short", 1)
	tab.AddRow("a-much-longer-name", 123.4567)
	out := tab.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: the value column starts at the same offset.
	hdr, row := lines[1], lines[4]
	if strings.Index(hdr, "value") != strings.Index(row, "123.5") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := New("x", "a", "b")
	tab.AddRow(1, 2.5)
	var b strings.Builder
	tab.WriteCSV(&b)
	want := "a,b\n1,2.5\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFloatFormatting(t *testing.T) {
	tab := New("", "v")
	tab.AddRow(1234.5678)
	tab.AddRow(float32(2.0))
	if tab.Rows[0][0] != "1235" {
		t.Fatalf("float64 cell = %q", tab.Rows[0][0])
	}
	if tab.Rows[1][0] != "2" {
		t.Fatalf("float32 cell = %q", tab.Rows[1][0])
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.114) != "11.4%" {
		t.Fatalf("Percent = %q", Percent(0.114))
	}
}

func TestKv(t *testing.T) {
	var b strings.Builder
	Kv(&b, "alpha", 1, "b", "two")
	out := b.String()
	if !strings.Contains(out, "alpha: 1") || !strings.Contains(out, "b    : two") {
		t.Fatalf("Kv output:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd Kv args did not panic")
		}
	}()
	Kv(&b, "only-key")
}
