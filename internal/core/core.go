// Package core is the paper's primary contribution as a control plane:
// the orchestrator↔VMM integration that "removes the nest" from nested
// virtualization. It implements the two four-step protocols verbatim:
//
// BrFusion (§3.1) — per-pod NIC provisioning:
//  1. the orchestrator asks the VMM for a new NIC on the VM chosen
//     during scheduling, optionally naming the host-level networking
//     domain (bridge);
//  2. the VMM hot-plugs the NIC and wires it to that bridge;
//  3. the VMM returns an identifier (the MAC address);
//  4. the orchestrator's VM agent configures the NIC inside the VM and
//     gives it to the pod.
//
// Hostlo (§4.1) — cross-VM pod localhost:
//  1. the orchestrator asks the VMM for a new Hostlo for the pod and
//     names the VMs targeted by the (split) placement;
//  2. the VMM creates the Hostlo device and multiplexes it between
//     those VMs as endpoint NICs;
//  3. the VMM returns the endpoint identifiers (MACs);
//  4. the VM agents configure the endpoints as the pod's localhost.
//
// Steps 1–3 live here (Controller, speaking QMP to the VMM); step 4 is
// the agent side, implemented by the CNI plugins in internal/brfusion
// and internal/hostlocni on top of this package.
package core

import (
	"fmt"
	"time"

	"nestless/internal/faults"
	"nestless/internal/netsim"
	"nestless/internal/vmm"
)

// NICInfo is the VMM's answer to a BrFusion NIC request (§3.1 step 3).
type NICInfo struct {
	VM       string
	DeviceID string
	MAC      netsim.MAC
	// GuestIface is the interface name the guest OS assigned.
	GuestIface string
	// Bridge is the host networking domain the NIC belongs to.
	Bridge string
}

// EndpointInfo is one VM's Hostlo endpoint (§4.1 step 3).
type EndpointInfo struct {
	VM       string
	DeviceID string
	MAC      netsim.MAC
	// GuestIface is the endpoint's in-guest interface name.
	GuestIface string
	// Hostlo is the host device the endpoint multiplexes.
	Hostlo string
}

// Controller is the orchestrator's handle on one host's VMM. It owns the
// management-plane conversation and the host-side address pool for
// BrFusion pod NICs (pods get first-class addresses on the host bridge
// subnet, exactly like VMs do).
type Controller struct {
	host *vmm.Host

	devSeq    int
	hostloSeq int

	// podIPAM allocates pod addresses per host bridge.
	podIPAM map[string]*ipam
}

// NewController attaches a controller to a host's VMM.
func NewController(h *vmm.Host) *Controller {
	return &Controller{host: h, podIPAM: make(map[string]*ipam)}
}

// Host returns the managed host.
func (c *Controller) Host() *vmm.Host { return c.host }

// nextDeviceID names a fresh managed device.
func (c *Controller) nextDeviceID(kind string) string {
	c.devSeq++
	return fmt.Sprintf("%s-%d", kind, c.devSeq)
}

// AllocPodIP reserves a pod address on the named host bridge's subnet.
// BrFusion pods sit on the same L2 domain as the VMs, so they draw from
// the same subnet, above the VM range.
func (c *Controller) AllocPodIP(bridge string) (netsim.IPv4, netsim.Prefix, error) {
	br := c.host.Bridge(bridge)
	if br == nil {
		return netsim.IPv4{}, netsim.Prefix{}, fmt.Errorf("core: no host bridge %q", bridge)
	}
	pool, ok := c.podIPAM[bridge]
	if !ok {
		pool = &ipam{subnet: br.Iface().Net, next: 100}
		c.podIPAM[bridge] = pool
	}
	ip, err := pool.alloc()
	return ip, pool.subnet, err
}

// ProvisionPodNIC runs BrFusion protocol steps 1–3: hot-plug a new NIC
// on vm, attached to the named host bridge, and report its identity.
// A device_add failure rolls the netdev registration back, so a failed
// provision leaves nothing behind for the retry to trip over.
func (c *Controller) ProvisionPodNIC(vm *vmm.VM, bridge string, done func(NICInfo, error)) {
	if c.host.Bridge(bridge) == nil {
		done(NICInfo{}, fmt.Errorf("core: no host bridge %q", bridge))
		return
	}
	m := vm.Monitor()
	ndID := c.nextDeviceID("nd")
	devID := c.nextDeviceID("podnic")
	m.Execute("netdev_add", map[string]string{"id": ndID, "type": "bridge", "br": bridge}, func(_ vmm.Result, err error) {
		if err != nil {
			done(NICInfo{}, err)
			return
		}
		m.Execute("device_add", map[string]string{"id": devID, "driver": "virtio-net", "netdev": ndID}, func(r vmm.Result, err error) {
			if err != nil {
				c.releaseNetdev(vm, ndID)
				done(NICInfo{}, err)
				return
			}
			dev := vm.Device(devID)
			done(NICInfo{
				VM:         vm.Name,
				DeviceID:   devID,
				MAC:        dev.MAC(),
				GuestIface: r["iface"],
				Bridge:     bridge,
			}, nil)
		})
	})
}

// ReleasePodNIC detaches a BrFusion pod NIC with a single device_del
// (no retries — see ReleaseDevice for the fault-hardened variant).
func (c *Controller) ReleasePodNIC(vm *vmm.VM, deviceID string, done func(error)) {
	vm.Monitor().Execute("device_del", map[string]string{"id": deviceID}, func(_ vmm.Result, err error) {
		if done != nil {
			done(err)
		}
	})
}

// releasePolicy is the teardown retry loop: more attempts than the
// provision side, because a wedged release is a leak while a wedged
// provision merely falls back. The watchdog arms only in faulted
// worlds — a fault-free monitor cannot stall, and the dead timer events
// would perturb nothing but still cost heap.
func (c *Controller) releasePolicy(attempts int) faults.RetryPolicy {
	pol := faults.DefaultRetryPolicy()
	pol.MaxAttempts = attempts
	pol.BackoffMax = 200 * time.Millisecond
	if c.host.Net.Faults == nil {
		pol.Timeout = 0
	}
	return pol
}

// retryCounter surfaces a retry loop's activity as a telemetry counter
// ("retry/<site>" in the instruments table). Nil when telemetry is off.
func (c *Controller) retryCounter(site string) func(int, error) {
	rec := c.host.Net.Rec
	if rec == nil {
		return nil
	}
	return func(int, error) { rec.Metrics().Counter("retry/" + site).Inc() }
}

// ReleaseDevice detaches a managed NIC with bounded retries. Delete is
// idempotent at the orchestrator level: if a retried device_del finds
// the device already gone (an earlier, timed-out attempt won the race),
// the release has converged and reports success.
func (c *Controller) ReleaseDevice(vm *vmm.VM, deviceID string, done func(error)) {
	pol := c.releasePolicy(4)
	pol.OnRetry = c.retryCounter("device_del")
	faults.Retry(c.host.Eng, pol,
		func(_ int, complete func(struct{}, error)) {
			vm.Monitor().Execute("device_del", map[string]string{"id": deviceID}, func(_ vmm.Result, err error) {
				complete(struct{}{}, err)
			})
		},
		nil,
		func(_ struct{}, _ int, err error) {
			if err != nil && vm.Device(deviceID) == nil {
				err = nil
			}
			if done != nil {
				done(err)
			}
		})
}

// releaseNetdev retires an orphaned netdev spec (a device_add that
// never produced a device), retrying through transient faults.
func (c *Controller) releaseNetdev(vm *vmm.VM, ndID string) {
	pol := c.releasePolicy(4)
	pol.OnRetry = c.retryCounter("netdev_del")
	faults.Retry(c.host.Eng, pol,
		func(_ int, complete func(struct{}, error)) {
			vm.Monitor().Execute("netdev_del", map[string]string{"id": ndID}, func(_ vmm.Result, err error) {
				complete(struct{}{}, err)
			})
		},
		nil,
		func(_ struct{}, _ int, err error) {},
	)
}

// ReleaseHostlo deletes a pod's Hostlo device once its queues are gone.
// The endpoint device_dels race this on the monitor, so the loop is
// generous with attempts; "already gone" counts as success.
func (c *Controller) ReleaseHostlo(hostloID string, done func(error)) {
	h := c.host
	vms := h.VMs()
	if len(vms) == 0 {
		if done != nil {
			done(fmt.Errorf("core: no VM monitor to reach the VMM through"))
		}
		return
	}
	m := vms[0].Monitor()
	pol := c.releasePolicy(8)
	pol.OnRetry = c.retryCounter("hostlo_delete")
	faults.Retry(h.Eng, pol,
		func(_ int, complete func(struct{}, error)) {
			m.Execute("hostlo_delete", map[string]string{"id": hostloID}, func(_ vmm.Result, err error) {
				complete(struct{}{}, err)
			})
		},
		nil,
		func(_ struct{}, _ int, err error) {
			if err != nil && h.Hostlo(hostloID) == nil {
				err = nil
			}
			if done != nil {
				done(err)
			}
		})
}

// ProvisionHostlo runs Hostlo protocol steps 1–3: create a fresh Hostlo
// device for a pod and multiplex it into every target VM. The callback
// receives one endpoint per VM, in the given order. A mid-sequence
// failure rolls the whole provision back — already-attached endpoints
// are unplugged and the device deleted — before the error is reported,
// so the caller never inherits a half-multiplexed pod.
func (c *Controller) ProvisionHostlo(vms []*vmm.VM, done func(hostloID string, eps []EndpointInfo, err error)) {
	if len(vms) == 0 {
		done("", nil, fmt.Errorf("core: hostlo needs at least one VM"))
		return
	}
	c.hostloSeq++
	hid := fmt.Sprintf("hostlo%d", c.hostloSeq)
	eps := make([]EndpointInfo, 0, len(vms))

	// rollback unwinds eps (reverse order) and then the device itself;
	// each step retries internally, and the original error wins.
	rollback := func(cause error) {
		var unwind func(i int)
		unwind = func(i int) {
			if i < 0 {
				c.ReleaseHostlo(hid, func(error) { done(hid, nil, cause) })
				return
			}
			ep := eps[i]
			c.ReleaseDevice(c.host.VM(ep.VM), ep.DeviceID, func(error) { unwind(i - 1) })
		}
		unwind(len(eps) - 1)
	}

	var attach func(i int)
	attach = func(i int) {
		if i >= len(vms) {
			done(hid, eps, nil)
			return
		}
		vm := vms[i]
		m := vm.Monitor()
		ndID := c.nextDeviceID("ndh")
		devID := c.nextDeviceID("hlo")
		m.Execute("netdev_add", map[string]string{"id": ndID, "type": "hostlo", "dev": hid}, func(_ vmm.Result, err error) {
			if err != nil {
				rollback(err)
				return
			}
			m.Execute("device_add", map[string]string{"id": devID, "driver": "virtio-net", "netdev": ndID}, func(r vmm.Result, err error) {
				if err != nil {
					c.releaseNetdev(vm, ndID)
					rollback(err)
					return
				}
				dev := vm.Device(devID)
				eps = append(eps, EndpointInfo{
					VM:         vm.Name,
					DeviceID:   devID,
					MAC:        dev.MAC(),
					GuestIface: r["iface"],
					Hostlo:     hid,
				})
				attach(i + 1)
			})
		})
	}
	// Step 2 first half: create the device, then attach per VM.
	vms[0].Monitor().Execute("hostlo_create", map[string]string{"id": hid}, func(_ vmm.Result, err error) {
		if err != nil {
			done(hid, nil, err)
			return
		}
		attach(0)
	})
}

// ipam is a trivial sequential allocator inside a subnet.
type ipam struct {
	subnet netsim.Prefix
	next   int
}

func (p *ipam) alloc() (netsim.IPv4, error) {
	max := 1<<(32-uint(p.subnet.Bits)) - 2
	if p.next > max {
		return netsim.IPv4{}, fmt.Errorf("core: pod address pool %v exhausted", p.subnet)
	}
	ip := p.subnet.Host(p.next)
	p.next++
	return ip, nil
}
