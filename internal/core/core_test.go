package core

import (
	"testing"

	"nestless/internal/netsim"
	"nestless/internal/sim"
	"nestless/internal/vmm"
)

var hostNet = netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24)

func newHost() (*sim.Engine, *vmm.Host, *Controller) {
	eng := sim.New(5)
	eng.MaxSteps = 20_000_000
	w := netsim.NewNet(eng)
	h := vmm.NewHost(w)
	h.AddBridge("virbr0", netsim.IP(192, 168, 122, 1), hostNet)
	return eng, h, NewController(h)
}

func TestProvisionPodNICProtocol(t *testing.T) {
	eng, h, ctrl := newHost()
	vm, _ := h.CreateVM(vmm.VMConfig{Name: "web", VCPUs: 5})

	var info NICInfo
	var perr error
	ctrl.ProvisionPodNIC(vm, "virbr0", func(i NICInfo, err error) { info, perr = i, err })
	eng.Run()
	if perr != nil {
		t.Fatal(perr)
	}
	// Step 3: the VMM reported an identifier the agent can use.
	if info.MAC.IsZero() {
		t.Fatal("no MAC reported")
	}
	if info.VM != "web" || info.Bridge != "virbr0" {
		t.Fatalf("info = %+v", info)
	}
	dev := vm.Devices()[info.DeviceID]
	if dev == nil {
		t.Fatal("device not attached")
	}
	if dev.NIC.Guest.Name != info.GuestIface {
		t.Fatalf("guest iface %q != reported %q", dev.NIC.Guest.Name, info.GuestIface)
	}
	// The management-plane conversation took simulated time.
	if eng.Now() == 0 {
		t.Fatal("protocol consumed no time")
	}
}

func TestProvisionPodNICUnknownBridge(t *testing.T) {
	eng, h, ctrl := newHost()
	vm, _ := h.CreateVM(vmm.VMConfig{Name: "web"})
	var perr error
	ctrl.ProvisionPodNIC(vm, "missing", func(_ NICInfo, err error) { perr = err })
	eng.Run()
	if perr == nil {
		t.Fatal("unknown bridge accepted")
	}
}

func TestReleasePodNIC(t *testing.T) {
	eng, h, ctrl := newHost()
	vm, _ := h.CreateVM(vmm.VMConfig{Name: "web"})
	var id string
	ctrl.ProvisionPodNIC(vm, "virbr0", func(i NICInfo, err error) { id = i.DeviceID })
	eng.Run()
	var rerr error
	ctrl.ReleasePodNIC(vm, id, func(err error) { rerr = err })
	eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(vm.Devices()) != 0 {
		t.Fatal("device still attached after release")
	}
}

func TestProvisionHostloProtocol(t *testing.T) {
	eng, h, ctrl := newHost()
	vm1, _ := h.CreateVM(vmm.VMConfig{Name: "vm1"})
	vm2, _ := h.CreateVM(vmm.VMConfig{Name: "vm2"})

	var hid string
	var eps []EndpointInfo
	var perr error
	ctrl.ProvisionHostlo([]*vmm.VM{vm1, vm2}, func(id string, e []EndpointInfo, err error) {
		hid, eps, perr = id, e, err
	})
	eng.Run()
	if perr != nil {
		t.Fatal(perr)
	}
	if h.Hostlo(hid) == nil || h.Hostlo(hid).Queues() != 2 {
		t.Fatalf("hostlo device wrong: id=%q", hid)
	}
	if len(eps) != 2 || eps[0].VM != "vm1" || eps[1].VM != "vm2" {
		t.Fatalf("endpoints = %+v", eps)
	}
	for _, ep := range eps {
		if ep.MAC.IsZero() || ep.Hostlo != hid {
			t.Fatalf("endpoint incomplete: %+v", ep)
		}
	}
	// Second pod gets its own device.
	var hid2 string
	ctrl.ProvisionHostlo([]*vmm.VM{vm1, vm2}, func(id string, _ []EndpointInfo, err error) { hid2 = id })
	eng.Run()
	if hid2 == hid {
		t.Fatal("hostlo devices must be per-pod")
	}
}

func TestProvisionHostloNeedsVMs(t *testing.T) {
	eng, _, ctrl := newHost()
	var perr error
	ctrl.ProvisionHostlo(nil, func(_ string, _ []EndpointInfo, err error) { perr = err })
	eng.Run()
	if perr == nil {
		t.Fatal("empty VM list accepted")
	}
}

func TestAllocPodIP(t *testing.T) {
	_, _, ctrl := newHost()
	a, subnet, err := ctrl.AllocPodIP("virbr0")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ctrl.AllocPodIP("virbr0")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("duplicate pod IPs")
	}
	if !subnet.Contains(a) || !subnet.Contains(b) {
		t.Fatal("pod IPs outside the bridge subnet")
	}
	if !hostNet.Contains(a) {
		t.Fatalf("pod IP %v not on the host bridge subnet", a)
	}
	if _, _, err := ctrl.AllocPodIP("missing"); err == nil {
		t.Fatal("unknown bridge accepted")
	}
}

func TestAllocPodIPExhaustion(t *testing.T) {
	_, _, ctrl := newHost()
	// /24 leaves 154 pod addresses above the .100 base.
	var err error
	for i := 0; i < 200; i++ {
		_, _, err = ctrl.AllocPodIP("virbr0")
		if err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("pool never exhausted on a /24")
	}
}
