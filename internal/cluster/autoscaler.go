package cluster

import (
	"fmt"

	"nestless/internal/sim"
)

// The autoscaler: queue pressure scales the fleet up (one provisioning
// request in flight at a time, so a burst of arrivals does not buy a
// node per pod before the first one boots), the periodic tick scales it
// down (a node must sit empty for IdleGrace before it is reclaimed —
// hysteresis against churn buying the same node twice). Node kills also
// live on the tick: the fault injector is consulted once per live node
// per tick at point "node/<name>".
//
// This file holds the machine-lifecycle mechanics shared by both
// autoscaler modes; the declarative reconciler's decision layer (zone
// spread, spot mix, machine sets) lives in reconciler.go.

// requestNode asks for one node of catalog type typ, placed in the
// given zone, as spot or on-demand capacity.
func (c *Cluster) requestNode(typ, zone int, spot bool) {
	c.inflight++
	c.count("cluster/provision_requests")
	c.tryProvision(typ, zone, spot)
}

// provArgs packs a provisioning request's (zone, spot) into the B slot
// of an evProvRetry/evNodeReady ledger event; the pre-cloud encoding
// (B = 0) decodes to zone 0, on-demand.
func provArgs(zone int, spot bool) int64 {
	b := int64(zone) << 1
	if spot {
		b |= 1
	}
	return b
}

// tryProvision runs one provisioning attempt through the fault points
// "node/provision" (fail → retry after ProvisionRetryEvery; delay →
// added to the boot latency).
func (c *Cluster) tryProvision(typ, zone int, spot bool) {
	if err := c.inj.OpFail("node/provision"); err != nil {
		c.res.ProvisionRetries++
		c.count("cluster/provision_retries")
		if c.rec != nil {
			c.rec.Instant("cluster/autoscaler", "provision-retry", "type", float64(typ))
		}
		c.schedEvent(c.eng.Now()+sim.Time(c.cfg.ProvisionRetryEvery), evProvRetry, int64(typ), provArgs(zone, spot))
		return
	}
	delay := sim.Time(c.cfg.BootDelay) + sim.Time(c.inj.OpDelay("node/provision"))
	if delay <= 0 {
		c.nodeReady(typ, zone, spot)
		return
	}
	c.schedEvent(c.eng.Now()+delay, evNodeReady, int64(typ), provArgs(zone, spot))
}

// nodeReady turns a provisioning request into a live node and re-kicks
// the scheduler, which was blocked waiting for this capacity.
func (c *Cluster) nodeReady(typ, zone int, spot bool) {
	c.inflight--
	n := c.createNode(typ, zone, spot, c.eng.Now())
	c.res.ScaleUps++
	c.count("cluster/scale_ups")
	if spot {
		c.res.SpotProvisions++
		c.count("cluster/spot_provisions")
	}
	if c.rec != nil {
		c.rec.Instant("cluster/autoscaler", "node-ready", "type", float64(typ))
	}
	n.idleSince = c.eng.Now()
	if c.queueLen() > 0 {
		c.kickSchedule()
	}
}

// createNode allocates a live node of type typ born at now, tracks the
// fleet peak, and enters the node into the live list and the capacity
// index. The cost clock starts here; accrue settles it at termination
// or the horizon.
func (c *Cluster) createNode(typ, zone int, spot bool, now sim.Time) *node {
	n := &node{
		id:        len(c.nodes),
		typ:       typ,
		bornAt:    now,
		idleSince: now,
		live:      true,
		zone:      zone,
		spot:      spot,
	}
	n.name = fmt.Sprintf("n%d", n.id)
	n.faultPoint = "node/" + n.name
	if spot {
		n.spotPoint = "spot/" + n.name
	}
	n.priceH = c.price(typ, zone, spot)
	c.nodes = append(c.nodes, n)
	c.liveList = append(c.liveList, n)
	c.liveCount++
	c.zoneLive[zone]++
	if spot {
		c.spotLive++
	}
	c.touchNode(n)
	if c.liveCount > c.res.PeakNodes {
		c.res.PeakNodes = c.liveCount
	}
	return n
}

// terminate settles a node's bill and removes it from the live fleet
// and the capacity index. The caller must have stripped its items
// first. The liveList entry is compacted lazily.
func (c *Cluster) terminate(n *node, now sim.Time) {
	c.accrue(n, now)
	n.live = false
	c.liveCount--
	c.deadLive++
	c.zoneLive[n.zone]--
	if n.spot {
		c.spotLive--
	}
	c.touchNode(n)
}

// compactLive drops dead entries from the live list (creation order is
// preserved). Called only outside liveList iterations.
func (c *Cluster) compactLive() {
	if c.deadLive == 0 {
		return
	}
	kept := c.liveList[:0]
	for _, n := range c.liveList {
		if n.live {
			kept = append(kept, n)
		}
	}
	c.liveList = kept
	c.deadLive = 0
}

// tick is the periodic control loop: node kills (plus spot revocations
// and zone drills in cloud-model runs), displaced-pod rescheduling,
// idle reclaim, Hostlo re-optimisation, re-arm.
func (c *Cluster) tick() {
	now := c.eng.Now()
	if c.deadLive > len(c.liveList)/2 {
		c.compactLive()
	}
	// 1. Node kills — consult the injector once per live node, in
	// creation order, at point "node/<name>".
	if c.inj != nil {
		for _, n := range c.liveList {
			if n.live && c.inj.Crash(n.faultPoint) {
				c.killNode(n, now)
			}
		}
		// 1b. Spot revocations, point "spot/<name>" per live spot node.
		// Gated on a non-empty spot fleet so a pre-cloud world never
		// consults the injector here (a bare "*" rule would otherwise
		// fire and shift the RNG stream against the imperative pin).
		if c.spotLive > 0 {
			for _, n := range c.liveList {
				if n.live && n.spot && c.inj.Crash(n.spotPoint) {
					c.revokeNode(n, now)
				}
			}
		}
		// 1c. Whole-zone kill drills, point "zone/<name>" per configured
		// zone — same single-zone gate as above.
		if c.cfg.Zones > 1 {
			for z := 0; z < c.cfg.Zones; z++ {
				if c.inj.Crash(c.zonePoints[z]) {
					c.killZone(z, now)
				}
			}
		}
	}
	// 2. Displaced pods (and any queue backlog) go back through the
	// scheduler.
	if c.queueLen() > 0 {
		c.kickSchedule()
	}
	// 3. Idle reclaim with hysteresis. In reconciler mode the reclaim is
	// one resync round of observed-vs-desired capacity; the mechanics
	// (and therefore the fleet trajectory) are identical either way.
	reclaimed := c.reclaimIdle(now)
	if c.cfg.Autoscaler == Reconciler {
		c.res.ReconcileRounds++
		c.count("cluster/reconcile_rounds")
		if reclaimed > 0 {
			c.res.ReconcileActions += reclaimed
			c.countN("cluster/reconcile_actions", reclaimed)
		}
	}
	// 4. Hostlo: re-pack what churn fragmented, but never under a
	// backlog — the pending queue would immediately re-dirty the fleet.
	if c.cfg.Policy == Hostlo && c.dirty && c.queueLen() == 0 {
		c.optimize()
	}
	next := now + sim.Time(c.cfg.ScaleEvery)
	if next <= sim.Time(c.cfg.Horizon) {
		c.schedEvent(next, evTick, 0, 0)
	}
}

// reclaimIdle terminates every live node that has sat empty past the
// IdleGrace hysteresis, in creation order, and reports how many. Both
// autoscaler modes share it verbatim — the scale-down trajectory (and
// its float cost accumulation order) must not depend on the mode.
func (c *Cluster) reclaimIdle(now sim.Time) int {
	reclaimed := 0
	for _, n := range c.liveList {
		if n.live && len(n.items) == 0 && now-n.idleSince >= sim.Time(c.cfg.IdleGrace) {
			c.terminate(n, now)
			c.res.ScaleDowns++
			c.count("cluster/scale_downs")
			if c.rec != nil {
				c.rec.Instant("cluster/autoscaler", "reclaim-idle", "node", float64(n.id))
			}
			reclaimed++
		}
	}
	return reclaimed
}

// killNode fails a node mid-run: the bill is settled, every pod with a
// container on it is displaced back into the pending queue with its
// remaining lifetime, and split pods lose their placements on other
// nodes too (a pod runs whole or not at all).
func (c *Cluster) killNode(n *node, now sim.Time) {
	c.res.Kills++
	c.count("cluster/node_kills")
	if c.rec != nil {
		c.rec.Instant("cluster/faults", "node-kill", "node", float64(n.id))
	}
	c.drainNode(n, now)
}

// drainNode is the shared teardown of killNode and revokeNode: every
// pod with a container on the node is displaced back into the pending
// queue, the node's bill is settled and it leaves the fleet.
func (c *Cluster) drainNode(n *node, now sim.Time) {
	// Victim pods in item order, deduplicated.
	seen := map[string]bool{}
	var victims []int
	for _, it := range n.items {
		if seen[it.Pod] {
			continue
		}
		seen[it.Pod] = true
		if c.cfg.Reference {
			for i := range c.pods {
				if c.pods[i].pod.ID == it.Pod {
					victims = append(victims, i)
					break
				}
			}
		} else if i, ok := c.podIndex[it.Pod]; ok {
			victims = append(victims, i)
		}
	}
	n.items = n.items[:0]
	n.recompute()
	c.terminate(n, now)
	c.dirty = true
	for _, i := range victims {
		c.displace(i, now)
	}
}

// displace returns a running pod to the pending queue after its node
// died: remaining lifetime is reduced by the time already served, the
// departure generation bumps so the stale departure event is inert, and
// the pod re-enters the queue flagged for the Reschedules counter.
func (c *Cluster) displace(i int, now sim.Time) {
	p := &c.pods[i]
	if p.state != stateRunning {
		return
	}
	c.removePlacement(i) // strips survivors of a split pod from other nodes
	if p.remaining > 0 {
		served := now - p.placedAt
		p.remaining -= served
		if p.remaining <= 0 {
			p.remaining = 1 // ns: died at the wire — reschedule, then depart
		}
	}
	p.departGen++
	p.state = statePending
	p.waitSince = now
	p.displaced = true
	c.res.Displaced++
	c.count("cluster/displacements")
	c.enqueue(i)
}
