package cluster_test

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"nestless/internal/cloud"
	"nestless/internal/cluster"
	"nestless/internal/faults"
	"nestless/internal/telemetry"
	"nestless/internal/trace"
)

// The cloud-model suite: the reconciler autoscaler must be invisible in
// the degenerate configuration (one zone, no spot — byte-identical to
// the imperative demand loop it replaced), and the non-degenerate
// features (spot revocation, zone drills, spread) must stay leak-free,
// conservation-audited and deterministic under chaos.

// gcpCloud resolves a spot-capable GCP configuration for tests.
func gcpCloud(t *testing.T, zones int, spotFrac float64) *cloud.Resolved {
	t.Helper()
	cl, err := cloud.Resolve(cloud.Options{
		Spec:     "gcp:n2",
		Zones:    zones,
		ZonesSet: true,
		SpotFrac: spotFrac, SpotFracSet: spotFrac > 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// applyCloud copies a resolved cloud configuration onto a cluster
// config, the same way cmd/costsim does.
func applyCloud(cfg *cluster.Config, cl *cloud.Resolved) {
	cfg.Catalog = cl.Catalog.Types
	cfg.Zones = cl.Zones
	cfg.ZoneNames = cl.ZoneNames
	cfg.SpotFrac = cl.SpotFrac
	cfg.SpotDiscount = cl.SpotDiscount
	if cl.Imperative {
		cfg.Autoscaler = cluster.Imperative
	}
}

// runWithDigest executes one lifecycle run and returns the result, the
// textual telemetry trace and the final world digest.
func runWithDigest(t *testing.T, cfg cluster.Config) (cluster.Result, string, uint64) {
	t.Helper()
	rec := telemetry.New()
	cfg.Rec = rec
	c := cluster.New(cfg)
	res := c.Run()
	if leaks := c.Leaks(); len(leaks) != 0 {
		t.Fatalf("leaks:\n  %s", strings.Join(leaks, "\n  "))
	}
	var buf bytes.Buffer
	if err := rec.WriteTextTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.String(), c.Digest()
}

// TestReconcilerMatchesImperative is the acceptance pin: with one zone
// and zero spot fraction, the declarative reconciler reproduces the
// imperative demand loop byte for byte — Result (modulo its own
// bookkeeping counters, which the imperative mode doesn't have), text
// telemetry and digest — across policies and seeds.
func TestReconcilerMatchesImperative(t *testing.T) {
	var rounds int
	for _, seed := range []int64{1, 9} {
		users := trace.Generate(churnConfig(seed, 6))
		for _, mode := range policyModes {
			cfg := cluster.Config{
				Seed:      seed,
				Pods:      users[int(seed)%len(users)].Pods,
				Horizon:   4 * time.Hour,
				BootDelay: 30 * time.Second,
			}
			mode.adjust(&cfg)
			rc := cfg
			rc.Autoscaler = cluster.Reconciler
			ic := cfg
			ic.Autoscaler = cluster.Imperative
			rres, rtrace, rdig := runWithDigest(t, rc)
			ires, itrace, idig := runWithDigest(t, ic)
			if ires.ReconcileRounds != 0 || ires.ReconcileActions != 0 {
				t.Fatalf("%s seed %d: imperative mode recorded reconcile work: %d rounds, %d actions",
					mode.name, seed, ires.ReconcileRounds, ires.ReconcileActions)
			}
			rounds += rres.ReconcileRounds
			a, b := rres, ires
			a.ReconcileRounds, a.ReconcileActions = 0, 0
			b.ReconcileRounds, b.ReconcileActions = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s seed %d: reconciler diverged from imperative beyond its counters:\nreconciler: %+v\nimperative: %+v",
					mode.name, seed, a, b)
			}
			if rtrace != itrace {
				t.Fatalf("%s seed %d: telemetry diverged (%d vs %d bytes)", mode.name, seed, len(rtrace), len(itrace))
			}
			if rdig != idig {
				t.Fatalf("%s seed %d: digest diverged: %016x vs %016x", mode.name, seed, rdig, idig)
			}
			if rtrace == "" {
				t.Fatalf("%s seed %d: empty telemetry trace", mode.name, seed)
			}
		}
	}
	if rounds == 0 {
		t.Fatal("no reconciler run ever counted a round — the reconcile loop never engaged")
	}
}

// TestSpotCostSplit: without spot capacity the on-demand integral IS
// the cost integral, bitwise; with spot capacity the two halves sum to
// the total within float tolerance and the spot half is discounted.
func TestSpotCostSplit(t *testing.T) {
	users := trace.Generate(churnConfig(4, 4))
	base := cluster.Config{
		Seed:      4,
		Pods:      users[0].Pods,
		Policy:    cluster.Hostlo,
		Horizon:   4 * time.Hour,
		BootDelay: 30 * time.Second,
	}
	res := cluster.Simulate(base)
	if res.CostSpotDollars != 0 {
		t.Fatalf("on-demand run accrued spot cost $%v", res.CostSpotDollars)
	}
	if res.CostOnDemandDollars != res.CostDollars {
		t.Fatalf("on-demand run: split %v != total %v (must be bitwise identical)",
			res.CostOnDemandDollars, res.CostDollars)
	}

	spot := base
	applyCloud(&spot, gcpCloud(t, 2, 0.5))
	sres := cluster.Simulate(spot)
	if sres.SpotProvisions == 0 {
		t.Fatal("spot run never provisioned a spot node")
	}
	if sres.CostSpotDollars <= 0 {
		t.Fatalf("spot run accrued no spot cost (split %v / %v)", sres.CostSpotDollars, sres.CostOnDemandDollars)
	}
	if diff := math.Abs(sres.CostSpotDollars + sres.CostOnDemandDollars - sres.CostDollars); diff > 1e-9 {
		t.Fatalf("cost split off by %g: %v + %v != %v",
			diff, sres.CostSpotDollars, sres.CostOnDemandDollars, sres.CostDollars)
	}
}

// spotChaosConfig is the shared revocation-chaos world: three GCP
// zones, a high spot fraction, aggressive revocation plus provisioning
// flakiness.
func spotChaosConfig(t *testing.T, seed int64, pods []trace.Pod) cluster.Config {
	t.Helper()
	sched, err := faults.ParseSpec("spot/*:crash:p=0.05;node/provision:fail:p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{
		Seed:      seed,
		Pods:      pods,
		Policy:    cluster.Hostlo,
		Horizon:   6 * time.Hour,
		BootDelay: 45 * time.Second,
		Faults:    sched,
		MaxSteps:  2_000_000,
	}
	if seed%2 == 0 {
		cfg.Policy = cluster.Kubernetes
	}
	applyCloud(&cfg, gcpCloud(t, 3, 0.6))
	return cfg
}

// TestSpotRevocationChaos sweeps seeded revocation schedules: every
// world must stay leak-free and conservation-clean, revocations must
// actually fire, and each one must push a replacement to on-demand.
func TestSpotRevocationChaos(t *testing.T) {
	users := trace.Generate(churnConfig(6, 8))
	var revoked, fallbacks, spotProv int
	for seed := int64(1); seed <= 8; seed++ {
		cfg := spotChaosConfig(t, seed, users[int(seed)%len(users)].Pods)
		c := cluster.New(cfg)
		res := c.Run()
		if leaks := c.Leaks(); len(leaks) != 0 {
			t.Errorf("seed %d: leaks:\n  %s", seed, strings.Join(leaks, "\n  "))
		}
		if got := res.Departed + res.Running + res.StillPending + res.Failed; got != res.Arrived {
			t.Errorf("seed %d: conservation broken: %d accounted, %d arrived", seed, got, res.Arrived)
		}
		if res.OnDemandFallbacks > res.SpotRevocations {
			t.Errorf("seed %d: %d fallbacks > %d revocations (fallback credits only come from revocations)",
				seed, res.OnDemandFallbacks, res.SpotRevocations)
		}
		if diff := math.Abs(res.CostSpotDollars + res.CostOnDemandDollars - res.CostDollars); diff > 1e-9 {
			t.Errorf("seed %d: cost split off by %g", seed, diff)
		}
		revoked += res.SpotRevocations
		fallbacks += res.OnDemandFallbacks
		spotProv += res.SpotProvisions
		t.Logf("seed %d %v: %d arrived, %d spot provisions, %d revocations, %d od fallbacks, $%.2f (%.2f spot / %.2f od)",
			seed, cfg.Policy, res.Arrived, res.SpotProvisions, res.SpotRevocations,
			res.OnDemandFallbacks, res.CostDollars, res.CostSpotDollars, res.CostOnDemandDollars)
	}
	if spotProv == 0 {
		t.Error("no seed provisioned spot capacity")
	}
	if revoked == 0 {
		t.Error("no seed revoked a spot node — the revocation fault point never engaged")
	}
	if fallbacks == 0 {
		t.Error("no revocation pushed a replacement to on-demand")
	}
}

// TestSpotChaosReplay: a spot-revocation world replays byte-identical —
// same Result, same telemetry bytes, same digest.
func TestSpotChaosReplay(t *testing.T) {
	users := trace.Generate(churnConfig(12, 4))
	cfg := spotChaosConfig(t, 3, users[1].Pods)
	r1, t1, d1 := runWithDigest(t, cfg)
	r2, t2, d2 := runWithDigest(t, cfg)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("replay diverged:\n%+v\n%+v", r1, r2)
	}
	if t1 != t2 {
		t.Fatalf("telemetry traces diverged (%d vs %d bytes)", len(t1), len(t2))
	}
	if d1 != d2 {
		t.Fatalf("digests diverged: %016x vs %016x", d1, d2)
	}
	if r1.SpotRevocations == 0 {
		t.Fatal("replay pair never revoked a node — chaos unexercised")
	}
}

// TestSpotChaosMatchesReference: the indexed core and the linear-scan
// reference must agree byte for byte under spot + zones too.
func TestSpotChaosMatchesReference(t *testing.T) {
	users := trace.Generate(churnConfig(21, 4))
	for _, seed := range []int64{2, 5} {
		cfg := spotChaosConfig(t, seed, users[int(seed)%len(users)].Pods)
		requireIdentical(t, cfg)
	}
}

// TestZoneSpreadBalanced: with a static workload (no departures, no
// faults) the reconciler's emptiest-zone placement keeps the fleet
// spread within one node across zones.
func TestZoneSpreadBalanced(t *testing.T) {
	var pods []trace.Pod
	for i := 0; i < 30; i++ {
		pods = append(pods, trace.Pod{
			ID:         fmt.Sprintf("p%d", i),
			Containers: []trace.Container{{CPU: 0.018, Mem: 0.018}},
		})
	}
	cfg := cluster.Config{
		Seed:    7,
		Pods:    pods,
		Policy:  cluster.Kubernetes,
		Horizon: 2 * time.Hour,
	}
	applyCloud(&cfg, gcpCloud(t, 3, 0))
	c := cluster.New(cfg)
	res := c.Run()
	if leaks := c.Leaks(); len(leaks) != 0 {
		t.Fatalf("leaks:\n  %s", strings.Join(leaks, "\n  "))
	}
	if len(res.ZoneSpread) != 3 {
		t.Fatalf("ZoneSpread %v, want 3 zones", res.ZoneSpread)
	}
	sum, min, max := 0, res.ZoneSpread[0], res.ZoneSpread[0]
	for _, v := range res.ZoneSpread {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if sum != res.FinalNodes {
		t.Fatalf("ZoneSpread %v sums to %d, FinalNodes %d", res.ZoneSpread, sum, res.FinalNodes)
	}
	if res.FinalNodes < 3 {
		t.Fatalf("fleet too small to test spread: %d nodes", res.FinalNodes)
	}
	if max-min > 1 {
		t.Fatalf("spread unbalanced: %v", res.ZoneSpread)
	}
}

// TestZoneKillDrill: a whole-zone crash rule kills every node in the
// zone, displaced pods reschedule, and the single-zone Result shape
// (nil ZoneSpread) survives for pre-cloud worlds.
func TestZoneKillDrill(t *testing.T) {
	users := trace.Generate(churnConfig(15, 6))
	sched, err := faults.ParseSpec("zone/us-central1-b:crash:p=0.4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{
		Seed:      15,
		Pods:      users[2].Pods,
		Policy:    cluster.Hostlo,
		Horizon:   6 * time.Hour,
		BootDelay: 30 * time.Second,
		Faults:    sched,
	}
	applyCloud(&cfg, gcpCloud(t, 3, 0))
	c := cluster.New(cfg)
	res := c.Run()
	if leaks := c.Leaks(); len(leaks) != 0 {
		t.Fatalf("leaks:\n  %s", strings.Join(leaks, "\n  "))
	}
	if res.ZoneKills == 0 {
		t.Fatal("the zone drill never fired")
	}
	if res.Kills == 0 {
		t.Fatal("zone drills fired but killed no node — the drill hit only empty zones")
	}
	if got := res.Departed + res.Running + res.StillPending + res.Failed; got != res.Arrived {
		t.Fatalf("conservation broken: %d accounted, %d arrived", got, res.Arrived)
	}

	// Single-zone worlds must not grow a spread vector.
	plain := cluster.Simulate(cluster.Config{
		Seed: 15, Pods: users[2].Pods, Policy: cluster.Hostlo, Horizon: 2 * time.Hour,
	})
	if plain.ZoneSpread != nil {
		t.Fatalf("single-zone run grew ZoneSpread %v", plain.ZoneSpread)
	}
}
