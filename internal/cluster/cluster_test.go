package cluster_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"nestless/internal/cloudsim"
	"nestless/internal/cluster"
	"nestless/internal/faults"
	"nestless/internal/telemetry"
	"nestless/internal/trace"
)

// churnConfig is the shared dynamic-workload generator shape used by the
// lifecycle tests: pods trickle in over the first hours and most depart
// well inside the horizon, with the Pareto tail keeping a few alive.
func churnConfig(seed int64, users int) trace.GenConfig {
	return trace.GenConfig{
		Seed:              seed,
		Users:             users,
		MeanPodsPerUser:   6,
		HeavyUserFraction: 0.2,
		MeanArrivalGap:    2 * time.Minute,
		MeanLifetime:      45 * time.Minute,
	}
}

// TestSteadyStateMatchesStatic is the dynamic/static equivalence check:
// with churn and faults off and instant boots, a lifecycle run must
// converge to exactly the fleet the static Fig. 9 packer prices — same
// cost rate, same VM count, for both policies, for every user tried.
func TestSteadyStateMatchesStatic(t *testing.T) {
	const horizon = 2 * time.Hour
	for _, seed := range []int64{42, 7} {
		users := trace.Generate(trace.DefaultConfig(seed))
		checked := 0
		for _, u := range users[:25] {
			static, err := cloudsim.SimulateUser(u, cloudsim.Catalog())
			if err != nil {
				continue // oversized pod: no static baseline exists
			}
			checked++
			for _, pol := range []cluster.Policy{cluster.Kubernetes, cluster.Hostlo} {
				c := cluster.New(cluster.Config{
					Seed:    seed,
					Pods:    u.Pods,
					Policy:  pol,
					Horizon: horizon,
				})
				res := c.Run()
				if leaks := c.Leaks(); len(leaks) != 0 {
					t.Fatalf("seed %d user %d %v: leaks:\n  %s", seed, u.ID, pol, strings.Join(leaks, "\n  "))
				}
				wantCost, wantVMs := static.KubeCostPerH, static.KubeVMs
				if pol == cluster.Hostlo {
					wantCost, wantVMs = static.HostloCostPerH, static.HostloVMs
				}
				if diff := res.FinalCostPerH - wantCost; diff > 1e-9 || diff < -1e-9 {
					t.Errorf("seed %d user %d %v: final cost %v/h, static %v/h",
						seed, u.ID, pol, res.FinalCostPerH, wantCost)
				}
				if res.FinalNodes != wantVMs {
					t.Errorf("seed %d user %d %v: %d nodes, static %d VMs",
						seed, u.ID, pol, res.FinalNodes, wantVMs)
				}
				if res.Arrived != len(u.Pods) || res.StillPending != 0 || res.Failed != 0 {
					t.Errorf("seed %d user %d %v: arrived %d/%d, pending %d, failed %d",
						seed, u.ID, pol, res.Arrived, len(u.Pods), res.StillPending, res.Failed)
				}
				// The whole fleet exists from t=0, so the cost integral is
				// the rate times the horizon.
				wantDollars := wantCost * horizon.Hours()
				if diff := res.CostDollars - wantDollars; diff > 1e-6 || diff < -1e-6 {
					t.Errorf("seed %d user %d %v: cost $%v, want $%v", seed, u.ID, pol, res.CostDollars, wantDollars)
				}
			}
		}
		if checked == 0 {
			t.Fatalf("seed %d: no user had a static baseline", seed)
		}
	}
}

// TestClusterParallelMatchesSerial: the population fan-out must be a
// pure function of (users, cfg) — any worker count, identical results.
func TestClusterParallelMatchesSerial(t *testing.T) {
	users := trace.Generate(churnConfig(5, 10))
	sched, err := faults.ParseSpec("node/*:crash:p=0.02;node/provision:fail:p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{
		Seed:      99,
		Horizon:   4 * time.Hour,
		BootDelay: 30 * time.Second,
		Faults:    sched,
	}
	serial := cluster.SimulatePopulation(users, cfg, 1)
	parallel := cluster.SimulatePopulation(users, cfg, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel population run diverged from serial")
	}
	// The trajectories must align for merging, and merging must be
	// deterministic too.
	kube := make([]cluster.Result, len(serial))
	for i, u := range serial {
		kube[i] = u.Kube
	}
	m1 := cluster.MergeTrajectories(kube)
	m2 := cluster.MergeTrajectories(kube)
	if !reflect.DeepEqual(m1, m2) || len(m1) == 0 {
		t.Fatal("trajectory merge not deterministic")
	}
}

// clusterMenu generates fault rules for the lifecycle chaos sweep: node
// kills (targeted and fleet-wide) plus provisioning failures and delays.
var clusterMenu = []func(r *rand.Rand) string{
	func(r *rand.Rand) string { return fmt.Sprintf("node/*:crash:p=%g", 0.01*float64(1+r.Intn(4))) },
	func(r *rand.Rand) string { return fmt.Sprintf("node/n%d:crash:n=1", r.Intn(3)) },
	func(r *rand.Rand) string { return fmt.Sprintf("node/provision:fail:p=%g", 0.1*float64(1+r.Intn(3))) },
	func(r *rand.Rand) string { return fmt.Sprintf("node/provision:fail:n=%d", 1+r.Intn(3)) },
	func(r *rand.Rand) string { return "node/provision:delay:n=2:d=90s" },
}

// randomClusterSpec draws 1–3 distinct-point rules from the menu.
func randomClusterSpec(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	n := 1 + r.Intn(3)
	seen := make(map[string]bool)
	var rules []string
	for len(rules) < n {
		rule := clusterMenu[r.Intn(len(clusterMenu))](r)
		point := rule[:strings.Index(rule, ":")]
		if seen[point] {
			continue
		}
		seen[point] = true
		rules = append(rules, rule)
	}
	return strings.Join(rules, ";")
}

// TestClusterChaos: seeded random fault schedules over churned
// workloads. Every run must end with the books balanced — no leaked
// placements, every displaced pod rescheduled or still accounted in the
// pending queue, conservation across all pod states — and the sweep as
// a whole must actually exercise both kill and provisioning faults.
func TestClusterChaos(t *testing.T) {
	users := trace.Generate(churnConfig(3, 16))
	var kills, retries, displaced, reschedules int
	for seed := int64(1); seed <= 14; seed++ {
		spec := randomClusterSpec(seed)
		sched, err := faults.ParseSpec(spec)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		pol := cluster.Kubernetes
		if seed%2 == 0 {
			pol = cluster.Hostlo
		}
		u := users[int(seed)%len(users)]
		c := cluster.New(cluster.Config{
			Seed:      seed,
			Pods:      u.Pods,
			Policy:    pol,
			Horizon:   6 * time.Hour,
			BootDelay: 45 * time.Second,
			Faults:    sched,
			MaxSteps:  2_000_000,
		})
		res := c.Run()
		if leaks := c.Leaks(); len(leaks) != 0 {
			t.Errorf("seed %d spec %q (%v): leaks:\n  %s", seed, spec, pol, strings.Join(leaks, "\n  "))
		}
		if got := res.Departed + res.Running + res.StillPending + res.Failed; got != res.Arrived {
			t.Errorf("seed %d spec %q: conservation broken: %d accounted, %d arrived", seed, spec, got, res.Arrived)
		}
		if res.Reschedules > res.Displaced {
			t.Errorf("seed %d spec %q: %d reschedules > %d displacements", seed, spec, res.Reschedules, res.Displaced)
		}
		kills += res.Kills
		retries += res.ProvisionRetries
		displaced += res.Displaced
		reschedules += res.Reschedules
		t.Logf("seed %d %v spec %q: %d arrived, %d kills, %d displaced, %d rescheduled, %d retries, $%.2f",
			seed, pol, spec, res.Arrived, res.Kills, res.Displaced, res.Reschedules, res.ProvisionRetries, res.CostDollars)
	}
	if kills == 0 {
		t.Error("no seed killed a node — the kill fault point never engaged")
	}
	if retries == 0 {
		t.Error("no seed retried provisioning — the provision fault point never engaged")
	}
	if displaced == 0 || reschedules == 0 {
		t.Errorf("displacement path idle: %d displaced, %d rescheduled", displaced, reschedules)
	}
}

// TestClusterChaosReplay: a faulted lifecycle run replays byte-identical
// — same Result (DeepEqual, trajectories included) and same telemetry
// trace bytes.
func TestClusterChaosReplay(t *testing.T) {
	users := trace.Generate(churnConfig(8, 4))
	sched, err := faults.ParseSpec("node/*:crash:p=0.03;node/provision:fail:p=0.2;node/provision:delay:n=2:d=60s")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (cluster.Result, string) {
		rec := telemetry.New()
		res := cluster.Simulate(cluster.Config{
			Seed:      123,
			Pods:      users[1].Pods,
			Policy:    cluster.Hostlo,
			Horizon:   6 * time.Hour,
			BootDelay: 45 * time.Second,
			Faults:    sched,
			Rec:       rec,
		})
		var buf bytes.Buffer
		if err := rec.WriteTextTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	r1, t1 := run()
	r2, t2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("replay diverged:\n%+v\n%+v", r1, r2)
	}
	if t1 != t2 {
		t.Fatalf("telemetry traces diverged (%d vs %d bytes)", len(t1), len(t2))
	}
	if t1 == "" {
		t.Fatal("empty trace — recorder not wired")
	}
}

// TestNodeKillDisplacesAndReschedules pins the drain path: kill the
// first node once, and every displaced pod must be running again by the
// horizon on a freshly provisioned node.
func TestNodeKillDisplacesAndReschedules(t *testing.T) {
	sched, err := faults.ParseSpec("node/*:crash:n=1")
	if err != nil {
		t.Fatal(err)
	}
	pods := []trace.Pod{
		{ID: "a", Containers: []trace.Container{{CPU: 0.01, Mem: 0.01}}},
		{ID: "b", Containers: []trace.Container{{CPU: 0.01, Mem: 0.01}}},
	}
	c := cluster.New(cluster.Config{
		Seed:      1,
		Pods:      pods,
		Horizon:   2 * time.Hour,
		BootDelay: 30 * time.Second,
		Faults:    sched,
	})
	res := c.Run()
	if leaks := c.Leaks(); len(leaks) != 0 {
		t.Fatalf("leaks:\n  %s", strings.Join(leaks, "\n  "))
	}
	if res.Kills != 1 {
		t.Fatalf("kills = %d, want 1", res.Kills)
	}
	if res.Displaced != 2 || res.Reschedules != 2 {
		t.Fatalf("displaced %d / rescheduled %d, want 2 / 2", res.Displaced, res.Reschedules)
	}
	if res.Running != 2 || res.StillPending != 0 {
		t.Fatalf("running %d pending %d at horizon, want 2 / 0", res.Running, res.StillPending)
	}
	if res.ScaleUps < 2 {
		t.Fatalf("scale-ups = %d, want ≥ 2 (initial + replacement)", res.ScaleUps)
	}
}

// TestBootDelayAndHorizonAccounting pins time-to-schedule and
// beyond-horizon bookkeeping.
func TestBootDelayAndHorizonAccounting(t *testing.T) {
	pods := []trace.Pod{
		{ID: "now", Containers: []trace.Container{{CPU: 0.01, Mem: 0.01}}},
		{ID: "later", Arrival: time.Hour, Containers: []trace.Container{{CPU: 0.01, Mem: 0.01}}},
		{ID: "never", Arrival: 3 * time.Hour, Containers: []trace.Container{{CPU: 0.01, Mem: 0.01}}},
	}
	res := cluster.Simulate(cluster.Config{
		Seed:      1,
		Pods:      pods,
		Horizon:   2 * time.Hour,
		BootDelay: 30 * time.Second,
	})
	if res.Arrived != 2 || res.BeyondHorizon != 1 {
		t.Fatalf("arrived %d, beyond horizon %d; want 2, 1", res.Arrived, res.BeyondHorizon)
	}
	// The first pod waits out the boot delay; the second lands on the
	// already-live node instantly.
	if res.TTSMax != 30*time.Second {
		t.Fatalf("TTS max = %v, want 30s (the boot delay)", res.TTSMax)
	}
	if res.TTSSum != res.TTSMean*time.Duration(res.Scheduled) {
		t.Logf("TTSSum %v, mean %v × %d", res.TTSSum, res.TTSMean, res.Scheduled)
	}
	if res.Scheduled != 2 {
		t.Fatalf("scheduled = %d, want 2", res.Scheduled)
	}
}

// TestIdleReclaim: once every pod departs, the autoscaler must drain the
// fleet after the hysteresis grace — an empty cluster costs nothing.
func TestIdleReclaim(t *testing.T) {
	var pods []trace.Pod
	for i := 0; i < 5; i++ {
		pods = append(pods, trace.Pod{
			ID:       fmt.Sprintf("p%d", i),
			Lifetime: 10 * time.Minute,
			Containers: []trace.Container{
				{CPU: 0.02, Mem: 0.02},
			},
		})
	}
	c := cluster.New(cluster.Config{
		Seed:      1,
		Pods:      pods,
		Horizon:   2 * time.Hour,
		IdleGrace: 5 * time.Minute,
	})
	res := c.Run()
	if leaks := c.Leaks(); len(leaks) != 0 {
		t.Fatalf("leaks:\n  %s", strings.Join(leaks, "\n  "))
	}
	if res.Departed != 5 {
		t.Fatalf("departed = %d, want 5", res.Departed)
	}
	if res.FinalNodes != 0 || res.ScaleDowns == 0 {
		t.Fatalf("final nodes %d (scale-downs %d), want 0 (>0)", res.FinalNodes, res.ScaleDowns)
	}
	// Each 0.02-rel pod fills most of a large node, so the fleet is five
	// larges running lifetime + grace ≈ 15 minutes (reclaimed on the
	// first tick past the grace): 5 × $0.112/h × 0.25h = $0.14 — not the
	// $1.12 a full-horizon fleet would cost.
	if want := 5 * 0.112 * 0.25; res.CostDollars < want-1e-9 || res.CostDollars > want+0.02 {
		t.Fatalf("cost $%v, want ≈ $%v (15-minute fleet)", res.CostDollars, want)
	}
	if res.Samples[len(res.Samples)-1].CostPerH != 0 {
		t.Fatal("trajectory does not end at zero cost")
	}
}

// TestHostloLifecycleSavesUnderChurn: over a churned population the
// Hostlo optimizer must actually run and must not lose money against
// the Kubernetes baseline in aggregate.
func TestHostloLifecycleSavesUnderChurn(t *testing.T) {
	users := trace.Generate(churnConfig(21, 12))
	runs := cluster.SimulatePopulation(users, cluster.Config{
		Seed:    7,
		Horizon: 4 * time.Hour,
	}, 4)
	var kube, hostlo float64
	var optRuns int
	for _, u := range runs {
		kube += u.Kube.CostDollars
		hostlo += u.Hostlo.CostDollars
		optRuns += u.Hostlo.OptimizerRuns
		if u.Kube.OptimizerRuns != 0 {
			t.Fatalf("user %d: kubernetes run invoked the optimizer", u.UserID)
		}
	}
	if optRuns == 0 {
		t.Fatal("hostlo optimizer never ran")
	}
	t.Logf("population cost over 4h: kube $%.2f, hostlo $%.2f (%.1f%% saved), %d optimizer runs",
		kube, hostlo, 100*(kube-hostlo)/kube, optRuns)
	if hostlo > kube*1.001 {
		t.Fatalf("hostlo $%.2f costs more than kube $%.2f under churn", hostlo, kube)
	}
}
