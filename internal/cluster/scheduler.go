package cluster

import (
	"sort"
	"time"

	"nestless/internal/cloudsim"
	"nestless/internal/sim"
	"nestless/internal/trace"
)

// The scheduler: a pending queue drained in biggest-first order with
// head-of-line blocking, mirroring the static packer's loop shape so a
// no-churn run reproduces cloudsim's packing operation for operation.
//
// The queue yields pods biggest-first with same-size pods in arrival
// order — exactly packKubernetesPolicy's stable sort — and places pods
// one at a time: whole pod onto the most-requested live node that fits,
// otherwise the autoscaler is asked for the cheapest type that fits the
// whole pod and the pass stops until that node is live. Blocking on the
// head pod is what keeps the dynamic placement sequence identical to
// the static one — placing later pods first would let them steal
// capacity the static packer gave the bigger pod.
//
// In indexed mode the queue is the podQueue heap and the fitting node
// comes from the capacity index (O(log fleet)); in reference mode both
// revert to the original sorted slice and creation-order fleet scan.
// The decisions are byte-identical (see capindex.go).

// schedulePass drains the pending queue as far as capacity allows.
func (c *Cluster) schedulePass() {
	c.schedPend = false
	if c.cfg.Reference {
		c.sortQueue()
	}
	for c.queueLen() > 0 {
		i := c.queueHead()
		p := &c.pods[i]
		if p.state != statePending {
			// Defensive: a stale queue entry (should not happen; Leaks
			// would flag it).
			c.queuePop()
			continue
		}
		// Blocked-head memo: schedulePass runs on every event, but most
		// events (pod arrivals while a node boots) touch only the queue,
		// not the capacity index. If the head pod is the one that
		// blocked last time, the index multiset is unchanged since (ver
		// match — tryPlace's tentative split placements bump it, so a
		// revert can't alias), and a capacity request is already in
		// flight, then re-running tryPlace would repeat the exact same
		// failed queries and skip requestNode: a pure no-op. Skip it.
		if !c.cfg.Reference && c.inflight > 0 &&
			i == c.blockedPod && c.idx.ver == c.blockedVer {
			break
		}
		placed, blocked := c.tryPlace(i)
		if blocked {
			if !c.cfg.Reference {
				c.blockedPod, c.blockedVer = i, c.idx.ver
			}
			break
		}
		c.queuePop()
		if placed {
			c.markScheduled(i)
		}
		// !placed && !blocked: the pod failed permanently (markFailed
		// already ran inside tryPlace).
	}
	if c.rec != nil {
		c.rec.Instant("cluster/scheduler", "pass", "pending", float64(c.queueLen()))
	}
	// Queue drained: let the Hostlo optimizer re-pack what churn (or
	// the batch placement) fragmented.
	if c.queueLen() == 0 && c.cfg.Policy == Hostlo && c.dirty {
		c.optimize()
	}
}

// queueHead returns the next pod to place without removing it.
func (c *Cluster) queueHead() int {
	if c.cfg.Reference {
		return c.queue[0]
	}
	return c.pq.peek().idx
}

// queuePop removes the head entry.
func (c *Cluster) queuePop() {
	if c.cfg.Reference {
		c.queue = c.queue[1:]
		return
	}
	c.pq.pop()
}

// sortQueue orders pending pods biggest-first (stable) — reference mode
// only; the heap maintains this order incrementally.
func (c *Cluster) sortQueue() {
	sort.SliceStable(c.queue, func(a, b int) bool {
		pa, pb := &c.pods[c.queue[a]], &c.pods[c.queue[b]]
		return pa.cpu+pa.mem > pb.cpu+pb.mem
	})
}

// tryPlace attempts to place pod i. Returns placed=true on success;
// blocked=true when the pod must wait (capacity requested or already in
// flight). placed=false, blocked=false means the pod failed permanently.
func (c *Cluster) tryPlace(i int) (placed, blocked bool) {
	p := &c.pods[i]
	fits := cloudsim.CheapestFitting(c.cat, p.cpu, p.mem)
	if fits < 0 {
		// Wider than the largest machine: under whole-pod placement the
		// pod can never run (the static simulation's Skipped class).
		// Hostlo can still run it container by container.
		if c.cfg.Policy != Hostlo {
			c.markFailed(i)
			return false, false
		}
		return c.tryPlaceSplit(i)
	}
	if n := c.bestWholeFit(p.cpu, p.mem); n != nil {
		c.placeItems(n, i, p.pod)
		return true, false
	}
	// No live node fits: ask the autoscaler for the cheapest type that
	// holds the whole pod, one request in flight at a time.
	c.scaleUp(fits)
	return false, true
}

// bestWholeFit returns the most-requested live node that fits
// (cpu, mem), ties broken by creation order — the static packer's
// comparator. Indexed mode combines the per-type treap queries,
// threading the incumbent through so later trees stop at the first
// entry that cannot beat it; the reference path is the original
// creation-order fleet scan.
func (c *Cluster) bestWholeFit(cpu, mem float64) *node {
	if c.cfg.Reference {
		return c.bestWholeFitScan(cpu, mem)
	}
	sum := cpu + mem
	qmin := cpu
	if mem < cpu {
		qmin = mem
	}
	var best *node
	var bestScore float64
	for _, root := range c.idx.trees {
		if n := root.firstFit(cpu, mem, sum, qmin, best, bestScore); n != nil {
			best, bestScore = n, n.idxScore
		}
	}
	return best
}

// bestWholeFitScan is the O(fleet) reference implementation: scan live
// nodes in creation order for the most-requested node that fits.
func (c *Cluster) bestWholeFitScan(cpu, mem float64) *node {
	var best *node
	var bestScore float64
	for _, n := range c.nodes {
		if !n.live {
			continue
		}
		t := c.cat[n.typ]
		if t.RelCPU-n.usedCPU >= cpu && t.RelMem-n.usedMem >= mem {
			score := cloudsim.MostRequestedFraction(t, n.usedCPU, n.usedMem)
			if best == nil || score > bestScore {
				best, bestScore = n, score
			}
		}
	}
	return best
}

// addItem lands one container on a node, maintaining the used sums, the
// capacity index and the placement map.
func (c *Cluster) addItem(n *node, i int, it cloudsim.PlacedItem) {
	n.items = append(n.items, it)
	n.usedCPU += it.CPU
	n.usedMem += it.Mem
	c.touchNode(n)
	c.podNodeLink(i, n.id)
}

// placeItems lands every container of a pod on one node, in container
// order (matching the static packer's accumulation order).
func (c *Cluster) placeItems(n *node, i int, pod trace.Pod) {
	for _, ct := range pod.Containers {
		n.items = append(n.items, cloudsim.PlacedItem{Pod: pod.ID, CPU: ct.CPU, Mem: ct.Mem})
		n.usedCPU += ct.CPU
		n.usedMem += ct.Mem
	}
	c.touchNode(n)
	c.podNodeLink(i, n.id)
	c.markDirty(n)
}

// tryPlaceSplit places an oversized pod container by container across
// live nodes (biggest container first, most-requested node that fits).
// All-or-nothing: if some container fits no live node, every tentative
// placement is reverted and a node for the biggest unplaced container
// is requested.
func (c *Cluster) tryPlaceSplit(i int) (placed, blocked bool) {
	p := &c.pods[i]
	ctrs := append([]trace.Container(nil), p.pod.Containers...)
	sort.SliceStable(ctrs, func(a, b int) bool {
		return ctrs[a].CPU+ctrs[a].Mem > ctrs[b].CPU+ctrs[b].Mem
	})
	type placement struct {
		n    *node
		prev int // item count before the tentative append
	}
	var done []placement
	revert := func() {
		for k := len(done) - 1; k >= 0; k-- {
			d := done[k]
			d.n.items = d.n.items[:d.prev]
			d.n.recompute()
			c.touchNode(d.n)
		}
		if !c.cfg.Reference {
			p.onNodes = p.onNodes[:0]
		}
	}
	for _, ct := range ctrs {
		fits := cloudsim.CheapestFitting(c.cat, ct.CPU, ct.Mem)
		if fits < 0 {
			// A single container wider than the largest machine can
			// never run anywhere.
			revert()
			c.markFailed(i)
			return false, false
		}
		n := c.bestWholeFit(ct.CPU, ct.Mem)
		if n == nil {
			revert()
			c.scaleUp(fits)
			return false, true
		}
		done = append(done, placement{n: n, prev: len(n.items)})
		c.addItem(n, i, cloudsim.PlacedItem{Pod: p.pod.ID, CPU: ct.CPU, Mem: ct.Mem})
	}
	for _, d := range done {
		c.markDirty(d.n)
	}
	return true, false
}

// markScheduled finishes a successful placement: departure scheduling,
// time-to-schedule accounting, reschedule counting.
func (c *Cluster) markScheduled(i int) {
	p := &c.pods[i]
	now := c.eng.Now()
	p.state = stateRunning
	p.placedAt = now
	if p.displaced {
		p.displaced = false
		c.res.Reschedules++
		c.count("cluster/reschedules")
	}
	if !p.scheduledOnce {
		p.scheduledOnce = true
		c.res.Scheduled++
		c.count("cluster/scheduled")
		c.tts.AddDuration(time.Duration(now - p.arrivedAt))
	}
	if p.remaining > 0 {
		p.departGen++
		at := now + sim.Time(p.remaining)
		if at <= sim.Time(c.cfg.Horizon) {
			c.schedEvent(at, evDepart, int64(i), int64(p.departGen))
		}
	}
}

// markFailed retires a pod that can never be placed under the policy.
func (c *Cluster) markFailed(i int) {
	c.pods[i].state = stateFailed
	c.res.Failed++
	c.count("cluster/failed")
	if c.rec != nil {
		c.rec.Instant("cluster/scheduler", "unschedulable", "pod", float64(i))
	}
}
