package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nestless/internal/cloudsim"
	"nestless/internal/sim"
	"nestless/internal/trace"
)

// The scheduler: a pending queue drained in biggest-first order with
// head-of-line blocking, mirroring the static packer's loop shape so a
// no-churn run reproduces cloudsim's packing operation for operation.
//
// Each pass sorts the queue biggest-first (stable, so same-size pods
// keep arrival order — exactly packKubernetesPolicy's sort) and places
// pods one at a time: whole pod onto the most-requested live node that
// fits, otherwise the autoscaler is asked for the cheapest type that
// fits the whole pod and the pass stops until that node is live.
// Blocking on the head pod is what keeps the dynamic placement sequence
// identical to the static one — placing later pods first would let them
// steal capacity the static packer gave the bigger pod.

// schedulePass drains the pending queue as far as capacity allows.
func (c *Cluster) schedulePass() {
	c.schedPend = false
	c.sortQueue()
	for len(c.queue) > 0 {
		i := c.queue[0]
		p := &c.pods[i]
		if p.state != statePending {
			// Defensive: a stale queue entry (should not happen; Leaks
			// would flag it).
			c.queue = c.queue[1:]
			continue
		}
		placed, blocked := c.tryPlace(i)
		if blocked {
			break
		}
		c.queue = c.queue[1:]
		if placed {
			c.markScheduled(i)
		}
		// !placed && !blocked: the pod failed permanently (markFailed
		// already ran inside tryPlace).
	}
	if c.rec != nil {
		c.rec.Instant("cluster/scheduler", "pass", "pending", float64(len(c.queue)))
	}
	// Queue drained: let the Hostlo optimizer re-pack what churn (or
	// the batch placement) fragmented.
	if len(c.queue) == 0 && c.cfg.Policy == Hostlo && c.dirty {
		c.optimize()
	}
}

// sortQueue orders pending pods biggest-first (stable).
func (c *Cluster) sortQueue() {
	sort.SliceStable(c.queue, func(a, b int) bool {
		pa, pb := &c.pods[c.queue[a]], &c.pods[c.queue[b]]
		return pa.cpu+pa.mem > pb.cpu+pb.mem
	})
}

// tryPlace attempts to place pod i. Returns placed=true on success;
// blocked=true when the pod must wait (capacity requested or already in
// flight). placed=false, blocked=false means the pod failed permanently.
func (c *Cluster) tryPlace(i int) (placed, blocked bool) {
	p := &c.pods[i]
	if fits := cloudsim.CheapestFitting(c.cat, p.cpu, p.mem); fits < 0 {
		// Wider than the largest machine: under whole-pod placement the
		// pod can never run (the static simulation's Skipped class).
		// Hostlo can still run it container by container.
		if c.cfg.Policy != Hostlo {
			c.markFailed(i)
			return false, false
		}
		return c.tryPlaceSplit(i)
	}
	if n := c.bestWholeFit(p.cpu, p.mem); n != nil {
		c.placeItems(n, p.pod)
		return true, false
	}
	// No live node fits: ask for the cheapest type that holds the whole
	// pod, one request in flight at a time.
	if c.inflight == 0 {
		c.requestNode(cloudsim.CheapestFitting(c.cat, p.cpu, p.mem))
	}
	return false, true
}

// bestWholeFit scans live nodes in creation order for the
// most-requested node that fits (cpu, mem) — the same comparator, in
// the same order, as the static packer.
func (c *Cluster) bestWholeFit(cpu, mem float64) *node {
	var best *node
	var bestScore float64
	for _, n := range c.nodes {
		if !n.live {
			continue
		}
		t := c.cat[n.typ]
		if t.RelCPU-n.usedCPU >= cpu && t.RelMem-n.usedMem >= mem {
			score := cloudsim.MostRequestedFraction(t, n.usedCPU, n.usedMem)
			if best == nil || score > bestScore {
				best, bestScore = n, score
			}
		}
	}
	return best
}

// placeItems lands every container of a pod on one node, in container
// order (matching the static packer's accumulation order).
func (c *Cluster) placeItems(n *node, pod trace.Pod) {
	for _, ct := range pod.Containers {
		n.items = append(n.items, cloudsim.PlacedItem{Pod: pod.ID, CPU: ct.CPU, Mem: ct.Mem})
		n.usedCPU += ct.CPU
		n.usedMem += ct.Mem
	}
	c.dirty = true
}

// tryPlaceSplit places an oversized pod container by container across
// live nodes (biggest container first, most-requested node that fits).
// All-or-nothing: if some container fits no live node, every tentative
// placement is reverted and a node for the biggest unplaced container
// is requested.
func (c *Cluster) tryPlaceSplit(i int) (placed, blocked bool) {
	p := &c.pods[i]
	ctrs := append([]trace.Container(nil), p.pod.Containers...)
	sort.SliceStable(ctrs, func(a, b int) bool {
		return ctrs[a].CPU+ctrs[a].Mem > ctrs[b].CPU+ctrs[b].Mem
	})
	type placement struct {
		n    *node
		prev int // item count before the tentative append
	}
	var done []placement
	revert := func() {
		for k := len(done) - 1; k >= 0; k-- {
			d := done[k]
			d.n.items = d.n.items[:d.prev]
			d.n.recompute()
		}
	}
	for _, ct := range ctrs {
		if cloudsim.CheapestFitting(c.cat, ct.CPU, ct.Mem) < 0 {
			// A single container wider than the largest machine can
			// never run anywhere.
			revert()
			c.markFailed(i)
			return false, false
		}
		n := c.bestWholeFit(ct.CPU, ct.Mem)
		if n == nil {
			revert()
			if c.inflight == 0 {
				c.requestNode(cloudsim.CheapestFitting(c.cat, ct.CPU, ct.Mem))
			}
			return false, true
		}
		done = append(done, placement{n: n, prev: len(n.items)})
		n.items = append(n.items, cloudsim.PlacedItem{Pod: p.pod.ID, CPU: ct.CPU, Mem: ct.Mem})
		n.usedCPU += ct.CPU
		n.usedMem += ct.Mem
	}
	c.dirty = true
	return true, false
}

// markScheduled finishes a successful placement: departure scheduling,
// time-to-schedule accounting, reschedule counting.
func (c *Cluster) markScheduled(i int) {
	p := &c.pods[i]
	now := c.eng.Now()
	p.state = stateRunning
	p.placedAt = now
	if p.displaced {
		p.displaced = false
		c.res.Reschedules++
		c.count("cluster/reschedules")
	}
	if !p.scheduledOnce {
		p.scheduledOnce = true
		c.res.Scheduled++
		c.count("cluster/scheduled")
		c.tts.AddDuration(time.Duration(now - p.arrivedAt))
	}
	if p.remaining > 0 {
		p.departGen++
		gen := p.departGen
		at := now + sim.Time(p.remaining)
		if at <= sim.Time(c.cfg.Horizon) {
			c.eng.At(at, func() { c.depart(i, gen) })
		}
	}
}

// markFailed retires a pod that can never be placed under the policy.
func (c *Cluster) markFailed(i int) {
	c.pods[i].state = stateFailed
	c.res.Failed++
	c.count("cluster/failed")
	if c.rec != nil {
		c.rec.Instant("cluster/scheduler", "unschedulable", "pod", float64(i))
	}
}

// optimize runs the Hostlo step-4 optimizer over the live fleet and
// reconciles nodes to the improved placement. Containers move between
// nodes (a migration the Hostlo device makes cheap — the pod's network
// identity does not change); VMs the optimizer shrank or emptied are
// retired, VMs it re-typed are replaced. Reconciliation is instant in
// the model: migration latency is not priced, only fleet time is.
func (c *Cluster) optimize() {
	c.dirty = false
	live := make([]*node, 0, c.liveCount)
	placedVMs := make([]cloudsim.PlacedVM, 0, c.liveCount)
	for _, n := range c.nodes {
		if !n.live {
			continue
		}
		live = append(live, n)
		placedVMs = append(placedVMs, cloudsim.PlacedVM{Type: n.typ, Items: n.items})
	}
	if len(live) == 0 {
		return
	}
	improved := cloudsim.OptimizeHostlo(placedVMs, c.cat)
	c.res.OptimizerRuns++
	c.count("cluster/optimizer_runs")
	c.reconcile(live, improved)
}

// vmSignature is a canonical content digest used to match optimized VMs
// back onto existing nodes (type + sorted item multiset).
func vmSignature(typ int, items []cloudsim.PlacedItem) string {
	keys := make([]string, len(items))
	for i, it := range items {
		keys[i] = fmt.Sprintf("%s|%.6f|%.6f", it.Pod, it.CPU, it.Mem)
	}
	sort.Strings(keys)
	return fmt.Sprintf("%d;%s", typ, strings.Join(keys, ";"))
}

// reconcile maps an optimized placement onto the fleet: nodes whose
// type and contents are unchanged are kept (their cost clock keeps
// running), the rest are retired and replacements created. The moves
// counter records how much the optimizer actually churned.
func (c *Cluster) reconcile(live []*node, improved []cloudsim.PlacedVM) {
	now := c.eng.Now()
	// Index surviving nodes by signature; each can absorb one VM.
	avail := map[string][]*node{}
	for _, n := range live {
		sig := vmSignature(n.typ, n.items)
		avail[sig] = append(avail[sig], n)
	}
	matched := map[*node]bool{}
	var created int
	for _, pv := range improved {
		sig := vmSignature(pv.Type, pv.Items)
		if q := avail[sig]; len(q) > 0 {
			n := q[0]
			avail[sig] = q[1:]
			matched[n] = true
			// Canonicalize item order (and with it the used sums) to the
			// optimizer's order, so future passes see identical input.
			n.items = append(n.items[:0], pv.Items...)
			n.recompute()
			continue
		}
		n := c.createNode(pv.Type, now)
		n.items = append(n.items, pv.Items...)
		n.recompute()
		if len(n.items) == 0 {
			n.idleSince = now
		}
		created++
	}
	retired := 0
	for _, n := range live {
		if matched[n] {
			continue
		}
		n.items = n.items[:0]
		n.recompute()
		c.terminate(n, now)
		retired++
	}
	if created > 0 || retired > 0 {
		c.res.OptimizerMoves += created + retired
		if c.rec != nil {
			c.rec.Instant("cluster/optimizer", "repack", "moves", float64(created+retired))
			c.rec.Metrics().Counter("cluster/optimizer_moves").Add(float64(created + retired))
		}
	}
}
