package cluster

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"nestless/internal/ctrace"
	"nestless/internal/sim"
	"nestless/internal/trace"
)

// Streaming execution: the event-feed face of the cluster world, built
// for trace replay (internal/ctrace) and the sharded runner
// (internal/shard). Instead of stamping the whole workload into
// Config.Pods up front, the caller arms the world with Start, feeds it
// normalized pod events in time order with FeedEvent, advances the
// engine in bounded epochs with Advance, and closes the books with
// Finish. Departures are event-driven — a trace's Finish/Kill row ends
// the pod at its recorded absolute time, whether it spent its life
// running or waiting in the queue — which is exactly the semantics of a
// recorded trace (the synthetic Pods path keeps its relative-lifetime
// semantics untouched).
//
// The shard runner's extra faces live here too: TransferOut/
// InjectTransfer are the explicit transfer mailboxes (voxelcraft's
// transfer-out/transfer-in phases) drained only at tick barriers, and
// Digest is the per-epoch world fingerprint the runner folds across
// shards to prove schedule independence.

// Start arms the world for streaming execution: the autoscaler tick and
// trajectory sample chains begin, and the engine sits at t=0 waiting
// for FeedEvent/Advance. Exclusive with Run.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.schedEvent(sim.Time(c.cfg.ScaleEvery), evTick, 0, 0)
	c.schedEvent(sim.Time(c.cfg.SampleEvery), evSample, 0, 0)
}

// NoteBeyondHorizon books one submit whose timestamp fell past the
// horizon (the runner counts them while draining the trace tail, so
// replay accounting matches the Pods path's BeyondHorizon).
func (c *Cluster) NoteBeyondHorizon() { c.res.BeyondHorizon++ }

// QueueLen is the current pending-queue depth — the shard runner's
// load signal for choosing transfer destinations.
func (c *Cluster) QueueLen() int { return c.queueLen() }

// Horizon reports the normalized simulation horizon (defaults applied
// by New). The shard runner's epoch loop needs the same horizon the
// world will finalize at, even when the caller left Config.Horizon
// zero.
func (c *Cluster) Horizon() sim.Time { return sim.Time(c.cfg.Horizon) }

// FeedEvent schedules one normalized trace event. Events must be fed
// in time order before Advance passes their timestamp; the shard runner
// guarantees this by feeding a whole epoch before advancing to its
// barrier. Submits past the horizon are booked as BeyondHorizon; ends
// past the horizon are dropped (the pod simply runs out the clock);
// ends for pods this world never admitted are ignored (their submit was
// beyond the horizon or dropped by a lenient reader).
func (c *Cluster) FeedEvent(ev ctrace.Event) error {
	if !c.started {
		return fmt.Errorf("cluster: FeedEvent before Start")
	}
	if ev.Time < 0 {
		return fmt.Errorf("cluster: event for pod %s at negative time %v", ev.Pod, ev.Time)
	}
	if sim.Time(ev.Time) < c.eng.Now() {
		return fmt.Errorf("cluster: event for pod %s at %v fed after the engine reached %v", ev.Pod, ev.Time, c.eng.Now())
	}
	switch ev.Kind {
	case ctrace.Submit:
		if ev.Time > c.cfg.Horizon {
			c.NoteBeyondHorizon()
			return nil
		}
		if _, dup := c.podIndex[ev.Pod]; dup {
			return fmt.Errorf("cluster: duplicate pod %s", ev.Pod)
		}
		i := len(c.pods)
		p := trace.Pod{ID: ev.Pod, Containers: ev.Containers, Arrival: ev.Time}
		c.pods = append(c.pods, podRun{
			pod:  p,
			user: ev.User,
			cpu:  p.TotalCPU(),
			mem:  p.TotalMem(),
		})
		c.podIndex[ev.Pod] = i
		c.schedEvent(sim.Time(ev.Time), evArrive, int64(i), 0)
	case ctrace.Finish, ctrace.Kill:
		if ev.Time > c.cfg.Horizon {
			return nil
		}
		i, ok := c.podIndex[ev.Pod]
		if !ok {
			c.count("cluster/end_unknown")
			return nil
		}
		var killed int64
		if ev.Kind == ctrace.Kill {
			killed = 1
		}
		c.schedEvent(sim.Time(ev.Time), evEnd, int64(i), killed)
	default:
		return fmt.Errorf("cluster: unknown event kind %v", ev.Kind)
	}
	return nil
}

// endPod retires pod i at the trace's recorded end time, wherever it is
// in its lifecycle: running pods free their placements, pending pods
// leave the queue unplaced, anything else is a stale duplicate.
func (c *Cluster) endPod(i int, killed bool) {
	p := &c.pods[i]
	switch p.state {
	case stateRunning:
		p.departGen++ // any scheduled relative-lifetime departure is stale
		c.removePlacement(i)
		p.state = stateDeparted
		c.res.Departed++
		c.count("cluster/departures")
		if killed {
			c.count("cluster/trace_kills")
		}
		c.dirty = true
		if c.queueLen() > 0 {
			c.kickSchedule()
		}
	case statePending:
		c.dequeue(i)
		p.state = stateDeparted
		c.res.Departed++
		c.count("cluster/departures")
		c.count("cluster/ended_pending")
		// Removing a blocked head-of-line pod can unblock the rest.
		if c.queueLen() > 0 {
			c.kickSchedule()
		}
	default:
		c.count("cluster/end_ignored")
	}
}

// dequeue removes pod i's pending-queue entry (either representation).
func (c *Cluster) dequeue(i int) {
	if c.cfg.Reference {
		kept := c.queue[:0]
		for _, q := range c.queue {
			if q != i {
				kept = append(kept, q)
			}
		}
		c.queue = kept
		return
	}
	c.pq.removeIdx(i)
}

// Advance runs the world to t (inclusive), then parks the clock there.
// Feed everything with timestamps <= t first.
func (c *Cluster) Advance(t sim.Time) { c.eng.RunUntil(t) }

// Finish closes the books at the horizon and returns the result.
func (c *Cluster) Finish() Result {
	c.finalize()
	return c.res
}

// Activate points a shared telemetry recorder at this world — run
// label and engine binding — before an Advance. The shard runner calls
// it per epoch when a recorder forces serial execution; without a
// recorder it is a no-op.
func (c *Cluster) Activate(label string) {
	if c.rec == nil {
		return
	}
	c.rec.BeginRun(label)
	c.rec.BindEngine(c.eng)
}

// Transfer is one pod crossing worlds through the shard runner's
// mailboxes: everything the receiving world needs to adopt it.
type Transfer struct {
	Pod       trace.Pod // ID, containers, original arrival stamp
	User      string
	ArrivedAt sim.Time // original arrival (keeps time-to-schedule honest)
}

// TransferOut drains this world's transfer-out mailbox: every pending
// pod that has waited at least olderThan since it last entered the
// queue leaves the world, in pod admission order. Call only at a tick
// barrier (engine parked); the shard runner is the only caller.
func (c *Cluster) TransferOut(olderThan time.Duration) []Transfer {
	now := c.eng.Now()
	// The candidate scan reuses a scratch buffer and walks the queue
	// representation directly: the common every-barrier outcome (nothing
	// old enough) must not allocate.
	idxs := c.transferIdxs[:0]
	consider := func(i int) {
		p := &c.pods[i]
		if p.state == statePending && now-p.waitSince >= sim.Time(olderThan) {
			idxs = append(idxs, i)
		}
	}
	if c.cfg.Reference {
		for _, i := range c.queue {
			consider(i)
		}
	} else {
		for _, e := range c.pq {
			consider(e.idx)
		}
	}
	c.transferIdxs = idxs
	if len(idxs) == 0 {
		return nil
	}
	// Admission order — deterministic and identical across indexed and
	// reference queue representations.
	sort.Ints(idxs)
	out := make([]Transfer, 0, len(idxs))
	for _, i := range idxs {
		p := &c.pods[i]
		c.dequeue(i)
		p.state = stateTransferred
		p.displaced = false
		c.res.TransferredOut++
		c.count("cluster/transfers_out")
		out = append(out, Transfer{
			Pod:       p.pod,
			User:      p.user,
			ArrivedAt: p.arrivedAt,
		})
	}
	return out
}

// InjectTransfer adopts a pod handed over by another world: it joins
// the pending queue at the current instant (a tick barrier) with its
// original arrival stamp. Counted as TransferredIn, not Arrived. A pod
// returning to a world it left earlier re-animates its retired entry —
// the transfer books stay balanced because both legs were counted.
func (c *Cluster) InjectTransfer(tr Transfer) error {
	if i, ok := c.podIndex[tr.Pod.ID]; ok {
		p := &c.pods[i]
		if p.state != stateTransferred {
			return fmt.Errorf("cluster: transfer-in duplicate pod %s (%v here)", tr.Pod.ID, p.state)
		}
		p.state = statePending
		p.arrivedAt = tr.ArrivedAt
		p.waitSince = c.eng.Now()
		p.displaced = false
		c.res.TransferredIn++
		c.count("cluster/transfers_in")
		c.enqueue(i)
		c.kickSchedule()
		return nil
	}
	i := len(c.pods)
	c.pods = append(c.pods, podRun{
		pod:       tr.Pod,
		user:      tr.User,
		cpu:       tr.Pod.TotalCPU(),
		mem:       tr.Pod.TotalMem(),
		arrivedAt: tr.ArrivedAt,
		waitSince: c.eng.Now(),
	})
	c.podIndex[tr.Pod.ID] = i
	c.res.TransferredIn++
	c.count("cluster/transfers_in")
	c.enqueue(i)
	c.kickSchedule()
	return nil
}

// Digest is a deterministic FNV-1a fingerprint of the world's
// authoritative state: the live fleet in creation order (type, used
// sums, item count), the queue depth, and the lifecycle counters. The
// shard runner folds world digests in index order every epoch —
// voxelcraft's digest tick phase — so any divergence between shard
// layouts is caught at the barrier it first appears, not at the
// horizon.
func (c *Cluster) Digest() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime
		}
	}
	for _, n := range c.liveList {
		if !n.live {
			continue
		}
		mix(uint64(n.typ))
		mix(math.Float64bits(n.usedCPU))
		mix(math.Float64bits(n.usedMem))
		mix(uint64(len(n.items)))
	}
	mix(uint64(c.queueLen()))
	mix(uint64(c.res.Arrived))
	mix(uint64(c.res.Scheduled))
	mix(uint64(c.res.Departed))
	mix(uint64(c.res.Failed))
	mix(uint64(c.res.Displaced))
	mix(uint64(c.res.Kills))
	mix(uint64(c.res.ScaleUps))
	mix(uint64(c.res.ScaleDowns))
	mix(uint64(c.res.TransferredIn))
	mix(uint64(c.res.TransferredOut))
	mix(uint64(c.res.Adopted))
	mix(math.Float64bits(c.res.CostDollars))
	return h
}

// SimulateSource replays an event stream through one world: the
// single-cluster convenience around the streaming API (the sharded
// analog is internal/shard.Replay). Events are fed in bounded chunks —
// one autoscaler tick at a time — so memory tracks the live pod count,
// not the stream length. Returns the result and the pumped event
// counts.
func SimulateSource(cfg Config, src ctrace.Source) (Result, error) {
	c := New(cfg)
	if len(cfg.Pods) != 0 {
		return Result{}, fmt.Errorf("cluster: SimulateSource with non-empty Config.Pods (pick one workload source)")
	}
	c.Start()
	horizon := sim.Time(c.cfg.Horizon)
	step := sim.Time(c.cfg.ScaleEvery)
	var held *ctrace.Event
	eof := false
	for t := sim.Time(0); t < horizon; {
		end := t + step
		if end > horizon {
			end = horizon
		}
		for !eof {
			var ev ctrace.Event
			if held != nil {
				ev, held = *held, nil
			} else {
				var err error
				ev, err = src.Next()
				if err == io.EOF {
					eof = true
					break
				}
				if err != nil {
					return Result{}, err
				}
			}
			if sim.Time(ev.Time) > end {
				held = &ev
				break
			}
			if err := c.FeedEvent(ev); err != nil {
				return Result{}, err
			}
		}
		c.Advance(end)
		t = end
	}
	// Drain the tail for BeyondHorizon accounting.
	if held != nil && held.Kind == ctrace.Submit {
		c.NoteBeyondHorizon()
	}
	for !eof {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, err
		}
		if ev.Kind == ctrace.Submit {
			c.NoteBeyondHorizon()
		}
	}
	return c.Finish(), nil
}
