package cluster

import (
	"reflect"
	"testing"
	"time"

	"nestless/internal/ctrace"
	"nestless/internal/sim"
	"nestless/internal/trace"
)

// churnUsers generates a quantized churny population: arrival and end
// instants truncated to the trace formats' microsecond resolution, so
// the Pods workload and the event stream describe the same instants.
func churnUsers(t *testing.T, seed int64, n int) []trace.User {
	t.Helper()
	gcfg := trace.DefaultConfig(seed)
	gcfg.Users = n
	gcfg.MeanArrivalGap = 2 * time.Minute
	gcfg.MeanLifetime = 45 * time.Minute
	users := trace.Generate(gcfg)
	for i := range users {
		for j := range users[i].Pods {
			p := &users[i].Pods[j]
			a := p.Arrival - p.Arrival%time.Microsecond
			if p.Lifetime > 0 {
				end := p.Arrival + p.Lifetime
				end -= end % time.Microsecond
				p.Lifetime = end - a
			}
			p.Arrival = a
		}
	}
	return users
}

// flatten merges all users' pods into one workload.
func flatten(users []trace.User) []trace.Pod {
	var pods []trace.Pod
	for _, u := range users {
		pods = append(pods, u.Pods...)
	}
	return pods
}

// TestSimulateSourceMatchesPods pins the streaming feed against the
// Pods path on a workload where their departure semantics coincide:
// BootDelay 0 and ample capacity place every pod at its arrival
// instant, so lifetime-after-placement equals the trace's absolute end
// time. Same instants, same counters, same cost, same trajectory.
func TestSimulateSourceMatchesPods(t *testing.T) {
	users := churnUsers(t, 21, 30)
	for _, policy := range []Policy{Kubernetes, Hostlo} {
		cfg := Config{
			Policy:    policy,
			Seed:      5,
			Horizon:   8 * time.Hour,
			BootDelay: 0,
		}
		pcfg := cfg
		pcfg.Pods = flatten(users)
		want := Simulate(pcfg)
		got, err := SimulateSource(cfg, ctrace.NewSynth(users))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("policy %v: stream diverged from Pods run:\n got %+v\nwant %+v", policy, got, want)
		}
	}
}

// TestStreamLeakFree audits the streaming books directly: feed, run,
// then run the leak checker, including an end event that catches its
// pod still pending (huge BootDelay keeps the queue backed up).
func TestStreamLeakFree(t *testing.T) {
	for _, ref := range []bool{false, true} {
		cfg := Config{
			Policy:    Kubernetes,
			Horizon:   2 * time.Hour,
			BootDelay: 30 * time.Minute, // pods wait; ends hit pending pods
		}
		cfg.Reference = ref
		c := New(cfg)
		c.Start()
		evs := []ctrace.Event{
			{Time: 1 * time.Minute, Kind: ctrace.Submit, Pod: "a", User: "u1",
				Containers: []trace.Container{{CPU: 0.1, Mem: 0.1}}},
			{Time: 2 * time.Minute, Kind: ctrace.Submit, Pod: "b", User: "u1",
				Containers: []trace.Container{{CPU: 0.2, Mem: 0.2}}},
			{Time: 5 * time.Minute, Kind: ctrace.Kill, Pod: "b", User: "u1"}, // still pending
			{Time: 90 * time.Minute, Kind: ctrace.Finish, Pod: "a", User: "u1"},
		}
		for _, ev := range evs {
			if err := c.FeedEvent(ev); err != nil {
				t.Fatal(err)
			}
		}
		c.Advance(sim.Time(cfg.Horizon))
		res := c.Finish()
		if leaks := c.Leaks(); len(leaks) > 0 {
			t.Fatalf("reference=%v leaks: %v", ref, leaks)
		}
		if res.Arrived != 2 || res.Departed != 2 {
			t.Fatalf("reference=%v result: %+v", ref, res)
		}
	}
}

// TestStreamFeedValidation exercises the feed-order and duplicate
// guards.
func TestStreamFeedValidation(t *testing.T) {
	c := New(Config{Horizon: time.Hour})
	if err := c.FeedEvent(ctrace.Event{Kind: ctrace.Submit, Pod: "x"}); err == nil {
		t.Fatal("FeedEvent before Start accepted")
	}
	c.Start()
	sub := ctrace.Event{Time: time.Minute, Kind: ctrace.Submit, Pod: "x",
		Containers: []trace.Container{{CPU: 0.1, Mem: 0.1}}}
	if err := c.FeedEvent(sub); err != nil {
		t.Fatal(err)
	}
	if err := c.FeedEvent(sub); err == nil {
		t.Fatal("duplicate submit accepted")
	}
	c.Advance(sim.Time(10 * time.Minute))
	late := ctrace.Event{Time: 5 * time.Minute, Kind: ctrace.Submit, Pod: "y",
		Containers: []trace.Container{{CPU: 0.1, Mem: 0.1}}}
	if err := c.FeedEvent(late); err == nil {
		t.Fatal("event behind the clock accepted")
	}
	// Unknown end: ignored, not an error.
	if err := c.FeedEvent(ctrace.Event{Time: 20 * time.Minute, Kind: ctrace.Finish, Pod: "ghost"}); err != nil {
		t.Fatal(err)
	}
}

// TestTransferRoundTrip moves a pending pod between two worlds by hand
// and checks both sides' books and the leak audit.
func TestTransferRoundTrip(t *testing.T) {
	cfg := Config{Horizon: 2 * time.Hour, BootDelay: 45 * time.Minute}
	a, b := New(cfg), New(cfg)
	a.Start()
	b.Start()
	if err := a.FeedEvent(ctrace.Event{Time: time.Minute, Kind: ctrace.Submit, Pod: "p", User: "u",
		Containers: []trace.Container{{CPU: 0.1, Mem: 0.1}}}); err != nil {
		t.Fatal(err)
	}
	barrier := sim.Time(30 * time.Minute)
	a.Advance(barrier)
	b.Advance(barrier)
	trs := a.TransferOut(10 * time.Minute)
	if len(trs) != 1 || trs[0].Pod.ID != "p" {
		t.Fatalf("TransferOut: %+v", trs)
	}
	if got := a.TransferOut(10 * time.Minute); len(got) != 0 {
		t.Fatalf("second TransferOut drained again: %+v", got)
	}
	if err := b.InjectTransfer(trs[0]); err != nil {
		t.Fatal(err)
	}
	a.Advance(sim.Time(cfg.Horizon))
	b.Advance(sim.Time(cfg.Horizon))
	ra, rb := a.Finish(), b.Finish()
	if leaks := a.Leaks(); len(leaks) > 0 {
		t.Fatalf("world a leaks: %v", leaks)
	}
	if leaks := b.Leaks(); len(leaks) > 0 {
		t.Fatalf("world b leaks: %v", leaks)
	}
	if ra.TransferredOut != 1 || ra.Arrived != 1 || ra.StillPending != 0 {
		t.Fatalf("world a: %+v", ra)
	}
	if rb.TransferredIn != 1 || rb.Arrived != 0 || rb.Scheduled != 1 {
		t.Fatalf("world b: %+v", rb)
	}
}

// TestStreamDigestDeterministic pins that equal worlds yield equal
// digests and diverged worlds do not.
func TestStreamDigestDeterministic(t *testing.T) {
	users := churnUsers(t, 9, 10)
	run := func() (*Cluster, uint64) {
		c := New(Config{Horizon: 4 * time.Hour})
		c.Start()
		src := ctrace.NewSynth(users)
		for {
			ev, err := src.Next()
			if err != nil {
				break
			}
			if ev.Time > 4*time.Hour {
				continue
			}
			if err := c.FeedEvent(ev); err != nil {
				t.Fatal(err)
			}
		}
		c.Advance(sim.Time(2 * time.Hour))
		return c, c.Digest()
	}
	c1, d1 := run()
	c2, d2 := run()
	if d1 != d2 {
		t.Fatalf("identical runs digest %x vs %x", d1, d2)
	}
	c1.Advance(sim.Time(3 * time.Hour))
	if c1.Digest() == c2.Digest() {
		t.Fatal("advanced world kept the same digest")
	}
}
