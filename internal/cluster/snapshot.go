package cluster

import (
	"fmt"
	"sort"
	"time"

	"nestless/internal/cloudsim"
	"nestless/internal/faults"
	"nestless/internal/sim"
	"nestless/internal/telemetry"
	"nestless/internal/trace"
)

// World snapshot/fork: deterministic capture and restore of a running
// cluster, the substrate of the what-if service (internal/snapshot,
// cmd/whatif). The contract is byte-identity: Restore(Capture(w)) and
// the uninterrupted w produce identical digests, Results and telemetry
// for any continuation, because every piece of mutable state round-trips
// exactly —
//
//   - the engine core (clock, event sequence counter, step count) and
//     the RNG streams as (seed, draws) positions (sim.RandState);
//   - the pending event set through the typed ledger (events.go),
//     replayed in ascending original-sequence order so same-instant
//     FIFO ties resolve identically;
//   - pod runtime state verbatim; node used sums by canonical recompute
//     (every mutation path maintains "sum in item order", so the
//     recompute is bit-exact);
//   - the pending queue's raw heap array (pop order is total, but the
//     layout is kept anyway), the blocked-head memo, and the capacity-
//     index version counter (treap shapes are history-independent given
//     the (score, id) keys and splitmix64 priorities, so the index
//     itself rebuilds from the live fleet);
//   - the fault injector's RNG position and rule cursors, the packing
//     cache's entries in recency order, and the accumulated Result and
//     time-to-schedule series with their exact float sums.
//
// Capture deep-copies everything the parent may mutate, so a snapshot
// stays frozen while the parent advances; heavyweight immutables — pod
// definitions (trace.Pod containers), the catalog, the fault schedule,
// packing-cache entry slices — are shared copy-on-write. Restore
// deep-copies the mutables again, so any number of concurrent branches
// can be restored from one snapshot on different goroutines.

// PodSnap is one pod's captured runtime state. Pod (the workload
// definition) is shared with the live world: trace.Pod contents are
// immutable after generation.
type PodSnap struct {
	Pod           trace.Pod
	User          string
	State         int8
	ArrivedAt     sim.Time
	WaitSince     sim.Time
	PlacedAt      sim.Time
	Remaining     time.Duration
	DepartGen     int
	ScheduledOnce bool
	Displaced     bool
	OnNodes       []int32
}

// NodeSnap is one VM's captured state. Used sums, the index key, the
// name and the fault point are all canonical functions of (id, typ,
// items) and are recomputed at restore. Dirty flags are carried by
// Snapshot.DirtyList, which also preserves their discovery order.
type NodeSnap struct {
	Typ       int32
	Zone      int32
	Spot      bool
	Live      bool
	BornAt    sim.Time
	IdleSince sim.Time
	Items     []cloudsim.PlacedItem
}

// QueueSnap is one pending-queue heap entry, array layout preserved.
type QueueSnap struct {
	Key float64
	Seq uint64
	Idx int32
}

// Snapshot is a frozen world: pure data, no closures, no engine. It can
// be restored any number of times (concurrently) and serialized by
// internal/snapshot's codec.
type Snapshot struct {
	// Cfg is the normalized run configuration with the workload and
	// recorder stripped: pods live in Pods (with runtime state), the
	// recorder is supplied at restore. Cfg.Faults is shared (immutable);
	// FaultsSpec is its spec-string form for the codec.
	Cfg        Config
	FaultsSpec string

	Eng sim.EngineState

	Pods []PodSnap

	Nodes     []NodeSnap
	LiveList  []int32 // liveList as node ids, order preserved (incl. dead entries)
	DeadLive  int
	DirtyList []int32 // Hostlo dirty set, append order preserved

	RefQueue []int32     // reference mode pending queue
	PQ       []QueueSnap // indexed mode pending heap, raw array
	EnqSeq   uint64

	BlockedPod int
	BlockedVer uint64
	IdxVer     uint64
	Inflight   int
	OdFallback int
	Dirty      bool
	Started    bool
	Finalized  bool

	Events []EventSnap // pending typed events, ascending Seq

	Res Result
	// TrajWin is the trajectory downsampler's open partial window
	// (Points == 0 when empty); the window width itself is derived from
	// Cfg at restore.
	TrajWin Sample
	TTS     sim.SeriesState

	Inj  *faults.InjectorState
	Pack *cloudsim.PackCacheState
}

// EventSnap is one pending typed event, the serializable ledger entry.
type EventSnap struct {
	At   sim.Time
	Seq  uint64
	Kind uint8
	A, B int64
}

// Capture freezes the world at the current parked instant. Call it only
// between Advance calls (never from inside an event callback); a
// pending coalesced schedule pass — possible after a same-instant
// mutator like InjectTransfer or KillNodesNow — is rejected: advance
// the engine to its own Now first so the pass drains.
func (c *Cluster) Capture() (*Snapshot, error) {
	if c.schedPend {
		return nil, fmt.Errorf("cluster: capture with a schedule pass pending (Advance(Now) first)")
	}
	if got, want := c.eng.Pending(), len(c.ledger); got != want {
		return nil, fmt.Errorf("cluster: %d pending engine events but %d ledgered (unledgered closure in flight?)", got, want)
	}

	s := &Snapshot{
		Cfg:        c.cfg,
		Eng:        c.eng.State(),
		DeadLive:   c.deadLive,
		EnqSeq:     c.enqSeq,
		BlockedPod: c.blockedPod,
		BlockedVer: c.blockedVer,
		Inflight:   c.inflight,
		OdFallback: c.odFallback,
		Dirty:      c.dirty,
		Started:    c.started,
		Finalized:  c.finalized,
		Res:        c.res,
		TrajWin:    c.trajWin,
		TTS:        c.tts.State(),
		Inj:        c.inj.State(),
		Pack:       c.pack.State(),
	}
	s.Cfg.Pods = nil
	s.Cfg.Rec = nil
	if c.cfg.Faults != nil {
		s.FaultsSpec = c.cfg.Faults.String()
	}
	if !c.cfg.Reference {
		s.IdxVer = c.idx.ver
	}
	// Deep copies of everything the parent keeps mutating.
	s.Res.Samples = append([]Sample(nil), c.res.Samples...)
	s.Res.FleetTypes = append([]int(nil), c.res.FleetTypes...)
	s.Pods = make([]PodSnap, len(c.pods))
	for i := range c.pods {
		p := &c.pods[i]
		ps := PodSnap{
			Pod:           p.pod,
			User:          p.user,
			State:         int8(p.state),
			ArrivedAt:     p.arrivedAt,
			WaitSince:     p.waitSince,
			PlacedAt:      p.placedAt,
			Remaining:     p.remaining,
			DepartGen:     p.departGen,
			ScheduledOnce: p.scheduledOnce,
			Displaced:     p.displaced,
		}
		if len(p.onNodes) > 0 {
			ps.OnNodes = make([]int32, len(p.onNodes))
			for k, nid := range p.onNodes {
				ps.OnNodes[k] = int32(nid)
			}
		}
		s.Pods[i] = ps
	}
	s.Nodes = make([]NodeSnap, len(c.nodes))
	for i, n := range c.nodes {
		s.Nodes[i] = NodeSnap{
			Typ:       int32(n.typ),
			Zone:      int32(n.zone),
			Spot:      n.spot,
			Live:      n.live,
			BornAt:    n.bornAt,
			IdleSince: n.idleSince,
			Items:     append([]cloudsim.PlacedItem(nil), n.items...),
		}
	}
	s.LiveList = make([]int32, len(c.liveList))
	for i, n := range c.liveList {
		s.LiveList[i] = int32(n.id)
	}
	s.DirtyList = make([]int32, len(c.dirtyList))
	for i, n := range c.dirtyList {
		s.DirtyList[i] = int32(n.id)
	}
	if c.cfg.Reference {
		s.RefQueue = make([]int32, len(c.queue))
		for i, q := range c.queue {
			s.RefQueue[i] = int32(q)
		}
	} else {
		s.PQ = make([]QueueSnap, len(c.pq))
		for i, e := range c.pq {
			s.PQ[i] = QueueSnap{Key: e.key, Seq: e.seq, Idx: int32(e.idx)}
		}
	}
	s.Events = make([]EventSnap, 0, len(c.ledger))
	for _, ev := range c.ledger {
		s.Events = append(s.Events, EventSnap{At: ev.At, Seq: ev.Seq, Kind: uint8(ev.Kind), A: ev.A, B: ev.B})
	}
	sort.Slice(s.Events, func(a, b int) bool { return s.Events[a].Seq < s.Events[b].Seq })
	return s, nil
}

// RestoreOpts parameterises a branch restored from a snapshot. The zero
// value continues the captured world unchanged.
type RestoreOpts struct {
	// Rec attaches a telemetry recorder to the branch. Byte-identical
	// telemetry continuation requires the recorder the captured world
	// was using (Rebind keeps its cursors); nil runs the branch silent.
	Rec *telemetry.Recorder
	// Policy, when non-nil, switches the placement policy for the
	// branch ("what if we switch to Hostlo"). Switching to Hostlo marks
	// the whole live fleet dirty so the first optimize pass may repack
	// everything churn left behind.
	Policy *Policy
	// Faults, when non-nil, replaces the branch's fault schedule ("what
	// if this zone starts dying"). The new injector forks the engine
	// RNG stream at restore, exactly as New does at construction.
	Faults *faults.Schedule
}

// Restore builds a live world from a snapshot. The snapshot is only
// read — never mutated — so concurrent Restores from one snapshot are
// safe; each branch deep-copies the mutable state and shares the
// immutables (pod definitions, catalog, fault schedule, packing-cache
// entry slices). Corrupt snapshots (a hostile decode) return an error,
// never panic.
func Restore(s *Snapshot, o RestoreOpts) (*Cluster, error) {
	cfg := s.Cfg
	cfg.Pods = nil
	cfg.Rec = o.Rec
	cfg = cfg.withDefaults()
	switched := false
	if o.Policy != nil && *o.Policy != cfg.Policy {
		cfg.Policy = *o.Policy
		switched = true
	}
	if o.Faults != nil {
		cfg.Faults = o.Faults
	}
	nPods, nNodes, nTypes := len(s.Pods), len(s.Nodes), len(cfg.Catalog)

	// Structural validation up front: everything indexed later must be
	// in range, so a hostile snapshot fails cleanly here.
	if nNodes > 0 && nTypes == 0 {
		return nil, fmt.Errorf("cluster: snapshot has %d nodes but an empty catalog", nNodes)
	}
	for i := range s.Nodes {
		if t := int(s.Nodes[i].Typ); t < 0 || t >= nTypes {
			return nil, fmt.Errorf("cluster: node %d type %d out of catalog range %d", i, t, nTypes)
		}
		if z := int(s.Nodes[i].Zone); z < 0 || z >= cfg.Zones {
			return nil, fmt.Errorf("cluster: node %d zone %d out of range %d", i, z, cfg.Zones)
		}
	}
	if s.OdFallback < 0 {
		return nil, fmt.Errorf("cluster: negative on-demand fallback credit %d", s.OdFallback)
	}
	if s.TrajWin.Points < 0 || s.TrajWin.Points >= trajStride(cfg) {
		return nil, fmt.Errorf("cluster: trajectory window holds %d points of a %d-wide stride", s.TrajWin.Points, trajStride(cfg))
	}
	for i := range s.Pods {
		ps := &s.Pods[i]
		if ps.State < int8(statePending) || ps.State > int8(stateTransferred) {
			return nil, fmt.Errorf("cluster: pod %d state %d out of range", i, ps.State)
		}
		for _, nid := range ps.OnNodes {
			if nid < 0 || int(nid) >= nNodes {
				return nil, fmt.Errorf("cluster: pod %d placement map names node %d of %d", i, nid, nNodes)
			}
		}
	}
	liveSeen := make(map[int32]bool, len(s.LiveList))
	for _, nid := range s.LiveList {
		if nid < 0 || int(nid) >= nNodes {
			return nil, fmt.Errorf("cluster: live list names node %d of %d", nid, nNodes)
		}
		if liveSeen[nid] {
			return nil, fmt.Errorf("cluster: live list names node %d twice", nid)
		}
		liveSeen[nid] = true
	}
	liveCount, deadInList := 0, 0
	for i := range s.Nodes {
		if s.Nodes[i].Live {
			liveCount++
			if !liveSeen[int32(i)] {
				return nil, fmt.Errorf("cluster: live node %d missing from the live list", i)
			}
		}
	}
	for _, nid := range s.LiveList {
		if !s.Nodes[nid].Live {
			deadInList++
		}
	}
	if deadInList != s.DeadLive {
		return nil, fmt.Errorf("cluster: %d dead live-list entries, DeadLive says %d", deadInList, s.DeadLive)
	}
	for _, nid := range s.DirtyList {
		if nid < 0 || int(nid) >= nNodes {
			return nil, fmt.Errorf("cluster: dirty list names node %d of %d", nid, nNodes)
		}
	}
	if s.BlockedPod < -1 || s.BlockedPod >= nPods {
		return nil, fmt.Errorf("cluster: blocked pod %d out of range %d", s.BlockedPod, nPods)
	}
	for _, q := range s.RefQueue {
		if q < 0 || int(q) >= nPods {
			return nil, fmt.Errorf("cluster: queue entry names pod %d of %d", q, nPods)
		}
	}
	for _, e := range s.PQ {
		if e.Idx < 0 || int(e.Idx) >= nPods {
			return nil, fmt.Errorf("cluster: heap entry names pod %d of %d", e.Idx, nPods)
		}
	}
	provPending := 0
	for _, ev := range s.Events {
		if ev.Kind == 0 || evKind(ev.Kind) >= evKindMax {
			return nil, fmt.Errorf("cluster: unknown pending event kind %d", ev.Kind)
		}
		if ev.At < s.Eng.Now {
			return nil, fmt.Errorf("cluster: pending event at %v before the captured clock %v", ev.At, s.Eng.Now)
		}
		switch evKind(ev.Kind) {
		case evArrive, evDepart, evEnd, evAdopt:
			if ev.A < 0 || ev.A >= int64(nPods) {
				return nil, fmt.Errorf("cluster: pending %d event names pod %d of %d", ev.Kind, ev.A, nPods)
			}
		case evProvRetry, evNodeReady:
			if ev.A < 0 || ev.A >= int64(nTypes) {
				return nil, fmt.Errorf("cluster: pending %d event names type %d of %d", ev.Kind, ev.A, nTypes)
			}
			if ev.B < 0 || ev.B>>1 >= int64(cfg.Zones) {
				return nil, fmt.Errorf("cluster: pending %d event names zone %d of %d", ev.Kind, ev.B>>1, cfg.Zones)
			}
			provPending++
		}
	}
	if provPending != s.Inflight {
		return nil, fmt.Errorf("cluster: %d provisioning events pending, Inflight says %d", provPending, s.Inflight)
	}
	if s.Pack != nil {
		for ei := range s.Pack.Entries {
			e := &s.Pack.Entries[ei]
			for _, vms := range [2][]cloudsim.PlacedVM{e.Input, e.Output} {
				for _, vm := range vms {
					if vm.Type < 0 || vm.Type >= nTypes {
						return nil, fmt.Errorf("cluster: pack cache entry %d names type %d of %d", ei, vm.Type, nTypes)
					}
				}
			}
		}
	}

	eng := sim.RestoreEngine(s.Eng)
	eng.MaxSteps = cfg.MaxSteps
	var inj *faults.Injector
	if o.Faults != nil {
		// A replaced schedule is a fresh fault world: fork the engine
		// stream exactly as New does at construction.
		inj = faults.New(eng, o.Faults, o.Rec)
	} else {
		var err error
		inj, err = faults.Restore(cfg.Faults, o.Rec, s.Inj)
		if err != nil {
			return nil, err
		}
	}
	pack, err := cloudsim.RestorePackCache(s.Pack)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg: cfg,
		eng: eng,
		inj: inj,
		rec: o.Rec,
		cat: cfg.Catalog,
		idx: newCapIndex(cfg.Catalog),

		enqSeq:     s.EnqSeq,
		blockedPod: s.BlockedPod,
		blockedVer: s.BlockedVer,
		inflight:   s.Inflight,
		odFallback: s.OdFallback,
		dirty:      s.Dirty,
		started:    s.Started,
		finalized:  s.Finalized,
		deadLive:   s.DeadLive,
		pack:       pack,
		ledger:     make(map[uint64]ledgerEvent, len(s.Events)),
		trajStride: trajStride(cfg),
		trajWin:    s.TrajWin,
	}
	c.fireFn = c.fireBySeq
	c.res = s.Res
	c.res.Policy = cfg.Policy
	c.res.Samples = append([]Sample(nil), s.Res.Samples...)
	c.res.FleetTypes = append([]int(nil), s.Res.FleetTypes...)
	c.tts.SetState(s.TTS)

	// Pods: runtime state verbatim, derived sums recomputed (canonical
	// container-order accumulation, identical to New's).
	c.pods = make([]podRun, nPods)
	c.podIndex = make(map[string]int, nPods)
	for i := range s.Pods {
		ps := &s.Pods[i]
		p := podRun{
			pod:           ps.Pod,
			user:          ps.User,
			cpu:           ps.Pod.TotalCPU(),
			mem:           ps.Pod.TotalMem(),
			state:         podState(ps.State),
			arrivedAt:     ps.ArrivedAt,
			waitSince:     ps.WaitSince,
			placedAt:      ps.PlacedAt,
			remaining:     ps.Remaining,
			departGen:     ps.DepartGen,
			scheduledOnce: ps.ScheduledOnce,
			displaced:     ps.Displaced,
		}
		if len(ps.OnNodes) > 0 {
			p.onNodes = make([]int, len(ps.OnNodes))
			for k, nid := range ps.OnNodes {
				p.onNodes[k] = int(nid)
			}
		}
		c.pods[i] = p
		if _, dup := c.podIndex[ps.Pod.ID]; !dup {
			c.podIndex[ps.Pod.ID] = i
		}
	}

	// Nodes: identity and items verbatim, used sums by canonical
	// recompute, index keys from the recomputed sums (treap shape is
	// history-independent, so insertion in id order reproduces the
	// query structure; the version counter restores explicitly).
	c.initZones()
	c.nodes = make([]*node, nNodes)
	for i := range s.Nodes {
		ns := &s.Nodes[i]
		n := &node{
			id:        i,
			name:      fmt.Sprintf("n%d", i),
			typ:       int(ns.Typ),
			zone:      int(ns.Zone),
			spot:      ns.Spot,
			bornAt:    ns.BornAt,
			idleSince: ns.IdleSince,
			live:      ns.Live,
			items:     append([]cloudsim.PlacedItem(nil), ns.Items...),
		}
		n.faultPoint = "node/" + n.name
		if n.spot {
			n.spotPoint = "spot/" + n.name
		}
		n.priceH = c.price(n.typ, n.zone, n.spot)
		n.recompute()
		c.nodes[i] = n
		if n.live {
			c.zoneLive[n.zone]++
			if n.spot {
				c.spotLive++
			}
			c.touchNode(n)
		}
	}
	c.liveCount = liveCount
	if !cfg.Reference {
		c.idx.ver = s.IdxVer
	}
	c.liveList = make([]*node, len(s.LiveList))
	for i, nid := range s.LiveList {
		c.liveList[i] = c.nodes[nid]
	}
	c.dirtyList = make([]*node, 0, len(s.DirtyList))
	if cfg.Policy == Hostlo {
		for _, nid := range s.DirtyList {
			n := c.nodes[nid]
			n.dirty = true
			c.dirtyList = append(c.dirtyList, n)
		}
	}

	// Pending queue (the captured representation matches cfg.Reference).
	if cfg.Reference {
		c.queue = make([]int, len(s.RefQueue))
		for i, q := range s.RefQueue {
			c.queue[i] = int(q)
		}
	} else {
		c.pq = make(podQueue, len(s.PQ))
		for i, e := range s.PQ {
			c.pq[i] = podEntry{key: e.Key, seq: e.Seq, idx: int(e.Idx)}
		}
	}

	// Replay the pending event set in ascending original-seq order:
	// relative order — the only observable part of a sequence number —
	// is preserved under the fresh seqs At assigns.
	evs := append([]EventSnap(nil), s.Events...)
	sort.Slice(evs, func(a, b int) bool { return evs[a].Seq < evs[b].Seq })
	for _, ev := range evs {
		c.schedEvent(ev.At, evKind(ev.Kind), ev.A, ev.B)
	}

	// Policy switch: give the first Hostlo optimize pass the whole live
	// fleet (churn under the old policy never marked anything).
	if switched && cfg.Policy == Hostlo {
		c.dirty = true
		for _, n := range c.liveList {
			if n.live && !n.dirty {
				n.dirty = true
				c.dirtyList = append(c.dirtyList, n)
			}
		}
	}

	o.Rec.Rebind(eng)
	return c, nil
}

// Fork captures the world and restores an independent branch in one
// call: the copy-on-write what-if primitive. The parent is untouched
// and may keep advancing; for many branches off one instant, Capture
// once and Restore per branch instead (one shared frozen snapshot).
func (c *Cluster) Fork(o RestoreOpts) (*Cluster, error) {
	s, err := c.Capture()
	if err != nil {
		return nil, err
	}
	return Restore(s, o)
}

// AdoptPods materializes extra pods into a running world at the current
// instant — the "what if 10k more pods arrive" branch delta. Each pod
// arrives at max(Now, its Arrival stamp) and is booked under the
// Adopted counter (the conservation audit's third inflow, alongside
// Arrived and TransferredIn). Pod IDs must be new to this world.
func (c *Cluster) AdoptPods(pods []trace.Pod) error {
	now := c.eng.Now()
	if now > sim.Time(c.cfg.Horizon) {
		return fmt.Errorf("cluster: adopting pods at %v, past the horizon %v", now, c.cfg.Horizon)
	}
	for _, p := range pods {
		if _, dup := c.podIndex[p.ID]; dup {
			return fmt.Errorf("cluster: adopt duplicate pod %s", p.ID)
		}
		i := len(c.pods)
		c.pods = append(c.pods, podRun{
			pod:       p,
			cpu:       p.TotalCPU(),
			mem:       p.TotalMem(),
			remaining: p.Lifetime,
		})
		c.podIndex[p.ID] = i
		at := sim.Time(p.Arrival)
		if at < now {
			at = now
		}
		if at > sim.Time(c.cfg.Horizon) {
			c.res.BeyondHorizon++
			continue
		}
		c.schedEvent(at, evAdopt, int64(i), 0)
	}
	return nil
}

// arriveAdopted admits an adopted pod: identical to arrive except the
// inflow is booked as Adopted.
func (c *Cluster) arriveAdopted(i int) {
	p := &c.pods[i]
	p.arrivedAt = c.eng.Now()
	p.waitSince = p.arrivedAt
	c.res.Adopted++
	c.count("cluster/adopted")
	c.enqueue(i)
	c.kickSchedule()
}

// LiveNodeNames lists the live fleet's node names in creation order —
// the addressable targets for KillNodesNow.
func (c *Cluster) LiveNodeNames() []string {
	names := make([]string, 0, c.liveCount)
	for _, n := range c.liveList {
		if n.live {
			names = append(names, n.name)
		}
	}
	return names
}

// KillNodesNow fails the named live nodes at the current instant — the
// "what if this zone dies" branch delta, with exactly the semantics of
// a fault-injected node kill (bill settled, pods displaced back into
// the queue, Kills counted). All names are validated live before
// anything dies.
func (c *Cluster) KillNodesNow(names []string) error {
	want := make(map[string]bool, len(names))
	for _, name := range names {
		want[name] = true
	}
	found := 0
	for _, n := range c.liveList {
		if n.live && want[n.name] {
			found++
		}
	}
	if found != len(want) {
		for _, name := range names {
			ok := false
			for _, n := range c.liveList {
				if n.live && n.name == name {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("cluster: kill target %q is not a live node", name)
			}
		}
	}
	now := c.eng.Now()
	for _, n := range c.liveList {
		if n.live && want[n.name] {
			c.killNode(n, now)
		}
	}
	if c.queueLen() > 0 {
		c.kickSchedule()
	}
	return nil
}

// Now reports the engine's current virtual instant.
func (c *Cluster) Now() sim.Time { return c.eng.Now() }
