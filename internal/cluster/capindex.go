package cluster

// The indexed scheduling core: incremental data structures that replace
// the scheduler's per-decision fleet scans without changing a single
// placement decision. Two structures live here:
//
//   - capIndex: per-catalog-type treaps of live nodes ordered by
//     (most-requested score desc, creation order asc), with subtree
//     minima of the used sums so a "most-requested node that fits" query
//     descends the tree instead of scanning the fleet. The comparator is
//     bit-for-bit the linear scan's: the stored score is computed by the
//     same cloudsim.MostRequestedFraction call from the same used sums,
//     and the fit test uses the same `Rel - used >= req` float expression
//     at both the pruning and acceptance levels, so the first in-order
//     fitting node IS the node the scan would have returned.
//
//   - podQueue: a binary max-heap of pending pods keyed by
//     (cpu+mem desc, enqueue sequence asc). sort.SliceStable on the old
//     slice queue compared only cpu+mem and preserved enqueue order among
//     equals; the explicit sequence number reproduces that stability, so
//     the heap pops pods in exactly the order the sorted slice yielded
//     them.
//
// Both structures are deterministic: treap priorities are a splitmix64
// hash of the node id (no RNG), and ties never consult anything but the
// creation/enqueue order. The linear-scan originals survive behind
// Config.Reference; the equivalence suite diffs the two modes byte for
// byte.

// splitmix64 is the deterministic treap priority hash (node id → prio).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// capNode is one treap entry. It snapshots the node's used sums at
// insert time; the cluster removes and re-inserts a node around every
// mutation, so the snapshot always equals the live value (Leaks audits
// this).
type capNode struct {
	n     *node
	score float64 // MostRequestedFraction at insert time (the sort key)
	ucpu  float64 // usedCPU snapshot
	umem  float64 // usedMem snapshot
	prio  uint64
	l, r  *capNode
	// Subtree minima of the used snapshots: a subtree whose least-loaded
	// corner cannot fit the request holds no fitting node at all.
	minCPU, minMem float64
}

// before is the in-order comparator: higher score first, then earlier
// creation (smaller id) — the exact preference order of the linear scan.
func (a *capNode) before(score float64, id int) bool {
	return a.score > score || (a.score == score && a.n.id < id)
}

// update recomputes the subtree aggregates from the children.
func (t *capNode) update() {
	t.minCPU, t.minMem = t.ucpu, t.umem
	if t.l != nil {
		if t.l.minCPU < t.minCPU {
			t.minCPU = t.l.minCPU
		}
		if t.l.minMem < t.minMem {
			t.minMem = t.l.minMem
		}
	}
	if t.r != nil {
		if t.r.minCPU < t.minCPU {
			t.minCPU = t.r.minCPU
		}
		if t.r.minMem < t.minMem {
			t.minMem = t.r.minMem
		}
	}
}

func rotRight(t *capNode) *capNode {
	l := t.l
	t.l = l.r
	l.r = t
	t.update()
	l.update()
	return l
}

func rotLeft(t *capNode) *capNode {
	r := t.r
	t.r = r.l
	r.l = t
	t.update()
	r.update()
	return r
}

func capInsert(t, cn *capNode) *capNode {
	if t == nil {
		cn.l, cn.r = nil, nil
		cn.update()
		return cn
	}
	if cn.before(t.score, t.n.id) {
		t.l = capInsert(t.l, cn)
		if t.l.prio > t.prio {
			return rotRight(t)
		}
	} else {
		t.r = capInsert(t.r, cn)
		if t.r.prio > t.prio {
			return rotLeft(t)
		}
	}
	t.update()
	return t
}

// capDelete removes the entry with the exact (score, id) key. The score
// must be the stored key (the node carries it in node.idxScore).
func capDelete(t *capNode, score float64, id int) *capNode {
	if t == nil {
		return nil
	}
	if t.n.id == id && t.score == score {
		// Merge children by priority.
		switch {
		case t.l == nil:
			return t.r
		case t.r == nil:
			return t.l
		case t.l.prio > t.r.prio:
			t = rotRight(t)
			t.r = capDelete(t.r, score, id)
		default:
			t = rotLeft(t)
			t.l = capDelete(t.l, score, id)
		}
	} else if score > t.score || (score == t.score && id < t.n.id) {
		t.l = capDelete(t.l, score, id)
	} else {
		t.r = capDelete(t.r, score, id)
	}
	t.update()
	return t
}

// firstFit returns the first node in (score desc, id asc) order whose
// free capacity covers (cpu, mem) on a machine with (relCPU, relMem)
// total — i.e. the most-requested fitting node, earliest-created among
// score ties. Subtrees are pruned through the aggregates with the same
// arithmetic as the acceptance test, so pruning can never skip a node
// the scan would have accepted.
func (t *capNode) firstFit(relCPU, relMem, cpu, mem float64) *node {
	if t == nil || relCPU-t.minCPU < cpu || relMem-t.minMem < mem {
		return nil
	}
	if n := t.l.firstFit(relCPU, relMem, cpu, mem); n != nil {
		return n
	}
	if relCPU-t.ucpu >= cpu && relMem-t.umem >= mem {
		return t.n
	}
	return t.r.firstFit(relCPU, relMem, cpu, mem)
}

// revEach walks the subtree in reverse order (score asc, id desc among
// equal scores reversed) calling visit until it returns false.
func (t *capNode) revEach(visit func(*node) bool) bool {
	if t == nil {
		return true
	}
	if !t.r.revEach(visit) {
		return false
	}
	if !visit(t.n) {
		return false
	}
	return t.l.revEach(visit)
}

// capIndex is the per-type forest plus bookkeeping.
type capIndex struct {
	trees []*capNode // one root per catalog type index
	size  int
}

func newCapIndex(types int) *capIndex {
	return &capIndex{trees: make([]*capNode, types)}
}

// add indexes a live node under its current used sums and score.
func (ci *capIndex) add(n *node, score float64) {
	cn := &capNode{
		n: n, score: score, ucpu: n.usedCPU, umem: n.usedMem,
		prio: splitmix64(uint64(n.id)),
	}
	ci.trees[n.typ] = capInsert(ci.trees[n.typ], cn)
	ci.size++
}

// remove unindexes a node via its stored key.
func (ci *capIndex) remove(n *node, score float64) {
	ci.trees[n.typ] = capDelete(ci.trees[n.typ], score, n.id)
	ci.size--
}

// podEntry is one pending-queue entry.
type podEntry struct {
	key float64 // cpu+mem, fixed at enqueue (pod sizes never change)
	seq uint64  // global enqueue sequence: the stability tie-break
	idx int     // pod index
}

// podQueue is a binary max-heap by (key desc, seq asc).
type podQueue []podEntry

func (q podQueue) entryBefore(a, b podEntry) bool {
	return a.key > b.key || (a.key == b.key && a.seq < b.seq)
}

func (q *podQueue) push(e podEntry) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.entryBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (q podQueue) peek() podEntry { return q[0] }

// removeIdx deletes the entry naming pod idx: O(n) locate, then a
// bottom-up re-heapify. It only runs on the rare paths that retire a
// still-pending pod — a trace end event or a shard transfer-out — never
// per placement decision, so linear cost is fine.
func (q *podQueue) removeIdx(idx int) bool {
	h := *q
	for i := range h {
		if h[i].idx == idx {
			h[i] = h[len(h)-1]
			h = h[:len(h)-1]
			for j := len(h)/2 - 1; j >= 0; j-- {
				h.siftDown(j)
			}
			*q = h
			return true
		}
	}
	return false
}

// siftDown restores the heap property below j.
func (q podQueue) siftDown(j int) {
	for {
		l, r := 2*j+1, 2*j+2
		best := j
		if l < len(q) && q.entryBefore(q[l], q[best]) {
			best = l
		}
		if r < len(q) && q.entryBefore(q[r], q[best]) {
			best = r
		}
		if best == j {
			return
		}
		q[j], q[best] = q[best], q[j]
		j = best
	}
}

func (q *podQueue) pop() podEntry {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && h.entryBefore(h[l], h[best]) {
			best = l
		}
		if r < len(h) && h.entryBefore(h[r], h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}
