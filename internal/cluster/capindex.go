package cluster

import "nestless/internal/cloudsim"

// The indexed scheduling core: incremental data structures that replace
// the scheduler's per-decision fleet scans without changing a single
// placement decision. Two structures live here:
//
//   - capIndex: per-catalog-type treaps of live nodes ordered by
//     (most-requested score desc, creation order asc), with subtree
//     minima of the used sums so a "most-requested node that fits" query
//     descends the tree instead of scanning the fleet. The comparator is
//     bit-for-bit the linear scan's: the stored score is computed by the
//     same cloudsim.MostRequestedFraction call from the same used sums,
//     and the fit test uses the same `Rel - used >= req` float expression
//     at both the pruning and acceptance levels, so the first in-order
//     fitting node IS the node the scan would have returned.
//
//   - podQueue: a binary max-heap of pending pods keyed by
//     (cpu+mem desc, enqueue sequence asc). sort.SliceStable on the old
//     slice queue compared only cpu+mem and preserved enqueue order among
//     equals; the explicit sequence number reproduces that stability, so
//     the heap pops pods in exactly the order the sorted slice yielded
//     them.
//
// Both structures are deterministic: treap priorities are a splitmix64
// hash of the node id (no RNG), and ties never consult anything but the
// creation/enqueue order. The linear-scan originals survive behind
// Config.Reference; the equivalence suite diffs the two modes byte for
// byte.

// splitmix64 is the deterministic treap priority hash (node id → prio).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// capNode is one treap entry. It snapshots the node's free capacities
// at insert time; the cluster removes and re-inserts a node around
// every mutation, so the snapshot always equals the live value (Leaks
// audits this). Entries are allocated fresh on every add on purpose:
// Go's bump allocator places capNodes touched around the same time
// next to each other, so the query crawl over the recently-churned
// high-score plateau walks a compact memory region. (Embedding the
// capNode in the ~200-byte node struct was tried — zero allocations,
// but one cache line per visited node made firstFit ~40% slower.)
//
// Free capacity is stored instead of the used sums: the fit test
// `free >= req` needs no catalog lookup at query time, and the free
// values are computed by the exact `Rel - used` expression the
// reference scan evaluates, so the comparison outcomes are
// bit-identical. Trees are per catalog type on purpose — all entries
// of one tree share a machine size, so free capacity anti-correlates
// with score and the subtree maxima actually prune the near-full
// high-score plateau. (A single global tree was tried and measured
// ~3.5x worse: a nearly-full big machine still has more absolute free
// room than an empty small one, so mixed-type aggregates never cut.)
// Field order is deliberate: the first 64 bytes hold everything the
// query crawl reads per visited node (prune aggregates, fit snapshot,
// sort key, left child), so a visit costs one cache line; n and prio
// sit in the second line and are only touched on a hit or an insert.
type capNode struct {
	// Subtree maxima of the free snapshots: a subtree whose roomiest
	// corner cannot fit the request holds no fitting node at all.
	// maxSum is the subtree maximum of fcpu+fmem — the sharper prune on
	// the tree's too-full prefix, exactly where a most-requested-first
	// query starts: fitting (cpu, mem) requires fcpu+fmem >= cpu+mem,
	// and float addition is monotone, so a fitting node's free sum can
	// never round below the request sum and the prune can never skip a
	// node the scan would accept.
	maxCPU, maxMem, maxSum float64
	// maxMin is the subtree maximum of min(fcpu, fmem) — the balance
	// cut. A fitting node has fcpu >= cpu AND fmem >= mem, hence
	// min(fcpu, fmem) >= min(cpu, mem) (pure comparisons, no float
	// arithmetic at all). It is what lets a nil query die at the root:
	// when every node is full in at least one dimension, maxCPU and
	// maxMem still look healthy (different nodes supply each), but no
	// node has *both*, and maxMin says so directly.
	maxMin     float64
	fcpu, fmem float64 // free capacity snapshots (Rel - used at insert)
	score      float64 // MostRequestedFraction at insert time (the sort key)
	l, r       *capNode
	n          *node
	prio       uint64
}

// before is the in-order comparator: higher score first, then earlier
// creation (smaller id) — the exact preference order of the linear scan.
func (a *capNode) before(score float64, id int) bool {
	return a.score > score || (a.score == score && a.n.id < id)
}

// update recomputes the subtree aggregates from the children.
func (t *capNode) update() {
	t.maxCPU, t.maxMem = t.fcpu, t.fmem
	t.maxSum = t.fcpu + t.fmem
	t.maxMin = t.fcpu
	if t.fmem < t.fcpu {
		t.maxMin = t.fmem
	}
	if t.l != nil {
		if t.l.maxCPU > t.maxCPU {
			t.maxCPU = t.l.maxCPU
		}
		if t.l.maxMem > t.maxMem {
			t.maxMem = t.l.maxMem
		}
		if t.l.maxSum > t.maxSum {
			t.maxSum = t.l.maxSum
		}
		if t.l.maxMin > t.maxMin {
			t.maxMin = t.l.maxMin
		}
	}
	if t.r != nil {
		if t.r.maxCPU > t.maxCPU {
			t.maxCPU = t.r.maxCPU
		}
		if t.r.maxMem > t.maxMem {
			t.maxMem = t.r.maxMem
		}
		if t.r.maxSum > t.maxSum {
			t.maxSum = t.r.maxSum
		}
		if t.r.maxMin > t.maxMin {
			t.maxMin = t.r.maxMin
		}
	}
}

func rotRight(t *capNode) *capNode {
	l := t.l
	t.l = l.r
	l.r = t
	t.update()
	l.update()
	return l
}

func rotLeft(t *capNode) *capNode {
	r := t.r
	t.r = r.l
	r.l = t
	t.update()
	r.update()
	return r
}

func capInsert(t, cn *capNode) *capNode {
	if t == nil {
		cn.l, cn.r = nil, nil
		cn.update()
		return cn
	}
	if cn.before(t.score, t.n.id) {
		t.l = capInsert(t.l, cn)
		if t.l.prio > t.prio {
			return rotRight(t)
		}
	} else {
		t.r = capInsert(t.r, cn)
		if t.r.prio > t.prio {
			return rotLeft(t)
		}
	}
	t.update()
	return t
}

// capDelete removes the entry with the exact (score, id) key. The score
// must be the stored key (the node carries it in node.idxScore).
func capDelete(t *capNode, score float64, id int) *capNode {
	if t == nil {
		return nil
	}
	if t.n.id == id && t.score == score {
		// Merge children by priority.
		switch {
		case t.l == nil:
			return t.r
		case t.r == nil:
			return t.l
		case t.l.prio > t.r.prio:
			t = rotRight(t)
			t.r = capDelete(t.r, score, id)
		default:
			t = rotLeft(t)
			t.l = capDelete(t.l, score, id)
		}
	} else if score > t.score || (score == t.score && id < t.n.id) {
		t.l = capDelete(t.l, score, id)
	} else {
		t.r = capDelete(t.r, score, id)
	}
	t.update()
	return t
}

// firstFit returns the first node in (score desc, id asc) order whose
// free capacity covers (cpu, mem) — i.e. the most-requested fitting
// node, earliest-created among score ties. sum is cpu+mem, computed
// once by the caller. Subtrees are pruned through the aggregates; the
// per-dimension maxima use the same `free >= req` comparison as the
// acceptance test, and the free-sum maximum adds a necessary-condition
// cut (float addition is monotone, so a fitting node's free sum never
// rounds below the request sum) — pruning can never skip a node the
// scan would have accepted.
//
// (best, bestScore) is the incumbent from earlier trees in the
// cross-type combine: in-order position is monotone in preference, so
// the crawl stops outright at the first node that cannot beat it.
func (t *capNode) firstFit(cpu, mem, sum, qmin float64, best *node, bestScore float64) *node {
	for t != nil {
		if t.maxCPU < cpu || t.maxMem < mem || t.maxSum < sum || t.maxMin < qmin {
			return nil
		}
		if n := t.l.firstFit(cpu, mem, sum, qmin, best, bestScore); n != nil {
			return n
		}
		if best != nil && !t.before(bestScore, best.id) {
			return nil
		}
		if t.fcpu >= cpu && t.fmem >= mem {
			return t.n
		}
		t = t.r
	}
	return nil
}

// revEach walks the subtree in reverse order (score asc, id desc among
// equal scores reversed) calling visit until it returns false.
func (t *capNode) revEach(visit func(*node) bool) bool {
	if t == nil {
		return true
	}
	if !t.r.revEach(visit) {
		return false
	}
	if !visit(t.n) {
		return false
	}
	return t.l.revEach(visit)
}

// capIndex is the capacity index: one tree per catalog type, combined
// at query time by bestWholeFit and walked in reverse by the
// optimizer's neighborhood selection. Each node carries one embedded
// capNode, so maintenance never allocates.
type capIndex struct {
	trees []*capNode // one root per catalog type
	cat   []cloudsim.VMType
	size  int
	// ver counts mutations. Two equal ver values bracket a window in
	// which the indexed node multiset — and therefore every query
	// answer — was unchanged; the scheduler's blocked-head memo keys on
	// it to skip provably identical re-queries.
	ver uint64
}

func newCapIndex(cat []cloudsim.VMType) *capIndex {
	return &capIndex{trees: make([]*capNode, len(cat)), cat: cat}
}

// add indexes a live node under its current free capacities and score.
func (ci *capIndex) add(n *node, score float64) {
	t := ci.cat[n.typ]
	cn := &capNode{
		n: n, score: score,
		fcpu: t.RelCPU - n.usedCPU, fmem: t.RelMem - n.usedMem,
		prio: splitmix64(uint64(n.id)),
	}
	ci.trees[n.typ] = capInsert(ci.trees[n.typ], cn)
	ci.size++
	ci.ver++
}

// remove unindexes a node via its stored key.
func (ci *capIndex) remove(n *node, score float64) {
	ci.trees[n.typ] = capDelete(ci.trees[n.typ], score, n.id)
	ci.size--
	ci.ver++
}

// podEntry is one pending-queue entry.
type podEntry struct {
	key float64 // cpu+mem, fixed at enqueue (pod sizes never change)
	seq uint64  // global enqueue sequence: the stability tie-break
	idx int     // pod index
}

// podQueue is a binary max-heap by (key desc, seq asc).
type podQueue []podEntry

func (q podQueue) entryBefore(a, b podEntry) bool {
	return a.key > b.key || (a.key == b.key && a.seq < b.seq)
}

func (q *podQueue) push(e podEntry) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.entryBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (q podQueue) peek() podEntry { return q[0] }

// removeIdx deletes the entry naming pod idx: O(n) locate, then a
// bottom-up re-heapify. It only runs on the rare paths that retire a
// still-pending pod — a trace end event or a shard transfer-out — never
// per placement decision, so linear cost is fine.
func (q *podQueue) removeIdx(idx int) bool {
	h := *q
	for i := range h {
		if h[i].idx == idx {
			h[i] = h[len(h)-1]
			h = h[:len(h)-1]
			for j := len(h)/2 - 1; j >= 0; j-- {
				h.siftDown(j)
			}
			*q = h
			return true
		}
	}
	return false
}

// siftDown restores the heap property below j.
func (q podQueue) siftDown(j int) {
	for {
		l, r := 2*j+1, 2*j+2
		best := j
		if l < len(q) && q.entryBefore(q[l], q[best]) {
			best = l
		}
		if r < len(q) && q.entryBefore(q[r], q[best]) {
			best = r
		}
		if best == j {
			return
		}
		q[j], q[best] = q[best], q[j]
		j = best
	}
}

func (q *podQueue) pop() podEntry {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && h.entryBefore(h[l], h[best]) {
			best = l
		}
		if r < len(h) && h.entryBefore(h[r], h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}
