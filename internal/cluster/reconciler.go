package cluster

import (
	"fmt"
	"sort"

	"nestless/internal/sim"
)

// The declarative autoscaler: cluster-api-style machine management as
// an idempotent reconcile loop on the sim clock. The observed state is
// the live fleet plus the in-flight provisioning ledger (MachineSets
// exposes it); the desired state is implicit — enough capacity to
// unblock the scheduler's head pod, spread across zones, with
// Config.SpotFrac of the fleet on spot capacity. Each reconcile round
// closes at most one unit of the gap (one machine added on demand, any
// number of idle machines reclaimed on the tick resync), so re-running
// a round against converged state is a no-op — the idempotence that
// makes the loop safe to fire from every code path that observes
// pressure.
//
// With one zone and zero spot fraction every decision collapses to the
// imperative loop's (zone 0, on-demand, same single-request-in-flight
// discipline), which is what the equivalence suite pins.

// scaleUp is the scheduler's capacity request: the head pod is blocked
// and wants one machine of catalog type typ. Both autoscaler modes keep
// at most one provisioning request in flight.
func (c *Cluster) scaleUp(typ int) {
	if c.inflight != 0 {
		return
	}
	if c.cfg.Autoscaler == Imperative {
		c.requestNode(typ, 0, false)
		return
	}
	c.reconcileDemand(typ)
}

// reconcileDemand is one demand-driven reconcile round: desired is
// observed plus one machine of type typ; the round places it in the
// emptiest zone and decides spot vs. on-demand against the configured
// fraction (honoring revocation fallback credits first).
func (c *Cluster) reconcileDemand(typ int) {
	zone := c.pickZone()
	spot := c.pickSpot()
	c.res.ReconcileRounds++
	c.res.ReconcileActions++
	c.count("cluster/reconcile_rounds")
	c.count("cluster/reconcile_actions")
	c.requestNode(typ, zone, spot)
}

// pickZone returns the spread-constraint zone choice: the zone with the
// fewest live nodes, ties to the lowest index. Single-zone worlds
// always pick 0.
func (c *Cluster) pickZone() int {
	zone := 0
	for z := 1; z < c.cfg.Zones; z++ {
		if c.zoneLive[z] < c.zoneLive[zone] {
			zone = z
		}
	}
	return zone
}

// pickSpot decides whether the next machine is spot capacity: never
// when the run has no spot fraction, never while a revocation's
// on-demand fallback credit is outstanding (that is the fallback), and
// otherwise exactly when the live spot count is below the configured
// fraction of the fleet-after-this-machine.
func (c *Cluster) pickSpot() bool {
	if c.cfg.SpotFrac <= 0 {
		return false
	}
	if c.odFallback > 0 {
		c.odFallback--
		c.res.OnDemandFallbacks++
		c.count("cluster/od_fallbacks")
		return false
	}
	return float64(c.spotLive) < c.cfg.SpotFrac*float64(c.liveCount+1)
}

// revokeNode preempts a spot node: the provider takes the capacity back
// with kill semantics (bill settled at the spot rate, pods displaced),
// and the replacement machine is credited to fall back to on-demand —
// the standard mitigation for revocation storms.
func (c *Cluster) revokeNode(n *node, now sim.Time) {
	c.res.SpotRevocations++
	c.count("cluster/spot_revocations")
	if c.rec != nil {
		c.rec.Instant("cluster/faults", "spot-revoke", "node", float64(n.id))
	}
	c.odFallback++
	c.drainNode(n, now)
}

// killZone is a whole-zone outage: every live node in the zone dies
// with full node-kill semantics, in creation order.
func (c *Cluster) killZone(z int, now sim.Time) {
	c.res.ZoneKills++
	c.count("cluster/zone_kills")
	if c.rec != nil {
		c.rec.Instant("cluster/faults", "zone-kill", "zone", float64(z))
	}
	for _, n := range c.liveList {
		if n.live && n.zone == z {
			c.killNode(n, now)
		}
	}
}

// MachineSet is one row of the reconciler's observed state: the
// machines sharing (catalog type, zone, spot), split into ready (live)
// and provisioning (requested, not yet booted).
type MachineSet struct {
	Type         int
	Zone         int
	Spot         bool
	Ready        int
	Provisioning int
}

// MachineSets reports the observed machine sets, sorted by (type, zone,
// on-demand-first) — the declarative face of the fleet, also what the
// what-if service surfaces.
func (c *Cluster) MachineSets() []MachineSet {
	type key struct {
		typ, zone int
		spot      bool
	}
	acc := map[key]*MachineSet{}
	get := func(k key) *MachineSet {
		m := acc[k]
		if m == nil {
			m = &MachineSet{Type: k.typ, Zone: k.zone, Spot: k.spot}
			acc[k] = m
		}
		return m
	}
	for _, n := range c.liveList {
		if n.live {
			get(key{n.typ, n.zone, n.spot}).Ready++
		}
	}
	for _, ev := range c.ledger {
		if ev.Kind == evProvRetry || ev.Kind == evNodeReady {
			get(key{int(ev.A), int(ev.B >> 1), ev.B&1 != 0}).Provisioning++
		}
	}
	out := make([]MachineSet, 0, len(acc))
	for _, m := range acc {
		out = append(out, *m)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Type != out[b].Type {
			return out[a].Type < out[b].Type
		}
		if out[a].Zone != out[b].Zone {
			return out[a].Zone < out[b].Zone
		}
		return !out[a].Spot && out[b].Spot
	})
	return out
}

// KillZoneNow fails every live node in the named zone at the current
// instant — the zone-loss drill as a what-if branch delta. Returns how
// many nodes died.
func (c *Cluster) KillZoneNow(zoneName string) (int, error) {
	zone := -1
	for z := 0; z < c.cfg.Zones; z++ {
		if c.cfg.ZoneNames[z] == zoneName {
			zone = z
			break
		}
	}
	if zone < 0 {
		return 0, fmt.Errorf("cluster: zone %q not configured (have %v)", zoneName, c.cfg.ZoneNames[:c.cfg.Zones])
	}
	before := c.zoneLive[zone]
	c.killZone(zone, c.eng.Now())
	if c.queueLen() > 0 {
		c.kickSchedule()
	}
	return before, nil
}

// RevokeSpotNow revokes up to count live spot nodes (creation order) at
// the current instant — the revocation-storm drill for what-if
// branches. Returns how many were revoked.
func (c *Cluster) RevokeSpotNow(count int) (int, error) {
	if count < 1 {
		return 0, fmt.Errorf("cluster: revoke count %d < 1", count)
	}
	now := c.eng.Now()
	revoked := 0
	for _, n := range c.liveList {
		if revoked == count {
			break
		}
		if n.live && n.spot {
			c.revokeNode(n, now)
			revoked++
		}
	}
	if c.queueLen() > 0 {
		c.kickSchedule()
	}
	return revoked, nil
}
