package cluster

import (
	"slices"
	"sort"

	"nestless/internal/cloudsim"
	"nestless/internal/parallel"
)

// Hostlo re-optimisation. The paper's step-4 optimizer
// (cloudsim.OptimizeHostlo: consolidate / split / shrink, cost-monotone)
// is expensive over a big fleet, and churn dirties only a few nodes
// between passes. The incremental policy therefore re-packs just the
// dirty set — nodes whose contents changed since the last pass — plus a
// bounded neighborhood of consolidation targets (the emptiest live
// nodes by most-requested score), falling back to a full-fleet pass
// when the dirty fraction exceeds Config.RepackDirtyFrac or when
// Config.FullRepack pins full passes. Candidate selection is
// deterministic and identical between the indexed and reference
// schedulers (the equivalence suite diffs them); whether it uses the
// capacity index or a fleet scan is purely a wall-clock matter.
//
// Incremental passes are additionally partitioned, canonicalized and
// memoized (see optimizeGroups): candidates split into disjoint
// per-catalog-type groups, each group sorted into its canonical
// content order, looked up in the per-world packing cache, and only
// the missing groups handed to cloudsim.OptimizeHostlo — fanned across
// Config.RepackWorkers when more than one group missed. Group outputs
// merge back in type order, so the improved placement is a pure
// function of the candidate content: identical at any worker count and
// with the cache on or off. Full passes stay exactly the original
// global optimizer call over the whole fleet in creation order — that
// is what makes a drained no-churn cluster settle on the static
// packer's fleet, so partitioning must never apply to them.

// minNeighborhood is the floor on how many consolidation targets an
// incremental pass considers alongside the dirty set.
const minNeighborhood = 8

// optimize runs the Hostlo optimizer over the candidate set and
// reconciles those nodes to the improved placement. Containers move
// between nodes (a migration the Hostlo device makes cheap — the pod's
// network identity does not change); VMs the optimizer shrank or
// emptied are retired, VMs it re-typed are replaced. Reconciliation is
// instant in the model: migration latency is not priced, only fleet
// time is.
func (c *Cluster) optimize() {
	c.dirty = false
	cand, full := c.optimizeCandidates()
	c.dirtyList = c.dirtyList[:0]
	if len(cand) == 0 {
		return
	}
	for _, n := range cand {
		n.dirty = false
	}
	c.res.OptimizerRuns++
	c.count("cluster/optimizer_runs")
	var improved []cloudsim.PlacedVM
	if full {
		c.res.OptimizerFull++
		c.count("cluster/optimizer_full_runs")
		placed := c.placedScratch[:0]
		for _, n := range cand {
			placed = append(placed, cloudsim.PlacedVM{Type: n.typ, Items: n.items})
		}
		c.placedScratch = placed
		improved = cloudsim.OptimizeHostlo(placed, c.cat)
	} else {
		improved = c.optimizeGroups(cand)
	}
	c.reconcile(cand, improved)
}

// optimizeGroups runs one incremental pass: the candidates are
// partitioned into disjoint per-catalog-type groups, each group is
// copied into the canonical arena and canonicalized, the packing cache
// is probed serially in type order, cache misses are optimized (in
// parallel across Config.RepackWorkers when at least two groups
// missed — per-group optimization is a pure function, so fan-out
// cannot change the output), fresh solutions are installed serially in
// type order (deterministic LRU order), and the group outputs are
// concatenated in type order.
func (c *Cluster) optimizeGroups(cand []*node) []cloudsim.PlacedVM {
	types := len(c.cat)
	if cap(c.typeCount) < types {
		c.typeCount = make([]int, types)
	}
	counts := c.typeCount[:types]
	for i := range counts {
		counts[i] = 0
	}
	for _, n := range cand {
		counts[n.typ]++
	}
	// Build the canonical groups over the scratch arenas. Appends may
	// grow (and reallocate) the arenas mid-build; earlier segments keep
	// pointing into the abandoned backing array, which stays valid and
	// is never written again — the full-capacity slice expressions stop
	// any aliasing.
	placed := c.placedScratch[:0]
	items := c.itemScratch[:0]
	groups := c.groupScratch[:0]
	for typ := 0; typ < types; typ++ {
		if counts[typ] == 0 {
			continue
		}
		start := len(placed)
		for _, n := range cand {
			if n.typ != typ {
				continue
			}
			is := len(items)
			items = append(items, n.items...)
			placed = append(placed, cloudsim.PlacedVM{
				Type: typ, Items: items[is:len(items):len(items)],
			})
		}
		group := placed[start:len(placed):len(placed)]
		cloudsim.CanonicalizePlacement(group)
		groups = append(groups, group)
	}
	c.placedScratch = placed
	c.itemScratch = items
	c.groupScratch = groups

	// Serial probe phase, in type order.
	outs := c.outScratch[:0]
	miss := c.missScratch[:0]
	hits := 0
	for gi, g := range groups {
		c.res.OptimizerGroups++
		if out, ok := c.pack.Get(g); ok {
			outs = append(outs, out)
			hits++
			continue
		}
		outs = append(outs, nil)
		miss = append(miss, int32(gi))
	}
	// Compute phase: misses only. cloudsim.OptimizeHostlo copies its
	// input into a private fleet and shares nothing with the cluster,
	// so miss groups optimize concurrently; index-slot writes keep the
	// merge order worker-independent.
	if len(miss) >= 2 && c.cfg.RepackWorkers > 1 {
		parallel.Run(len(miss), c.cfg.RepackWorkers, func(k int) {
			gi := miss[k]
			outs[gi] = cloudsim.OptimizeHostlo(groups[gi], c.cat)
		})
	} else {
		for _, gi := range miss {
			outs[gi] = cloudsim.OptimizeHostlo(groups[gi], c.cat)
		}
	}
	// Serial install phase, in type order.
	for _, gi := range miss {
		c.pack.Put(groups[gi], outs[gi])
	}
	c.outScratch = outs
	c.missScratch = miss
	if c.pack != nil {
		c.res.OptimizerCacheHits += hits
		c.res.OptimizerCacheMisses += len(miss)
		if c.rec != nil {
			reg := c.rec.Metrics()
			if hits > 0 {
				reg.Counter("cluster/optimizer_cache_hits").Add(float64(hits))
			}
			if len(miss) > 0 {
				reg.Counter("cluster/optimizer_cache_misses").Add(float64(len(miss)))
			}
		}
	}
	// Merge in type order. The cached outputs stay cache-owned and
	// read-only; reconcile copies items before mutating node state.
	improved := c.improvedScratch[:0]
	for _, out := range outs {
		improved = append(improved, out...)
	}
	c.improvedScratch = improved
	return improved
}

// optimizeCandidates picks the nodes the next pass will consider, in
// creation order, and reports whether that is the whole live fleet.
func (c *Cluster) optimizeCandidates() ([]*node, bool) {
	// Live dirty nodes (dirtyList is append-ordered; the final sort by
	// id restores creation order).
	cand := c.candScratch[:0]
	for _, n := range c.dirtyList {
		if n.live {
			cand = append(cand, n)
		} else {
			n.dirty = false
		}
	}
	full := c.cfg.FullRepack ||
		float64(len(cand)) > c.cfg.RepackDirtyFrac*float64(c.liveCount)
	if full {
		c.compactLive()
		cand = append(cand[:0], c.liveList...)
		c.candScratch = cand
		return cand, true
	}
	k := 2 * len(cand)
	if k < minNeighborhood {
		k = minNeighborhood
	}
	cand = append(cand, c.neighborhood(k)...)
	slices.SortFunc(cand, func(a, b *node) int { return a.id - b.id })
	c.candScratch = cand
	return cand, false
}

// neighborhood returns up to k live non-dirty consolidation targets:
// the emptiest nodes by (most-requested score asc, id desc). Both
// selection paths — treap tail-walk and fleet scan — apply the same
// two-stage rule (up to k per catalog type, then k overall), so they
// return the identical set.
func (c *Cluster) neighborhood(k int) []*node {
	var cand []*node
	if c.cfg.Reference {
		byType := make([][]*node, len(c.cat))
		for _, n := range c.nodes {
			if n.live && !n.dirty {
				byType[n.typ] = append(byType[n.typ], n)
			}
		}
		for _, ns := range byType {
			sort.Slice(ns, func(a, b int) bool {
				sa, sb := c.score(ns[a]), c.score(ns[b])
				return sa < sb || (sa == sb && ns[a].id > ns[b].id)
			})
			if len(ns) > k {
				ns = ns[:k]
			}
			cand = append(cand, ns...)
		}
	} else {
		cand = c.neighScratch[:0]
		for _, root := range c.idx.trees {
			taken := 0
			root.revEach(func(n *node) bool {
				if n.dirty {
					return true
				}
				cand = append(cand, n)
				taken++
				return taken < k
			})
		}
		c.neighScratch = cand
	}
	// Final overall ordering, on precomputed scores (the comparator
	// must not recompute the score per comparison — this runs on every
	// incremental pass).
	sc := c.scoredScratch[:0]
	for _, n := range cand {
		sc = append(sc, scoredNode{n: n, score: c.score(n)})
	}
	slices.SortFunc(sc, func(a, b scoredNode) int {
		switch {
		case a.score < b.score:
			return -1
		case a.score > b.score:
			return 1
		case a.n.id > b.n.id:
			return -1
		default:
			return 1
		}
	})
	c.scoredScratch = sc
	if len(sc) > k {
		sc = sc[:k]
	}
	out := cand[:0]
	for _, e := range sc {
		out = append(out, e.n)
	}
	return out
}

// reconcile maps an optimized placement onto the candidate nodes: nodes
// whose type and contents are unchanged are kept (their cost clock
// keeps running), the rest are retired and replacements created. The
// moves counter records how much the optimizer actually churned.
//
// It runs in three phases over reusable scratch. Phase 1 matches
// improved VMs onto surviving candidates by signature (FIFO among
// equals, in improved order) and detects exact no-ops — a matched node
// whose item list is bit-identical to the improved VM needs no
// re-index, no placement-map rewrite, nothing; at steady state with a
// warm packing cache that is nearly every node. Phase 2 unlinks the
// touched candidates (changed or retired) from their pods' placement
// maps. Phase 3 applies: rewrites changed nodes, creates replacements
// in improved order, retires the unmatched.
func (c *Cluster) reconcile(cand []*node, improved []cloudsim.PlacedVM) {
	now := c.eng.Now()
	// Phase 1: signature-match improved VMs to candidates.
	if c.avail == nil {
		c.avail = make(map[cloudsim.VMSig]sigChain, 64)
	} else {
		clear(c.avail)
	}
	next := c.availNext[:0]
	sigs := c.sigScratch[:0]
	for k, n := range cand {
		sig := cloudsim.VMSigOf(n.typ, n.items)
		sigs = append(sigs, sig)
		next = append(next, -1)
		if ch, ok := c.avail[sig]; ok {
			next[ch.tail] = int32(k)
			ch.tail = int32(k)
			c.avail[sig] = ch
		} else {
			c.avail[sig] = sigChain{head: int32(k), tail: int32(k)}
		}
	}
	c.availNext = next
	c.sigScratch = sigs
	match := c.matchScratch[:0]
	eq := c.eqScratch[:0]
	matched := c.candMatched[:0]
	for range cand {
		matched = append(matched, false)
	}
	for _, pv := range improved {
		sig := cloudsim.VMSigOf(pv.Type, pv.Items)
		ch, ok := c.avail[sig]
		if !ok {
			match = append(match, -1)
			eq = append(eq, false)
			continue
		}
		k := ch.head
		if next[k] >= 0 {
			ch.head = next[k]
			c.avail[sig] = ch
		} else {
			delete(c.avail, sig)
		}
		matched[k] = true
		match = append(match, k)
		eq = append(eq, equalItems(cand[k].items, pv.Items))
	}
	c.matchScratch = match
	c.eqScratch = eq
	c.candMatched = matched
	// Phase 2: unlink the touched candidates (changed or retired) from
	// the placement maps — untouched nodes keep their entries, which is
	// what makes a no-op pass free.
	touched := c.touchedScratch[:0]
	for j := range improved {
		if k := match[j]; k >= 0 && !eq[j] {
			touched = append(touched, cand[k])
		}
	}
	for k, n := range cand {
		if !matched[k] {
			touched = append(touched, n)
		}
	}
	c.touchedScratch = touched
	c.unlinkPods(touched)
	// Phase 3: apply.
	relink := func(n *node) {
		for _, it := range n.items {
			if i, ok := c.podIndex[it.Pod]; ok {
				c.podNodeLink(i, n.id)
			}
		}
	}
	var created int
	for j, pv := range improved {
		if k := match[j]; k >= 0 {
			if eq[j] {
				continue
			}
			n := cand[k]
			// Canonicalize item order (and with it the used sums) to the
			// optimizer's order, so future passes see identical input.
			n.items = append(n.items[:0], pv.Items...)
			n.recompute()
			c.touchNode(n)
			relink(n)
			continue
		}
		// Repack replacements follow the zone spread constraint but are
		// always on-demand: the optimizer consolidates committed
		// capacity, and billing it at spot rates would let a repack
		// manufacture savings the reconciler's spot fraction governs.
		n := c.createNode(pv.Type, c.pickZone(), false, now)
		n.items = append(n.items, pv.Items...)
		n.recompute()
		c.touchNode(n)
		relink(n)
		if len(n.items) == 0 {
			n.idleSince = now
		}
		created++
	}
	retired := 0
	for k, n := range cand {
		if matched[k] {
			continue
		}
		n.items = n.items[:0]
		n.recompute()
		c.terminate(n, now)
		retired++
	}
	if created > 0 || retired > 0 {
		c.res.OptimizerMoves += created + retired
		if c.rec != nil {
			c.rec.Instant("cluster/optimizer", "repack", "moves", float64(created+retired))
			c.rec.Metrics().Counter("cluster/optimizer_moves").Add(float64(created + retired))
		}
	}
}

// equalItems reports bit-identical item lists (order included).
func equalItems(a, b []cloudsim.PlacedItem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// unlinkPods drops the given node ids from the placement maps of every
// pod with items on them (reconcile re-adds the new homes). Membership
// tests run on generation-stamped mark arrays instead of per-call
// maps: bumping the generation invalidates every stale mark at once,
// so the pass allocates nothing.
func (c *Cluster) unlinkPods(touched []*node) {
	if c.cfg.Reference || len(touched) == 0 {
		return
	}
	c.markGen++
	if c.markGen == 0 { // uint32 wrap: every stale stamp is void again
		for i := range c.podMark {
			c.podMark[i] = 0
		}
		for i := range c.nodeMark {
			c.nodeMark[i] = 0
		}
		c.markGen = 1
	}
	gen := c.markGen
	if len(c.podMark) < len(c.pods) {
		c.podMark = append(c.podMark, make([]uint32, len(c.pods)-len(c.podMark))...)
	}
	if len(c.nodeMark) < len(c.nodes) {
		c.nodeMark = append(c.nodeMark, make([]uint32, len(c.nodes)-len(c.nodeMark))...)
	}
	for _, n := range touched {
		c.nodeMark[n.id] = gen
	}
	for _, n := range touched {
		for _, it := range n.items {
			i, ok := c.podIndex[it.Pod]
			if !ok || c.podMark[i] == gen {
				continue
			}
			c.podMark[i] = gen
			p := &c.pods[i]
			kept := p.onNodes[:0]
			for _, nid := range p.onNodes {
				if c.nodeMark[nid] != gen {
					kept = append(kept, nid)
				}
			}
			p.onNodes = kept
		}
	}
}
