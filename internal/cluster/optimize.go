package cluster

import (
	"sort"

	"nestless/internal/cloudsim"
)

// Hostlo re-optimisation. The paper's step-4 optimizer
// (cloudsim.OptimizeHostlo: consolidate / split / shrink, cost-monotone)
// is expensive over a big fleet, and churn dirties only a few nodes
// between passes. The incremental policy therefore re-packs just the
// dirty set — nodes whose contents changed since the last pass — plus a
// bounded neighborhood of consolidation targets (the emptiest live
// nodes by most-requested score), falling back to a full-fleet pass
// when the dirty fraction exceeds Config.RepackDirtyFrac or when
// Config.FullRepack pins full passes. Candidate selection is
// deterministic and identical between the indexed and reference
// schedulers (the equivalence suite diffs them); whether it uses the
// capacity index or a fleet scan is purely a wall-clock matter.

// minNeighborhood is the floor on how many consolidation targets an
// incremental pass considers alongside the dirty set.
const minNeighborhood = 8

// optimize runs the Hostlo optimizer over the candidate set and
// reconciles those nodes to the improved placement. Containers move
// between nodes (a migration the Hostlo device makes cheap — the pod's
// network identity does not change); VMs the optimizer shrank or
// emptied are retired, VMs it re-typed are replaced. Reconciliation is
// instant in the model: migration latency is not priced, only fleet
// time is.
func (c *Cluster) optimize() {
	c.dirty = false
	cand, full := c.optimizeCandidates()
	c.dirtyList = c.dirtyList[:0]
	if len(cand) == 0 {
		return
	}
	placedVMs := make([]cloudsim.PlacedVM, 0, len(cand))
	for _, n := range cand {
		n.dirty = false
		placedVMs = append(placedVMs, cloudsim.PlacedVM{Type: n.typ, Items: n.items})
	}
	improved := cloudsim.OptimizeHostlo(placedVMs, c.cat)
	c.res.OptimizerRuns++
	c.count("cluster/optimizer_runs")
	if full {
		c.res.OptimizerFull++
		c.count("cluster/optimizer_full_runs")
	}
	c.reconcile(cand, improved)
}

// optimizeCandidates picks the nodes the next pass will consider, in
// creation order, and reports whether that is the whole live fleet.
func (c *Cluster) optimizeCandidates() ([]*node, bool) {
	// Live dirty nodes, in creation order (dirtyList is append-ordered;
	// sort by id — ids are creation order).
	dirty := c.dirtyList[:0:0]
	for _, n := range c.dirtyList {
		if n.live {
			dirty = append(dirty, n)
		} else {
			n.dirty = false
		}
	}
	full := c.cfg.FullRepack ||
		float64(len(dirty)) > c.cfg.RepackDirtyFrac*float64(c.liveCount)
	if full {
		c.compactLive()
		return append([]*node(nil), c.liveList...), true
	}
	k := 2 * len(dirty)
	if k < minNeighborhood {
		k = minNeighborhood
	}
	cand := append(append([]*node(nil), dirty...), c.neighborhood(k)...)
	sort.Slice(cand, func(a, b int) bool { return cand[a].id < cand[b].id })
	return cand, false
}

// neighborhood returns up to k live non-dirty consolidation targets:
// the emptiest nodes by (most-requested score asc, id desc). Both
// selection paths — treap tail-walk and fleet scan — apply the same
// two-stage rule (up to k per catalog type, then k overall), so they
// return the identical set.
func (c *Cluster) neighborhood(k int) []*node {
	var cand []*node
	if c.cfg.Reference {
		byType := make([][]*node, len(c.cat))
		for _, n := range c.nodes {
			if n.live && !n.dirty {
				byType[n.typ] = append(byType[n.typ], n)
			}
		}
		for _, ns := range byType {
			sort.Slice(ns, func(a, b int) bool {
				sa, sb := c.score(ns[a]), c.score(ns[b])
				return sa < sb || (sa == sb && ns[a].id > ns[b].id)
			})
			if len(ns) > k {
				ns = ns[:k]
			}
			cand = append(cand, ns...)
		}
	} else {
		for _, root := range c.idx.trees {
			taken := 0
			root.revEach(func(n *node) bool {
				if n.dirty {
					return true
				}
				cand = append(cand, n)
				taken++
				return taken < k
			})
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		sa, sb := c.score(cand[a]), c.score(cand[b])
		return sa < sb || (sa == sb && cand[a].id > cand[b].id)
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// reconcile maps an optimized placement onto the candidate nodes: nodes
// whose type and contents are unchanged are kept (their cost clock
// keeps running), the rest are retired and replacements created. The
// moves counter records how much the optimizer actually churned.
func (c *Cluster) reconcile(cand []*node, improved []cloudsim.PlacedVM) {
	now := c.eng.Now()
	// The placement map for every pod with items on a candidate node is
	// rebuilt below; unlink the candidate nodes first.
	c.unlinkPods(cand)
	// Index surviving nodes by signature; each can absorb one VM.
	avail := map[string][]*node{}
	for _, n := range cand {
		sig := cloudsim.VMSignature(n.typ, n.items)
		avail[sig] = append(avail[sig], n)
	}
	matched := map[*node]bool{}
	var created int
	relink := func(n *node) {
		for _, it := range n.items {
			if i, ok := c.podIndex[it.Pod]; ok {
				c.podNodeLink(i, n.id)
			}
		}
	}
	for _, pv := range improved {
		sig := cloudsim.VMSignature(pv.Type, pv.Items)
		if q := avail[sig]; len(q) > 0 {
			n := q[0]
			avail[sig] = q[1:]
			matched[n] = true
			// Canonicalize item order (and with it the used sums) to the
			// optimizer's order, so future passes see identical input.
			n.items = append(n.items[:0], pv.Items...)
			n.recompute()
			c.touchNode(n)
			relink(n)
			continue
		}
		n := c.createNode(pv.Type, now)
		n.items = append(n.items, pv.Items...)
		n.recompute()
		c.touchNode(n)
		relink(n)
		if len(n.items) == 0 {
			n.idleSince = now
		}
		created++
	}
	retired := 0
	for _, n := range cand {
		if matched[n] {
			continue
		}
		n.items = n.items[:0]
		n.recompute()
		c.terminate(n, now)
		retired++
	}
	if created > 0 || retired > 0 {
		c.res.OptimizerMoves += created + retired
		if c.rec != nil {
			c.rec.Instant("cluster/optimizer", "repack", "moves", float64(created+retired))
			c.rec.Metrics().Counter("cluster/optimizer_moves").Add(float64(created + retired))
		}
	}
}

// unlinkPods drops the candidate node ids from the placement maps of
// every pod with items on them (reconcile re-adds the new homes).
func (c *Cluster) unlinkPods(cand []*node) {
	if c.cfg.Reference {
		return
	}
	onCand := make(map[int]bool, len(cand))
	for _, n := range cand {
		onCand[n.id] = true
	}
	seen := map[int]bool{}
	for _, n := range cand {
		for _, it := range n.items {
			i, ok := c.podIndex[it.Pod]
			if !ok || seen[i] {
				continue
			}
			seen[i] = true
			p := &c.pods[i]
			kept := p.onNodes[:0]
			for _, nid := range p.onNodes {
				if !onCand[nid] {
					kept = append(kept, nid)
				}
			}
			p.onNodes = kept
		}
	}
}
