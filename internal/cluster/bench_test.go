package cluster_test

import (
	"os"
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/trace"
)

// benchWorkload flattens a churned population into one pod stream: the
// scheduler sees ~hundreds of arrivals and departures over the horizon.
func benchWorkload() []trace.Pod {
	users := trace.Generate(trace.GenConfig{
		Seed:              11,
		Users:             30,
		MeanPodsPerUser:   8,
		HeavyUserFraction: 0.15,
		MeanArrivalGap:    30 * time.Second,
		MeanLifetime:      45 * time.Minute,
	})
	var pods []trace.Pod
	for _, u := range users {
		pods = append(pods, u.Pods...)
	}
	return pods
}

// scaleWorkload flattens a churned population into one stream of
// exactly n pods. Users scale with n, so fleet size (and with it the
// cost of every placement decision) grows with the workload — which is
// precisely what separates the O(log n) indexed core from the O(n)
// reference scan. Users are overshot by ~20% so the generator's pod
// count variance cannot leave the stream short of n before truncation.
func scaleWorkload(n int) []trace.Pod {
	users := trace.Generate(trace.GenConfig{
		Seed:              23,
		Users:             n/5 + 1,
		MeanPodsPerUser:   6,
		HeavyUserFraction: 0.1,
		MeanArrivalGap:    90 * time.Second,
		MeanLifetime:      90 * time.Minute,
	})
	var pods []trace.Pod
	for _, u := range users {
		pods = append(pods, u.Pods...)
		if len(pods) >= n {
			break
		}
	}
	if len(pods) > n {
		pods = pods[:n]
	}
	return pods
}

// BenchmarkLifecycleScale is the trace-scale benchmark family behind
// the indexed scheduling core: full lifecycle runs at 1k / 10k / 100k
// pods. Three modes per policy:
//
//   - indexed: the default — capacity index, heap queue, dirty-set
//     incremental optimizer.
//   - reference: linear-scan placement with the same incremental
//     optimizer policy (byte-identical decisions; isolates the scan
//     cost).
//   - legacy: linear scan plus full-fleet repack on every optimizer
//     pass — the pre-index behavior, the honest "before" row.
//
// The reference and legacy rows exist to measure the speedup; they are
// skipped at 100k, where an O(fleet) cost per decision makes a single
// run take minutes to hours.
//
// BootDelay is zero here, unlike BenchmarkSchedulerThroughput: the
// autoscaler admits one provisioning request in flight at a time, so a
// non-zero boot delay caps placements at horizon/delay regardless of
// how many pods arrive (a 6h horizon at 30s/boot schedules ~2.4k pods
// and leaves the rest queued — the benchmark would measure arrival
// bookkeeping, not placement). With instant boots every pod is placed
// and the fleet grows with n, which is the regime the index targets.
func BenchmarkLifecycleScale(b *testing.B) {
	sizes := []struct {
		name string
		n    int
	}{{"1k", 1_000}, {"10k", 10_000}, {"100k", 100_000}, {"1M", 1_000_000}}
	modes := []struct {
		name       string
		reference  bool
		fullRepack bool
	}{
		{"indexed", false, false},
		{"reference", true, false},
		{"legacy", true, true},
	}
	for _, sz := range sizes {
		if sz.n >= 1_000_000 && os.Getenv("BENCH_1M") == "" {
			// The 1M row is the headline "lifecycle in minutes" run
			// (~75s for Hostlo on the reference machine) plus ~2 GB of
			// workload; opt in with BENCH_1M=1. CI runs it as a smoke
			// test; EXPERIMENTS.md records a full example.
			continue
		}
		pods := scaleWorkload(sz.n)
		for _, pol := range []cluster.Policy{cluster.Kubernetes, cluster.Hostlo} {
			for _, m := range modes {
				if m.reference && sz.n >= 100_000 {
					continue
				}
				if m.fullRepack && pol != cluster.Hostlo {
					// Full repack only differs under Hostlo.
					continue
				}
				if m.fullRepack && sz.n >= 10_000 && os.Getenv("BENCH_LEGACY") == "" {
					// A full O(fleet²) optimizer pass per drain at 10k pods
					// takes many minutes; opt in with BENCH_LEGACY=1 (the
					// EXPERIMENTS.md worked example records one such run).
					continue
				}
				b.Run(sz.name+"/"+pol.String()+"/"+m.name, func(b *testing.B) {
					cfg := cluster.Config{
						Seed:       1,
						Pods:       pods,
						Policy:     pol,
						Horizon:    6 * time.Hour,
						Reference:  m.reference,
						FullRepack: m.fullRepack,
					}
					scheduled := 0
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res := cluster.Simulate(cfg)
						scheduled += res.Scheduled
					}
					b.StopTimer()
					if secs := b.Elapsed().Seconds(); secs > 0 {
						b.ReportMetric(float64(scheduled)/secs, "pods/s")
					}
				})
			}
		}
	}
}

// BenchmarkSchedulerThroughput measures end-to-end lifecycle simulation
// speed in pods scheduled per wall-clock second — the capacity-planning
// number for sizing population sweeps.
func BenchmarkSchedulerThroughput(b *testing.B) {
	pods := benchWorkload()
	for _, pol := range []cluster.Policy{cluster.Kubernetes, cluster.Hostlo} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := cluster.Config{
				Seed:      1,
				Pods:      pods,
				Policy:    pol,
				Horizon:   4 * time.Hour,
				BootDelay: 30 * time.Second,
			}
			scheduled := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := cluster.Simulate(cfg)
				scheduled += res.Scheduled
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(scheduled)/secs, "pods/s")
			}
		})
	}
}
