package cluster_test

import (
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/trace"
)

// benchWorkload flattens a churned population into one pod stream: the
// scheduler sees ~hundreds of arrivals and departures over the horizon.
func benchWorkload() []trace.Pod {
	users := trace.Generate(trace.GenConfig{
		Seed:              11,
		Users:             30,
		MeanPodsPerUser:   8,
		HeavyUserFraction: 0.15,
		MeanArrivalGap:    30 * time.Second,
		MeanLifetime:      45 * time.Minute,
	})
	var pods []trace.Pod
	for _, u := range users {
		pods = append(pods, u.Pods...)
	}
	return pods
}

// BenchmarkSchedulerThroughput measures end-to-end lifecycle simulation
// speed in pods scheduled per wall-clock second — the capacity-planning
// number for sizing population sweeps.
func BenchmarkSchedulerThroughput(b *testing.B) {
	pods := benchWorkload()
	for _, pol := range []cluster.Policy{cluster.Kubernetes, cluster.Hostlo} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := cluster.Config{
				Seed:      1,
				Pods:      pods,
				Policy:    pol,
				Horizon:   4 * time.Hour,
				BootDelay: 30 * time.Second,
			}
			scheduled := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := cluster.Simulate(cfg)
				scheduled += res.Scheduled
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(scheduled)/secs, "pods/s")
			}
		})
	}
}
