package cluster

import (
	"math/rand"
	"sort"
	"testing"

	"nestless/internal/cloudsim"
)

// Property tests for the indexed core's data structures, checked
// against brute-force oracles under seeded random workloads.

// oracleBestFit is the linear scan the treap must reproduce: the
// highest-score node that fits, earliest id among score ties.
func oracleBestFit(nodes []*node, cat []cloudsim.VMType, cpu, mem float64) *node {
	var best *node
	var bestScore float64
	for _, n := range nodes {
		if !n.live {
			continue
		}
		t := cat[n.typ]
		if t.RelCPU-n.usedCPU >= cpu && t.RelMem-n.usedMem >= mem {
			score := cloudsim.MostRequestedFraction(t, n.usedCPU, n.usedMem)
			if best == nil || score > bestScore {
				best, bestScore = n, score
			}
		}
	}
	return best
}

// idxBestFit is bestWholeFit's cross-type combine, reimplemented over a
// bare capIndex so the test does not need a full Cluster.
func idxBestFit(ci *capIndex, cat []cloudsim.VMType, cpu, mem float64) *node {
	sum := cpu + mem
	qmin := cpu
	if mem < cpu {
		qmin = mem
	}
	var best *node
	var bestScore float64
	for _, root := range ci.trees {
		if n := root.firstFit(cpu, mem, sum, qmin, best, bestScore); n != nil {
			best, bestScore = n, n.idxScore
		}
	}
	return best
}

// TestCapIndexMatchesScan hammers the treap with random insert / update
// / delete / query traffic and cross-checks every query against the
// scan oracle.
func TestCapIndexMatchesScan(t *testing.T) {
	cat := cloudsim.Catalog()
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		ci := newCapIndex(cat)
		var nodes []*node
		reindex := func(n *node) {
			if n.indexed {
				ci.remove(n, n.idxScore)
				n.indexed = false
			}
			if n.live {
				n.idxScore = cloudsim.MostRequestedFraction(cat[n.typ], n.usedCPU, n.usedMem)
				ci.add(n, n.idxScore)
				n.indexed = true
			}
		}
		for op := 0; op < 4000; op++ {
			switch k := r.Intn(10); {
			case k < 3: // create
				n := &node{id: len(nodes), typ: r.Intn(len(cat)), live: true}
				nodes = append(nodes, n)
				reindex(n)
			case k < 5 && len(nodes) > 0: // mutate used sums
				n := nodes[r.Intn(len(nodes))]
				if n.live {
					t := cat[n.typ]
					n.usedCPU = t.RelCPU * r.Float64()
					n.usedMem = t.RelMem * r.Float64()
					// Quantize so score ties actually occur.
					n.usedCPU = float64(int(n.usedCPU*8)) / 8 * t.RelCPU
					n.usedMem = float64(int(n.usedMem*8)) / 8 * t.RelMem
					reindex(n)
				}
			case k < 6 && len(nodes) > 0: // kill
				n := nodes[r.Intn(len(nodes))]
				if n.live {
					n.live = false
					n.usedCPU, n.usedMem = 0, 0
					reindex(n)
				}
			default: // query
				cpu := r.Float64() * 0.3
				mem := r.Float64() * 0.3
				want := oracleBestFit(nodes, cat, cpu, mem)
				got := idxBestFit(ci, cat, cpu, mem)
				if want != got {
					t.Fatalf("seed %d op %d: query (%v, %v): oracle %+v, index %+v",
						seed, op, cpu, mem, want, got)
				}
			}
		}
		live := 0
		for _, n := range nodes {
			if n.live {
				live++
			}
		}
		if ci.size != live {
			t.Fatalf("seed %d: index size %d, %d live nodes", seed, ci.size, live)
		}
	}
}

// TestCapIndexRevEachOrder pins the reverse traversal order the
// neighborhood selection depends on: (score asc, id desc).
func TestCapIndexRevEachOrder(t *testing.T) {
	cat := cloudsim.Catalog()
	ci := newCapIndex(cat)
	var nodes []*node
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := &node{id: i, typ: 0, live: true}
		// Three distinct fill levels so ties are plentiful.
		lvl := float64(r.Intn(3)) * 0.3
		n.usedCPU, n.usedMem = lvl*cat[0].RelCPU, lvl*cat[0].RelMem
		n.idxScore = cloudsim.MostRequestedFraction(cat[0], n.usedCPU, n.usedMem)
		ci.add(n, n.idxScore)
		n.indexed = true
		nodes = append(nodes, n)
	}
	var walked []*node
	ci.trees[0].revEach(func(n *node) bool {
		walked = append(walked, n)
		return true
	})
	if len(walked) != len(nodes) {
		t.Fatalf("walked %d of %d", len(walked), len(nodes))
	}
	want := append([]*node(nil), nodes...)
	sort.Slice(want, func(a, b int) bool {
		if want[a].idxScore != want[b].idxScore {
			return want[a].idxScore < want[b].idxScore
		}
		return want[a].id > want[b].id
	})
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("position %d: walked node %d (score %v), want node %d (score %v)",
				i, walked[i].id, walked[i].idxScore, want[i].id, want[i].idxScore)
		}
	}
}

// TestPodQueueStableOrder pins the heap's pop order against the stable
// sort it replaces: biggest key first, enqueue order among equals.
func TestPodQueueStableOrder(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		var q podQueue
		type rec struct {
			key float64
			seq uint64
		}
		var all []rec
		var seq uint64
		pushN := func(n int) {
			for i := 0; i < n; i++ {
				// Few distinct keys → many ties.
				key := float64(r.Intn(5)) * 0.1
				q.push(podEntry{key: key, seq: seq, idx: int(seq)})
				all = append(all, rec{key, seq})
				seq++
			}
		}
		popN := func(n int) {
			// The expected order of the remaining entries under the old
			// stable sort: key desc, insertion (seq) order among equals.
			sort.SliceStable(all, func(a, b int) bool { return all[a].key > all[b].key })
			for i := 0; i < n && len(q) > 0; i++ {
				got := q.pop()
				want := all[0]
				all = all[1:]
				if got.key != want.key || got.seq != want.seq {
					t.Fatalf("seed %d: pop %d: got (%v, %d), want (%v, %d)",
						seed, i, got.key, got.seq, want.key, want.seq)
				}
			}
		}
		// Interleave pushes and pops like the scheduler does.
		for round := 0; round < 20; round++ {
			pushN(1 + r.Intn(20))
			popN(r.Intn(15))
		}
		popN(len(q))
		if len(all) != 0 || len(q) != 0 {
			t.Fatalf("seed %d: %d expected entries left, queue %d", seed, len(all), len(q))
		}
	}
}
