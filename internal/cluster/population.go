package cluster

import (
	"fmt"

	"nestless/internal/parallel"
	"nestless/internal/trace"
)

// Population fan-out: the lifecycle analog of cloudsim.SimulateParallel.
// Each user is an independent world simulated twice — once per policy —
// so Kubernetes and Hostlo see the identical arrival/lifetime/fault
// sequence and the comparison isolates the placement regime.

// UserLifecycle holds one user's pair of lifecycle runs.
type UserLifecycle struct {
	UserID int
	Kube   Result
	Hostlo Result
}

// SavingsRel is the relative saving of Hostlo's cost integral over the
// horizon (0 when the Kubernetes run cost nothing).
func (u UserLifecycle) SavingsRel() float64 {
	if u.Kube.CostDollars <= 0 {
		return 0
	}
	return (u.Kube.CostDollars - u.Hostlo.CostDollars) / u.Kube.CostDollars
}

// userSeedStride decorrelates per-user fault/injection streams; a large
// prime so consecutive user IDs land far apart in seed space.
const userSeedStride = 1_000_003

// SimulatePopulation runs every user's lifecycle under both policies,
// fanning out across workers. Results are merged by index, so any
// worker count produces byte-identical output. cfg supplies everything
// but the per-user workload and seed: user u runs with seed
// cfg.Seed + u.ID*userSeedStride and cfg.Pods replaced by the user's
// pods. A telemetry recorder forces the fan-out serial (single shared
// timeline), with one run label per (user, policy).
func SimulatePopulation(users []trace.User, cfg Config, workers int) []UserLifecycle {
	out := make([]UserLifecycle, len(users))
	if cfg.Rec != nil {
		workers = 1
	}
	parallel.Run(len(users), workers, func(i int) {
		u := users[i]
		ucfg := cfg
		ucfg.Seed = cfg.Seed + int64(u.ID)*userSeedStride
		ucfg.Pods = u.Pods
		ucfg.Policy = Kubernetes
		if cfg.Rec != nil {
			cfg.Rec.BeginRun(fmt.Sprintf("user-%d/kube", u.ID))
		}
		kube := Simulate(ucfg)
		ucfg.Policy = Hostlo
		if cfg.Rec != nil {
			cfg.Rec.BeginRun(fmt.Sprintf("user-%d/hostlo", u.ID))
		}
		hostlo := Simulate(ucfg)
		out[i] = UserLifecycle{UserID: u.ID, Kube: kube, Hostlo: hostlo}
	})
	return out
}

// MergeTrajectories sums per-user trajectories pointwise into one
// population trajectory. All inputs share sample timestamps and window
// widths (same SampleEvery, Horizon and SampleCap), so the merge is
// positional; it panics on a timestamp or window mismatch rather than
// silently misaligning curves. Window sums add like the instant fields
// — each merged point's aggregates stay exact — while Points is the
// shared window width, not a sum.
func MergeTrajectories(runs []Result) []Sample {
	if len(runs) == 0 {
		return nil
	}
	merged := append([]Sample(nil), runs[0].Samples...)
	for _, r := range runs[1:] {
		if len(r.Samples) != len(merged) {
			panic(fmt.Sprintf("cluster: trajectory length mismatch: %d vs %d", len(r.Samples), len(merged)))
		}
		for i, s := range r.Samples {
			if s.T != merged[i].T {
				panic(fmt.Sprintf("cluster: sample %d at %v vs %v", i, s.T, merged[i].T))
			}
			if s.Points != merged[i].Points {
				panic(fmt.Sprintf("cluster: sample %d window %d vs %d points", i, s.Points, merged[i].Points))
			}
			merged[i].CostPerH += s.CostPerH
			merged[i].Pending += s.Pending
			merged[i].Nodes += s.Nodes
			merged[i].UsedCPU += s.UsedCPU
			merged[i].CapCPU += s.CapCPU
			merged[i].SumCostPerH += s.SumCostPerH
			merged[i].SumPending += s.SumPending
			merged[i].SumNodes += s.SumNodes
			merged[i].SumUsedCPU += s.SumUsedCPU
			merged[i].SumCapCPU += s.SumCapCPU
		}
	}
	return merged
}
