package cluster

import (
	"reflect"
	"testing"
	"time"

	"nestless/internal/sim"
	"nestless/internal/trace"
)

// trajWorkload is one churny user's pods for the downsampling tests.
func trajWorkload(t *testing.T, seed int64) []trace.Pod {
	t.Helper()
	gcfg := trace.DefaultConfig(seed)
	gcfg.Users = 1
	gcfg.MeanArrivalGap = 90 * time.Second
	gcfg.MeanLifetime = 40 * time.Minute
	users := trace.Generate(gcfg)
	if len(users) != 1 || len(users[0].Pods) == 0 {
		t.Fatalf("degenerate workload: %d users", len(users))
	}
	return users[0].Pods
}

// resample folds a full-resolution trajectory into stride-wide windows
// exactly the way recordSample does — the independent recomputation the
// downsampling property test compares against.
func resample(full []Sample, stride int) []Sample {
	var out []Sample
	var w Sample
	for _, s := range full {
		if w.Points == 0 {
			w = s
		} else {
			w.T = s.T
			w.CostPerH = s.CostPerH
			w.Pending = s.Pending
			w.Nodes = s.Nodes
			w.UsedCPU = s.UsedCPU
			w.CapCPU = s.CapCPU
			w.Points++
			w.SumCostPerH += s.SumCostPerH
			w.SumPending += s.SumPending
			w.SumNodes += s.SumNodes
			w.SumUsedCPU += s.SumUsedCPU
			w.SumCapCPU += s.SumCapCPU
		}
		if w.Points >= stride {
			out = append(out, w)
			w = Sample{}
		}
	}
	if w.Points > 0 {
		out = append(out, w)
	}
	return out
}

// TestTrajectoryDownsampleExact is the downsampling property test: for
// any cap, the capped run's samples equal the full-resolution run's
// samples refolded into stride-wide windows — same instants, same
// left-fold float sums, bit for bit — and nothing outside the
// trajectory changes.
func TestTrajectoryDownsampleExact(t *testing.T) {
	pods := trajWorkload(t, 21)
	base := Config{
		Seed:        9,
		Pods:        pods,
		Policy:      Hostlo,
		Horizon:     8 * time.Hour,
		SampleEvery: time.Minute,
	}
	fullCfg := base
	fullCfg.SampleCap = -1
	full := Simulate(fullCfg)
	if len(full.Samples) < 100 {
		t.Fatalf("full-resolution run kept only %d samples", len(full.Samples))
	}
	for _, s := range full.Samples {
		if s.Points != 1 || s.SumCostPerH != s.CostPerH || s.SumPending != s.Pending {
			t.Fatalf("full-resolution sample is not a width-1 window: %+v", s)
		}
	}
	for _, cap := range []int{7, 60, 481, 100000} {
		cfg := base
		cfg.SampleCap = cap
		got := Simulate(cfg)
		if len(got.Samples) > cap {
			t.Fatalf("cap %d: %d samples stored", cap, len(got.Samples))
		}
		stride := trajStride(cfg.withDefaults())
		want := resample(full.Samples, stride)
		if !reflect.DeepEqual(got.Samples, want) {
			t.Fatalf("cap %d (stride %d): downsampled trajectory diverged from the refolded full-resolution run\n got %d samples\nwant %d samples",
				cap, stride, len(got.Samples), len(want))
		}
		gotRest, fullRest := got, full
		gotRest.Samples, fullRest.Samples = nil, nil
		if !reflect.DeepEqual(gotRest, fullRest) {
			t.Fatalf("cap %d changed something outside the trajectory", cap)
		}
	}
}

// TestTrajectoryDefaultCapFullResolution pins the short-horizon
// byte-identity promise: under the default cap a run whose horizon fits
// entirely under it stores every instant, identical to an explicit
// unlimited run.
func TestTrajectoryDefaultCapFullResolution(t *testing.T) {
	pods := trajWorkload(t, 33)
	base := Config{
		Seed:    4,
		Pods:    pods,
		Policy:  Kubernetes,
		Horizon: 8 * time.Hour,
	}
	def := Simulate(base) // SampleCap 0 → default; 13 samples fit easily
	unlimited := base
	unlimited.SampleCap = -1
	if want := Simulate(unlimited); !reflect.DeepEqual(def, want) {
		t.Fatal("default cap perturbed a short-horizon run")
	}
}

// TestTrajectoryStride pins the window-width arithmetic.
func TestTrajectoryStride(t *testing.T) {
	cases := []struct {
		horizon, every time.Duration
		cap            int
		want           int
	}{
		{8 * time.Hour, 40 * time.Minute, -1, 1},
		{8 * time.Hour, 40 * time.Minute, 512, 1},  // 13 points fit
		{8 * time.Hour, time.Minute, 481, 1},       // exactly at the cap
		{8 * time.Hour, time.Minute, 480, 2},       // one over
		{72 * time.Hour, time.Minute, 512, 9},      // 4321 points
		{72 * time.Hour, 15 * time.Minute, 512, 1}, // 289 points
	}
	for _, tc := range cases {
		cfg := Config{Horizon: tc.horizon, SampleEvery: tc.every, SampleCap: tc.cap}.withDefaults()
		if got := trajStride(cfg); got != tc.want {
			t.Errorf("trajStride(h=%v every=%v cap=%d) = %d, want %d",
				tc.horizon, tc.every, tc.cap, got, tc.want)
		}
	}
}

// TestTrajectoryWindowSnapshot pins that the open partial window
// survives Capture/Restore: a branch restored mid-window finishes with
// the identical trajectory the uninterrupted world produces.
func TestTrajectoryWindowSnapshot(t *testing.T) {
	pods := trajWorkload(t, 8)
	cfg := Config{
		Seed:        2,
		Pods:        pods,
		Policy:      Kubernetes,
		Horizon:     8 * time.Hour,
		SampleEvery: time.Minute,
		SampleCap:   30, // stride 17: most instants sit in an open window
	}
	run := New(cfg)
	run.Arm()
	// Park mid-horizon at a non-multiple of the stride window so the
	// capture carries a half-full window.
	run.Advance(sim.Time(3*time.Hour + 30*time.Second))
	snap, err := run.Capture()
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if snap.TrajWin.Points == 0 {
		t.Fatal("capture instant has no open trajectory window; test lost its teeth")
	}
	branch, err := Restore(snap, RestoreOpts{})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for _, c := range []*Cluster{run, branch} {
		c.Advance(sim.Time(cfg.Horizon))
	}
	a, b := run.Finish(), branch.Finish()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("restored branch trajectory diverged from the uninterrupted run")
	}
}
