package cluster

import "nestless/internal/sim"

// The typed event ledger: the piece that makes a running world
// snapshotable. The sim engine's heap stores closures, which cannot be
// serialized, so every event the cluster schedules for a future instant
// goes through schedEvent instead of eng.At directly: the event's typed
// description {kind, args} is recorded in a ledger keyed by the engine
// sequence number the event got, and the closure erases its entry the
// moment it fires. At any parked instant the ledger IS the pending event
// set — Capture serializes it, and Restore replays it through schedEvent
// in ascending original-sequence order, which reproduces the engine's
// FIFO tie-break for same-instant events exactly (absolute sequence
// numbers differ after a restore; only their relative order is
// observable).
//
// The one scheduled closure that stays off the ledger is kickSchedule's
// After(0) pass, guarded by schedPend: it exists only between an event
// that touched the queue and the drain of the current instant, so a
// parked engine has schedPend == false and Capture asserts it.

// evKind is a typed pending event.
type evKind uint8

const (
	evArrive    evKind = iota + 1 // a = pod index (Pods workload or stream submit)
	evDepart                      // a = pod index, b = departure generation
	evEnd                         // a = pod index, b = 1 for a trace kill
	evTick                        // autoscaler tick chain
	evSample                      // trajectory sample chain
	evProvRetry                   // a = catalog type, b = zone<<1|spot (failed provision retry)
	evNodeReady                   // a = catalog type, b = zone<<1|spot (boot completes)
	evAdopt                       // a = pod index (what-if fork adoption)
	evKindMax
)

// ledgerEvent is one pending event's serializable description.
type ledgerEvent struct {
	At   sim.Time
	Seq  uint64
	Kind evKind
	A, B int64
}

// schedEvent schedules a typed event and records it in the ledger. The
// ledger entry is keyed by the sequence number AtSeq is about to assign
// (Seq()+1 — At and AtSeq increment the counter exactly once), and the
// cached fireFn callback looks the event's description back up by that
// seq when it fires, deleting the entry first so the ledger only ever
// names events that have not fired. The ledger doubles as the event's
// payload store, so the scheduled callback captures nothing: replaying
// a trace costs zero allocations per typed event where a per-event
// closure (plus its escaping seq cell) cost two.
func (c *Cluster) schedEvent(at sim.Time, kind evKind, a, b int64) {
	seq := c.eng.Seq() + 1
	c.ledger[seq] = ledgerEvent{At: at, Seq: seq, Kind: kind, A: a, B: b}
	c.eng.AtSeq(at, c.fireFn)
}

// fireBySeq is the AtSeq dispatch target: it recovers the typed event
// from the ledger by the engine-assigned seq. It is bound once into
// c.fireFn at construction — evaluating the method value per call would
// reintroduce the per-event allocation schedEvent exists to avoid.
func (c *Cluster) fireBySeq(seq uint64) {
	le := c.ledger[seq]
	delete(c.ledger, seq)
	c.fireEvent(le.Kind, le.A, le.B)
}

// fireEvent dispatches a typed event.
func (c *Cluster) fireEvent(kind evKind, a, b int64) {
	switch kind {
	case evArrive:
		c.arrive(int(a))
	case evDepart:
		c.depart(int(a), int(b))
	case evEnd:
		c.endPod(int(a), b != 0)
	case evTick:
		c.tick()
	case evSample:
		c.sample()
	case evProvRetry:
		c.tryProvision(int(a), int(b>>1), b&1 != 0)
	case evNodeReady:
		c.nodeReady(int(a), int(b>>1), b&1 != 0)
	case evAdopt:
		c.arriveAdopted(int(a))
	}
}
