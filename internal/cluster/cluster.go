// Package cluster is the event-driven cluster lifecycle simulator: the
// dynamic counterpart of internal/cloudsim's static Fig. 9 pricing.
//
// The static simulation packs a frozen snapshot of each user's pods and
// prices it per hour. Real clusters of containers-on-VMs win or lose on
// dynamics: pods arrive and depart over time, fragmentation accumulates
// as they churn, nodes fail mid-run, and the VM fleet must grow and
// shrink from inside the workload loop. This package simulates exactly
// that, deterministically, on the internal/sim virtual clock:
//
//   - pods arrive (seeded Poisson gaps from internal/trace) and depart
//     (heavy-tailed lifetimes) over virtual time;
//   - a scheduler with a FIFO pending queue places them — whole-pod
//     most-requested for the Kubernetes baseline, plus the Hostlo
//     container-level optimizer (reusing internal/cloudsim's packing
//     code, so a no-churn run converges to the static packing exactly);
//   - an autoscaler provisions VMs on queue pressure (with boot delay
//     and fault-injectable failures) and reclaims idle VMs after a
//     hysteresis grace period;
//   - node-kill faults (internal/faults, point "node/<name>") drain a
//     VM mid-run and displace its pods back into the pending queue;
//   - an accountant integrates VM-hours × catalog price into a
//     cost-over-time trajectory and records time-to-schedule stats.
//
// Placement decisions are made through the indexed scheduling core
// (capindex.go): per-type capacity treaps and a priority-heap pending
// queue give O(log n) decisions at trace scale, while Config.Reference
// switches back to the original O(fleet) linear scans — the two modes
// are byte-identical and the equivalence suite diffs them.
//
// Determinism is the same hard requirement as everywhere else in
// nestless: the same seed, workload, and fault schedule reproduce the
// identical Result byte for byte, and a population fan-out across
// workers merges in index order so tables never depend on scheduling.
package cluster

import (
	"fmt"
	"runtime"
	"time"

	"nestless/internal/cloudsim"
	"nestless/internal/faults"
	"nestless/internal/sim"
	"nestless/internal/telemetry"
	"nestless/internal/trace"
)

// Policy selects the placement regime.
type Policy int

const (
	// Kubernetes is the baseline: whole-pod placement onto the
	// most-requested fitting node, no migration — fragmentation from
	// churn is never repaired, only empty nodes are reclaimed.
	Kubernetes Policy = iota
	// Hostlo adds the paper's container-level freedom: placement is
	// whole-pod first (the §5.3.1 pipeline), and the step-4 optimizer
	// (consolidate/split/shrink) periodically re-packs containers
	// across nodes, shrinking the fleet that churn fragmented. Pods too
	// wide for any single machine are split across nodes at placement.
	Hostlo
)

// String returns the policy name.
func (p Policy) String() string {
	if p == Hostlo {
		return "hostlo"
	}
	return "kubernetes"
}

// AutoscalerMode selects the fleet-management regime.
type AutoscalerMode int

const (
	// Reconciler is the declarative default: every scale decision is one
	// idempotent reconcile of desired vs. observed machine sets — demand
	// adds a machine in the emptiest zone (spot or on-demand per the
	// configured fraction), the tick resyncs observed capacity against
	// the idle-grace policy. With one zone and zero spot fraction its
	// decisions collapse to exactly the imperative loop's (the
	// equivalence suite pins this, modulo the Reconcile* counters).
	Reconciler AutoscalerMode = iota
	// Imperative is the pre-cloud demand loop, kept as the byte-identity
	// pin. It only manages single-zone on-demand fleets.
	Imperative
)

// String returns the autoscaler mode name.
func (m AutoscalerMode) String() string {
	if m == Imperative {
		return "imperative"
	}
	return "reconciler"
}

// Config parameterises one cluster lifecycle run.
type Config struct {
	// Seed drives the fault injector's RNG fork (the cluster logic
	// itself draws no randomness — arrivals and lifetimes come stamped
	// on the workload).
	Seed int64
	// Pods is the workload: one user's pods with Arrival/Lifetime
	// stamps from the trace generator (zero stamps = static workload).
	// Pod IDs must be unique within a workload.
	Pods []trace.Pod
	// Catalog is the VM menu (nil = cloudsim.Catalog(), Table 2).
	Catalog []cloudsim.VMType
	// Policy selects Kubernetes or Hostlo placement.
	Policy Policy
	// Horizon ends the simulation (default 8h).
	Horizon time.Duration
	// BootDelay is the VM provisioning latency (default 45s; the
	// steady-state equivalence tests use 0).
	BootDelay time.Duration
	// ScaleEvery is the autoscaler tick period: node-kill consultation,
	// idle reclaim, and Hostlo re-optimisation happen on ticks
	// (default 30s).
	ScaleEvery time.Duration
	// IdleGrace is the autoscaler's scale-down hysteresis: a node must
	// sit empty this long before it is reclaimed (default 5m).
	IdleGrace time.Duration
	// ProvisionRetryEvery spaces retries of a failed provisioning
	// attempt (default 10s).
	ProvisionRetryEvery time.Duration
	// SampleEvery is the trajectory sampling period (default
	// Horizon/12).
	SampleEvery time.Duration
	// Faults arms the deterministic fault injector (nil = off). Points:
	// "node/provision" (fail/delay) and "node/<name>" (crash).
	Faults *faults.Schedule
	// Rec collects telemetry (nil = off).
	Rec *telemetry.Recorder
	// MaxSteps aborts a runaway event loop (0 = engine default of
	// unlimited).
	MaxSteps uint64
	// Reference switches the scheduler to the original linear-scan
	// implementation (O(fleet) per decision): the debug reference the
	// equivalence suite diffs the indexed core against. Placements,
	// costs and telemetry are byte-identical either way — only the
	// wall-clock differs.
	Reference bool
	// FullRepack forces every Hostlo optimize pass to consider the
	// whole live fleet, disabling the dirty-set incremental policy —
	// the equivalence knob for tests that pin full-pass behavior.
	FullRepack bool
	// RepackDirtyFrac is the incremental-optimize escape hatch: when
	// more than this fraction of the live fleet is dirty since the last
	// pass, the optimizer falls back to a full-fleet pass (default
	// 0.25). Values >= 1 never fall back.
	RepackDirtyFrac float64
	// RepackWorkers bounds the goroutines one incremental optimize pass
	// fans its candidate groups across (0 = GOMAXPROCS, 1 = serial).
	// Same contract as every other -parallel knob: output is
	// byte-identical at any worker count, parallelism is wall-clock
	// only.
	RepackWorkers int
	// PackCacheSize bounds the per-cluster packing cache in entries
	// (0 = default 4096, negative = caching off). A cache hit returns
	// the placement a fresh optimizer call would produce, so results
	// are byte-identical with the cache on or off — only the
	// OptimizerCacheHits/Misses counters (and their telemetry) differ.
	PackCacheSize int
	// SampleCap bounds Result.Samples in entries (0 = default 512,
	// negative = unlimited full resolution). When the horizon holds more
	// sample instants than the cap, consecutive instants are folded into
	// fixed-width windows: each stored Sample keeps the window's *last*
	// instant values (T, CostPerH, Pending, ...) plus exact running
	// aggregates (Points, Sum*) so population-level means recompute
	// exactly from the downsampled trajectory. Horizons that fit under
	// the cap store every instant unchanged (window width 1), so short
	// runs are byte-identical with any cap.
	SampleCap int

	// Cloud-model knobs (internal/cloud resolves CLI flags into these).
	//
	// Zones is the number of availability-zone failure domains the fleet
	// spreads across (default 1 — the pre-cloud world). The reconciler
	// places each new machine in the emptiest zone; each zone is a fault
	// point "zone/<name>" whose crash kills every node in it.
	Zones int
	// ZoneNames labels the zones (default "z0".."zN-1"). Length must be
	// ≥ Zones; only the first Zones entries are used.
	ZoneNames []string
	// SpotFrac is the target fraction of the live fleet on spot
	// (preemptible) capacity, in [0,1]. Spot nodes cost
	// PricePerH × SpotDiscount[zone] and each is a fault point
	// "spot/<name>" whose crash is a revocation: the node drains like a
	// kill and the next replacement machine falls back to on-demand.
	// Requires the Reconciler autoscaler.
	SpotFrac float64
	// SpotDiscount is the per-zone spot price fraction (extended to
	// Zones entries with 0.35 by withDefaults, so pricing is total even
	// for hostile snapshots).
	SpotDiscount []float64
	// Autoscaler selects the fleet manager (default Reconciler;
	// Imperative is the pre-cloud pin and rejects Zones > 1 or
	// SpotFrac > 0 — New panics on the combination since CLI validation
	// already exits 2 on it).
	Autoscaler AutoscalerMode
}

// defaultPackCacheSize bounds the packing cache when Config leaves it 0.
const defaultPackCacheSize = 4096

// defaultSampleCap bounds the trajectory when Config leaves SampleCap 0.
// Generous enough that every short-horizon run keeps full resolution
// (the default sample chain is Horizon/12), tight enough that a 3-day
// minute-resolution replay stays a few KB per world.
const defaultSampleCap = 512

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Catalog == nil {
		c.Catalog = cloudsim.Catalog()
	}
	if c.Horizon <= 0 {
		c.Horizon = 8 * time.Hour
	}
	if c.ScaleEvery <= 0 {
		c.ScaleEvery = 30 * time.Second
	}
	if c.IdleGrace <= 0 {
		c.IdleGrace = 5 * time.Minute
	}
	if c.ProvisionRetryEvery <= 0 {
		c.ProvisionRetryEvery = 10 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = c.Horizon / 12
	}
	if c.RepackDirtyFrac <= 0 {
		c.RepackDirtyFrac = 0.25
	}
	if c.RepackWorkers <= 0 {
		c.RepackWorkers = runtime.GOMAXPROCS(0)
	}
	if c.PackCacheSize == 0 {
		c.PackCacheSize = defaultPackCacheSize
	}
	if c.SampleCap == 0 {
		c.SampleCap = defaultSampleCap
	}
	if c.Zones < 1 {
		c.Zones = 1
	}
	for len(c.ZoneNames) < c.Zones {
		c.ZoneNames = append(c.ZoneNames, fmt.Sprintf("z%d", len(c.ZoneNames)))
	}
	// defaultSpotDiscount keeps price() total on every zone index a
	// (possibly hostile) snapshot can name, whether or not the run uses
	// spot capacity.
	const defaultSpotDiscount = 0.35
	for len(c.SpotDiscount) < c.Zones {
		c.SpotDiscount = append(c.SpotDiscount, defaultSpotDiscount)
	}
	return c
}

// Sample is one point of the cost-over-time trajectory. Under a
// SampleCap each stored Sample summarises a fixed-width window of
// consecutive sample instants: the instant fields hold the window's
// last instant, the Sum*/Points fields hold exact left-fold aggregates
// over the whole window (so means recompute exactly, and summing
// trajectories pointwise keeps the aggregates exact too). A full-
// resolution trajectory is the degenerate case Points == 1 with every
// Sum equal to its instant field.
type Sample struct {
	T        sim.Time
	CostPerH float64 // fleet cost rate at T
	Pending  int     // pending-queue depth at T
	Nodes    int     // live fleet size at T
	UsedCPU  float64 // placed CPU across the fleet (relative units)
	CapCPU   float64 // fleet CPU capacity (relative units)

	// Window aggregates (exact, accumulated in sample-instant order).
	Points      int     // sample instants folded into this point (>= 1)
	SumCostPerH float64 // sum of CostPerH over the window
	SumPending  int     // sum of Pending over the window
	SumNodes    int     // sum of Nodes over the window
	SumUsedCPU  float64 // sum of UsedCPU over the window
	SumCapCPU   float64 // sum of CapCPU over the window
}

// Util returns the fleet CPU utilization at the sample (0 with no fleet).
func (s Sample) Util() float64 {
	if s.CapCPU <= 0 {
		return 0
	}
	return s.UsedCPU / s.CapCPU
}

// MeanCostPerH is the window-mean fleet cost rate (equals CostPerH on a
// full-resolution point).
func (s Sample) MeanCostPerH() float64 {
	if s.Points <= 0 {
		return s.CostPerH
	}
	return s.SumCostPerH / float64(s.Points)
}

// MeanPending is the window-mean pending-queue depth.
func (s Sample) MeanPending() float64 {
	if s.Points <= 0 {
		return float64(s.Pending)
	}
	return float64(s.SumPending) / float64(s.Points)
}

// MeanUtil is the window's capacity-weighted CPU utilization
// (ΣUsedCPU/ΣCapCPU; 0 with no capacity anywhere in the window).
func (s Sample) MeanUtil() float64 {
	if s.SumCapCPU <= 0 {
		return 0
	}
	return s.SumUsedCPU / s.SumCapCPU
}

// Result is the outcome of one lifecycle run. All fields are plain
// values, so byte-identical replay is checkable with reflect.DeepEqual.
type Result struct {
	Policy Policy

	// Pod accounting. Conservation invariant (checked by Leaks):
	// Arrived + TransferredIn + Adopted ==
	//   Departed + Running + StillPending + Failed + TransferredOut.
	Arrived       int // pods whose arrival fell within the horizon
	BeyondHorizon int // pods whose arrival fell past the horizon (not simulated)
	Scheduled     int // pods placed at least once
	Departed      int // pods that ran out their lifetime
	Running       int // pods still placed at the horizon
	StillPending  int // pods still queued at the horizon
	Failed        int // pods that can never be placed under the policy

	// Disruption accounting.
	Displaced   int // pod displacement events (node kills)
	Reschedules int // successful re-placements of displaced pods
	Kills       int // nodes killed by fault injection

	// Cross-world transfer accounting (shard replay only; both zero in
	// a standalone run). A transferred-out pod leaves this world's
	// books entirely — it is the receiving world's to depart or fail.
	TransferredIn  int
	TransferredOut int
	// Adopted counts pods materialized into this world after it started
	// — AdoptPods on a restored/forked what-if branch. Like the transfer
	// counters it extends the conservation left-hand side: an adopted
	// pod entered the world without an Arrived tally.
	Adopted int

	// Fleet accounting.
	ScaleUps         int // nodes provisioned by the autoscaler
	ScaleDowns       int // idle nodes reclaimed past the grace period
	ProvisionRetries int // failed provisioning attempts (faults)
	OptimizerRuns    int // Hostlo re-pack passes executed
	OptimizerFull    int // of those, full-fleet passes (the rest were dirty-set incremental)
	OptimizerMoves   int // nodes retired + created by those passes
	// Incremental-pass partition and packing-cache accounting.
	// OptimizerGroups counts per-type candidate groups optimized (each
	// one an independent unit of parallel work); hits and misses count
	// packing-cache outcomes (both zero with the cache disabled —
	// everything else in Result is identical either way).
	OptimizerGroups      int
	OptimizerCacheHits   int
	OptimizerCacheMisses int
	PeakNodes            int
	FinalNodes           int
	// FleetTypes lists the live nodes' catalog type indices at the
	// horizon, in node creation order — the exact fleet composition, for
	// equivalence checks against the static packer.
	FleetTypes []int

	// Cloud-model accounting (all zero in a single-zone on-demand run,
	// except the Reconcile* counters, which tally the declarative
	// autoscaler's work and are factored out of equivalence diffs the
	// way the optimizer cache counters are).
	ReconcileRounds   int // reconcile evaluations (demand + tick resync)
	ReconcileActions  int // machines added/reclaimed by those rounds
	SpotProvisions    int // nodes provisioned as spot capacity
	SpotRevocations   int // spot nodes revoked by the fault injector
	OnDemandFallbacks int // replacements forced on-demand by a revocation
	ZoneKills         int // whole-zone kill drills that fired
	// ZoneSpread is the live fleet's per-zone node count at the horizon
	// (nil in single-zone runs, so pre-cloud Results are unchanged).
	ZoneSpread []int

	// Cost accounting.
	CostDollars   float64 // integral of fleet price over the horizon
	FinalCostPerH float64 // fleet cost rate at the horizon
	// The spot/on-demand split of CostDollars. Each node's bill lands in
	// exactly one bucket, so the two sum to CostDollars up to float
	// association (they are separate accumulators, not a partition of
	// one); an all-on-demand run books everything in the second and its
	// value equals CostDollars bitwise.
	CostSpotDollars     float64
	CostOnDemandDollars float64

	// Time-to-schedule (arrival → first placement) stats. TTSSum and
	// Scheduled allow exact population-level means.
	TTSSum  time.Duration
	TTSMean time.Duration
	TTSP95  time.Duration
	TTSMax  time.Duration

	Samples []Sample
}

// podState is a pod's lifecycle stage.
type podState int

const (
	statePending podState = iota
	stateRunning
	stateDeparted
	stateFailed
	// stateTransferred: handed to another shard world through a
	// transfer mailbox (internal/shard); this world is done with it.
	stateTransferred
)

// podRun is the per-pod mutable state.
type podRun struct {
	pod      trace.Pod
	user     string  // owning tenant (stream mode; carried through transfers)
	cpu, mem float64 // whole-pod totals
	state    podState

	arrivedAt sim.Time
	// waitSince is when the pod last (re-)entered the pending queue —
	// arrival, displacement or transfer-in. The shard runner's
	// migration eligibility uses it (arrivedAt would make a freshly
	// transferred pod instantly eligible again).
	waitSince     sim.Time
	placedAt      sim.Time      // last placement
	remaining     time.Duration // lifetime left (0 = forever)
	departGen     int           // invalidates stale departure events
	scheduledOnce bool
	displaced     bool // awaiting re-placement after a node kill
	// onNodes lists the ids of nodes currently holding this pod's
	// containers (insertion order, no duplicates) — the placement map
	// that lets departures strip a pod in O(nodes touched) instead of a
	// fleet scan. Maintained only in indexed mode.
	onNodes []int
}

// node is one live (or dead) VM instance.
type node struct {
	id        int
	name      string
	typ       int
	usedCPU   float64
	usedMem   float64
	items     []cloudsim.PlacedItem
	bornAt    sim.Time
	idleSince sim.Time
	live      bool

	faultPoint string  // "node/<name>", precomputed for the tick loop
	indexed    bool    // currently present in the capacity index
	idxScore   float64 // the stored index key (exact delete needs it)
	dirty      bool    // touched since the last Hostlo optimize pass

	// Cloud-model identity, fixed at creation.
	zone      int     // failure-domain index, < Config.Zones
	spot      bool    // preemptible capacity
	spotPoint string  // "spot/<name>" when spot, else ""
	priceH    float64 // effective $/h (on-demand price × spot discount)
}

// recompute rebuilds the used sums from the item list in order —
// removal paths use it so float accumulation never drifts from the
// canonical "sum in item order" value.
func (n *node) recompute() {
	n.usedCPU, n.usedMem = 0, 0
	for _, it := range n.items {
		n.usedCPU += it.CPU
		n.usedMem += it.Mem
	}
}

// Cluster is one lifecycle simulation world.
type Cluster struct {
	cfg Config
	eng *sim.Engine
	inj *faults.Injector
	rec *telemetry.Recorder
	cat []cloudsim.VMType

	pods     []podRun
	podIndex map[string]int // pod ID → index (first occurrence)

	// Pending queue: the heap in indexed mode, the sorted slice in
	// reference mode. Exactly one is in use per run.
	queue  []int // reference mode: pending pod indices, enqueue order
	pq     podQueue
	enqSeq uint64

	nodes     []*node
	liveList  []*node // live nodes in creation order (lazily compacted)
	deadLive  int     // dead entries still in liveList
	idx       *capIndex
	liveCount int
	inflight  int // provisioning requests not yet live

	// Cloud-model state.
	zoneLive   []int    // live nodes per zone (len Config.Zones)
	spotLive   int      // live spot nodes
	odFallback int      // pending on-demand fallback credits (revocations)
	zonePoints []string // "zone/<name>" per zone, precomputed

	// Blocked-head memo (indexed mode): the pod index that last
	// returned blocked from tryPlace and the capacity-index version it
	// blocked at. While both still match and a request is in flight,
	// schedulePass skips the provably identical retry (see the comment
	// at the check).
	blockedPod int
	blockedVer uint64
	dirty      bool
	started    bool    // world armed (Arm or Start ran; idempotent)
	dirtyList  []*node // Hostlo: nodes touched since the last optimize
	schedPend  bool
	tts        sim.Series
	res        Result
	finalized  bool

	// Trajectory downsampler: sample instants fold into fixed-width
	// windows of trajStride points; trajWin is the open partial window
	// (Points == 0 when empty). trajStride is derived from the config
	// (recomputed on Restore); trajWin is part of snapshots.
	trajStride int
	trajWin    Sample

	// transferIdxs is TransferOut's candidate scratch, reused across
	// barriers (not part of any state — always drained within the call).
	transferIdxs []int

	// fireFn is c.fireBySeq bound once at construction; schedEvent hands
	// it to the engine so typed events carry no per-event closure.
	fireFn func(uint64)

	// ledger mirrors every pending typed event in the engine by its
	// sequence number — the serializable face of the event heap (see
	// events.go). Entries are erased as events fire.
	ledger map[uint64]ledgerEvent

	// pack memoizes Hostlo sub-solutions across incremental optimize
	// passes (nil = caching off). Strictly per-world: parallel
	// population fan-outs and shard worlds never share a cache.
	pack *cloudsim.PackCache

	// Optimizer scratch, reused arena-style across optimize() calls so
	// the steady-state repack path does not allocate. Each slice is
	// truncated (not freed) per pass; the mark arrays use a generation
	// stamp instead of clearing.
	candScratch     []*node
	neighScratch    []*node
	scoredScratch   []scoredNode
	typeCount       []int
	placedScratch   []cloudsim.PlacedVM
	itemScratch     []cloudsim.PlacedItem
	groupScratch    [][]cloudsim.PlacedVM
	outScratch      [][]cloudsim.PlacedVM
	missScratch     []int32
	improvedScratch []cloudsim.PlacedVM
	sigScratch      []cloudsim.VMSig
	avail           map[cloudsim.VMSig]sigChain
	availNext       []int32
	matchScratch    []int32
	eqScratch       []bool
	candMatched     []bool
	touchedScratch  []*node
	podMark         []uint32
	nodeMark        []uint32
	markGen         uint32
}

// scoredNode pairs a node with its precomputed most-requested score so
// neighborhood ordering sorts without recomputing the score per
// comparison.
type scoredNode struct {
	n     *node
	score float64
}

// sigChain is a FIFO of candidate indices sharing one VM signature,
// threaded through Cluster.availNext (arena-linked, no per-pass
// allocation).
type sigChain struct{ head, tail int32 }

// New builds a cluster world; call Run to simulate it.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.Autoscaler == Imperative && (cfg.Zones > 1 || cfg.SpotFrac > 0) {
		// CLI validation exits 2 long before this; reaching it is a
		// programming error, not a user error.
		panic("cluster: the imperative autoscaler cannot manage zones or spot capacity")
	}
	eng := sim.New(cfg.Seed)
	eng.MaxSteps = cfg.MaxSteps
	cfg.Rec.BindEngine(eng)
	c := &Cluster{
		cfg: cfg,
		eng: eng,
		inj: faults.New(eng, cfg.Faults, cfg.Rec),
		rec: cfg.Rec,
		cat: cfg.Catalog,
		idx: newCapIndex(cfg.Catalog),

		blockedPod: -1,
		pack:       cloudsim.NewPackCache(cfg.PackCacheSize),
		ledger:     make(map[uint64]ledgerEvent),
		trajStride: trajStride(cfg),
	}
	c.fireFn = c.fireBySeq
	c.initZones()
	c.res.Policy = cfg.Policy
	c.pods = make([]podRun, len(cfg.Pods))
	c.podIndex = make(map[string]int, len(cfg.Pods))
	for i, p := range cfg.Pods {
		c.pods[i] = podRun{
			pod:       p,
			cpu:       p.TotalCPU(),
			mem:       p.TotalMem(),
			remaining: p.Lifetime,
		}
		if _, dup := c.podIndex[p.ID]; !dup {
			c.podIndex[p.ID] = i
		}
	}
	return c
}

// Simulate is the one-shot convenience: New + Run.
func Simulate(cfg Config) Result {
	return New(cfg).Run()
}

// Run executes the lifecycle to the horizon and returns the result.
func (c *Cluster) Run() Result {
	c.Arm()
	c.eng.RunUntil(sim.Time(c.cfg.Horizon))
	c.finalize()
	return c.res
}

// Arm schedules the Config.Pods workload and starts the autoscaler and
// sample chains without running anything — the run-to-t face that
// snapshotting needs: Arm, Advance to any instant, Capture, keep
// advancing. Run is exactly Arm + Advance(horizon) + Finish. Idempotent;
// exclusive with feeding a streaming workload (Start alone covers that).
func (c *Cluster) Arm() {
	if c.started {
		return
	}
	// Arrivals.
	c.eng.Reserve(len(c.pods))
	for i := range c.pods {
		at := sim.Time(c.pods[i].pod.Arrival)
		if at > sim.Time(c.cfg.Horizon) {
			c.res.BeyondHorizon++
			continue
		}
		c.schedEvent(at, evArrive, int64(i), 0)
	}
	// Autoscaler ticks and trajectory samples, each a self-rescheduling
	// chain so the event heap stays small.
	c.Start()
}

// arrive admits one pod into the pending queue.
func (c *Cluster) arrive(i int) {
	p := &c.pods[i]
	p.arrivedAt = c.eng.Now()
	p.waitSince = p.arrivedAt
	c.res.Arrived++
	c.count("cluster/arrivals")
	c.enqueue(i)
	c.kickSchedule()
}

// enqueue appends a pod to the pending queue.
func (c *Cluster) enqueue(i int) {
	if c.cfg.Reference {
		c.queue = append(c.queue, i)
		return
	}
	p := &c.pods[i]
	c.pq.push(podEntry{key: p.cpu + p.mem, seq: c.enqSeq, idx: i})
	c.enqSeq++
}

// queueLen is the pending-queue depth (either representation).
func (c *Cluster) queueLen() int {
	if c.cfg.Reference {
		return len(c.queue)
	}
	return len(c.pq)
}

// queuedIndices lists the queued pod indices in unspecified order (the
// Leaks audit only counts occurrences).
func (c *Cluster) queuedIndices() []int {
	if c.cfg.Reference {
		return c.queue
	}
	out := make([]int, len(c.pq))
	for i, e := range c.pq {
		out[i] = e.idx
	}
	return out
}

// kickSchedule coalesces schedule requests: at most one pass is queued
// per instant.
func (c *Cluster) kickSchedule() {
	if c.schedPend {
		return
	}
	c.schedPend = true
	c.eng.After(0, c.schedulePass)
}

// depart retires a pod whose lifetime ran out. gen guards against
// stale events (the pod was displaced and re-placed since).
func (c *Cluster) depart(i, gen int) {
	p := &c.pods[i]
	if p.state != stateRunning || p.departGen != gen {
		return
	}
	c.removePlacement(i)
	p.state = stateDeparted
	c.res.Departed++
	c.count("cluster/departures")
	c.dirty = true
	if c.queueLen() > 0 {
		c.kickSchedule()
	}
}

// stripPod removes pod id's items from node n, rebuilding the used sums
// canonically and starting the idle clock when the node empties.
// Reports whether anything was removed.
func (c *Cluster) stripPod(n *node, id string) bool {
	kept := n.items[:0]
	removed := false
	for _, it := range n.items {
		if it.Pod == id {
			removed = true
			continue
		}
		kept = append(kept, it)
	}
	if !removed {
		return false
	}
	n.items = kept
	n.recompute()
	c.touchNode(n)
	c.markDirty(n)
	if len(n.items) == 0 {
		n.idleSince = c.eng.Now()
	}
	return true
}

// removePlacement strips every container of pod i from the fleet. The
// indexed path visits only the nodes the placement map names; the
// reference path scans the fleet like the original implementation.
func (c *Cluster) removePlacement(i int) {
	p := &c.pods[i]
	id := p.pod.ID
	if c.cfg.Reference {
		for _, n := range c.nodes {
			if !n.live || len(n.items) == 0 {
				continue
			}
			c.stripPod(n, id)
		}
		return
	}
	for _, nid := range p.onNodes {
		n := c.nodes[nid]
		if !n.live || len(n.items) == 0 {
			continue
		}
		c.stripPod(n, id)
	}
	p.onNodes = p.onNodes[:0]
}

// fleetRates returns the live fleet's cost rate, used CPU and CPU
// capacity (iterating nodes in creation order).
func (c *Cluster) fleetRates() (costPerH, usedCPU, capCPU float64) {
	for _, n := range c.liveList {
		if !n.live {
			continue
		}
		costPerH += n.priceH
		usedCPU += n.usedCPU
		capCPU += c.cat[n.typ].RelCPU
	}
	return
}

// initZones sets up the per-zone live counts and fault points from the
// (defaulted) config. New and Restore both call it.
func (c *Cluster) initZones() {
	c.zoneLive = make([]int, c.cfg.Zones)
	c.zonePoints = make([]string, c.cfg.Zones)
	for z := 0; z < c.cfg.Zones; z++ {
		c.zonePoints[z] = "zone/" + c.cfg.ZoneNames[z]
	}
}

// price is a node's effective hourly rate: the catalog's on-demand
// price, discounted to the zone's spot rate for preemptible capacity.
// In a run that never uses spot this is the catalog price untouched —
// no float operation — which is what keeps default costs bitwise
// identical to the pre-cloud simulator.
func (c *Cluster) price(typ, zone int, spot bool) float64 {
	p := c.cat[typ].PricePerH
	if spot {
		p *= c.cfg.SpotDiscount[zone]
	}
	return p
}

// trajStride is the downsampling window width: how many consecutive
// sample instants fold into one stored trajectory point so the whole
// trajectory fits under cfg.SampleCap. 1 = full resolution. Derived
// from the (defaulted) config — New and Restore both use it, so a
// restored world windows exactly like the original.
func trajStride(cfg Config) int {
	if cfg.SampleCap < 0 {
		return 1
	}
	// The sample chain fires at k·SampleEvery for k = 1..⌊H/S⌋ and
	// finalize adds a horizon point when the chain missed it.
	n := int(cfg.Horizon/cfg.SampleEvery) + 1
	if n <= cfg.SampleCap {
		return 1
	}
	return (n + cfg.SampleCap - 1) / cfg.SampleCap
}

// recordSample folds one sample instant into the open window, flushing
// a stored trajectory point every trajStride instants. The instant
// fields track the latest instant; the aggregates accumulate in
// instant order (a left fold), so recomputing them from a
// full-resolution run reproduces them bitwise.
func (c *Cluster) recordSample(s Sample) {
	w := &c.trajWin
	if w.Points == 0 {
		*w = s
		w.Points = 1
		w.SumCostPerH = s.CostPerH
		w.SumPending = s.Pending
		w.SumNodes = s.Nodes
		w.SumUsedCPU = s.UsedCPU
		w.SumCapCPU = s.CapCPU
	} else {
		w.T = s.T
		w.CostPerH = s.CostPerH
		w.Pending = s.Pending
		w.Nodes = s.Nodes
		w.UsedCPU = s.UsedCPU
		w.CapCPU = s.CapCPU
		w.Points++
		w.SumCostPerH += s.CostPerH
		w.SumPending += s.Pending
		w.SumNodes += s.Nodes
		w.SumUsedCPU += s.UsedCPU
		w.SumCapCPU += s.CapCPU
	}
	if w.Points >= c.trajStride {
		c.res.Samples = append(c.res.Samples, *w)
		*w = Sample{}
	}
}

// lastSampleT is the timestamp of the most recent recorded sample
// instant — in the open window or, failing that, the stored trajectory.
func (c *Cluster) lastSampleT() (sim.Time, bool) {
	if c.trajWin.Points > 0 {
		return c.trajWin.T, true
	}
	if n := len(c.res.Samples); n > 0 {
		return c.res.Samples[n-1].T, true
	}
	return 0, false
}

// sample records one trajectory point and re-arms the chain.
func (c *Cluster) sample() {
	cost, used, cap := c.fleetRates()
	s := Sample{
		T: c.eng.Now(), CostPerH: cost, Pending: c.queueLen(),
		Nodes: c.liveCount, UsedCPU: used, CapCPU: cap,
	}
	c.recordSample(s)
	if c.rec != nil {
		c.rec.Metrics().Series("cluster/pending_depth").Add(float64(s.Pending))
		c.rec.Metrics().Series("cluster/fleet_util").Add(s.Util())
		c.rec.Metrics().Series("cluster/fleet_cost_per_h").Add(cost)
	}
	next := c.eng.Now() + sim.Time(c.cfg.SampleEvery)
	if next <= sim.Time(c.cfg.Horizon) {
		c.schedEvent(next, evSample, 0, 0)
	}
}

// finalize closes the books at the horizon.
func (c *Cluster) finalize() {
	if c.finalized {
		return
	}
	c.finalized = true
	horizon := sim.Time(c.cfg.Horizon)
	for _, n := range c.liveList {
		if n.live {
			c.accrue(n, horizon)
		}
	}
	cost, used, cap := c.fleetRates()
	c.res.FinalCostPerH = cost
	c.res.FinalNodes = c.liveCount
	for _, n := range c.liveList {
		if n.live {
			c.res.FleetTypes = append(c.res.FleetTypes, n.typ)
		}
	}
	c.res.StillPending = c.queueLen()
	if c.cfg.Zones > 1 {
		c.res.ZoneSpread = make([]int, c.cfg.Zones)
		for _, n := range c.liveList {
			if n.live {
				c.res.ZoneSpread[n.zone]++
			}
		}
	}
	for i := range c.pods {
		if c.pods[i].state == stateRunning {
			c.res.Running++
		}
	}
	if c.tts.N() > 0 {
		c.res.TTSSum = time.Duration(c.tts.Mean() * float64(c.tts.N()) * float64(time.Second))
		c.res.TTSMean = time.Duration(c.tts.Mean() * float64(time.Second))
		c.res.TTSP95 = time.Duration(c.tts.Percentile(95) * float64(time.Second))
		c.res.TTSMax = time.Duration(c.tts.Max() * float64(time.Second))
	}
	if last, ok := c.lastSampleT(); !ok || last != horizon {
		c.recordSample(Sample{
			T: horizon, CostPerH: cost, Pending: c.queueLen(),
			Nodes: c.liveCount, UsedCPU: used, CapCPU: cap,
		})
	}
	// Flush the open partial window (it may hold fewer than trajStride
	// instants at the horizon).
	if c.trajWin.Points > 0 {
		c.res.Samples = append(c.res.Samples, c.trajWin)
		c.trajWin = Sample{}
	}
	if c.rec != nil {
		reg := c.rec.Metrics()
		reg.Gauge("cluster/final_cost_per_h").Set(c.res.FinalCostPerH)
		reg.Gauge("cluster/cost_dollars").Set(c.res.CostDollars)
		reg.Gauge("cluster/final_nodes").Set(float64(c.res.FinalNodes))
	}
}

// accrue charges a node's runtime [bornAt, until] to the cost integral,
// and to the spot or on-demand bucket of the split.
func (c *Cluster) accrue(n *node, until sim.Time) {
	bill := (until - n.bornAt).Hours() * n.priceH
	c.res.CostDollars += bill
	if n.spot {
		c.res.CostSpotDollars += bill
	} else {
		c.res.CostOnDemandDollars += bill
	}
}

// count bumps a telemetry counter when a recorder is attached.
func (c *Cluster) count(name string) {
	if c.rec != nil {
		c.rec.Metrics().Counter(name).Inc()
	}
}

// countN bumps a telemetry counter by n when a recorder is attached.
func (c *Cluster) countN(name string, n int) {
	if c.rec != nil {
		c.rec.Metrics().Counter(name).Add(float64(n))
	}
}

// score is the node's current most-requested score — the index sort key,
// computed by the same cloudsim call the linear scan uses per candidate.
func (c *Cluster) score(n *node) float64 {
	return cloudsim.MostRequestedFraction(c.cat[n.typ], n.usedCPU, n.usedMem)
}

// touchNode re-indexes a node after its used sums changed (and keeps a
// dead node out of the index). Reference mode maintains no index.
func (c *Cluster) touchNode(n *node) {
	if c.cfg.Reference {
		return
	}
	if n.indexed {
		c.idx.remove(n, n.idxScore)
		n.indexed = false
	}
	if n.live {
		n.idxScore = c.score(n)
		c.idx.add(n, n.idxScore)
		n.indexed = true
	}
}

// markDirty notes a node as touched since the last Hostlo optimize pass
// (the dirty set bounds the incremental re-pack).
func (c *Cluster) markDirty(n *node) {
	c.dirty = true
	if c.cfg.Policy != Hostlo {
		return
	}
	if !n.dirty {
		n.dirty = true
		c.dirtyList = append(c.dirtyList, n)
	}
}

// podNodeLink records that node nid now holds containers of pod i
// (indexed mode's placement map; no-op for duplicates).
func (c *Cluster) podNodeLink(i, nid int) {
	if c.cfg.Reference {
		return
	}
	p := &c.pods[i]
	for _, have := range p.onNodes {
		if have == nid {
			return
		}
	}
	p.onNodes = append(p.onNodes, nid)
}

// Leaks audits the post-run state and returns human-readable invariant
// violations (empty = clean). It is the cluster analog of
// vmm.Host.Leaks(): chaos runs call it after every schedule to prove
// that node kills displace pods without losing or duplicating them. In
// indexed mode it additionally reconciles the capacity index and the
// pod→node placement map against the authoritative per-node state.
func (c *Cluster) Leaks() []string {
	var leaks []string
	leakf := func(format string, args ...interface{}) {
		leaks = append(leaks, fmt.Sprintf(format, args...))
	}
	const eps = 1e-9
	// Per-node bookkeeping.
	live := 0
	placed := map[string]*struct {
		items    int
		cpu, mem float64
	}{}
	itemNodes := map[string]map[int]bool{} // pod ID → nodes holding its items
	for _, n := range c.nodes {
		if !n.live {
			if len(n.items) != 0 {
				leakf("dead node %s still holds %d items", n.name, len(n.items))
			}
			if n.indexed {
				leakf("dead node %s still in the capacity index", n.name)
			}
			continue
		}
		live++
		var cpu, mem float64
		for _, it := range n.items {
			cpu += it.CPU
			mem += it.Mem
			s := placed[it.Pod]
			if s == nil {
				s = &struct {
					items    int
					cpu, mem float64
				}{}
				placed[it.Pod] = s
			}
			s.items++
			s.cpu += it.CPU
			s.mem += it.Mem
			if itemNodes[it.Pod] == nil {
				itemNodes[it.Pod] = map[int]bool{}
			}
			itemNodes[it.Pod][n.id] = true
		}
		if diff := n.usedCPU - cpu; diff > eps || diff < -eps {
			leakf("node %s: usedCPU %v != item sum %v", n.name, n.usedCPU, cpu)
		}
		if diff := n.usedMem - mem; diff > eps || diff < -eps {
			leakf("node %s: usedMem %v != item sum %v", n.name, n.usedMem, mem)
		}
		if n.usedCPU > c.cat[n.typ].RelCPU+eps || n.usedMem > c.cat[n.typ].RelMem+eps {
			leakf("node %s (%s) overcommitted: %v/%v cpu, %v/%v mem",
				n.name, c.cat[n.typ].Name, n.usedCPU, c.cat[n.typ].RelCPU, n.usedMem, c.cat[n.typ].RelMem)
		}
		if !c.cfg.Reference {
			if !n.indexed {
				leakf("live node %s missing from the capacity index", n.name)
			} else if n.idxScore != c.score(n) {
				leakf("node %s: stale index key %v (current score %v)", n.name, n.idxScore, c.score(n))
			}
		}
	}
	if live != c.liveCount {
		leakf("liveCount %d != %d live nodes", c.liveCount, live)
	}
	if !c.cfg.Reference && c.idx.size != live {
		leakf("capacity index holds %d nodes, %d live", c.idx.size, live)
	}
	// Cloud-model reconciliation: the per-zone and spot tallies must
	// match a fresh count of the live fleet, and every node's identity
	// must be internally consistent.
	zoneLive := make([]int, c.cfg.Zones)
	spotLive := 0
	for _, n := range c.nodes {
		if n.zone < 0 || n.zone >= c.cfg.Zones {
			leakf("node %s in zone %d of %d", n.name, n.zone, c.cfg.Zones)
			continue
		}
		if n.spot != (n.spotPoint != "") {
			leakf("node %s: spot %v but spot point %q", n.name, n.spot, n.spotPoint)
		}
		if want := c.price(n.typ, n.zone, n.spot); n.priceH != want {
			leakf("node %s: price %v/h, want %v/h", n.name, n.priceH, want)
		}
		if n.live {
			zoneLive[n.zone]++
			if n.spot {
				spotLive++
			}
		}
	}
	for z := range zoneLive {
		if zoneLive[z] != c.zoneLive[z] {
			leakf("zone %s: zoneLive %d != %d live nodes", c.cfg.ZoneNames[z], c.zoneLive[z], zoneLive[z])
		}
	}
	if spotLive != c.spotLive {
		leakf("spotLive %d != %d live spot nodes", c.spotLive, spotLive)
	}
	if c.odFallback < 0 {
		leakf("negative on-demand fallback credit %d", c.odFallback)
	}
	// Per-pod placement reconciliation. Every queue entry must name a
	// pending pod: departures, failures and transfers remove their
	// entries eagerly, so a stale entry is a leak.
	inQueue := map[int]int{}
	for _, i := range c.queuedIndices() {
		inQueue[i]++
		if c.pods[i].state != statePending {
			leakf("queue entry for %v pod %s", c.pods[i].state, c.pods[i].pod.ID)
		}
	}
	for i := range c.pods {
		p := &c.pods[i]
		s := placed[p.pod.ID]
		switch p.state {
		case stateRunning:
			if s == nil {
				leakf("running pod %s has no placed containers", p.pod.ID)
				continue
			}
			if s.items != len(p.pod.Containers) {
				leakf("pod %s: %d containers placed, want %d", p.pod.ID, s.items, len(p.pod.Containers))
			}
			if diff := s.cpu - p.cpu; diff > eps || diff < -eps {
				leakf("pod %s: placed CPU %v != requested %v", p.pod.ID, s.cpu, p.cpu)
			}
			if inQueue[i] != 0 {
				leakf("running pod %s also pending", p.pod.ID)
			}
		default:
			if s != nil {
				leakf("%v pod %s still holds %d placed containers", p.state, p.pod.ID, s.items)
			}
			if p.state == statePending && p.arrivedAt >= 0 && c.finalized {
				if arrived := p.pod.Arrival <= c.cfg.Horizon; arrived && inQueue[i] != 1 {
					leakf("pending pod %s appears %d times in the queue", p.pod.ID, inQueue[i])
				}
			}
		}
		// Placement-map reconciliation: nid ∈ onNodes ⟺ node nid holds an
		// item of the pod (indexed mode only).
		if !c.cfg.Reference {
			onMap := map[int]bool{}
			for _, nid := range p.onNodes {
				if onMap[nid] {
					leakf("pod %s placement map lists node %d twice", p.pod.ID, nid)
				}
				onMap[nid] = true
				if !itemNodes[p.pod.ID][nid] {
					leakf("pod %s placement map lists node %d, which holds none of its items", p.pod.ID, nid)
				}
			}
			for nid := range itemNodes[p.pod.ID] {
				if !onMap[nid] {
					leakf("pod %s has items on node %d missing from its placement map", p.pod.ID, nid)
				}
			}
		}
	}
	// Conservation: every pod that entered this world (arrival or
	// transfer-in) left it exactly one way.
	if c.finalized {
		got := c.res.Departed + c.res.Running + c.res.StillPending + c.res.Failed + c.res.TransferredOut
		want := c.res.Arrived + c.res.TransferredIn + c.res.Adopted
		if got != want {
			leakf("conservation broken: departed %d + running %d + pending %d + failed %d + xfer-out %d != arrived %d + xfer-in %d + adopted %d",
				c.res.Departed, c.res.Running, c.res.StillPending, c.res.Failed,
				c.res.TransferredOut, c.res.Arrived, c.res.TransferredIn, c.res.Adopted)
		}
	}
	return leaks
}
