package cluster

import (
	"testing"
	"time"
)

// BenchmarkReconcilerScale measures machine-set convergence cost at
// fleet scale: one reconcile round = observe the fleet as MachineSets
// (live scan + pending-ledger decode) and take both placement decisions
// (emptiest zone, spot-vs-on-demand) against it. The fleets (1k / 10k
// nodes, three zones, half spot) are built directly through createNode
// so the benchmark isolates the reconciler's per-round cost from
// workload simulation.
func BenchmarkReconcilerScale(b *testing.B) {
	sizes := []struct {
		name string
		n    int
	}{{"1k", 1_000}, {"10k", 10_000}}
	for _, sz := range sizes {
		b.Run(sz.name, func(b *testing.B) {
			c := New(Config{
				Seed:         1,
				Horizon:      8 * time.Hour,
				Zones:        3,
				SpotFrac:     0.5,
				SpotDiscount: []float64{0.30, 0.32, 0.28},
			})
			for i := 0; i < sz.n; i++ {
				c.createNode(i%len(c.cat), c.pickZone(), i%2 == 0, 0)
			}
			rounds := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sets := c.MachineSets()
				if len(sets) == 0 {
					b.Fatal("no machine sets over a populated fleet")
				}
				zone := c.pickZone()
				if zone < 0 || zone >= 3 {
					b.Fatalf("pickZone returned %d", zone)
				}
				c.pickSpot()
				rounds++
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(rounds)/secs, "rounds/s")
			}
		})
	}
}
