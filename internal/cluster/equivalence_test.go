package cluster_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"nestless/internal/cluster"
	"nestless/internal/faults"
	"nestless/internal/telemetry"
	"nestless/internal/trace"
)

// The indexed-vs-reference equivalence suite: the capacity index, the
// heap pending queue and the index-backed neighborhood selection must
// reproduce the linear-scan reference implementation byte for byte —
// same Result (placements, fleet composition, costs, trajectories),
// same telemetry trace — under churn, node kills and fault schedules,
// for every scheduling regime. "Byte-identical placement" is the whole
// contract of the indexed core; these tests are what pins it.

// policyModes are the three scheduling regimes the suite covers:
// the Kubernetes baseline, Hostlo with the dirty-set incremental
// optimizer (the default), and Hostlo pinned to full-fleet passes.
var policyModes = []struct {
	name   string
	adjust func(*cluster.Config)
}{
	{"kubernetes", func(c *cluster.Config) { c.Policy = cluster.Kubernetes }},
	{"hostlo", func(c *cluster.Config) { c.Policy = cluster.Hostlo }},
	{"hostlo-full", func(c *cluster.Config) { c.Policy = cluster.Hostlo; c.FullRepack = true }},
}

// runMode executes one lifecycle run and returns its result plus the
// textual telemetry trace.
func runMode(t *testing.T, cfg cluster.Config, reference bool) (cluster.Result, string) {
	t.Helper()
	cfg.Reference = reference
	rec := telemetry.New()
	cfg.Rec = rec
	c := cluster.New(cfg)
	res := c.Run()
	if leaks := c.Leaks(); len(leaks) != 0 {
		t.Fatalf("reference=%v: leaks:\n  %s", reference, strings.Join(leaks, "\n  "))
	}
	var buf bytes.Buffer
	if err := rec.WriteTextTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.String()
}

// requireIdentical runs cfg in both modes and fails on any divergence.
func requireIdentical(t *testing.T, cfg cluster.Config) cluster.Result {
	t.Helper()
	indexed, itrace := runMode(t, cfg, false)
	linear, ltrace := runMode(t, cfg, true)
	if !reflect.DeepEqual(indexed, linear) {
		t.Fatalf("indexed run diverged from linear reference:\nindexed: %+v\nlinear:  %+v", indexed, linear)
	}
	if itrace != ltrace {
		t.Fatalf("telemetry diverged (%d vs %d bytes)", len(itrace), len(ltrace))
	}
	if itrace == "" {
		t.Fatal("empty telemetry trace — recorder not wired")
	}
	return indexed
}

// TestIndexedMatchesReferenceChurn sweeps seeded churned workloads
// through all three regimes.
func TestIndexedMatchesReferenceChurn(t *testing.T) {
	var scheduled int
	for _, seed := range []int64{1, 2, 3, 4} {
		users := trace.Generate(churnConfig(seed, 6))
		for ui, u := range users {
			if ui%2 == 1 {
				continue // half the users keeps the sweep fast
			}
			for _, mode := range policyModes {
				cfg := cluster.Config{
					Seed:      seed,
					Pods:      u.Pods,
					Horizon:   4 * time.Hour,
					BootDelay: 30 * time.Second,
				}
				mode.adjust(&cfg)
				res := requireIdentical(t, cfg)
				scheduled += res.Scheduled
			}
		}
	}
	if scheduled == 0 {
		t.Fatal("no pod was ever scheduled — the sweep exercised nothing")
	}
}

// TestIndexedMatchesReferenceFaults adds node kills, provisioning
// failures and delays on top of churn.
func TestIndexedMatchesReferenceFaults(t *testing.T) {
	specs := []string{
		"node/*:crash:p=0.03",
		"node/n0:crash:n=1;node/provision:fail:p=0.2",
		"node/*:crash:p=0.01;node/provision:delay:n=2:d=90s",
	}
	users := trace.Generate(churnConfig(17, 6))
	var kills int
	for si, spec := range specs {
		sched, err := faults.ParseSpec(spec)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		for _, mode := range policyModes {
			cfg := cluster.Config{
				Seed:      int64(100 + si),
				Pods:      users[si%len(users)].Pods,
				Horizon:   6 * time.Hour,
				BootDelay: 45 * time.Second,
				Faults:    sched,
				MaxSteps:  2_000_000,
			}
			mode.adjust(&cfg)
			res := requireIdentical(t, cfg)
			kills += res.Kills
		}
	}
	if kills == 0 {
		t.Error("no run killed a node — the displacement path went unexercised")
	}
}

// TestIndexedMatchesReferenceSplit pins the split-placement path: pods
// wider than the largest machine, which only Hostlo can run, placed
// container by container across nodes.
func TestIndexedMatchesReferenceSplit(t *testing.T) {
	var pods []trace.Pod
	for i := 0; i < 4; i++ {
		// Each pod totals 1.6 rel CPU — wider than the largest machine
		// (1.0) — in 8 containers of 0.2.
		var ctrs []trace.Container
		for j := 0; j < 8; j++ {
			ctrs = append(ctrs, trace.Container{CPU: 0.2, Mem: 0.2})
		}
		pods = append(pods, trace.Pod{
			ID:         fmt.Sprintf("wide%d", i),
			Arrival:    time.Duration(i) * 10 * time.Minute,
			Lifetime:   90 * time.Minute,
			Containers: ctrs,
		})
	}
	// A couple of small pods churning around them.
	for i := 0; i < 6; i++ {
		pods = append(pods, trace.Pod{
			ID:         fmt.Sprintf("small%d", i),
			Arrival:    time.Duration(i) * 7 * time.Minute,
			Lifetime:   40 * time.Minute,
			Containers: []trace.Container{{CPU: 0.01, Mem: 0.01}},
		})
	}
	for _, full := range []bool{false, true} {
		cfg := cluster.Config{
			Seed:       5,
			Pods:       pods,
			Policy:     cluster.Hostlo,
			Horizon:    5 * time.Hour,
			BootDelay:  30 * time.Second,
			FullRepack: full,
		}
		res := requireIdentical(t, cfg)
		if res.Failed != 0 {
			t.Fatalf("full=%v: %d wide pods failed — split placement did not engage", full, res.Failed)
		}
		if res.Scheduled != len(pods) {
			t.Fatalf("full=%v: scheduled %d of %d pods", full, res.Scheduled, len(pods))
		}
	}
	// Kubernetes must refuse the wide pods identically in both modes.
	cfg := cluster.Config{
		Seed: 5, Pods: pods, Policy: cluster.Kubernetes,
		Horizon: 5 * time.Hour, BootDelay: 30 * time.Second,
	}
	res := requireIdentical(t, cfg)
	if res.Failed != 4 {
		t.Fatalf("kubernetes: failed %d, want the 4 wide pods", res.Failed)
	}
}

// TestIncrementalOptimizerEngages proves the dirty-set policy actually
// runs incremental passes under churn (and none when pinned full). The
// workload is a large long-lived base fleet — so the dirty fraction
// stays under the threshold — with a trickle of short-lived pods
// churning a few nodes at a time.
func TestIncrementalOptimizerEngages(t *testing.T) {
	var pods []trace.Pod
	for i := 0; i < 200; i++ {
		pods = append(pods, trace.Pod{
			ID:         fmt.Sprintf("base%d", i),
			Containers: []trace.Container{{CPU: 0.22, Mem: 0.22}},
		})
	}
	for i := 0; i < 12; i++ {
		pods = append(pods, trace.Pod{
			ID:         fmt.Sprintf("churn%d", i),
			Arrival:    time.Duration(i+1) * 12 * time.Minute,
			Lifetime:   25 * time.Minute,
			Containers: []trace.Container{{CPU: 0.2, Mem: 0.2}},
		})
	}
	base := cluster.Config{
		Seed:      11,
		Pods:      pods,
		Policy:    cluster.Hostlo,
		Horizon:   6 * time.Hour,
		BootDelay: 30 * time.Second,
	}
	// This workload is the one that actually drives incremental passes,
	// so pin the dual-path neighborhood selection (treap tail-walk vs
	// fleet scan) on it too.
	requireIdentical(t, base)
	res := cluster.Simulate(base)
	if res.OptimizerRuns == 0 {
		t.Fatal("optimizer never ran")
	}
	if res.OptimizerRuns == res.OptimizerFull {
		t.Fatalf("all %d passes were full-fleet — the incremental policy never engaged", res.OptimizerRuns)
	}
	full := base
	full.FullRepack = true
	fres := cluster.Simulate(full)
	if fres.OptimizerRuns != fres.OptimizerFull {
		t.Fatalf("FullRepack: %d of %d passes were incremental", fres.OptimizerRuns-fres.OptimizerFull, fres.OptimizerRuns)
	}
}

// TestSteadyStateFullAndIncrementalAgree: with no churn the lifecycle
// converges to the static packing whether or not the optimizer is
// pinned to full passes — the incremental policy must not change where
// a drained cluster settles.
func TestSteadyStateFullAndIncrementalAgree(t *testing.T) {
	users := trace.Generate(trace.DefaultConfig(13))
	for _, u := range users[:8] {
		base := cluster.Config{
			Seed: 13, Pods: u.Pods, Policy: cluster.Hostlo, Horizon: 2 * time.Hour,
		}
		inc := cluster.Simulate(base)
		full := base
		full.FullRepack = true
		fres := cluster.Simulate(full)
		if inc.FinalCostPerH != fres.FinalCostPerH || inc.FinalNodes != fres.FinalNodes {
			t.Errorf("user %d: incremental settled at $%v/h %d nodes, full at $%v/h %d nodes",
				u.ID, inc.FinalCostPerH, inc.FinalNodes, fres.FinalCostPerH, fres.FinalNodes)
		}
	}
}

// repackWorkload builds a churned mixed-size workload (including pods
// wider than the largest machine) big enough that incremental passes
// carry several per-type candidate groups — the shape that actually
// exercises the parallel fan-out and the packing cache.
func repackWorkload(seed int64) []trace.Pod {
	users := trace.Generate(churnConfig(seed, 8))
	var pods []trace.Pod
	for _, u := range users {
		pods = append(pods, u.Pods...)
	}
	// A few wide pods so split placement runs under repack too.
	for i := 0; i < 3; i++ {
		var ctrs []trace.Container
		for j := 0; j < 8; j++ {
			ctrs = append(ctrs, trace.Container{CPU: 0.2, Mem: 0.15})
		}
		pods = append(pods, trace.Pod{
			ID:         fmt.Sprintf("wide%d", i),
			Arrival:    time.Duration(i+1) * 20 * time.Minute,
			Lifetime:   2 * time.Hour,
			Containers: ctrs,
		})
	}
	return pods
}

// TestRepackWorkerCountEquivalence pins the parallel fan-out contract:
// one incremental pass fans cache-missing candidate groups across
// Config.RepackWorkers goroutines, and the Result and telemetry trace
// must be byte-identical at any worker count — parallelism is a
// wall-clock knob, never a behavior knob. Runs under churn, node kills
// and provisioning faults so displacement-heavy repacks are covered.
func TestRepackWorkerCountEquivalence(t *testing.T) {
	sched, err := faults.ParseSpec("node/*:crash:p=0.02")
	if err != nil {
		t.Fatal(err)
	}
	base := cluster.Config{
		Seed:      23,
		Pods:      repackWorkload(23),
		Policy:    cluster.Hostlo,
		Horizon:   6 * time.Hour,
		BootDelay: 30 * time.Second,
		Faults:    sched,
	}
	var want cluster.Result
	var wantTrace string
	for i, workers := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.RepackWorkers = workers
		res, tr := runMode(t, cfg, false)
		if i == 0 {
			want, wantTrace = res, tr
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("workers=%d diverged from workers=1:\n%+v\nvs\n%+v", workers, res, want)
		}
		if tr != wantTrace {
			t.Fatalf("workers=%d: telemetry diverged (%d vs %d bytes)", workers, len(tr), len(wantTrace))
		}
	}
	if want.OptimizerRuns == want.OptimizerFull {
		t.Fatal("every pass was full-fleet — the group fan-out went unexercised")
	}
	if want.OptimizerGroups < 2 {
		t.Fatalf("only %d candidate groups across the run — nothing to fan out", want.OptimizerGroups)
	}
	if want.Kills == 0 {
		t.Fatal("no node was killed — the fault path went unexercised")
	}
}

// stripCacheLines drops the optimizer-cache counter lines from a text
// trace — the only telemetry allowed to differ between cache-on and
// cache-off runs.
func stripCacheLines(trace string) string {
	lines := strings.Split(trace, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if strings.Contains(l, "optimizer_cache") {
			continue
		}
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}

// TestPackCacheEquivalence pins the cache contract: a run with the
// packing cache enabled must produce the same Result and telemetry as
// one with caching off, except for the cache hit/miss counters
// themselves. A memoized sub-solution substitutes for a fresh
// OptimizeHostlo call byte for byte.
func TestPackCacheEquivalence(t *testing.T) {
	base := cluster.Config{
		Seed:      29,
		Pods:      repackWorkload(29),
		Policy:    cluster.Hostlo,
		Horizon:   6 * time.Hour,
		BootDelay: 30 * time.Second,
	}
	on := base
	off := base
	off.PackCacheSize = -1
	resOn, trOn := runMode(t, on, false)
	resOff, trOff := runMode(t, off, false)
	if resOn.OptimizerCacheHits == 0 {
		t.Fatal("cache-on run never hit the cache — the memoization went unexercised")
	}
	if resOff.OptimizerCacheHits != 0 || resOff.OptimizerCacheMisses != 0 {
		t.Fatalf("cache-off run recorded cache traffic: %d hits, %d misses",
			resOff.OptimizerCacheHits, resOff.OptimizerCacheMisses)
	}
	a, b := resOn, resOff
	a.OptimizerCacheHits, a.OptimizerCacheMisses = 0, 0
	b.OptimizerCacheHits, b.OptimizerCacheMisses = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cache on/off diverged beyond the counters:\non:  %+v\noff: %+v", a, b)
	}
	if got, want := stripCacheLines(trOn), stripCacheLines(trOff); got != want {
		t.Fatalf("telemetry diverged beyond cache counters (%d vs %d bytes)", len(got), len(want))
	}
	// The cached world must also still match the linear reference.
	requireIdentical(t, on)
}
