// Package faults is the simulator's deterministic fault injector: a
// seeded, schedule-driven layer that makes control-plane operations
// fail, delay or crash and datapath frames drop, duplicate, corrupt or
// stall — without giving up the simulator's hard determinism guarantee.
//
// A Schedule is the parsed, immutable form of a fault spec (the -faults
// flag). An Injector is the per-world mutable state: it owns an RNG
// forked from the engine's stream, per-rule hit/fire accounting, and an
// optional telemetry recorder. Worlds without faults carry a nil
// *Injector; every Injector method is nil-safe and free on that path,
// so fault-free runs stay byte-identical to a build without this
// package.
//
// Spec grammar (rules separated by ';' or ','):
//
//	rule   := point ':' action (':' param)*
//	action := fail | delay | drop | dup | corrupt | stall | crash
//	param  := p=<prob> | n=<max fires> | after=<skip hits> | d=<duration>
//
// A point names an instrumented site ("qmp/device_add", "frame/<ns>/
// <iface>", "boot/rootfs-mount", "agent/<vm>", "hostlo/<dev>"); a
// trailing '*' makes it a prefix pattern and a bare '*' matches every
// site. delay and stall require d=; the other actions reject it.
//
//	qmp/device_add:fail:p=0.5;frame/*:drop:p=0.01;agent/*:crash:n=1
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Action is what an armed rule does to its fault point.
type Action int

// Actions. Fail/Delay/Crash apply to control-plane operations;
// Drop/Dup/Corrupt to frames; Stall to queues (frames and hostlo).
const (
	ActFail Action = iota
	ActDelay
	ActDrop
	ActDup
	ActCorrupt
	ActStall
	ActCrash
)

// String returns the spec keyword for the action.
func (a Action) String() string {
	switch a {
	case ActFail:
		return "fail"
	case ActDelay:
		return "delay"
	case ActDrop:
		return "drop"
	case ActDup:
		return "dup"
	case ActCorrupt:
		return "corrupt"
	case ActStall:
		return "stall"
	case ActCrash:
		return "crash"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

func parseAction(s string) (Action, error) {
	switch s {
	case "fail":
		return ActFail, nil
	case "delay":
		return ActDelay, nil
	case "drop":
		return ActDrop, nil
	case "dup":
		return ActDup, nil
	case "corrupt":
		return ActCorrupt, nil
	case "stall":
		return ActStall, nil
	case "crash":
		return ActCrash, nil
	default:
		return 0, fmt.Errorf("faults: unknown action %q (want fail, delay, drop, dup, corrupt, stall or crash)", s)
	}
}

// Rule arms one action at one fault point. The zero probability means
// "always" (p=1); Count 0 means unlimited fires; After skips the first
// N hits before the rule arms.
type Rule struct {
	Point string // exact site, "prefix*" or "*"
	Act   Action
	Prob  float64       // firing probability per hit, (0,1]; 0 = 1
	Count int           // maximum fires; 0 = unlimited
	After int           // hits to skip before arming
	Delay time.Duration // duration for delay/stall
}

// String renders the rule in canonical spec form (defaults omitted).
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Point)
	b.WriteByte(':')
	b.WriteString(r.Act.String())
	if r.Prob > 0 && r.Prob != 1 {
		b.WriteString(":p=")
		b.WriteString(strconv.FormatFloat(r.Prob, 'g', -1, 64))
	}
	if r.Count > 0 {
		fmt.Fprintf(&b, ":n=%d", r.Count)
	}
	if r.After > 0 {
		fmt.Fprintf(&b, ":after=%d", r.After)
	}
	if r.Delay > 0 {
		fmt.Fprintf(&b, ":d=%s", r.Delay)
	}
	return b.String()
}

// Schedule is a parsed fault spec: an ordered, immutable rule list. One
// Schedule may back many Injectors (the parallel harness shares it
// read-only across workers).
type Schedule struct {
	Rules []Rule
}

// String renders the schedule in canonical form; ParseSpec(s.String())
// round-trips.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Rules))
	for i, r := range s.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// validPoint restricts point patterns to path-ish tokens with at most a
// trailing '*' wildcard.
func validPoint(p string) error {
	if p == "" {
		return fmt.Errorf("faults: empty fault point")
	}
	body := p
	if strings.HasSuffix(p, "*") {
		body = p[:len(p)-1]
	}
	if strings.Contains(body, "*") {
		return fmt.Errorf("faults: point %q: '*' is only valid as a trailing wildcard", p)
	}
	for _, c := range body {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '/', c == '_', c == '.', c == '-':
		default:
			return fmt.Errorf("faults: point %q: invalid character %q", p, c)
		}
	}
	return nil
}

// ParseSpec parses a fault spec into a Schedule. An empty spec is an
// error; use a nil *Schedule for "no faults".
func ParseSpec(spec string) (*Schedule, error) {
	split := func(r rune) bool { return r == ';' || r == ',' }
	var rules []Rule
	for _, raw := range strings.FieldsFunc(spec, split) {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: empty fault spec")
	}
	return &Schedule{Rules: rules}, nil
}

func parseRule(raw string) (Rule, error) {
	fields := strings.Split(raw, ":")
	if len(fields) < 2 {
		return Rule{}, fmt.Errorf("faults: rule %q: want point:action[:param...]", raw)
	}
	r := Rule{Point: strings.TrimSpace(fields[0])}
	if err := validPoint(r.Point); err != nil {
		return Rule{}, err
	}
	act, err := parseAction(strings.TrimSpace(fields[1]))
	if err != nil {
		return Rule{}, fmt.Errorf("faults: rule %q: %w", raw, err)
	}
	r.Act = act
	for _, f := range fields[2:] {
		f = strings.TrimSpace(f)
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Rule{}, fmt.Errorf("faults: rule %q: parameter %q is not key=value", raw, f)
		}
		switch key {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return Rule{}, fmt.Errorf("faults: rule %q: p=%q must be a probability in (0,1]", raw, val)
			}
			r.Prob = p
		case "n":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("faults: rule %q: n=%q must be a positive count", raw, val)
			}
			r.Count = n
		case "after":
			a, err := strconv.Atoi(val)
			if err != nil || a < 0 {
				return Rule{}, fmt.Errorf("faults: rule %q: after=%q must be a non-negative count", raw, val)
			}
			r.After = a
		case "d":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return Rule{}, fmt.Errorf("faults: rule %q: d=%q must be a positive duration", raw, val)
			}
			r.Delay = d
		default:
			return Rule{}, fmt.Errorf("faults: rule %q: unknown parameter %q", raw, key)
		}
	}
	switch r.Act {
	case ActDelay, ActStall:
		if r.Delay <= 0 {
			return Rule{}, fmt.Errorf("faults: rule %q: %s needs d=<duration>", raw, r.Act)
		}
	default:
		if r.Delay > 0 {
			return Rule{}, fmt.Errorf("faults: rule %q: d= is only valid for delay/stall", raw)
		}
	}
	return r, nil
}

// Merge combines two schedules into a new one, a's rules first. Either
// side may be nil; the result is nil only when both are. Rule order is
// load-bearing for replay (the injector consults rules in order), so
// callers that merge a default schedule under a user spec should pass
// the user spec as a.
func Merge(a, b *Schedule) *Schedule {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil:
		return &Schedule{Rules: append([]Rule(nil), b.Rules...)}
	case b == nil:
		return &Schedule{Rules: append([]Rule(nil), a.Rules...)}
	}
	rules := make([]Rule, 0, len(a.Rules)+len(b.Rules))
	rules = append(rules, a.Rules...)
	rules = append(rules, b.Rules...)
	return &Schedule{Rules: rules}
}

// HasPointPrefix reports whether any rule could match a point under the
// given prefix: an exact or wildcard point starting with prefix, or a
// bare "*". Nil-safe. Used to decide whether a caller-supplied spec
// already covers a point family before merging in a default rule.
func (s *Schedule) HasPointPrefix(prefix string) bool {
	if s == nil {
		return false
	}
	for _, r := range s.Rules {
		if r.Point == "*" {
			return true
		}
		body := strings.TrimSuffix(r.Point, "*")
		if strings.HasPrefix(body, prefix) || strings.HasPrefix(prefix, body) && strings.HasSuffix(r.Point, "*") {
			return true
		}
	}
	return false
}

// matches reports whether a rule pattern covers a concrete fault point.
func matches(pattern, point string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(point, pattern[:len(pattern)-1])
	}
	return pattern == point
}

// sortedKeys is shared by the injector's deterministic count dumps.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
