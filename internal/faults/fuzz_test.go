package faults

import (
	"strings"
	"testing"

	"nestless/internal/sim"
)

// FuzzParseSpec drives the fault-spec parser with arbitrary input. The
// parser is the -faults flag's front door, so it must never panic, and
// whatever it accepts must satisfy the canonicalization contract:
// String() output reparses to the same String() (a fixed point), and
// every accepted schedule builds an injector whose consultation paths
// are panic-free.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"qmp/device_add:fail",
		"qmp/device_add:fail:p=0.5:n=2:after=1",
		"frame/*:drop:p=0.01;agent/*:crash:n=1",
		"hostlo/h0:stall:d=10ms",
		"qmp/netdev_add:delay:d=1h30m",
		"*:fail",
		"a:fail,b:dup;c:corrupt",
		"",
		";;,",
		"qmp/device_add",
		"qmp/device_add:explode",
		"qmp/device_add:fail:p=2",
		"qmp/device_add:fail:d=5ms",
		"x:delay",
		":fail",
		"q*p/x:fail",
		"p/x:fail:p=0.0000000001",
		"p/x:fail:n=99999999999999999999",
		strings.Repeat("a/b:fail;", 64),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			if s != nil {
				t.Fatalf("ParseSpec(%q) returned both a schedule and %v", spec, err)
			}
			return
		}
		if len(s.Rules) == 0 {
			t.Fatalf("ParseSpec(%q) accepted an empty schedule", spec)
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, spec, err)
		}
		if got := s2.String(); got != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q -> %q", spec, canon, got)
		}
		// Every accepted schedule must build a consultable injector.
		inj := New(sim.New(1), s, nil)
		if inj == nil {
			t.Fatalf("accepted schedule %q built no injector", canon)
		}
		for _, r := range s.Rules {
			point := strings.TrimSuffix(r.Point, "*")
			if point == "" {
				point = "any/site"
			}
			_ = inj.OpFail(point)
			_ = inj.OpDelay(point)
			_ = inj.FrameFate(point)
			_ = inj.Stall(point)
			_ = inj.Crash(point)
		}
		_ = inj.Counts()
		_ = inj.CountKeys()
	})
}
