package faults

import (
	"fmt"
	"time"

	"nestless/internal/sim"
	"nestless/internal/telemetry"
)

// Fate is the injector's verdict on one transmitted frame.
type Fate int

// Frame fates.
const (
	FatePass Fate = iota
	FateDrop
	FateDup
	FateCorrupt
)

// Injector is the per-world fault state. It is created once per engine
// (New) and consulted by the instrumented layers at their fault points.
// A nil *Injector is the fault-free world: every method short-circuits,
// so the hot path costs one nil check.
//
// Determinism: probability rolls draw from an RNG forked off the engine
// stream at construction, so injection decisions neither consume nor
// perturb the draws the rest of the simulation makes — the same seed
// and spec always produce the same fault sequence.
type Injector struct {
	rng *sim.Rand
	rec *telemetry.Recorder

	rules  []*ruleState
	counts map[string]uint64
	total  uint64
}

// ruleState pairs a rule with its per-world accounting.
type ruleState struct {
	Rule
	hits  uint64 // times a matching point consulted this rule
	fires uint64 // times the rule actually injected
}

// New builds an Injector for one engine. A nil or empty schedule yields
// a nil Injector — the zero-cost fault-free path. rec may be nil.
func New(eng *sim.Engine, s *Schedule, rec *telemetry.Recorder) *Injector {
	if s == nil || len(s.Rules) == 0 {
		return nil
	}
	inj := &Injector{
		rng:    eng.Rand().Fork(),
		rec:    rec,
		counts: make(map[string]uint64),
	}
	for _, r := range s.Rules {
		inj.rules = append(inj.rules, &ruleState{Rule: r})
	}
	return inj
}

// RuleCursor is one rule's captured accounting: how often a matching
// point consulted it and how often it actually injected.
type RuleCursor struct {
	Hits  uint64
	Fires uint64
}

// InjectorState is the complete mid-run state of an Injector — the RNG
// stream position plus every counter — relative to the Schedule it was
// built from. Restore rebuilds a bit-identical injector from it.
type InjectorState struct {
	Rand   sim.RandState
	Rules  []RuleCursor
	Counts map[string]uint64
	Total  uint64
}

// State captures the injector. Nil injectors (the fault-free world)
// capture as nil.
func (i *Injector) State() *InjectorState {
	if i == nil {
		return nil
	}
	st := &InjectorState{
		Rand:   i.rng.State(),
		Rules:  make([]RuleCursor, 0, len(i.rules)),
		Counts: make(map[string]uint64, len(i.counts)),
		Total:  i.total,
	}
	for _, r := range i.rules {
		st.Rules = append(st.Rules, RuleCursor{Hits: r.hits, Fires: r.fires})
	}
	for k, v := range i.counts {
		st.Counts[k] = v
	}
	return st
}

// Restore rebuilds an injector mid-run from a schedule and a captured
// state. Unlike New it does NOT fork the engine's RNG — the captured
// stream position already accounts for the fork draw, which stays on
// the engine's books. A nil state restores the fault-free nil injector;
// rec may be nil.
func Restore(s *Schedule, rec *telemetry.Recorder, st *InjectorState) (*Injector, error) {
	if st == nil {
		return nil, nil
	}
	if s == nil || len(s.Rules) != len(st.Rules) {
		have := 0
		if s != nil {
			have = len(s.Rules)
		}
		return nil, fmt.Errorf("faults: restore state names %d rules, schedule has %d", len(st.Rules), have)
	}
	inj := &Injector{
		rng:    sim.NewRandFromState(st.Rand),
		rec:    rec,
		counts: make(map[string]uint64, len(st.Counts)),
		total:  st.Total,
	}
	for k, v := range st.Counts {
		inj.counts[k] = v
	}
	for ri, r := range s.Rules {
		inj.rules = append(inj.rules, &ruleState{Rule: r, hits: st.Rules[ri].Hits, fires: st.Rules[ri].Fires})
	}
	return inj, nil
}

// fire runs one rule's arming logic for a hit at point and records the
// injection if it triggers.
func (i *Injector) fire(r *ruleState, point string) bool {
	r.hits++
	if r.After > 0 && r.hits <= uint64(r.After) {
		return false
	}
	if r.Count > 0 && r.fires >= uint64(r.Count) {
		return false
	}
	if r.Prob > 0 && r.Prob < 1 && i.rng.Float64() >= r.Prob {
		return false
	}
	r.fires++
	i.total++
	key := point + ":" + r.Act.String()
	i.counts[key]++
	if i.rec != nil {
		i.rec.Instant("faults", key, "count", float64(i.counts[key]))
		i.rec.Metrics().Counter("faults/" + key).Inc()
	}
	return true
}

// OpFail consults the fail rules for a control-plane operation; a
// non-nil error means the operation must fail with it.
func (i *Injector) OpFail(point string) error {
	if i == nil {
		return nil
	}
	for _, r := range i.rules {
		if r.Act == ActFail && matches(r.Point, point) && i.fire(r, point) {
			return fmt.Errorf("faults: injected failure at %s", point)
		}
	}
	return nil
}

// OpDelay consults the delay rules for a control-plane operation and
// returns the extra wall-clock stall to apply (0 = none).
func (i *Injector) OpDelay(point string) time.Duration {
	if i == nil {
		return 0
	}
	for _, r := range i.rules {
		if r.Act == ActDelay && matches(r.Point, point) && i.fire(r, point) {
			return r.Delay
		}
	}
	return 0
}

// FrameFate consults the drop/dup/corrupt rules for one frame at a
// datapath point. The first rule that fires decides the fate.
func (i *Injector) FrameFate(point string) Fate {
	if i == nil {
		return FatePass
	}
	for _, r := range i.rules {
		switch r.Act {
		case ActDrop, ActDup, ActCorrupt:
		default:
			continue
		}
		if !matches(r.Point, point) || !i.fire(r, point) {
			continue
		}
		switch r.Act {
		case ActDrop:
			return FateDrop
		case ActDup:
			return FateDup
		default:
			return FateCorrupt
		}
	}
	return FatePass
}

// Stall consults the stall rules for a queueing point and returns how
// long the queue freezes (0 = live).
func (i *Injector) Stall(point string) time.Duration {
	if i == nil {
		return 0
	}
	for _, r := range i.rules {
		if r.Act == ActStall && matches(r.Point, point) && i.fire(r, point) {
			return r.Delay
		}
	}
	return 0
}

// Crash consults the crash rules for an agent/process point; true means
// the process dies there and its supervisor must restart it.
func (i *Injector) Crash(point string) bool {
	if i == nil {
		return false
	}
	for _, r := range i.rules {
		if r.Act == ActCrash && matches(r.Point, point) && i.fire(r, point) {
			return true
		}
	}
	return false
}

// Total returns the number of faults injected so far.
func (i *Injector) Total() uint64 {
	if i == nil {
		return 0
	}
	return i.total
}

// Counts returns a copy of the per-point:action injection counts.
func (i *Injector) Counts() map[string]uint64 {
	if i == nil {
		return nil
	}
	out := make(map[string]uint64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// CountKeys returns the injected point:action keys in sorted order (for
// deterministic dumps).
func (i *Injector) CountKeys() []string {
	if i == nil {
		return nil
	}
	return sortedKeys(i.counts)
}
