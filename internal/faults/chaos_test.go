package faults_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"nestless/internal/faults"
	"nestless/internal/hostlocni"
	"nestless/internal/kube"
	"nestless/internal/netsim"
	"nestless/internal/scenario"
	"nestless/internal/telemetry"
)

// The chaos suite deploys real scenario topologies under seeded random
// fault schedules and checks the paper's operational invariants:
//
//  1. Every run terminates in a legal outcome — converged, degraded to
//     the fallback network, or a clean error. No hangs, no panics.
//  2. Teardown is leak-free in every outcome (vmm.Host.Leaks()).
//  3. Same seed + same schedule ⇒ byte-identical telemetry and
//     identical injection counts — faults are as deterministic as the
//     rest of the simulator.
//
// The rule menu is bounded so that outcomes stay decidable: release
// fail budgets sit below the release retry attempts (device_del ≤ 3 of
// 4, hostlo_delete ≤ 4 of 8, agent crashes ≤ 4 of 5 restarts), so a run
// that injects them must still tear down cleanly. Provision failures
// carry no such bound — exhausting those retries legally degrades
// (BrFusion) or fails cleanly (Hostlo), and both paths must be
// leak-free too.

// brfusionMenu generates rules for the §5.2 server-pod topology.
var brfusionMenu = []func(r *rand.Rand) string{
	func(r *rand.Rand) string { return fmt.Sprintf("qmp/device_add:fail:n=%d", 1+r.Intn(4)) },
	func(r *rand.Rand) string { return "qmp/device_add:delay:n=2:d=20ms" },
	func(r *rand.Rand) string { return fmt.Sprintf("qmp/netdev_add:fail:n=%d", 1+r.Intn(2)) },
	func(r *rand.Rand) string { return fmt.Sprintf("qmp/device_del:fail:n=%d", 1+r.Intn(3)) },
	func(r *rand.Rand) string { return fmt.Sprintf("qmp/netdev_del:fail:n=%d", 1+r.Intn(3)) },
	func(r *rand.Rand) string { return fmt.Sprintf("agent/*:crash:n=%d", 1+r.Intn(4)) },
	func(r *rand.Rand) string { return fmt.Sprintf("frame/*:drop:p=%g", 0.01*float64(1+r.Intn(5))) },
	func(r *rand.Rand) string { return "frame/*:dup:p=0.02" },
	func(r *rand.Rand) string { return "boot/*:fail:n=1" },
}

// hostloMenu generates rules for the §5.3 split-pod topology.
var hostloMenu = []func(r *rand.Rand) string{
	func(r *rand.Rand) string { return fmt.Sprintf("qmp/hostlo_create:fail:n=%d", 1+r.Intn(3)) },
	func(r *rand.Rand) string { return fmt.Sprintf("qmp/hostlo_delete:fail:n=%d", 1+r.Intn(4)) },
	func(r *rand.Rand) string { return fmt.Sprintf("qmp/device_add:fail:n=%d", 1+r.Intn(2)) },
	func(r *rand.Rand) string { return fmt.Sprintf("qmp/device_del:fail:n=%d", 1+r.Intn(3)) },
	func(r *rand.Rand) string { return fmt.Sprintf("agent/*:crash:n=%d", 1+r.Intn(4)) },
	func(r *rand.Rand) string { return "hostlo/*:stall:p=0.2:d=5ms" },
	func(r *rand.Rand) string { return fmt.Sprintf("frame/*:drop:p=%g", 0.01*float64(1+r.Intn(3))) },
	func(r *rand.Rand) string { return "qmp/hostlo_create:delay:n=1:d=30ms" },
}

// randomSpec draws 1–3 distinct rules from a menu. The generator RNG is
// separate from the simulation seed so the schedule is a pure function
// of the chaos seed.
func randomSpec(seed int64, menu []func(r *rand.Rand) string) string {
	r := rand.New(rand.NewSource(seed))
	n := 1 + r.Intn(3)
	seen := make(map[string]bool)
	var rules []string
	for len(rules) < n {
		rule := menu[r.Intn(len(menu))](r)
		point := rule[:strings.Index(rule, ":")]
		if seen[point] {
			// One rule per point: stacked budgets on a single release
			// path could exceed its retry allowance.
			continue
		}
		seen[point] = true
		rules = append(rules, rule)
	}
	return strings.Join(rules, ";")
}

type chaosResult struct {
	outcome string // "converged", "fallback" or "failed: <err>"
	counts  map[string]uint64
	leaks   []string
	trace   string
}

// deployPod deploys one pod spec on a prepared base and drains the
// engine.
func deployPod(b *scenario.Base, spec kube.PodSpec) (*kube.Pod, error) {
	var pod *kube.Pod
	var derr error
	b.Cluster.Deploy(spec, func(p *kube.Pod, err error) { pod, derr = p, err })
	b.Eng.Run()
	return pod, derr
}

// runBrfusionChaos deploys a BrFusion server pod under a fault spec,
// deletes it, and reports outcome + leak audit.
func runBrfusionChaos(t *testing.T, seed int64, spec string, rec *telemetry.Recorder) chaosResult {
	t.Helper()
	s, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatalf("spec %q: %v", spec, err)
	}
	b := scenario.NewBaseCfg(scenario.Config{Seed: seed, Rec: rec, Faults: s})
	b.AddNode("server-vm", scenario.HostBridgeNet.Host(10))
	pod, derr := deployPod(b, kube.PodSpec{
		Name:    "server",
		Network: "brfusion",
		Containers: []kube.ContainerSpec{
			{Name: "srv", Image: "app", CPU: 1, MemMB: 512},
		},
	})
	var res chaosResult
	switch {
	case derr != nil:
		res.outcome = "failed: " + derr.Error()
	case scenario.HostBridgeNet.Contains(pod.Parts[0].PodIP):
		res.outcome = "converged"
	default:
		res.outcome = "fallback"
		if !netsim.MustPrefix(netsim.IP(172, 17, 0, 0), 16).Contains(pod.Parts[0].PodIP) {
			t.Errorf("seed %d spec %q: fallback pod IP %v is on neither network", seed, spec, pod.Parts[0].PodIP)
		}
	}
	if derr == nil {
		if err := b.Cluster.Delete("server"); err != nil {
			t.Errorf("seed %d spec %q: delete after %s: %v", seed, spec, res.outcome, err)
		}
		b.Eng.Run()
	}
	res.counts = b.Faults.Counts()
	res.leaks = b.Host.Leaks()
	if rec != nil {
		var buf bytes.Buffer
		if err := rec.WriteTextTrace(&buf); err != nil {
			t.Fatal(err)
		}
		res.trace = buf.String()
	}
	return res
}

// runHostloChaos deploys a forced-split pod under a fault spec, deletes
// it, and reports outcome + leak audit.
func runHostloChaos(t *testing.T, seed int64, spec string, rec *telemetry.Recorder) chaosResult {
	t.Helper()
	s, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatalf("spec %q: %v", spec, err)
	}
	b := scenario.NewBaseCfg(scenario.Config{Seed: seed, Rec: rec, Faults: s})
	b.AddNode("vm1", scenario.HostBridgeNet.Host(10))
	b.AddNode("vm2", scenario.HostBridgeNet.Host(11))
	pod, derr := deployPod(b, kube.PodSpec{
		Name:       "pod",
		AllowSplit: true,
		Containers: []kube.ContainerSpec{
			{Name: "a", Image: "app", CPU: 4, MemMB: 1024},
			{Name: "b", Image: "app", CPU: 4, MemMB: 1024},
		},
	})
	var res chaosResult
	switch {
	case derr != nil:
		res.outcome = "failed: " + derr.Error()
	default:
		res.outcome = "converged"
		if !pod.Split() {
			t.Errorf("seed %d spec %q: two 4-core containers fit one 5-core VM", seed, spec)
		}
		for i, part := range pod.Parts {
			if !hostlocni.PodLocalNet.Contains(part.LocalAddr) {
				t.Errorf("seed %d spec %q: part %d local addr %v outside %v",
					seed, spec, i, part.LocalAddr, hostlocni.PodLocalNet)
			}
		}
	}
	if derr == nil {
		if err := b.Cluster.Delete("pod"); err != nil {
			t.Errorf("seed %d spec %q: delete: %v", seed, spec, err)
		}
		b.Eng.Run()
	}
	res.counts = b.Faults.Counts()
	res.leaks = b.Host.Leaks()
	if rec != nil {
		var buf bytes.Buffer
		if err := rec.WriteTextTrace(&buf); err != nil {
			t.Fatal(err)
		}
		res.trace = buf.String()
	}
	return res
}

func TestChaosBrFusion(t *testing.T) {
	outcomes := make(map[string]int)
	for seed := int64(1); seed <= 12; seed++ {
		spec := randomSpec(seed, brfusionMenu)
		res := runBrfusionChaos(t, seed, spec, nil)
		key := res.outcome
		if i := strings.Index(key, ":"); i > 0 {
			key = key[:i]
		}
		outcomes[key]++
		if len(res.leaks) != 0 {
			t.Errorf("seed %d spec %q (%s): leaks:\n  %s",
				seed, spec, res.outcome, strings.Join(res.leaks, "\n  "))
		}
		t.Logf("seed %d spec %q: %s, %d faults injected", seed, spec, res.outcome, total(res.counts))
	}
	// The menu mixes benign and fatal rules; a sweep where nothing ever
	// converges (or faults never bite) means the harness is miswired.
	if outcomes["converged"] == 0 {
		t.Errorf("no seed converged: %v", outcomes)
	}
	if outcomes["converged"] == 12 {
		t.Errorf("no seed degraded or failed — faults never engaged: %v", outcomes)
	}
}

func TestChaosHostlo(t *testing.T) {
	outcomes := make(map[string]int)
	for seed := int64(1); seed <= 10; seed++ {
		spec := randomSpec(seed, hostloMenu)
		res := runHostloChaos(t, seed, spec, nil)
		key := res.outcome
		if i := strings.Index(key, ":"); i > 0 {
			key = key[:i]
		}
		outcomes[key]++
		if len(res.leaks) != 0 {
			t.Errorf("seed %d spec %q (%s): leaks:\n  %s",
				seed, spec, res.outcome, strings.Join(res.leaks, "\n  "))
		}
		t.Logf("seed %d spec %q: %s, %d faults injected", seed, spec, res.outcome, total(res.counts))
	}
	if outcomes["converged"] == 0 {
		t.Errorf("no seed converged: %v", outcomes)
	}
}

// TestChaosDeterminism replays one faulted run and requires the replay
// to be byte-identical: same telemetry trace, same injection counts,
// same outcome. This is the repo's determinism guarantee extended to
// the fault path.
func TestChaosDeterminism(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, rec *telemetry.Recorder) chaosResult
	}{
		{"brfusion", func(t *testing.T, rec *telemetry.Recorder) chaosResult {
			return runBrfusionChaos(t, 42, "qmp/device_add:fail:p=0.5;frame/*:drop:p=0.02;agent/*:crash:n=1", rec)
		}},
		{"hostlo", func(t *testing.T, rec *telemetry.Recorder) chaosResult {
			return runHostloChaos(t, 42, "qmp/hostlo_create:fail:n=1;hostlo/*:stall:p=0.2:d=5ms;qmp/device_del:fail:n=2", rec)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := c.run(t, telemetry.New())
			b := c.run(t, telemetry.New())
			if a.outcome != b.outcome {
				t.Fatalf("outcome diverged: %q vs %q", a.outcome, b.outcome)
			}
			if !reflect.DeepEqual(a.counts, b.counts) {
				t.Fatalf("injection counts diverged:\n%v\n%v", a.counts, b.counts)
			}
			if a.trace != b.trace {
				t.Fatalf("telemetry traces diverged (%d vs %d bytes)", len(a.trace), len(b.trace))
			}
			if a.trace == "" {
				t.Fatal("empty trace — recorder not wired")
			}
			t.Logf("%s: outcome %s, %d faults, trace %d bytes", c.name, a.outcome, total(a.counts), len(a.trace))
		})
	}
}

func total(counts map[string]uint64) uint64 {
	var t uint64
	for _, v := range counts {
		t += v
	}
	return t
}
