package faults

import (
	"strings"
	"testing"
	"time"

	"nestless/internal/sim"
	"nestless/internal/telemetry"
)

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"qmp/device_add:fail",
		"qmp/device_add:fail:p=0.5",
		"frame/*:drop:p=0.01",
		"frame/vm1/eth0:corrupt:n=3",
		"hostlo/h0:stall:d=10ms",
		"qmp/netdev_add:delay:n=2:after=1:d=5ms",
		"agent/*:crash:n=1",
		"*:fail:p=0.25",
		"qmp/device_add:fail:n=2;frame/*:drop:p=0.01;agent/web:crash:n=1",
		"boot/rootfs-mount:fail, qmp/hostlo_create:dup",
	}
	for _, spec := range specs {
		s, err := ParseSpec(spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec, err)
			continue
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Errorf("reparse of canonical %q: %v", canon, err)
			continue
		}
		if got := s2.String(); got != canon {
			t.Errorf("round trip of %q: %q != %q", spec, got, canon)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		" ; , ",
		"qmp/device_add",               // no action
		"qmp/device_add:explode",       // unknown action
		"qmp/device_add:fail:p=0",      // p out of range
		"qmp/device_add:fail:p=1.5",    // p out of range
		"qmp/device_add:fail:p=x",      // p not a number
		"qmp/device_add:fail:n=0",      // n must be positive
		"qmp/device_add:fail:after=-1", // after must be non-negative
		"qmp/device_add:fail:d=5ms",    // d only for delay/stall
		"qmp/device_add:delay",         // delay needs d
		"hostlo/h0:stall",              // stall needs d
		"qmp/device_add:delay:d=-1ms",  // negative duration
		"qmp/device_add:fail:bogus=1",  // unknown parameter
		"qmp/device_add:fail:p",        // not key=value
		":fail",                        // empty point
		"qmp/dev ice:fail",             // invalid character
		"qmp/*add:fail",                // '*' not trailing
	}
	for _, spec := range bad {
		if s, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted: %v", spec, s)
		}
	}
}

func TestRuleCanonicalString(t *testing.T) {
	r := Rule{Point: "qmp/device_add", Act: ActFail, Prob: 1}
	if got := r.String(); got != "qmp/device_add:fail" {
		t.Errorf("p=1 not omitted: %q", got)
	}
	r = Rule{Point: "hostlo/h0", Act: ActStall, Prob: 0.5, Count: 2, After: 1, Delay: 10 * time.Millisecond}
	want := "hostlo/h0:stall:p=0.5:n=2:after=1:d=10ms"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestMatches(t *testing.T) {
	cases := []struct {
		pattern, point string
		want           bool
	}{
		{"*", "anything/at/all", true},
		{"qmp/device_add", "qmp/device_add", true},
		{"qmp/device_add", "qmp/device_del", false},
		{"qmp/*", "qmp/device_add", true},
		{"qmp/*", "frame/vm1/eth0", false},
		{"frame/vm1/*", "frame/vm1/eth0", true},
		{"frame/vm1/*", "frame/vm2/eth0", false},
	}
	for _, c := range cases {
		if got := matches(c.pattern, c.point); got != c.want {
			t.Errorf("matches(%q, %q) = %v, want %v", c.pattern, c.point, got, c.want)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var i *Injector
	if err := i.OpFail("qmp/device_add"); err != nil {
		t.Error("nil injector failed an op")
	}
	if d := i.OpDelay("qmp/device_add"); d != 0 {
		t.Error("nil injector delayed an op")
	}
	if f := i.FrameFate("frame/vm1/eth0"); f != FatePass {
		t.Error("nil injector touched a frame")
	}
	if d := i.Stall("hostlo/h0"); d != 0 {
		t.Error("nil injector stalled a queue")
	}
	if i.Crash("agent/web") {
		t.Error("nil injector crashed an agent")
	}
	if i.Total() != 0 || i.Counts() != nil || i.CountKeys() != nil {
		t.Error("nil injector reports activity")
	}
}

func TestNewEmptyScheduleYieldsNil(t *testing.T) {
	eng := sim.New(1)
	if New(eng, nil, nil) != nil {
		t.Error("nil schedule built an injector")
	}
	if New(eng, &Schedule{}, nil) != nil {
		t.Error("empty schedule built an injector")
	}
}

func mustInjector(t *testing.T, seed int64, spec string) *Injector {
	t.Helper()
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return New(sim.New(seed), s, nil)
}

func TestAfterAndCountGating(t *testing.T) {
	inj := mustInjector(t, 1, "qmp/device_add:fail:after=2:n=2")
	var fired []bool
	for h := 0; h < 6; h++ {
		fired = append(fired, inj.OpFail("qmp/device_add") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for h := range want {
		if fired[h] != want[h] {
			t.Fatalf("hit %d fired=%v, want %v (all: %v)", h+1, fired[h], want[h], fired)
		}
	}
	if inj.Total() != 2 {
		t.Errorf("Total = %d, want 2", inj.Total())
	}
}

func TestProbabilityGatingIsDeterministic(t *testing.T) {
	roll := func(seed int64) []bool {
		inj := mustInjector(t, seed, "frame/*:drop:p=0.5")
		var out []bool
		for h := 0; h < 64; h++ {
			out = append(out, inj.FrameFate("frame/vm1/eth0") == FateDrop)
		}
		return out
	}
	a, b := roll(7), roll(7)
	fires := 0
	for h := range a {
		if a[h] != b[h] {
			t.Fatalf("same seed diverged at hit %d", h+1)
		}
		if a[h] {
			fires++
		}
	}
	// p=0.5 over 64 hits: both all-fire and no-fire would mean the
	// probability gate is broken.
	if fires == 0 || fires == 64 {
		t.Errorf("p=0.5 fired %d/64 times", fires)
	}
	// A different seed should (for this spec) produce a different
	// sequence.
	c := roll(8)
	same := true
	for h := range a {
		if a[h] != c[h] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestActionDispatch(t *testing.T) {
	inj := mustInjector(t, 1,
		"frame/a:drop;frame/b:dup;frame/c:corrupt;hostlo/h0:stall:d=7ms;agent/web:crash;qmp/x:delay:d=3ms")
	if f := inj.FrameFate("frame/a"); f != FateDrop {
		t.Errorf("drop rule gave %v", f)
	}
	if f := inj.FrameFate("frame/b"); f != FateDup {
		t.Errorf("dup rule gave %v", f)
	}
	if f := inj.FrameFate("frame/c"); f != FateCorrupt {
		t.Errorf("corrupt rule gave %v", f)
	}
	if d := inj.Stall("hostlo/h0"); d != 7*time.Millisecond {
		t.Errorf("stall gave %v", d)
	}
	if !inj.Crash("agent/web") {
		t.Error("crash rule did not fire")
	}
	if d := inj.OpDelay("qmp/x"); d != 3*time.Millisecond {
		t.Errorf("delay gave %v", d)
	}
	// Cross-kind isolation: a frame rule never fails an op and vice
	// versa.
	if err := inj.OpFail("frame/a"); err != nil {
		t.Error("drop rule failed a control-plane op")
	}
	if f := inj.FrameFate("agent/web"); f != FatePass {
		t.Error("crash rule decided a frame fate")
	}
}

func TestCountsAndTelemetry(t *testing.T) {
	eng := sim.New(1)
	s, err := ParseSpec("qmp/device_add:fail:n=2;agent/web:crash:n=1")
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.New()
	inj := New(eng, s, rec)
	inj.OpFail("qmp/device_add")
	inj.OpFail("qmp/device_add")
	inj.OpFail("qmp/device_add") // budget exhausted, no fire
	inj.Crash("agent/web")

	counts := inj.Counts()
	if counts["qmp/device_add:fail"] != 2 || counts["agent/web:crash"] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
	if inj.Total() != 3 {
		t.Errorf("Total = %d, want 3", inj.Total())
	}
	keys := inj.CountKeys()
	if len(keys) != 2 || keys[0] != "agent/web:crash" || keys[1] != "qmp/device_add:fail" {
		t.Errorf("CountKeys = %v", keys)
	}
	if got := rec.Metrics().Counter("faults/qmp/device_add:fail").Value(); got != 2 {
		t.Errorf("fault counter = %v, want 2", got)
	}
	// Counts returns a copy, not the live map.
	counts["qmp/device_add:fail"] = 99
	if inj.Counts()["qmp/device_add:fail"] != 2 {
		t.Error("Counts exposed the injector's live map")
	}
}

func TestBackoffSchedule(t *testing.T) {
	p := DefaultRetryPolicy() // base 5ms, max 80ms
	want := []time.Duration{5, 10, 20, 40, 80, 80}
	for n := 1; n <= len(want); n++ {
		if got := p.backoff(n); got != want[n-1]*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", n, got, want[n-1]*time.Millisecond)
		}
	}
	var zero RetryPolicy
	if zero.backoff(1) <= 0 {
		t.Error("zero policy backoff not positive")
	}
}

func TestRetryFirstTrySuccess(t *testing.T) {
	eng := sim.New(1)
	pol := DefaultRetryPolicy()
	pol.Timeout = 0 // fault-free call sites disarm the watchdog
	var gotV, gotAttempts int
	var gotErr error
	Retry(eng, pol, func(attempt int, complete func(int, error)) {
		complete(42, nil)
	}, nil, func(v, attempts int, err error) {
		gotV, gotAttempts, gotErr = v, attempts, err
	})
	if gotV != 42 || gotAttempts != 1 || gotErr != nil {
		t.Fatalf("done(%d, %d, %v)", gotV, gotAttempts, gotErr)
	}
	// With the watchdog disarmed and a synchronous success, the loop
	// must leave nothing behind on the engine: a fault-free world stays
	// event-for-event identical to one without retry wrappers.
	eng.Run()
	if eng.Now() != 0 {
		t.Fatalf("retry left timer events behind; clock advanced to %v", eng.Now())
	}
}

func TestRetryBackoffThenSuccess(t *testing.T) {
	eng := sim.New(1)
	pol := DefaultRetryPolicy()
	pol.Timeout = 0
	var starts []sim.Time
	var retries int
	pol.OnRetry = func(attempt int, err error) { retries++ }
	var done bool
	Retry(eng, pol, func(attempt int, complete func(int, error)) {
		starts = append(starts, eng.Now())
		if attempt < 3 {
			complete(0, errTest)
			return
		}
		complete(attempt, nil)
	}, nil, func(v, attempts int, err error) {
		done = true
		if v != 3 || attempts != 3 || err != nil {
			t.Errorf("done(%d, %d, %v)", v, attempts, err)
		}
	})
	eng.Run()
	if !done {
		t.Fatal("retry never completed")
	}
	if retries != 2 {
		t.Errorf("OnRetry called %d times, want 2", retries)
	}
	// Attempt 1 at t=0, attempt 2 after 5ms backoff, attempt 3 after a
	// further 10ms.
	wantStarts := []time.Duration{0, 5 * time.Millisecond, 15 * time.Millisecond}
	for i, w := range wantStarts {
		if i >= len(starts) || time.Duration(starts[i]) != w {
			t.Fatalf("attempt starts %v, want %v", starts, wantStarts)
		}
	}
}

func TestRetryTerminalFailure(t *testing.T) {
	eng := sim.New(1)
	pol := DefaultRetryPolicy()
	pol.Timeout = 0
	attempts := 0
	var gotAttempts int
	var gotErr error
	Retry(eng, pol, func(attempt int, complete func(int, error)) {
		attempts++
		complete(0, errTest)
	}, nil, func(_ int, a int, err error) {
		gotAttempts, gotErr = a, err
	})
	eng.Run()
	if attempts != pol.MaxAttempts {
		t.Errorf("op ran %d times, want %d", attempts, pol.MaxAttempts)
	}
	if gotAttempts != pol.MaxAttempts || gotErr == nil {
		t.Errorf("done(%d, %v), want terminal error at attempt %d", gotAttempts, gotErr, pol.MaxAttempts)
	}
}

func TestRetryWatchdogRoutesLateCompletion(t *testing.T) {
	eng := sim.New(1)
	pol := DefaultRetryPolicy()
	pol.Timeout = 50 * time.Millisecond
	var late []int
	var doneV, doneAttempts int
	var doneErr error
	Retry(eng, pol, func(attempt int, complete func(int, error)) {
		if attempt == 1 {
			// Slower than the watchdog: the loop gives up on this
			// attempt, then its stray success arrives.
			eng.After(100*time.Millisecond, func() { complete(111, nil) })
			return
		}
		complete(attempt, nil)
	}, func(v int, err error) {
		late = append(late, v)
		if err != nil {
			t.Errorf("late completion carried error %v", err)
		}
	}, func(v, attempts int, err error) {
		doneV, doneAttempts, doneErr = v, attempts, err
	})
	eng.Run()
	if doneErr != nil || doneV != 2 || doneAttempts != 2 {
		t.Fatalf("done(%d, %d, %v), want success on attempt 2", doneV, doneAttempts, doneErr)
	}
	if len(late) != 1 || late[0] != 111 {
		t.Fatalf("late completions %v, want the stray attempt-1 success", late)
	}
}

func TestInjectedFailureMessage(t *testing.T) {
	inj := mustInjector(t, 1, "qmp/device_add:fail")
	err := inj.OpFail("qmp/device_add")
	if err == nil || !strings.Contains(err.Error(), "injected failure at qmp/device_add") {
		t.Fatalf("OpFail error = %v", err)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "transient test error" }

func TestMerge(t *testing.T) {
	a, err := ParseSpec("qmp/device_add:fail:p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("spot/*:crash:p=0.02;frame/*:drop:p=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if Merge(nil, nil) != nil {
		t.Fatal("Merge(nil, nil) != nil")
	}
	if got := Merge(a, nil).String(); got != a.String() {
		t.Fatalf("Merge(a, nil) = %q, want %q", got, a.String())
	}
	if got := Merge(nil, b).String(); got != b.String() {
		t.Fatalf("Merge(nil, b) = %q, want %q", got, b.String())
	}
	m := Merge(a, b)
	want := a.String() + ";" + b.String()
	if got := m.String(); got != want {
		t.Fatalf("Merge(a, b) = %q, want %q", got, want)
	}
	// The merge is a copy: mutating it must not alias the inputs.
	m.Rules[0].Point = "mutated"
	if a.Rules[0].Point == "mutated" {
		t.Fatal("Merge aliased input rule slice")
	}
	// Single-sided merges copy too.
	m2 := Merge(a, nil)
	m2.Rules[0].Point = "mutated"
	if a.Rules[0].Point == "mutated" {
		t.Fatal("Merge(a, nil) aliased input rule slice")
	}
}

func TestHasPointPrefix(t *testing.T) {
	var nilSched *Schedule
	if nilSched.HasPointPrefix("spot/") {
		t.Fatal("nil schedule claims a prefix")
	}
	cases := []struct {
		spec   string
		prefix string
		want   bool
	}{
		{"spot/node-3:crash", "spot/", true},
		{"spot/*:crash:p=0.02", "spot/", true},
		{"sp*:crash", "spot/", true},     // wildcard shorter than prefix
		{"*:fail:p=0.1", "spot/", true},  // bare star covers everything
		{"zone/*:crash", "spot/", false},
		{"qmp/device_add:fail", "spot/", false},
		{"spotless:fail", "spot", true}, // prefix match is textual
		{"zone/us-east-1a:crash:n=1", "zone/", true},
	}
	for _, tc := range cases {
		s, err := ParseSpec(tc.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
		}
		if got := s.HasPointPrefix(tc.prefix); got != tc.want {
			t.Errorf("HasPointPrefix(%q, %q) = %v, want %v", tc.spec, tc.prefix, got, tc.want)
		}
	}
}
