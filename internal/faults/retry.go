package faults

import (
	"fmt"
	"time"

	"nestless/internal/sim"
)

// RetryPolicy tunes the control plane's retry loops: bounded attempts,
// a per-attempt sim-clock watchdog, and deterministic exponential
// backoff (no jitter — retries must replay identically).
type RetryPolicy struct {
	// MaxAttempts bounds the total tries (first attempt included).
	MaxAttempts int
	// Timeout is the per-attempt watchdog. Zero disarms it: in a
	// fault-free world nothing can stall an operation, so callers leave
	// the watchdog off there to avoid scheduling dead timer events.
	Timeout time.Duration
	// BackoffBase doubles per retry up to BackoffMax.
	BackoffBase, BackoffMax time.Duration
	// OnRetry observes each retry decision (telemetry counters).
	OnRetry func(attempt int, err error)
}

// DefaultRetryPolicy is the control plane's standard loop: 3 attempts,
// 50 ms watchdog, 5→80 ms backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		Timeout:     50 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  80 * time.Millisecond,
	}
}

// backoff returns the pause before the attempt following attempt n.
func (p RetryPolicy) backoff(n int) time.Duration {
	b := p.BackoffBase
	for i := 1; i < n; i++ {
		b *= 2
		if b >= p.BackoffMax {
			return p.BackoffMax
		}
	}
	if b <= 0 {
		b = time.Millisecond
	}
	return b
}

// Retry drives an asynchronous operation to completion under a policy.
// op starts attempt n and must eventually call complete exactly once.
// A completion that arrives after the attempt's watchdog fired is
// routed to late (for rollback of a success that the loop already gave
// up on); late may be nil. done receives the final result, the number
// of attempts consumed and the terminal error (nil on success).
//
// Everything runs on the sim clock: same seed, same outcome, same
// timing — retries are as deterministic as the rest of the simulator.
func Retry[T any](eng *sim.Engine, p RetryPolicy, op func(attempt int, complete func(T, error)), late func(T, error), done func(T, int, error)) {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy().MaxAttempts
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = DefaultRetryPolicy().BackoffBase
	}
	if p.BackoffMax < p.BackoffBase {
		p.BackoffMax = p.BackoffBase
	}
	var start func(attempt int)
	fail := func(attempt int, err error) {
		if attempt >= p.MaxAttempts {
			var zero T
			done(zero, attempt, err)
			return
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		eng.After(p.backoff(attempt), func() { start(attempt + 1) })
	}
	start = func(attempt int) {
		settled := false
		timedOut := false
		if p.Timeout > 0 {
			eng.After(p.Timeout, func() {
				if settled {
					return
				}
				settled, timedOut = true, true
				fail(attempt, fmt.Errorf("faults: attempt %d timed out after %v", attempt, p.Timeout))
			})
		}
		op(attempt, func(v T, err error) {
			if timedOut {
				// The attempt already lost the race against its
				// watchdog; hand the stray result to the caller's
				// rollback hook.
				if late != nil {
					late(v, err)
				}
				return
			}
			if settled {
				return
			}
			settled = true
			if err != nil {
				fail(attempt, err)
				return
			}
			done(v, attempt, nil)
		})
	}
	start(1)
}
