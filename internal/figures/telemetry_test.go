package figures

import (
	"bytes"
	"encoding/json"
	"testing"

	"nestless/internal/telemetry"
)

// TestFig6TraceDeterministic is the acceptance check for the telemetry
// subsystem: the Kafka CPU-breakdown figure (three scenarios on one
// recorder) exports byte-identical, valid Chrome JSON across two
// same-seed runs.
func TestFig6TraceDeterministic(t *testing.T) {
	run := func() []byte {
		rec := telemetry.New()
		Fig6(Opts{Seed: 42, Quick: true, Rec: rec})
		var buf bytes.Buffer
		if err := rec.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two same-seed Fig6 runs exported different traces")
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}
}

// TestFig2UnchangedByTelemetry: a figure's numbers must not move when a
// recorder rides along.
func TestFig2UnchangedByTelemetry(t *testing.T) {
	off := Fig2(Opts{Seed: 7, Quick: true}).String()
	on := Fig2(Opts{Seed: 7, Quick: true, Rec: telemetry.New()}).String()
	if off != on {
		t.Fatalf("telemetry changed Fig2:\noff:\n%s\non:\n%s", off, on)
	}
}
