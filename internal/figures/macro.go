package figures

import (
	"fmt"
	"time"

	"nestless/internal/apps/kafka"
	"nestless/internal/apps/memcached"
	"nestless/internal/apps/nginx"
	"nestless/internal/cpuacct"
	"nestless/internal/parallel"
	"nestless/internal/report"
	"nestless/internal/scenario"
)

// Application ports.
const (
	memcachedPort = 11211
	nginxPort     = 80
	kafkaPort     = 9092
)

// macroWindows shrinks the app windows under Quick.
func (o Opts) macroWindows() (warmup, measure time.Duration) {
	if o.Quick {
		return 10 * time.Millisecond, 60 * time.Millisecond
	}
	return 20 * time.Millisecond, 150 * time.Millisecond
}

// nginxProfile picks the server service profile per deployment kind.
func nginxProfile(containerized bool) nginx.ServerConfig {
	if containerized {
		return nginx.ContainerConfig()
	}
	return nginx.NativeConfig()
}

// macroRun bundles one macro measurement with its CPU usage window.
type macroRun struct {
	memcached memcached.Result
	nginx     nginx.Result
	kafka     kafka.Result

	appUsage  cpuacct.Usage
	vmGuest   time.Duration
	hostSys   time.Duration
	elapsed   time.Duration
	appEntity string
}

// runMacroServerClient executes one application benchmark in a §5.2
// scenario and captures the CPU window around it.
func runMacroServerClient(o Opts, mode scenario.Mode, app string) macroRun {
	var port uint16
	switch app {
	case "memcached":
		port = memcachedPort
	case "nginx":
		port = nginxPort
	case "kafka":
		port = kafkaPort
	}
	o.Rec.BeginRun(app + "-" + string(mode))
	sc, err := scenario.NewServerClientCfg(o.cfg(o.Seed), mode, port)
	if err != nil {
		panic(err)
	}
	containerized := mode != scenario.ModeNoCont

	warm, meas := o.macroWindows()
	// The in-guest view the paper measures (mpstat inside the VM)
	// covers every lane running on the vCPUs: the application entity
	// plus the guest kernel entity ("guest/<vm>"), which is where the
	// in-VM forwarding softirq lands under NAT.
	guestEntity := "guest/" + sc.VM.Name
	inGuest := func() cpuacct.Usage {
		u := sc.Usage(guestEntity)
		if sc.AppEntity != guestEntity {
			u = u.Plus(sc.Usage(sc.AppEntity))
		}
		return u
	}
	appBefore := inGuest()
	vmBefore := sc.Usage(sc.VMEntity)
	hostBefore := sc.Usage("host")
	t0 := sc.Eng.Now()

	out := macroRun{appEntity: sc.AppEntity}
	switch app {
	case "memcached":
		if _, err := memcached.NewServer(sc.ServerNS, port); err != nil {
			panic(err)
		}
		cfg := memcached.DefaultClientConfig()
		cfg.Warmup, cfg.Measure = warm, meas
		out.memcached = memcached.RunClient(sc.Eng, sc.Client, sc.DialAddr, port, cfg)
	case "nginx":
		if _, err := nginx.NewServer(sc.ServerNS, port, nginxProfile(containerized)); err != nil {
			panic(err)
		}
		cfg := nginx.DefaultClientConfig()
		cfg.Warmup, cfg.Measure = warm, meas
		out.nginx = nginx.RunClient(sc.Eng, sc.Client, sc.DialAddr, port, cfg)
	case "kafka":
		if _, err := kafka.NewBroker(sc.ServerNS, port); err != nil {
			panic(err)
		}
		cfg := kafka.DefaultProducerConfig()
		cfg.Warmup, cfg.Measure = warm, meas
		out.kafka = kafka.RunProducer(sc.Eng, sc.Client, sc.DialAddr, port, cfg)
	}

	out.appUsage = inGuest().Sub(appBefore)
	out.vmGuest = sc.Usage(sc.VMEntity).Sub(vmBefore).Of(cpuacct.Guest)
	out.hostSys = sc.Usage("host").Sub(hostBefore).Of(cpuacct.Sys)
	out.elapsed = sc.Eng.Now() - t0
	return out
}

// Fig5 reproduces the BrFusion macro-benchmarks (§5.2.2): Memcached,
// NGINX and Kafka under NAT, BrFusion and NoCont.
func Fig5(o Opts) *report.Table {
	t := report.New("Fig. 5 — macro-benchmarks (NAT / BrFusion / NoCont)",
		"app", "solution", "throughput", "unit", "latency_us", "stddev_us")
	modes := []scenario.Mode{scenario.ModeNAT, scenario.ModeBrFusion, scenario.ModeNoCont}
	apps := []string{"memcached", "nginx", "kafka"}
	runs := make([]macroRun, len(apps)*len(modes))
	parallel.Run(len(runs), o.pool(), func(i int) {
		runs[i] = runMacroServerClient(o, modes[i%len(modes)], apps[i/len(modes)])
	})
	for ai, app := range apps {
		for mi, mode := range modes {
			r := runs[ai*len(modes)+mi]
			switch app {
			case "memcached":
				t.AddRow(app, string(mode), r.memcached.ResponsesPerSec, "resp/s",
					float64(r.memcached.MeanLatency)/1e3, float64(r.memcached.StddevLatency)/1e3)
			case "nginx":
				t.AddRow(app, string(mode), r.nginx.Achieved, "req/s",
					float64(r.nginx.MeanLatency)/1e3, float64(r.nginx.StddevLatency)/1e3)
			case "kafka":
				t.AddRow(app, string(mode), r.kafka.PerSec, "msg/s",
					float64(r.kafka.MeanLatency)/1e3, float64(r.kafka.StddevLatency)/1e3)
			}
		}
	}
	return t
}

// cpuBreakdownTable renders one app's CPU usage across the three §5.2
// modes: the in-guest view (usr/sys/soft cores of the application) and
// the host view (guest cores of the whole VM) — Figs. 6 and 7.
func cpuBreakdownTable(o Opts, app, title string) *report.Table {
	t := report.New(title,
		"solution", "app_usr_cores", "app_sys_cores", "app_soft_cores", "app_total_cores", "vm_guest_cores")
	modes := []scenario.Mode{scenario.ModeNAT, scenario.ModeBrFusion, scenario.ModeNoCont}
	runs := make([]macroRun, len(modes))
	parallel.Run(len(modes), o.pool(), func(i int) {
		runs[i] = runMacroServerClient(o, modes[i], app)
	})
	for i, mode := range modes {
		r := runs[i]
		el := float64(r.elapsed)
		t.AddRow(string(mode),
			float64(r.appUsage.Of(cpuacct.Usr))/el,
			float64(r.appUsage.Of(cpuacct.Sys))/el,
			float64(r.appUsage.Of(cpuacct.Soft))/el,
			float64(r.appUsage.Total())/el,
			float64(r.vmGuest)/el,
		)
	}
	return t
}

// Fig6 reproduces the Kafka CPU-usage breakdown (§5.2.3).
func Fig6(o Opts) *report.Table {
	return cpuBreakdownTable(o, "kafka", "Fig. 6 — Kafka CPU usage breakdown (cores)")
}

// Fig7 reproduces the NGINX CPU-usage breakdown (§5.2.3).
func Fig7(o Opts) *report.Table {
	return cpuBreakdownTable(o, "nginx", "Fig. 7 — NGINX CPU usage breakdown (cores)")
}

// runMacroPodPair executes one application inside a §5.3 pod pair:
// the server in container B, the load generator in container A.
type ccRun struct {
	memcached memcached.Result
	nginx     nginx.Result

	aUsage, bUsage cpuacct.Usage
	guests         time.Duration
	hostSys        time.Duration
	elapsed        time.Duration
}

func runMacroPodPair(o Opts, mode scenario.CCMode, app string) ccRun {
	var port uint16
	switch app {
	case "memcached":
		port = memcachedPort
	case "nginx":
		port = nginxPort
	}
	o.Rec.BeginRun(app + "-cc-" + string(mode))
	pp, err := scenario.NewPodPairCfg(o.cfg(o.Seed), mode, port)
	if err != nil {
		panic(err)
	}
	warm, meas := o.macroWindows()

	aBefore := pp.Usage(pp.AEntity)
	bBefore := pp.Usage(pp.BEntity)
	guestsBefore := pp.Net.Acct.TotalFor("vm/").Of(cpuacct.Guest)
	hostBefore := pp.Usage("host").Of(cpuacct.Sys)
	t0 := pp.Eng.Now()

	out := ccRun{}
	switch app {
	case "memcached":
		if _, err := memcached.NewServer(pp.BNS, port); err != nil {
			panic(err)
		}
		cfg := memcached.DefaultClientConfig()
		cfg.Warmup, cfg.Measure = warm, meas
		out.memcached = memcached.RunClient(pp.Eng, pp.ANS, pp.DialAddr, port, cfg)
	case "nginx":
		if _, err := nginx.NewServer(pp.BNS, port, nginx.ContainerConfig()); err != nil {
			panic(err)
		}
		cfg := nginx.DefaultClientConfig()
		cfg.Warmup, cfg.Measure = warm, meas
		out.nginx = nginx.RunClient(pp.Eng, pp.ANS, pp.DialAddr, port, cfg)
	}

	out.aUsage = pp.Usage(pp.AEntity).Sub(aBefore)
	out.bUsage = pp.Usage(pp.BEntity).Sub(bBefore)
	if pp.AEntity == pp.BEntity { // SameNode shares one entity
		out.bUsage = cpuacct.Usage{}
	}
	out.guests = pp.Net.Acct.TotalFor("vm/").Of(cpuacct.Guest) - guestsBefore
	out.hostSys = pp.Usage("host").Of(cpuacct.Sys) - hostBefore
	out.elapsed = pp.Eng.Now() - t0
	return out
}

var ccModes = []scenario.CCMode{scenario.CCSameNode, scenario.CCHostlo, scenario.CCNAT, scenario.CCOverlay}

// runCCModes executes one app across all intra-pod transports, fanning
// out under o.Workers; results come back in ccModes order.
func runCCModes(o Opts, app string) []ccRun {
	runs := make([]ccRun, len(ccModes))
	parallel.Run(len(ccModes), o.pool(), func(i int) {
		runs[i] = runMacroPodPair(o, ccModes[i], app)
	})
	return runs
}

// Fig11 reproduces Memcached throughput over the intra-pod transports
// (§5.3.3) and Fig12 the corresponding latencies; one table covers both.
func Fig11(o Opts) *report.Table {
	t := report.New("Figs. 11–12 — Memcached over intra-pod transports",
		"solution", "responses_per_s", "latency_us", "stddev_us", "p99_us")
	runs := runCCModes(o, "memcached")
	for i, m := range ccModes {
		r := runs[i]
		t.AddRow(string(m), r.memcached.ResponsesPerSec,
			float64(r.memcached.MeanLatency)/1e3,
			float64(r.memcached.StddevLatency)/1e3,
			float64(r.memcached.P99Latency)/1e3)
	}
	return t
}

// Fig13 reproduces NGINX latency over the intra-pod transports (§5.3.3).
func Fig13(o Opts) *report.Table {
	t := report.New("Fig. 13 — NGINX over intra-pod transports",
		"solution", "req_per_s", "latency_us", "stddev_us", "p99_us")
	runs := runCCModes(o, "nginx")
	for i, m := range ccModes {
		r := runs[i]
		t.AddRow(string(m), r.nginx.Achieved,
			float64(r.nginx.MeanLatency)/1e3,
			float64(r.nginx.StddevLatency)/1e3,
			float64(r.nginx.P99Latency)/1e3)
	}
	return t
}

// ccCPUTable renders the §5.3.4 CPU views: client/server (guest view)
// plus total guest cores and host-kernel cores (host view).
func ccCPUTable(o Opts, app, title string) *report.Table {
	t := report.New(title,
		"solution", "client_cores", "server_cores", "cs_total_cores", "guest_cores", "host_sys_cores")
	runs := runCCModes(o, app)
	for i, m := range ccModes {
		r := runs[i]
		el := float64(r.elapsed)
		a := float64(r.aUsage.Total()) / el
		b := float64(r.bUsage.Total()) / el
		t.AddRow(string(m), a, b, a+b,
			float64(r.guests)/el, float64(r.hostSys)/el)
	}
	return t
}

// Fig14 reproduces the Memcached CPU usage comparison (§5.3.4).
func Fig14(o Opts) *report.Table {
	return ccCPUTable(o, "memcached", "Fig. 14 — Memcached CPU usage (cores)")
}

// Fig15 reproduces the NGINX CPU usage comparison (§5.3.4).
func Fig15(o Opts) *report.Table {
	return ccCPUTable(o, "nginx", "Fig. 15 — NGINX CPU usage (cores)")
}

// Table1 prints the macro-benchmark parameters (§5.1, Table 1).
func Table1() *report.Table {
	t := report.New("Table 1 — macro-benchmark parameters and metrics",
		"application", "benchmark", "parameters", "metrics")
	mc := memcached.DefaultClientConfig()
	t.AddRow("Memcached", "memtier_benchmark-like",
		kv("threads", mc.Threads, "conns/thread", mc.ConnsPerThrd, "SET:GET", "1:10"),
		"responses/s, latency")
	ng := nginx.DefaultClientConfig()
	t.AddRow("NGINX", "wrk2-like",
		kv("conns", ng.Conns, "rate", int(ng.RatePerSec), "file_bytes", 1024),
		"latency")
	kf := kafka.DefaultProducerConfig()
	t.AddRow("Kafka", "producer-perf-like",
		kv("msg/s", kf.MsgPerSec, "msg_bytes", kf.MsgSize, "batch_bytes", kf.BatchSize),
		"latency")
	return t
}

func kv(pairs ...interface{}) string {
	s := ""
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v=%v", pairs[i], pairs[i+1])
	}
	return s
}
