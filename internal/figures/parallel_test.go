package figures

import (
	"testing"
)

// The parallel harness contract: any figure regenerated with Workers: 8
// is byte-identical to the serial run at the same seed. Each subtest
// renders both tables to text and compares the strings — the strongest
// form of "the tables don't change", covering row order, formatting and
// every numeric digit.

func quickOpts(workers int) Opts {
	return Opts{Seed: 42, Quick: true, Workers: workers}
}

func TestFig2ParallelMatchesSerial(t *testing.T) {
	serial := Fig2(quickOpts(1)).String()
	par := Fig2(quickOpts(8)).String()
	if serial != par {
		t.Fatalf("Fig2 diverges under -parallel 8:\nserial:\n%s\nparallel:\n%s", serial, par)
	}
}

func TestFig4ParallelMatchesSerial(t *testing.T) {
	st, sl := Fig4(quickOpts(1))
	pt, pl := Fig4(quickOpts(8))
	if st.String() != pt.String() {
		t.Fatalf("Fig4 throughput diverges under -parallel 8:\nserial:\n%s\nparallel:\n%s", st, pt)
	}
	if sl.String() != pl.String() {
		t.Fatalf("Fig4 latency diverges under -parallel 8:\nserial:\n%s\nparallel:\n%s", sl, pl)
	}
}

func TestFig10ParallelMatchesSerial(t *testing.T) {
	st, sl := Fig10(quickOpts(1))
	pt, pl := Fig10(quickOpts(8))
	if st.String() != pt.String() {
		t.Fatalf("Fig10 throughput diverges under -parallel 8:\nserial:\n%s\nparallel:\n%s", st, pt)
	}
	if sl.String() != pl.String() {
		t.Fatalf("Fig10 latency diverges under -parallel 8:\nserial:\n%s\nparallel:\n%s", sl, pl)
	}
}

func TestFig5ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("macro sweep in -short mode")
	}
	serial := Fig5(quickOpts(1)).String()
	par := Fig5(quickOpts(8)).String()
	if serial != par {
		t.Fatalf("Fig5 diverges under -parallel 8:\nserial:\n%s\nparallel:\n%s", serial, par)
	}
}

func TestFig8ParallelMatchesSerial(t *testing.T) {
	sStats, sCDF := Fig8(quickOpts(1), 20)
	pStats, pCDF := Fig8(quickOpts(8), 20)
	if sStats.String() != pStats.String() {
		t.Fatalf("Fig8 stats diverge under -parallel 8:\nserial:\n%s\nparallel:\n%s", sStats, pStats)
	}
	if sCDF.String() != pCDF.String() {
		t.Fatalf("Fig8 CDF diverges under -parallel 8:\nserial:\n%s\nparallel:\n%s", sCDF, pCDF)
	}
}

func TestFig9ParallelMatchesSerial(t *testing.T) {
	sHist, sStats := Fig9(quickOpts(1))
	pHist, pStats := Fig9(quickOpts(8))
	if sHist.String() != pHist.String() {
		t.Fatalf("Fig9 histogram diverges under -parallel 8:\nserial:\n%s\nparallel:\n%s", sHist, pHist)
	}
	if sStats.String() != pStats.String() {
		t.Fatalf("Fig9 stats diverge under -parallel 8:\nserial:\n%s\nparallel:\n%s", sStats, pStats)
	}
}
