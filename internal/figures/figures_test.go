package figures

import (
	"strconv"
	"strings"
	"testing"

	"nestless/internal/scenario"
)

var quick = Opts{Seed: 42, Quick: true}

// cell parses a table cell as float.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig2TableShape(t *testing.T) {
	tab := Fig2(quick)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	natT := cell(t, tab.Rows[0][1])
	ncT := cell(t, tab.Rows[1][1])
	if natT >= ncT {
		t.Errorf("NAT throughput %v not below NoCont %v", natT, ncT)
	}
	natL := cell(t, tab.Rows[0][2])
	ncL := cell(t, tab.Rows[1][2])
	if natL <= ncL {
		t.Errorf("NAT latency %v not above NoCont %v", natL, ncL)
	}
}

func TestFig4Tables(t *testing.T) {
	tput, lat := Fig4(quick)
	if len(tput.Rows) == 0 || len(lat.Rows) == 0 {
		t.Fatal("empty tables")
	}
	for _, r := range tput.Rows {
		nat, brf, nc := cell(t, r[1]), cell(t, r[2]), cell(t, r[3])
		if nat >= brf {
			t.Errorf("size %s: NAT %v not below BrFusion %v", r[0], nat, brf)
		}
		if brf < nc*0.9 || brf > nc*1.1 {
			t.Errorf("size %s: BrFusion %v not within 10%% of NoCont %v", r[0], brf, nc)
		}
	}
	// Throughput grows with message size for every solution.
	first, last := tput.Rows[0], tput.Rows[len(tput.Rows)-1]
	for col := 1; col <= 3; col++ {
		if cell(t, last[col]) <= cell(t, first[col]) {
			t.Errorf("column %d did not scale with message size", col)
		}
	}
}

func TestFig5MacroOrdering(t *testing.T) {
	tab := Fig5(quick)
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 apps × 3 modes)", len(tab.Rows))
	}
	// Index rows by app+mode.
	lat := map[string]float64{}
	for _, r := range tab.Rows {
		lat[r[0]+"/"+r[1]] = cell(t, r[4])
	}
	// BrFusion improves on NAT for every app (Fig. 5's claim).
	for _, app := range []string{"memcached", "nginx", "kafka"} {
		if lat[app+"/brfusion"] >= lat[app+"/nat"] {
			t.Errorf("%s: BrFusion latency %.1f not below NAT %.1f",
				app, lat[app+"/brfusion"], lat[app+"/nat"])
		}
	}
	// NGINX stays far above NoCont even with BrFusion (§5.2.2: the
	// overhead is the software itself).
	if lat["nginx/brfusion"] < lat["nginx/nocont"]*1.3 {
		t.Errorf("nginx BrFusion %.1f should remain well above NoCont %.1f",
			lat["nginx/brfusion"], lat["nginx/nocont"])
	}
}

func TestFig6SoftIRQReduction(t *testing.T) {
	tab := Fig6(quick)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	soft := map[string]float64{}
	for _, r := range tab.Rows {
		soft[r[0]] = cell(t, r[3])
	}
	// BrFusion cuts the in-VM softirq time sharply versus NAT (§5.2.3:
	// −67% for Kafka).
	if soft["brfusion"] >= soft["nat"]*0.6 {
		t.Errorf("BrFusion soft %.4f not well below NAT %.4f", soft["brfusion"], soft["nat"])
	}
}

func TestFig8BootStatistics(t *testing.T) {
	stats, cdf := Fig8(quick, 0)
	if len(stats.Rows) != 2 {
		t.Fatalf("stats rows = %d", len(stats.Rows))
	}
	med := map[string]float64{}
	for _, r := range stats.Rows {
		med[r[0]] = cell(t, r[3])
		if cell(t, r[1]) <= 0 {
			t.Errorf("%s: non-positive min boot time", r[0])
		}
	}
	// BrFusion boots at least as fast as vanilla NAT at the median
	// (Fig. 8: 75% of boots slightly better).
	if med["brfusion"] > med["nat"]*1.05 {
		t.Errorf("BrFusion median %.1fms above NAT %.1fms", med["brfusion"], med["nat"])
	}
	if len(cdf.Rows) == 0 {
		t.Fatal("empty CDF")
	}
	// CDF columns must be non-decreasing.
	for i := 1; i < len(cdf.Rows); i++ {
		if cell(t, cdf.Rows[i][1]) < cell(t, cdf.Rows[i-1][1]) {
			t.Fatal("NAT CDF not monotone")
		}
	}
}

func TestFig9Stats(t *testing.T) {
	hist, stats := Fig9(quick)
	if len(hist.Rows) == 0 {
		t.Fatal("empty savings histogram")
	}
	vals := map[string]string{}
	for _, r := range stats.Rows {
		vals[r[0]] = r[1]
	}
	savers := cell(t, vals["users with savings"])
	if savers <= 2 || savers >= 40 {
		t.Errorf("savers fraction %.1f%% far from the paper's 11.4%%", savers)
	}
	if cell(t, vals["max relative savings"]) < 10 {
		t.Error("max relative savings implausibly small")
	}
}

func TestFig10Tables(t *testing.T) {
	tput, lat := Fig10(quick)
	if len(tput.Rows) == 0 || len(lat.Rows) == 0 {
		t.Fatal("empty tables")
	}
	// At every size: SameNode leads throughput; Hostlo beats NAT.
	for _, r := range tput.Rows {
		sn, hl, nat := cell(t, r[1]), cell(t, r[2]), cell(t, r[3])
		if sn <= hl {
			t.Errorf("size %s: SameNode %v not above Hostlo %v", r[0], sn, hl)
		}
		if hl <= nat {
			t.Errorf("size %s: Hostlo %v not above NAT %v", r[0], hl, nat)
		}
	}
	// At every size: Hostlo latency far below NAT and Overlay.
	for _, r := range lat.Rows {
		hl, nat, ov := cell(t, r[3]), cell(t, r[5]), cell(t, r[7])
		if hl >= nat*0.7 || hl >= ov*0.7 {
			t.Errorf("size %s: Hostlo latency %v not well below NAT %v / Overlay %v", r[0], hl, nat, ov)
		}
	}
}

func TestFig11MemcachedOrdering(t *testing.T) {
	tab := Fig11(quick)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	lat := map[string]float64{}
	for _, r := range tab.Rows {
		lat[r[0]] = cell(t, r[2])
	}
	if lat[string(scenario.CCHostlo)] >= lat[string(scenario.CCNAT)] {
		t.Error("Hostlo memcached latency not below NAT")
	}
	if lat[string(scenario.CCHostlo)] >= lat[string(scenario.CCOverlay)] {
		t.Error("Hostlo memcached latency not below Overlay")
	}
}

func TestFig13NginxOrdering(t *testing.T) {
	tab := Fig13(quick)
	lat := map[string]float64{}
	for _, r := range tab.Rows {
		lat[r[0]] = cell(t, r[2])
	}
	// §5.3.3: Hostlo slower than SameNode but much better than NAT and
	// Overlay.
	if lat[string(scenario.CCHostlo)] < lat[string(scenario.CCSameNode)] {
		t.Error("Hostlo below SameNode?")
	}
	if lat[string(scenario.CCHostlo)] >= lat[string(scenario.CCOverlay)] {
		t.Error("Hostlo nginx latency not below Overlay")
	}
}

func TestFig14CPUAttribution(t *testing.T) {
	tab := Fig14(quick)
	cores := map[string][2]float64{}
	for _, r := range tab.Rows {
		cores[r[0]] = [2]float64{cell(t, r[3]), cell(t, r[4])} // cs_total, guest
	}
	// Hostlo raises client+server CPU versus SameNode (§5.3.4).
	if cores[string(scenario.CCHostlo)][0] <= cores[string(scenario.CCSameNode)][0] {
		t.Error("Hostlo cs CPU not above SameNode")
	}
	// All cross-VM solutions bill guest time.
	for _, m := range []scenario.CCMode{scenario.CCHostlo, scenario.CCNAT, scenario.CCOverlay} {
		if cores[string(m)][1] <= 0 {
			t.Errorf("%s: no guest time recorded", m)
		}
	}
}

func TestFig15Runs(t *testing.T) {
	tab := Fig15(quick)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if cell(t, r[5]) < 0 {
			t.Errorf("%s: negative host sys", r[0])
		}
	}
}

func TestTables1And2(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 3 {
		t.Fatalf("Table 1 rows = %d", len(t1.Rows))
	}
	t2 := Table2()
	if len(t2.Rows) != 6 {
		t.Fatalf("Table 2 rows = %d", len(t2.Rows))
	}
	if t2.Rows[5][0] != "24xlarge" {
		t.Fatal("Table 2 ordering wrong")
	}
}

func TestFiguresDeterministic(t *testing.T) {
	a := Fig2(quick).String()
	b := Fig2(quick).String()
	if a != b {
		t.Fatal("Fig2 not deterministic")
	}
}
