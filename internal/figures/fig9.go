package figures

import (
	"nestless/internal/cloudsim"
	"nestless/internal/report"
	"nestless/internal/trace"
)

// Fig9 reproduces the Hostlo cost-saving simulation (§5.3.1): per-user
// VM costs under Kubernetes whole-pod placement versus Hostlo
// container-level placement over a synthetic Google-trace population,
// priced with Table 2. Returns the savings histogram and the headline
// statistics.
func Fig9(o Opts) (hist, stats *report.Table) {
	cfg := trace.DefaultConfig(o.Seed)
	if o.Quick {
		cfg.Users = 150
	}
	users := trace.Generate(cfg)
	res := cloudsim.SimulateParallel(users, cloudsim.Catalog(), o.pool())

	hist = report.New("Fig. 9 — relative cost savings among users",
		"savings_bucket", "users", "fraction_of_savers")
	h := res.SavingsHistogram(20)
	for i := range h.Buckets {
		lo, hi := h.BucketBounds(i)
		if h.Buckets[i] == 0 {
			continue
		}
		hist.AddRow(bucketLabel(lo, hi), h.Buckets[i], h.Fraction(i))
	}

	stats = report.New("Fig. 9 — headline statistics",
		"metric", "value", "paper")
	maxAbs, maxAbsRel := res.MaxAbsSavings()
	kube, hostlo := res.TotalCosts()
	stats.AddRow("users simulated", len(res.Users), "492")
	stats.AddRow("users skipped (pod > largest VM)", res.Skipped, "0")
	stats.AddRow("users with savings", percent(res.SaversFraction()), "11.4%")
	stats.AddRow("savers above 5%", percent(res.BigSaversFractionOfSavers()), "66.7%")
	stats.AddRow("max relative savings", percent(res.MaxRelSavings()), "~40%")
	stats.AddRow("max absolute savings $/h", maxAbs, "237")
	stats.AddRow("  (at relative savings)", percent(maxAbsRel), "35%")
	stats.AddRow("population cost kube $/h", kube, "-")
	stats.AddRow("population cost hostlo $/h", hostlo, "-")
	return hist, stats
}

// Table2 prints the VM catalog (§5.3.1, Table 2).
func Table2() *report.Table {
	t := report.New("Table 2 — AWS EC2 m5 models",
		"model", "vcpu", "memory_gb", "vcpu_rel", "mem_rel", "price_per_h")
	for _, v := range cloudsim.Catalog() {
		t.AddRow(v.Name, v.VCPU, v.MemGB, v.RelCPU, v.RelMem, v.PricePerH)
	}
	return t
}

func bucketLabel(lo, hi float64) string {
	return percent(lo) + "–" + percent(hi)
}

func percent(v float64) string {
	return report.Percent(v)
}
