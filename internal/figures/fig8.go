package figures

import (
	"fmt"

	"nestless/internal/container"
	"nestless/internal/kube"
	"nestless/internal/netsim"
	"nestless/internal/parallel"
	"nestless/internal/report"
	"nestless/internal/scenario"
	"nestless/internal/sim"
)

// bootChunk is the number of boots sharing one node scenario. The boot
// experiment is partitioned into fixed-size chunks regardless of worker
// count: chunk c always covers runs [c*bootChunk, ...) on a scenario
// seeded seed+c, so the sample set is a pure function of (seed, runs)
// and parallel execution cannot change it.
const bootChunk = 10

// BootSamples measures container start-up the way the paper defines it
// (§5.2.4): "the duration between ordering Docker to create the
// container, and the container sending a message through a TCP socket".
// It runs `runs` boots per solution (the paper uses 100), dialing a
// host-side listener from inside each new pod, and returns the per-run
// durations in seconds. Boots are grouped into bootChunk-sized chunks,
// each on a fresh node; chunks fan out under o.Workers and merge in
// chunk order.
func BootSamples(o Opts, mode scenario.Mode, runs int) *sim.Series {
	nChunks := (runs + bootChunk - 1) / bootChunk
	chunks := make([]*sim.Series, nChunks)
	parallel.Run(nChunks, o.pool(), func(c int) {
		n := bootChunk
		if rem := runs - c*bootChunk; rem < n {
			n = rem
		}
		chunks[c] = bootChunkSamples(o, mode, c, n)
	})
	var samples sim.Series
	for _, ch := range chunks {
		for _, v := range ch.Samples() {
			samples.Add(v)
		}
	}
	return &samples
}

// bootChunkSamples boots n pods back-to-back on one fresh node and
// times each. The chunk index salts the seed so chunks differ the way
// back-to-back runs on one long-lived node used to.
func bootChunkSamples(o Opts, mode scenario.Mode, chunk, n int) *sim.Series {
	o.Rec.BeginRun(fmt.Sprintf("boot-%s-c%d", mode, chunk))
	sc, err := scenario.NewServerClientCfg(o.cfg(o.Seed+int64(chunk)), scenario.ModeNoCont)
	if err != nil {
		panic(err)
	}
	// Real boot timing for this experiment (scenarios default to the
	// fast profile for the traffic benchmarks).
	node := sc.Cluster.Nodes()[0]
	setBootProfile(node, container.DefaultBootProfile())

	// Host-side readiness listener.
	const readyPort = 19000
	ready := make(map[uint64]bool)
	if _, err := sc.Host.NS.ListenStream(readyPort, func(c *netsim.StreamConn) {
		c.OnMessage = func(_ int, app interface{}, _ sim.Time) {
			if id, ok := app.(uint64); ok {
				ready[id] = true
			}
		}
	}); err != nil {
		panic(err)
	}

	var samples sim.Series
	for run := 0; run < n; run++ {
		name := fmt.Sprintf("boot-%s-%d-%d", mode, chunk, run)
		started := sc.Eng.Now()
		id := uint64(run + 1)

		spec := kube.PodSpec{
			Name:       name,
			Containers: []kube.ContainerSpec{{Name: "app", Image: "app", CPU: 0.05, MemMB: 32}},
		}
		if mode == scenario.ModeBrFusion {
			spec.Network = "brfusion"
		}
		var finished sim.Time
		sc.Cluster.Deploy(spec, func(pod *kube.Pod, err error) {
			if err != nil {
				panic(err)
			}
			// Entrypoint is up: speak TCP through the pod's network.
			ns := pod.Parts[0].Sandbox.NS
			conn := ns.DialStream(scenario.HostGateway, readyPort, nil)
			conn.OnMessage = nil
			conn.SendMessage(16, id)
		})
		// Run until the readiness message lands.
		sc.Eng.RunWhile(func() bool { return !ready[id] })
		if !ready[id] {
			panic("figures: boot readiness message never arrived")
		}
		finished = sc.Eng.Now()
		samples.AddDuration(finished - started)
		// Tear down to keep the node empty for the next run.
		if err := sc.Cluster.Delete(name); err != nil {
			panic(err)
		}
		sc.Eng.Run()
	}
	return &samples
}

// Fig8 reproduces the container start-up comparison (§5.2.4): summary
// statistics plus a CDF table for NAT (vanilla Docker) and BrFusion.
func Fig8(o Opts, runs int) (stats, cdf *report.Table) {
	if runs <= 0 {
		runs = 100
	}
	if o.Quick {
		runs = 20
	}
	var nat, brf *sim.Series
	// The two solutions are themselves independent; split the worker
	// budget rather than serializing one whole solution after the other.
	parallel.Run(2, min(o.pool(), 2), func(i int) {
		sub := o
		if o.pool() > 1 {
			sub.Workers = (o.pool() + 1) / 2
		}
		if i == 0 {
			nat = BootSamples(sub, scenario.ModeNAT, runs)
		} else {
			brf = BootSamples(sub, scenario.ModeBrFusion, runs)
		}
	})

	stats = report.New("Fig. 8b — container start-up statistics (ms)",
		"solution", "min", "p25", "median", "p75", "max", "mean", "stddev")
	for _, row := range []struct {
		name string
		s    *sim.Series
	}{{"nat", nat}, {"brfusion", brf}} {
		ms := func(v float64) float64 { return v * 1e3 }
		stats.AddRow(row.name,
			ms(row.s.Min()), ms(row.s.Percentile(25)), ms(row.s.Median()),
			ms(row.s.Percentile(75)), ms(row.s.Max()), ms(row.s.Mean()), ms(row.s.Stddev()))
	}

	cdf = report.New("Fig. 8a — start-up time CDF (ms)",
		"fraction", "nat_ms", "brfusion_ms")
	steps := 20
	for i := 1; i <= steps; i++ {
		p := float64(i) / float64(steps) * 100
		cdf.AddRow(p/100, nat.Percentile(p)*1e3, brf.Percentile(p)*1e3)
	}
	return stats, cdf
}

// setBootProfile swaps the node engine's boot profile. Engines embed the
// profile at construction; the scenario builder exposes the node so the
// boot experiment can opt into realistic timings.
func setBootProfile(node *kube.Node, p container.BootProfile) {
	node.Engine.SetBootProfile(p)
}
