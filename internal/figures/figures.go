// Package figures regenerates every table and figure of the paper's
// evaluation (§5) from the simulated stack. Each Fig* function builds
// fresh scenarios, runs the corresponding workload, and returns
// report.Tables whose rows mirror the series the paper plots. The
// cmd/ binaries and the repository benchmarks are thin wrappers around
// this package, so "the figure" is computed exactly one way.
package figures

import (
	"fmt"
	"time"

	"nestless/internal/faults"
	"nestless/internal/netperf"
	"nestless/internal/parallel"
	"nestless/internal/report"
	"nestless/internal/scenario"
	"nestless/internal/telemetry"
)

// Opts tunes a figure run.
type Opts struct {
	// Seed drives all randomness; same seed, same tables.
	Seed int64
	// Quick shrinks measurement windows (used by tests); the shapes
	// survive, absolute precision drops.
	Quick bool
	// Rec collects telemetry across every scenario the figure builds
	// (nil = telemetry off). Runs are labeled per (workload, mode) so a
	// multi-scenario figure lays out on one trace timeline.
	Rec *telemetry.Recorder
	// Workers caps how many scenario runs of a figure sweep execute
	// concurrently (each run owns a private engine; results merge in
	// index order, so tables are byte-identical for any value). <= 1
	// means serial.
	Workers int
	// Faults applies a fault schedule to every scenario the figure
	// builds (nil = injection off). Each scenario run gets its own
	// injector, so rule counts reset per run.
	Faults *faults.Schedule
}

// cfg assembles the scenario configuration for one run at the given
// seed (figure sweeps derive per-run seeds from Opts.Seed).
func (o Opts) cfg(seed int64) scenario.Config {
	return scenario.Config{Seed: seed, Rec: o.Rec, Faults: o.Faults}
}

// pool returns the effective worker count for a sweep. Telemetry runs
// are forced serial: a Recorder lays all runs on one shared timeline,
// which only makes sense (and is only safe) when runs execute in order.
func (o Opts) pool() int {
	if o.Rec != nil || o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// DefaultOpts is the standard configuration.
func DefaultOpts() Opts { return Opts{Seed: 42} }

func (o Opts) streamWindow() (warmup, dur time.Duration) {
	if o.Quick {
		return 10 * time.Millisecond, 40 * time.Millisecond
	}
	return 30 * time.Millisecond, 120 * time.Millisecond
}

func (o Opts) rrWindow() time.Duration {
	if o.Quick {
		return 30 * time.Millisecond
	}
	return 100 * time.Millisecond
}

// Fig2 reproduces the motivation measurement (§2, Fig. 2): nested (NAT)
// versus single-level (NoCont) at 1280 B.
func Fig2(o Opts) *report.Table {
	t := report.New("Fig. 2 — nested vs single-level virtualization (1280 B)",
		"solution", "throughput_mbps", "rr_latency_us", "rr_stddev_us")
	modes := []scenario.Mode{scenario.ModeNAT, scenario.ModeNoCont}
	type cell struct {
		tp netperf.StreamResult
		rr netperf.RRResult
	}
	cells := make([]cell, len(modes))
	parallel.Run(len(modes), o.pool(), func(i int) {
		cells[i].tp, cells[i].rr = measureServerClient(o, modes[i], 1280)
	})
	for i, mode := range modes {
		t.AddRow(string(mode), cells[i].tp.ThroughputMbps,
			float64(cells[i].rr.MeanRTT)/1e3, float64(cells[i].rr.StddevRTT)/1e3)
	}
	return t
}

// Fig4 reproduces the BrFusion micro-benchmark (§5.2.1): TCP_STREAM
// throughput and UDP_RR latency over message sizes for NAT, BrFusion and
// NoCont.
func Fig4(o Opts) (throughput, latency *report.Table) {
	modes := []scenario.Mode{scenario.ModeNAT, scenario.ModeBrFusion, scenario.ModeNoCont}
	throughput = report.New("Fig. 4a — TCP_STREAM throughput (Mbps)",
		"msg_size", "nat", "brfusion", "nocont")
	latency = report.New("Fig. 4b — UDP_RR latency (µs, mean±sd)",
		"msg_size", "nat", "nat_sd", "brfusion", "brfusion_sd", "nocont", "nocont_sd")

	sizes := netperf.Sizes
	rrSizes := netperf.RRSizes
	if o.Quick {
		sizes = []int{256, 1280, 8192}
		rrSizes = []int{256, 1280}
	}
	// One job per (size, mode) cell across both sweeps; each job builds
	// its own scenario, so the whole grid fans out at once. Rows are
	// assembled afterwards in index order — identical tables at any
	// worker count.
	nm := len(modes)
	tps := make([]netperf.StreamResult, len(sizes)*nm)
	rrs := make([]netperf.RRResult, len(rrSizes)*nm)
	parallel.Run(len(tps)+len(rrs), o.pool(), func(i int) {
		if i < len(tps) {
			tps[i], _ = measureStreamOnly(o, modes[i%nm], sizes[i/nm])
			return
		}
		j := i - len(tps)
		rrs[j] = measureRROnly(o, modes[j%nm], rrSizes[j/nm])
	})
	for si, size := range sizes {
		row := make([]interface{}, 0, 1+nm)
		row = append(row, size)
		for mi := range modes {
			row = append(row, tps[si*nm+mi].ThroughputMbps)
		}
		throughput.AddRow(row...)
	}
	for si, size := range rrSizes {
		row := make([]interface{}, 0, 1+2*nm)
		row = append(row, size)
		for mi := range modes {
			rr := rrs[si*nm+mi]
			row = append(row, float64(rr.MeanRTT)/1e3, float64(rr.StddevRTT)/1e3)
		}
		latency.AddRow(row...)
	}
	return throughput, latency
}

// measureServerClient runs both micro modes against one fresh scenario.
func measureServerClient(o Opts, mode scenario.Mode, size int) (netperf.StreamResult, netperf.RRResult) {
	o.Rec.BeginRun(fmt.Sprintf("micro-%s-%d", mode, size))
	sc, err := scenario.NewServerClientCfg(o.cfg(o.Seed), mode, 5001, 7001)
	if err != nil {
		panic(err)
	}
	warm, dur := o.streamWindow()
	tp := netperf.RunTCPStream(sc.Eng, netperf.StreamConfig{
		Client: sc.Client, Server: sc.ServerNS,
		DialAddr: sc.DialAddr, Port: 5001, MsgSize: size,
		Warmup: warm, Duration: dur,
	})
	rr := netperf.RunUDPRR(sc.Eng, netperf.RRConfig{
		Client: sc.Client, Server: sc.ServerNS,
		DialAddr: sc.DialAddr, Port: 7001, MsgSize: size,
		Duration: o.rrWindow(),
	})
	return tp, rr
}

func measureStreamOnly(o Opts, mode scenario.Mode, size int) (netperf.StreamResult, *scenario.ServerClient) {
	o.Rec.BeginRun(fmt.Sprintf("stream-%s-%d", mode, size))
	sc, err := scenario.NewServerClientCfg(o.cfg(o.Seed), mode, 5001)
	if err != nil {
		panic(err)
	}
	warm, dur := o.streamWindow()
	tp := netperf.RunTCPStream(sc.Eng, netperf.StreamConfig{
		Client: sc.Client, Server: sc.ServerNS,
		DialAddr: sc.DialAddr, Port: 5001, MsgSize: size,
		Warmup: warm, Duration: dur,
	})
	return tp, sc
}

func measureRROnly(o Opts, mode scenario.Mode, size int) netperf.RRResult {
	o.Rec.BeginRun(fmt.Sprintf("rr-%s-%d", mode, size))
	sc, err := scenario.NewServerClientCfg(o.cfg(o.Seed), mode, 7001)
	if err != nil {
		panic(err)
	}
	return netperf.RunUDPRR(sc.Eng, netperf.RRConfig{
		Client: sc.Client, Server: sc.ServerNS,
		DialAddr: sc.DialAddr, Port: 7001, MsgSize: size,
		Duration: o.rrWindow(),
	})
}

// Fig10 reproduces the Hostlo micro-benchmark (§5.3.2): throughput and
// latency over message sizes for NAT, Overlay, Hostlo and SameNode
// container-to-container transports.
func Fig10(o Opts) (throughput, latency *report.Table) {
	modes := []scenario.CCMode{scenario.CCSameNode, scenario.CCHostlo, scenario.CCNAT, scenario.CCOverlay}
	throughput = report.New("Fig. 10a — intra-pod TCP_STREAM throughput (Mbps)",
		"msg_size", "samenode", "hostlo", "nat", "overlay")
	latency = report.New("Fig. 10b — intra-pod UDP_RR latency (µs, mean±sd)",
		"msg_size", "samenode", "sn_sd", "hostlo", "hl_sd", "nat", "nat_sd", "overlay", "ov_sd")

	sizes := netperf.Sizes
	rrSizes := netperf.RRSizes
	if o.Quick {
		sizes = []int{256, 1024, 8192}
		rrSizes = []int{256, 1024}
	}
	nm := len(modes)
	tps := make([]netperf.StreamResult, len(sizes)*nm)
	rrs := make([]netperf.RRResult, len(rrSizes)*nm)
	parallel.Run(len(tps)+len(rrs), o.pool(), func(i int) {
		if i < len(tps) {
			tps[i] = measureCCStream(o, modes[i%nm], sizes[i/nm])
			return
		}
		j := i - len(tps)
		rrs[j] = measureCCRR(o, modes[j%nm], rrSizes[j/nm])
	})
	for si, size := range sizes {
		row := make([]interface{}, 0, 1+nm)
		row = append(row, size)
		for mi := range modes {
			row = append(row, tps[si*nm+mi].ThroughputMbps)
		}
		throughput.AddRow(row...)
	}
	for si, size := range rrSizes {
		row := make([]interface{}, 0, 1+2*nm)
		row = append(row, size)
		for mi := range modes {
			rr := rrs[si*nm+mi]
			row = append(row, float64(rr.MeanRTT)/1e3, float64(rr.StddevRTT)/1e3)
		}
		latency.AddRow(row...)
	}
	return throughput, latency
}

// measureCCStream runs one intra-pod TCP_STREAM cell on a fresh pod pair.
func measureCCStream(o Opts, m scenario.CCMode, size int) netperf.StreamResult {
	o.Rec.BeginRun(fmt.Sprintf("cc-stream-%s-%d", m, size))
	pp, err := scenario.NewPodPairCfg(o.cfg(o.Seed), m, 5001)
	if err != nil {
		panic(err)
	}
	warm, dur := o.streamWindow()
	return netperf.RunTCPStream(pp.Eng, netperf.StreamConfig{
		Client: pp.ANS, Server: pp.BNS,
		DialAddr: pp.DialAddr, Port: 5001, MsgSize: size,
		Warmup: warm, Duration: dur,
	})
}

// measureCCRR runs one intra-pod UDP_RR cell on a fresh pod pair.
func measureCCRR(o Opts, m scenario.CCMode, size int) netperf.RRResult {
	o.Rec.BeginRun(fmt.Sprintf("cc-rr-%s-%d", m, size))
	pp, err := scenario.NewPodPairCfg(o.cfg(o.Seed), m, 7001)
	if err != nil {
		panic(err)
	}
	return netperf.RunUDPRR(pp.Eng, netperf.RRConfig{
		Client: pp.ANS, Server: pp.BNS,
		DialAddr: pp.DialAddr, Port: 7001, MsgSize: size,
		Duration: o.rrWindow(),
	})
}
