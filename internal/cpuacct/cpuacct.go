// Package cpuacct accounts simulated CPU time the way the paper's
// evaluation reports it (§5.2.3, §5.3.4): per entity (the host, a VM, an
// application inside a VM) and per category:
//
//   - usr   — software work in user space
//   - sys   — kernel work excluding interrupt handling (syscalls, bridge
//     forwarding, device emulation in the host kernel such as vhost)
//   - soft  — kernel work serving software interrupts (netfilter hooks,
//     NAPI-like RX processing)
//   - guest — host CPU time given to a guest VM
//
// Every Station service interval in the network simulator is billed here,
// so the breakdown figures (6, 7, 14, 15) come out of the same events that
// produce throughput and latency.
package cpuacct

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Category is one of the paper's CPU usage classes.
type Category int

// The categories, in the order the paper's figures stack them.
const (
	Usr Category = iota
	Sys
	Soft
	Guest
	numCategories
)

// String returns the paper's label for the category.
func (c Category) String() string {
	switch c {
	case Usr:
		return "usr"
	case Sys:
		return "sys"
	case Soft:
		return "soft"
	case Guest:
		return "guest"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all categories in display order.
func Categories() []Category { return []Category{Usr, Sys, Soft, Guest} }

// Usage is accumulated CPU time for one entity, broken down by category.
// The zero value is an empty usage ready to use.
type Usage struct {
	byCat [numCategories]time.Duration
}

// Add accumulates d into category c. Negative durations are ignored.
func (u *Usage) Add(c Category, d time.Duration) {
	if d <= 0 || c < 0 || c >= numCategories {
		return
	}
	u.byCat[c] += d
}

// Of returns the accumulated time in category c.
func (u Usage) Of(c Category) time.Duration {
	if c < 0 || c >= numCategories {
		return 0
	}
	return u.byCat[c]
}

// Total returns the sum over all categories.
func (u Usage) Total() time.Duration {
	var t time.Duration
	for _, d := range u.byCat {
		t += d
	}
	return t
}

// Sub returns u minus v, clamping each category at zero. It is used to
// measure a window: snapshot before, snapshot after, subtract.
func (u Usage) Sub(v Usage) Usage {
	var out Usage
	for i := range u.byCat {
		d := u.byCat[i] - v.byCat[i]
		if d < 0 {
			d = 0
		}
		out.byCat[i] = d
	}
	return out
}

// Plus returns the category-wise sum of u and v.
func (u Usage) Plus(v Usage) Usage {
	var out Usage
	for i := range u.byCat {
		out.byCat[i] = u.byCat[i] + v.byCat[i]
	}
	return out
}

// Cores converts the usage into mean cores consumed over the elapsed
// window (the unit of the paper's CPU figures). Zero elapsed yields zeros.
func (u Usage) Cores(elapsed time.Duration) map[Category]float64 {
	out := make(map[Category]float64, numCategories)
	for i := Category(0); i < numCategories; i++ {
		if elapsed > 0 {
			out[i] = float64(u.byCat[i]) / float64(elapsed)
		} else {
			out[i] = 0
		}
	}
	return out
}

// String formats the usage as "usr=… sys=… soft=… guest=…".
func (u Usage) String() string {
	var b strings.Builder
	for i, c := range Categories() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", c, u.byCat[c])
	}
	return b.String()
}

// Accountant accumulates usage per named entity. Entity naming
// convention used across nestless:
//
//	"host"            — the physical machine's kernel and userspace
//	"vm/<name>"       — a guest VM as a whole (host view: guest time)
//	"app/<name>"      — an application inside a guest (guest view)
//
// The zero value is NOT ready to use; call New.
type Accountant struct {
	usages map[string]*Usage
}

// New returns an empty accountant.
func New() *Accountant {
	return &Accountant{usages: make(map[string]*Usage)}
}

// Record bills d of category c to entity.
func (a *Accountant) Record(entity string, c Category, d time.Duration) {
	u, ok := a.usages[entity]
	if !ok {
		u = &Usage{}
		a.usages[entity] = u
	}
	u.Add(c, d)
}

// Usage returns a copy of the entity's accumulated usage. Unknown
// entities report zero usage.
func (a *Accountant) Usage(entity string) Usage {
	if u, ok := a.usages[entity]; ok {
		return *u
	}
	return Usage{}
}

// Entities returns all entity names with recorded usage, sorted.
func (a *Accountant) Entities() []string {
	names := make([]string, 0, len(a.usages))
	for n := range a.usages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalFor sums the usage of all entities whose name has the given
// prefix, e.g. "vm/" for all guests.
func (a *Accountant) TotalFor(prefix string) Usage {
	var total Usage
	for name, u := range a.usages {
		if strings.HasPrefix(name, prefix) {
			total = total.Plus(*u)
		}
	}
	return total
}

// Reset clears all recorded usage.
func (a *Accountant) Reset() {
	a.usages = make(map[string]*Usage)
}
