package cpuacct

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUsageAddAndTotal(t *testing.T) {
	var u Usage
	u.Add(Usr, 10*time.Millisecond)
	u.Add(Sys, 5*time.Millisecond)
	u.Add(Soft, 2*time.Millisecond)
	u.Add(Guest, 40*time.Millisecond)
	if u.Of(Usr) != 10*time.Millisecond || u.Of(Soft) != 2*time.Millisecond {
		t.Fatalf("per-category reads wrong: %v", u)
	}
	if u.Total() != 57*time.Millisecond {
		t.Fatalf("Total = %v, want 57ms", u.Total())
	}
}

func TestUsageIgnoresInvalid(t *testing.T) {
	var u Usage
	u.Add(Usr, -time.Second)
	u.Add(Category(99), time.Second)
	u.Add(Category(-1), time.Second)
	if u.Total() != 0 {
		t.Fatalf("invalid adds must be ignored, got %v", u.Total())
	}
	if u.Of(Category(99)) != 0 {
		t.Fatal("out-of-range Of must be 0")
	}
}

func TestUsageSubClampsAtZero(t *testing.T) {
	var a, b Usage
	a.Add(Usr, 10*time.Millisecond)
	b.Add(Usr, 3*time.Millisecond)
	b.Add(Sys, 99*time.Millisecond)
	d := a.Sub(b)
	if d.Of(Usr) != 7*time.Millisecond {
		t.Fatalf("Sub usr = %v, want 7ms", d.Of(Usr))
	}
	if d.Of(Sys) != 0 {
		t.Fatalf("Sub must clamp at zero, got %v", d.Of(Sys))
	}
}

func TestUsageCores(t *testing.T) {
	var u Usage
	u.Add(Sys, 500*time.Millisecond)
	cores := u.Cores(time.Second)
	if cores[Sys] != 0.5 {
		t.Fatalf("Cores[sys] = %v, want 0.5", cores[Sys])
	}
	if cores[Usr] != 0 {
		t.Fatalf("Cores[usr] = %v, want 0", cores[Usr])
	}
	zero := u.Cores(0)
	if zero[Sys] != 0 {
		t.Fatal("zero elapsed must report zero cores")
	}
}

func TestAccountantRecordAndQuery(t *testing.T) {
	a := New()
	a.Record("host", Sys, time.Second)
	a.Record("vm/web", Guest, 2*time.Second)
	a.Record("vm/db", Guest, 3*time.Second)
	a.Record("app/nginx", Usr, 100*time.Millisecond)

	if a.Usage("host").Of(Sys) != time.Second {
		t.Fatal("host sys wrong")
	}
	if a.Usage("missing").Total() != 0 {
		t.Fatal("unknown entity must be zero")
	}
	total := a.TotalFor("vm/")
	if total.Of(Guest) != 5*time.Second {
		t.Fatalf("TotalFor(vm/) guest = %v, want 5s", total.Of(Guest))
	}
	ents := a.Entities()
	want := []string{"app/nginx", "host", "vm/db", "vm/web"}
	if len(ents) != len(want) {
		t.Fatalf("Entities = %v", ents)
	}
	for i := range want {
		if ents[i] != want[i] {
			t.Fatalf("Entities = %v, want %v", ents, want)
		}
	}
}

func TestAccountantReset(t *testing.T) {
	a := New()
	a.Record("host", Usr, time.Second)
	a.Reset()
	if a.Usage("host").Total() != 0 || len(a.Entities()) != 0 {
		t.Fatal("Reset did not clear usage")
	}
}

func TestCategoryStrings(t *testing.T) {
	cases := map[Category]string{Usr: "usr", Sys: "sys", Soft: "soft", Guest: "guest"}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if Category(42).String() != "Category(42)" {
		t.Error("unknown category string wrong")
	}
	if len(Categories()) != 4 {
		t.Error("Categories() must list 4 entries")
	}
}

// Property: Plus then Sub returns the original usage (when the subtrahend
// is the added value), and Total equals the sum of categories.
func TestUsageAlgebraProperty(t *testing.T) {
	prop := func(au, as, ao, ag, bu, bs, bo, bg uint32) bool {
		var a, b Usage
		a.Add(Usr, time.Duration(au))
		a.Add(Sys, time.Duration(as))
		a.Add(Soft, time.Duration(ao))
		a.Add(Guest, time.Duration(ag))
		b.Add(Usr, time.Duration(bu))
		b.Add(Sys, time.Duration(bs))
		b.Add(Soft, time.Duration(bo))
		b.Add(Guest, time.Duration(bg))
		sum := a.Plus(b)
		if sum.Sub(b) != a {
			return false
		}
		var catSum time.Duration
		for _, c := range Categories() {
			catSum += sum.Of(c)
		}
		return catSum == sum.Total()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
