package vmm

import (
	"testing"

	"nestless/internal/netsim"
)

func TestQueryNetdev(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	m := vm.Monitor()
	m.Execute("netdev_add", map[string]string{"id": "nd1", "type": "bridge", "br": "virbr0"}, nil)
	m.Execute("hostlo_create", map[string]string{"id": "h0"}, nil)
	eng.Run()
	m.Execute("netdev_add", map[string]string{"id": "nd2", "type": "hostlo", "dev": "h0"}, nil)
	eng.Run()

	var r Result
	m.Execute("query-netdev", nil, func(res Result, err error) {
		if err != nil {
			t.Fatal(err)
		}
		r = res
	})
	eng.Run()
	if r["nd1"] != "bridge" || r["nd2"] != "hostlo" {
		t.Fatalf("query-netdev = %v", r)
	}
}

func TestHotplugIfaceNamesSequential(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	vm.PlugBridgeNIC("virbr0", netsim.IP(192, 168, 122, 10), hostNet) // eth0
	m := vm.Monitor()
	m.Execute("netdev_add", map[string]string{"id": "nd", "type": "bridge", "br": "virbr0"}, nil)
	eng.Run()
	var names []string
	for _, id := range []string{"d1", "d2"} {
		m.Execute("device_add", map[string]string{"id": id, "netdev": "nd"}, func(r Result, err error) {
			if err != nil {
				t.Fatal(err)
			}
			names = append(names, r["iface"])
		})
		eng.Run()
	}
	if len(names) != 2 || names[0] != "eth1" || names[1] != "eth2" {
		t.Fatalf("guest iface names = %v, want [eth1 eth2]", names)
	}
}

func TestHotplugTimingJitterVaries(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	m := vm.Monitor()
	m.Execute("netdev_add", map[string]string{"id": "nd", "type": "bridge", "br": "virbr0"}, nil)
	eng.Run()
	var durations []int64
	for i, id := range []string{"a", "b", "c", "d"} {
		_ = i
		start := eng.Now()
		m.Execute("device_add", map[string]string{"id": id, "netdev": "nd"}, nil)
		eng.Run()
		durations = append(durations, int64(eng.Now()-start))
	}
	allSame := true
	for _, d := range durations[1:] {
		if d != durations[0] {
			allSame = false
		}
		if d <= 0 {
			t.Fatal("hot-plug took no time")
		}
	}
	if allSame {
		t.Fatal("hot-plug durations show no jitter")
	}
}

func TestVMsListedInCreationOrder(t *testing.T) {
	_, _, h := newTestHost()
	for _, name := range []string{"c", "a", "b"} {
		_, _ = h.CreateVM(VMConfig{Name: name})
	}
	vms := h.VMs()
	if len(vms) != 3 || vms[0].Name != "c" || vms[1].Name != "a" || vms[2].Name != "b" {
		t.Fatalf("VMs order wrong: %v", []string{vms[0].Name, vms[1].Name, vms[2].Name})
	}
}

func TestDeviceMACStable(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	m := vm.Monitor()
	m.Execute("netdev_add", map[string]string{"id": "nd", "type": "bridge", "br": "virbr0"}, nil)
	eng.Run()
	var mac string
	m.Execute("device_add", map[string]string{"id": "d", "netdev": "nd"}, func(r Result, err error) { mac = r["mac"] })
	eng.Run()
	dev := vm.Devices()["d"]
	if dev.MAC().String() != mac {
		t.Fatalf("MAC drifted: %s vs %s", dev.MAC(), mac)
	}
}
