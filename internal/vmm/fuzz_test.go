package vmm

import (
	"testing"
)

// FuzzMonitorExecute drives the QMP-like monitor with arbitrary
// commands and arguments against a host that already has a bridge
// ("virbr0"), a hostlo device ("h0"), a registered netdev ("nd0") and a
// hot-plugged device ("d0"). Whatever the input, the monitor must not
// panic, must reply exactly once per command, and must leave the
// registries consistent enough for a follow-up query to succeed.
func FuzzMonitorExecute(f *testing.F) {
	f.Add("device_add", "d1", "bridge", "virbr0", "h0", "nd0")
	f.Add("netdev_add", "nd1", "bridge", "virbr0", "h0", "nd0")
	f.Add("netdev_add", "nd1", "hostlo", "virbr0", "h0", "nd0")
	f.Add("netdev_del", "nd0", "", "", "", "")
	f.Add("device_del", "d0", "", "", "", "")
	f.Add("hostlo_create", "h1", "", "", "", "")
	f.Add("hostlo_delete", "h0", "", "", "", "")
	f.Add("query-netdev", "", "", "", "", "")
	f.Add("migrate", "x", "y", "z", "", "")
	f.Add("device_add", "", "", "", "", "")
	f.Add("device_add", "d0", "bridge", "virbr0", "h0", "nd0")
	f.Add("hostlo_delete", "h0", "", "", "", "nd0")

	f.Fuzz(func(t *testing.T, cmd, id, typ, br, dev, netdev string) {
		eng, _, h := newTestHost()
		vm, err := h.CreateVM(VMConfig{Name: "fuzz"})
		if err != nil {
			t.Fatal(err)
		}
		m := vm.Monitor()

		prologue := []struct {
			cmd  string
			args map[string]string
		}{
			{"hostlo_create", map[string]string{"id": "h0"}},
			{"netdev_add", map[string]string{"id": "nd0", "type": "bridge", "br": "virbr0"}},
			{"device_add", map[string]string{"id": "d0", "netdev": "nd0"}},
		}
		for _, p := range prologue {
			var perr error
			m.Execute(p.cmd, p.args, func(_ Result, err error) { perr = err })
			eng.Run()
			if perr != nil {
				t.Fatalf("prologue %s: %v", p.cmd, perr)
			}
		}

		args := map[string]string{}
		for k, v := range map[string]string{
			"id": id, "type": typ, "br": br, "dev": dev, "netdev": netdev,
		} {
			if v != "" {
				args[k] = v
			}
		}
		replies := 0
		m.Execute(cmd, args, func(Result, error) { replies++ })
		eng.Run()
		if replies != 1 {
			t.Fatalf("Execute(%q, %v) replied %d times, want exactly 1", cmd, args, replies)
		}

		// The registries must still answer queries coherently.
		var qerr error
		var listed Result
		m.Execute("query-netdev", nil, func(r Result, err error) { listed, qerr = r, err })
		eng.Run()
		if qerr != nil {
			t.Fatalf("query-netdev after %q: %v", cmd, qerr)
		}
		// Invariant from deviceDel: every device's backing netdev spec is
		// registered exactly as long as the device lives.
		for _, d := range vm.Devices() {
			if d.Netdev == "boot" {
				continue
			}
			if _, ok := listed[d.Netdev]; !ok {
				t.Fatalf("device %q references unregistered netdev %q (have %v)", d.ID, d.Netdev, listed)
			}
		}
	})
}
