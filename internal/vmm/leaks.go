package vmm

import (
	"fmt"
	"sort"
	"strings"

	"nestless/internal/virtio"
)

// Leaks audits the host for control-plane residue and returns one line
// per finding, deterministically ordered. It is the chaos suite's
// invariant checker: after every pod has been deleted and the engine
// has drained, a fault-free *or* faulted run must leave
//
//   - no hot-plugged device on any VM (boot NICs are expected),
//   - no registered netdev backend spec,
//   - no Hostlo device (and therefore no Hostlo queue),
//   - no orphaned vnet* TAP in the host namespace, and
//   - no container namespace (name contains "/") still holding a
//     non-loopback interface.
//
// An empty result means the teardown paths were leak-free. Call it only
// after teardown: live pods legitimately hold devices and interfaces.
func (h *Host) Leaks() []string {
	var out []string
	for _, name := range h.vmOrder {
		vm := h.vms[name]
		for _, id := range sortedIDs(vm.devices) {
			if vm.devices[id].Netdev == "boot" {
				continue
			}
			out = append(out, fmt.Sprintf("vm %s: device %s still attached", name, id))
		}
		for _, id := range sortedIDs(vm.netdevs) {
			out = append(out, fmt.Sprintf("vm %s: netdev %s still registered", name, id))
		}
	}
	for _, id := range sortedIDs(h.hostlos) {
		out = append(out, fmt.Sprintf("hostlo %s still exists (%d queues)", id, h.hostlos[id].Queues()))
	}
	// Orphaned TAPs: vnet* interfaces in the host namespace whose owning
	// device is gone (a device_del that detached the guest side but lost
	// the host side would show up here).
	owned := make(map[string]bool)
	for _, name := range h.vmOrder {
		for _, d := range h.vms[name].devices {
			if b, ok := d.NIC.Backend().(*virtio.TAPBackend); ok {
				owned[b.TAP.Name] = true
			}
		}
	}
	for _, i := range h.NS.Ifaces() {
		if strings.HasPrefix(i.Name, "vnet") && !owned[i.Name] {
			out = append(out, fmt.Sprintf("host: orphaned TAP %s", i.Name))
		}
	}
	// Container namespaces follow the "<node>/<name>" convention; after
	// teardown only their loopback may remain.
	for _, ns := range h.Net.Namespaces() {
		if !strings.Contains(ns.Name, "/") {
			continue
		}
		for _, i := range ns.Ifaces() {
			if i.Name != "lo" {
				out = append(out, fmt.Sprintf("namespace %s: interface %s still present", ns.Name, i.Name))
			}
		}
	}
	return out
}

func sortedIDs[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
