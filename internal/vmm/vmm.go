// Package vmm models the virtualization layer of the paper's testbed: a
// physical host running a QEMU/KVM-like machine monitor. Each VM has a
// guest namespace and a vCPU lane; the VMM exposes a QMP-like
// side-channel monitor per VM (§3.2: "when QEMU creates a VM, it also
// provides a side-channel management interface") through which the
// orchestrator hot-plugs NICs — the mechanism both BrFusion and Hostlo
// are built on.
package vmm

import (
	"fmt"
	"time"

	"nestless/internal/hostlo"
	"nestless/internal/netsim"
	"nestless/internal/sim"
	"nestless/internal/virtio"
)

// Host is the physical machine: host namespace, host CPUs, bridges, VMs
// and Hostlo devices.
type Host struct {
	Net *netsim.Net
	Eng *sim.Engine
	NS  *netsim.NetNS
	CPU *netsim.CPU

	bridges map[string]*netsim.Bridge
	vms     map[string]*VM
	vmOrder []string
	hostlos map[string]*hostlo.Device

	tapSeq int
}

// NewHost creates the physical machine. Host network processing runs on
// a single host-kernel lane billed to the "host" entity.
func NewHost(n *netsim.Net) *Host {
	cpu := n.NewCPU("hostcpu", 1, "host", "")
	h := &Host{
		Net:     n,
		Eng:     n.Eng,
		CPU:     cpu,
		bridges: make(map[string]*netsim.Bridge),
		vms:     make(map[string]*VM),
		hostlos: make(map[string]*hostlo.Device),
	}
	cpu.Station.SetWakeup(WorkerWakeMean, WorkerWakeJitter, WakeThreshold)
	h.NS = n.NewNS("host", cpu)
	h.NS.Forward = true
	return h
}

// AddBridge creates a host bridge with the given gateway address.
func (h *Host) AddBridge(name string, addr netsim.IPv4, subnet netsim.Prefix) *netsim.Bridge {
	br := netsim.NewBridge(h.NS, name)
	br.Iface().SetAddr(addr, subnet)
	h.bridges[name] = br
	return br
}

// Bridge returns a host bridge by name, or nil.
func (h *Host) Bridge(name string) *netsim.Bridge { return h.bridges[name] }

// Hostlo returns a Hostlo device by name, or nil.
func (h *Host) Hostlo(name string) *hostlo.Device { return h.hostlos[name] }

// VMs returns the host's VMs in creation order.
func (h *Host) VMs() []*VM {
	out := make([]*VM, 0, len(h.vmOrder))
	for _, name := range h.vmOrder {
		out = append(out, h.vms[name])
	}
	return out
}

// VM returns a VM by name, or nil.
func (h *Host) VM(name string) *VM { return h.vms[name] }

// nextTAP names a fresh host-side TAP.
func (h *Host) nextTAP() string {
	h.tapSeq++
	return fmt.Sprintf("vnet%d", h.tapSeq)
}

// VMConfig sizes a virtual machine.
type VMConfig struct {
	Name     string
	VCPUs    int
	MemoryMB int
}

// VM is one guest: namespace, vCPU lane, attached devices, and the QMP
// monitor. Guest network work is billed to "guest/<name>" (the in-guest
// view) and mirrored as guest time of "vm/<name>" (the host view).
type VM struct {
	Host *Host
	Name string
	// VCPUs and MemoryMB size the VM for the schedulers and the cost
	// simulation; the network lane itself is serial, as a single flow's
	// kernel processing is on real guests.
	VCPUs    int
	MemoryMB int

	NS  *netsim.NetNS
	CPU *netsim.CPU

	monitor *Monitor
	devices map[string]*Device
	netdevs map[string]*netdevSpec
	ifSeq   int

	// OnHotplug is the guest OS's device notification: the in-VM agent
	// (kubelet) subscribes to learn about NICs the VMM inserted.
	OnHotplug func(dev *Device)
}

// CreateVM provisions a VM on the host (no NICs yet). Duplicate and
// unnamed VMs are rejected with an error.
func (h *Host) CreateVM(cfg VMConfig) (*VM, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("vmm: VM needs a name")
	}
	if _, dup := h.vms[cfg.Name]; dup {
		return nil, fmt.Errorf("vmm: duplicate VM %q", cfg.Name)
	}
	if cfg.VCPUs <= 0 {
		cfg.VCPUs = 1
	}
	cpu := h.Net.NewCPU("vm-"+cfg.Name, 1, "guest/"+cfg.Name, "vm/"+cfg.Name)
	cpu.Station.SetWakeup(VCPUWakeMean, VCPUWakeJitter, WakeThreshold)
	vm := &VM{
		Host:     h,
		Name:     cfg.Name,
		VCPUs:    cfg.VCPUs,
		MemoryMB: cfg.MemoryMB,
		CPU:      cpu,
		devices:  make(map[string]*Device),
		netdevs:  make(map[string]*netdevSpec),
	}
	vm.NS = h.Net.NewNS("vm-"+cfg.Name, cpu)
	vm.NS.Forward = true // guests route for their pods (vanilla nested setup)
	vm.monitor = &Monitor{vm: vm}
	h.vms[cfg.Name] = vm
	h.vmOrder = append(h.vmOrder, cfg.Name)
	return vm, nil
}

// Monitor returns the VM's QMP side channel.
func (vm *VM) Monitor() *Monitor { return vm.monitor }

// Device returns one attached device by ID, or nil.
func (vm *VM) Device(id string) *Device { return vm.devices[id] }

// Devices returns the VM's attached NIC devices by ID.
func (vm *VM) Devices() map[string]*Device {
	out := make(map[string]*Device, len(vm.devices))
	for k, v := range vm.devices {
		out[k] = v
	}
	return out
}

// EntityCPU returns a CPU view sharing this VM's vCPU lane but billing a
// different in-guest entity (e.g. "app/<pod>") while still mirroring
// guest time to the VM — how pod namespaces inside the VM account.
func (vm *VM) EntityCPU(entity string) *netsim.CPU {
	return vm.Host.Net.CPUView(vm.CPU, entity, "vm/"+vm.Name)
}

// nextIface names the next guest interface (eth0, eth1, ...).
func (vm *VM) nextIface() string {
	name := fmt.Sprintf("eth%d", vm.ifSeq)
	vm.ifSeq++
	return name
}

// Device is one attached virtio-net device.
type Device struct {
	ID     string
	Netdev string
	NIC    *virtio.NIC
	// Hostlo is set when the device's backend is a Hostlo queue.
	Hostlo *hostlo.Backend
}

// MAC returns the device's guest-visible MAC — the identifier the VMM
// reports back to the orchestrator (§3.1 step 3).
func (d *Device) MAC() netsim.MAC { return d.NIC.Guest.MAC }

// netdevSpec is a registered host-side backend definition.
type netdevSpec struct {
	id      string
	kind    string // "bridge" or "hostlo"
	bridge  string
	hostloD string
}

// Timing constants for management-plane operations. QEMU's QMP handling
// plus guest PCI/ACPI probe and driver bring-up dominate; the jitter
// reflects run-to-run variance observed on real hot-plugs.
// Wake-up latencies: a halted vCPU pays halt-exit + IPI + VM-entry on
// the next packet after an idle period (KVM halt-polls ~20 µs before
// halting); host kernel workers (vhost, softirq threads) pay a scheduler
// wake-up. Streaming traffic never idles long enough to pay these; sparse
// request/response traffic pays them on nearly every transaction.
const (
	VCPUWakeMean     = 8 * time.Microsecond
	VCPUWakeJitter   = 2 * time.Microsecond
	WorkerWakeMean   = 3 * time.Microsecond
	WorkerWakeJitter = 1 * time.Microsecond
	WakeThreshold    = 20 * time.Microsecond
)

const (
	qmpDispatchMean   = 80 * time.Microsecond
	qmpDispatchJitter = 15 * time.Microsecond
	qemuAttachMean    = 300 * time.Microsecond
	qemuAttachJitter  = 60 * time.Microsecond
	guestProbeMean    = 900 * time.Microsecond
	guestProbeJitter  = 180 * time.Microsecond
)

func jittered(r *sim.Rand, mean, jitter time.Duration) time.Duration {
	d := time.Duration(r.Normal(float64(mean), float64(jitter)))
	if d < mean/4 {
		d = mean / 4
	}
	return d
}
