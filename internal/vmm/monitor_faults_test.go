package vmm

import (
	"strings"
	"testing"

	"nestless/internal/faults"
	"nestless/internal/netsim"
)

// exec runs one monitor command to completion and returns its reply.
func exec(t *testing.T, eng interface{ Run() }, m *Monitor, cmd string, args map[string]string) (Result, error) {
	t.Helper()
	var r Result
	var rerr error
	called := 0
	m.Execute(cmd, args, func(res Result, err error) {
		called++
		r, rerr = res, err
	})
	eng.Run()
	if called != 1 {
		t.Fatalf("%s reply called %d times", cmd, called)
	}
	return r, rerr
}

func TestNetdevDelErrors(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	m := vm.Monitor()
	if _, err := exec(t, eng, m, "netdev_del", map[string]string{"id": "nope"}); err == nil {
		t.Error("deleting unknown netdev did not error")
	}
	if _, err := exec(t, eng, m, "netdev_add", map[string]string{"id": "nd", "type": "bridge", "br": "virbr0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := exec(t, eng, m, "device_add", map[string]string{"id": "d1", "netdev": "nd"}); err != nil {
		t.Fatal(err)
	}
	if _, err := exec(t, eng, m, "netdev_del", map[string]string{"id": "nd"}); err == nil {
		t.Error("deleting an in-use netdev did not error")
	}
}

func TestDeviceDelRetiresPairedNetdev(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	m := vm.Monitor()
	exec(t, eng, m, "netdev_add", map[string]string{"id": "nd", "type": "bridge", "br": "virbr0"})
	exec(t, eng, m, "device_add", map[string]string{"id": "d1", "netdev": "nd"})
	if _, err := exec(t, eng, m, "device_del", map[string]string{"id": "d1"}); err != nil {
		t.Fatal(err)
	}
	r, err := exec(t, eng, m, "query-netdev", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, still := r["nd"]; still {
		t.Fatalf("device_del left the paired netdev registered: %v", r)
	}
}

func TestHostloDeleteErrors(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	m := vm.Monitor()
	if _, err := exec(t, eng, m, "hostlo_delete", map[string]string{"id": "nope"}); err == nil {
		t.Error("deleting unknown hostlo did not error")
	}
	exec(t, eng, m, "hostlo_create", map[string]string{"id": "h0"})
	exec(t, eng, m, "netdev_add", map[string]string{"id": "nd", "type": "hostlo", "dev": "h0"})
	exec(t, eng, m, "device_add", map[string]string{"id": "d1", "netdev": "nd"})
	if _, err := exec(t, eng, m, "hostlo_delete", map[string]string{"id": "h0"}); err == nil {
		t.Error("deleting a hostlo with live queues did not error")
	}
	exec(t, eng, m, "device_del", map[string]string{"id": "d1"})
	if _, err := exec(t, eng, m, "hostlo_delete", map[string]string{"id": "h0"}); err != nil {
		t.Errorf("deleting a drained hostlo: %v", err)
	}
	if h.Hostlo("h0") != nil {
		t.Error("hostlo still registered after delete")
	}
}

func TestQMPFaultInjection(t *testing.T) {
	eng, w, h := newTestHost()
	s, err := faults.ParseSpec("qmp/device_add:fail:n=1")
	if err != nil {
		t.Fatal(err)
	}
	w.Faults = faults.New(eng, s, nil)
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	m := vm.Monitor()
	exec(t, eng, m, "netdev_add", map[string]string{"id": "nd", "type": "bridge", "br": "virbr0"})
	if _, err := exec(t, eng, m, "device_add", map[string]string{"id": "d1", "netdev": "nd"}); err == nil {
		t.Fatal("injected device_add fault did not surface")
	} else if !strings.Contains(err.Error(), "injected") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Rule budget n=1 exhausted: the retry succeeds.
	if _, err := exec(t, eng, m, "device_add", map[string]string{"id": "d1", "netdev": "nd"}); err != nil {
		t.Fatalf("retry after exhausted fault rule: %v", err)
	}
	if vm.Device("d1") == nil {
		t.Fatal("device missing after successful retry")
	}
}

func TestHostLeaksChecker(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	vm.PlugBridgeNIC("virbr0", netsim.IP(192, 168, 122, 10), hostNet)
	if leaks := h.Leaks(); len(leaks) != 0 {
		t.Fatalf("boot-only host reports leaks: %v", leaks)
	}
	m := vm.Monitor()
	exec(t, eng, m, "netdev_add", map[string]string{"id": "nd", "type": "bridge", "br": "virbr0"})
	exec(t, eng, m, "device_add", map[string]string{"id": "d1", "netdev": "nd"})
	exec(t, eng, m, "hostlo_create", map[string]string{"id": "h0"})
	leaks := h.Leaks()
	if len(leaks) != 3 {
		t.Fatalf("leaks = %v, want device d1 + its netdev + hostlo h0", leaks)
	}
	exec(t, eng, m, "device_del", map[string]string{"id": "d1"})
	exec(t, eng, m, "hostlo_delete", map[string]string{"id": "h0"})
	if leaks := h.Leaks(); len(leaks) != 0 {
		t.Fatalf("leaks after teardown: %v", leaks)
	}
}
