package vmm

import (
	"testing"

	"nestless/internal/netsim"
	"nestless/internal/sim"
)

var (
	hostNet = netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24)
	gateway = netsim.IP(192, 168, 122, 1)
)

func newTestHost() (*sim.Engine, *netsim.Net, *Host) {
	eng := sim.New(1)
	eng.MaxSteps = 20_000_000
	n := netsim.NewNet(eng)
	h := NewHost(n)
	h.AddBridge("virbr0", gateway, hostNet)
	return eng, n, h
}

func TestCreateVMAndBootNIC(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web", VCPUs: 5, MemoryMB: 4096})
	vm.PlugBridgeNIC("virbr0", netsim.IP(192, 168, 122, 10), hostNet)

	var got int
	if _, err := vm.NS.BindUDP(80, func(p *netsim.Packet) { got = p.PayloadLen }); err != nil {
		t.Fatal(err)
	}
	s, _ := h.NS.BindUDP(0, nil)
	s.SendTo(netsim.IP(192, 168, 122, 10), 80, 64, nil)
	eng.Run()
	if got != 64 {
		t.Fatalf("VM received %d, want 64", got)
	}
	if len(h.VMs()) != 1 || h.VM("web") != vm {
		t.Fatal("VM registry wrong")
	}
}

func TestDuplicateVMErrors(t *testing.T) {
	_, _, h := newTestHost()
	if _, err := h.CreateVM(VMConfig{Name: "x"}); err != nil {
		t.Fatalf("first CreateVM: %v", err)
	}
	if _, err := h.CreateVM(VMConfig{Name: "x"}); err == nil {
		t.Error("duplicate VM did not error")
	}
	if _, err := h.CreateVM(VMConfig{}); err == nil {
		t.Error("unnamed VM did not error")
	}
	if len(h.VMs()) != 1 {
		t.Errorf("rejected VMs leaked into the registry: %d", len(h.VMs()))
	}
}

func TestMonitorHotplugBridgeNIC(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web", VCPUs: 5})
	m := vm.Monitor()

	var hotplugged *Device
	vm.OnHotplug = func(d *Device) { hotplugged = d }

	var mac, iface string
	m.Execute("netdev_add", map[string]string{"id": "nd1", "type": "bridge", "br": "virbr0"}, func(r Result, err error) {
		if err != nil {
			t.Fatal(err)
		}
		m.Execute("device_add", map[string]string{"id": "net1", "driver": "virtio-net", "netdev": "nd1"}, func(r Result, err error) {
			if err != nil {
				t.Fatal(err)
			}
			mac, iface = r["mac"], r["iface"]
		})
	})
	eng.Run()

	if hotplugged == nil {
		t.Fatal("guest never saw the hot-plug event")
	}
	if mac == "" || mac != hotplugged.MAC().String() {
		t.Fatalf("reply mac %q != device mac %q", mac, hotplugged.MAC())
	}
	if iface != "eth0" {
		t.Fatalf("guest iface %q, want eth0", iface)
	}
	if eng.Now() == 0 {
		t.Fatal("hot-plug consumed no management-plane time")
	}
	// The new NIC is usable: give it an address and pass traffic.
	nic := hotplugged.NIC
	nic.Guest.SetAddr(netsim.IP(192, 168, 122, 20), hostNet)
	var got bool
	if _, err := vm.NS.BindUDP(99, func(p *netsim.Packet) { got = true }); err != nil {
		t.Fatal(err)
	}
	s, _ := h.NS.BindUDP(0, nil)
	s.SendTo(netsim.IP(192, 168, 122, 20), 99, 10, nil)
	eng.Run()
	if !got {
		t.Fatal("hot-plugged NIC passed no traffic")
	}
}

func TestMonitorHostloLifecycle(t *testing.T) {
	eng, _, h := newTestHost()
	vm1, _ := h.CreateVM(VMConfig{Name: "vm1"})
	vm2, _ := h.CreateVM(VMConfig{Name: "vm2"})

	plug := func(vm *VM, addr netsim.IPv4) {
		m := vm.Monitor()
		m.Execute("hostlo_create", map[string]string{"id": "hostlo0"}, nil) // idempotent across VMs? second errors, ignored
		m.Execute("netdev_add", map[string]string{"id": "ndh", "type": "hostlo", "dev": "hostlo0"}, func(_ Result, err error) {
			if err != nil {
				t.Fatal(err)
			}
			m.Execute("device_add", map[string]string{"id": "hlo", "netdev": "ndh"}, func(r Result, err error) {
				if err != nil {
					t.Fatal(err)
				}
				dev := vm.Devices()["hlo"]
				dev.NIC.Guest.SetAddr(addr, netsim.MustPrefix(netsim.IP(169, 254, 77, 0), 24))
			})
		})
	}
	plug(vm1, netsim.IP(169, 254, 77, 10))
	eng.Run()
	plug(vm2, netsim.IP(169, 254, 77, 11))
	eng.Run()

	if h.Hostlo("hostlo0") == nil || h.Hostlo("hostlo0").Queues() != 2 {
		t.Fatalf("hostlo device wrong: %+v", h.Hostlo("hostlo0"))
	}
	var got int
	if _, err := vm2.NS.BindUDP(4000, func(p *netsim.Packet) { got = p.PayloadLen }); err != nil {
		t.Fatal(err)
	}
	s, _ := vm1.NS.BindUDP(0, nil)
	s.SendTo(netsim.IP(169, 254, 77, 11), 4000, 300, nil)
	eng.Run()
	if got != 300 {
		t.Fatalf("cross-VM hostlo datagram got %d, want 300", got)
	}
}

func TestDeviceDelDetaches(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	m := vm.Monitor()
	m.Execute("netdev_add", map[string]string{"id": "nd1", "type": "bridge", "br": "virbr0"}, nil)
	eng.Run()
	m.Execute("device_add", map[string]string{"id": "net1", "netdev": "nd1"}, nil)
	eng.Run()
	if len(vm.Devices()) != 1 {
		t.Fatal("device not attached")
	}
	var delErr error
	m.Execute("device_del", map[string]string{"id": "net1"}, func(_ Result, err error) { delErr = err })
	eng.Run()
	if delErr != nil {
		t.Fatal(delErr)
	}
	if len(vm.Devices()) != 0 {
		t.Fatal("device still attached after device_del")
	}
	if vm.NS.Iface("eth0") != nil {
		t.Fatal("guest iface not removed")
	}
}

func TestMonitorErrors(t *testing.T) {
	eng, _, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	m := vm.Monitor()
	expectErr := func(cmd string, args map[string]string) {
		t.Helper()
		gotErr := false
		m.Execute(cmd, args, func(_ Result, err error) { gotErr = err != nil })
		eng.Run()
		if !gotErr {
			t.Errorf("%s %v: expected error", cmd, args)
		}
	}
	expectErr("bogus", nil)
	expectErr("netdev_add", map[string]string{"id": "", "type": "bridge"})
	expectErr("netdev_add", map[string]string{"id": "a", "type": "bridge", "br": "missing"})
	expectErr("netdev_add", map[string]string{"id": "a", "type": "hostlo", "dev": "missing"})
	expectErr("netdev_add", map[string]string{"id": "a", "type": "weird"})
	expectErr("device_add", map[string]string{"id": "d", "netdev": "missing"})
	expectErr("device_add", map[string]string{"id": "", "netdev": "x"})
	expectErr("device_del", map[string]string{"id": "missing"})
	expectErr("hostlo_create", map[string]string{"id": ""})
	// Duplicate netdev id.
	m.Execute("netdev_add", map[string]string{"id": "nd", "type": "bridge", "br": "virbr0"}, nil)
	eng.Run()
	expectErr("netdev_add", map[string]string{"id": "nd", "type": "bridge", "br": "virbr0"})
	// Unsupported driver.
	expectErr("device_add", map[string]string{"id": "d", "driver": "e1000", "netdev": "nd"})
}

func TestEntityCPUSharesLaneButBillsSeparately(t *testing.T) {
	_, n, h := newTestHost()
	vm, _ := h.CreateVM(VMConfig{Name: "web"})
	pod := vm.EntityCPU("app/pod1")
	if pod.Station != vm.CPU.Station {
		t.Fatal("pod CPU must share the VM's vCPU lane")
	}
	pod.Run(0 /* Usr */, 1000, nil)
	h.Eng.Run()
	if n.Acct.Usage("app/pod1").Total() == 0 {
		t.Fatal("pod entity not billed")
	}
	if n.Acct.Usage("vm/web").Total() == 0 {
		t.Fatal("VM guest time not mirrored")
	}
}
