package vmm

import (
	"fmt"

	"nestless/internal/cpuacct"
	"nestless/internal/hostlo"
	"nestless/internal/netsim"
	"nestless/internal/virtio"
)

// Monitor is the VM's QMP-like side-channel management interface. All
// commands are asynchronous: they consume simulated management-plane
// time and deliver their result through a callback, like QMP over a
// UNIX socket.
//
// Supported commands:
//
//	netdev_add    id=<nd> type=bridge br=<bridge>
//	netdev_add    id=<nd> type=hostlo dev=<hostlo>
//	netdev_del    id=<nd>
//	hostlo_create id=<dev>                       (host-wide, any VM's monitor)
//	hostlo_delete id=<dev>                       (host-wide, fails while queues remain)
//	device_add    id=<dev> driver=virtio-net netdev=<nd>
//	device_del    id=<dev>
//	query-netdev
//
// device_add replies with the new device's "mac" — the identifier the
// orchestrator forwards to its in-VM agent (§3.1 step 3, §4.1 step 3).
//
// Every command is a fault point ("qmp/<cmd>"): the injector can fail
// it outright or stall its dispatch, which is how the chaos suite
// exercises the orchestrator's retry/timeout/fallback paths.
type Monitor struct {
	vm *VM
}

// Result is a command reply payload.
type Result map[string]string

// Execute dispatches one management command. reply may be nil.
func (m *Monitor) Execute(cmd string, args map[string]string, reply func(Result, error)) {
	vm := m.vm
	h := vm.Host
	// Control-plane telemetry: one span per QMP command, from dispatch to
	// reply (OpBegin is nil-safe when telemetry is off).
	op := h.Net.Rec.OpBegin("vmm/"+vm.Name, cmd)
	done := func(r Result, err error) {
		op.End(err)
		if reply != nil {
			reply(r, err)
		}
	}
	rng := h.Eng.Rand()
	inj := h.Net.Faults
	dispatch := func() {
		if err := inj.OpFail("qmp/" + cmd); err != nil {
			done(nil, err)
			return
		}
		switch cmd {
		case "netdev_add":
			done(m.netdevAdd(args))
		case "netdev_del":
			done(m.netdevDel(args))
		case "hostlo_create":
			done(m.hostloCreate(args))
		case "hostlo_delete":
			done(m.hostloDelete(args))
		case "device_add":
			m.deviceAdd(args, done)
		case "device_del":
			done(m.deviceDel(args))
		case "query-netdev":
			r := Result{}
			for id, nd := range vm.netdevs {
				r[id] = nd.kind
			}
			done(r, nil)
		default:
			done(nil, fmt.Errorf("vmm: unknown command %q", cmd))
		}
	}
	// QMP dispatch costs a little host CPU before the command runs.
	h.CPU.Run(cpuacct.Sys, jittered(rng, qmpDispatchMean, qmpDispatchJitter), func() {
		if d := inj.OpDelay("qmp/" + cmd); d > 0 {
			// The monitor socket wedges: the command sits undispatched
			// long enough for the orchestrator's watchdog to matter.
			h.Eng.After(d, dispatch)
			return
		}
		dispatch()
	})
}

func (m *Monitor) netdevAdd(args map[string]string) (Result, error) {
	vm := m.vm
	id := args["id"]
	if id == "" {
		return nil, fmt.Errorf("vmm: netdev_add needs id")
	}
	if _, dup := vm.netdevs[id]; dup {
		return nil, fmt.Errorf("vmm: netdev %q exists", id)
	}
	switch args["type"] {
	case "bridge":
		br := args["br"]
		if vm.Host.Bridge(br) == nil {
			return nil, fmt.Errorf("vmm: no bridge %q", br)
		}
		vm.netdevs[id] = &netdevSpec{id: id, kind: "bridge", bridge: br}
	case "hostlo":
		dev := args["dev"]
		if vm.Host.Hostlo(dev) == nil {
			return nil, fmt.Errorf("vmm: no hostlo device %q", dev)
		}
		vm.netdevs[id] = &netdevSpec{id: id, kind: "hostlo", hostloD: dev}
	default:
		return nil, fmt.Errorf("vmm: unknown netdev type %q", args["type"])
	}
	return Result{"id": id}, nil
}

func (m *Monitor) netdevDel(args map[string]string) (Result, error) {
	vm := m.vm
	id := args["id"]
	if _, ok := vm.netdevs[id]; !ok {
		return nil, fmt.Errorf("vmm: no netdev %q", id)
	}
	for _, d := range vm.devices {
		if d.Netdev == id {
			return nil, fmt.Errorf("vmm: netdev %q in use by device %q", id, d.ID)
		}
	}
	delete(vm.netdevs, id)
	return Result{"id": id}, nil
}

func (m *Monitor) hostloCreate(args map[string]string) (Result, error) {
	h := m.vm.Host
	id := args["id"]
	if id == "" {
		return nil, fmt.Errorf("vmm: hostlo_create needs id")
	}
	if _, dup := h.hostlos[id]; dup {
		return nil, fmt.Errorf("vmm: hostlo %q exists", id)
	}
	dev := hostlo.New(id, h.CPU, h.Net.Costs)
	dev.Faults = h.Net.Faults
	h.hostlos[id] = dev
	return Result{"id": id}, nil
}

func (m *Monitor) hostloDelete(args map[string]string) (Result, error) {
	h := m.vm.Host
	id := args["id"]
	dev, ok := h.hostlos[id]
	if !ok {
		return nil, fmt.Errorf("vmm: no hostlo %q", id)
	}
	if n := dev.Queues(); n > 0 {
		return nil, fmt.Errorf("vmm: hostlo %q still has %d queues", id, n)
	}
	delete(h.hostlos, id)
	return Result{"id": id}, nil
}

// deviceAdd hot-plugs a virtio-net device: QEMU attach work on the host,
// then the guest's PCI probe and driver bring-up, then the guest OS
// hot-plug notification fires and the reply carries the MAC.
func (m *Monitor) deviceAdd(args map[string]string, done func(Result, error)) {
	vm := m.vm
	h := vm.Host
	id := args["id"]
	if id == "" {
		done(nil, fmt.Errorf("vmm: device_add needs id"))
		return
	}
	if _, dup := vm.devices[id]; dup {
		done(nil, fmt.Errorf("vmm: device %q exists", id))
		return
	}
	if d := args["driver"]; d != "" && d != "virtio-net" {
		done(nil, fmt.Errorf("vmm: unsupported driver %q", d))
		return
	}
	nd, ok := vm.netdevs[args["netdev"]]
	if !ok {
		done(nil, fmt.Errorf("vmm: no netdev %q", args["netdev"]))
		return
	}

	rng := h.Eng.Rand()
	h.CPU.Run(cpuacct.Sys, jittered(rng, qemuAttachMean, qemuAttachJitter), func() {
		vhost := h.Net.NewCPU("vhost-"+vm.Name+"-"+id, 1, "host", "")
		vhost.Station.SetWakeup(WorkerWakeMean, WorkerWakeJitter, WakeThreshold)
		dev := &Device{ID: id, Netdev: nd.id}
		cfg := virtio.Config{
			Name:    vm.nextIface(),
			MAC:     h.Net.NewMAC(),
			GuestNS: vm.NS,
			Vhost:   vhost,
		}
		switch nd.kind {
		case "bridge":
			b := virtio.NewTAPBackend(h.NS, h.nextTAP())
			cfg.Backend = b
			dev.NIC = virtio.New(cfg)
			b.Bind(dev.NIC)
			h.Bridge(nd.bridge).AddPort(b.TAP)
		case "hostlo":
			b := hostlo.NewBackend(h.Hostlo(nd.hostloD))
			cfg.Backend = b
			dev.NIC = virtio.New(cfg)
			b.Bind(vm.Name, dev.NIC)
			dev.Hostlo = b
		}
		vm.devices[id] = dev
		// Guest side: PCI rescan + virtio driver probe on the vCPU.
		vm.CPU.Run(cpuacct.Sys, jittered(rng, guestProbeMean, guestProbeJitter), func() {
			dev.NIC.Guest.Up = true
			if vm.OnHotplug != nil {
				vm.OnHotplug(dev)
			}
			done(Result{"id": id, "mac": dev.MAC().String(), "iface": dev.NIC.Guest.Name}, nil)
		})
	})
}

func (m *Monitor) deviceDel(args map[string]string) (Result, error) {
	vm := m.vm
	id := args["id"]
	dev, ok := vm.devices[id]
	if !ok {
		return nil, fmt.Errorf("vmm: no device %q", id)
	}
	delete(vm.devices, id)
	// Detach host side.
	switch b := dev.NIC.Backend().(type) {
	case *virtio.TAPBackend:
		for _, br := range vm.Host.bridges {
			br.RemovePort(b.TAP)
		}
		vm.Host.NS.RemoveIface(b.TAP.Name)
	case *hostlo.Backend:
		b.Unbind()
	}
	// Remove the guest interface from whichever namespace holds it now.
	if ns := dev.NIC.Guest.NS; ns != nil {
		ns.RemoveIface(dev.NIC.Guest.Name)
	}
	// This control plane pairs exactly one netdev with each hot-plugged
	// device, so unplugging the device also retires its backend spec —
	// otherwise every release would need a follow-up netdev_del and a
	// mid-teardown fault could strand the spec forever.
	delete(vm.netdevs, dev.Netdev)
	return Result{"id": id}, nil
}

// PlugBridgeNIC is the synchronous convenience used at VM boot to attach
// the primary NIC (the paper's VMs start with one bridge-backed virtio
// NIC). It performs the same wiring as netdev_add + device_add without
// management-plane latency, configures the address, and installs the
// default route via the bridge gateway.
func (vm *VM) PlugBridgeNIC(bridgeName string, addr netsim.IPv4, subnet netsim.Prefix) *Device {
	h := vm.Host
	br := h.Bridge(bridgeName)
	if br == nil {
		panic(fmt.Sprintf("vmm: no bridge %q", bridgeName))
	}
	id := fmt.Sprintf("boot-%s", vm.nextBootID())
	vhost := h.Net.NewCPU("vhost-"+vm.Name+"-"+id, 1, "host", "")
	vhost.Station.SetWakeup(WorkerWakeMean, WorkerWakeJitter, WakeThreshold)
	b := virtio.NewTAPBackend(h.NS, h.nextTAP())
	nic := virtio.New(virtio.Config{
		Name:    vm.nextIface(),
		MAC:     h.Net.NewMAC(),
		GuestNS: vm.NS,
		Vhost:   vhost,
		Backend: b,
	})
	b.Bind(nic)
	br.AddPort(b.TAP)
	nic.Guest.SetAddr(addr, subnet)
	nic.Guest.Up = true
	vm.NS.AddRoute(netsim.Route{
		Dst: netsim.MustPrefix(netsim.IPv4{}, 0),
		Via: br.Iface().Addr,
		Dev: nic.Guest.Name,
	})
	dev := &Device{ID: id, Netdev: "boot", NIC: nic}
	vm.devices[id] = dev
	return dev
}

func (vm *VM) nextBootID() string {
	return fmt.Sprintf("%s-%d", vm.Name, len(vm.devices))
}
