// Package mempipe models the shared-memory substrate the paper's §4.3.2
// adopts for efficient intra-pod communication across co-resident VMs:
// MemPipe (Zhang & Liu), which delivers data below the IP level through
// a shared-memory ring, transparently to the applications.
//
// A Pipe is a pair of ring buffers in host memory shared by two VMs.
// Sending costs the producer a per-byte copy into the ring plus a
// doorbell (an event channel kick); receiving costs the consumer the
// copy out. No vhost, no bridge, no netfilter — which is why it is far
// cheaper than any NIC path, and why the paper cites it as the natural
// companion to Hostlo for bulk intra-pod data.
package mempipe

import (
	"fmt"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/sim"
)

// Copy and notification costs.
var (
	copyCost = netsim.StageCost{PerPacket: 400 * time.Nanosecond, PerByteNs: 0.08}
	doorbell = netsim.StageCost{PerPacket: 900 * time.Nanosecond} // eventfd kick + wakeup
)

// Pipe is one bidirectional shared-memory channel between two VMs.
type Pipe struct {
	Name string
	eng  *sim.Engine
	a, b *Endpoint
}

// Endpoint is one VM's side of the pipe.
type Endpoint struct {
	pipe *Pipe
	peer *Endpoint
	cpu  *netsim.CPU

	ring     ringBuf
	draining bool

	// OnRecv delivers messages to the application; sentAt is when the
	// peer submitted the message.
	OnRecv func(data []byte, sentAt sim.Time)

	// Sent and Received count messages.
	Sent, Received uint64
	// Stalls counts sends that had to wait for ring space.
	Stalls uint64
}

// message is one entry in flight.
type message struct {
	data   []byte
	sentAt sim.Time
	done   func(error)
}

// ringBuf is a bounded byte-budget FIFO.
type ringBuf struct {
	capBytes  int
	usedBytes int
	queue     []message
	waiting   []message
}

// New creates a pipe with the given per-direction ring capacity; aCPU
// and bCPU are the two VMs' compute contexts.
func New(name string, eng *sim.Engine, capBytes int, aCPU, bCPU *netsim.CPU) *Pipe {
	if capBytes < 1 {
		capBytes = 64 * 1024
	}
	p := &Pipe{Name: name, eng: eng}
	p.a = &Endpoint{pipe: p, cpu: aCPU, ring: ringBuf{capBytes: capBytes}}
	p.b = &Endpoint{pipe: p, cpu: bCPU, ring: ringBuf{capBytes: capBytes}}
	p.a.peer = p.b
	p.b.peer = p.a
	return p
}

// Endpoints returns the two sides (A, B).
func (p *Pipe) Endpoints() (*Endpoint, *Endpoint) { return p.a, p.b }

// Send copies data into the ring toward the peer. When the ring is
// full the message waits (backpressure) and done fires only once the
// copy completed. done may be nil.
func (e *Endpoint) Send(data []byte, done func(error)) {
	if len(data) == 0 {
		if done != nil {
			done(fmt.Errorf("mempipe: empty message"))
		}
		return
	}
	if len(data) > e.peer.ring.capBytes {
		if done != nil {
			done(fmt.Errorf("mempipe: message (%d B) exceeds ring capacity (%d B)", len(data), e.peer.ring.capBytes))
		}
		return
	}
	m := message{data: append([]byte(nil), data...), sentAt: e.pipe.eng.Now(), done: done}
	ring := &e.peer.ring
	if ring.usedBytes+len(m.data) > ring.capBytes {
		e.Stalls++
		ring.waiting = append(ring.waiting, m)
		return
	}
	e.commit(m)
}

// commit copies the message in and rings the peer's doorbell.
func (e *Endpoint) commit(m message) {
	ring := &e.peer.ring
	ring.usedBytes += len(m.data)
	ring.queue = append(ring.queue, m)
	e.Sent++
	charges := []netsim.Charge{
		{Cat: cpuacct.Usr, D: copyCost.For(len(m.data))},
		{Cat: cpuacct.Sys, D: doorbell.For(0)},
	}
	e.cpu.RunCosts(charges, func() {
		if m.done != nil {
			m.done(nil)
		}
		e.peer.drain()
	})
}

// drain consumes queued messages on the receiver's CPU.
func (e *Endpoint) drain() {
	if e.draining || len(e.ring.queue) == 0 {
		return
	}
	e.draining = true
	m := e.ring.queue[0]
	e.ring.queue = e.ring.queue[1:]
	charges := []netsim.Charge{{Cat: cpuacct.Usr, D: copyCost.For(len(m.data))}}
	e.cpu.RunCosts(charges, func() {
		e.ring.usedBytes -= len(m.data)
		e.Received++
		e.draining = false
		if e.OnRecv != nil {
			e.OnRecv(m.data, m.sentAt)
		}
		// Freed space: admit waiting senders (FIFO).
		for len(e.ring.waiting) > 0 {
			w := e.ring.waiting[0]
			if e.ring.usedBytes+len(w.data) > e.ring.capBytes {
				break
			}
			e.ring.waiting = e.ring.waiting[1:]
			e.peer.commit(w)
		}
		e.drain()
	})
}

// Pending returns bytes sitting in this endpoint's receive ring.
func (e *Endpoint) Pending() int { return e.ring.usedBytes }
