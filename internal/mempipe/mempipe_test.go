package mempipe

import (
	"bytes"
	"testing"

	"nestless/internal/netsim"
	"nestless/internal/sim"
)

func newPipe(capBytes int) (*sim.Engine, *Pipe) {
	eng := sim.New(1)
	eng.MaxSteps = 20_000_000
	w := netsim.NewNet(eng)
	a := netsim.NewCPU(eng, "vm1", 1, netsim.BillTo(w.Acct, "guest/vm1", "vm/vm1"))
	b := netsim.NewCPU(eng, "vm2", 1, netsim.BillTo(w.Acct, "guest/vm2", "vm/vm2"))
	return eng, New("pipe0", eng, capBytes, a, b)
}

func TestSendReceive(t *testing.T) {
	eng, p := newPipe(64 * 1024)
	a, b := p.Endpoints()
	var got []byte
	var rtt sim.Time
	b.OnRecv = func(data []byte, sentAt sim.Time) {
		got = data
		rtt = eng.Now() - sentAt
	}
	a.Send([]byte("hello shared memory"), nil)
	eng.Run()
	if !bytes.Equal(got, []byte("hello shared memory")) {
		t.Fatalf("received %q", got)
	}
	if rtt <= 0 {
		t.Fatal("delivery took no time")
	}
	if a.Sent != 1 || b.Received != 1 {
		t.Fatalf("counters: sent=%d received=%d", a.Sent, b.Received)
	}
}

func TestBidirectional(t *testing.T) {
	eng, p := newPipe(64 * 1024)
	a, b := p.Endpoints()
	var fromA, fromB string
	b.OnRecv = func(data []byte, _ sim.Time) {
		fromA = string(data)
		b.Send([]byte("pong"), nil)
	}
	a.OnRecv = func(data []byte, _ sim.Time) { fromB = string(data) }
	a.Send([]byte("ping"), nil)
	eng.Run()
	if fromA != "ping" || fromB != "pong" {
		t.Fatalf("exchange: %q / %q", fromA, fromB)
	}
}

func TestOrderingPreserved(t *testing.T) {
	eng, p := newPipe(1 << 20)
	a, b := p.Endpoints()
	var got []byte
	b.OnRecv = func(data []byte, _ sim.Time) { got = append(got, data[0]) }
	for i := byte(0); i < 50; i++ {
		a.Send([]byte{i}, nil)
	}
	eng.Run()
	if len(got) != 50 {
		t.Fatalf("received %d messages", len(got))
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("reordered at %d: %v", i, got)
		}
	}
}

func TestBackpressure(t *testing.T) {
	eng, p := newPipe(1024)
	a, b := p.Endpoints()
	delivered := 0
	b.OnRecv = func(data []byte, _ sim.Time) { delivered++ }
	// 10 × 512 B into a 1 KiB ring: senders must stall and resume.
	completed := 0
	for i := 0; i < 10; i++ {
		a.Send(make([]byte, 512), func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			completed++
		})
	}
	eng.Run()
	if delivered != 10 || completed != 10 {
		t.Fatalf("delivered=%d completed=%d, want 10/10", delivered, completed)
	}
	if a.Stalls == 0 {
		t.Fatal("no backpressure recorded on a tiny ring")
	}
	if b.Pending() != 0 {
		t.Fatalf("ring not drained: %d bytes", b.Pending())
	}
}

func TestOversizeAndEmptyRejected(t *testing.T) {
	eng, p := newPipe(1024)
	a, _ := p.Endpoints()
	var errBig, errEmpty error
	a.Send(make([]byte, 4096), func(err error) { errBig = err })
	a.Send(nil, func(err error) { errEmpty = err })
	eng.Run()
	if errBig == nil {
		t.Fatal("oversize message accepted")
	}
	if errEmpty == nil {
		t.Fatal("empty message accepted")
	}
}

// TestFasterThanHostlo verifies the §4.3.2 premise: shared-memory
// delivery between co-resident VMs beats any NIC-based path, which is
// why MemPipe complements Hostlo for bulk intra-pod data.
func TestFasterThanHostlo(t *testing.T) {
	eng, p := newPipe(1 << 20)
	a, b := p.Endpoints()
	var rtt sim.Time
	b.OnRecv = func(data []byte, sentAt sim.Time) { rtt = eng.Now() - sentAt }
	a.Send(make([]byte, 1024), nil)
	eng.Run()
	// One-way 1 KiB via mempipe should land well under the ~20 µs
	// one-way Hostlo path (Fig. 10b ÷ 2).
	if rtt > 10_000 { // 10 µs
		t.Fatalf("mempipe one-way %v, want < 10µs", rtt)
	}
}
