package virtfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/sim"
)

type rig struct {
	eng  *sim.Engine
	acct *netsim.Net
	fs   *FS
	a, b *Mount // two guests sharing the filesystem
}

func newRig() *rig {
	eng := sim.New(1)
	eng.MaxSteps = 20_000_000
	w := netsim.NewNet(eng)
	host := netsim.NewCPU(eng, "host", 1, netsim.BillTo(w.Acct, "host", ""))
	fs := New("vol0", host)
	a := fs.Mount("vm1", netsim.NewCPU(eng, "vm1", 1, netsim.BillTo(w.Acct, "guest/vm1", "vm/vm1")))
	b := fs.Mount("vm2", netsim.NewCPU(eng, "vm2", 1, netsim.BillTo(w.Acct, "guest/vm2", "vm/vm2")))
	return &rig{eng: eng, acct: w, fs: fs, a: a, b: b}
}

// must drives one async op to completion.
func (r *rig) must(t *testing.T, op func(done func(error))) {
	t.Helper()
	var got error
	ran := false
	op(func(err error) { got, ran = err, true })
	r.eng.Run()
	if !ran {
		t.Fatal("operation never completed")
	}
	if got != nil {
		t.Fatal(got)
	}
}

func TestCrossGuestConsistency(t *testing.T) {
	r := newRig()
	// Guest A writes; guest B must observe it (cache=none coherence).
	r.must(t, func(done func(error)) { r.a.Mkdir("data", done) })
	r.must(t, func(done func(error)) { r.a.Write("data/shared.txt", []byte("from-vm1"), done) })

	var got []byte
	r.b.Read("data/shared.txt", func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = data
	})
	r.eng.Run()
	if !bytes.Equal(got, []byte("from-vm1")) {
		t.Fatalf("guest B read %q", got)
	}

	// B overwrites; A sees the new version.
	r.must(t, func(done func(error)) { r.b.Write("data/shared.txt", []byte("from-vm2"), done) })
	r.a.Read("data/shared.txt", func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = data
	})
	r.eng.Run()
	if !bytes.Equal(got, []byte("from-vm2")) {
		t.Fatalf("guest A read %q after overwrite", got)
	}
}

func TestListAndRemove(t *testing.T) {
	r := newRig()
	r.must(t, func(done func(error)) { r.a.Mkdir("d", done) })
	r.must(t, func(done func(error)) { r.a.Write("d/x", []byte("1"), done) })
	r.must(t, func(done func(error)) { r.a.Write("d/y", []byte("2"), done) })

	var names []string
	r.b.List("d", func(n []string, err error) {
		if err != nil {
			t.Fatal(err)
		}
		names = n
	})
	r.eng.Run()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("List = %v", names)
	}

	// Non-empty directory cannot be removed.
	var rmErr error
	r.a.Remove("d", func(err error) { rmErr = err })
	r.eng.Run()
	if rmErr == nil {
		t.Fatal("removed non-empty directory")
	}
	r.must(t, func(done func(error)) { r.a.Remove("d/x", done) })
	r.must(t, func(done func(error)) { r.a.Remove("d/y", done) })
	r.must(t, func(done func(error)) { r.a.Remove("d", done) })
}

func TestErrors(t *testing.T) {
	r := newRig()
	expectErr := func(op func(done func(error))) {
		t.Helper()
		var got error
		op(func(err error) { got = err })
		r.eng.Run()
		if got == nil {
			t.Error("expected error")
		}
	}
	expectErr(func(done func(error)) { r.a.Write("missing-dir/f", []byte("x"), done) })
	expectErr(func(done func(error)) { r.a.Mkdir("", done) })
	expectErr(func(done func(error)) { r.a.Mkdir("a/../b", done) })
	expectErr(func(done func(error)) { r.a.Remove("nope", done) })
	r.must(t, func(done func(error)) { r.a.Write("f", []byte("x"), done) })
	expectErr(func(done func(error)) { r.a.Write("f/child", []byte("x"), done) })
	expectErr(func(done func(error)) { r.a.Mkdir("f", done) })
	var rerr error
	r.a.Read("nope", func(_ []byte, err error) { rerr = err })
	r.eng.Run()
	if rerr == nil {
		t.Error("read of missing file succeeded")
	}
	var lerr error
	r.a.List("f", func(_ []string, err error) { lerr = err })
	r.eng.Run()
	if lerr == nil {
		t.Error("list of a file succeeded")
	}
}

func TestOperationsTakeTimeAndBillBothSides(t *testing.T) {
	r := newRig()
	r.must(t, func(done func(error)) { r.a.Write("big", make([]byte, 256*1024), done) })
	if r.eng.Now() == 0 {
		t.Fatal("I/O consumed no virtual time")
	}
	if r.acct.Acct.Usage("guest/vm1").Of(cpuacct.Sys) == 0 {
		t.Error("no guest-side cost billed")
	}
	if r.acct.Acct.Usage("host").Of(cpuacct.Sys) == 0 {
		t.Error("no host-side cost billed")
	}
	// Large writes segment into multiple 9p messages.
	if r.fs.Ops < 4 {
		t.Errorf("Ops = %d, want several chunks", r.fs.Ops)
	}
}

// Property: write-then-read round-trips arbitrary content through any
// valid path.
func TestWriteReadRoundTripProperty(t *testing.T) {
	prop := func(data []byte, nameSel uint8) bool {
		r := newRig()
		name := []string{"a", "file.txt", "x-1_2", "UPPER"}[int(nameSel)%4]
		ok := true
		r.a.Write(name, data, func(err error) { ok = err == nil })
		r.eng.Run()
		if !ok {
			return false
		}
		var got []byte
		r.b.Read(name, func(d []byte, err error) {
			ok = err == nil
			got = d
		})
		r.eng.Run()
		return ok && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
