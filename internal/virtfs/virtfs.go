// Package virtfs models the shared-volume substrate the paper's §4.3.1
// adopts for cross-VM pods: a VirtFS-style para-virtualized filesystem
// (Jujjuri et al., a 9p server in the VMM) that mounts the same
// host-backed tree into multiple guests. Because every operation is
// served by the host — there is no guest page cache in this mode
// (cache=none) — all mounts observe one coherent filesystem state, which
// is exactly what lets the two halves of a split pod share a volume.
//
// Operations are asynchronous and charge both sides: the guest pays the
// 9p client transaction (virtio channel), the host pays the server work
// plus per-byte copies.
package virtfs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
)

// Operation costs (9p transaction + host VFS work).
var (
	clientOp  = netsim.StageCost{PerPacket: 6 * time.Microsecond, PerByteNs: 0.4}
	serverOp  = netsim.StageCost{PerPacket: 9 * time.Microsecond, PerByteNs: 0.6}
	statCost  = netsim.StageCost{PerPacket: 4 * time.Microsecond}
	aggregate = 64 * 1024 // bytes per 9p message (msize)
)

// node is one file or directory in the host tree.
type node struct {
	name     string
	isDir    bool
	data     []byte
	children map[string]*node
	version  uint64
}

// FS is the host-backed filesystem (the VirtFS server in the VMM).
type FS struct {
	Name string
	host *netsim.CPU
	root *node

	// Ops counts served transactions.
	Ops uint64
}

// New creates an empty shared filesystem served on hostCPU.
func New(name string, hostCPU *netsim.CPU) *FS {
	return &FS{
		Name: name,
		host: hostCPU,
		root: &node{name: "/", isDir: true, children: map[string]*node{}},
	}
}

// Mount is one guest's attachment (the 9p client inside a VM or pod).
type Mount struct {
	fs  *FS
	cpu *netsim.CPU
	tag string

	// Ops counts client transactions issued through this mount.
	Ops uint64
}

// Mount attaches the filesystem for a guest whose work runs on cpu.
func (fs *FS) Mount(tag string, cpu *netsim.CPU) *Mount {
	return &Mount{fs: fs, cpu: cpu, tag: tag}
}

// split normalises a path into segments.
func split(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	segs := strings.Split(path, "/")
	for _, s := range segs {
		if s == "" || s == "." || s == ".." {
			return nil, fmt.Errorf("virtfs: invalid path segment %q", s)
		}
	}
	return segs, nil
}

// walk resolves a path to its node.
func (fs *FS) walk(path string) (*node, error) {
	segs, err := split(path)
	if err != nil {
		return nil, err
	}
	n := fs.root
	for _, s := range segs {
		if !n.isDir {
			return nil, fmt.Errorf("virtfs: %q is not a directory", n.name)
		}
		child, ok := n.children[s]
		if !ok {
			return nil, fmt.Errorf("virtfs: %q not found", path)
		}
		n = child
	}
	return n, nil
}

// transact runs one 9p round trip: client cost, then server cost, then
// the result callback on the client side.
func (m *Mount) transact(bytes int, server func() error, done func(error)) {
	m.Ops++
	m.cpu.RunCosts([]netsim.Charge{{Cat: cpuacct.Sys, D: clientOp.For(bytes)}}, func() {
		m.fs.host.RunCosts([]netsim.Charge{{Cat: cpuacct.Sys, D: serverOp.For(bytes)}}, func() {
			m.fs.Ops++
			err := server()
			m.cpu.RunCosts([]netsim.Charge{{Cat: cpuacct.Sys, D: statCost.For(0)}}, func() {
				if done != nil {
					done(err)
				}
			})
		})
	})
}

// chunked runs one transaction per msize worth of payload, modelling 9p
// message segmentation for large reads/writes.
func (m *Mount) chunked(total int, server func() error, done func(error)) {
	chunks := (total + aggregate - 1) / aggregate
	if chunks < 1 {
		chunks = 1
	}
	var step func(i int)
	step = func(i int) {
		size := aggregate
		if i == chunks-1 {
			size = total - (chunks-1)*aggregate
		}
		var fn func() error
		if i == chunks-1 {
			fn = server // the final chunk commits
		} else {
			fn = func() error { return nil }
		}
		m.transact(size, fn, func(err error) {
			if err != nil || i == chunks-1 {
				done(err)
				return
			}
			step(i + 1)
		})
	}
	step(0)
}

// Mkdir creates a directory (parents must exist).
func (m *Mount) Mkdir(path string, done func(error)) {
	m.transact(0, func() error {
		segs, err := split(path)
		if err != nil {
			return err
		}
		if len(segs) == 0 {
			return fmt.Errorf("virtfs: cannot mkdir root")
		}
		parent, err := m.fs.walk(strings.Join(segs[:len(segs)-1], "/"))
		if err != nil {
			return err
		}
		name := segs[len(segs)-1]
		if _, dup := parent.children[name]; dup {
			return fmt.Errorf("virtfs: %q exists", path)
		}
		parent.children[name] = &node{name: name, isDir: true, children: map[string]*node{}}
		return nil
	}, done)
}

// Write stores data at path, creating or truncating the file.
func (m *Mount) Write(path string, data []byte, done func(error)) {
	buf := append([]byte(nil), data...)
	m.chunked(len(buf), func() error {
		segs, err := split(path)
		if err != nil {
			return err
		}
		if len(segs) == 0 {
			return fmt.Errorf("virtfs: cannot write root")
		}
		parent, err := m.fs.walk(strings.Join(segs[:len(segs)-1], "/"))
		if err != nil {
			return err
		}
		if !parent.isDir {
			return fmt.Errorf("virtfs: parent of %q is a file", path)
		}
		name := segs[len(segs)-1]
		n, ok := parent.children[name]
		if !ok {
			n = &node{name: name}
			parent.children[name] = n
		}
		if n.isDir {
			return fmt.Errorf("virtfs: %q is a directory", path)
		}
		n.data = buf
		n.version++
		return nil
	}, done)
}

// Read returns a file's contents.
func (m *Mount) Read(path string, done func([]byte, error)) {
	var out []byte
	// Resolve the size first (stat), then pay per-byte on the transfer.
	m.transact(0, func() error {
		n, err := m.fs.walk(path)
		if err != nil {
			return err
		}
		if n.isDir {
			return fmt.Errorf("virtfs: %q is a directory", path)
		}
		out = append([]byte(nil), n.data...)
		return nil
	}, func(err error) {
		if err != nil {
			done(nil, err)
			return
		}
		m.chunked(len(out), func() error { return nil }, func(err error) {
			done(out, err)
		})
	})
}

// List returns a directory's entries, sorted.
func (m *Mount) List(path string, done func([]string, error)) {
	var out []string
	m.transact(0, func() error {
		n, err := m.fs.walk(path)
		if err != nil {
			return err
		}
		if !n.isDir {
			return fmt.Errorf("virtfs: %q is a file", path)
		}
		for name := range n.children {
			out = append(out, name)
		}
		sort.Strings(out)
		return nil
	}, func(err error) { done(out, err) })
}

// Remove deletes a file or empty directory.
func (m *Mount) Remove(path string, done func(error)) {
	m.transact(0, func() error {
		segs, err := split(path)
		if err != nil {
			return err
		}
		if len(segs) == 0 {
			return fmt.Errorf("virtfs: cannot remove root")
		}
		parent, err := m.fs.walk(strings.Join(segs[:len(segs)-1], "/"))
		if err != nil {
			return err
		}
		name := segs[len(segs)-1]
		n, ok := parent.children[name]
		if !ok {
			return fmt.Errorf("virtfs: %q not found", path)
		}
		if n.isDir && len(n.children) > 0 {
			return fmt.Errorf("virtfs: %q not empty", path)
		}
		delete(parent.children, name)
		return nil
	}, done)
}
