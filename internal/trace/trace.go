// Package trace generates synthetic cluster workloads with the shape of
// the Google cluster traces the paper's Hostlo simulation consumes (§5.3.1,
// [29]): users own jobs (pods) made of tasks (containers) whose CPU and
// memory requests are expressed relative to the largest machine, with
// heavy-tailed task counts and sizes — many tiny single-task jobs, a few
// wide or resource-hungry ones.
//
// The real 2011 trace is proprietary-formatted but publicly documented;
// this generator reproduces its documented marginals (task count and
// request-size tails) with a seeded deterministic sampler, which is what
// the packing experiment actually exercises.
//
// Three packages say "trace" and mean different things:
//
//   - trace (this package) GENERATES synthetic workloads in memory —
//     no files involved.
//   - ctrace READS recorded cluster-trace FILES (task_events CSV or
//     pod-level JSONL, gzipped or not) as a streaming event source, and
//     writes them back (cmd/ctracegen).
//   - telemetry WRITES Chrome trace-event dumps of a simulation run —
//     the -trace out.json flag on every cmd/ tool names that OUTPUT;
//     the replay INPUT flag is -replay.
package trace

import (
	"fmt"
	"time"

	"nestless/internal/sim"
)

// Container is one task: requests relative to the largest machine
// (1.0 = all 96 vCPUs / 384 GB of an m5.24xlarge).
type Container struct {
	CPU float64
	Mem float64
}

// Pod is one job: the co-scheduled set of containers, plus its churn
// timing when the generator's churn knobs are enabled. The zero timing
// (Arrival 0, Lifetime 0) is the static population: the pod is present
// at the start of the simulation and never departs.
type Pod struct {
	ID         string
	Containers []Container

	// Arrival is when the pod enters the cluster (virtual time since
	// simulation start). Zero = present at t=0.
	Arrival time.Duration
	// Lifetime is how long the pod runs once scheduled. Zero = forever.
	Lifetime time.Duration
}

// TotalCPU sums the pod's CPU requests.
func (p Pod) TotalCPU() float64 {
	var t float64
	for _, c := range p.Containers {
		t += c.CPU
	}
	return t
}

// TotalMem sums the pod's memory requests.
func (p Pod) TotalMem() float64 {
	var t float64
	for _, c := range p.Containers {
		t += c.Mem
	}
	return t
}

// User is one cloud tenant with their pods.
type User struct {
	ID   int
	Pods []Pod
}

// GenConfig parameterises the generator.
type GenConfig struct {
	Seed  int64
	Users int // the paper's simulation covers 492 users

	// MeanPodsPerUser shapes the per-user job count (geometric-ish).
	MeanPodsPerUser float64
	// HeavyUserFraction of users run chunky multi-container pods that
	// suffer VM-boundary fragmentation — the population Hostlo helps.
	HeavyUserFraction float64
	// WhaleFraction of users run very large fleets (hundreds of pods),
	// the trace's handful of dominant tenants; they produce the large
	// absolute savings the paper reports.
	WhaleFraction float64

	// Churn knobs. Both zero (the default) keeps the population static —
	// byte-identical to the generator without churn, because the timing
	// sampler draws from its own RNG stream and is never consulted.
	//
	// MeanArrivalGap staggers each user's pods over time as a seeded
	// Poisson process with this mean inter-arrival gap (first pod
	// included: arrivals start at one gap sample, not at zero).
	MeanArrivalGap time.Duration
	// MeanLifetime gives each pod a heavy-tailed (Pareto, α = 1.5)
	// lifetime with this mean; pods depart after running that long.
	MeanLifetime time.Duration
}

// Churn reports whether the config generates a dynamic population.
func (c GenConfig) Churn() bool {
	return c.MeanArrivalGap > 0 || c.MeanLifetime > 0
}

// DefaultConfig mirrors the paper's simulation scale.
func DefaultConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:              seed,
		Users:             492,
		MeanPodsPerUser:   6,
		HeavyUserFraction: 0.06,
		WhaleFraction:     0.012,
	}
}

// Generate produces the user population. Deterministic per config.
func Generate(cfg GenConfig) []User {
	rng := sim.NewRand(cfg.Seed)
	users := make([]User, cfg.Users)
	for i := range users {
		heavy := rng.Float64() < cfg.HeavyUserFraction
		nPods := 1 + int(rng.Exp(cfg.MeanPodsPerUser-1))
		if nPods > 60 {
			nPods = 60
		}
		if rng.Float64() < cfg.WhaleFraction {
			heavy = true
			nPods = 150 + rng.Intn(250)
		}
		pods := make([]Pod, 0, nPods)
		for j := 0; j < nPods; j++ {
			pods = append(pods, genPod(rng, fmt.Sprintf("u%d-p%d", i, j), heavy))
		}
		users[i] = User{ID: i, Pods: pods}
	}
	if cfg.Churn() {
		sampleChurn(cfg, users)
	}
	return users
}

// churnSeedSalt decouples the timing stream from the shape stream: the
// churn sampler is seeded independently, so enabling churn changes
// arrival/lifetime fields only — the generated shapes stay byte-
// identical to the static population at the same seed.
const churnSeedSalt = 0x5f3759df

// sampleChurn stamps arrival times and lifetimes onto an already-shaped
// population. Arrivals are a per-user Poisson process (exponential
// gaps); lifetimes are Pareto with α = 1.5, whose mean is three times
// the scale parameter — the heavy tail the cluster traces document:
// most pods are short-lived, a few run essentially forever.
func sampleChurn(cfg GenConfig, users []User) {
	rng := sim.NewRand(cfg.Seed ^ churnSeedSalt)
	const alpha = 1.5
	for i := range users {
		var at time.Duration
		for j := range users[i].Pods {
			p := &users[i].Pods[j]
			if cfg.MeanArrivalGap > 0 {
				at += time.Duration(rng.Exp(float64(cfg.MeanArrivalGap)))
				p.Arrival = at
			}
			if cfg.MeanLifetime > 0 {
				xm := float64(cfg.MeanLifetime) * (alpha - 1) / alpha
				p.Lifetime = time.Duration(rng.Pareto(xm, alpha))
			}
		}
	}
}

// genPod samples one pod. Light pods mirror the trace's bulk: one to a
// few tiny tasks. Heavy pods are the wide/latency-insensitive services:
// several containers whose sum approaches or exceeds mid-size VMs, which
// is where whole-pod placement fragments resources.
func genPod(rng *sim.Rand, id string, heavy bool) Pod {
	var n int
	var cpuScale float64
	if heavy {
		n = 3 + rng.Intn(6) // 3..8 containers
		cpuScale = 0.045
	} else {
		n = 1 + rng.Intn(2) // 1..2 containers
		cpuScale = 0.004
	}
	ctrs := make([]Container, n)
	var sumCPU, sumMem float64
	for k := range ctrs {
		// Pareto tails as documented for the trace's request sizes.
		cpu := clamp(rng.Pareto(cpuScale, 1.6), 0.001, 0.5)
		mem := clamp(cpu*rng.Uniform(0.6, 1.8), 0.001, 0.5)
		ctrs[k] = Container{CPU: round4(cpu), Mem: round4(mem)}
		sumCPU += ctrs[k].CPU
		sumMem += ctrs[k].Mem
	}
	// A pod must fit the largest machine under whole-pod placement (as
	// every job in the source trace fits its biggest cell machines).
	if limit := 0.95; sumCPU > limit || sumMem > limit {
		scale := limit / max2(sumCPU, sumMem)
		for k := range ctrs {
			ctrs[k].CPU = round4(ctrs[k].CPU * scale)
			ctrs[k].Mem = round4(ctrs[k].Mem * scale)
		}
	}
	return Pod{ID: id, Containers: ctrs}
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func round4(v float64) float64 {
	return float64(int(v*10000+0.5)) / 10000
}

// Stats summarises a generated population (for tests and reports).
type Stats struct {
	Users, Pods, Containers int
	MaxPodCPU               float64
	MeanPodCPU              float64
}

// Summarize computes population statistics.
func Summarize(users []User) Stats {
	var s Stats
	s.Users = len(users)
	var cpuSum float64
	for _, u := range users {
		s.Pods += len(u.Pods)
		for _, p := range u.Pods {
			s.Containers += len(p.Containers)
			c := p.TotalCPU()
			cpuSum += c
			if c > s.MaxPodCPU {
				s.MaxPodCPU = c
			}
		}
	}
	if s.Pods > 0 {
		s.MeanPodCPU = cpuSum / float64(s.Pods)
	}
	return s
}
