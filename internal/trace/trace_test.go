package trace

import (
	"fmt"
	"hash/fnv"
	"testing"
	"testing/quick"
	"time"
)

// popHash digests a population's shape (IDs and requests, not churn
// timing) so tests can pin byte-identity across generator changes.
func popHash(users []User) uint64 {
	h := fnv.New64a()
	for _, u := range users {
		fmt.Fprintf(h, "u%d:", u.ID)
		for _, p := range u.Pods {
			fmt.Fprintf(h, "%s[", p.ID)
			for _, c := range p.Containers {
				fmt.Fprintf(h, "%.4f,%.4f;", c.CPU, c.Mem)
			}
			fmt.Fprint(h, "]")
		}
	}
	return h.Sum64()
}

// TestGenerateStaticPinned pins the churn-disabled generator to the
// exact populations it produced before churn existed: adding the
// arrival/lifetime sampler must not perturb a single request.
func TestGenerateStaticPinned(t *testing.T) {
	golden := map[int64]uint64{
		1:  0x9d0f9a2559d9befc,
		42: 0x9f31b546e741a928,
	}
	for seed, want := range golden {
		users := Generate(DefaultConfig(seed))
		if got := popHash(users); got != want {
			t.Errorf("seed %d: population hash %#x, want %#x — the static generator output changed", seed, got, want)
		}
		for _, u := range users {
			for _, p := range u.Pods {
				if p.Arrival != 0 || p.Lifetime != 0 {
					t.Fatalf("seed %d: churn disabled but pod %s has Arrival=%v Lifetime=%v", seed, p.ID, p.Arrival, p.Lifetime)
				}
			}
		}
	}
}

// TestGenerateChurnPreservesShape: enabling churn stamps timing only —
// the pod shapes stay byte-identical to the static population.
func TestGenerateChurnPreservesShape(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.MeanArrivalGap = 2 * time.Minute
	cfg.MeanLifetime = time.Hour
	churned := Generate(cfg)
	if got, want := popHash(churned), uint64(0x9f31b546e741a928); got != want {
		t.Fatalf("churn perturbed the population shape: hash %#x, want %#x", got, want)
	}
	arrivals, lifetimes := 0, 0
	for _, u := range churned {
		var prev time.Duration
		for _, p := range u.Pods {
			if p.Arrival < prev {
				t.Fatalf("user %d: arrivals not monotone (%v after %v)", u.ID, p.Arrival, prev)
			}
			if p.Arrival <= 0 {
				t.Fatalf("user %d pod %s: non-positive arrival %v", u.ID, p.ID, p.Arrival)
			}
			if p.Lifetime <= 0 {
				t.Fatalf("user %d pod %s: non-positive lifetime %v", u.ID, p.ID, p.Lifetime)
			}
			prev = p.Arrival
			arrivals++
			lifetimes++
		}
	}
	if arrivals == 0 || lifetimes == 0 {
		t.Fatal("churn produced no timing samples")
	}
	// Same config, same timing: the churn sampler is seeded.
	again := Generate(cfg)
	for i := range churned {
		for j := range churned[i].Pods {
			a, b := churned[i].Pods[j], again[i].Pods[j]
			if a.Arrival != b.Arrival || a.Lifetime != b.Lifetime {
				t.Fatalf("churn timing not deterministic at user %d pod %d", i, j)
			}
		}
	}
}

// TestGenerateChurnHeavyTail: the lifetime distribution must be heavy-
// tailed — max far above mean — and the realized mean near the knob.
func TestGenerateChurnHeavyTail(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.MeanLifetime = time.Hour
	var sum, maxL time.Duration
	n := 0
	for _, u := range Generate(cfg) {
		for _, p := range u.Pods {
			sum += p.Lifetime
			if p.Lifetime > maxL {
				maxL = p.Lifetime
			}
			n++
		}
	}
	mean := sum / time.Duration(n)
	if mean < cfg.MeanLifetime/3 || mean > 3*cfg.MeanLifetime {
		t.Errorf("realized mean lifetime %v far from knob %v", mean, cfg.MeanLifetime)
	}
	if maxL < 5*mean {
		t.Errorf("tail too light: max %v < 5×mean %v", maxL, mean)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(1))
	b := Generate(DefaultConfig(1))
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		if len(a[i].Pods) != len(b[i].Pods) {
			t.Fatalf("user %d pod counts differ", i)
		}
		for j := range a[i].Pods {
			for k := range a[i].Pods[j].Containers {
				if a[i].Pods[j].Containers[k] != b[i].Pods[j].Containers[k] {
					t.Fatal("same seed diverged")
				}
			}
		}
	}
	c := Generate(DefaultConfig(2))
	if len(c) == len(a) && len(c[0].Pods) == len(a[0].Pods) && c[0].Pods[0].TotalCPU() == a[0].Pods[0].TotalCPU() {
		t.Error("different seeds produced suspiciously identical output")
	}
}

func TestGeneratePopulationShape(t *testing.T) {
	users := Generate(DefaultConfig(42))
	s := Summarize(users)
	if s.Users != 492 {
		t.Fatalf("users = %d, want 492", s.Users)
	}
	if s.Pods < 492 {
		t.Fatalf("pods = %d, want at least one per user", s.Pods)
	}
	if s.Containers < s.Pods {
		t.Fatal("containers < pods")
	}
	// Heavy-tailed: mean pod far below max pod.
	if s.MaxPodCPU < 4*s.MeanPodCPU {
		t.Errorf("tail too light: max=%.3f mean=%.3f", s.MaxPodCPU, s.MeanPodCPU)
	}
}

// Property: every pod fits the largest machine (whole-pod placement must
// be feasible), and every request is positive.
func TestGenerateFitsLargestMachineProperty(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := DefaultConfig(seed)
		cfg.Users = 40
		for _, u := range Generate(cfg) {
			for _, p := range u.Pods {
				if p.TotalCPU() > 1.0 || p.TotalMem() > 1.0 {
					return false
				}
				for _, c := range p.Containers {
					if c.CPU <= 0 || c.Mem <= 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPodTotals(t *testing.T) {
	p := Pod{Containers: []Container{{CPU: 0.1, Mem: 0.2}, {CPU: 0.3, Mem: 0.1}}}
	if p.TotalCPU() != 0.4 {
		t.Fatalf("TotalCPU = %v", p.TotalCPU())
	}
	if got := p.TotalMem(); got < 0.2999 || got > 0.3001 {
		t.Fatalf("TotalMem = %v", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Users != 0 || s.MeanPodCPU != 0 {
		t.Fatal("empty summary wrong")
	}
}
