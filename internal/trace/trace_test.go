package trace

import (
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(1))
	b := Generate(DefaultConfig(1))
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		if len(a[i].Pods) != len(b[i].Pods) {
			t.Fatalf("user %d pod counts differ", i)
		}
		for j := range a[i].Pods {
			for k := range a[i].Pods[j].Containers {
				if a[i].Pods[j].Containers[k] != b[i].Pods[j].Containers[k] {
					t.Fatal("same seed diverged")
				}
			}
		}
	}
	c := Generate(DefaultConfig(2))
	if len(c) == len(a) && len(c[0].Pods) == len(a[0].Pods) && c[0].Pods[0].TotalCPU() == a[0].Pods[0].TotalCPU() {
		t.Error("different seeds produced suspiciously identical output")
	}
}

func TestGeneratePopulationShape(t *testing.T) {
	users := Generate(DefaultConfig(42))
	s := Summarize(users)
	if s.Users != 492 {
		t.Fatalf("users = %d, want 492", s.Users)
	}
	if s.Pods < 492 {
		t.Fatalf("pods = %d, want at least one per user", s.Pods)
	}
	if s.Containers < s.Pods {
		t.Fatal("containers < pods")
	}
	// Heavy-tailed: mean pod far below max pod.
	if s.MaxPodCPU < 4*s.MeanPodCPU {
		t.Errorf("tail too light: max=%.3f mean=%.3f", s.MaxPodCPU, s.MeanPodCPU)
	}
}

// Property: every pod fits the largest machine (whole-pod placement must
// be feasible), and every request is positive.
func TestGenerateFitsLargestMachineProperty(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := DefaultConfig(seed)
		cfg.Users = 40
		for _, u := range Generate(cfg) {
			for _, p := range u.Pods {
				if p.TotalCPU() > 1.0 || p.TotalMem() > 1.0 {
					return false
				}
				for _, c := range p.Containers {
					if c.CPU <= 0 || c.Mem <= 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPodTotals(t *testing.T) {
	p := Pod{Containers: []Container{{CPU: 0.1, Mem: 0.2}, {CPU: 0.3, Mem: 0.1}}}
	if p.TotalCPU() != 0.4 {
		t.Fatalf("TotalCPU = %v", p.TotalCPU())
	}
	if got := p.TotalMem(); got < 0.2999 || got > 0.3001 {
		t.Fatalf("TotalMem = %v", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Users != 0 || s.MeanPodCPU != 0 {
		t.Fatal("empty summary wrong")
	}
}
