package overlay

import (
	"testing"

	"nestless/internal/container"
	"nestless/internal/netsim"
	"nestless/internal/sim"
	"nestless/internal/vmm"
)

var (
	underlay = netsim.MustPrefix(netsim.IP(192, 168, 122, 0), 24)
	ovlNet   = netsim.MustPrefix(netsim.IP(10, 100, 0, 0), 24)
)

type ovlRig struct {
	eng  *sim.Engine
	net  *netsim.Net
	host *vmm.Host
	ovl  *Network
	ctrs []*container.Container
}

// newOvlRig builds two VMs joined to one overlay, with one container on
// each attached to it.
func newOvlRig(t *testing.T) *ovlRig {
	t.Helper()
	eng := sim.New(3)
	eng.MaxSteps = 50_000_000
	w := netsim.NewNet(eng)
	h := vmm.NewHost(w)
	h.AddBridge("virbr0", netsim.IP(192, 168, 122, 1), underlay)
	ovl := NewNetwork("ovl", ovlNet)
	r := &ovlRig{eng: eng, net: w, host: h, ovl: ovl}

	for i := 0; i < 2; i++ {
		name := "vm" + string(rune('1'+i))
		vm, _ := h.CreateVM(vmm.VMConfig{Name: name, VCPUs: 5, MemoryMB: 4096})
		addr := underlay.Host(10 + i)
		vm.PlugBridgeNIC("virbr0", addr, underlay)
		vtep, err := ovl.Join(vm, addr)
		if err != nil {
			t.Fatal(err)
		}
		e := container.NewEngine(container.Config{
			Node: name, Eng: eng, Net: w, NS: vm.NS, CPU: vm.CPU,
			EntityCPU: vm.EntityCPU, Uplink: "eth0",
			Boot: container.FastBootProfile(),
		})
		e.Pull(container.Image{Name: "app"})
		att := NewAttachment(ovl, vtep)
		var ctr *container.Container
		e.Run(container.Spec{Name: "c" + name, Image: "app", Network: att}, func(c *container.Container, err error) {
			if err != nil {
				t.Fatal(err)
			}
			ctr = c
		})
		eng.Run()
		r.ctrs = append(r.ctrs, ctr)
	}
	return r
}

func TestOverlayCrossVMDelivery(t *testing.T) {
	r := newOvlRig(t)
	a, b := r.ctrs[0], r.ctrs[1]
	if !ovlNet.Contains(a.IP) || !ovlNet.Contains(b.IP) {
		t.Fatalf("overlay IPs wrong: %v %v", a.IP, b.IP)
	}
	var got int
	if _, err := b.NS.BindUDP(7000, func(p *netsim.Packet) { got = p.PayloadLen }); err != nil {
		t.Fatal(err)
	}
	s, _ := a.NS.BindUDP(0, nil)
	s.SendTo(b.IP, 7000, 400, nil)
	r.eng.Run()
	if got != 400 {
		t.Fatalf("overlay delivery got %d, want 400", got)
	}
	if r.ovl.Carriers == 0 || r.ovl.Encapsulated == 0 {
		t.Fatal("no VXLAN carriers recorded")
	}
}

func TestOverlayRoundTripAndLearning(t *testing.T) {
	r := newOvlRig(t)
	a, b := r.ctrs[0], r.ctrs[1]
	var replies int
	if _, err := b.NS.BindUDP(7000, func(p *netsim.Packet) {
		b.NS.Iface("ovl0").NS.Net.Eng.Now()
		sock, _ := b.NS.BindUDP(0, nil)
		sock.SendTo(p.Src, p.SrcPort, 50, nil)
	}); err != nil {
		t.Fatal(err)
	}
	s, _ := a.NS.BindUDP(0, func(p *netsim.Packet) { replies++ })
	for i := 0; i < 3; i++ {
		s.SendTo(b.IP, 7000, 100, nil)
		r.eng.Run()
	}
	if replies != 3 {
		t.Fatalf("replies = %d, want 3", replies)
	}
	// After learning, unicast uses a single target: carriers stay
	// bounded (no flood explosion).
	if r.ovl.Carriers > 40 {
		t.Fatalf("carriers = %d, flooding did not converge", r.ovl.Carriers)
	}
}

func TestOverlayBatchingAmortizesCarriers(t *testing.T) {
	r := newOvlRig(t)
	a, b := r.ctrs[0], r.ctrs[1]
	if _, err := b.NS.BindUDP(7000, func(p *netsim.Packet) {}); err != nil {
		t.Fatal(err)
	}
	s, _ := a.NS.BindUDP(0, nil)
	// Warm up ARP/FDB.
	s.SendTo(b.IP, 7000, 64, nil)
	r.eng.Run()
	base := r.ovl.Carriers
	// A burst of 32 frames should ride far fewer carriers.
	for i := 0; i < 32; i++ {
		s.SendTo(b.IP, 7000, 1000, nil)
	}
	r.eng.Run()
	used := r.ovl.Carriers - base
	if used == 0 || used >= 32 {
		t.Fatalf("batching ineffective: %d carriers for 32 frames", used)
	}
}

func TestOverlayStream(t *testing.T) {
	r := newOvlRig(t)
	a, b := r.ctrs[0], r.ctrs[1]
	const total = 256 * 1024
	var got int
	if _, err := b.NS.ListenStream(8000, func(c *netsim.StreamConn) {
		c.OnMessage = func(size int, _ interface{}, _ sim.Time) { got += size }
	}); err != nil {
		t.Fatal(err)
	}
	a.NS.DialStream(b.IP, 8000, func(c *netsim.StreamConn) {
		// The overlay MTU must shrink the MSS below the ethernet MSS.
		if c.MSS() >= 1448 {
			t.Errorf("MSS = %d, want < 1448 under VXLAN", c.MSS())
		}
		for i := 0; i < 8; i++ {
			c.SendMessage(total/8, nil)
		}
	})
	r.eng.Run()
	if got != total {
		t.Fatalf("stream over overlay: got %d, want %d", got, total)
	}
}

func TestOverlayJoinValidation(t *testing.T) {
	r := newOvlRig(t)
	if _, err := r.ovl.Join(r.host.VM("vm1"), underlay.Host(10)); err == nil {
		t.Fatal("double join accepted")
	}
	if r.ovl.VTEP("vm1") == nil || r.ovl.VTEP("nope") != nil {
		t.Fatal("VTEP lookup wrong")
	}
}

func TestOverlayRelease(t *testing.T) {
	r := newOvlRig(t)
	a := r.ctrs[0]
	vtep := r.ovl.VTEP("vm1")
	ports := len(vtep.Bridge.Ports())
	att := NewAttachment(r.ovl, vtep)
	if err := att.Release(a); err != nil {
		t.Fatalf("Release = %v", err)
	}
	if len(vtep.Bridge.Ports()) >= ports {
		t.Fatal("release did not detach the container port")
	}
	// Double release is a caller bug and reports one.
	if err := att.Release(a); err == nil {
		t.Fatal("double release not rejected")
	}
}
