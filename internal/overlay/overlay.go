// Package overlay models Docker's overlay network driver — the paper's
// baseline for cross-node pod traffic ("the only currently viable
// approach for cross-node pod deployment", §5.1). Each VM runs a VTEP:
// containers attach to a per-VM overlay bridge, and frames leaving for a
// remote VM are VXLAN-encapsulated (50 B of headers) into UDP carriers
// sent over the underlay (the VM's normal NIC through the host bridge).
//
// The driver batches outgoing frames per destination VTEP, amortizing
// per-packet underlay costs — which is exactly why Docker Overlay shows
// strong throughput but poor, erratic latency in Fig. 10: throughput
// rides the batch, latency pays for it.
package overlay

import (
	"fmt"
	"time"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/vmm"
)

// VXLANPort is the UDP underlay port.
const VXLANPort = 4789

// vxlanOverhead is the encapsulation size: outer UDP/IP is accounted by
// the carrier packet itself; this is the VXLAN+inner-Ethernet framing.
const vxlanOverhead = 50

// Network is one overlay network spanning the VMs that joined it.
type Network struct {
	Name   string
	Subnet netsim.Prefix
	// Batch is the TX batching depth (frames per carrier).
	Batch int
	// FlushDelay bounds how long a partial batch may wait.
	FlushDelay time.Duration

	vteps  map[string]*VTEP // by VM name
	fdb    map[netsim.MAC]*VTEP
	ipNext int

	// Carriers and Encapsulated count underlay packets and inner frames.
	Carriers, Encapsulated uint64
}

// NewNetwork creates an overlay network with the default Docker-like
// parameters.
func NewNetwork(name string, subnet netsim.Prefix) *Network {
	return &Network{
		Name:       name,
		Subnet:     subnet,
		Batch:      16,
		FlushDelay: 60 * time.Microsecond,
		vteps:      make(map[string]*VTEP),
		fdb:        make(map[netsim.MAC]*VTEP),
		ipNext:     2,
	}
}

// AllocIP hands out the next container address on the overlay subnet.
func (n *Network) AllocIP() netsim.IPv4 {
	ip := n.Subnet.Host(n.ipNext)
	n.ipNext++
	return ip
}

// VTEP is one VM's overlay termination: the per-VM overlay bridge plus
// the VXLAN uplink into the underlay.
type VTEP struct {
	net    *Network
	vm     *vmm.VM
	Bridge *netsim.Bridge
	// UnderlayAddr is the VM's routable address carriers are sent to.
	UnderlayAddr netsim.IPv4

	vxIface *netsim.Iface
	pending map[*VTEP][]*netsim.Frame
	flushAt map[*VTEP]bool
}

// carrier is the out-of-band payload of one VXLAN UDP packet.
type carrier struct {
	frames []*netsim.Frame
}

// Join attaches a VM to the network: creates its overlay bridge, its
// VXLAN uplink, and binds the underlay UDP socket.
func (n *Network) Join(vm *vmm.VM, underlayAddr netsim.IPv4) (*VTEP, error) {
	if _, dup := n.vteps[vm.Name]; dup {
		return nil, fmt.Errorf("overlay: VM %s already joined %s", vm.Name, n.Name)
	}
	v := &VTEP{
		net:          n,
		vm:           vm,
		UnderlayAddr: underlayAddr,
		pending:      make(map[*VTEP][]*netsim.Frame),
		flushAt:      make(map[*VTEP]bool),
	}
	v.Bridge = netsim.NewBridge(vm.NS, "br-"+n.Name)
	// The VXLAN device hangs off the overlay bridge as a port that
	// captures frames for non-local stations.
	vx := vm.NS.AddIface("vxlan-"+n.Name, vm.NS.Net.NewMAC(), vm.NS.Costs.EthMTU)
	vx.SetLink(vxlanLink{v: v})
	vx.Up = true
	v.Bridge.AddPort(vx)
	v.vxIface = vx

	if _, err := vm.NS.BindUDP(VXLANPort, v.receive); err != nil {
		return nil, fmt.Errorf("overlay: underlay bind on %s: %w", vm.Name, err)
	}
	n.vteps[vm.Name] = v
	return v, nil
}

// VTEP returns a VM's termination point, or nil.
func (n *Network) VTEP(vm string) *VTEP { return n.vteps[vm] }

// vxlanLink receives frames the overlay bridge floods/forwards to the
// VXLAN port and tunnels them to remote VTEPs.
type vxlanLink struct{ v *VTEP }

func (l vxlanLink) Send(_ *netsim.Iface, f *netsim.Frame) {
	l.v.egress(f)
}

// egress tunnels one overlay frame: pick target VTEPs (FDB hit or
// flood), pay the encapsulation cost, and batch per target.
func (v *VTEP) egress(f *netsim.Frame) {
	n := v.net
	var targets []*VTEP
	if t, ok := n.fdb[f.Dst]; ok {
		if t == v {
			return // local station; the bridge already delivered it
		}
		targets = []*VTEP{t}
	} else {
		// Broadcast or unknown unicast: flood to every peer.
		for _, t := range n.vteps {
			if t != v {
				targets = append(targets, t)
			}
		}
	}
	if len(targets) == 0 {
		return
	}
	size := f.PayloadLen()
	charges := []netsim.Charge{{Cat: cpuacct.Soft, D: v.vm.NS.Costs.VXLANEncap.For(size) * time.Duration(len(targets))}}
	v.vm.NS.CPU.RunCosts(charges, func() {
		for _, t := range targets {
			n.Encapsulated++
			v.pending[t] = append(v.pending[t], f.Clone())
			if len(v.pending[t]) >= n.Batch {
				v.flush(t)
			} else if !v.flushAt[t] {
				v.flushAt[t] = true
				v.vm.Host.Eng.After(n.FlushDelay, func() {
					if v.flushAt[t] {
						v.flush(t)
					}
				})
			}
		}
	})
}

// flush emits one carrier with the pending batch for target t.
func (v *VTEP) flush(t *VTEP) {
	frames := v.pending[t]
	if len(frames) == 0 {
		v.flushAt[t] = false
		return
	}
	v.pending[t] = nil
	v.flushAt[t] = false
	total := 0
	for _, f := range frames {
		total += f.PayloadLen() + vxlanOverhead
	}
	v.net.Carriers++
	p := &netsim.Packet{
		Dst:        t.UnderlayAddr,
		Proto:      netsim.ProtoUDP,
		SrcPort:    VXLANPort,
		DstPort:    VXLANPort,
		TTL:        64,
		PayloadLen: total,
		App:        carrier{frames: frames},
	}
	v.vm.NS.Output(p, []netsim.Charge{{Cat: cpuacct.Sys, D: v.vm.NS.Costs.SyscallTX.For(total)}})
}

// receive decapsulates a carrier and injects the inner frames into the
// local overlay bridge.
func (v *VTEP) receive(p *netsim.Packet) {
	c, ok := p.App.(carrier)
	if !ok {
		return
	}
	var decap time.Duration
	for _, f := range c.frames {
		decap += v.vm.NS.Costs.VXLANDecap.For(f.PayloadLen())
	}
	v.vm.NS.CPU.RunCosts([]netsim.Charge{{Cat: cpuacct.Soft, D: decap}}, func() {
		src := senderVTEP(v.net, p.Src)
		for _, f := range c.frames {
			// Learn the remote station for return traffic.
			if src != nil && !f.Src.IsZero() {
				v.net.fdb[f.Src] = src
			}
			// Inner frames enter through the VXLAN port so the local
			// bridge learns remote MACs behind it.
			v.vxIface.Deliver(f)
		}
	})
}

// senderVTEP resolves the VTEP that owns an underlay address.
func senderVTEP(n *Network, addr netsim.IPv4) *VTEP {
	for _, t := range n.vteps {
		if t.UnderlayAddr == addr {
			return t
		}
	}
	return nil
}

// learnLocal records a local station so remote VTEPs' frames for it are
// not re-flooded. The attachment calls this when a container joins.
func (v *VTEP) learnLocal(mac netsim.MAC) {
	v.net.fdb[mac] = v
}
