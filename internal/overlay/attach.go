package overlay

import (
	"fmt"
	"strings"
	"time"

	"nestless/internal/container"
	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
)

// overlayMTU reflects the VXLAN encapsulation overhead on a 1500-byte
// underlay.
const overlayMTU = 1450

// setupDelay approximates the driver's veth + bridge + gossip bookkeeping
// when a container joins the overlay.
const setupDelay = 9 * time.Millisecond

// Attachment is the CNI-style provisioner that joins containers on one
// VM to an overlay network.
type Attachment struct {
	Net  *Network
	VTEP *VTEP

	ifSeq int
}

// NewAttachment returns the provisioner for one VM's VTEP.
func NewAttachment(n *Network, v *VTEP) *Attachment {
	return &Attachment{Net: n, VTEP: v}
}

// Name identifies the provisioner.
func (a *Attachment) Name() string { return "overlay" }

// Provision attaches the container to the overlay bridge and assigns an
// overlay-subnet address.
func (a *Attachment) Provision(c *container.Container, _ []container.PortMap, done func(netsim.IPv4, error)) {
	vm := a.VTEP.vm
	a.ifSeq++
	hostEnd := fmt.Sprintf("veth-ovl-%s-%d", c.Name, a.ifSeq)
	vm.CPU.Run(cpuacct.Sys, 2*time.Millisecond, func() {
		vm.Host.Eng.After(setupDelay, func() {
			ip := a.Net.AllocIP()
			ctrEnd, nodeEnd := netsim.NewVethPair(c.NS, "ovl0", vm.NS, hostEnd)
			ctrEnd.MTU = overlayMTU
			ctrEnd.SetAddr(ip, a.Net.Subnet)
			a.VTEP.Bridge.AddPort(nodeEnd)
			a.VTEP.learnLocal(ctrEnd.MAC)
			done(ip, nil)
		})
	})
}

// Release detaches the container from the overlay bridge. Releasing a
// container that holds no overlay attachment is an error.
func (a *Attachment) Release(c *container.Container) error {
	vm := a.VTEP.vm
	removed := false
	for _, p := range a.VTEP.Bridge.Ports() {
		if p.NS == vm.NS && p.Link() != nil {
			// Identify the port paired to this container by name prefix.
			if strings.HasPrefix(p.Name, "veth-ovl-") && strings.Contains(p.Name, c.Name) {
				a.VTEP.Bridge.RemovePort(p)
				vm.NS.RemoveIface(p.Name)
				removed = true
			}
		}
	}
	if i := c.NS.Iface("ovl0"); i != nil {
		c.NS.RemoveIface("ovl0")
		removed = true
	}
	if !removed {
		return fmt.Errorf("overlay: no attachment for %q", c.Name)
	}
	return nil
}
