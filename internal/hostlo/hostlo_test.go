package hostlo

import (
	"testing"

	"nestless/internal/cpuacct"
	"nestless/internal/netsim"
	"nestless/internal/sim"
	"nestless/internal/virtio"
)

// podNet is the pod-localhost subnet the endpoints share.
var podNet = netsim.MustPrefix(netsim.IP(169, 254, 77, 0), 24)

type rig struct {
	eng  *sim.Engine
	net  *netsim.Net
	dev  *Device
	vms  []*netsim.NetNS
	nics []*virtio.NIC
}

// newRig builds a host with one Hostlo device and n VMs, each with an
// endpoint NIC at 169.254.77.(10+i).
func newRig(t *testing.T, n int) *rig {
	t.Helper()
	eng := sim.New(1)
	eng.MaxSteps = 20_000_000
	w := netsim.NewNet(eng)
	hostCPU := netsim.NewCPU(eng, "host", 1, netsim.BillTo(w.Acct, "host", ""))
	dev := New("hostlo0", hostCPU, w.Costs)
	r := &rig{eng: eng, net: w, dev: dev}
	for i := 0; i < n; i++ {
		name := "vm" + string(rune('1'+i))
		cpu := netsim.NewCPU(eng, name, 1, netsim.BillTo(w.Acct, "guest/"+name, "vm/"+name))
		vm := w.NewNS(name, cpu)
		vhost := netsim.NewCPU(eng, "vhost-"+name, 1, netsim.BillTo(w.Acct, "host", ""))
		b := NewBackend(dev)
		nic := virtio.New(virtio.Config{Name: "hlo0", MAC: w.NewMAC(), GuestNS: vm, Vhost: vhost, Backend: b})
		b.Bind(name, nic)
		nic.Guest.SetAddr(podNet.Host(10+i), podNet)
		nic.Guest.Up = true
		r.vms = append(r.vms, vm)
		r.nics = append(r.nics, nic)
	}
	return r
}

func TestHostloCrossVMDelivery(t *testing.T) {
	r := newRig(t, 2)
	var got int
	if _, err := r.vms[1].BindUDP(4000, func(p *netsim.Packet) { got = p.PayloadLen }); err != nil {
		t.Fatal(err)
	}
	s, _ := r.vms[0].BindUDP(0, nil)
	s.SendTo(podNet.Host(11), 4000, 200, nil)
	r.eng.Run()
	if got != 200 {
		t.Fatalf("cross-VM hostlo delivery got %d, want 200", got)
	}
	if r.dev.Reflected == 0 {
		t.Fatal("no reflections recorded")
	}
	// Reflect work lands on the host as sys time.
	if r.net.Acct.Usage("host").Of(cpuacct.Sys) == 0 {
		t.Error("hostlo reflect not billed to host sys")
	}
}

func TestReflectAllEchoesToSender(t *testing.T) {
	r := newRig(t, 2)
	if _, err := r.vms[1].BindUDP(4000, func(p *netsim.Packet) {}); err != nil {
		t.Fatal(err)
	}
	s, _ := r.vms[0].BindUDP(0, nil)
	s.SendTo(podNet.Host(11), 4000, 64, nil)
	r.eng.Run()
	// The sender's own endpoint received its frame back and dropped it
	// on the MAC check (plus it heard the ARP broadcasts).
	if r.nics[0].Guest.RXPackets == 0 {
		t.Fatal("reflect-all did not echo to the sender's queue")
	}
	if r.vms[0].Drops.BadMAC == 0 {
		t.Fatal("sender should drop its own reflected unicast")
	}
}

func TestFilterMACUnicastGoesToOwnerOnly(t *testing.T) {
	r := newRig(t, 3)
	r.dev.SetMode(FilterMAC)
	var got [3]int
	for i := range r.vms {
		i := i
		if _, err := r.vms[i].BindUDP(4000, func(p *netsim.Packet) { got[i]++ }); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := r.vms[0].BindUDP(0, nil)
	s.SendTo(podNet.Host(11), 4000, 64, nil) // to vm2
	r.eng.Run()
	if got[1] != 1 {
		t.Fatalf("vm2 got %d datagrams, want 1", got[1])
	}
	if got[2] != 0 {
		t.Fatal("vm3 received a unicast not addressed to it")
	}
	// The sender's data frame must not have come back (only ARP
	// broadcast flooding is allowed); BadMAC drops stay at zero because
	// FilterMAC never reflects unicast to non-owners.
	if r.vms[2].Drops.BadMAC != 0 {
		t.Fatal("FilterMAC leaked unicast to a bystander")
	}
}

func TestThreeVMFanoutCosts(t *testing.T) {
	// With reflect-all and N queues, each data frame is delivered N
	// times; host reflect work should scale with fan-out.
	run := func(n int) uint64 {
		r := newRig(t, n)
		if _, err := r.vms[1].BindUDP(4000, func(p *netsim.Packet) {}); err != nil {
			t.Fatal(err)
		}
		s, _ := r.vms[0].BindUDP(0, nil)
		s.SendTo(podNet.Host(11), 4000, 64, nil)
		r.eng.Run()
		return r.dev.Reflected
	}
	two, four := run(2), run(4)
	if four <= two {
		t.Fatalf("fan-out did not grow with queues: 2VM=%d 4VM=%d", two, four)
	}
}

func TestStreamOverHostlo(t *testing.T) {
	r := newRig(t, 2)
	const total = 256 * 1024
	var got int
	if _, err := r.vms[1].ListenStream(6000, func(c *netsim.StreamConn) {
		c.OnMessage = func(size int, _ interface{}, _ sim.Time) { got += size }
	}); err != nil {
		t.Fatal(err)
	}
	r.vms[0].DialStream(podNet.Host(11), 6000, func(c *netsim.StreamConn) {
		for i := 0; i < 8; i++ {
			c.SendMessage(total/8, nil)
		}
	})
	r.eng.Run()
	if got != total {
		t.Fatalf("stream over hostlo: got %d, want %d", got, total)
	}
}

func TestRemoveQueueStopsDelivery(t *testing.T) {
	r := newRig(t, 2)
	var got int
	if _, err := r.vms[1].BindUDP(4000, func(p *netsim.Packet) { got++ }); err != nil {
		t.Fatal(err)
	}
	s, _ := r.vms[0].BindUDP(0, nil)
	s.SendTo(podNet.Host(11), 4000, 64, nil)
	r.eng.Run()
	if got != 1 {
		t.Fatalf("pre-removal delivery = %d, want 1", got)
	}
	// Detach vm2's queue; further traffic must not arrive.
	if r.dev.Queues() != 2 {
		t.Fatalf("queues = %d, want 2", r.dev.Queues())
	}
	backend := r.nics[1].Backend().(*Backend)
	backend.Unbind()
	if r.dev.Queues() != 1 {
		t.Fatalf("queues after unbind = %d, want 1", r.dev.Queues())
	}
	s.SendTo(podNet.Host(11), 4000, 64, nil)
	r.eng.Run()
	if got != 1 {
		t.Fatalf("delivery after queue removal: got %d, want 1", got)
	}
}

func TestModeString(t *testing.T) {
	if ReflectAll.String() != "reflect-all" || FilterMAC.String() != "filter-mac" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestBackendDescribeAndMAC(t *testing.T) {
	r := newRig(t, 1)
	b := r.nics[0].Backend().(*Backend)
	if b.Describe() != "hostlo:hostlo0" {
		t.Fatalf("Describe = %q", b.Describe())
	}
	if b.EndpointMAC() != r.nics[0].Guest.MAC {
		t.Fatal("EndpointMAC mismatch")
	}
}
