package hostlo

import (
	"fmt"

	"nestless/internal/netsim"
	"nestless/internal/virtio"
)

// Backend adapts one Hostlo queue as the host-side backend of a virtio
// NIC: the VM's endpoint interface transmits into the queue, and frames
// the device reflects are injected back toward the guest. This is the
// QEMU-side glue of the paper's implementation (§4.2): "creates and adds
// one RX/TX queue of it to each VM that needs it".
type Backend struct {
	dev   *Device
	queue *Queue
	nic   *virtio.NIC
}

// NewBackend creates a detached backend on the device; call Bind once
// the NIC exists.
func NewBackend(d *Device) *Backend {
	return &Backend{dev: d}
}

// Bind attaches the backend's queue for the named VM and wires it to the
// endpoint NIC.
func (b *Backend) Bind(vm string, nic *virtio.NIC) {
	b.nic = nic
	b.queue = b.dev.AddQueue(vm, b)
}

// Unbind releases the queue (endpoint hot-unplug).
func (b *Backend) Unbind() {
	if b.queue != nil {
		b.dev.RemoveQueue(b.queue)
		b.queue = nil
	}
}

// Queue exposes the underlying queue (diagnostics).
func (b *Backend) Queue() *Queue { return b.queue }

// FromGuest ingests a guest-transmitted frame into the loopback device.
func (b *Backend) FromGuest(f *netsim.Frame) {
	if b.queue != nil {
		b.queue.Receive(f)
	}
}

// InjectToGuest pushes a reflected frame toward the VM.
func (b *Backend) InjectToGuest(f *netsim.Frame) {
	if b.nic != nil {
		b.nic.InjectToGuest(f)
	}
}

// EndpointMAC returns the in-VM endpoint's MAC address.
func (b *Backend) EndpointMAC() netsim.MAC {
	if b.nic == nil {
		return netsim.MAC{}
	}
	return b.nic.Guest.MAC
}

// Describe names the backend.
func (b *Backend) Describe() string {
	return fmt.Sprintf("hostlo:%s", b.dev.Name())
}
