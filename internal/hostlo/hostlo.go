// Package hostlo implements the paper's Hostlo device (§4): a host-side
// TAP driver modified to act as a loopback interface that can be
// multiplexed among several VMs. The device keeps one RX/TX queue pair
// per served VM and reflects every Ethernet frame received on any queue
// to all of its queues, so each VM's endpoint NIC behaves as one shared
// pod-localhost segment backed by the host.
//
// The reflect work runs in the host kernel (the paper implements it as a
// modified TAP driver); the simulator bills it as host sys time —
// matching §5.3.4's observation that the module's CPU time surfaces in
// the host kernel alongside vhost.
package hostlo

import (
	"fmt"

	"nestless/internal/cpuacct"
	"nestless/internal/faults"
	"nestless/internal/netsim"
)

// Mode selects the frame fan-out policy.
type Mode int

// Fan-out policies.
const (
	// ReflectAll is the paper's semantics: every frame is sent back to
	// all queues, including the sender's (endpoints filter by MAC).
	ReflectAll Mode = iota
	// FilterMAC is the ablation variant: unicast frames go only to the
	// queue whose endpoint owns the destination MAC; broadcast still
	// fans out. Cheaper on the host, but requires the driver to learn
	// endpoint MACs — complexity the paper's driver avoids.
	FilterMAC
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ReflectAll:
		return "reflect-all"
	case FilterMAC:
		return "filter-mac"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Endpoint is the consumer of one queue: the virtio NIC of a served VM.
type Endpoint interface {
	// InjectToGuest pushes a reflected frame toward the VM.
	InjectToGuest(f *netsim.Frame)
	// EndpointMAC returns the MAC of the in-VM endpoint interface
	// (used by the FilterMAC ablation).
	EndpointMAC() netsim.MAC
}

// Device is one Hostlo instance: a multi-queue loopback TAP on the host.
type Device struct {
	name    string
	hostCPU *netsim.CPU
	costs   *netsim.CostModel
	mode    Mode

	queues []*Queue

	// Faults, when set, lets the injector stall or drop traffic at the
	// device's queues (point "hostlo/<name>"). Wired by the VMM when the
	// device is created.
	Faults *faults.Injector

	// Reflected counts frame deliveries into queues (diagnostics).
	Reflected uint64
	// Dropped counts frames discarded by injected queue faults.
	Dropped uint64
}

// New creates a Hostlo device whose reflect work runs on hostCPU.
func New(name string, hostCPU *netsim.CPU, costs *netsim.CostModel) *Device {
	return &Device{name: name, hostCPU: hostCPU, costs: costs, mode: ReflectAll}
}

// Name returns the device name (e.g. "hostlo0").
func (d *Device) Name() string { return d.name }

// Mode returns the fan-out policy.
func (d *Device) Mode() Mode { return d.mode }

// SetMode selects the fan-out policy (ablation hook).
func (d *Device) SetMode(m Mode) { d.mode = m }

// Queues returns the number of attached queue pairs.
func (d *Device) Queues() int { return len(d.queues) }

// Queue is one RX/TX queue pair, owned by one VM's endpoint NIC.
type Queue struct {
	dev *Device
	vm  string
	ep  Endpoint

	// RX counts frames this queue received from its VM; TX counts
	// frames reflected into it.
	RX, TX uint64
}

// AddQueue attaches a queue pair for the named VM — the ioctl the VMM
// issues when multiplexing the device into another VM.
func (d *Device) AddQueue(vm string, ep Endpoint) *Queue {
	q := &Queue{dev: d, vm: vm, ep: ep}
	d.queues = append(d.queues, q)
	return q
}

// RemoveQueue detaches a queue (VM released its endpoint).
func (d *Device) RemoveQueue(q *Queue) {
	for i, x := range d.queues {
		if x == q {
			d.queues = append(d.queues[:i], d.queues[i+1:]...)
			return
		}
	}
}

// VM returns the owning VM's name.
func (q *Queue) VM() string { return q.vm }

// Receive ingests a frame arriving from the queue's VM (called on the
// vhost completion path) and reflects it per the device policy. Each
// reflected copy costs host-kernel time proportional to the fan-out —
// this is why Hostlo's throughput trails batched overlays while its
// latency beats them (Fig. 10).
func (q *Queue) Receive(f *netsim.Frame) {
	d := q.dev
	if inj := d.Faults; inj != nil {
		point := "hostlo/" + d.name
		if s := inj.Stall(point); s > 0 {
			// The queue is wedged: the driver parks the frame and a
			// watchdog kicks the reflect once the stall clears.
			d.hostCPU.Eng.After(s, func() { q.reflect(f) })
			return
		}
		if inj.FrameFate(point) == faults.FateDrop {
			d.Dropped++
			return
		}
	}
	q.reflect(f)
}

// reflect fans the frame out per the device policy.
func (q *Queue) reflect(f *netsim.Frame) {
	d := q.dev
	q.RX++
	size := f.PayloadLen()

	targets := make([]*Queue, 0, len(d.queues))
	switch d.mode {
	case FilterMAC:
		if f.Dst.IsBroadcast() {
			for _, t := range d.queues {
				if t != q {
					targets = append(targets, t)
				}
			}
		} else {
			for _, t := range d.queues {
				if t.ep.EndpointMAC() == f.Dst {
					targets = append(targets, t)
					break
				}
			}
		}
	default:
		// ReflectAll: every queue, including the sender's. Peer queues
		// are served first so the sender's echo copy never delays the
		// actual delivery.
		for _, t := range d.queues {
			if t != q {
				targets = append(targets, t)
			}
		}
		targets = append(targets, q)
	}

	if len(targets) == 0 {
		return
	}
	if rec := d.hostCPU.Rec; rec != nil {
		rec.Instant("hostlo/"+d.name, "reflect", "fanout", float64(len(targets)))
		if f.Packet != nil && f.Packet.Flow != 0 {
			rec.FlowHop(f.Packet.Flow, "hostlo/"+d.name)
		}
	}
	// One copy per queue, charged incrementally: early queues receive
	// their frame without waiting for the rest of the fan-out.
	per := d.costs.HostloReflect.For(size)
	var step func(i int)
	step = func(i int) {
		if i >= len(targets) {
			return
		}
		t := targets[i]
		d.hostCPU.RunCosts([]netsim.Charge{{Cat: cpuacct.Sys, D: per}}, func() {
			t.TX++
			d.Reflected++
			t.ep.InjectToGuest(f.Clone())
			step(i + 1)
		})
	}
	step(0)
}
