// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, serial-server stations that model CPU
// stages with queueing, seeded random distributions, and statistics
// accumulators.
//
// All of nestless runs on virtual time. Determinism is a hard requirement:
// two runs with the same seed must produce bit-identical results, which is
// what makes the experiment harness reproducible. Events scheduled for the
// same instant fire in scheduling order (FIFO tie-break by sequence
// number).
package sim

import (
	"fmt"
	"slices"
	"time"
)

// Time is an instant of virtual time, expressed as the duration elapsed
// since the start of the simulation. Using time.Duration keeps arithmetic
// and formatting ergonomic (Time and durations add directly).
type Time = time.Duration

// event is one scheduled callback, stored by value in the heap: scheduling
// an event costs no allocation beyond the caller's closure (and amortized
// heap growth).
//
// Station completions are the single heaviest event source in every
// workload (one per simulated CPU job), so they get a dedicated
// representation: when st is non-nil the dispatcher calls
// st.complete(fn) directly instead of fn(), and no per-job closure ever
// exists. Two extra words per event buy away ~half the datapath's
// allocations.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
	st  *Station // non-nil: station job completion, fn is the done callback
	// tfn (non-nil) is the seq-keyed dispatch path (AtSeq): the event
	// carries no closure at all — the caller keys its own per-event
	// state by the sequence number the engine hands back.
	tfn func(seq uint64)
}

// eventHeap is a value-typed 4-ary min-heap ordered by (at, seq). A 4-ary
// layout halves the tree depth of a binary heap, which matters on the
// engine's hottest path: sift-downs on pop touch fewer cache lines, and
// there is no container/heap interface dispatch or boxing anywhere.
type eventHeap []event

// before orders events by (at, seq).
func (a *event) before(b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push appends ev and restores the heap invariant (hole-based sift-up:
// the moving element is copied once, parents shift down into the hole).
func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
	*h = q
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // release the closure reference
	q = q[:n]
	*h = q
	if n == 0 {
		return top
	}
	// Sift the former tail down from the root (hole-based).
	i := 0
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		// Smallest of up to four children.
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for k := c + 1; k < end; k++ {
			if q[k].before(&q[m]) {
				m = k
			}
		}
		if !q[m].before(&last) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = last
	return top
}

// Engine is the discrete-event scheduler. It is not safe for concurrent
// use: the whole simulation is single-threaded by design (determinism).
// Independent simulations — each with its own Engine — may run on
// concurrent goroutines; engines share no state.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *Rand

	// runQ is the current instant's dispatch queue, ordered by seq with
	// runHead marking the next event to fire. Two invariants hold at all
	// times: the heap only ever stores events strictly in the future
	// (At(now) appends here in O(1) instead of sifting the heap), and
	// when the clock advances the whole run of equal-timestamp events is
	// swept out of the heap in one pass (drainRun) rather than one full
	// sift-down per pop.
	runQ    []event
	runHead int
	// drainScratch / drainIdxs back drainRun's heap-index DFS (no
	// per-advance allocation).
	drainScratch []int32
	drainIdxs    []int32

	// Steps counts executed events; useful for budget guards in tests.
	Steps uint64
	// MaxSteps aborts Run with a panic when exceeded (0 = unlimited).
	// It is a safety net against accidental event loops.
	MaxSteps uint64
	// Probe, when set, observes clock advances (telemetry sampling).
	Probe EngineProbe
}

// initialHeapCap pre-sizes the event heap so typical scenarios never pay
// growth reallocations on the hot path.
const initialHeapCap = 1024

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: NewRand(seed), events: make(eventHeap, 0, initialHeapCap)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seq returns the sequence number assigned to the most recently
// scheduled event. Callers that must identify the event they just
// scheduled (the cluster's snapshot ledger) read it immediately after
// At/After.
func (e *Engine) Seq() uint64 { return e.seq }

// EngineState is the snapshotable engine core: the clock, the event
// sequence counter, the step budget spent, and the RNG stream position.
// Pending events are NOT part of it — closures cannot be serialized, so
// the owner of the events (the cluster's typed event ledger) re-schedules
// them after RestoreEngine.
type EngineState struct {
	Now   Time
	Seq   uint64
	Steps uint64
	Rand  RandState
}

// State captures the engine core. Meaningful only while the engine is
// parked between RunUntil calls.
func (e *Engine) State() EngineState {
	return EngineState{Now: e.now, Seq: e.seq, Steps: e.Steps, Rand: e.rng.State()}
}

// RestoreEngine rebuilds an engine at a captured core state with an
// empty event queue; the caller re-schedules its pending events (At
// accepts t == Now, recreating the same-instant batch queue exactly).
func RestoreEngine(st EngineState) *Engine {
	e := &Engine{
		now:    st.Now,
		seq:    st.Seq,
		rng:    NewRandFromState(st.Rand),
		events: make(eventHeap, 0, initialHeapCap),
	}
	e.Steps = st.Steps
	return e
}

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Reserve grows the event heap's capacity to hold at least n pending
// events without reallocation — a capacity hint for workloads that front-
// load large batches of scheduled work.
func (e *Engine) Reserve(n int) {
	if cap(e.events) >= n {
		return
	}
	grown := make(eventHeap, len(e.events), n)
	copy(grown, e.events)
	e.events = grown
}

// At schedules fn to run at instant t. Scheduling in the past panics:
// it would silently corrupt causality. Scheduling at the current
// instant bypasses the heap entirely: the event joins the tail of the
// running batch (seq order is append order), which makes the
// After(0) cascade pattern O(1) per event.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	if t == e.now {
		e.runQ = append(e.runQ, event{at: t, seq: e.seq, fn: fn})
		return
	}
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// AtSeq schedules fn like At, but passes fn the sequence number the
// engine assigned to the event. A caller that keeps its own per-event
// state keyed by seq (precomputed as Seq()+1 before the call — At and
// AtSeq increment the counter exactly once) can reuse a single cached
// callback for every event it schedules, paying zero allocations per
// event where a capturing closure would pay two (the closure plus the
// boxed seq cell).
func (e *Engine) AtSeq(t Time, fn func(seq uint64)) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	if t == e.now {
		e.runQ = append(e.runQ, event{at: t, seq: e.seq, tfn: fn})
		return
	}
	e.events.push(event{at: t, seq: e.seq, tfn: fn})
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) + len(e.runQ) - e.runHead }

// drainRun moves every heap event at instant t — the heap minimum's
// timestamp — into runQ in seq order. The batch head comes out with one
// ordinary pop; the rest of the equal-time run is then collected in a
// single DFS over the heap array (a min-heap prunes the walk: an
// element later than t has no descendants at t) and each vacated slot
// is repaired in place, which beats a full root sift-down per event.
func (e *Engine) drainRun(t Time) {
	e.runQ = append(e.runQ, e.events.pop())
	if len(e.events) == 0 || e.events[0].at != t {
		return
	}
	// DFS-collect the indices of the remaining equal-time events and
	// stage the events themselves at the tail of runQ.
	h := e.events
	base := len(e.runQ)
	stack := append(e.drainScratch[:0], 0)
	idxs := e.drainIdxs[:0]
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if h[i].at != t {
			continue
		}
		idxs = append(idxs, i)
		e.runQ = append(e.runQ, h[i])
		c := i<<2 + 1
		for k := c; k < c+4 && k < int32(len(h)); k++ {
			stack = append(stack, k)
		}
	}
	e.drainScratch = stack[:0]
	// The heap is not seq-ordered; the batch must be.
	slices.SortFunc(e.runQ[base:], func(a, b event) int {
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	// Repair the heap: vacate the collected slots deepest-first, filling
	// each hole with the array tail and re-sifting locally.
	slices.Sort(idxs)
	e.drainIdxs = idxs
	for k := len(idxs) - 1; k >= 0; k-- {
		e.events.removeAt(int(idxs[k]))
	}
}

// removeAt deletes the element at index i, filling the hole with the
// array tail and restoring the heap property around i.
func (h *eventHeap) removeAt(i int) {
	q := *h
	n := len(q) - 1
	moved := q[n]
	q[n] = event{} // release the closure reference
	q = q[:n]
	*h = q
	if i == n {
		return
	}
	// Sift the moved element up if it beats its new parent...
	j := i
	for j > 0 {
		p := (j - 1) >> 2
		if !moved.before(&q[p]) {
			break
		}
		q[j] = q[p]
		j = p
	}
	if j != i {
		q[j] = moved
		return
	}
	// ...otherwise down among its new children.
	for {
		c := j<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for k := c + 1; k < end; k++ {
			if q[k].before(&q[m]) {
				m = k
			}
		}
		if !q[m].before(&moved) {
			break
		}
		q[j] = q[m]
		j = m
	}
	q[j] = moved
}

// step executes the next event: the head of the current instant's batch
// when one is in flight, otherwise the heap minimum (advancing the
// clock and draining its equal-time run into the batch queue first).
// It reports false when no events remain.
func (e *Engine) step() bool {
	if e.runHead >= len(e.runQ) {
		e.runQ = e.runQ[:0]
		e.runHead = 0
		if len(e.events) == 0 {
			return false
		}
		t := e.events[0].at // > e.now by the runQ invariant
		e.now = t
		if e.Probe != nil {
			e.Probe.EngineAdvance(t)
		}
		e.drainRun(t)
	}
	ev := e.runQ[e.runHead]
	e.runQ[e.runHead] = event{} // release the closure reference
	e.runHead++
	e.Steps++
	if e.MaxSteps != 0 && e.Steps > e.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", e.MaxSteps, e.now))
	}
	switch {
	case ev.st != nil:
		ev.st.complete(ev.fn)
	case ev.tfn != nil:
		ev.tfn(ev.seq)
	default:
		ev.fn()
	}
	return true
}

// afterJob schedules a station job completion d from now without
// allocating a closure: the event carries the station and the done
// callback directly.
func (e *Engine) afterJob(d time.Duration, st *Station, done func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	ev := event{at: e.now + d, seq: e.seq, fn: done, st: st}
	if d == 0 {
		e.runQ = append(e.runQ, ev)
		return
	}
	e.events.push(ev)
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. Events scheduled exactly at t do run.
func (e *Engine) RunUntil(t Time) {
	for e.runHead < len(e.runQ) || (len(e.events) > 0 && e.events[0].at <= t) {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.step() {
	}
}
