// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, serial-server stations that model CPU
// stages with queueing, seeded random distributions, and statistics
// accumulators.
//
// All of nestless runs on virtual time. Determinism is a hard requirement:
// two runs with the same seed must produce bit-identical results, which is
// what makes the experiment harness reproducible. Events scheduled for the
// same instant fire in scheduling order (FIFO tie-break by sequence
// number).
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant of virtual time, expressed as the duration elapsed
// since the start of the simulation. Using time.Duration keeps arithmetic
// and formatting ergonomic (Time and durations add directly).
type Time = time.Duration

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event scheduler. It is not safe for concurrent
// use: the whole simulation is single-threaded by design (determinism).
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *Rand

	// Steps counts executed events; useful for budget guards in tests.
	Steps uint64
	// MaxSteps aborts Run with a panic when exceeded (0 = unlimited).
	// It is a safety net against accidental event loops.
	MaxSteps uint64
	// Probe, when set, observes clock advances (telemetry sampling).
	Probe EngineProbe
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// At schedules fn to run at instant t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// step executes the earliest event. It reports false when no events remain.
func (e *Engine) step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	advanced := ev.at != e.now
	e.now = ev.at
	e.Steps++
	if e.MaxSteps != 0 && e.Steps > e.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", e.MaxSteps, e.now))
	}
	if advanced && e.Probe != nil {
		e.Probe.EngineAdvance(ev.at)
	}
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. Events scheduled exactly at t do run.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.step() {
	}
}
