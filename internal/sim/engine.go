// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, serial-server stations that model CPU
// stages with queueing, seeded random distributions, and statistics
// accumulators.
//
// All of nestless runs on virtual time. Determinism is a hard requirement:
// two runs with the same seed must produce bit-identical results, which is
// what makes the experiment harness reproducible. Events scheduled for the
// same instant fire in scheduling order (FIFO tie-break by sequence
// number).
package sim

import (
	"fmt"
	"time"
)

// Time is an instant of virtual time, expressed as the duration elapsed
// since the start of the simulation. Using time.Duration keeps arithmetic
// and formatting ergonomic (Time and durations add directly).
type Time = time.Duration

// event is one scheduled callback, stored by value in the heap: scheduling
// an event costs no allocation beyond the caller's closure (and amortized
// heap growth).
//
// Station completions are the single heaviest event source in every
// workload (one per simulated CPU job), so they get a dedicated
// representation: when st is non-nil the dispatcher calls
// st.complete(fn) directly instead of fn(), and no per-job closure ever
// exists. Two extra words per event buy away ~half the datapath's
// allocations.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
	st  *Station // non-nil: station job completion, fn is the done callback
}

// eventHeap is a value-typed 4-ary min-heap ordered by (at, seq). A 4-ary
// layout halves the tree depth of a binary heap, which matters on the
// engine's hottest path: sift-downs on pop touch fewer cache lines, and
// there is no container/heap interface dispatch or boxing anywhere.
type eventHeap []event

// before orders events by (at, seq).
func (a *event) before(b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push appends ev and restores the heap invariant (hole-based sift-up:
// the moving element is copied once, parents shift down into the hole).
func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
	*h = q
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // release the closure reference
	q = q[:n]
	*h = q
	if n == 0 {
		return top
	}
	// Sift the former tail down from the root (hole-based).
	i := 0
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		// Smallest of up to four children.
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for k := c + 1; k < end; k++ {
			if q[k].before(&q[m]) {
				m = k
			}
		}
		if !q[m].before(&last) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = last
	return top
}

// Engine is the discrete-event scheduler. It is not safe for concurrent
// use: the whole simulation is single-threaded by design (determinism).
// Independent simulations — each with its own Engine — may run on
// concurrent goroutines; engines share no state.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *Rand

	// Steps counts executed events; useful for budget guards in tests.
	Steps uint64
	// MaxSteps aborts Run with a panic when exceeded (0 = unlimited).
	// It is a safety net against accidental event loops.
	MaxSteps uint64
	// Probe, when set, observes clock advances (telemetry sampling).
	Probe EngineProbe
}

// initialHeapCap pre-sizes the event heap so typical scenarios never pay
// growth reallocations on the hot path.
const initialHeapCap = 1024

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: NewRand(seed), events: make(eventHeap, 0, initialHeapCap)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Reserve grows the event heap's capacity to hold at least n pending
// events without reallocation — a capacity hint for workloads that front-
// load large batches of scheduled work.
func (e *Engine) Reserve(n int) {
	if cap(e.events) >= n {
		return
	}
	grown := make(eventHeap, len(e.events), n)
	copy(grown, e.events)
	e.events = grown
}

// At schedules fn to run at instant t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// step executes the earliest event. It reports false when no events remain.
func (e *Engine) step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	advanced := ev.at != e.now
	e.now = ev.at
	e.Steps++
	if e.MaxSteps != 0 && e.Steps > e.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", e.MaxSteps, e.now))
	}
	if advanced && e.Probe != nil {
		e.Probe.EngineAdvance(ev.at)
	}
	if ev.st != nil {
		ev.st.complete(ev.fn)
	} else {
		ev.fn()
	}
	return true
}

// afterJob schedules a station job completion d from now without
// allocating a closure: the event carries the station and the done
// callback directly.
func (e *Engine) afterJob(d time.Duration, st *Station, done func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.events.push(event{at: e.now + d, seq: e.seq, fn: done, st: st})
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. Events scheduled exactly at t do run.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.step() {
	}
}
