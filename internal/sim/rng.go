package sim

import (
	"math"
	"math/rand"
)

// Rand is a deterministic random source with the distributions the
// simulator needs. It wraps math/rand with an explicit seed so that a
// whole experiment is reproducible from a single integer.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a Rand seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Uniform returns a uniform sample in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Exp returns an exponential sample with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Normal returns a normal sample with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return r.src.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normal sample where mu and sigma are the mean
// and standard deviation of the underlying normal distribution.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.src.NormFloat64()*sigma + mu)
}

// Pareto returns a Pareto sample with minimum xm and shape alpha.
// Heavy-tailed: used by the trace generator for resource requests.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Fork derives an independent sub-stream. Deriving streams by draw keeps
// component randomness decoupled: adding draws in one component does not
// shift the sequence seen by another.
func (r *Rand) Fork() *Rand { return NewRand(r.src.Int63()) }
