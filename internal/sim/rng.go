package sim

import (
	"math"
	"math/rand"
)

// countingSource wraps the math/rand source and counts state advances.
// Both Int63 and Uint64 advance the underlying generator by exactly one
// step, so the pair (seed, draws) is a complete, replayable description
// of the stream position: reseed and burn draws steps to land on the
// identical state regardless of which draw mix produced it. That is what
// lets a world snapshot capture an RNG without access to math/rand's
// private state.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) { s.src.Seed(seed) }

// Rand is a deterministic random source with the distributions the
// simulator needs. It wraps math/rand with an explicit seed so that a
// whole experiment is reproducible from a single integer, and counts
// draws so the stream position is snapshotable (State/NewRandFromState).
type Rand struct {
	src  *rand.Rand
	cs   countingSource
	seed int64
}

// RandState is the complete replayable position of a Rand stream.
type RandState struct {
	Seed  int64
	Draws uint64
}

// NewRand returns a Rand seeded with seed.
func NewRand(seed int64) *Rand {
	r := &Rand{seed: seed}
	r.cs.src = rand.NewSource(seed).(rand.Source64)
	r.src = rand.New(&r.cs)
	return r
}

// State captures the stream position. Restoring it with
// NewRandFromState yields a Rand whose future draws are bit-identical
// to this one's.
func (r *Rand) State() RandState {
	return RandState{Seed: r.seed, Draws: r.cs.draws}
}

// NewRandFromState rebuilds a Rand at a captured stream position by
// reseeding and burning the recorded number of state advances.
func NewRandFromState(st RandState) *Rand {
	r := NewRand(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		r.cs.src.Uint64() // advance without double-counting
	}
	r.cs.draws = st.Draws
	return r
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Uniform returns a uniform sample in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Exp returns an exponential sample with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Normal returns a normal sample with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return r.src.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normal sample where mu and sigma are the mean
// and standard deviation of the underlying normal distribution.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.src.NormFloat64()*sigma + mu)
}

// Pareto returns a Pareto sample with minimum xm and shape alpha.
// Heavy-tailed: used by the trace generator for resource requests.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Fork derives an independent sub-stream. Deriving streams by draw keeps
// component randomness decoupled: adding draws in one component does not
// shift the sequence seen by another.
func (r *Rand) Fork() *Rand { return NewRand(r.src.Int63()) }
