package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineSchedule measures the raw At/pop cycle: one pre-built
// callback rescheduled through a deep heap. This is the engine's hot
// path under every figure workload, so its ns/op is the core trajectory
// metric (see BENCH_core.json).
func BenchmarkEngineSchedule(b *testing.B) {
	e := New(1)
	// Keep a realistic backlog in the heap so push/pop exercise real
	// sift depth, not the empty-heap fast path.
	var fn func()
	n := 0
	fn = func() {
		if n < b.N {
			n++
			e.After(time.Duration(n%64)*time.Microsecond, fn)
		}
	}
	for i := 0; i < 256; i++ {
		e.After(time.Duration(i)*time.Microsecond, func() {})
	}
	e.After(0, fn)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineFanout measures batch scheduling: many events pushed at
// once, then drained — the pattern of parallel sweeps front-loading work.
func BenchmarkEngineFanout(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(1)
		e.Reserve(4096)
		nop := func() {}
		for k := 0; k < 4096; k++ {
			e.At(time.Duration(k%997)*time.Microsecond, nop)
		}
		e.Run()
	}
}

// BenchmarkEngineSameInstantRuns measures batched same-timestamp
// drains: bursts of events scheduled for one shared instant over a
// standing backlog, the pattern of coalesced trace submits and
// After(0) scheduler kicks. The equal-time run is swept out of the
// heap in one pass (drainRun) instead of one full sift-down per pop;
// ns/op and allocs/op here pin that path (see also
// TestSameInstantDrainZeroAllocs).
func BenchmarkEngineSameInstantRuns(b *testing.B) {
	e := New(1)
	e.Reserve(8192)
	nop := func() {}
	// A standing far-future backlog keeps the heap deep, so the drain
	// works against realistic sift depths.
	for i := 0; i < 1024; i++ {
		e.At(time.Hour+time.Duration(i)*time.Second, nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		batch := 64
		if b.N-done < batch {
			batch = b.N - done
		}
		at := e.Now() + time.Millisecond
		for k := 0; k < batch; k++ {
			e.At(at, nop)
		}
		e.RunUntil(at)
		done += batch
	}
}

// BenchmarkStationPipeline pushes jobs through a station chain, the
// shape of every simulated CPU stage.
func BenchmarkStationPipeline(b *testing.B) {
	e := New(1)
	s := NewStation(e, "bench", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(time.Microsecond, nil)
		if i%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
}
