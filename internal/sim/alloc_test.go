package sim

import (
	"testing"
	"time"
)

// The engine's scheduling hot path must not allocate: events are stored
// by value in the heap and station completions dispatch without a
// closure. These tests pin that property so a refactor cannot silently
// reintroduce per-event garbage.

func TestAtAfterZeroAllocs(t *testing.T) {
	e := New(1)
	e.Reserve(4096)
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		e.At(e.Now(), fn)
		e.After(time.Microsecond, fn)
	})
	if allocs != 0 {
		t.Fatalf("At+After allocate %.1f objects/op, want 0", allocs)
	}
}

func TestScheduleDispatchZeroAllocs(t *testing.T) {
	e := New(1)
	// Pre-warm the heap so growth is amortized out of the measurement.
	for i := 0; i < 512; i++ {
		e.After(time.Duration(i)*time.Microsecond, func() {})
	}
	e.Run()
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(time.Microsecond, fn)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("schedule+dispatch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSameInstantDrainZeroAllocs pins the batched equal-timestamp
// drain: a burst scheduled for one shared future instant, plus an
// At(now) cascade appended mid-batch, must dispatch without allocating
// (run queue, DFS scratch and index scratch are all engine-owned and
// reused).
func TestSameInstantDrainZeroAllocs(t *testing.T) {
	e := New(1)
	e.Reserve(4096)
	fn := func() {}
	// Warm the run queue and drain scratch past their steady-state size.
	for r := 0; r < 4; r++ {
		at := e.Now() + time.Microsecond
		for i := 0; i < 32; i++ {
			e.At(at, fn)
		}
		e.Run()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		at := e.Now() + time.Microsecond
		for i := 0; i < 16; i++ {
			e.At(at, fn)
		}
		e.RunUntil(at)
		e.At(e.Now(), fn) // same-instant append joins the batch in O(1)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("same-instant drain allocates %.1f objects/op, want 0", allocs)
	}
}

func TestStationJobZeroAllocs(t *testing.T) {
	e := New(1)
	s := NewStation(e, "alloc", 1)
	// Steady state: completion dispatch goes through the event's station
	// field, so a nil-done job is entirely allocation-free.
	allocs := testing.AllocsPerRun(1000, func() {
		s.Process(time.Microsecond, nil)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("station job allocates %.1f objects/op, want 0", allocs)
	}
}
