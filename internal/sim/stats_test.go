package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasicStats(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSeriesEmptyIsSafe(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series must report zeros")
	}
}

func TestSeriesPercentiles(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{{0, 1}, {100, 100}, {50, 50.5}}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSeriesCDFMonotone(t *testing.T) {
	var s Series
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	values, fracs := s.CDF()
	if !sort.Float64sAreSorted(values) {
		t.Fatal("CDF values not sorted")
	}
	for i := 1; i < len(fracs); i++ {
		if fracs[i] <= fracs[i-1] {
			t.Fatal("CDF fractions not strictly increasing")
		}
	}
	if fracs[len(fracs)-1] != 1 {
		t.Fatalf("CDF must end at 1, got %v", fracs[len(fracs)-1])
	}
}

func TestSeriesAddDuration(t *testing.T) {
	var s Series
	s.AddDuration(1500 * time.Millisecond)
	if got := s.Mean(); got != 1.5 {
		t.Fatalf("AddDuration mean = %v, want 1.5", got)
	}
}

// Property: percentile is monotone in p and bounded by [Min, Max].
func TestSeriesPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, pa, pb uint8) bool {
		var s Series
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		lo, hi := float64(pa%101), float64(pb%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := s.Percentile(lo), s.Percentile(hi)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("Under/Over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket 0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // 2
		t.Fatalf("bucket 1 = %d, want 1", h.Buckets[1])
	}
	if h.Buckets[4] != 1 { // 9.99
		t.Fatalf("bucket 4 = %d, want 1", h.Buckets[4])
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("BucketBounds(1) = [%v, %v), want [2, 4)", lo, hi)
	}
	if got := h.Fraction(0); math.Abs(got-2.0/7.0) > 1e-9 {
		t.Fatalf("Fraction(0) = %v", got)
	}
}

// Property: histogram never loses samples — bucket counts plus
// under/overflow always equal the number of Adds.
func TestHistogramConservationProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		h := NewHistogram(-100, 100, 13)
		n := uint64(0)
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		var inBuckets uint64
		for _, b := range h.Buckets {
			inBuckets += b
		}
		return inBuckets+h.Under+h.Over == n && h.Total() == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(99)
	var s Series
	for i := 0; i < 5000; i++ {
		s.Add(r.Exp(2.0))
	}
	if m := s.Mean(); m < 1.8 || m > 2.2 {
		t.Fatalf("Exp mean = %v, want ~2", m)
	}
	var n Series
	for i := 0; i < 5000; i++ {
		n.Add(r.Normal(10, 3))
	}
	if m := n.Mean(); m < 9.8 || m > 10.2 {
		t.Fatalf("Normal mean = %v, want ~10", m)
	}
	var p Series
	for i := 0; i < 5000; i++ {
		p.Add(r.Pareto(1, 2))
	}
	if p.Min() < 1 {
		t.Fatalf("Pareto produced a sample below xm: %v", p.Min())
	}
	u := r.Uniform(5, 6)
	if u < 5 || u >= 6 {
		t.Fatalf("Uniform out of range: %v", u)
	}
}

func TestRandForkIndependence(t *testing.T) {
	a := NewRand(1)
	b := NewRand(1)
	fa := a.Fork()
	// Draw extra values from a's fork; b's own sequence must match a
	// fresh same-seed source that also forked once.
	fa.Float64()
	fb := b.Fork()
	if fa == nil || fb == nil {
		t.Fatal("Fork returned nil")
	}
	if a.Float64() != b.Float64() {
		t.Fatal("forking changed the parent stream inconsistently")
	}
}
