package sim

import "time"

// EngineProbe observes the engine's virtual clock. Advance notifications
// fire from step() whenever executing the next event moves the clock
// forward, before the event's callback runs. Implementations must not
// schedule events: doing so would shift event sequence numbers and break
// the bit-identical determinism guarantee.
type EngineProbe interface {
	EngineAdvance(now Time)
}

// StationProbe observes one station's scheduling transitions. All hooks
// run synchronously inside the simulation; implementations must not
// schedule events. A nil probe costs a single pointer check per
// transition and allocates nothing.
type StationProbe interface {
	// StationQueue fires after the queue length changes (enqueue or
	// dequeue), with the new depth.
	StationQueue(s *Station, depth int)
	// StationBusy fires on the idle→busy transition (first server claimed).
	StationBusy(s *Station)
	// StationIdle fires on the busy→idle transition (last server released).
	StationIdle(s *Station)
	// StationWake fires when a job pays the idle wake-up penalty.
	StationWake(s *Station, penalty time.Duration)
}
