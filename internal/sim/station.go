package sim

import "time"

// Station models a serial processing resource: a pool of identical servers
// (think: the vCPUs of a VM, the host CPUs, or a single vhost worker
// thread) in front of a FIFO queue. Work submitted with Process occupies
// one server for the service duration; excess work queues.
//
// Throughput of a pipeline of stations is limited by its most loaded
// station, and latency is the sum of waiting plus service times — exactly
// the mechanics that produce the paper's nested-virtualization numbers.
type Station struct {
	eng     *Engine
	name    string
	servers int
	busy    int
	queue   []stationJob

	// BusyTime accumulates total server-occupied time, for utilization
	// reports (busy server-seconds, so it can exceed elapsed time when
	// servers > 1).
	BusyTime time.Duration
	// Completed counts jobs fully served.
	Completed uint64
	// MaxQueue records the high-water mark of the queue length.
	MaxQueue int
	// Wakeups counts jobs that paid a wake-up penalty.
	Wakeups uint64

	// Wake-up model: a station that has been idle longer than the
	// threshold pays an extra delay before serving the next job —
	// the halt/IPI/VM-entry cost of waking a vCPU, or the scheduler
	// wake-up of a worker thread. Streaming work keeps stations busy
	// and never pays it; sparse request/response traffic does, which
	// is what gives RR latencies their floor and their variance.
	wakeMean, wakeJitter, wakeThreshold time.Duration
	idleSince                           Time

	// Probe, when set, observes queueing and busy/idle transitions
	// (telemetry instruments). Nil-checked on every path: disabled
	// stations pay one pointer compare and zero allocations.
	Probe StationProbe
}

type stationJob struct {
	service time.Duration
	done    func()
}

// NewStation creates a station with the given number of parallel servers.
// servers < 1 is treated as 1.
func NewStation(eng *Engine, name string, servers int) *Station {
	if servers < 1 {
		servers = 1
	}
	return &Station{eng: eng, name: name, servers: servers}
}

// Name returns the station's diagnostic name.
func (s *Station) Name() string { return s.name }

// Servers returns the number of parallel servers.
func (s *Station) Servers() int { return s.servers }

// QueueLen returns the number of jobs waiting (not in service).
func (s *Station) QueueLen() int { return len(s.queue) }

// Busy returns the number of servers currently occupied.
func (s *Station) Busy() int { return s.busy }

// SetWakeup configures the idle wake-up penalty: after idling longer
// than threshold, the next job's service is extended by a sample of
// Normal(mean, jitter) (floored at mean/4).
func (s *Station) SetWakeup(mean, jitter, threshold time.Duration) {
	s.wakeMean, s.wakeJitter, s.wakeThreshold = mean, jitter, threshold
}

// Process submits a job needing the given service time; done runs when
// the job completes (may be nil). Zero or negative service completes
// after any queued work, still in FIFO order, with no server time.
func (s *Station) Process(service time.Duration, done func()) {
	if service < 0 {
		service = 0
	}
	// A job may only jump straight onto a server when no earlier work is
	// waiting — otherwise submissions made from completion callbacks
	// would cut ahead of the FIFO queue and starve it.
	if s.busy < s.servers && len(s.queue) == 0 {
		if s.wakeMean > 0 && s.busy == 0 && s.eng.now-s.idleSince >= s.wakeThreshold {
			w := time.Duration(s.eng.rng.Normal(float64(s.wakeMean), float64(s.wakeJitter)))
			if w < s.wakeMean/4 {
				w = s.wakeMean / 4
			}
			service += w
			s.Wakeups++
			if s.Probe != nil {
				s.Probe.StationWake(s, w)
			}
		}
		s.start(stationJob{service: service, done: done})
		return
	}
	s.queue = append(s.queue, stationJob{service: service, done: done})
	if len(s.queue) > s.MaxQueue {
		s.MaxQueue = len(s.queue)
	}
	if s.Probe != nil {
		s.Probe.StationQueue(s, len(s.queue))
	}
}

func (s *Station) start(j stationJob) {
	s.busy++
	if s.busy == 1 && s.Probe != nil {
		s.Probe.StationBusy(s)
	}
	s.BusyTime += j.service
	// Completion is dispatched through the event's station field, not a
	// closure — this is the engine's hottest allocation site otherwise.
	s.eng.afterJob(j.service, s, j.done)
}

// complete finishes one in-service job: it is invoked by the engine
// dispatcher for events scheduled via afterJob.
func (s *Station) complete(done func()) {
	s.busy--
	s.Completed++
	if s.busy == 0 {
		s.idleSince = s.eng.now
		if s.Probe != nil {
			s.Probe.StationIdle(s)
		}
	}
	// Claim the next queued job before running the completion
	// callback: work the callback submits must line up behind it.
	if len(s.queue) > 0 && s.busy < s.servers {
		next := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		if s.Probe != nil {
			s.Probe.StationQueue(s, len(s.queue))
		}
		s.start(next)
	}
	if done != nil {
		done()
	}
}

// Utilization returns BusyTime divided by (elapsed × servers), the mean
// fraction of server capacity in use since the start of the simulation.
func (s *Station) Utilization() float64 {
	elapsed := s.eng.Now()
	if elapsed <= 0 {
		return 0
	}
	return float64(s.BusyTime) / (float64(elapsed) * float64(s.servers))
}
