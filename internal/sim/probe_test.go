package sim

import (
	"math"
	"testing"
	"time"
)

func TestPercentileEdgeCases(t *testing.T) {
	var empty Series
	if got := empty.Percentile(50); got != 0 {
		t.Fatalf("empty Percentile(50) = %v, want 0", got)
	}

	var one Series
	one.Add(7)
	for _, p := range []float64{0, 50, 100, -5, 200, math.NaN()} {
		if got := one.Percentile(p); got != 7 {
			t.Fatalf("single-sample Percentile(%v) = %v, want 7", p, got)
		}
	}

	var s Series
	for _, v := range []float64{4, 1, 3, 2} {
		s.Add(v)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 4}, {-10, 1}, {1000, 4}, {math.NaN(), 1}, {50, 2.5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestStationUtilizationAtTimeZero(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 1)
	if u := s.Utilization(); u != 0 {
		t.Fatalf("Utilization before any event = %v, want 0", u)
	}
}

func TestStationUtilizationMidRun(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 1)
	s.Process(10*time.Microsecond, nil)
	var mid float64
	e.After(20*time.Microsecond, func() { mid = s.Utilization() })
	e.Run()
	if mid != 0.5 {
		t.Fatalf("Utilization at 20µs after 10µs of work = %v, want 0.5", mid)
	}
}

func TestStationWakeupPenalty(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 1)
	// Zero jitter makes the penalty exactly the mean; zero threshold makes
	// every idle→busy transition pay it.
	s.SetWakeup(4*time.Microsecond, 0, 0)
	var first, second Time
	s.Process(10*time.Microsecond, func() { first = e.Now() })
	s.Process(10*time.Microsecond, func() { second = e.Now() })
	e.Run()
	if first != Time(14*time.Microsecond) {
		t.Fatalf("first completion at %v, want 14µs (10µs + 4µs wake)", first)
	}
	// The second job was queued behind a busy station: no penalty.
	if second != Time(24*time.Microsecond) {
		t.Fatalf("second completion at %v, want 24µs", second)
	}
	if s.Wakeups != 1 {
		t.Fatalf("Wakeups = %d, want 1", s.Wakeups)
	}
}

func TestStationWakeupThreshold(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 1)
	s.SetWakeup(4*time.Microsecond, 0, 100*time.Microsecond)
	// t=0: the station has not idled past the threshold — no penalty.
	s.Process(10*time.Microsecond, nil)
	// t=50µs: only 40µs idle — still no penalty.
	e.After(50*time.Microsecond, func() { s.Process(10*time.Microsecond, nil) })
	// t=300µs: idle since 60µs — pays the wake-up.
	var late Time
	e.After(300*time.Microsecond, func() { s.Process(10*time.Microsecond, func() { late = e.Now() }) })
	e.Run()
	if s.Wakeups != 1 {
		t.Fatalf("Wakeups = %d, want 1 (only the long-idle job)", s.Wakeups)
	}
	if late != Time(314*time.Microsecond) {
		t.Fatalf("late completion at %v, want 314µs", late)
	}
}

func TestStationCallbackSubmissionsQueueBehindExistingWork(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 1)
	var order []string
	s.Process(10*time.Microsecond, func() {
		order = append(order, "A")
		// Submitted from A's completion callback: must line up behind the
		// already-queued B, not cut ahead.
		s.Process(10*time.Microsecond, func() { order = append(order, "C") })
	})
	s.Process(10*time.Microsecond, func() { order = append(order, "B") })
	e.Run()
	want := []string{"A", "B", "C"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// recordingProbe captures every probe callback for inspection.
type recordingProbe struct {
	depths     []int
	busy, idle int
	wakes      []time.Duration
}

func (p *recordingProbe) StationQueue(s *Station, depth int)      { p.depths = append(p.depths, depth) }
func (p *recordingProbe) StationBusy(s *Station)                  { p.busy++ }
func (p *recordingProbe) StationIdle(s *Station)                  { p.idle++ }
func (p *recordingProbe) StationWake(s *Station, w time.Duration) { p.wakes = append(p.wakes, w) }

func TestStationProbeObservesTransitions(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 1)
	p := &recordingProbe{}
	s.Probe = p
	for i := 0; i < 3; i++ {
		s.Process(10*time.Microsecond, nil)
	}
	e.Run()
	// Serial station: every completion empties the server before the next
	// queued job starts, so busy/idle transitions pair up per job.
	if p.busy != 3 || p.idle != 3 {
		t.Fatalf("busy=%d idle=%d, want 3/3", p.busy, p.idle)
	}
	wantDepths := []int{1, 2, 1, 0}
	if len(p.depths) != len(wantDepths) {
		t.Fatalf("queue depths = %v, want %v", p.depths, wantDepths)
	}
	for i := range wantDepths {
		if p.depths[i] != wantDepths[i] {
			t.Fatalf("queue depths = %v, want %v", p.depths, wantDepths)
		}
	}
}

// advanceProbe records every clock advance the engine reports.
type advanceProbe struct{ ticks []Time }

func (p *advanceProbe) EngineAdvance(now Time) { p.ticks = append(p.ticks, now) }

func TestEngineProbeFiresOncePerClockAdvance(t *testing.T) {
	e := New(1)
	p := &advanceProbe{}
	e.Probe = p
	e.After(0, func() {}) // same instant as the start: no advance
	e.After(10*time.Microsecond, func() {})
	e.After(10*time.Microsecond, func() {}) // same instant: no second advance
	e.After(20*time.Microsecond, func() {})
	e.Run()
	want := []Time{Time(10 * time.Microsecond), Time(20 * time.Microsecond)}
	if len(p.ticks) != len(want) {
		t.Fatalf("advances = %v, want %v", p.ticks, want)
	}
	for i := range want {
		if p.ticks[i] != want[i] {
			t.Fatalf("advances = %v, want %v", p.ticks, want)
		}
	}
}
