package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := New(1)
	var got []int
	e.At(30*time.Microsecond, func() { got = append(got, 3) })
	e.At(10*time.Microsecond, func() { got = append(got, 1) })
	e.At(20*time.Microsecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("Now() = %v, want 30µs", e.Now())
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", got)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := New(1)
	var at Time
	e.At(5*time.Millisecond, func() {
		e.After(2*time.Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 7*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 7ms", at)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestEngineRunUntilStopsAndAdvancesClock(t *testing.T) {
	e := New(1)
	fired := map[Time]bool{}
	for _, d := range []Time{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.At(d, func() { fired[d] = true })
	}
	e.RunUntil(2 * time.Second)
	if !fired[time.Second] || !fired[2*time.Second] {
		t.Error("events at or before the horizon must fire")
	}
	if fired[3*time.Second] {
		t.Error("event after the horizon fired early")
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
	// Advancing past all events moves the clock to the horizon.
	e.RunUntil(10 * time.Second)
	if e.Now() != 10*time.Second || !fired[3*time.Second] {
		t.Fatalf("Now() = %v after draining, want 10s", e.Now())
	}
}

func TestEngineNegativeAfterClampsToNow(t *testing.T) {
	e := New(1)
	ran := false
	e.After(-time.Second, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative After: ran=%v now=%v", ran, e.Now())
	}
}

func TestEngineMaxStepsGuards(t *testing.T) {
	e := New(1)
	e.MaxSteps = 10
	var loop func()
	loop = func() { e.After(time.Millisecond, loop) }
	e.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway loop did not trip MaxSteps")
		}
	}()
	e.Run()
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		e := New(seed)
		var out []float64
		var tick func()
		tick = func() {
			out = append(out, e.Rand().Float64())
			if len(out) < 100 {
				e.After(Time(e.Rand().Intn(1000))*time.Microsecond, tick)
			}
		}
		e.After(0, tick)
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

// Property: for any batch of scheduled delays, events execute in
// non-decreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := New(7)
		var times []Time
		for _, d := range delays {
			e.At(Time(d)*time.Microsecond, func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
