package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series accumulates scalar samples and answers summary-statistics
// queries. It keeps all samples (experiments here are small enough), so
// percentiles are exact.
type Series struct {
	samples []float64
	sorted  bool
	sum     float64
	sumSq   float64
}

// Add records one sample.
func (s *Series) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
	s.sumSq += v * v
}

// AddDuration records a duration sample in seconds.
func (s *Series) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the sample count.
func (s *Series) N() int { return len(s.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Stddev returns the population standard deviation, or 0 with fewer than
// two samples.
func (s *Series) Stddev() float64 {
	n := float64(len(s.samples))
	if n < 2 {
		return 0
	}
	mean := s.sum / n
	v := s.sumSq/n - mean*mean
	if v < 0 { // numeric noise
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Series) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (s *Series) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-th percentile using linear interpolation
// between closest ranks. Out-of-range p is clamped: p <= 0 (and NaN)
// yields the minimum, p >= 100 the maximum. With no samples it returns 0.
func (s *Series) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 || math.IsNaN(p) {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.samples[lo]
	}
	frac := rank - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// Median returns the 50th percentile.
func (s *Series) Median() float64 { return s.Percentile(50) }

// Samples returns a copy of the recorded samples in insertion order is not
// guaranteed once percentile queries have run; callers get sorted data.
func (s *Series) Samples() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.samples))
	copy(out, s.samples)
	return out
}

// CDF returns (value, cumulative fraction) pairs over the sorted samples,
// suitable for plotting an empirical CDF like the paper's Fig. 8a.
func (s *Series) CDF() (values, fractions []float64) {
	s.ensureSorted()
	n := len(s.samples)
	values = make([]float64, n)
	fractions = make([]float64, n)
	for i, v := range s.samples {
		values[i] = v
		fractions[i] = float64(i+1) / float64(n)
	}
	return values, fractions
}

// SeriesState is the exact internal state of a Series — raw samples in
// their current order plus the running sums, whose float accumulation
// order a recompute could not reproduce. Snapshot/restore round-trips
// through it bit for bit.
type SeriesState struct {
	Samples []float64
	Sorted  bool
	Sum     float64
	SumSq   float64
}

// State captures the series (the sample slice is copied).
func (s *Series) State() SeriesState {
	return SeriesState{
		Samples: append([]float64(nil), s.samples...),
		Sorted:  s.sorted,
		Sum:     s.sum,
		SumSq:   s.sumSq,
	}
}

// SetState restores a captured series state (the sample slice is
// copied).
func (s *Series) SetState(st SeriesState) {
	s.samples = append(s.samples[:0:0], st.Samples...)
	s.sorted = st.Sorted
	s.sum = st.Sum
	s.sumSq = st.SumSq
}

func (s *Series) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Summary returns a one-line human-readable digest.
func (s *Series) Summary() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.N(), s.Mean(), s.Stddev(), s.Min(), s.Median(), s.Percentile(99), s.Max())
}

// Histogram counts samples into equal-width buckets over [lo, hi);
// samples outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi  float64
	Buckets []uint64
	Under   uint64
	Over    uint64
	total   uint64
}

// NewHistogram creates a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("sim: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("sim: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i >= len(h.Buckets) { // guard float rounding at the upper edge
			i = len(h.Buckets) - 1
		}
		h.Buckets[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range.
func (h *Histogram) Total() uint64 { return h.total }

// BucketBounds returns the [lo, hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Fraction returns bucket i's share of all recorded samples.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.total)
}
