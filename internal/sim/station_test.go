package sim

import (
	"testing"
	"time"
)

func TestStationSerializesWork(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		s.Process(10*time.Microsecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
	if s.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", s.Completed)
	}
	if s.MaxQueue != 2 {
		t.Fatalf("MaxQueue = %d, want 2", s.MaxQueue)
	}
}

func TestStationMultiServerParallelism(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpus", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		s.Process(10*time.Microsecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	// Two servers: pairs complete at 10µs and 20µs.
	want := []Time{10 * time.Microsecond, 10 * time.Microsecond, 20 * time.Microsecond, 20 * time.Microsecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestStationFIFOUnderLoad(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 1)
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		s.Process(time.Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("station reordered jobs: %v", order)
		}
	}
}

func TestStationZeroServiceStillFIFO(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 1)
	var order []int
	s.Process(5*time.Microsecond, func() { order = append(order, 0) })
	s.Process(0, func() { order = append(order, 1) })
	e.Run()
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("zero-service job jumped the queue: %v", order)
	}
}

func TestStationUtilization(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 1)
	s.Process(30*time.Microsecond, nil)
	e.At(60*time.Microsecond, func() {}) // extend the run to 60µs
	e.Run()
	if got := s.Utilization(); got < 0.49 || got > 0.51 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
}

func TestStationNegativeServiceAndServersClamp(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 0)
	if s.Servers() != 1 {
		t.Fatalf("Servers() = %d, want clamp to 1", s.Servers())
	}
	ran := false
	s.Process(-time.Second, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative service: ran=%v now=%v", ran, e.Now())
	}
}

func TestStationBusyTimeAccumulates(t *testing.T) {
	e := New(1)
	s := NewStation(e, "cpu", 2)
	s.Process(10*time.Microsecond, nil)
	s.Process(20*time.Microsecond, nil)
	e.Run()
	if s.BusyTime != 30*time.Microsecond {
		t.Fatalf("BusyTime = %v, want 30µs", s.BusyTime)
	}
}
